// The Figure 4 investigation: a corrupt map worker injects 9,991 bogus
// "squirrel" pairs; the analyst queries the provenance of the suspicious
// output (squirrel, ~10000) and drills down to the forged intermediate
// tuples, which turn red.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/mapreduce"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

func main() {
	cfg := simnet.DefaultConfig()
	cfg.Core.CheckpointEvery = 0
	cfg.Core.Tbatch = 100 * types.Millisecond
	net := simnet.New(cfg)
	splits := workload.Corpus(7, 8, 4<<10)
	d, err := mapreduce.Deploy(net, mapreduce.Job{
		Mappers: 8, Reducers: 4, Splits: splits,
		StartAt: types.Second, ReduceAt: 20 * types.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	badMapper := mapreduce.MapperName(3) // "Map-3" in the paper's figure
	reducer := d.OutputOwner("squirrel")
	injected := false
	net.Node(badMapper).Tamper = func(ev types.Event, outs []types.Output) []types.Output {
		if injected || ev.Kind != types.EvIns || ev.Tuple.Rel != "split" {
			return outs
		}
		injected = true
		forged := mapreduce.MapOut(reducer, badMapper, "squirrel", 9991)
		return append(outs, types.Output{Kind: types.OutSend, Msg: &types.Message{
			Src: badMapper, Dst: reducer, Pol: types.PolAppear, Tuple: forged,
			SendTime: ev.Time, Seq: 9999,
		}})
	}
	net.Run(30 * types.Second)

	total := net.Node(reducer).Machine.(*mapreduce.Machine).Outputs()["squirrel"]
	fmt.Printf("WordCount finished. Suspicious output: (squirrel, %d)\n", total)
	fmt.Printf("(the honest corpus contains only %d squirrels)\n\n",
		workload.CountWord(splits, "squirrel"))

	q := net.NewQuerier(d.Factory())
	expl, err := q.Explain(reducer, mapreduce.Out(reducer, "squirrel", total), core.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(expl.Format())
	fmt.Printf("\n--> faulty nodes: %v\n", expl.FaultyNodes())
}
