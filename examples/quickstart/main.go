// Quickstart: the paper's §3.3 MinCost example. Five routers compute
// lowest-cost paths under SNP; we then ask "why does bestCost(@c,d,5)
// exist?" and print the Figure 2 provenance tree.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	net := simnet.New(simnet.DefaultConfig())
	if err := mincost.Deploy(net, mincost.Figure2Topology, types.Second); err != nil {
		log.Fatal(err)
	}
	net.Run(30 * types.Second)

	fmt.Println("MinCost network converged. Querying the provenance of bestCost(@c,d,5)…")
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	fmt.Println()
	fmt.Print(expl.Format())
	fmt.Printf("\n%d vertices in the answer; downloaded %d bytes of logs, %d of authenticators.\n",
		expl.Size(), q.Metrics.LogBytes, q.Metrics.AuthBytes)
	if len(expl.FaultyNodes()) == 0 {
		fmt.Println("No red vertices: every derivation checked out (all nodes are correct).")
	}
}
