// Chord Eclipse investigation (§7.3): a compromised DHT node inflates its
// presence in its neighbors' state by lying about its ring position in
// stabilization notifies (and by forging lookup responses). The provenance
// of a poisoned predecessor pointer exposes the forged messages.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/chord"
	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	cfg := simnet.DefaultConfig()
	cfg.Core.CheckpointEvery = 0
	net := simnet.New(cfg)
	p := chord.DefaultParams(8)
	p.Duration = 3 * types.Minute
	p.StabilizeEvery = 20 * types.Second
	p.FingerEvery = 20 * types.Second
	names, err := chord.Deploy(net, p)
	if err != nil {
		log.Fatal(err)
	}
	attacker := chord.NodeName(2)
	net.Node(attacker).Tamper = func(ev types.Event, outs []types.Output) []types.Output {
		for i, o := range outs {
			if o.Kind != types.OutSend || o.Msg.Tuple.Rel != "notify" {
				continue
			}
			// Claim to sit immediately before the successor on the ring, so
			// the successor always adopts the attacker as predecessor.
			tup := o.Msg.Tuple
			succ := tup.Args[0].Node()
			fakeID := (chord.RingID(succ) - 1 + chord.RingSize) % chord.RingSize
			m := *o.Msg
			m.Tuple = types.MakeTuple("notify", tup.Args[0], tup.Args[1], types.I(fakeID))
			outs[i].Msg = &m
		}
		return outs
	}
	net.Run(p.Duration)

	for _, n := range names {
		if n == attacker {
			continue
		}
		m := net.Node(n).Machine.(*dlog.Machine)
		for _, pr := range m.TuplesOf("pred") {
			if pr.Args[1].Node() != attacker || pr.Args[2].Int == chord.RingID(attacker) {
				continue
			}
			fmt.Printf("Poisoned state on %s: %s\n", n, pr)
			fmt.Printf("(%s's true ring ID is %d, not %d)\n\n",
				attacker, chord.RingID(attacker), pr.Args[2].Int)
			q := net.NewQuerier(chord.Factory())
			expl, err := q.Explain(n, pr, core.QueryOpts{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(expl.Format())
			fmt.Printf("\n--> faulty nodes: %v\n", expl.FaultyNodes())
			return
		}
	}
	fmt.Println("no poisoned state found")
}
