// BGP forensics: the §7.2/§7.3 Quagga scenarios. Runs the 10-network
// topology, triggers a policy-induced route disappearance and a route
// hijack, then investigates both with dynamic provenance queries.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps/bgp"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	cfg := simnet.DefaultConfig()
	net := simnet.New(cfg)
	d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, 5*types.Minute)
	if err != nil {
		log.Fatal(err)
	}
	// as30's policy refuses to export routes via the tier-1 as10; pin
	// as10's own choice away from as30 so the alternative actually reaches
	// as30.
	r1 := d.Speakers["as30"]
	r1.ExportFilter = func(to types.NodeID, prefix, path string) bool {
		return strings.Contains(path, "as10")
	}
	d.Speakers["as10"].PreferVia("as40")

	net.At(5*types.Second, func() {
		d.Speakers["as51"].Announce(net.Node("as51"), "10.0.0.0/24")
	})
	// Traffic-engineering change at t=60s: as30 now prefers via as10;
	// combined with its export filter, as52 loses its route.
	net.At(60*types.Second, func() { r1.PreferVia("as10") })
	// At t=120s, as61 hijacks the prefix with a fabricated import.
	net.At(120*types.Second, func() {
		bogus := bgp.AdvRoute("as61", "10.0.0.0/24", "as99", "as99")
		net.Node("as61").InsertMaybe(bgp.ExportRule,
			bgp.AdvRoute("as40", "10.0.0.0/24", "as61 as99", "as61"),
			[]types.Tuple{bogus}, nil)
	})
	net.Run(5 * types.Minute)

	fmt.Println("=== Query 1 (Quagga-Disappear): why did as52's route vanish? ===")
	q := d.NewQuerier()
	gone := bgp.AdvRoute("as52", "10.0.0.0/24", "as30 as51", "as30")
	expl, err := q.Explain("as52", gone, core.QueryOpts{Mode: core.ModeDisappear})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(expl.Format())
	fmt.Printf("--> benign: faulty nodes = %v (the withdrawal traces to as30's policy)\n\n", expl.FaultyNodes())

	fmt.Println("=== Query 2: who hijacked 10.0.0.0/24? ===")
	q2 := d.NewQuerier()
	hijacked := bgp.AdvRoute("as40", "10.0.0.0/24", "as61 as99", "as61")
	expl2, err := q2.Explain("as40", hijacked, core.QueryOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(expl2.Format())
	fmt.Printf("--> faulty nodes: %v\n", expl2.FaultyNodes())
}
