// Benchmarks regenerating the paper's evaluation figures (§7). Each bench
// runs one configuration (or query) and reports the figure's metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the same series
// the paper plots. EXPERIMENTS.md records paper-vs-measured values.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/eval"
)

const benchScale = eval.Scale(0.02)

func benchConfig(b *testing.B, name eval.ConfigName) *eval.RunResult {
	b.Helper()
	b.ReportAllocs()
	var res *eval.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = eval.Run(name, eval.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// --- Figure 5: network traffic normalized to baseline ---------------------

func benchFig5(b *testing.B, name eval.ConfigName) {
	res := benchConfig(b, name)
	row := eval.Figure5(res)
	b.ReportMetric(row.Factor, "traffic-factor")
	b.ReportMetric(float64(row.BaselineBytes), "baseline-bytes")
	b.ReportMetric(float64(row.AuthBytes), "auth-bytes")
	b.ReportMetric(float64(row.AckBytes), "ack-bytes")
	b.ReportMetric(float64(row.Messages), "messages")
}

func BenchmarkFig5Quagga(b *testing.B)      { benchFig5(b, eval.Quagga) }

// BenchmarkFig5QuaggaParallel is the same run through the sharded simulation
// driver (4 workers, pinned so the parallel path runs even when GOMAXPROCS
// is 1). Its reported metric series is bit-identical to
// BenchmarkFig5Quagga's — the equivalence tests pin that — so the two
// ns/op values isolate the scheduler's wall-clock effect.
func BenchmarkFig5QuaggaParallel(b *testing.B) {
	b.ReportAllocs()
	var res *eval.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = eval.Run(eval.Quagga, eval.Options{Scale: benchScale, SimWorkers: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	row := eval.Figure5(res)
	b.ReportMetric(row.Factor, "traffic-factor")
	b.ReportMetric(float64(row.BaselineBytes), "baseline-bytes")
	b.ReportMetric(float64(row.AuthBytes), "auth-bytes")
	b.ReportMetric(float64(row.AckBytes), "ack-bytes")
	b.ReportMetric(float64(row.Messages), "messages")
}
func BenchmarkFig5ChordSmall(b *testing.B)  { benchFig5(b, eval.ChordSmall) }
func BenchmarkFig5ChordLarge(b *testing.B)  { benchFig5(b, eval.ChordLarge) }
func BenchmarkFig5HadoopSmall(b *testing.B) { benchFig5(b, eval.HadoopSmall) }
func BenchmarkFig5HadoopLarge(b *testing.B) { benchFig5(b, eval.HadoopLarge) }

// --- Figure 6: per-node log growth ----------------------------------------

func benchFig6(b *testing.B, name eval.ConfigName) {
	res := benchConfig(b, name)
	row := eval.Figure6(res)
	b.ReportMetric(row.MBPerMin, "MB/min/node")
	b.ReportMetric(float64(row.CkptBytes), "ckpt-bytes")
}

func BenchmarkFig6Quagga(b *testing.B)      { benchFig6(b, eval.Quagga) }
func BenchmarkFig6ChordSmall(b *testing.B)  { benchFig6(b, eval.ChordSmall) }
func BenchmarkFig6ChordLarge(b *testing.B)  { benchFig6(b, eval.ChordLarge) }
func BenchmarkFig6HadoopSmall(b *testing.B) { benchFig6(b, eval.HadoopSmall) }
func BenchmarkFig6HadoopLarge(b *testing.B) { benchFig6(b, eval.HadoopLarge) }

// --- Figure 7: additional CPU load -----------------------------------------

func benchFig7(b *testing.B, name eval.ConfigName) {
	res := benchConfig(b, name)
	costs, err := eval.MeasureCryptoCosts(cryptoutil.Ed25519SHA256)
	if err != nil {
		b.Fatal(err)
	}
	row := eval.Figure7(res, costs)
	b.ReportMetric(row.PerNodePct, "cpu-pct/node")
	b.ReportMetric(float64(row.Signs), "signs")
	b.ReportMetric(float64(row.Verifies), "verifies")
}

func BenchmarkFig7Quagga(b *testing.B)      { benchFig7(b, eval.Quagga) }
func BenchmarkFig7ChordSmall(b *testing.B)  { benchFig7(b, eval.ChordSmall) }
func BenchmarkFig7HadoopSmall(b *testing.B) { benchFig7(b, eval.HadoopSmall) }

// --- Figure 8: query turnaround and downloads ------------------------------

func reportFig8(b *testing.B, row eval.Fig8Row, err error) {
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(row.LogBytes+row.AuthBytes+row.CkptBytes), "dl-bytes")
	b.ReportMetric(row.Turnaround.Seconds()*1000, "turnaround-ms")
	b.ReportMetric(float64(row.Answer), "answer-vertices")
}

func BenchmarkFig8QuaggaDisappear(b *testing.B) {
	res := benchConfig(b, eval.Quagga)
	row, err := eval.QuaggaDisappearQuery(res)
	reportFig8(b, row, err)
}

func BenchmarkFig8QuaggaBadGadget(b *testing.B) {
	res := benchConfig(b, eval.Quagga)
	row, err := eval.QuaggaBadGadgetQuery(res)
	reportFig8(b, row, err)
}

func BenchmarkFig8ChordLookupSmall(b *testing.B) {
	res := benchConfig(b, eval.ChordSmall)
	row, err := eval.ChordLookupQuery(res)
	reportFig8(b, row, err)
}

func BenchmarkFig8ChordLookupLarge(b *testing.B) {
	res := benchConfig(b, eval.ChordLarge)
	row, err := eval.ChordLookupQuery(res)
	reportFig8(b, row, err)
}

func BenchmarkFig4HadoopSquirrel(b *testing.B) {
	res := benchConfig(b, eval.HadoopSmall)
	row, err := eval.HadoopSquirrelQuery(res)
	reportFig8(b, row, err)
}

// --- Figure 9: Chord scalability -------------------------------------------

func BenchmarkFig9ChordScalability(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.Fig9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.Figure9([]int{10, 50, 100}, eval.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SNPBytesPerSec, "B/s/node@N="+itoa(r.N))
	}
}

// --- §5.6 batching ablation -------------------------------------------------

func BenchmarkBatchingAblation(b *testing.B) {
	b.ReportAllocs()
	var without, with eval.BatchRow
	var err error
	for i := 0; i < b.N; i++ {
		without, with, err = eval.BatchingAblation(eval.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(without.TrafficFactor, "factor-unbatched")
	b.ReportMetric(with.TrafficFactor, "factor-batched")
	b.ReportMetric(float64(without.Signs)/float64(with.Signs), "sign-reduction")
}

// --- Audit micro-benchmarks --------------------------------------------------

// BenchmarkAuditorReplaySingleNode times one node's full audit — signature
// and hash-chain verification, entry decoding, and deterministic replay into
// a fresh provenance graph — which is the unit of work the parallel audit
// pipeline distributes across workers.
func BenchmarkAuditorReplaySingleNode(b *testing.B) {
	res, err := eval.Run(eval.ChordSmall, eval.Options{Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	node := res.Net.Nodes()[0]
	auth, err := res.Net.LatestAuth(node)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := res.Net.Retrieve(node, core.RetrieveRequest{Auth: auth})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auditor := core.NewAuditor(res.Net.Cfg.Core, res.Net.Dir, res.Factory, res.Net.Maintainer)
		if err := auditor.Replay(node, resp, auth); err != nil {
			b.Fatal(err)
		}
		auditor.Finalize()
	}
}

// --- Crypto microbenches (Figure 7's unit costs, §7.6) ----------------------

func BenchmarkEd25519Sign(b *testing.B) {
	key, err := cryptoutil.PooledKey(cryptoutil.Ed25519SHA256, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	key, err := cryptoutil.PooledKey(cryptoutil.Ed25519SHA256, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	sig, _ := key.Sign(msg)
	pub := key.Public()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkRSASign(b *testing.B) {
	key, err := cryptoutil.PooledKey(cryptoutil.RSA1024SHA1, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAVerify(b *testing.B) {
	key, err := cryptoutil.PooledKey(cryptoutil.RSA1024SHA1, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	sig, _ := key.Sign(msg)
	pub := key.Public()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkSHA1HashKiB(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cryptoutil.RSA1024SHA1.Hash(buf)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
