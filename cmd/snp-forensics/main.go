// snp-forensics runs one of the §7.3 attack scenarios end to end and
// prints the investigation: the suspicious state, its provenance tree, and
// the identified faulty node.
//
// Usage:
//
//	snp-forensics -scenario eclipse|badgadget|squirrel|suppress
//	snp-forensics -connect 127.0.0.1:7070    # audit a live deployment
//	                                         # through its query frontend
package main

import (
	"flag"
	"fmt"
	"log"
	"os/exec"

	"repro/internal/apps/bgp"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/queryfront"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	scenario := flag.String("scenario", "suppress", "eclipse | badgadget | squirrel | suppress")
	connect := flag.String("connect", "", "audit a live deployment through the query frontend at this address instead of running a canned scenario")
	flag.Parse()
	if *connect != "" {
		remote(*connect)
		return
	}
	switch *scenario {
	case "suppress":
		suppress()
	case "badgadget":
		badGadget()
	case "eclipse":
		delegate("examples/chord-eclipse")
	case "squirrel":
		delegate("examples/mapreduce-squirrel")
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
}

// remote investigates a live deployment over the wire: a full audit
// through its query frontend, reported in the §4.2 evidence tiers.
func remote(addr string) {
	cl, err := queryfront.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("Auditing the deployment behind %s…\n", addr)
	v, err := cl.Audit()
	if err != nil {
		log.Fatal(err)
	}
	if strong := v.StrongNodes(); len(strong) > 0 {
		fmt.Printf("provably faulty: %v\n", strong)
		for _, f := range v.Failures {
			fmt.Printf("  %s@%d: %s\n", f.Node, f.Seq, f.Reason)
		}
		for _, id := range v.RedHosts {
			fmt.Printf("  RED: %s\n", id)
		}
	} else {
		fmt.Println("no provable evidence of misbehavior")
	}
	for _, l := range v.Unreachable {
		fmt.Printf("  lead (unreachable, not evidence): %s: %s\n", l.Node, l.Err)
	}
	if st, err := cl.Stats(); err == nil {
		fmt.Println("frontend:", st)
	}
}

// delegate reuses the example binaries for the larger scenarios.
func delegate(pkg string) {
	out, err := exec.Command("go", "run", "./"+pkg).CombinedOutput()
	fmt.Print(string(out))
	if err != nil {
		log.Fatal(err)
	}
}

// suppress: a MinCost router silently drops its advertisements (passive
// evasion); replay of its log exposes the suppressed sends.
func suppress() {
	net := simnet.New(simnet.DefaultConfig())
	if err := mincost.Deploy(net, mincost.Figure2Topology, types.Second); err != nil {
		log.Fatal(err)
	}
	net.Node("b").DropSend = func(m types.Message) bool {
		return m.Dst == "c" && m.Tuple.Rel == "cost"
	}
	net.Run(30 * types.Second)
	fmt.Printf("Router b silently dropped %d advertisements to c.\n", net.Node("b").DropCount)
	fmt.Println("Auditing b…")
	q := net.NewQuerier(mincost.Factory())
	if err := q.EnsureAudited("b", 0); err != nil {
		log.Fatal(err)
	}
	q.Auditor.Finalize()
	for _, v := range q.Auditor.Graph().RedVertices() {
		fmt.Printf("  RED: %s\n", v)
	}
}

// badGadget: the §7.2 oscillation — all nodes correct, provenance explains
// the flutter.
func badGadget() {
	net := simnet.New(simnet.DefaultConfig())
	links := []bgp.ASLink{
		{A: "as1", B: "as0", RelAB: bgp.Sibling},
		{A: "as2", B: "as0", RelAB: bgp.Sibling},
		{A: "as3", B: "as0", RelAB: bgp.Sibling},
		{A: "as1", B: "as2", RelAB: bgp.Sibling},
		{A: "as2", B: "as3", RelAB: bgp.Sibling},
		{A: "as3", B: "as1", RelAB: bgp.Sibling},
	}
	d, err := bgp.Deploy(net, links, types.Second, 90*types.Second)
	if err != nil {
		log.Fatal(err)
	}
	d.Speakers["as1"].PreferVia("as2")
	d.Speakers["as2"].PreferVia("as3")
	d.Speakers["as3"].PreferVia("as1")
	net.At(2*types.Second, func() {
		d.Speakers["as0"].Announce(net.Node("as0"), "10.9.9.0/24")
	})
	net.Run(90 * types.Second)

	q := d.NewQuerier()
	if err := q.EnsureAudited("as1", 0); err != nil {
		log.Fatal(err)
	}
	q.Auditor.Finalize()
	g := q.Auditor.Graph()
	flaps := 0
	var last types.Tuple
	for _, v := range g.ByHost("as1") {
		if v.Type == provgraph.VAppear && v.Tuple.Rel == "advRoute" {
			flaps++
			last = v.Tuple
		}
	}
	fmt.Printf("BadGadget: as1's export flapped %d times in 90s (all nodes correct).\n", flaps)
	expl, err := q.Explain("as1", last, core.QueryOpts{Mode: core.ModeAppear, Scope: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Provenance of the most recent flap:")
	fmt.Print(expl.Format())
	fmt.Printf("--> faulty nodes: %v (none: the oscillation is a policy conflict)\n", expl.FaultyNodes())
}
