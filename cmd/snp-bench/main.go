// snp-bench regenerates the paper's evaluation figures as text tables, and
// optionally emits a machine-readable benchmark file so the performance
// trajectory can be tracked across PRs.
//
// Usage:
//
//	snp-bench                  # all figures at the default scale
//	snp-bench -fig 5           # one figure
//	snp-bench -scale 0.2       # larger (slower, closer to the paper) runs
//	snp-bench -json BENCH_results.json -baseline old.json
//	                           # write wall-clock + metrics per benchmark,
//	                           # carrying old.json's results as the baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cryptoutil"
	"repro/internal/eval"
	"repro/internal/livetcp"
	"repro/internal/multiproc"
	"repro/internal/supervisor"
)

func main() {
	// When the multiproc scenarios spawn node daemons they re-exec this very
	// binary as the child image; such a child never reaches the flag parser.
	supervisor.MaybeChild()

	fig := flag.String("fig", "all", "figure to regenerate: 4, 5, 6, 7, 8, 9, batching, or all; 'retention' runs the store-backed long-retention scenario, 'qps' the sustained query-throughput scenario (concurrent audit scopes, cold vs warm audit cache), 'qps-live' its over-the-wire counterpart (remote clients through the query frontend), 'adversary' the Byzantine detection-guarantee scenarios, 'livetcp' the loopback-TCP fault-plan detection-latency scenario, and 'multiproc' the multi-process supervised-crash-recovery scenario on their own (not part of 'all')")
	scale := flag.Float64("scale", 0.05, "workload scale (1.0 = paper-sized: 15 min, 15k updates, 250 nodes)")
	seed := flag.Int64("seed", 1, "workload seed")
	simWorkers := flag.Int("sim-workers", 0, "parallel event shards for the simulation driver (0/1 = serial reference, -1 = GOMAXPROCS); every deterministic series is bit-identical across values")
	logDir := flag.String("logdir", "", "back every node's tamper-evident log with an on-disk segment store under this directory")
	hotTail := flag.Int("hot-tail", 0, "resident decoded entries per store-backed log (0 = all; requires -logdir)")
	jsonOut := flag.String("json", "", "write machine-readable results (name → ns/op + metrics) to this file and exit")
	baseline := flag.String("baseline", "", "previous -json output to embed as the baseline for comparison")
	benchScale := flag.Float64("bench-scale", 0.02, "workload scale used for -json runs (matches go test -bench)")
	iters := flag.Int("iters", 3, "iterations per benchmark for -json (ns/op is the mean, like go test -benchtime=Nx)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after all runs) to this file")
	advFilter := flag.String("adversary", "all", "comma-separated behavior filter for -fig adversary (e.g. 'forge,equivocate'; 'all' runs the whole library)")
	advK := flag.Int("adversary-k", 1, "compromised nodes per adversary scenario")
	qpsWorkers := flag.Int("qps-workers", 4, "concurrent querier scopes for -fig qps")
	qpsQueries := flag.Int("qps-queries", 48, "audit queries per -fig qps pass")
	flag.Parse()

	if *hotTail != 0 && *logDir == "" && *fig != "retention" {
		log.Fatal("-hot-tail only takes effect with -logdir (or -fig retention)")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *jsonOut != "" {
		if err := writeJSONResults(*jsonOut, *baseline, *iters, eval.Options{Scale: eval.Scale(*benchScale), Seed: *seed, SimWorkers: *simWorkers}); err != nil {
			log.Fatal(err)
		}
		return
	}

	o := eval.Options{Scale: eval.Scale(*scale), Seed: *seed, LogDir: *logDir, LogHotTail: *hotTail, SimWorkers: *simWorkers}
	run := func(name string) bool { return *fig == "all" || *fig == name }

	if *fig == "adversary" {
		// The detection-guarantee scenario family (§2, §4, §6.1): each
		// configuration re-runs once per behavior with k compromised nodes,
		// then the whole deployment is audited and the evidence is scored.
		behaviors, err := eval.SelectBehaviors(*advFilter)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Adversary scenarios: detection guarantees with k=%d compromised nodes ==\n", *advK)
		violated := false
		for _, cfgName := range []eval.ConfigName{eval.Quagga, eval.ChordSmall, eval.HadoopSmall} {
			sum, err := eval.AdversaryScenarios(cfgName, o, *advK, behaviors)
			if err != nil {
				log.Fatalf("%s: %v", cfgName, err)
			}
			for _, r := range sum.Rows {
				fmt.Println(" ", r)
			}
			fmt.Printf("  %s: detection-rate=%.2f false-accusations=%d\n",
				cfgName, sum.DetectionRate(), sum.FalseAccusations())
			if sum.FalseAccusations() != 0 {
				fmt.Fprintf(os.Stderr, "  ACCURACY VIOLATION: %s implicated honest nodes\n", cfgName)
				violated = true
			}
			if sum.DetectionRate() != 1.0 {
				fmt.Fprintf(os.Stderr, "  DETECTION VIOLATION: %s missed a non-benign behavior\n", cfgName)
				violated = true
			}
		}
		if violated {
			// log.Fatal, like every other failure in this command (defers are
			// skipped either way on the fatal paths).
			log.Fatal("adversary scenarios violated the detection guarantee")
		}
		return
	}

	if *fig == "livetcp" {
		// The live-TCP detection scenario: tamper-log armed per app, run
		// over loopback TCP under the fault-plan matrix, audited over the
		// wire. Reports wall-clock convergence and detection latency — the
		// deployment-path counterpart of -fig adversary.
		fmt.Println("== Live-TCP scenarios: detection latency under fault plans ==")
		rows, err := livetcp.Bench(*seed)
		if err != nil {
			log.Fatal(err)
		}
		violated := false
		for _, r := range rows {
			fmt.Println(" ", r)
			if r.FalseAccused != 0 {
				fmt.Fprintf(os.Stderr, "  ACCURACY VIOLATION: %s under %s implicated honest nodes\n", r.App, r.Plan)
				violated = true
			}
			if !r.Detected {
				fmt.Fprintf(os.Stderr, "  DETECTION VIOLATION: %s under %s missed tamper-log\n", r.App, r.Plan)
				violated = true
			}
		}
		if violated {
			log.Fatal("live-TCP scenarios violated the detection guarantee")
		}
		return
	}

	if *fig == "multiproc" {
		// The multi-process scenario: one supervised daemon process per node,
		// tamper-log armed on the compromised node, a seeded crash plan
		// SIGKILLing two honest nodes (one mid-append, leaving a torn tail),
		// and a full over-the-wire audit after supervised recovery. Reports
		// restart-to-healthy and detection latency; §4.2 is enforced, not just
		// reported.
		dir, err := multiprocDir()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== Multi-process scenarios: supervised crash recovery + detection ==")
		rows, err := multiproc.Bench(dir, *seed)
		violated := false
		for _, r := range rows {
			fmt.Println(" ", r)
			if r.FalseAccused != 0 {
				fmt.Fprintf(os.Stderr, "  ACCURACY VIOLATION: %s under %s implicated honest nodes\n", r.App, r.Plan)
				violated = true
			}
			if !r.Detected {
				fmt.Fprintf(os.Stderr, "  DETECTION VIOLATION: %s under %s missed tamper-log\n", r.App, r.Plan)
				violated = true
			}
		}
		// Remove before any Fatal: log.Fatal skips deferred cleanup.
		os.RemoveAll(dir)
		if err != nil {
			log.Fatal(err)
		}
		if violated {
			log.Fatal("multi-process scenarios violated the detection guarantee")
		}
		return
	}

	if *fig == "qps" {
		// The sustained query-throughput scenario: a store-backed Quagga run,
		// then concurrent querier scopes auditing nodes round-robin — once
		// against an empty persistent audit cache and once against the cache
		// that pass populated. The warm row's speedup is replica-replay time
		// the cache eliminated.
		dir, err := os.MkdirTemp("", "snp-qps-")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== Query throughput: concurrent audit scopes, cold vs warm audit cache ==")
		rows, err := eval.QueryThroughput(o, *qpsWorkers, *qpsQueries, dir)
		// Remove before any Fatal: log.Fatal skips deferred cleanup.
		os.RemoveAll(dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		return
	}

	if *fig == "qps-live" {
		// The over-the-wire variant: the same cold/warm contrast, but the
		// deployment runs over loopback TCP and every query travels through
		// the query frontend — admission queue, session pool, framed RPCs —
		// so the rows measure what a remote analyst actually experiences.
		dir, err := os.MkdirTemp("", "snp-qps-live-")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== Query throughput over the wire: remote clients through the query frontend ==")
		rows, stats, err := livetcp.QPSLive(*seed, *qpsWorkers, *qpsQueries, dir)
		// Remove before any Fatal: log.Fatal skips deferred cleanup.
		os.RemoveAll(dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		fmt.Println("  front:", stats)
		if stats.Shed != 0 {
			log.Fatalf("frontend shed %d queries with a session per client", stats.Shed)
		}
		return
	}

	if *fig == "retention" {
		// The §5.6 long-retention scenario: a store-backed run (Figure 6
		// accounting over the spilled logs, checked bit-identical against an
		// in-memory baseline) plus crash recovery and a full re-audit of one
		// node's on-disk store. Run with -scale 1.0 for the paper-sized
		// experiment.
		dir := *logDir
		autoDir := dir == ""
		if autoDir {
			var err error
			dir, err = os.MkdirTemp("", "snp-retention-")
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("== Long retention: disk-backed segment store + crash recovery ==")
		rep, err := eval.LongRetention(eval.Quagga, o, dir)
		if autoDir {
			// Remove before any Fatal: log.Fatal skips deferred cleanup, and
			// a paper-scale store directory is worth gigabytes.
			os.RemoveAll(dir)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", rep)
		fmt.Println("  fig6 (spilled):", rep.Fig6)
		fmt.Println("  fig6 (memory): ", rep.BaselineFig6)
		return
	}

	if run("5") || run("6") || run("7") {
		costs, err := eval.MeasureCryptoCosts(cryptoutil.Ed25519SHA256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("== Figures 5 (traffic), 6 (log growth), 7 (CPU) — five configurations ==")
		for _, cfgName := range eval.AllConfigs {
			res, err := eval.Run(cfgName, o)
			if err != nil {
				log.Fatalf("%s: %v", cfgName, err)
			}
			if run("5") {
				fmt.Println("  fig5:", eval.Figure5(res))
			}
			if run("6") {
				fmt.Println("  fig6:", eval.Figure6(res))
			}
			if run("7") {
				fmt.Println("  fig7:", eval.Figure7(res, costs))
			}
			// Release store-backed logs (no-op for in-memory runs): with
			// -logdir, later runs reuse the same per-node file paths.
			_ = res.Net.CloseLogs()
		}
		fmt.Println()
	}

	if run("8") || run("4") {
		fmt.Println("== Figure 8: query turnaround and downloads (and the Figure 4 query) ==")
		quagga, err := eval.Run(eval.Quagga, o)
		if err != nil {
			log.Fatal(err)
		}
		if row, err := eval.QuaggaDisappearQuery(quagga); err == nil {
			fmt.Println(" ", row)
		} else {
			fmt.Fprintln(os.Stderr, "  Quagga-Disappear:", err)
		}
		if row, err := eval.QuaggaBadGadgetQuery(quagga); err == nil {
			fmt.Println(" ", row)
		} else {
			fmt.Fprintln(os.Stderr, "  Quagga-BadGadget:", err)
		}
		_ = quagga.Net.CloseLogs()
		for _, cfgName := range []eval.ConfigName{eval.ChordSmall, eval.ChordLarge} {
			res, runErr := eval.Run(cfgName, o)
			if runErr != nil {
				log.Fatal(runErr)
			}
			if row, err := eval.ChordLookupQuery(res); err == nil {
				fmt.Println(" ", row)
			} else {
				fmt.Fprintln(os.Stderr, "  Chord-Lookup:", err)
			}
			_ = res.Net.CloseLogs()
		}
		hadoop, err := eval.Run(eval.HadoopSmall, o)
		if err != nil {
			log.Fatal(err)
		}
		if row, err := eval.HadoopSquirrelQuery(hadoop); err == nil {
			fmt.Println(" ", row)
		} else {
			fmt.Fprintln(os.Stderr, "  Hadoop-Squirrel:", err)
		}
		_ = hadoop.Net.CloseLogs()
		fmt.Println()
	}

	if run("9") {
		fmt.Println("== Figure 9: Chord scalability ==")
		sizes := []int{10, 50, 100, 250}
		if *scale >= 0.5 {
			sizes = append(sizes, 500)
		}
		rows, err := eval.Figure9(sizes, o)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		fmt.Println()
	}

	if run("batching") {
		fmt.Println("== §5.6 batching ablation (Quagga) ==")
		without, with, err := eval.BatchingAblation(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  without:", without)
		fmt.Println("  with:   ", with)
		if with.Signs > 0 {
			fmt.Printf("  signature reduction: %.1fx; envelope reduction: %.0f%%\n",
				float64(without.Signs)/float64(with.Signs),
				100*(1-float64(with.Envelopes)/float64(without.Envelopes)))
		}
	}
}

// multiprocDir roots a multi-process deployment, preferring tmpfs: every
// daemon fsyncs its log segments on sync, and block-device fsync latency
// would dominate the recovery timings being measured.
func multiprocDir() (string, error) {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		if dir, err := os.MkdirTemp("/dev/shm", "snp-multiproc-*"); err == nil {
			return dir, nil
		}
	}
	return os.MkdirTemp("", "snp-multiproc-*")
}
