package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/eval"
	"repro/internal/multiproc"
)

// b2f encodes a boolean into the metrics map (1 = true).
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// BenchResult is one benchmark's wall-clock cost and reported metric series,
// mirroring what `go test -bench` prints for the same name. NsPerOp is the
// steady-state (process-warm) mean, like go test's; ColdNsPerOp is the
// first run in a fresh-cache state, so the two together separate algorithmic
// wins from verification-cache warm-up.
type BenchResult struct {
	Name        string             `json:"name"`
	NsPerOp     int64              `json:"ns_per_op"`
	ColdNsPerOp int64              `json:"cold_ns_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics"`
}

// BenchFile is the schema of BENCH_results.json. Baseline carries the
// results of an earlier revision (typically the previous PR) so speedups are
// computable without checking out old code.
type BenchFile struct {
	GeneratedBy    string        `json:"generated_by"`
	Scale          float64       `json:"scale"`
	Results        []BenchResult `json:"results"`
	Baseline       []BenchResult `json:"baseline,omitempty"`
	BaselineSource string        `json:"baseline_source,omitempty"`
}

// benchName converts a config name to the benchmark naming scheme
// ("Chord-Small" → "ChordSmall").
func benchName(prefix string, cfg eval.ConfigName) string {
	return "Benchmark" + prefix + strings.ReplaceAll(string(cfg), "-", "")
}

// timed runs f once as a separately timed warmup and then iters times,
// returning (steady-state mean, warmup duration). The mean matches what
// `go test -bench -benchtime=<iters>x` reports as ns/op (the benchmark
// framework's sizing probe plays the role of the warmup run there):
// process-warm state — key pools and the verification cache — is included,
// which is also the steady state of a long-lived node or audit service. The
// warmup duration is the cold cost of the same workload.
func timed(iters int, f func() error) (mean, cold time.Duration, err error) {
	start := time.Now()
	if err := f(); err != nil {
		return 0, 0, err
	}
	cold = time.Since(start)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), cold, nil
}

func writeJSONResults(path, baselinePath string, iters int, o eval.Options) error {
	if iters < 1 {
		iters = 1
	}
	// Load the baseline first: a bad path should fail before, not after,
	// minutes of benchmark runs.
	var prev *BenchFile
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		prev = new(BenchFile)
		if err := json.Unmarshal(raw, prev); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	var results []BenchResult

	fig5Metrics := func(f5 eval.Fig5Row) map[string]float64 {
		return map[string]float64{
			"traffic-factor": f5.Factor,
			"baseline-bytes": float64(f5.BaselineBytes),
			"auth-bytes":     float64(f5.AuthBytes),
			"ack-bytes":      float64(f5.AckBytes),
			"messages":       float64(f5.Messages),
		}
	}
	fig6Metrics := func(f6 eval.Fig6Row) map[string]float64 {
		return map[string]float64{
			"MB/min/node": f6.MBPerMin,
			"ckpt-bytes":  float64(f6.CkptBytes),
		}
	}

	// One run per configuration covers the Fig5 and Fig6 series; the run
	// itself is what the Fig5/Fig6 go benchmarks time.
	var serialQuagga5 eval.Fig5Row
	var serialQuagga6 eval.Fig6Row
	var serialQuaggaNs int64
	for _, cfg := range eval.AllConfigs {
		var res *eval.RunResult
		d, cold, err := timed(iters, func() (e error) { res, e = eval.Run(cfg, o); return })
		if err != nil {
			return fmt.Errorf("%s: %w", cfg, err)
		}
		f5 := eval.Figure5(res)
		results = append(results, BenchResult{
			Name: benchName("Fig5", cfg), NsPerOp: d.Nanoseconds(), ColdNsPerOp: cold.Nanoseconds(),
			Metrics: fig5Metrics(f5),
		})
		f6 := eval.Figure6(res)
		results = append(results, BenchResult{
			Name: benchName("Fig6", cfg), NsPerOp: d.Nanoseconds(), ColdNsPerOp: cold.Nanoseconds(),
			Metrics: fig6Metrics(f6),
		})
		if cfg == eval.Quagga {
			serialQuagga5, serialQuagga6, serialQuaggaNs = f5, f6, d.Nanoseconds()
		}
	}

	// Sharded-driver variant: the same Quagga run through the parallel
	// scheduler (4 workers — pinned rather than GOMAXPROCS so the sharded
	// code path is exercised even on single-core runners; on one core the
	// ratio is expected to hover around 1.0). The deterministic series MUST
	// be bit-identical to the serial rows (the scheduler's contract);
	// driver-speedup is serial ns/op divided by sharded ns/op.
	{
		po := o
		po.SimWorkers = 4
		var res *eval.RunResult
		d, cold, err := timed(iters, func() (e error) { res, e = eval.Run(eval.Quagga, po); return })
		if err != nil {
			return fmt.Errorf("Quagga (sharded driver): %w", err)
		}
		f5, f6 := eval.Figure5(res), eval.Figure6(res)
		if f5 != serialQuagga5 || f6 != serialQuagga6 {
			return fmt.Errorf("sharded Quagga run diverged from the serial reference:\nserial: %v / %v\nsharded: %v / %v",
				serialQuagga5, serialQuagga6, f5, f6)
		}
		m5 := fig5Metrics(f5)
		m5["driver-speedup"] = float64(serialQuaggaNs) / float64(d.Nanoseconds())
		results = append(results,
			BenchResult{Name: "BenchmarkFig5QuaggaParallel", NsPerOp: d.Nanoseconds(),
				ColdNsPerOp: cold.Nanoseconds(), Metrics: m5},
			BenchResult{Name: "BenchmarkFig6QuaggaParallel", NsPerOp: d.Nanoseconds(),
				ColdNsPerOp: cold.Nanoseconds(), Metrics: fig6Metrics(f6)})
	}

	// Store-backed variant: the same Quagga run with every log spilled to a
	// disk-backed segment store under a bounded hot tail, so the store's
	// append path is tracked alongside the in-memory series. The metric
	// values must stay bit-identical to the in-memory Fig5/Fig6 rows.
	{
		dir, err := os.MkdirTemp("", "snp-bench-store-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		so := o
		so.LogDir = dir
		so.LogHotTail = eval.DefaultHotTail
		var res *eval.RunResult
		d, cold, err := timed(iters, func() (e error) {
			res, e = eval.Run(eval.Quagga, so)
			if e == nil {
				// Close inside the timed region so every iteration (cold
				// and warm) measures the same run + sync + close work; the
				// Figure 5/6 series read only in-memory counters.
				e = res.Net.CloseLogs()
			}
			return
		})
		if err != nil {
			return fmt.Errorf("Quagga (store-backed): %w", err)
		}
		f5, f6 := eval.Figure5(res), eval.Figure6(res)
		results = append(results,
			BenchResult{
				Name: "BenchmarkFig5QuaggaStore", NsPerOp: d.Nanoseconds(), ColdNsPerOp: cold.Nanoseconds(),
				Metrics: map[string]float64{
					"traffic-factor": f5.Factor,
					"baseline-bytes": float64(f5.BaselineBytes),
					"auth-bytes":     float64(f5.AuthBytes),
					"ack-bytes":      float64(f5.AckBytes),
					"messages":       float64(f5.Messages),
				},
			},
			BenchResult{
				Name: "BenchmarkFig6QuaggaStore", NsPerOp: d.Nanoseconds(), ColdNsPerOp: cold.Nanoseconds(),
				Metrics: map[string]float64{
					"MB/min/node": f6.MBPerMin,
					"ckpt-bytes":  float64(f6.CkptBytes),
				},
			})
	}

	// Query-throughput rows: concurrent querier scopes over a store-backed
	// Quagga run, one pass against an empty persistent audit cache and one
	// against the cache that pass populated. The warm pass must be served
	// entirely from the cache (QueryThroughput enforces zero warm misses);
	// warm-speedup is cold mean-per-query over warm mean-per-query — the
	// replica-replay share of an audit, which is what the cache eliminates.
	{
		dir, err := os.MkdirTemp("", "snp-bench-qps-")
		if err != nil {
			return err
		}
		rows, err := eval.QueryThroughput(o, 4, 32, dir)
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("qps: %w", err)
		}
		cold, warm := rows[0], rows[1]
		qpsMetrics := func(r eval.QPSRow) map[string]float64 {
			return map[string]float64{
				"qps":          r.QPS,
				"p50-ms":       r.P50.Seconds() * 1000,
				"p99-ms":       r.P99.Seconds() * 1000,
				"workers":      float64(r.Workers),
				"queries":      float64(r.Queries),
				"cache-hits":   float64(r.Hits),
				"cache-misses": float64(r.Misses),
			}
		}
		warmMetrics := qpsMetrics(warm)
		if warm.NsPerQuery() > 0 {
			warmMetrics["warm-speedup"] = float64(cold.NsPerQuery()) / float64(warm.NsPerQuery())
		}
		results = append(results,
			BenchResult{Name: "BenchmarkQPSColdCache", NsPerOp: cold.NsPerQuery(), Metrics: qpsMetrics(cold)},
			BenchResult{Name: "BenchmarkQPSWarmCache", NsPerOp: warm.NsPerQuery(), Metrics: warmMetrics})
	}

	// Store cold-read row: the BenchmarkStoreColdRead pair (mmap'd table
	// decode vs one positioned read per record) as wall-clock numbers, so
	// the read-path ratio is tracked across PRs alongside the figures.
	{
		dir, err := os.MkdirTemp("", "snp-bench-coldread-")
		if err != nil {
			return err
		}
		row, err := eval.ColdReadProbe(dir, 4096)
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("cold-read probe: %w", err)
		}
		m := map[string]float64{
			"mmap-ns-per-op":  float64(row.MmapNsPerOp),
			"pread-ns-per-op": float64(row.PreadNsPerOp),
			"entries":         float64(row.Entries),
		}
		if row.MmapNsPerOp > 0 {
			m["pread-over-mmap"] = float64(row.PreadNsPerOp) / float64(row.MmapNsPerOp)
		}
		results = append(results, BenchResult{
			Name: "BenchmarkStoreColdRead", NsPerOp: row.MmapNsPerOp, Metrics: m,
		})
	}

	// Adversary scenario family: one run per behavior with one compromised
	// node, full-deployment audit, evidence scored (§6.1-style detection
	// metrics). The detection guarantee is enforced, not just reported: a
	// false accusation or a missed non-benign behavior fails the bench the
	// way a diverging sharded series does.
	for _, cfgName := range []eval.ConfigName{eval.Quagga, eval.ChordSmall, eval.HadoopSmall} {
		behaviors := adversary.Catalog()
		start := time.Now()
		sum, err := eval.AdversaryScenarios(cfgName, o, 1, behaviors)
		if err != nil {
			return fmt.Errorf("adversary scenarios %s: %w", cfgName, err)
		}
		d := time.Since(start)
		if n := sum.FalseAccusations(); n != 0 {
			return fmt.Errorf("adversary scenarios %s: %d honest nodes falsely accused", cfgName, n)
		}
		if rate := sum.DetectionRate(); rate != 1.0 {
			return fmt.Errorf("adversary scenarios %s: detection rate %.2f, want 1.0", cfgName, rate)
		}
		var failures, red, leads float64
		for _, r := range sum.Rows {
			failures += float64(r.Failures)
			red += float64(r.RedHosts)
			leads += float64(r.Unresponsive + r.Notes)
		}
		results = append(results, BenchResult{
			Name: benchName("Adversary", cfgName), NsPerOp: d.Nanoseconds() / int64(len(behaviors)),
			Metrics: map[string]float64{
				"detection-rate":    sum.DetectionRate(),
				"false-accusations": float64(sum.FalseAccusations()),
				"behaviors":         float64(len(behaviors)),
				"provable-failures": failures,
				"red-hosts":         red,
				"leads":             leads,
			},
		})
	}

	// Multi-process scenario family: one supervised deployment per app with
	// tamper-log on the compromised node and a kill+torn crash plan, audited
	// over the wire after recovery. ns/op is time-to-heal (crash-plan launch
	// to every process healthy again) — the wall-clock cost the supervisor
	// adds over an un-crashed run. The §4.2 guarantee is enforced like the
	// adversary family's: a false accusation or missed tamperer fails the
	// bench. Real wall-clock (process spawns, backoff, audit retries), so no
	// iteration loop: one run per app per invocation.
	{
		dir, err := multiprocDir()
		if err != nil {
			return err
		}
		rows, err := multiproc.Bench(dir, o.Seed)
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("multiproc scenarios: %w", err)
		}
		for _, r := range rows {
			if r.FalseAccused != 0 {
				return fmt.Errorf("multiproc %s: %d honest nodes falsely accused", r.App, r.FalseAccused)
			}
			if !r.Detected {
				return fmt.Errorf("multiproc %s: tamper-log not detected across process crashes", r.App)
			}
			results = append(results, BenchResult{
				Name:    "BenchmarkMultiproc" + strings.ToUpper(r.App[:1]) + r.App[1:],
				NsPerOp: r.TimeToHeal.Nanoseconds(),
				Metrics: map[string]float64{
					"restart-to-healthy-ms": r.RestartToHealthy.Seconds() * 1000,
					"time-to-heal-ms":       r.TimeToHeal.Seconds() * 1000,
					"detect-ms":             r.DetectLatency.Seconds() * 1000,
					"converged":             b2f(r.Converged),
					"false-accusations":     float64(r.FalseAccused),
					"unresponsive":          float64(r.Unresponsive),
					"restarts":              float64(r.Restarts),
					"torn-bytes":            float64(r.TornBytes),
				},
			})
		}
	}

	// The Fig8 query benchmarks: a fresh run plus the query, like the go
	// benchmarks (which re-run the config inside the timed loop).
	queries := []struct {
		name string
		run  func() (eval.Fig8Row, error)
	}{
		{"BenchmarkFig8QuaggaDisappear", func() (eval.Fig8Row, error) {
			res, err := eval.Run(eval.Quagga, o)
			if err != nil {
				return eval.Fig8Row{}, err
			}
			return eval.QuaggaDisappearQuery(res)
		}},
		{"BenchmarkFig8QuaggaBadGadget", func() (eval.Fig8Row, error) {
			res, err := eval.Run(eval.Quagga, o)
			if err != nil {
				return eval.Fig8Row{}, err
			}
			return eval.QuaggaBadGadgetQuery(res)
		}},
		{"BenchmarkFig8ChordLookupSmall", func() (eval.Fig8Row, error) {
			res, err := eval.Run(eval.ChordSmall, o)
			if err != nil {
				return eval.Fig8Row{}, err
			}
			return eval.ChordLookupQuery(res)
		}},
		{"BenchmarkFig8ChordLookupLarge", func() (eval.Fig8Row, error) {
			res, err := eval.Run(eval.ChordLarge, o)
			if err != nil {
				return eval.Fig8Row{}, err
			}
			return eval.ChordLookupQuery(res)
		}},
		{"BenchmarkFig4HadoopSquirrel", func() (eval.Fig8Row, error) {
			res, err := eval.Run(eval.HadoopSmall, o)
			if err != nil {
				return eval.Fig8Row{}, err
			}
			return eval.HadoopSquirrelQuery(res)
		}},
	}
	for _, q := range queries {
		var row eval.Fig8Row
		d, cold, err := timed(iters, func() (e error) { row, e = q.run(); return })
		if err != nil {
			return fmt.Errorf("%s: %w", q.name, err)
		}
		results = append(results, BenchResult{
			Name: q.name, NsPerOp: d.Nanoseconds(), ColdNsPerOp: cold.Nanoseconds(),
			Metrics: map[string]float64{
				"dl-bytes":        float64(row.LogBytes + row.AuthBytes + row.CkptBytes),
				"answer-vertices": float64(row.Answer),
				"turnaround-ms":   row.Turnaround.Seconds() * 1000,
			},
		})
	}

	out := BenchFile{
		GeneratedBy: "snp-bench -json",
		Scale:       float64(o.Scale),
		Results:     results,
	}
	if prev != nil {
		out.Baseline = prev.Results
		out.BaselineSource = baselinePath
		if prev.GeneratedBy != "" {
			out.BaselineSource = baselinePath + " (" + prev.GeneratedBy + ")"
		}
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
