// snp-query is the query-frontend binary: the daemon side serves
// provenance queries over framed TCP against a running deployment, and the
// client side submits them.
//
// Serve mode attaches a frontend to deployment daemons started elsewhere
// (snp-node processes, or anything speaking the node RPC protocol). The
// frontend needs no key material of its own: it re-derives the
// deployment's directory from the seed, exactly as the daemons do.
//
//	snp-query -serve -addr 127.0.0.1:7070 -app mincost -seed 1 \
//	          -nodes "b=127.0.0.1:9001,c=127.0.0.1:9002,d=127.0.0.1:9003" \
//	          -cache /tmp/snp-qf
//
// Client mode audits through a frontend (this binary's serve mode, or the
// one `snp-node -app ... -queryfront` hosts) and prints the verdict in the
// §4.2 tiers: provable evidence, then unreachable leads.
//
//	snp-query -connect 127.0.0.1:7070 -audit             # whole deployment
//	snp-query -connect 127.0.0.1:7070 -audit -targets b  # named targets
//	snp-query -connect 127.0.0.1:7070 -stats             # frontend counters
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/queryfront"
	"repro/internal/supervisor"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	serve := flag.Bool("serve", false, "run a query frontend (needs -addr, -app, -nodes)")
	addr := flag.String("addr", "127.0.0.1:7070", "serve: listen address for query clients")
	app := flag.String("app", "", "serve: deployment workload ("+strings.Join(supervisor.AppNames(), ", ")+")")
	seed := flag.Int64("seed", 1, "serve: deployment seed (directory key derivation must match the daemons)")
	nodes := flag.String("nodes", "", "serve: comma-separated id=host:port pairs for the deployment's daemons")
	tpropMs := flag.Int("tprop-ms", 0, "serve: deployment propagation bound in ms (0 = daemon default; must match)")
	cacheDir := flag.String("cache", "", "serve: persist the shared audit cache under this directory (empty: in-memory only)")
	sessions := flag.Int("sessions", 0, "serve: querier-session pool size (0 = default)")
	queueLen := flag.Int("queue", 0, "serve: admission-queue length (0 = default 4x sessions)")

	connect := flag.String("connect", "", "client: frontend address to dial")
	audit := flag.Bool("audit", false, "client: run an audit query")
	targets := flag.String("targets", "", "client: comma-separated audit targets (empty: the whole deployment)")
	stats := flag.Bool("stats", false, "client: print the frontend's FrontStats")
	flag.Parse()

	switch {
	case *serve:
		if err := runServe(*addr, *app, *nodes, *seed, *tpropMs, *cacheDir, *sessions, *queueLen); err != nil {
			log.Fatal(err)
		}
	case *connect != "":
		if err := runClient(*connect, *targets, *audit, *stats); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "snp-query: need -serve (daemon mode) or -connect (client mode)")
		flag.Usage()
		os.Exit(2)
	}
}

func runServe(addr, appName, nodes string, seed int64, tpropMs int, cacheDir string, sessions, queueLen int) error {
	if nodes == "" {
		return fmt.Errorf("snp-query: -serve needs -nodes (id=host:port,...)")
	}
	app, err := supervisor.AppByName(appName)
	if err != nil {
		return err
	}
	addrs := make(map[types.NodeID]string)
	for _, pair := range strings.Split(nodes, ",") {
		id, hostport, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || hostport == "" {
			return fmt.Errorf("snp-query: malformed -nodes entry %q (want id=host:port)", pair)
		}
		addrs[types.NodeID(id)] = hostport
	}

	cluster := transport.NewCluster()
	defer cluster.Close()
	for id, a := range addrs {
		cluster.AddPeer(id, a)
	}

	// The directory and protocol parameters must mirror the daemons'
	// (supervisor.RunDaemon): key i belongs to the i-th node of the app's
	// canonical node list, regardless of which subset -nodes lists.
	cfg := core.DefaultConfig()
	cfg.Tprop = types.Time(supervisor.NodeConfig{TpropMs: tpropMs}.Tprop())
	cfg.DeltaClock = cfg.Tprop / 2
	cfg.CheckpointEvery = 0
	dir := core.NewDirectory()
	for i, id := range app.Nodes {
		key, keyErr := cryptoutil.PooledKey(cfg.Suite, seed*1000+int64(100+i))
		if keyErr != nil {
			return keyErr
		}
		dir.Register(id, key.Public())
	}
	if cacheDir != "" {
		cache, cacheErr := core.OpenAuditCache(cacheDir, cfg.Suite)
		if cacheErr != nil {
			return cacheErr
		}
		defer cache.Close()
		cfg.AuditCache = cache
	}

	front, err := queryfront.Serve(queryfront.Config{
		Cluster: cluster, Base: cfg, Dir: dir,
		Factory: app.Factory, ConfigureQuerier: app.ConfigureQuerier,
		Sessions: sessions, QueueLen: queueLen,
	}, addr)
	if err != nil {
		return err
	}
	defer front.Close()
	fmt.Printf("serving %s queries on %s (%d peers)\n", app.Name, front.Addr(), len(addrs))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	fmt.Printf("%v: draining\n", s)
	fmt.Println("final:", front.Stats())
	return nil
}

func runClient(addr, targets string, doAudit, doStats bool) error {
	cl, err := queryfront.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	if doAudit {
		var ids []types.NodeID
		for _, t := range strings.Split(targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				ids = append(ids, types.NodeID(t))
			}
		}
		v, err := cl.Audit(ids...)
		if err != nil {
			return err
		}
		printVerdict(v)
	}
	if doStats {
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Println(st)
	}
	return nil
}

// printVerdict renders an audit verdict in the paper's evidence tiers.
func printVerdict(v *queryfront.AuditResult) {
	fmt.Printf("audit finished in %v\n", v.Elapsed)
	if strong := v.StrongNodes(); len(strong) > 0 {
		fmt.Printf("PROVABLY FAULTY: %v\n", strong)
		for _, f := range v.Failures {
			fmt.Printf("  %s@%d: %s\n", f.Node, f.Seq, f.Reason)
		}
		for _, id := range v.RedHosts {
			fmt.Printf("  %s: red provenance vertex\n", id)
		}
	} else {
		fmt.Println("no provable evidence of misbehavior")
	}
	if len(v.Unreachable) > 0 {
		leads := append([]queryfront.Lead(nil), v.Unreachable...)
		sort.Slice(leads, func(i, j int) bool { return leads[i].Node < leads[j].Node })
		fmt.Println("unreachable (unattributable leads, not evidence):")
		for _, l := range leads {
			fmt.Printf("  %s: %s\n", l.Node, l.Err)
		}
	}
	if len(v.Notes) > 0 {
		fmt.Printf("missing-ack notes in scope: %d\n", len(v.Notes))
	}
}
