// Command snp-vet runs the repo's invariant-enforcing analyzer suite over
// a package pattern (default ./...) and exits nonzero on any finding.
//
//	go run ./cmd/snp-vet ./...
//
// The suite (see internal/analysis):
//
//	detpure      no wall clock / global randomness reachable from
//	             deterministic packages (facts propagate across packages)
//	boundedmake  allocations sized by wire-decoded integers must go
//	             through wire.Reader.Count
//	nopanic      no panic / log.Fatal / os.Exit in audit-path packages
//	maporder     no map-order-dependent writes to encoders, hashes, log
//	             appends, or metric series in deterministic packages
//	nilness      known-nil dereferences
//	shadow       inner declarations shadowing a still-used outer variable
//
// A finding is silenced by an inline comment naming the analyzer and the
// reason — `//snpvet:allow <analyzer> <reason>` — on the offending line or
// the line above. Every suppression in effect is printed on each run (CI
// surfaces the list), a reasonless allow is an error, and an allow no
// diagnostic matches is reported as stale.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/boundedmake"
	"repro/internal/analysis/detpure"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nilness"
	"repro/internal/analysis/nopanic"
	"repro/internal/analysis/shadow"
)

// Suite is the full analyzer set snp-vet runs.
var Suite = []*analysis.Analyzer{
	detpure.Analyzer,
	boundedmake.Analyzer,
	nopanic.Analyzer,
	maporder.Analyzer,
	nilness.Analyzer,
	shadow.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("dir", ".", "directory to resolve package patterns in")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: snp-vet [-only analyzers] [-dir dir] [packages]\n\nAnalyzers:\n")
		for _, a := range Suite {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := Suite
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range Suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range splitComma(*only) {
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "snp-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	res, err := driver.Run(*dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snp-vet: %v\n", err)
		os.Exit(2)
	}
	res.Report(os.Stdout)
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
