// snp-node is the multi-process deployment binary: one image that serves as
// both the per-node daemon and the supervisor that launches a fleet of them.
//
// Daemon mode runs a single node to completion — load the config, recover
// the on-disk log if asked, serve the framed-TCP transport, drive the
// workload on a wall-clock tick loop, drain gracefully on SIGTERM:
//
//	snp-node -config node.json
//
// Supervise mode launches a whole deployment of daemon processes (re-exec'ing
// this same binary per node), keeps them alive through crashes, and reports
// health until interrupted:
//
//	snp-node -app quagga -dir /tmp/snp -seed 1
//
// The supervisor also spawns its children through this executable when it is
// the child image, via the SNP_NODE_CONFIG environment variable — which is
// why MaybeChild runs before flag parsing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/supervisor"
	"repro/internal/types"
)

func main() {
	supervisor.MaybeChild()

	config := flag.String("config", "", "run one node daemon from this NodeConfig file and exit when it stops")
	app := flag.String("app", "", "supervise mode: workload to deploy ("+strings.Join(supervisor.AppNames(), ", ")+")")
	dir := flag.String("dir", "", "supervise mode: deployment root (configs, per-node logs, data stores)")
	seed := flag.Int64("seed", 1, "supervise mode: deployment seed (keys, backoff jitter)")
	tickMs := flag.Int("tick-ms", 0, "supervise mode: per-node tick period in ms (0 = daemon default)")
	syncEvery := flag.Int("sync-every", 0, "supervise mode: ticks between durable log syncs (0 = daemon default)")
	queryFront := flag.String("queryfront", "", "supervise mode: also host a query frontend on this listen address (e.g. 127.0.0.1:7070); snp-query and snp-forensics -connect dial it")
	flag.Parse()

	switch {
	case *config != "":
		cfg, err := supervisor.LoadNodeConfig(*config)
		if err != nil {
			log.Fatal(err)
		}
		if err := supervisor.RunDaemon(cfg); err != nil {
			log.Fatal(err)
		}
	case *app != "":
		if err := supervise(*app, *dir, *seed, *tickMs, *syncEvery, *queryFront); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "snp-node: need -config (daemon mode) or -app (supervise mode)")
		flag.Usage()
		os.Exit(2)
	}
}

func supervise(app, dir string, seed int64, tickMs, syncEvery int, queryFront string) error {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "snp-node-*")
		if err != nil {
			return err
		}
		fmt.Println("deployment root:", dir)
	}
	sup, err := supervisor.New(supervisor.Options{
		Dir:        dir,
		Seed:       seed,
		App:        app,
		TickMs:     tickMs,
		SyncEvery:  syncEvery,
		QueryFront: queryFront,
	})
	if err != nil {
		return err
	}
	if err := sup.Start(); err != nil {
		sup.Stop(2 * time.Second)
		return err
	}

	addrs := sup.Addrs()
	ids := make([]string, 0, len(addrs))
	for id := range addrs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("%-8s %s\n", id, addrs[types.NodeID(id)])
	}
	if front := sup.Front(); front != nil {
		fmt.Printf("%-8s %s\n", "queryfront", front.Addr())
	}

	if err := sup.WaitHealthy(30 * time.Second); err != nil {
		fmt.Println("not healthy:", err)
	} else {
		fmt.Println("all nodes healthy")
	}
	if err := sup.WaitConverged(60 * time.Second); err != nil {
		fmt.Println("not converged:", err)
	} else {
		fmt.Println("workload converged")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	s := <-sig
	fmt.Printf("%v: stopping deployment\n", s)
	if err := sup.Stop(5 * time.Second); err != nil {
		return err
	}
	if failed := sup.Failed(); len(failed) != 0 {
		return fmt.Errorf("nodes failed: %v", failed)
	}
	return nil
}
