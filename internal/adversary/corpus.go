package adversary

import (
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// Corpus is a deterministic set of wire encodings covering the attack
// surfaces adversaries exercise: log entries (honest and doctored),
// retrieved segments (intact, tampered, truncated), and the audit-protocol
// requests and responses. The native fuzz targets seed from it, so every
// shape a behavior in this package can put on the wire is also a fuzzing
// starting point.
type Corpus struct {
	Entries   [][]byte
	Segments  [][]byte
	Requests  [][]byte
	Responses [][]byte
}

// WireCorpus builds the corpus. It is pure: the same bytes every call.
func WireCorpus() Corpus {
	tup := types.MakeTuple("cost", types.N("a"), types.N("d"), types.N("b"), types.I(5))
	msg := types.Message{Src: "b", Dst: "a", Pol: types.PolAppear, Tuple: tup, SendTime: 7 * types.Second, Seq: 3}
	forged := msg
	forged.Tuple = MutateTuple(tup)
	forged.Seq += 1 << 20

	ckpt := seclog.BuildCheckpoint(cryptoutil.Ed25519SHA256, nil, []byte("machine-state"),
		[]seclog.ExtantItem{{
			Tuple: tup, Appeared: 2 * types.Second, Local: true,
			Believed: []seclog.BelievedRecord{{Origin: "b", Since: 3 * types.Second}},
		}})

	entries := []*seclog.Entry{
		{T: types.Second, Type: seclog.EIns, Tuple: tup},
		{T: types.Second, Type: seclog.EIns, Tuple: MutateTuple(tup),
			MaybeRule: "R9", MaybeBody: []types.Tuple{tup}, Replaces: []types.Tuple{tup}},
		{T: 2 * types.Second, Type: seclog.EDel, Tuple: tup},
		{T: 3 * types.Second, Type: seclog.ESnd, Msgs: []types.Message{msg, forged}},
		{T: 4 * types.Second, Type: seclog.ERcv, Msgs: []types.Message{msg},
			PeerPrevHash: []byte{1, 2, 3}, PeerTime: 3 * types.Second, PeerSig: []byte{4, 5}, PeerSeq: 9},
		{T: 5 * types.Second, Type: seclog.EAck, AckIDs: []types.MessageID{msg.ID()},
			PeerPrevHash: []byte{6}, PeerTime: 4 * types.Second, PeerSig: []byte{7}, PeerSeq: 10,
			EnvSig: []byte{8, 9}},
		{T: 6 * types.Second, Type: seclog.ECkpt, Ckpt: ckpt},
	}

	var c Corpus
	for _, e := range entries {
		c.Entries = append(c.Entries, wire.Encode(e))
	}

	seg := &seclog.SegmentData{Node: "b", From: 1, BaseHash: []byte("base"), Entries: entries}
	c.Segments = append(c.Segments, wire.Encode(seg))
	truncated := &seclog.SegmentData{Node: "b", From: 1, BaseHash: []byte("base"), Entries: entries[:3]}
	c.Segments = append(c.Segments, wire.Encode(truncated))
	c.Segments = append(c.Segments, wire.Encode(&seclog.SegmentData{Node: "b", From: 0}))

	auth := seclog.Authenticator{Node: "b", Seq: 7, T: 6 * types.Second,
		Hash: []byte("head-hash"), Sig: []byte("signature")}
	c.Requests = append(c.Requests,
		wire.Encode(core.RetrieveRequest{Auth: auth, StartTime: types.Second, EndTime: 9 * types.Second}),
		wire.Encode(core.RetrieveRequest{Auth: seclog.Authenticator{Node: "b", Seq: ^uint64(0)}}),
	)
	c.Responses = append(c.Responses,
		wire.Encode(core.RetrieveResponse{Segment: seg, NewAuth: &auth}),
		wire.Encode(core.RetrieveResponse{Segment: truncated}),
	)
	return c
}
