package adversary

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/types"
)

// Verdict is everything a full audit of a deployment surfaced, separated
// into the paper's evidence tiers: provable evidence (audit failures and
// red vertices, which must only ever implicate compromised nodes) and
// unattributable leads (unresponsive nodes, missing-ack reports, yellow
// vertices on compromised nodes' exchanges).
type Verdict struct {
	// Failures are the auditor's provable findings (§5.5).
	Failures []core.Failure
	// RedHosts hosts at least one red vertex in the reconstructed graph.
	RedHosts []types.NodeID
	// Unresponsive maps nodes that failed to answer audits to the error.
	Unresponsive map[types.NodeID]error
	// Notes are the maintainer's missing-ack reports (§5.4).
	Notes []core.MissingAckNote
}

// StrongNodes returns the nodes implicated by provable evidence, sorted.
func (v *Verdict) StrongNodes() []types.NodeID {
	seen := map[types.NodeID]bool{}
	for _, f := range v.Failures {
		seen[f.Node] = true
	}
	for _, h := range v.RedHosts {
		seen[h] = true
	}
	return sortedNodeSet(seen)
}

// LeadNodes returns the nodes involved in unattributable leads, sorted: the
// unresponsive set plus both endpoints of every reported missing ack. Leads
// may legitimately involve honest nodes (a missing ack implicates an
// exchange, not an endpoint), so they are matched against the compromised
// set rather than held to the accuracy bar.
func (v *Verdict) LeadNodes() []types.NodeID {
	seen := map[types.NodeID]bool{}
	for id := range v.Unresponsive {
		seen[id] = true
	}
	for _, n := range v.Notes {
		seen[n.ID.Src] = true
		seen[n.ID.Dst] = true
	}
	return sortedNodeSet(seen)
}

// Detected reports whether any evidence — provable or lead — implicates a
// node in the compromised set.
func (v *Verdict) Detected(compromised []types.NodeID) bool {
	bad := nodeSet(compromised)
	for _, n := range v.StrongNodes() {
		if bad[n] {
			return true
		}
	}
	for _, n := range v.LeadNodes() {
		if bad[n] {
			return true
		}
	}
	return false
}

// FalselyAccused returns honest nodes implicated by *provable* evidence —
// the accuracy guarantee (Theorem 5) demands this is always empty.
func (v *Verdict) FalselyAccused(compromised []types.NodeID) []types.NodeID {
	bad := nodeSet(compromised)
	var out []types.NodeID
	for _, n := range v.StrongNodes() {
		if !bad[n] {
			out = append(out, n)
		}
	}
	return out
}

func (v *Verdict) String() string {
	return fmt.Sprintf("failures=%d redHosts=%v unresponsive=%d notes=%d",
		len(v.Failures), v.RedHosts, len(v.Unresponsive), len(v.Notes))
}

func nodeSet(ids []types.NodeID) map[types.NodeID]bool {
	m := make(map[types.NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func sortedNodeSet(seen map[types.NodeID]bool) []types.NodeID {
	out := make([]types.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AuditAll audits every node of the deployment through q — retrieve,
// verify, replay, quiescence finalization, and the §5.5 consistency check
// over all peer-held authenticators — and assembles the Verdict. maint may
// be nil. The audit order is the sorted node order, so verdicts are
// deterministic.
func AuditAll(q *core.Querier, maint *core.Maintainer) *Verdict {
	v := &Verdict{Unresponsive: make(map[types.NodeID]error)}
	nodes := q.Fetch.Nodes()
	for _, id := range nodes {
		if err := q.EnsureAudited(id, 0); err != nil {
			v.Unresponsive[id] = err
		}
	}
	q.Auditor.Finalize()
	// The §5.5 consistency check: every authenticator any peer holds about
	// a node must lie on the chain that node presented.
	for _, target := range nodes {
		for _, peer := range nodes {
			if peer == target {
				continue
			}
			for _, a := range q.Fetch.AuthsAbout(peer, target, 0, types.Time(math.MaxInt64)) {
				q.Auditor.CheckAuthenticator(a)
			}
		}
	}
	v.Refresh(q, maint)
	return v
}

// AuditUntil is AuditAll with retry-until-deadline semantics for live
// networks: nodes that fail to answer are retried every retryEvery (their
// sticky yellow state cleared between attempts) until they answer or the
// deadline passes. Nodes still unresponsive at the deadline stay in the
// Verdict's Unresponsive tier — unattributable leads, exactly what §4.2
// allows the system to say about a peer it cannot reach. Finalization and
// the §5.5 consistency sweep run once, after the retry loop settles.
func AuditUntil(q *core.Querier, maint *core.Maintainer, deadline time.Time, retryEvery time.Duration) *Verdict {
	v := &Verdict{Unresponsive: make(map[types.NodeID]error)}
	nodes := q.Fetch.Nodes()
	pending := nodes
	for {
		var again []types.NodeID
		for _, id := range pending {
			q.ForgetUnreachable(id)
			if err := q.EnsureAudited(id, 0); err != nil {
				v.Unresponsive[id] = err
				again = append(again, id)
			} else {
				delete(v.Unresponsive, id)
			}
		}
		if len(again) == 0 || !time.Now().Before(deadline) {
			break
		}
		pending = again
		if wait := min(retryEvery, time.Until(deadline)); wait > 0 {
			time.Sleep(wait)
		}
	}
	q.Auditor.Finalize()
	for _, target := range nodes {
		for _, peer := range nodes {
			if peer == target {
				continue
			}
			for _, a := range q.Fetch.AuthsAbout(peer, target, 0, types.Time(math.MaxInt64)) {
				q.Auditor.CheckAuthenticator(a)
			}
		}
	}
	v.Refresh(q, maint)
	return v
}

// Refresh re-snapshots the evidence that later queries may have extended
// (macroqueries run further consistency checks, which can append failures).
func (v *Verdict) Refresh(q *core.Querier, maint *core.Maintainer) {
	v.Failures = q.Auditor.Failures()
	v.RedHosts = q.Auditor.Graph().HostsWithColor(provgraph.Red)
	v.Notes = maint.Notes()
}
