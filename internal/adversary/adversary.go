// Package adversary is a first-class Byzantine-behavior injection framework
// for the SNP threat model (§2, §4): structured, composable node behaviors —
// log tampering and truncation, equivocation, message suppression and
// forgery, false derivations, replayed and withheld acknowledgments,
// signature stripping, audit refusal — installable per node through the
// core fault hooks without forking any honest code path.
//
// The package also carries the detection-guarantee conformance harness
// (conformance.go): for every behavior × application × seed it asserts the
// SNP invariant of §4.2 — the querier either surfaces evidence implicating a
// compromised node (and provable evidence never implicates an honest one),
// or the honest nodes' provenance answers are bit-identical to the
// adversary-free run.
package adversary

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/seclog"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Behavior is one named Byzantine behavior. Install arms it on a node by
// chaining onto the node's fault hooks; behaviors compose (several can be
// installed on one node) because each wraps whatever hook was there before.
// A Behavior instance may carry per-node state (e.g. a fired-once flag), so
// install a fresh instance per node.
type Behavior interface {
	Name() string
	Install(n *core.Node)
}

// Class describes how a behavior is expected to surface under audits,
// matching the paper's guarantee tiers (§4.2).
type Class uint8

// Behavior classes.
const (
	// Provable behaviors yield hard evidence: an audit failure or a red
	// vertex naming the compromised node (detection, Theorem 6).
	Provable Class = iota
	// Traceable behaviors cannot be pinned on one node (the paper's
	// "faulty or unreachable" cases): they leave leads — missing-ack
	// reports, yellow vertices, refused retrieves — that implicate the
	// compromised node's exchanges without proving which endpoint lied.
	Traceable
	// Benign behaviors must not perturb honest nodes at all: every honest
	// provenance answer stays bit-identical to the adversary-free run.
	Benign
)

func (c Class) String() string {
	switch c {
	case Provable:
		return "provable"
	case Traceable:
		return "traceable"
	case Benign:
		return "benign"
	default:
		return "class?"
	}
}

// Profile pairs a behavior constructor with its expected detection class;
// the catalog of profiles is what the conformance suite iterates.
type Profile struct {
	Name  string
	Class Class
	New   func() Behavior
}

// Catalog returns every behavior in the library, one profile per threat in
// the §2 model, in a fixed order.
func Catalog() []Profile {
	return []Profile{
		{"suppress", Provable, func() Behavior { return Suppress(nil) }},
		{"forge", Provable, func() Behavior { return Forge() }},
		{"equivocate", Provable, func() Behavior { return Equivocate() }},
		{"tamper-log", Provable, func() Behavior { return TamperLog() }},
		{"truncate-log", Provable, func() Behavior { return TruncateLog() }},
		{"strip-sig", Traceable, func() Behavior { return StripSignatures() }},
		{"withhold-acks", Traceable, func() Behavior { return WithholdAcks() }},
		{"replay-acks", Traceable, func() Behavior { return ReplayAcks() }},
		{"refuse-audit", Traceable, func() Behavior { return RefuseAudits() }},
		{"dormant", Benign, func() Behavior { return Dormant() }},
	}
}

// ProfileByName returns the catalog entry with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Plan maps compromised nodes to the behaviors to arm on them.
type Plan map[types.NodeID][]Behavior

// Hook adapts the plan to simnet.Config.OnNode / eval.Options.OnNode: every
// node the deployment creates is checked against the plan and armed at
// creation time, before any event runs.
func (p Plan) Hook() func(*core.Node) {
	return func(n *core.Node) {
		for _, b := range p[n.ID] {
			b.Install(n)
		}
	}
}

// Compromised returns the plan's node set, sorted.
func (p Plan) Compromised() []types.NodeID {
	out := make([]types.NodeID, 0, len(p))
	for id := range p {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Arm installs a plan's behaviors on the already-created nodes of a running
// deployment (post-deploy injection — a node compromised mid-experiment).
// Deploy-time arming uses Plan.Hook with simnet.Config.OnNode instead.
func Arm(net *simnet.Net, p Plan) error {
	for _, id := range p.Compromised() {
		n := net.Node(id)
		if n == nil {
			return fmt.Errorf("adversary: no node %s to compromise", id)
		}
		for _, b := range p[id] {
			b.Install(n)
		}
	}
	return nil
}

// TamperOutputs builds a bespoke behavior over the machine-output hook: f
// rewrites the outputs of every step, composing with whatever else is
// installed. It is the escape hatch for application-specific attacks
// (injecting one particular bogus route, say) that still go through the one
// injection path the framework provides.
func TamperOutputs(name string, f func(ev types.Event, outs []types.Output) []types.Output) Behavior {
	return &custom{name: name, install: func(n *core.Node) { chainTamper(n, f) }}
}

// TamperPackets builds a bespoke behavior over the outgoing-packet hook
// (see core.Node.TamperPacket for the contract).
func TamperPackets(name string, f func(dst types.NodeID, pkt *core.Packet) []*core.Packet) Behavior {
	return &custom{name: name, install: func(n *core.Node) { chainPacket(n, f) }}
}

type custom struct {
	name    string
	install func(*core.Node)
}

func (c *custom) Name() string         { return c.name }
func (c *custom) Install(n *core.Node) { c.install(n) }

// chainPacket wraps the node's TamperPacket hook with f, preserving any
// hook already installed (behavior composition).
func chainPacket(n *core.Node, f func(dst types.NodeID, pkt *core.Packet) []*core.Packet) {
	prev := n.TamperPacket
	n.TamperPacket = func(dst types.NodeID, pkt *core.Packet) []*core.Packet {
		if prev == nil {
			return f(dst, pkt)
		}
		var out []*core.Packet
		for _, p := range prev(dst, pkt) {
			if p != nil {
				out = append(out, f(dst, p)...)
			}
		}
		return out
	}
}

// chainTamper wraps the node's machine-output Tamper hook.
func chainTamper(n *core.Node, f func(ev types.Event, outs []types.Output) []types.Output) {
	prev := n.Tamper
	n.Tamper = func(ev types.Event, outs []types.Output) []types.Output {
		if prev != nil {
			outs = prev(ev, outs)
		}
		return f(ev, outs)
	}
}

// chainRetrieve wraps the node's TamperRetrieve hook.
func chainRetrieve(n *core.Node, f func(req core.RetrieveRequest, resp *core.RetrieveResponse) (*core.RetrieveResponse, error)) {
	prev := n.TamperRetrieve
	n.TamperRetrieve = func(req core.RetrieveRequest, resp *core.RetrieveResponse) (*core.RetrieveResponse, error) {
		if prev != nil {
			var err error
			if resp, err = prev(req, resp); err != nil {
				return nil, err
			}
		}
		return f(req, resp)
	}
}

// MutateTuple derives a plausible-but-false variant of a tuple: the same
// relation and arity (so every application's machine accepts it as input)
// with one non-location argument perturbed. It is the generic payload used
// by forgery and equivocation behaviors across applications.
func MutateTuple(t types.Tuple) types.Tuple {
	args := append([]types.Value(nil), t.Args...)
	for i := len(args) - 1; i >= 1; i-- {
		switch args[i].Kind {
		case types.KindInt:
			args[i] = types.I(args[i].Int + 7777)
			return types.MakeTuple(t.Rel, args...)
		case types.KindString:
			args[i] = types.S(args[i].Str + "~forged")
			return types.MakeTuple(t.Rel, args...)
		}
	}
	// Only node-valued (routing) arguments: perturbing them would change
	// where the tuple lives, so mark the relation instead. Deterministic
	// machines simply never derive the marked relation.
	return types.MakeTuple(t.Rel+"~forged", args...)
}

// ---------------------------------------------------------------------------
// Provable behaviors.

type suppress struct {
	match func(types.Message) bool
}

// Suppress drops matching machine-output messages before they are logged or
// sent (passive evasion, §7.3's suppression scenario). A nil matcher
// suppresses the node's first outgoing message and everything equal to it.
// Replay of the node's own log exposes the machine outputs that were never
// transmitted: red send vertices.
func Suppress(match func(types.Message) bool) Behavior {
	return &suppress{match: match}
}

func (b *suppress) Name() string { return "suppress" }

func (b *suppress) Install(n *core.Node) {
	var target *types.MessageID
	match := b.match
	if match == nil {
		match = func(m types.Message) bool {
			if target == nil {
				id := m.ID()
				target = &id
			}
			// Suppress every send to the first victim destination: a
			// deterministic, app-independent choice of what to hide.
			return m.Dst == target.Dst
		}
	}
	prev := n.DropSend
	n.DropSend = func(m types.Message) bool {
		if prev != nil && prev(m) {
			return true
		}
		return match(m)
	}
}

type forge struct{ done bool }

// Forge injects one false derivation: the node claims (and ships) a tuple
// its machine never derived, with no valid support. Audit replay of the
// node's log cannot reproduce the send, so the snd entry turns red
// (completeness, Theorem 6; §7.3's fabrication scenario).
func Forge() Behavior { return &forge{} }

func (b *forge) Name() string { return "forge" }

func (b *forge) Install(n *core.Node) {
	chainTamper(n, func(ev types.Event, outs []types.Output) []types.Output {
		if b.done {
			return outs
		}
		for _, o := range outs {
			if o.Kind != types.OutSend {
				continue
			}
			b.done = true
			m := *o.Msg
			m.Tuple = MutateTuple(m.Tuple)
			m.Seq += 1 << 20 // a sequence number the machine never assigned
			return append(outs, types.Output{Kind: types.OutSend, Msg: &m})
		}
		return outs
	})
}

type equivocate struct{ done bool }

// Equivocate forks the node's log at its next outgoing envelope: the victim
// receives a properly signed envelope whose content (and therefore chain
// hash) differs from the entry the node actually logged at that position —
// divergent commitments to different observers. The §5.5 consistency
// machinery cross-checks the victim's implied commitment against the
// presented chain and records an equivocation failure.
func Equivocate() Behavior { return &equivocate{} }

func (b *equivocate) Name() string { return "equivocate" }

func (b *equivocate) Install(n *core.Node) {
	suite, stats := n.Suite(), n.Stats
	chainPacket(n, func(dst types.NodeID, pkt *core.Packet) []*core.Packet {
		if b.done || pkt.Kind != core.PktEnvelope || len(pkt.Envelope.Msgs) == 0 {
			return []*core.Packet{pkt}
		}
		env := *pkt.Envelope
		msgs := append([]types.Message(nil), env.Msgs...)
		msgs[0].Tuple = MutateTuple(msgs[0].Tuple)
		env.Msgs = msgs
		// Re-commit to the forked content exactly as the honest sender
		// committed to the real one: same position, same previous hash,
		// fresh signature over the forked chain head.
		snd := &seclog.Entry{T: env.T, Type: seclog.ESnd, Msgs: msgs}
		hx := seclog.ChainHash(suite, stats, env.PrevHash, snd)
		sig, err := n.Log.Sign(env.T, hx)
		if err != nil {
			return []*core.Packet{pkt}
		}
		env.Sig = sig
		b.done = true
		return []*core.Packet{{Kind: core.PktEnvelope, Envelope: &env}}
	})
}

type tamperLog struct{}

// TamperLog serves audits a doctored log: the first ins entry of every
// retrieved segment is rewritten (as if the node edited its history after
// the fact). The recomputed hash chain no longer matches the node's own
// authenticators — provable tampering (§5.4).
func TamperLog() Behavior { return tamperLog{} }

func (tamperLog) Name() string { return "tamper-log" }

func (tamperLog) Install(n *core.Node) {
	chainRetrieve(n, func(req core.RetrieveRequest, resp *core.RetrieveResponse) (*core.RetrieveResponse, error) {
		seg := *resp.Segment
		seg.Entries = append([]*seclog.Entry(nil), resp.Segment.Entries...)
		for i, e := range seg.Entries {
			if e.Type != seclog.EIns {
				continue
			}
			doctored := *e
			doctored.Tuple = MutateTuple(e.Tuple)
			seg.Entries[i] = &doctored
			break
		}
		return &core.RetrieveResponse{Segment: &seg, NewAuth: resp.NewAuth}, nil
	})
}

type truncateLog struct{}

// TruncateLog withholds the tail of every retrieved segment while still
// presenting evidence that covers it: the authenticator points beyond the
// served entries, which verification rejects (§5.4 — the node cannot
// produce a log matching its own commitments).
func TruncateLog() Behavior { return truncateLog{} }

func (truncateLog) Name() string { return "truncate-log" }

func (truncateLog) Install(n *core.Node) {
	chainRetrieve(n, func(req core.RetrieveRequest, resp *core.RetrieveResponse) (*core.RetrieveResponse, error) {
		seg := *resp.Segment
		if len(resp.Segment.Entries) > 1 {
			seg.Entries = append([]*seclog.Entry(nil), resp.Segment.Entries[:len(resp.Segment.Entries)-1]...)
		}
		// Keep the original (now out-of-range) authenticator: the node
		// pretends the history simply ends earlier.
		return &core.RetrieveResponse{Segment: &seg, NewAuth: resp.NewAuth}, nil
	})
}

// ---------------------------------------------------------------------------
// Traceable behaviors.

type stripSig struct{}

// StripSignatures corrupts the commitment signature on every outgoing
// envelope. Receivers reject the envelopes, so the traffic is effectively
// suppressed at the wire; the sender's own log stays consistent and it
// reports the missing acks itself, leaving yellow (unprovable) send
// vertices and maintainer leads rather than hard evidence.
func StripSignatures() Behavior { return stripSig{} }

func (stripSig) Name() string { return "strip-sig" }

func (stripSig) Install(n *core.Node) {
	chainPacket(n, func(dst types.NodeID, pkt *core.Packet) []*core.Packet {
		if pkt.Kind != core.PktEnvelope {
			return []*core.Packet{pkt}
		}
		env := *pkt.Envelope
		env.Sig = append([]byte(nil), env.Sig...)
		if len(env.Sig) > 0 {
			env.Sig[0] ^= 0xFF
		}
		return []*core.Packet{{Kind: core.PktEnvelope, Envelope: &env}}
	})
}

type withholdAcks struct{}

// WithholdAcks receives and logs envelopes normally but never transmits the
// acknowledgments. Honest senders retransmit, then report the missing acks
// (§5.4), so the loss cannot be misattributed: the leads name the exchange
// with the compromised receiver.
func WithholdAcks() Behavior { return withholdAcks{} }

func (withholdAcks) Name() string { return "withhold-acks" }

func (withholdAcks) Install(n *core.Node) {
	chainPacket(n, func(dst types.NodeID, pkt *core.Packet) []*core.Packet {
		if pkt.Kind == core.PktAck {
			return nil
		}
		return []*core.Packet{pkt}
	})
}

type replayAcks struct{ stale *core.Packet }

// ReplayAcks answers the first envelope honestly, then replays that first
// acknowledgment in place of every later one. Honest senders reject the
// stale ack (it references an already-acknowledged exchange), retransmit,
// and report the missing acknowledgments.
func ReplayAcks() Behavior { return &replayAcks{} }

func (b *replayAcks) Name() string { return "replay-acks" }

func (b *replayAcks) Install(n *core.Node) {
	chainPacket(n, func(dst types.NodeID, pkt *core.Packet) []*core.Packet {
		if pkt.Kind != core.PktAck {
			return []*core.Packet{pkt}
		}
		if b.stale == nil {
			b.stale = pkt
			return []*core.Packet{pkt}
		}
		return []*core.Packet{b.stale}
	})
}

type refuseAudits struct{}

// RefuseAudits makes the node ignore every retrieve request and decline to
// issue authenticators: the §4.2 "unavailable" case. Its vertices stay
// yellow and the querier records which node did not answer.
func RefuseAudits() Behavior { return refuseAudits{} }

func (refuseAudits) Name() string { return "refuse-audit" }

func (refuseAudits) Install(n *core.Node) { n.RefuseAudit = true }

// ---------------------------------------------------------------------------
// Benign reference behavior.

type dormant struct{}

// Dormant installs every hook but never fires any of them: the compromised
// node behaves exactly like an honest one. It pins the conformance
// harness's other branch — with no misbehavior, every honest provenance
// answer must be bit-identical to the adversary-free run (and proves the
// hooks themselves perturb nothing).
func Dormant() Behavior { return dormant{} }

func (dormant) Name() string { return "dormant" }

func (dormant) Install(n *core.Node) {
	chainTamper(n, func(ev types.Event, outs []types.Output) []types.Output { return outs })
	chainPacket(n, func(dst types.NodeID, pkt *core.Packet) []*core.Packet { return []*core.Packet{pkt} })
	chainRetrieve(n, func(req core.RetrieveRequest, resp *core.RetrieveResponse) (*core.RetrieveResponse, error) {
		return resp, nil
	})
	prev := n.DropSend
	n.DropSend = func(m types.Message) bool { return prev != nil && prev(m) }
}
