package adversary

import (
	"fmt"

	"repro/internal/apps/bgp"
	"repro/internal/apps/chord"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// App is one application configuration the conformance suite runs behaviors
// against. Deploy builds the workload on a fresh network (the same seed and
// schedule every time, so the adversary-free run is a deterministic
// baseline); Compromised names the node(s) a behavior is armed on.
type App struct {
	Name        string
	Horizon     types.Time
	Compromised []types.NodeID
	Deploy      func(net *simnet.Net, seed int64) error
	// NewQuerier builds the application's query session (BGP installs its
	// maybe-rule validator); nil uses Factory directly.
	NewQuerier func(net *simnet.Net) *core.Querier
	// Store, when non-nil, backs every run of the app with on-disk state:
	// store-backed logs and (optionally) a persistent audit cache shared
	// across runs. Nil keeps the suite's default in-memory runs.
	Store *StoreBacking
}

// StoreBacking selects on-disk backing for conformance runs. Sharing one
// LogDir and Cache across a baseline and its adversarial re-runs is
// deliberate: successive runs re-deploy the same node names, so the cache
// accumulates entries for chains that no longer exist — exactly the stale
// state that must never help an adversary look honest or frame an honest
// node (cache keys pin the head chain hash, so a diverged chain can only
// miss).
type StoreBacking struct {
	LogDir string
	Cache  *core.AuditCache
}

// MinCostApp is the paper's running example (§3.3, Figure 2): five routers,
// router b compromised.
func MinCostApp() App {
	return App{
		Name:        "mincost",
		Horizon:     30 * types.Second,
		Compromised: []types.NodeID{"b"},
		Deploy: func(net *simnet.Net, seed int64) error {
			return mincost.Deploy(net, mincost.Figure2Topology, types.Second)
		},
		NewQuerier: func(net *simnet.Net) *core.Querier {
			return net.NewQuerier(mincost.Factory())
		},
	}
}

// QuaggaApp is a small trace-driven BGP network (§7.1's Quagga shape) with
// the regional provider as30 compromised.
func QuaggaApp() App {
	horizon := 20 * types.Second
	return App{
		Name:        "quagga",
		Horizon:     horizon,
		Compromised: []types.NodeID{"as30"},
		Deploy: func(net *simnet.Net, seed int64) error {
			d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, horizon)
			if err != nil {
				return err
			}
			stubs := []types.NodeID{"as51", "as52", "as53", "as61", "as62", "as63"}
			trace := workload.BGPTrace(seed, 40, len(stubs), 50)
			for i, u := range trace {
				u := u
				at := types.Second + types.Time(int64(i))*(horizon-6*types.Second)/types.Time(len(trace))
				stub := stubs[u.Origin]
				net.AtNode(stub, at, func() {
					sp := d.Speakers[stub]
					if u.Withdraw {
						sp.Withdraw(net.Node(stub), u.Prefix)
					} else {
						sp.Announce(net.Node(stub), u.Prefix)
					}
				})
			}
			return nil
		},
		NewQuerier: func(net *simnet.Net) *core.Querier {
			q := net.NewQuerier(bgp.Factory())
			q.Auditor.Builder.MaybeValidator = bgp.ValidateExport
			return q
		},
	}
}

// ChordApp is a 12-node Chord ring (§7.1's Chord configuration, scaled
// down) with one ring member compromised.
func ChordApp() App {
	return App{
		Name:        "chord",
		Horizon:     30 * types.Second,
		Compromised: []types.NodeID{chord.NodeName(3)},
		Deploy: func(net *simnet.Net, seed int64) error {
			p := chord.DefaultParams(12)
			p.Duration = 30 * types.Second
			p.Lookups = 24
			_, err := chord.Deploy(net, p)
			return err
		},
		NewQuerier: func(net *simnet.Net) *core.Querier {
			return net.NewQuerier(chord.Factory())
		},
	}
}

// Apps returns the conformance application set in a fixed order.
func Apps() []App {
	return []App{MinCostApp(), QuaggaApp(), ChordApp()}
}

// Query is one provenance question re-asked across runs.
type Query struct {
	Node  types.NodeID
	Tuple types.Tuple
	Opts  core.QueryOpts
}

func (q Query) String() string { return fmt.Sprintf("%s?%s", q.Node, q.Tuple) }

// Baseline is one adversary-free reference run: the honest queries it
// picked and their rendered answers.
type Baseline struct {
	Queries []Query
	Answers []string
}

// maxQueries bounds how many honest-node queries a conformance run
// compares.
const maxQueries = 3

// run deploys the app on a fresh network (arming plan, if any), runs it to
// the horizon, and returns the network.
func (a App) run(seed int64, plan Plan) (*simnet.Net, error) {
	cfg := simnet.DefaultConfig()
	cfg.Seed = seed
	if a.Store != nil {
		cfg.Core.LogDir = a.Store.LogDir
		cfg.Core.AuditCache = a.Store.Cache
	}
	if plan != nil {
		cfg.OnNode = plan.Hook()
	}
	net := simnet.New(cfg)
	if err := a.Deploy(net, seed); err != nil {
		return nil, err
	}
	net.Run(a.Horizon)
	return net, nil
}

// pickQueries selects up to maxQueries deterministic honest-node questions
// from an audited baseline graph: for each honest node in sorted order, the
// first open exist vertex (graph insertion order is deterministic).
func pickQueries(q *core.Querier, honest []types.NodeID) []Query {
	var out []Query
	g := q.Auditor.Graph()
	for _, id := range honest {
		if len(out) >= maxQueries {
			break
		}
		for _, v := range g.ByHost(id) {
			if v.Type == provgraph.VExist && v.Open() {
				out = append(out, Query{Node: id, Tuple: v.Tuple,
					Opts: core.QueryOpts{Mode: core.ModeExist, Scope: 8}})
				break
			}
		}
	}
	return out
}

// answers evaluates the queries, rendering each explanation tree (colors,
// notes, and timestamps included — the bit-identity the invariant compares)
// or the error text when the query cannot be answered.
func answers(q *core.Querier, queries []Query) []string {
	out := make([]string, len(queries))
	for i, qu := range queries {
		expl, err := q.Explain(qu.Node, qu.Tuple, qu.Opts)
		if err != nil {
			out[i] = "error: " + err.Error()
			continue
		}
		out[i] = expl.Format()
	}
	return out
}

// honestNodes returns the deployment's nodes minus the compromised set.
func honestNodes(all, compromised []types.NodeID) []types.NodeID {
	bad := nodeSet(compromised)
	var out []types.NodeID
	for _, id := range all {
		if !bad[id] {
			out = append(out, id)
		}
	}
	return out
}

// RunBaseline executes the adversary-free reference run for (app, seed). It
// fails if the honest run itself produces any evidence — the no-false-alarm
// half of the accuracy guarantee.
func (a App) RunBaseline(seed int64) (*Baseline, error) {
	net, err := a.run(seed, nil)
	if err != nil {
		return nil, err
	}
	// Store-backed runs re-deploy the same node names next run; release the
	// mapped tables before then (a no-op for in-memory runs).
	defer func() { _ = net.CloseLogs() }()
	q := a.NewQuerier(net)
	v := AuditAll(q, net.Maintainer)
	if len(v.Failures) != 0 || len(v.RedHosts) != 0 || len(v.Unresponsive) != 0 {
		return nil, fmt.Errorf("adversary: honest %s/seed=%d run yields evidence: %v", a.Name, seed, v)
	}
	if len(v.Notes) != 0 {
		return nil, fmt.Errorf("adversary: honest %s/seed=%d run reported missing acks: %v", a.Name, seed, v.Notes)
	}
	base := &Baseline{Queries: pickQueries(q, honestNodes(net.Nodes(), a.Compromised))}
	if len(base.Queries) == 0 {
		return nil, fmt.Errorf("adversary: %s/seed=%d baseline offers no honest queries", a.Name, seed)
	}
	base.Answers = answers(q, base.Queries)
	return base, nil
}

// Result is one conformance run's outcome.
type Result struct {
	App      string
	Behavior string
	Class    Class
	Seed     int64

	Compromised      []types.NodeID
	Verdict          *Verdict
	Detected         bool
	AnswersIdentical bool
	// Violations lists every breach of the SNP invariant found in this run;
	// a conforming implementation leaves it empty.
	Violations []string
}

func (r *Result) String() string {
	return fmt.Sprintf("%-8s %-13s seed=%d class=%-9s detected=%-5v identical=%-5v %s",
		r.App, r.Behavior, r.Seed, r.Class, r.Detected, r.AnswersIdentical, r.Verdict)
}

// RunConformance arms one behavior on the app's compromised nodes, repeats
// the baseline's run and queries, and checks the detection-guarantee
// invariant:
//
//   - accuracy, always: provable evidence (failures, red vertices) never
//     implicates an honest node;
//   - Provable behaviors: provable evidence implicates a compromised node;
//   - Traceable behaviors: some evidence (provable or lead) implicates a
//     compromised node, or every honest answer is bit-identical to the
//     baseline;
//   - Benign behaviors: no provable evidence, and every honest answer is
//     bit-identical to the baseline.
//
// base may be nil, in which case the baseline is computed on the fly.
func (a App) RunConformance(p Profile, seed int64, base *Baseline) (*Result, error) {
	if base == nil {
		var err error
		if base, err = a.RunBaseline(seed); err != nil {
			return nil, err
		}
	}
	plan := Plan{}
	for _, id := range a.Compromised {
		plan[id] = []Behavior{p.New()}
	}
	net, err := a.run(seed, plan)
	if err != nil {
		return nil, err
	}
	defer func() { _ = net.CloseLogs() }()
	q := a.NewQuerier(net)
	v := AuditAll(q, net.Maintainer)
	got := answers(q, base.Queries)
	v.Refresh(q, net.Maintainer) // queries may have appended evidence

	r := &Result{App: a.Name, Behavior: p.Name, Class: p.Class, Seed: seed,
		Compromised: a.Compromised, Verdict: v, Detected: v.Detected(a.Compromised)}
	r.AnswersIdentical = len(got) == len(base.Answers)
	for i := range got {
		if got[i] != base.Answers[i] {
			r.AnswersIdentical = false
			break
		}
	}

	if accused := v.FalselyAccused(a.Compromised); len(accused) != 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("provable evidence implicates honest nodes %v", accused))
	}
	switch p.Class {
	case Provable:
		if len(v.StrongNodes()) == 0 {
			r.Violations = append(r.Violations, "no provable evidence for a provable behavior")
		}
	case Traceable:
		if !r.Detected && !r.AnswersIdentical {
			r.Violations = append(r.Violations,
				"honest answers diverged but no evidence implicates a compromised node")
		}
	case Benign:
		if len(v.StrongNodes()) != 0 {
			r.Violations = append(r.Violations, "benign behavior produced provable evidence")
		}
		if !r.AnswersIdentical {
			r.Violations = append(r.Violations, "benign behavior perturbed honest answers")
		}
	}
	// The invariant's either/or, independent of class expectations: evidence
	// implicating a compromised node, or bit-identical honest answers.
	if !r.Detected && !r.AnswersIdentical {
		r.Violations = append(r.Violations, "neither evidence nor unchanged honest answers")
	}
	return r, nil
}
