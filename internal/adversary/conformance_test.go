package adversary_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/adversary"
)

// conformanceSeeds returns the seed set the suite runs. The full matrix is
// seeds 1..3; -short trims to one seed, and SNP_CONFORMANCE_SEED pins a
// single seed (the CI matrix shards the suite that way).
func conformanceSeeds(t *testing.T) []int64 {
	if env := os.Getenv("SNP_CONFORMANCE_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad SNP_CONFORMANCE_SEED %q: %v", env, err)
		}
		return []int64{s}
	}
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

func conformanceApps(t *testing.T) []adversary.App {
	apps := adversary.Apps()
	if testing.Short() {
		return apps[:2] // mincost + quagga; chord is the slowest deployment
	}
	return apps
}

// TestConformance pins the paper's detection guarantee: every behavior in
// the adversary library, across every conformance app and seed, either
// yields evidence implicating only compromised nodes or leaves the honest
// nodes' provenance answers bit-identical to the adversary-free baseline.
func TestConformance(t *testing.T) {
	for _, app := range conformanceApps(t) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, seed := range conformanceSeeds(t) {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					base, err := app.RunBaseline(seed)
					if err != nil {
						t.Fatalf("baseline: %v", err)
					}
					for _, p := range adversary.Catalog() {
						p := p
						t.Run(p.Name, func(t *testing.T) {
							res, err := app.RunConformance(p, seed, base)
							if err != nil {
								t.Fatalf("conformance run: %v", err)
							}
							t.Log(res)
							for _, v := range res.Violations {
								t.Errorf("invariant violated: %s", v)
							}
						})
					}
				})
			}
		})
	}
}
