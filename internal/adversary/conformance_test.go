package adversary_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

// conformanceSeeds returns the seed set the suite runs. The full matrix is
// seeds 1..3; -short trims to one seed, and SNP_CONFORMANCE_SEED pins a
// single seed (the CI matrix shards the suite that way).
func conformanceSeeds(t *testing.T) []int64 {
	if env := os.Getenv("SNP_CONFORMANCE_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad SNP_CONFORMANCE_SEED %q: %v", env, err)
		}
		return []int64{s}
	}
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

func conformanceApps(t *testing.T) []adversary.App {
	apps := adversary.Apps()
	if testing.Short() {
		return apps[:2] // mincost + quagga; chord is the slowest deployment
	}
	return apps
}

// corruptDir flips a byte in every regular file under dir (cache tables and
// their meta), simulating an attacker or bit-rot poisoning the audit cache
// on disk. It fails the test if there is nothing to corrupt — a toothless
// poison pass must not pass silently.
func corruptDir(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) == 0 {
			continue
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatalf("nothing to corrupt under %s; the poison pass is toothless", dir)
	}
}

// TestConformanceStored re-runs the conformance matrix with every node's
// log spilled to an on-disk segment store and the persistent audit cache
// armed — the satellite dimension the in-memory matrix misses. One variant
// shares a healthy cache across the baseline and every adversarial re-run
// (each re-run makes the accumulated entries stale: same node names, new
// chains); the other corrupts the cache files on disk in between. Either
// way the §4.2 guarantee must hold exactly as it does in memory: a stale or
// poisoned cache entry may cost a fresh replay, never a provable accusation
// of an honest node.
func TestConformanceStored(t *testing.T) {
	apps := adversary.Apps()[:2] // mincost + quagga; chord adds the least here
	if testing.Short() {
		apps = apps[:1]
	}
	for _, poison := range []bool{false, true} {
		name := "cache"
		if poison {
			name = "poisoned-cache"
		}
		t.Run(name, func(t *testing.T) {
			for _, app := range apps {
				app := app
				t.Run(app.Name, func(t *testing.T) {
					root := t.TempDir()
					cacheDir := filepath.Join(root, "auditcache")
					cache, err := core.OpenAuditCache(cacheDir, nil)
					if err != nil {
						t.Fatal(err)
					}
					app.Store = &adversary.StoreBacking{
						LogDir: filepath.Join(root, "logs"), Cache: cache}
					base, err := app.RunBaseline(1)
					if err != nil {
						t.Fatalf("baseline: %v", err)
					}
					if cache.Misses() == 0 {
						t.Fatal("baseline never consulted the audit cache")
					}
					if poison {
						// Seal the baseline's entries to disk, corrupt every
						// cache file, and reopen: the adversarial runs below
						// then audit against a fully poisoned cache.
						if err := cache.Sync(); err != nil {
							t.Fatal(err)
						}
						if err := cache.Close(); err != nil {
							t.Fatal(err)
						}
						corruptDir(t, cacheDir)
						if cache, err = core.OpenAuditCache(cacheDir, nil); err != nil {
							t.Fatal(err)
						}
						app.Store.Cache = cache
					}
					defer cache.Close()
					for _, p := range adversary.Catalog() {
						p := p
						t.Run(p.Name, func(t *testing.T) {
							res, err := app.RunConformance(p, 1, base)
							if err != nil {
								t.Fatalf("conformance run: %v", err)
							}
							t.Log(res)
							for _, v := range res.Violations {
								t.Errorf("invariant violated: %s", v)
							}
						})
					}
				})
			}
		})
	}
}

// TestConformance pins the paper's detection guarantee: every behavior in
// the adversary library, across every conformance app and seed, either
// yields evidence implicating only compromised nodes or leaves the honest
// nodes' provenance answers bit-identical to the adversary-free baseline.
func TestConformance(t *testing.T) {
	for _, app := range conformanceApps(t) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, seed := range conformanceSeeds(t) {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					base, err := app.RunBaseline(seed)
					if err != nil {
						t.Fatalf("baseline: %v", err)
					}
					for _, p := range adversary.Catalog() {
						p := p
						t.Run(p.Name, func(t *testing.T) {
							res, err := app.RunConformance(p, seed, base)
							if err != nil {
								t.Fatalf("conformance run: %v", err)
							}
							t.Log(res)
							for _, v := range res.Violations {
								t.Errorf("invariant violated: %s", v)
							}
						})
					}
				})
			}
		})
	}
}
