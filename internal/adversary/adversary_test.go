package adversary_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
)

// runFigure2 deploys the MinCost network with a plan armed at deploy time
// and runs it to quiescence.
func runFigure2(t *testing.T, plan adversary.Plan) *simnet.Net {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Seed = 1
	if plan != nil {
		cfg.OnNode = plan.Hook()
	}
	net := simnet.New(cfg)
	if err := mincost.Deploy(net, mincost.Figure2Topology, types.Second); err != nil {
		t.Fatal(err)
	}
	net.Run(30 * types.Second)
	return net
}

func auditFigure2(t *testing.T, net *simnet.Net) (*adversary.Verdict, *simnet.Net) {
	t.Helper()
	q := net.NewQuerier(mincost.Factory())
	return adversary.AuditAll(q, net.Maintainer), net
}

func TestMutateTuple(t *testing.T) {
	tup := types.MakeTuple("cost", types.N("a"), types.N("d"), types.N("b"), types.I(5))
	m := adversary.MutateTuple(tup)
	if m.Rel != tup.Rel || len(m.Args) != len(tup.Args) {
		t.Fatalf("mutation changed shape: %s -> %s", tup, m)
	}
	if m.Key() == tup.Key() {
		t.Fatalf("mutation is a no-op: %s", m)
	}
	// All-node arguments: the relation is marked instead.
	loc := types.MakeTuple("edge", types.N("a"), types.N("b"))
	if m := adversary.MutateTuple(loc); m.Rel == loc.Rel {
		t.Fatalf("node-only tuple not marked: %s", m)
	}
}

func TestEquivocationNamesOnlyAdversary(t *testing.T) {
	v, _ := auditFigure2(t, runFigure2(t, adversary.Plan{"b": {adversary.Equivocate()}}))
	found := false
	for _, f := range v.Failures {
		if f.Node != "b" {
			t.Errorf("failure implicates %s: %v", f.Node, f)
		}
		if strings.Contains(f.Reason, "equivocation") || strings.Contains(f.Reason, "fork") {
			found = true
		}
	}
	if !found {
		t.Errorf("no equivocation failure recorded: %v", v.Failures)
	}
	if accused := v.FalselyAccused([]types.NodeID{"b"}); len(accused) != 0 {
		t.Errorf("honest nodes accused: %v", accused)
	}
}

func TestWithholdAcksLeavesLeadsNotAccusations(t *testing.T) {
	v, _ := auditFigure2(t, runFigure2(t, adversary.Plan{"b": {adversary.WithholdAcks()}}))
	if len(v.Failures) != 0 {
		t.Errorf("withheld acks produced provable failures: %v", v.Failures)
	}
	if len(v.RedHosts) != 0 {
		t.Errorf("withheld acks produced red vertices on %v", v.RedHosts)
	}
	if len(v.Notes) == 0 {
		t.Fatal("no missing-ack reports")
	}
	for _, n := range v.Notes {
		if n.ID.Dst != "b" {
			t.Errorf("missing-ack note does not involve the adversary: %+v", n)
		}
	}
	if !v.Detected([]types.NodeID{"b"}) {
		t.Error("leads do not implicate the adversary")
	}
}

func TestTruncatedLogIsRejected(t *testing.T) {
	net := runFigure2(t, nil)
	compromisePost(t, net, adversary.Plan{"b": {adversary.TruncateLog()}})
	q := net.NewQuerier(mincost.Factory())
	if err := q.EnsureAudited("b", 0); err != nil {
		t.Fatalf("EnsureAudited: %v", err)
	}
	if !q.Auditor.NodeFailed("b") {
		t.Error("truncated log not recorded as failure")
	}
}

func compromisePost(t *testing.T, net *simnet.Net, plan adversary.Plan) {
	t.Helper()
	if err := adversary.Arm(net, plan); err != nil {
		t.Fatal(err)
	}
}

func TestBehaviorsCompose(t *testing.T) {
	// Suppression and forgery armed together on one node: both detection
	// channels must fire, and both hooks must survive the chaining.
	plan := adversary.Plan{"b": {
		adversary.Suppress(func(m types.Message) bool { return m.Dst == "c" && m.Tuple.Rel == "cost" }),
		adversary.Forge(),
	}}
	net := runFigure2(t, plan)
	if net.Node("b").DropCount == 0 {
		t.Fatal("composed suppression dropped nothing")
	}
	v, _ := auditFigure2(t, net)
	redSend := false
	for _, h := range v.RedHosts {
		if h == "b" {
			redSend = true
		}
	}
	if !redSend {
		t.Errorf("composed behaviors left no red evidence on b: %v", v)
	}
	if accused := v.FalselyAccused([]types.NodeID{"b"}); len(accused) != 0 {
		t.Errorf("honest nodes accused: %v", accused)
	}
}

func TestDormantIsInvisible(t *testing.T) {
	honest := runFigure2(t, nil)
	armed := runFigure2(t, adversary.Plan{"b": {adversary.Dormant()}})
	if got, want := armed.Traffic.TotalBytes(), honest.Traffic.TotalBytes(); got != want {
		t.Errorf("dormant adversary changed traffic: %d != %d", got, want)
	}
	hq := honest.NewQuerier(mincost.Factory())
	aq := armed.NewQuerier(mincost.Factory())
	adversary.AuditAll(hq, honest.Maintainer)
	adversary.AuditAll(aq, armed.Maintainer)
	he, err := hq.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ae, err := aq.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if he.Format() != ae.Format() {
		t.Errorf("dormant adversary perturbed an answer:\n%s\nvs\n%s", he.Format(), ae.Format())
	}
}

func TestCatalogNamesAreUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range adversary.Catalog() {
		if seen[p.Name] {
			t.Errorf("duplicate behavior name %q", p.Name)
		}
		seen[p.Name] = true
		if got := p.New().Name(); got != p.Name {
			t.Errorf("profile %q builds behavior named %q", p.Name, got)
		}
		if _, ok := adversary.ProfileByName(p.Name); !ok {
			t.Errorf("ProfileByName(%q) failed", p.Name)
		}
	}
	if _, ok := adversary.ProfileByName("nope"); ok {
		t.Error("ProfileByName resolved a nonexistent behavior")
	}
}

func TestVerdictAccounting(t *testing.T) {
	v, _ := auditFigure2(t, runFigure2(t, adversary.Plan{"b": {adversary.Suppress(nil)}}))
	strong := v.StrongNodes()
	if len(strong) == 0 {
		t.Fatalf("suppression left no strong evidence: %v", v)
	}
	for _, n := range strong {
		if n != "b" {
			t.Errorf("strong evidence names honest node %s", n)
		}
	}
	if !v.Detected([]types.NodeID{"b"}) {
		t.Error("verdict does not detect the compromised node")
	}
	if v.Detected([]types.NodeID{"e"}) {
		t.Error("verdict detects a node with no evidence")
	}
}

func TestRedVerticesSurfaceInExplanations(t *testing.T) {
	// The graph-level red evidence must reach query answers: a red vertex
	// on the suppressor shows up as FaultyNodes naming only b.
	net := runFigure2(t, adversary.Plan{"b": {adversary.Suppress(func(m types.Message) bool {
		return m.Dst == "c" && m.Tuple.Rel == "cost"
	})}})
	q := net.NewQuerier(mincost.Factory())
	adversary.AuditAll(q, net.Maintainer)
	for _, v := range q.Auditor.Graph().RedVertices() {
		if v.Host != "b" {
			t.Errorf("red vertex on honest node: %s", v.Label())
		}
		if v.Type != provgraph.VSend {
			t.Errorf("suppression flagged a non-send vertex: %s", v.Label())
		}
	}
	if n := len(q.Auditor.Graph().RedVertices()); n == 0 {
		t.Fatal("no red vertices")
	}
}
