// Package nopanic enforces the audit-path error discipline hardened in
// PR 3: packages that process peer-influenced input (core audit paths,
// seclog, transport handlers) and the foundations they share must surface
// failure as errors, never by panicking or exiting the process. A panic in
// an auditor is a denial-of-service primitive — a hostile segment that
// crashes the querier defeats the detection guarantee more cheaply than
// forging a signature.
//
// The analyzer flags panic(), log.Fatal*/log.Panic*, and os.Exit in the
// configured packages. Setup-time conveniences (Must* constructors run
// before any peer input exists) carry //snpvet:allow nopanic with the
// justification.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Packages lists import-path prefixes held to the no-panic policy. Repo
// defaults; tests override.
var Packages = []string{
	"repro/internal/core",
	"repro/internal/seclog",
	"repro/internal/transport",
	"repro/internal/types",
	"repro/internal/simnet",
	"repro/internal/wire",
	"repro/internal/provgraph",
	"repro/internal/dlog",
}

// Analyzer is the nopanic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic, log.Fatal, and os.Exit in audit-path packages; hostile input must surface as errors",
	Run:  run,
}

func covered(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !covered(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch obj := analysis.CalleeObj(pass.TypesInfo, call).(type) {
			case *types.Builtin:
				if obj.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in audit-path package %s; return an error (hostile input must never crash the process)", pass.Pkg.Path())
				}
			case *types.Func:
				if obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "log":
					if strings.HasPrefix(obj.Name(), "Fatal") || strings.HasPrefix(obj.Name(), "Panic") {
						pass.Reportf(call.Pos(), "log.%s in audit-path package %s; return an error instead of killing the process", obj.Name(), pass.Pkg.Path())
					}
				case "os":
					if obj.Name() == "Exit" {
						pass.Reportf(call.Pos(), "os.Exit in audit-path package %s; return an error instead of killing the process", pass.Pkg.Path())
					}
				}
			}
			return true
		})
	}
	return nil
}
