package nopanic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nopanic"
)

func TestNoPanic(t *testing.T) {
	old := nopanic.Packages
	nopanic.Packages = []string{"np"}
	defer func() { nopanic.Packages = old }()

	res, _ := analysistest.Run(t, "testdata", nopanic.Analyzer, "np")

	// The Must* convenience carries a reasoned allow: suppressed, reported
	// as in effect, and marked used.
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d findings, want 1 (the excused MustSetup panic)", len(res.Suppressed))
	}
	if len(res.Suppressions) != 1 || !res.Suppressions[0].Used {
		t.Errorf("suppressions = %+v, want exactly one, used", res.Suppressions)
	}
}
