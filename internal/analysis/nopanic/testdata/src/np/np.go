// Package np exercises nopanic: audit-path packages surface failure as
// errors, never by panicking or exiting the process.
package np

import (
	"errors"
	"log"
	"os"
)

// Decode shows the previously-live shape: a panic on malformed input inside
// a decode path — a denial-of-service primitive against the auditor.
func Decode(b []byte) error {
	if len(b) == 0 {
		panic("empty input") // want `panic in audit-path package`
	}
	return nil
}

// WrapErr kills the process on a peer-influenced error.
func WrapErr(err error) {
	if err != nil {
		log.Fatalf("decode: %v", err) // want `log.Fatalf in audit-path package`
	}
}

// LogPanic panics through the log package.
func LogPanic(err error) {
	log.Panicln(err) // want `log.Panicln in audit-path package`
}

// Bail exits outright.
func Bail() {
	os.Exit(1) // want `os.Exit in audit-path package`
}

// Good is the sanctioned shape.
func Good(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty input")
	}
	return nil
}

// MustSetup is a deploy-time convenience excused with a written reason.
func MustSetup(err error) {
	if err != nil {
		panic(err) //snpvet:allow nopanic deploy-time convenience before any peer input exists
	}
}
