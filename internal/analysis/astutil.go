package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeObj resolves the object a call expression statically invokes: a
// package-level function, a concrete or interface method, a builtin, or
// nil for dynamic calls through function values it cannot see through.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func).
		return info.Uses[fun.Sel]
	}
	return nil
}

// Callee is CalleeObj narrowed to functions and methods.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := CalleeObj(info, call).(*types.Func)
	return fn
}

// IsAbstractMethod reports whether fn is an interface method (no body
// anywhere to analyze).
func IsAbstractMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// NamedReceiver returns the named type of a method's receiver (through one
// pointer), or nil.
func NamedReceiver(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
