// Package nl exercises nilness: dereferences on paths where the variable
// is known nil.
package nl

// Segment stands in for a seclog segment reference.
type Segment struct {
	From uint64
	next *Segment
}

// InvertedGuard is the shape behind the PR-3-era auditor crash: the nil
// check is inverted, so the missing-segment path dereferences the nil it
// just proved.
func InvertedGuard(seg *Segment) uint64 {
	if seg == nil {
		return seg.From // want `seg is nil on this path`
	}
	return seg.From
}

// ElseBranch is the mirror: the else of a non-nil check.
func ElseBranch(seg *Segment) uint64 {
	if seg != nil {
		return seg.From
	} else {
		return seg.From // want `seg is nil on this path`
	}
}

// Deref flags an explicit pointer dereference.
func Deref(p *uint64) uint64 {
	if p == nil {
		return *p // want `p is nil on this path`
	}
	return *p
}

// NilCall flags calling a func value known to be nil.
func NilCall(f func() uint64) uint64 {
	if f == nil {
		return f() // want `f is nil on this path`
	}
	return f()
}

// Reassigned is clean: the nil variable is replaced before use.
func Reassigned(seg *Segment) uint64 {
	if seg == nil {
		seg = &Segment{}
		return seg.From
	}
	return seg.From
}
