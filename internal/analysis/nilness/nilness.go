// Package nilness is an in-repo, AST-level reimplementation of the core
// check from golang.org/x/tools' nilness analyzer (the container build
// environment is offline, so the upstream module cannot be vendored): it
// reports uses that must dereference a variable on a path where that
// variable is known to be nil.
//
// The shape it catches is the classic inverted guard:
//
//	if p == nil {
//	    return p.field  // nil dereference
//	}
//
// and its mirror (`if p != nil { ... } else { p.field }`). Within the
// known-nil block the variable is cleared by any reassignment, so
// `if p == nil { p = newP() }; p.f` is not flagged.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the nilness analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of variables on paths where they are known to be nil",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, eq := nilComparison(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			if eq && ifs.Body != nil {
				checkKnownNil(pass, obj, ifs.Body)
			}
			if !eq {
				if els, ok := ifs.Else.(*ast.BlockStmt); ok {
					checkKnownNil(pass, obj, els)
				}
			}
			return true
		})
	}
	return nil
}

// nilComparison matches `x == nil` (eq=true) or `x != nil` (eq=false) for
// a plain variable x of pointer or func type (indexing a nil map or slice
// read is legal, so only hard-dereference types are tracked).
func nilComparison(pass *analysis.Pass, cond ast.Expr) (types.Object, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNil(pass, x) {
		x, y = y, x
	} else if !isNil(pass, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, false
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Signature:
		return obj, bin.Op == token.EQL
	}
	return nil, false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilConst
}

// checkKnownNil reports dereferences of obj inside block, stopping at the
// first reassignment of obj.
func checkKnownNil(pass *analysis.Pass, obj types.Object, block *ast.BlockStmt) {
	reassigned := false
	ast.Inspect(block, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// &x escapes; anything may reassign through the pointer.
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
				}
			}
		case *ast.SelectorExpr:
			// p.f on a pointer p dereferences (method values on nil
			// pointers may be legal, so only flag field selections).
			if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					pass.Reportf(n.Pos(), "%s is nil on this path (checked at the enclosing if); dereference will panic", obj.Name())
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this path (checked at the enclosing if); dereference will panic", obj.Name())
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this path (checked at the enclosing if); call will panic", obj.Name())
			}
		}
		return true
	})
}
