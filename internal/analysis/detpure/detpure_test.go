package detpure_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detpure"
)

func TestDetpure(t *testing.T) {
	old := detpure.Deterministic
	detpure.Deterministic = []string{"det"}
	defer func() { detpure.Deterministic = old }()

	res, _ := analysistest.Run(t, "testdata", detpure.Analyzer, "det")

	// The excused time.Now in det.excusedNow must be suppressed, not just
	// unreported.
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d findings, want 1 (the excused time.Now)", len(res.Suppressed))
	}
	if len(res.Suppressions) != 1 || !res.Suppressions[0].Used {
		t.Errorf("suppressions = %+v, want exactly one, used", res.Suppressions)
	}
}

// TestFactsRoundTrip pins the cross-process story: facts computed in one
// driver run serialize, decode against a fresh type universe keyed only by
// (package path, object path), and still name the same objects.
func TestFactsRoundTrip(t *testing.T) {
	old := detpure.Deterministic
	detpure.Deterministic = []string{"det"}
	defer func() { detpure.Deterministic = old }()

	res, loaded := analysistest.Run(t, "testdata", detpure.Analyzer, "det")

	data, err := res.Facts.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	fresh := analysis.NewFactStore()
	if err := fresh.DecodeInto(data, loaded.TypesByPath()); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}

	facts := fresh.ObjectFacts("detpure")
	helperPkg := loaded.TypesByPath()["helper"]

	// Package-level function fact.
	wall := helperPkg.Scope().Lookup("WallDeadline")
	f, ok := facts[wall].(*detpure.Impure)
	if !ok {
		t.Fatalf("no Impure fact for helper.WallDeadline after round-trip (facts: %v)", facts)
	}
	if len(f.Chain) == 0 || f.Chain[len(f.Chain)-1] != "time.Now" {
		t.Errorf("helper.WallDeadline chain = %v, want ending in time.Now", f.Chain)
	}

	// Method fact, keyed "Clock.Stamp" on the wire.
	var stamp *detpure.Impure
	for obj, fact := range facts {
		if obj.Name() == "Stamp" && obj.Pkg() == helperPkg {
			stamp = fact.(*detpure.Impure)
		}
	}
	if stamp == nil {
		t.Fatal("no Impure fact for helper.Clock.Stamp after round-trip")
	}

	// Pure functions must carry no fact.
	if _, ok := facts[helperPkg.Scope().Lookup("Pure")]; ok {
		t.Error("helper.Pure unexpectedly has an Impure fact")
	}

	// Re-encoding the decoded store must be byte-identical: the encoding is
	// deterministic and lossless.
	data2, err := fresh.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("fact encoding is not stable across a decode/encode round-trip")
	}
}
