// Package detpure enforces the determinism invariant: packages whose
// behavior must replay bit-identically (the Datalog engine, the provenance
// graph, shard execution in simnet, core replay) must not observe wall
// clocks or global randomness — neither directly nor through anything they
// call.
//
// The analyzer computes, for every function in every analyzed package, an
// "impure" fact: the function directly calls a banned root (time.Now,
// time.Since, time.Until, a package-level math/rand or crypto/rand
// function) or calls a function already known impure. Facts flow across
// package boundaries because the driver analyzes dependencies first, so
// impurity established in an allowlisted package (transport wall-clock
// deadlines, say) still flags the deterministic caller that reaches it.
//
// Wall-clock use inside non-deterministic packages (livetcp, transport,
// supervisor, eval benchmarking) is fine and produces no diagnostic — only
// packages listed in Deterministic are held to the invariant. A site in a
// deterministic package that is genuinely metric-only can carry
// "//snpvet:allow detpure <reason>"; the allow also stops propagation, so
// callers of the containing function are not flagged transitively.
//
// Calls through interfaces and function values are invisible to the
// analyzer: injecting a clock behind an interface is exactly the
// sanctioned pattern (simnet hands core a simulated clock), so dynamic
// dispatch is the escape the design intends, not a hole.
package detpure

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Deterministic lists import-path prefixes of packages held to the
// determinism invariant. The driver uses these repo defaults; tests
// override.
var Deterministic = []string{
	"repro/internal/dlog",
	"repro/internal/provgraph",
	"repro/internal/simnet",
	"repro/internal/core",
	"repro/internal/seclog",
	"repro/internal/wire",
	"repro/internal/types",
	"repro/internal/cryptoutil",
	"repro/internal/workload",
	"repro/internal/apps",
}

// Impure is the fact exported for functions that can reach a banned root.
// Chain is the call path from the function to the root, e.g.
// ["transport.dialBackoff", "time.Now"].
type Impure struct {
	Chain []string
}

// AFact marks Impure as a fact.
func (*Impure) AFact() {}

func init() { analysis.RegisterFactType(&Impure{}) }

// Analyzer is the detpure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detpure",
	Doc:  "forbid wall-clock and global-randomness reads reachable from deterministic packages",
	Run:  run,
}

// bannedRoot reports why obj is a nondeterminism root ("" if it is not).
func bannedRoot(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	// Only package-level functions: methods like (*rand.Rand).Intn on an
	// explicitly seeded generator are deterministic and fine.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		// Constructors taking an explicit seed or source are the
		// sanctioned deterministic API; everything else at package level
		// draws from the global, runtime-seeded generator.
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return ""
		}
		return fn.Pkg().Path() + "." + fn.Name()
	case "crypto/rand":
		return "crypto/rand." + fn.Name()
	}
	return ""
}

func isDeterministic(path string) bool {
	for _, p := range Deterministic {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

const maxChain = 6

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Collect function declarations with their objects.
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{obj, fd})
			}
		}
	}

	// impureChain answers whether a callee is known impure, from this
	// package's fixpoint state or a dependency's exported fact.
	local := map[*types.Func][]string{}
	impureChain := func(fn *types.Func) ([]string, bool) {
		if c, ok := local[fn]; ok {
			return c, true
		}
		var fact Impure
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Chain, true
		}
		return nil, false
	}

	// Fixpoint over same-package calls: a package's functions can call
	// each other in any order, so iterate until no new impurity appears.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if _, done := local[fn.obj]; done {
				continue
			}
			chain := impurityOf(pass, fn.decl, impureChain)
			if chain != nil {
				local[fn.obj] = chain
				changed = true
			}
		}
	}
	for fn, chain := range local {
		pass.ExportObjectFact(fn, &Impure{Chain: chain})
	}

	if !isDeterministic(pass.Pkg.Path()) {
		return nil
	}

	// Deterministic package: report each site that introduces
	// nondeterminism — a direct banned call, or a call into an impure
	// function of a NON-deterministic package (roots inside deterministic
	// packages are already reported where they occur, so flagging their
	// callers would only repeat the same finding up the call graph).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(info, call)
			if callee == nil || analysis.IsAbstractMethod(callee) {
				return true
			}
			// Report unconditionally; the driver files allowed sites under
			// its suppression report rather than dropping them silently.
			if root := bannedRoot(callee); root != "" {
				pass.Reportf(call.Pos(), "call to %s in deterministic package %s; inject a clock or a seeded rng instead", root, pass.Pkg.Path())
				return true
			}
			if callee.Pkg() == nil || callee.Pkg() == pass.Pkg || isDeterministic(callee.Pkg().Path()) {
				return true
			}
			if chain, ok := impureChain(callee); ok {
				pass.Reportf(call.Pos(), "call to %s reaches %s (%s) from deterministic package %s",
					fullName(callee), chain[len(chain)-1], strings.Join(append([]string{fullName(callee)}, chain...), " -> "), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// impurityOf scans one function body for impurity, returning the call
// chain to a banned root, or nil. Suppressed root calls do not taint: the
// written reason asserts the site never feeds replayed state.
func impurityOf(pass *analysis.Pass, decl *ast.FuncDecl, impureChain func(*types.Func) ([]string, bool)) []string {
	var found []string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil || analysis.IsAbstractMethod(callee) {
			return true
		}
		if root := bannedRoot(callee); root != "" {
			if pass.Suppressed(call.Pos()) {
				return true
			}
			found = []string{root}
			return false
		}
		if chain, ok := impureChain(callee); ok {
			if pass.Suppressed(call.Pos()) {
				return true
			}
			c := append([]string{fullName(callee)}, chain...)
			if len(c) > maxChain {
				c = c[:maxChain]
			}
			found = c
			return false
		}
		return true
	})
	return found
}

func fullName(fn *types.Func) string {
	name := fn.Name()
	if named := analysis.NamedReceiver(fn); named != nil {
		name = named.Obj().Name() + "." + name
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + name
	}
	return name
}
