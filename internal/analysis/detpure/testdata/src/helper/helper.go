// Package helper is a non-deterministic testdata package: detpure exports
// Impure facts for its functions but reports nothing here, because the
// package is not on the Deterministic list.
package helper

import "time"

// WallDeadline reads the wall clock; detpure attaches an Impure fact so
// deterministic callers in other packages are flagged.
func WallDeadline() time.Time { return time.Now() }

// Clock carries impurity on a method, exercising the Recv.Name fact path.
type Clock struct{}

// Stamp reads the wall clock through a method.
func (Clock) Stamp() time.Time { return time.Now() }

// Pure is fine and gets no fact.
func Pure() int { return 42 }
