// Package det is configured as deterministic in the test; every
// nondeterminism root reachable from here must be flagged.
package det

import (
	"math/rand"
	"time"

	"helper"
)

// ElapsedShape is the previously-live core/query.go shape: wall-clock
// timing wrapped around replay work.
func ElapsedShape() time.Duration {
	start := time.Now() // want `call to time.Now in deterministic package`
	doWork()
	return time.Since(start) // want `call to time.Since in deterministic package`
}

func doWork() {}

// GlobalRand draws from the runtime-seeded global generator.
func GlobalRand() int {
	return rand.Intn(6) // want `call to math/rand.Intn in deterministic package`
}

// SeededOK uses the sanctioned deterministic API: an explicit source.
func SeededOK(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// CrossPackage reaches time.Now through a dependency; the finding rides on
// the Impure fact exported while helper was analyzed.
func CrossPackage() time.Time {
	return helper.WallDeadline() // want `reaches time.Now`
}

// UseClock reaches the root through a method fact (Clock.Stamp).
func UseClock(c helper.Clock) time.Time {
	return c.Stamp() // want `reaches time.Now`
}

// PureCall is fine: helper.Pure carries no fact.
func PureCall() int { return helper.Pure() }

//snpvet:allow detpure latency metric only; never feeds replayed state
func excusedNow() time.Time { return time.Now() }

// CallerOfExcused must not be flagged: the allow stops propagation, so the
// excused helper does not taint its callers.
func CallerOfExcused() time.Time { return excusedNow() }
