// Package analysis is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, reimplemented on the standard library's
// go/ast and go/types so the repository carries no external dependency.
//
// The repo's detection guarantee (§4.2) rests on three cross-cutting
// invariants that are invisible to the type system:
//
//   - determinism: replay must be bit-identical, so deterministic packages
//     must not read wall clocks or global randomness (analyzer detpure);
//   - bounded decoding: an allocation sized by a wire-decoded integer must
//     be validated against the input that carries it (analyzer boundedmake);
//   - no panics on audit paths: hostile input surfaces as errors, never as
//     a crash of the auditing process (analyzer nopanic).
//
// Analyzers implement the same shape as upstream go/analysis: a Run
// function over a Pass, diagnostics reported by position, and facts
// attached to objects so properties (like impurity) propagate across
// package boundaries when packages are analyzed in dependency order.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //snpvet:allow suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Reportf; cross-package state through the fact API.
	Run func(*Pass) error
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

// A Pass is one application of one analyzer to one package. The driver
// constructs passes in dependency order, so facts exported while analyzing
// a package's imports are visible via ImportObjectFact.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives every diagnostic (the driver filters
	// suppressions); suppressed answers whether a position carries a
	// matching //snpvet:allow comment, marking it used.
	report     func(Diagnostic)
	suppressed func(pos token.Position) bool

	facts *FactStore
}

// NewPass assembles a pass. report must be non-nil; suppressed and facts
// may be nil (no suppressions honored, facts disabled).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, facts *FactStore, report func(Diagnostic), suppressed func(token.Position) bool) *Pass {
	return &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		facts: facts, report: report, suppressed: suppressed,
	}
}

// Reportf emits a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether pos carries an //snpvet:allow comment naming
// this analyzer, and marks that suppression as used. Analyzers consult it
// when a suppression must do more than hide a diagnostic — e.g. detpure
// stops impurity propagation at an allowed call site, so callers of the
// containing function are not flagged transitively.
func (p *Pass) Suppressed(pos token.Pos) bool {
	if p.suppressed == nil {
		return false
	}
	return p.suppressed(p.Fset.Position(pos))
}

// A Fact is a serializable property attached to a package-level object.
// Implementations must be gob-encodable pointer types.
type Fact interface {
	AFact() // marker, as in upstream go/analysis
}

// ExportObjectFact attaches fact to obj under this analyzer's namespace.
// obj must be a package-level object or a method of a package-level type.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts != nil {
		p.facts.setObject(p.Analyzer.Name, obj, fact)
	}
}

// ImportObjectFact copies the fact attached to obj (by this analyzer, in
// this pass or an earlier dependency pass) into fact, reporting whether one
// existed. fact must be a pointer of the exported fact's type.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.getObject(p.Analyzer.Name, obj, fact)
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts != nil {
		p.facts.setPackage(p.Analyzer.Name, p.Pkg, fact)
	}
}

// ImportPackageFact copies the fact attached to pkg into fact.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.getPackage(p.Analyzer.Name, pkg, fact)
}
