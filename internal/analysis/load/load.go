// Package load type-checks Go packages for analysis without any dependency
// beyond the standard library and the go tool itself.
//
// Module packages are parsed and type-checked from source (so analyzers see
// ASTs with full type information), in dependency order, sharing one
// importer universe — a dependency's *types.Package is the same instance
// its importers resolve, which is what makes object-keyed facts work.
// Standard-library imports are satisfied from compiler export data located
// via `go list -export`, which works offline and for cgo packages.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked module package.
type Package struct {
	Path      string
	Dir       string
	Filenames []string
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// A Result holds every loaded module package, dependencies before
// dependents, plus the shared FileSet.
type Result struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// TypesByPath returns the loaded packages keyed by import path (for fact
// decoding).
func (r *Result) TypesByPath() map[string]*types.Package {
	out := make(map[string]*types.Package, len(r.Pkgs))
	for _, p := range r.Pkgs {
		out[p.Path] = p.Types
	}
	return out
}

type listPkg struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Module     *struct{ Path string }
}

// Load lists patterns with the go tool (run in dir), then type-checks every
// non-standard-library package in the listing from source. Test files are
// not loaded: the analyzers enforce invariants on shipped code.
func Load(dir string, patterns ...string) (*Result, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,CgoFiles,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := map[string]string{}
	var mod []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			mod = append(mod, p)
		}
	}
	return check(mod, exports)
}

// check type-checks pkgs (which must be in dependency order) from source,
// resolving imports first from the already-checked set, then from export
// data.
func check(pkgs []*listPkg, exports map[string]string) (*Result, error) {
	fset := token.NewFileSet()
	checked := map[string]*types.Package{}
	lookup := func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	gcImporter := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp := checked[path]; tp != nil {
			return tp, nil
		}
		return gcImporter.Import(path)
	})

	res := &Result{Fset: fset}
	for _, p := range pkgs {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: package %s uses cgo; source analysis unsupported", p.ImportPath)
		}
		var (
			files []*ast.File
			names []string
		)
		for _, f := range p.GoFiles {
			name := filepath.Join(p.Dir, f)
			af, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %v", err)
			}
			files = append(files, af)
			names = append(names, name)
		}
		tpkg, info, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = tpkg
		res.Pkgs = append(res.Pkgs, &Package{
			Path: p.ImportPath, Dir: p.Dir, Filenames: names,
			Files: files, Types: tpkg, Info: info,
		})
	}
	return res, nil
}

// Check type-checks one package's parsed files with a fully populated
// types.Info. Exported for the analysistest loader, which assembles its
// own file sets from testdata trees.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return tpkg, info, nil
}

// StdExports lists export-data files for the given standard-library
// packages and their dependency closure. Used by the analysistest loader
// to resolve stdlib imports of testdata packages.
func StdExports(pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", pkgs, err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportLookup adapts an ImportPath→export-file map to the lookup shape
// the gc importer wants.
func ExportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
