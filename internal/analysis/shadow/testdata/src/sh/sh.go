// Package sh exercises shadow: inner declarations that shadow a
// function-local variable still used after the inner scope ends.
package sh

import "errors"

func process(i int) (int, error) { return i, nil }

// BlockShadow is the previously-live snp-bench shape: the loop body
// re-declares err, so the check after the loop reads the untouched outer.
func BlockShadow(xs []int) error {
	var err error
	for _, x := range xs {
		v, err := process(x) // want `shadows declaration at`
		_, _ = v, err
	}
	return err
}

// IfInit is the idiom: declaration in the if init clause is adjacent to its
// use and exempt.
func IfInit(x int) error {
	var err error
	if v, err := process(x); err != nil {
		_ = v
		return err
	}
	return err
}

// DeadOuter shadows an outer variable that is never used afterwards; the
// shadow cannot change behavior, so no report.
func DeadOuter() {
	err := errors.New("outer")
	_ = err
	{
		err := errors.New("inner")
		_ = err
	}
}
