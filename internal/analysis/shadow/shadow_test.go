package shadow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, "testdata", shadow.Analyzer, "sh")
}
