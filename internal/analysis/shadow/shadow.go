// Package shadow is an in-repo reimplementation of the vet shadow check
// (the build environment is offline, so golang.org/x/tools cannot be
// vendored): it reports inner declarations that shadow an outer variable
// of the same function when the outer variable is still used after the
// inner scope ends — the pattern where an `err :=` inside a block silently
// diverts an assignment the code after the block believes it observed.
//
// Like upstream, declarations whose outer counterpart is never used again
// are not reported (the shadow can't change behavior), and package-level
// names are exempt (shadowing those is routine and visible).
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shadow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report inner declarations shadowing a function-local variable that is used after the inner scope ends",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Uses of each object, for the "outer used afterwards" test.
	uses := map[types.Object][]token.Pos{}
	for id, obj := range info.Uses {
		if _, ok := obj.(*types.Var); ok {
			uses[obj] = append(uses[obj], id.Pos())
		}
	}

	// Scopes owned by if/for/switch statements: a declaration in such a
	// statement's init clause (`if v, err := f(); ...`) is visible only
	// within that statement and sits adjacent to its use, so shadowing
	// there is the idiom, not the footgun. Block-level `err :=` shadows —
	// where code after the block still reads the outer variable — remain
	// reported.
	stmtScopes := map[*types.Scope]bool{}
	for node, scope := range info.Scopes {
		switch node.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			stmtScopes[scope] = true
		}
	}

	for id, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.Name() == "_" || v.IsField() {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() || stmtScopes[inner] {
			continue
		}
		// The scope enclosing the declaration; LookupParent from there
		// finds what the name would have meant without this declaration.
		outerScope, outerObj := inner.Parent().LookupParent(v.Name(), id.Pos())
		if outerObj == nil || outerScope == pass.Pkg.Scope() {
			continue
		}
		outer, ok := outerObj.(*types.Var)
		if !ok || outer.IsField() || outer.Pos() == v.Pos() {
			continue
		}
		// Both must be function-local: walking up from the inner scope
		// must reach the outer scope before any function boundary is
		// irrelevant here because LookupParent already stayed inside the
		// file/function nest; excluding the package scope above is the
		// boundary that matters.
		if !outer.Pos().IsValid() || outer.Pos() > v.Pos() {
			continue
		}
		// Report only when the outer variable is used after the inner
		// scope ends — otherwise the shadow cannot alter behavior.
		usedAfter := false
		for _, p := range uses[outer] {
			if p > inner.End() {
				usedAfter = true
				break
			}
		}
		if !usedAfter {
			continue
		}
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s; the outer variable is used after this scope ends",
			v.Name(), pass.Fset.Position(outer.Pos()))
	}
	return nil
}
