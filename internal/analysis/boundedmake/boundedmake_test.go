package boundedmake_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/boundedmake"
)

func TestBoundedMake(t *testing.T) {
	analysistest.Run(t, "testdata", boundedmake.Analyzer, "bm")
}
