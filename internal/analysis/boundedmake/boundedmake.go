// Package boundedmake enforces the bounded-decode invariant: an allocation
// whose size comes from a wire-decoded integer must validate that integer
// against the bytes actually present, by decoding it with
// wire.Reader.Count instead of wire.Reader.Uint.
//
// The shape it flags is exactly the FuzzFrameDecode crasher — a hostile
// count in a few bytes of input driving a multi-gigabyte make:
//
//	n := r.Uint()                  // attacker-controlled
//	xs := make([]T, n)             // ~224GB for a 10-byte frame
//
// The fix shape it accepts:
//
//	n := r.Count()                 // validated against r.Remaining()
//	xs := make([]T, n)
//
// Tracking is a per-function taint walk: variables assigned from
// wire.Reader.Uint/Int or encoding/binary varint readers are tainted;
// taint propagates through conversions and arithmetic, and clears when the
// variable is reassigned from anything clean (Count, len, a constant) or
// re-bounded by an explicit `if n > uint64(r.Remaining())`-style guard
// that exits. make() with a tainted size argument is a finding.
package boundedmake

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// WirePkg is the import path of the canonical encoding package; its Reader
// is the decode boundary the invariant is defined against.
var WirePkg = "repro/internal/wire"

// Analyzer is the boundedmake analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "boundedmake",
	Doc:  "forbid allocations sized by wire-decoded integers that bypassed wire.Reader.Count",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// taintSource classifies a call as producing an attacker-controlled count.
// It returns a human-readable source name, or "".
func taintSource(pass *analysis.Pass, call *ast.CallExpr) string {
	callee := analysis.Callee(pass.TypesInfo, call)
	if callee == nil {
		return ""
	}
	if named := analysis.NamedReceiver(callee); named != nil {
		if named.Obj().Name() == "Reader" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == WirePkg {
			switch callee.Name() {
			case "Uint", "Int":
				return "wire.Reader." + callee.Name()
			}
		}
		return ""
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "encoding/binary" {
		switch callee.Name() {
		case "ReadUvarint", "ReadVarint", "Uvarint", "Varint":
			return "binary." + callee.Name()
		}
	}
	return ""
}

// isRemainingCall reports whether expr contains a call to a method named
// Remaining or Len on the wire Reader (the re-bounding guard shape).
func isRemainingCall(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if named := analysis.NamedReceiver(callee); named != nil &&
			named.Obj().Name() == "Reader" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == WirePkg && callee.Name() == "Remaining" {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// tainted maps a variable object to the name of the wire source its
	// current value came from.
	tainted := map[types.Object]string{}

	// exprTaint reports the source if expr's value derives from a tainted
	// variable or directly from a taint-source call.
	exprTaint := func(expr ast.Expr) string {
		src := ""
		ast.Inspect(expr, func(n ast.Node) bool {
			if src != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil {
					if s, ok := tainted[obj]; ok {
						src = s
					}
				}
			case *ast.CallExpr:
				if s := taintSource(pass, n); s != "" {
					src = s
					return false
				}
			}
			return true
		})
		return src
	}

	// The walk visits statements in syntactic order, which tracks
	// execution order closely enough for decode functions (straight-line
	// reads with loops over elements).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Check RHS make() calls against the pre-assignment taint,
			// then update taint for the LHS. Recursion is cut off, so the
			// nested walk below is the only visit these calls get.
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						reportTaintedMake(pass, call, exprTaint)
					}
					return true
				})
			}
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				// n := r.Uint()  /  v, err := binary.ReadUvarint(r):
				// the first variable carries the decoded count.
				src := exprTaint(n.Rhs[0])
				setTaint(pass, tainted, n.Lhs[0], src)
				for _, lhs := range n.Lhs[1:] {
					setTaint(pass, tainted, lhs, "")
				}
			} else {
				for i, lhs := range n.Lhs {
					src := ""
					if i < len(n.Rhs) {
						src = exprTaint(n.Rhs[i])
					}
					setTaint(pass, tainted, lhs, src)
				}
			}
			return false
		case *ast.ValueSpec:
			// var n = r.Uint()
			for _, v := range n.Values {
				ast.Inspect(v, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						reportTaintedMake(pass, call, exprTaint)
					}
					return true
				})
			}
			for i, name := range n.Names {
				src := ""
				if len(n.Values) == 1 && i == 0 {
					src = exprTaint(n.Values[0])
				} else if i < len(n.Values) {
					src = exprTaint(n.Values[i])
				}
				setTaint(pass, tainted, name, src)
			}
			return false
		case *ast.IfStmt:
			// Guard shape: `if n > uint64(r.Remaining()) { return/break }`
			// re-bounds n for everything after the if. The guard's own
			// condition and exiting body contain no allocations to check,
			// so clearing before the children are walked is sound.
			if cleared := guardedVar(pass, n); cleared != nil {
				delete(tainted, cleared)
			}
			return true
		case *ast.CallExpr:
			// Each call node is visited individually by the recursion, so
			// check only this one (no nested walk: that would double-report
			// makes inside call arguments).
			reportTaintedMake(pass, n, exprTaint)
			return true
		}
		return true
	})
}

func setTaint(pass *analysis.Pass, tainted map[types.Object]string, lhs ast.Expr, src string) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if src == "" {
		delete(tainted, obj)
	} else {
		tainted[obj] = src
	}
}

// guardedVar recognizes an exiting bounds check against the reader's
// remaining bytes and returns the re-bounded variable.
func guardedVar(pass *analysis.Pass, ifs *ast.IfStmt) types.Object {
	if len(ifs.Body.List) == 0 {
		return nil
	}
	switch ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
	default:
		return nil
	}
	var obj types.Object
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var varSide ast.Expr
		switch bin.Op {
		case token.GTR, token.GEQ:
			if isRemainingCall(pass, bin.Y) {
				varSide = bin.X
			}
		case token.LSS, token.LEQ:
			if isRemainingCall(pass, bin.X) {
				varSide = bin.Y
			}
		}
		if varSide == nil {
			return true
		}
		for {
			// Strip conversions like uint64(n).
			if call, ok := ast.Unparen(varSide).(*ast.CallExpr); ok && len(call.Args) == 1 {
				varSide = call.Args[0]
				continue
			}
			break
		}
		if id, ok := ast.Unparen(varSide).(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		}
		return true
	})
	return obj
}

// reportTaintedMake reports call if it is a make whose size argument is
// tainted.
func reportTaintedMake(pass *analysis.Pass, call *ast.CallExpr, exprTaint func(ast.Expr) string) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	for _, arg := range call.Args[1:] {
		if src := exprTaint(arg); src != "" {
			pass.Reportf(call.Pos(),
				"make sized by wire-decoded integer from %s; decode the count with wire.Reader.Count so it is validated against the input", src)
			return
		}
	}
}
