// Package wire is a minimal stub of the repository's canonical encoding
// package — just enough surface for the analyzers, which match wire.Reader
// and wire.Writer by import path, to resolve against in testdata.
package wire

// A Reader mimics the decode API of the real package.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Uint decodes an unvalidated unsigned integer.
func (r *Reader) Uint() uint64 { r.off++; return 0 }

// Int decodes an unvalidated signed integer.
func (r *Reader) Int() int64 { r.off++; return 0 }

// Count decodes an element count validated against Remaining.
func (r *Reader) Count() int { r.off++; return 0 }

// Remaining reports how many undecoded bytes remain.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// A Writer mimics the encode API of the real package.
type Writer struct {
	buf []byte
}

// Uint appends an unsigned integer.
func (w *Writer) Uint(v uint64) { w.buf = append(w.buf, byte(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.buf = append(w.buf, s...) }
