// Package bm exercises boundedmake: allocations sized by wire-decoded
// integers must come through wire.Reader.Count.
package bm

import (
	"bytes"
	"encoding/binary"

	"repro/internal/wire"
)

// Entry stands in for a decoded element.
type Entry struct{ ID uint64 }

// UnvalidatedCount is the previously-live seclog shape (the FuzzFrameDecode
// crasher): a hostile count in a few bytes of input drives the make.
func UnvalidatedCount(r *wire.Reader) []Entry {
	n := r.Uint()
	es := make([]Entry, n) // want `make sized by wire-decoded integer from wire.Reader.Uint`
	return es
}

// ConvertedCount shows taint surviving a conversion.
func ConvertedCount(r *wire.Reader) []byte {
	n := r.Uint()
	return make([]byte, int(n)) // want `from wire.Reader.Uint`
}

// MapPresize shows the map-capacity variant via the signed decoder.
func MapPresize(r *wire.Reader) map[uint64]Entry {
	n := r.Int()
	return make(map[uint64]Entry, n) // want `from wire.Reader.Int`
}

// ValidatedCount is the fix shape: Count validates against Remaining.
func ValidatedCount(r *wire.Reader) []Entry {
	n := r.Count()
	return make([]Entry, n)
}

// GuardedCount re-bounds an unvalidated count with an explicit exiting
// guard, which clears the taint.
func GuardedCount(r *wire.Reader) []Entry {
	n := r.Uint()
	if n > uint64(r.Remaining()) {
		return nil
	}
	return make([]Entry, n)
}

// VarintCount taints through encoding/binary's in-memory varint decoder.
func VarintCount(data []byte) []Entry {
	n, _ := binary.Uvarint(data)
	es := make([]Entry, n) // want `from binary.Uvarint`
	return es
}

// StreamVarint taints through the streaming varint reader.
func StreamVarint(br *bytes.Reader) []Entry {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil
	}
	es := make([]Entry, n) // want `from binary.ReadUvarint`
	return es
}

// ConstantSize is clean: nothing wire-decoded feeds the size.
func ConstantSize() []Entry {
	return make([]Entry, 16)
}

// Reassigned is clean after the count is overwritten from a clean source.
func Reassigned(r *wire.Reader) []Entry {
	n := r.Uint()
	n = 8
	return make([]Entry, n)
}
