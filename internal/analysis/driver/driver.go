// Package driver runs a suite of analyzers over a package set, honoring
// the //snpvet:allow suppression protocol and reporting every suppression
// it honored — the CI job surfaces that report, so each escape hatch stays
// a written, reviewable decision rather than a silent hole in an
// invariant.
//
// Suppression protocol: a comment of the form
//
//	//snpvet:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the same line and on the line
// immediately following (so the comment can ride at the end of the
// offending line or stand on its own line above it). The reason is
// mandatory; a reasonless allow is itself a finding. So is a stale allow
// that no diagnostic matched — suppressions must die with the code they
// excused.
package driver

import (
	"fmt"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// A Finding is one unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// A Suppression is one //snpvet:allow comment.
type Suppression struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	Used     bool
}

// A Result is the outcome of one driver run.
type Result struct {
	// Findings are unsuppressed diagnostics plus protocol violations
	// (reasonless or stale allows). Non-empty Findings is a failed run.
	Findings []Finding
	// Suppressed are diagnostics an allow comment excused.
	Suppressed []Finding
	// Suppressions are all allow comments seen, for the CI report.
	Suppressions []*Suppression
	// Facts is the fact store the run populated.
	Facts *analysis.FactStore
}

// Run loads patterns (relative to dir) and applies every analyzer, in
// package-dependency order so exported facts precede their importers.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) (*Result, error) {
	res, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunLoaded(res, analyzers)
}

var allowRe = regexp.MustCompile(`^//snpvet:allow\s+([A-Za-z0-9_]+)(?:\s+(.*\S))?\s*$`)

// RunLoaded applies analyzers to an already-loaded package set.
func RunLoaded(loaded *load.Result, analyzers []*analysis.Analyzer) (*Result, error) {
	out := &Result{Facts: analysis.NewFactStore()}

	// Scan suppression comments. Keyed by file, line, analyzer.
	sups := map[string]map[int]map[string]*Suppression{}
	for _, pkg := range loaded.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.HasPrefix(c.Text, "//snpvet:") {
							out.Findings = append(out.Findings, Finding{
								Analyzer: "snpvet",
								Pos:      loaded.Fset.Position(c.Pos()),
								Message:  fmt.Sprintf("malformed suppression %q (want //snpvet:allow <analyzer> <reason>)", c.Text),
							})
						}
						continue
					}
					pos := loaded.Fset.Position(c.Pos())
					s := &Suppression{File: pos.Filename, Line: pos.Line, Analyzer: m[1], Reason: m[2]}
					if s.Reason == "" {
						out.Findings = append(out.Findings, Finding{
							Analyzer: "snpvet",
							Pos:      pos,
							Message:  fmt.Sprintf("suppression of %s without a reason; every allow must say why", s.Analyzer),
						})
						continue
					}
					if sups[s.File] == nil {
						sups[s.File] = map[int]map[string]*Suppression{}
					}
					if sups[s.File][s.Line] == nil {
						sups[s.File][s.Line] = map[string]*Suppression{}
					}
					sups[s.File][s.Line][s.Analyzer] = s
					out.Suppressions = append(out.Suppressions, s)
				}
			}
		}
	}

	// lookup finds an allow for analyzer at pos: on the same line, or on
	// the line above (standalone comment). It marks the allow used.
	lookup := func(analyzer string, pos token.Position) *Suppression {
		for _, line := range []int{pos.Line, pos.Line - 1} {
			if s := sups[pos.Filename][line][analyzer]; s != nil {
				s.Used = true
				return s
			}
		}
		return nil
	}

	for _, pkg := range loaded.Pkgs {
		for _, a := range analyzers {
			a := a
			report := func(d analysis.Diagnostic) {
				f := Finding{Analyzer: a.Name, Pos: d.Pos, Message: d.Message}
				if lookup(a.Name, d.Pos) != nil {
					out.Suppressed = append(out.Suppressed, f)
					return
				}
				out.Findings = append(out.Findings, f)
			}
			suppressed := func(pos token.Position) bool {
				return lookup(a.Name, pos) != nil
			}
			pass := analysis.NewPass(a, loaded.Fset, pkg.Files, pkg.Types, pkg.Info,
				out.Facts, report, suppressed)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	// A suppression nothing matched is dead weight that would silently
	// excuse the next real violation on that line.
	for _, s := range out.Suppressions {
		if !s.Used {
			out.Findings = append(out.Findings, Finding{
				Analyzer: "snpvet",
				Pos:      token.Position{Filename: s.File, Line: s.Line},
				Message:  fmt.Sprintf("stale suppression of %s (no diagnostic here); remove it", s.Analyzer),
			})
		}
	}

	sortFindings(out.Findings)
	sortFindings(out.Suppressed)
	sort.Slice(out.Suppressions, func(i, j int) bool {
		a, b := out.Suppressions[i], out.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Report writes the human-readable run report: findings (if any), then the
// suppression report CI surfaces.
func (r *Result) Report(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintln(w, f)
	}
	if len(r.Suppressions) > 0 {
		fmt.Fprintf(w, "snp-vet: %d suppression(s) in effect:\n", len(r.Suppressions))
		for _, s := range r.Suppressions {
			fmt.Fprintf(w, "  %s:%d: %s: %s\n", s.File, s.Line, s.Analyzer, s.Reason)
		}
	}
	if len(r.Findings) == 0 {
		fmt.Fprintln(w, "snp-vet: clean")
	} else {
		fmt.Fprintf(w, "snp-vet: %d finding(s)\n", len(r.Findings))
	}
}
