package driver_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
)

// testAn reports a diagnostic at every function declaration, giving the
// suppression protocol something predictable to act on.
var testAn = &analysis.Analyzer{
	Name: "testan",
	Doc:  "reports every function declaration (test fixture)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

const src = `package p

func bad() {} //snpvet:allow testan excused inline with a reason

//snpvet:allow testan excused from the line above
func alsoExcused() {}

func caught() {}

//snpvet:allow testan
func reasonless() {}

//snpvet:allow testan nothing on the next line ever triggers
var stale int

//snpvet:frobnicate
var malformed int
`

func runOn(t *testing.T, source string) *driver.Result {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", source, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tpkg, info, err := load.Check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &load.Result{Fset: fset, Pkgs: []*load.Package{{
		Path: "p", Filenames: []string{"p.go"}, Files: []*ast.File{f},
		Types: tpkg, Info: info,
	}}}
	res, err := driver.RunLoaded(loaded, []*analysis.Analyzer{testAn})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSuppressionProtocol(t *testing.T) {
	res := runOn(t, src)

	// Same-line and line-above allows suppress; both must be marked used.
	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %v, want 2 (bad, alsoExcused)", res.Suppressed)
	}
	if len(res.Suppressions) != 3 {
		t.Errorf("suppressions registered = %d, want 3 (two used, one stale)", len(res.Suppressions))
	}

	type wantFinding struct {
		analyzer string
		substr   string
	}
	wants := []wantFinding{
		{"testan", "function caught"},
		{"snpvet", "without a reason"},
		{"testan", "function reasonless"}, // a reasonless allow suppresses nothing
		{"snpvet", "stale suppression of testan"},
		{"snpvet", "malformed suppression"},
	}
	if len(res.Findings) != len(wants) {
		t.Fatalf("findings = %v, want %d", res.Findings, len(wants))
	}
	for _, w := range wants {
		found := false
		for _, f := range res.Findings {
			if f.Analyzer == w.analyzer && strings.Contains(f.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s finding containing %q in %v", w.analyzer, w.substr, res.Findings)
		}
	}
}

func TestReportSurfacesSuppressions(t *testing.T) {
	res := runOn(t, `package p

//snpvet:allow testan documented escape hatch
func excused() {}
`)
	if len(res.Findings) != 0 {
		t.Fatalf("findings = %v, want none", res.Findings)
	}
	var buf strings.Builder
	res.Report(&buf)
	out := buf.String()
	if !strings.Contains(out, "1 suppression(s) in effect") {
		t.Errorf("report does not surface the suppression list:\n%s", out)
	}
	if !strings.Contains(out, "documented escape hatch") {
		t.Errorf("report does not include the written reason:\n%s", out)
	}
	if !strings.Contains(out, "snp-vet: clean") {
		t.Errorf("report does not declare a clean run:\n%s", out)
	}
}
