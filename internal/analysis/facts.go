package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A FactStore holds facts for a whole driver run. Within one process,
// facts are keyed by types.Object identity — the loader type-checks every
// module package from source in one importer universe, so an object seen
// while analyzing a dependency is the same object its importers resolve.
//
// The store also round-trips through a gob encoding (Encode/DecodeInto),
// keyed by (package path, object path), which is what makes the
// propagation trustworthy across driver processes and what the facts
// round-trip test pins.
type FactStore struct {
	mu   sync.Mutex
	objs map[factKey]Fact
	pkgs map[pkgFactKey]Fact
}

type factKey struct {
	analyzer string
	obj      types.Object
}

type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{objs: make(map[factKey]Fact), pkgs: make(map[pkgFactKey]Fact)}
}

func (s *FactStore) setObject(analyzer string, obj types.Object, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objs[factKey{analyzer, obj}] = fact
}

func (s *FactStore) getObject(analyzer string, obj types.Object, fact Fact) bool {
	s.mu.Lock()
	got, ok := s.objs[factKey{analyzer, obj}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return copyFact(got, fact)
}

func (s *FactStore) setPackage(analyzer string, pkg *types.Package, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkgs[pkgFactKey{analyzer, pkg}] = fact
}

func (s *FactStore) getPackage(analyzer string, pkg *types.Package, fact Fact) bool {
	s.mu.Lock()
	got, ok := s.pkgs[pkgFactKey{analyzer, pkg}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return copyFact(got, fact)
}

// copyFact copies src into dst via reflection; both must be pointers to the
// same concrete type.
func copyFact(src, dst Fact) bool {
	sv := reflect.ValueOf(src)
	dv := reflect.ValueOf(dst)
	if sv.Type() != dv.Type() || dv.Kind() != reflect.Pointer || dv.IsNil() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// ObjectFacts returns the analyzer's facts as a deterministic list of
// (object, fact) pairs, for diagnostics and tests.
func (s *FactStore) ObjectFacts(analyzer string) map[types.Object]Fact {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.Object]Fact)
	for k, f := range s.objs {
		if k.analyzer == analyzer {
			out[k.obj] = f
		}
	}
	return out
}

// objectPath is a stable cross-process name for a package-level object: the
// object's name, or "Recv.Name" for a method of a package-level named type.
// It is the serialization key for exported facts.
func objectPath(obj types.Object) (string, error) {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", fmt.Errorf("analysis: fact on method of unnamed type %v", t)
			}
			return named.Obj().Name() + "." + fn.Name(), nil
		}
	}
	if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "", fmt.Errorf("analysis: fact on non-package-level object %v", obj)
	}
	return obj.Name(), nil
}

// resolveObjectPath inverts objectPath within pkg.
func resolveObjectPath(pkg *types.Package, path string) types.Object {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			recv := pkg.Scope().Lookup(path[:i])
			tn, ok := recv.(*types.TypeName)
			if !ok {
				return nil
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return nil
			}
			for m := 0; m < named.NumMethods(); m++ {
				if named.Method(m).Name() == path[i+1:] {
					return named.Method(m)
				}
			}
			return nil
		}
	}
	return pkg.Scope().Lookup(path)
}

// An encodedFact is one serialized fact.
type encodedFact struct {
	Analyzer string
	PkgPath  string
	Object   string // empty for package facts
	TypeName string // registered gob concrete type
	Data     []byte
}

var (
	factTypesMu sync.Mutex
	factTypes   = make(map[string]reflect.Type)
)

// RegisterFactType makes a concrete fact type encodable. Analyzers call it
// from init for every fact type they export.
func RegisterFactType(f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact type %T is not a pointer", f))
	}
	factTypesMu.Lock()
	defer factTypesMu.Unlock()
	factTypes[t.Elem().String()] = t.Elem()
	gob.Register(f)
}

// Encode serializes every fact in the store. The output is deterministic:
// entries are sorted by (analyzer, package, object).
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var all []encodedFact
	for k, f := range s.objs {
		if k.obj.Pkg() == nil {
			continue
		}
		path, err := objectPath(k.obj)
		if err != nil {
			return nil, err
		}
		data, tn, err := encodeOneFact(f)
		if err != nil {
			return nil, err
		}
		all = append(all, encodedFact{k.analyzer, k.obj.Pkg().Path(), path, tn, data})
	}
	for k, f := range s.pkgs {
		data, tn, err := encodeOneFact(f)
		if err != nil {
			return nil, err
		}
		all = append(all, encodedFact{k.analyzer, k.pkg.Path(), "", tn, data})
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		return a.Object < b.Object
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(all); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeOneFact(f Fact) (data []byte, typeName string, err error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), reflect.TypeOf(f).Elem().String(), nil
}

// DecodeInto loads facts serialized by Encode, resolving object paths
// against the given packages (keyed by import path). Facts naming unknown
// packages or objects are an error — a fact that silently fails to resolve
// would silently weaken an invariant.
func (s *FactStore) DecodeInto(data []byte, pkgs map[string]*types.Package) error {
	var all []encodedFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&all); err != nil {
		return err
	}
	for _, ef := range all {
		factTypesMu.Lock()
		t, ok := factTypes[ef.TypeName]
		factTypesMu.Unlock()
		if !ok {
			return fmt.Errorf("analysis: fact type %q not registered", ef.TypeName)
		}
		fv := reflect.New(t)
		if err := gob.NewDecoder(bytes.NewReader(ef.Data)).DecodeValue(fv.Elem()); err != nil {
			return err
		}
		fact, ok := fv.Interface().(Fact)
		if !ok {
			return fmt.Errorf("analysis: decoded %q is not a Fact", ef.TypeName)
		}
		pkg := pkgs[ef.PkgPath]
		if pkg == nil {
			return fmt.Errorf("analysis: fact for unknown package %q", ef.PkgPath)
		}
		if ef.Object == "" {
			s.setPackage(ef.Analyzer, pkg, fact)
			continue
		}
		obj := resolveObjectPath(pkg, ef.Object)
		if obj == nil {
			return fmt.Errorf("analysis: fact for unknown object %s.%s", ef.PkgPath, ef.Object)
		}
		s.setObject(ef.Analyzer, obj, fact)
	}
	return nil
}
