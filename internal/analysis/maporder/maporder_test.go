package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	old := maporder.Deterministic
	maporder.Deterministic = []string{"mo"}
	defer func() { maporder.Deterministic = old }()

	analysistest.Run(t, "testdata", maporder.Analyzer, "mo")
}
