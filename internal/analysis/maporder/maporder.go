// Package maporder enforces the iteration-order half of the determinism
// invariant: in deterministic packages, ranging over a map while feeding a
// wire encoder, a hash chain, a log append, or an emitted metric series
// bakes Go's randomized map order into bytes that must be bit-identical
// across replays. The sanctioned idiom is to collect and sort the keys,
// then iterate the sorted slice.
//
// The analyzer flags a `for ... range m` over a map whose body reaches a
// deterministic sink:
//
//   - a method on wire.Writer (canonical encoding)
//   - hash.Hash.Write / Sum (chain hashes, Merkle nodes)
//   - an Append* method on a type in a deterministic package (log appends)
//   - testing.B.ReportMetric (emitted metric series)
//
// Ranges that only accumulate into a map/slice that is later sorted are
// not flagged — the sink, not the traversal, is what serializes order.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detpure"
)

// WirePkg is the canonical-encoding package whose Writer is a sink.
var WirePkg = "repro/internal/wire"

// Deterministic shares detpure's package list by default.
var Deterministic []string

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid ranging over maps into wire encoders, hashes, log appends, or metric series in deterministic packages",
	Run:  run,
}

func deterministic(path string) bool {
	list := Deterministic
	if list == nil {
		list = detpure.Deterministic
	}
	for _, p := range list {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, rng.Body); sink != "" {
				pass.Reportf(rng.Pos(),
					"range over map feeds %s; map iteration order is nondeterministic — iterate sorted keys", sink)
			}
			return true
		})
	}
	return nil
}

// findSink returns a description of the first order-serializing sink
// reached in body, or "".
func findSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Classify by the type of the receiver *expression*: hash.Hash's
		// Write is the embedded io.Writer method, so the method's declared
		// receiver would misattribute it.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || pass.TypesInfo.Selections[sel] == nil {
			return true
		}
		recv := pass.TypesInfo.Types[sel.X].Type
		if recv == nil {
			return true
		}
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, _ := recv.(*types.Named)
		if named == nil || named.Obj().Pkg() == nil {
			return true
		}
		pkg, typ, method := named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name
		switch {
		case pkg == WirePkg && typ == "Writer":
			sink = "a wire.Writer (canonical encoding)"
		case pkg == "hash" && (method == "Write" || method == "Sum"):
			sink = "a hash (chain/Merkle input)"
		case deterministic(pkg) && strings.HasPrefix(method, "Append"):
			sink = typ + "." + method + " (log append)"
		case pkg == "testing" && method == "ReportMetric":
			sink = "testing.B.ReportMetric (emitted metric series)"
		}
		return sink == ""
	})
	return sink
}
