// Package wire is a minimal stub of the repository's canonical encoding
// package — just enough surface for the analyzers, which match wire.Reader
// and wire.Writer by import path, to resolve against in testdata.
package wire

// A Writer mimics the encode API of the real package.
type Writer struct {
	buf []byte
}

// Uint appends an unsigned integer.
func (w *Writer) Uint(v uint64) { w.buf = append(w.buf, byte(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.buf = append(w.buf, s...) }
