// Package mo exercises maporder: in deterministic packages, ranging over a
// map must not feed order-serializing sinks.
package mo

import (
	"crypto/sha256"
	"sort"
	"testing"

	"repro/internal/wire"
)

// EncodeMap bakes randomized map order into the canonical encoding.
func EncodeMap(w *wire.Writer, m map[string]uint64) {
	for k, v := range m { // want `range over map feeds a wire.Writer`
		w.String(k)
		w.Uint(v)
	}
}

// EncodeSorted is the sanctioned idiom: sort the keys, iterate the slice.
func EncodeSorted(w *wire.Writer, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.String(k)
		w.Uint(m[k])
	}
}

// HashMap feeds a hash chain in map order. The sink is hash.Hash's embedded
// Write, which the analyzer classifies by the receiver expression's type.
func HashMap(m map[string][]byte) []byte {
	h := sha256.New()
	for k := range m { // want `range over map feeds a hash`
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}

// CountOnly traverses without serializing order; no finding.
func CountOnly(m map[string]uint64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Log stands in for a deterministic append-only structure.
type Log struct{ entries []string }

// AppendEntry appends one entry.
func (l *Log) AppendEntry(e string) { l.entries = append(l.entries, e) }

// FlushMap appends in map order — the historic AuthSet-by-node shape where
// replayed log contents depended on iteration order.
func FlushMap(l *Log, m map[string]uint64) {
	for k := range m { // want `Log.AppendEntry \(log append\)`
		l.AppendEntry(k)
	}
}

// ReportAll emits a metric series in map order.
func ReportAll(b *testing.B, m map[string]float64) {
	for name, v := range m { // want `testing.B.ReportMetric`
		b.ReportMetric(v, name)
	}
}
