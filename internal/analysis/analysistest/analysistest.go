// Package analysistest runs an analyzer over GOPATH-style testdata trees
// and checks its diagnostics against // want comments, mirroring the
// upstream x/tools package of the same name.
//
// Layout: <testdata>/src/<importpath>/*.go. A testdata package may import
// other testdata packages (resolved under src/ first — so a stub of
// repro/internal/wire can stand in for the real one) and the standard
// library (resolved from compiler export data via the go tool).
//
// Expectations ride on the offending line:
//
//	xs := make([]T, n) // want `sized by wire-decoded integer`
//
// Each finding must match one want (same file and line, regexp matches the
// message) and each want must be consumed. Suppression comments
// (//snpvet:allow) behave exactly as under cmd/snp-vet, because the run
// goes through the same driver.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
)

// Run loads the named testdata packages (and their testdata/stdlib deps),
// applies the analyzer through the standard driver, and reports any
// mismatch against // want comments as test errors. It returns the driver
// and load results for extra assertions (fact round-trips, suppression
// reports).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) (*driver.Result, *load.Result) {
	t.Helper()
	loaded, err := loadTestdata(testdata, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := driver.RunLoaded(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, loaded, res)
	return res, loaded
}

type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("// want (.*)$")
var wantTokRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// checkWants matches findings against want comments.
func checkWants(t *testing.T, loaded *load.Result, res *driver.Result) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range loaded.Pkgs {
		for i, name := range pkg.Filenames {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			_ = pkg.Files[i]
			for ln, text := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, tok := range wantTokRe.FindAllStringSubmatch(m[1], -1) {
					pat := tok[1]
					if pat == "" {
						pat = tok[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, ln+1, pat, err)
					}
					k := wantKey{name, ln + 1}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, f := range res.Findings {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		idx := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
	}
	var keys []wantKey
	for k, res := range wants {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
		}
	}
}

// loadTestdata parses and type-checks the requested testdata packages and
// every testdata package they transitively import, dependencies first.
func loadTestdata(testdata string, pkgs []string) (*load.Result, error) {
	src, absErr := filepath.Abs(filepath.Join(testdata, "src"))
	if absErr != nil {
		return nil, absErr
	}
	fset := token.NewFileSet()

	type tdPkg struct {
		path    string
		files   []*ast.File
		names   []string
		imports []string
	}
	parsed := map[string]*tdPkg{}
	var stdImports []string

	// Parse the requested packages and their testdata imports, collecting
	// stdlib imports for one export-data listing.
	var parse func(path string) error
	parse = func(path string) error {
		if parsed[path] != nil {
			return nil
		}
		dir := filepath.Join(src, path)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("analysistest: package %s: %v", path, err)
		}
		p := &tdPkg{path: path}
		parsed[path] = p
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			name := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			p.files = append(p.files, f)
			p.names = append(p.names, name)
			for _, imp := range f.Imports {
				ipath := strings.Trim(imp.Path.Value, `"`)
				if st, err := os.Stat(filepath.Join(src, ipath)); err == nil && st.IsDir() {
					p.imports = append(p.imports, ipath)
					if err := parse(ipath); err != nil {
						return err
					}
				} else {
					stdImports = append(stdImports, ipath)
				}
			}
		}
		if len(p.files) == 0 {
			return fmt.Errorf("analysistest: package %s has no Go files", path)
		}
		return nil
	}
	for _, p := range pkgs {
		if err := parse(p); err != nil {
			return nil, err
		}
	}

	exports, err := load.StdExports(dedup(stdImports))
	if err != nil {
		return nil, err
	}
	gcImporter := importer.ForCompiler(fset, "gc", load.ExportLookup(exports))

	// Topologically order testdata packages (dependencies first).
	var order []*tdPkg
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysistest: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range parsed[path].imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, parsed[path])
		return nil
	}
	var paths []string
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp := checked[path]; tp != nil {
			return tp, nil
		}
		return gcImporter.Import(path)
	})
	res := &load.Result{Fset: fset}
	for _, p := range order {
		tpkg, info, err := load.Check(p.path, fset, p.files, imp)
		if err != nil {
			return nil, err
		}
		checked[p.path] = tpkg
		res.Pkgs = append(res.Pkgs, &load.Package{
			Path: p.path, Dir: filepath.Join(src, p.path),
			Filenames: p.names, Files: p.files, Types: tpkg, Info: info,
		})
	}
	return res, nil
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
