package supervisor_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/supervisor"
	"repro/internal/types"
)

// TestMain makes this test binary usable as the supervisor's child image:
// when spawned with SNP_NODE_CONFIG set it becomes a node daemon and never
// reaches the test runner.
func TestMain(m *testing.M) {
	supervisor.MaybeChild()
	os.Exit(m.Run())
}

// workDir returns a deployment directory on tmpfs when available: daemons
// fsync on every log sync, and this container's block device has
// pathological fsync latency.
func workDir(t *testing.T) string {
	t.Helper()
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "snp-supervisor-*")
		if err == nil {
			t.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return t.TempDir()
}

func TestCrashPlanResolution(t *testing.T) {
	plan := &supervisor.CrashPlan{Seed: 7, Rules: []supervisor.CrashRule{
		{Node: "c", Mode: supervisor.ModeKill, AtAppend: 5, Jitter: 3},
		{Node: "d", Mode: supervisor.ModeTorn, AtAppend: 8},
	}}
	r1, ok := plan.RuleFor("c")
	if !ok {
		t.Fatal("no rule for c")
	}
	if r1.AtAppend < 5 || r1.AtAppend > 8 {
		t.Errorf("jittered trigger %d outside [5, 8]", r1.AtAppend)
	}
	if r1.Jitter != 0 {
		t.Error("resolved rule still carries jitter")
	}
	// Determinism: same plan, same resolution.
	r2, _ := plan.RuleFor("c")
	if r2 != r1 {
		t.Errorf("resolution not deterministic: %+v vs %+v", r1, r2)
	}
	// A different seed moves the trigger for at least one of a few nodes
	// (the jitter draw depends on the seed).
	moved := false
	for seed := int64(1); seed < 20 && !moved; seed++ {
		other := &supervisor.CrashPlan{Seed: seed, Rules: plan.Rules}
		if r, _ := other.RuleFor("c"); r.AtAppend != r1.AtAppend {
			moved = true
		}
	}
	if !moved {
		t.Error("jitter ignores the plan seed")
	}
	if d, ok := plan.RuleFor("d"); !ok || d.AtAppend != 8 {
		t.Errorf("jitterless rule resolved to %+v, %v", d, ok)
	}
	if _, ok := plan.RuleFor("b"); ok {
		t.Error("rule invented for unlisted node")
	}
	var nilPlan *supervisor.CrashPlan
	if _, ok := nilPlan.RuleFor("c"); ok {
		t.Error("nil plan produced a rule")
	}
}

func TestNodeConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.json")
	cfg := supervisor.NodeConfig{
		ID:    "c",
		App:   "mincost",
		Seed:  3,
		Nodes: []types.NodeID{"b", "c", "d"},
		Addrs: map[types.NodeID]string{
			"b": "127.0.0.1:1", "c": "127.0.0.1:2", "d": "127.0.0.1:3",
		},
		DataDir:   dir,
		Behaviors: []string{"tamper-log"},
		Crash:     &supervisor.CrashRule{Node: "c", Mode: supervisor.ModeKill, AtAppend: 6},
	}
	if err := supervisor.WriteNodeConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := supervisor.LoadNodeConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != cfg.ID || got.App != cfg.App || got.Seed != cfg.Seed ||
		got.DataDir != cfg.DataDir || len(got.Nodes) != 3 ||
		got.Addrs["d"] != cfg.Addrs["d"] || got.Behaviors[0] != "tamper-log" ||
		got.Crash == nil || *got.Crash != *cfg.Crash {
		t.Errorf("round trip mangled the config: %+v", got)
	}
	if got.TpropMs <= 0 || got.TickMs <= 0 || got.SyncEvery <= 0 {
		t.Errorf("defaults not applied: %+v", got)
	}

	// Validation: a config whose ID is not in the node set must not load.
	bad := cfg
	bad.ID = "z"
	_ = supervisor.WriteNodeConfig(path, bad)
	if _, err := supervisor.LoadNodeConfig(path); err == nil {
		t.Error("config with unknown node ID loaded")
	}
}

// TestRestartStormCap points the supervisor at a child image that exits
// immediately, and requires it to give up after the configured number of
// restarts instead of spinning forever.
func TestRestartStormCap(t *testing.T) {
	if _, err := os.Stat("/bin/false"); err != nil {
		t.Skip("/bin/false not available")
	}
	s, err := supervisor.New(supervisor.Options{
		Dir:           workDir(t),
		Binary:        "/bin/false",
		App:           "mincost",
		MaxRestarts:   2,
		RestartWindow: time.Minute,
		BackoffBase:   2 * time.Millisecond,
		BackoffMax:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop(time.Second)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if failed := s.Failed(); len(failed) == len(s.App().Nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storm cap never tripped: failed=%v", s.Failed())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, id := range s.App().Nodes {
		if got := s.Restarts(id); got < 2 {
			t.Errorf("%s: %d restarts before giving up, want the cap's worth", id, got)
		}
		if s.Running(id) {
			t.Errorf("%s still running after the cap tripped", id)
		}
	}
}

// TestSupervisedMinCostSmoke runs the real thing small: three daemon
// processes, convergence over live TCP, one injected kill with supervised
// recovery, and a graceful stop.
func TestSupervisedMinCostSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test in -short mode")
	}
	dir := workDir(t)
	s, err := supervisor.New(supervisor.Options{
		Dir:         dir,
		Seed:        1,
		App:         "mincost",
		TickMs:      5,
		SyncEvery:   10,
		BackoffBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop(5 * time.Second)

	if err := s.WaitHealthy(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill d and let the supervisor bring it back through log recovery.
	if err := s.Kill("d"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for s.Restarts("d") == 0 || !s.Running("d") {
		if time.Now().After(deadline) {
			t.Fatalf("d not respawned: restarts=%d running=%v", s.Restarts("d"), s.Running("d"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := s.WaitConverged(30 * time.Second); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	// The heartbeat monitor records restart-to-healthy latency on its own
	// probe cadence; give it a couple of periods to observe the respawn.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if len(s.StartToHealthy("d")) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("restart-to-healthy latency never recorded")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if failed := s.Failed(); len(failed) != 0 {
		t.Errorf("unexpected failed nodes: %v", failed)
	}

	if err := s.Stop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, id := range s.App().Nodes {
		if s.Running(id) {
			t.Errorf("%s still running after Stop", id)
		}
		if _, err := os.Stat(filepath.Join(dir, string(id)+".log")); err != nil {
			t.Errorf("no child log for %s: %v", id, err)
		}
	}
}
