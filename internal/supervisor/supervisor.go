package supervisor

import (
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/queryfront"
	"repro/internal/seclog"
	"repro/internal/transport"
	"repro/internal/types"
)

// SyncedState is a node's durably-synced log position (sequence and chain
// hash from its .segmeta sidecar), captured by the supervisor in the window
// between a child dying and its replacement recovering — the state any
// correct recovery must preserve.
type SyncedState struct {
	Seq  uint64
	Hash []byte
}

// Options configures a supervised deployment. Zero values select defaults
// tuned for loopback tests.
type Options struct {
	// Dir roots everything the deployment writes: child configs, child
	// stdout/stderr logs (<id>.log), the supervisor's own log, and one data
	// directory per node.
	Dir string
	// Binary is the child image (default: this executable, which must call
	// MaybeChild first thing in main).
	Binary string
	// Seed drives key derivation, crash-plan resolution, and backoff
	// jitter.
	Seed int64
	// App names the workload (see AppByName).
	App string
	// Behaviors maps nodes to adversary profile names to arm on them.
	Behaviors map[types.NodeID][]string
	// Crash schedules seeded process deaths (nil: none).
	Crash *CrashPlan
	// TpropMs/TickMs/SyncEvery are passed through to every child's
	// NodeConfig.
	TpropMs, TickMs, SyncEvery int
	// MaxRestarts is the per-node restart-storm cap: more than this many
	// restarts inside RestartWindow marks the node failed and stops
	// respawning it (defaults 5 in 30s).
	MaxRestarts   int
	RestartWindow time.Duration
	// BackoffBase/BackoffMax bound the jittered respawn backoff (defaults
	// 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbeEvery is the health-probe period (default 250ms);
	// ProbeFailLimit the number of consecutive failed probes after which a
	// live-but-unresponsive child is killed and restarted (default 40).
	ProbeEvery     time.Duration
	ProbeFailLimit int
	// QueryFront, when non-empty, hosts a query frontend on this listen
	// address over the supervisor's probe cluster, so remote analysts can
	// audit the deployment without their own key material: the frontend
	// derives the directory from Seed exactly as the children do, and its
	// sessions share a persistent audit cache under Dir/qfcache.
	QueryFront string
	// QueryFrontSessions bounds the frontend's querier pool
	// (0: queryfront's default).
	QueryFrontSessions int
}

func (o Options) withDefaults() Options {
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 5
	}
	if o.RestartWindow <= 0 {
		o.RestartWindow = 30 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = o.BackoffBase
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 250 * time.Millisecond
	}
	if o.ProbeFailLimit <= 0 {
		o.ProbeFailLimit = 40
	}
	return o
}

// child is one supervised node process.
type child struct {
	id   types.NodeID
	cmd  *exec.Cmd
	logF *os.File
	done chan struct{} // closed when Wait returns for the current cmd

	rng        *rand.Rand
	restarts   []time.Time // respawn times inside the storm window
	total      int         // lifetime respawn count
	lastStart  time.Time
	healthyAt  time.Time // zero until the first successful probe per start
	latencies  []time.Duration
	probeFails int
	running    bool
	failed     error
	preStates  []SyncedState // sidecar snapshots taken after each death
}

// Supervisor launches one daemon process per node and keeps the deployment
// alive: children that exit are respawned (through log recovery) with
// jittered backoff, children that hang are killed and respawned, and
// restart storms are capped.
type Supervisor struct {
	opts  Options
	app   NodeApp
	addrs map[types.NodeID]string
	log   *log.Logger
	logF  *os.File

	probe      *transport.Cluster
	fetch      *transport.RemoteFetcher
	front      *queryfront.Server
	frontCache *core.AuditCache

	mu       sync.Mutex
	children map[types.NodeID]*child
	stopping bool
	stopMon  chan struct{}
	monDone  chan struct{}
}

// New validates the options and resolves the workload; Start launches it.
func New(opts Options) (*Supervisor, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("supervisor: Options.Dir is required")
	}
	app, err := AppByName(opts.App)
	if err != nil {
		return nil, err
	}
	if opts.Binary == "" {
		bin, err := os.Executable()
		if err != nil {
			return nil, err
		}
		opts.Binary = bin
	}
	return &Supervisor{
		opts:     opts,
		app:      app,
		addrs:    make(map[types.NodeID]string),
		children: make(map[types.NodeID]*child),
		stopMon:  make(chan struct{}),
		monDone:  make(chan struct{}),
	}, nil
}

// App returns the resolved workload (the harness side needs its node list,
// compromised set, factory, and querier hooks).
func (s *Supervisor) App() NodeApp { return s.app }

// Addrs returns every node's fixed listen address.
func (s *Supervisor) Addrs() map[types.NodeID]string {
	out := make(map[types.NodeID]string, len(s.addrs))
	for id, a := range s.addrs {
		out[id] = a
	}
	return out
}

// Cluster returns the supervisor's probe cluster, which has every node as a
// peer; NewFetcher on it gives auditors and harnesses a wire-level path to
// the children.
func (s *Supervisor) Cluster() *transport.Cluster { return s.probe }

// Front returns the hosted query frontend, or nil unless
// Options.QueryFront asked for one.
func (s *Supervisor) Front() *queryfront.Server { return s.front }

// startFront builds the audit-side state the frontend needs — the same
// key derivation the children use, so both sides agree on the directory —
// and serves it on the configured address over the probe cluster.
func (s *Supervisor) startFront() error {
	cfg := core.DefaultConfig()
	cfg.Tprop = types.Time(NodeConfig{TpropMs: s.opts.TpropMs}.Tprop())
	cfg.DeltaClock = cfg.Tprop / 2
	cfg.CheckpointEvery = 0
	dir := core.NewDirectory()
	for i, id := range s.app.Nodes {
		key, err := cryptoutil.PooledKey(cfg.Suite, s.opts.Seed*1000+int64(100+i))
		if err != nil {
			return err
		}
		dir.Register(id, key.Public())
	}
	cache, err := core.OpenAuditCache(filepath.Join(s.opts.Dir, "qfcache"), cfg.Suite)
	if err != nil {
		return err
	}
	cfg.AuditCache = cache
	front, err := queryfront.Serve(queryfront.Config{
		Cluster: s.probe, Base: cfg, Dir: dir,
		Factory: s.app.Factory, ConfigureQuerier: s.app.ConfigureQuerier,
		Sessions: s.opts.QueryFrontSessions,
	}, s.opts.QueryFront)
	if err != nil {
		_ = cache.Close()
		return err
	}
	s.front, s.frontCache = front, cache
	s.log.Printf("query frontend on %s", front.Addr())
	return nil
}

// Start allocates one port per node, spawns every child, and begins health
// monitoring.
func (s *Supervisor) Start() error {
	if err := os.MkdirAll(filepath.Join(s.opts.Dir, "data"), 0o755); err != nil {
		return err
	}
	logF, err := os.OpenFile(filepath.Join(s.opts.Dir, "supervisor.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.logF = logF
	s.log = log.New(logF, "", log.Ltime|log.Lmicroseconds)

	// Fixed ports: allocate by binding and releasing, so a restarted child
	// rebinds the same address its peers keep dialing.
	for _, id := range s.app.Nodes {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		s.addrs[id] = l.Addr().String()
		_ = l.Close()
	}

	s.probe = transport.NewCluster()
	for id, addr := range s.addrs {
		s.probe.AddPeer(id, addr)
	}
	s.fetch = s.probe.NewFetcher("supervisor")
	s.fetch.CallTimeout = 200 * time.Millisecond
	s.fetch.RetryDeadline = 250 * time.Millisecond

	if s.opts.QueryFront != "" {
		if err := s.startFront(); err != nil {
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.app.Nodes {
		h := fnv.New64a()
		h.Write([]byte(id))
		c := &child{
			id:  id,
			rng: rand.New(rand.NewSource(s.opts.Seed ^ int64(h.Sum64()))),
		}
		s.children[id] = c
		if err := s.spawnLocked(c, false); err != nil {
			return err
		}
	}
	go s.monitor()
	return nil
}

// configFor assembles one child's NodeConfig.
func (s *Supervisor) configFor(id types.NodeID, recover bool) NodeConfig {
	cfg := NodeConfig{
		ID:        id,
		App:       s.opts.App,
		Seed:      s.opts.Seed,
		Nodes:     s.app.Nodes,
		Addrs:     s.addrs,
		DataDir:   filepath.Join(s.opts.Dir, "data"),
		Recover:   recover,
		Behaviors: s.opts.Behaviors[id],
		TpropMs:   s.opts.TpropMs,
		TickMs:    s.opts.TickMs,
		SyncEvery: s.opts.SyncEvery,
	}
	if !recover {
		// Crash rules arm on the first incarnation only: a recovered
		// process must not immediately re-die on the same trigger.
		if rule, ok := s.opts.Crash.RuleFor(id); ok {
			cfg.Crash = &rule
		}
	}
	return cfg
}

// spawnLocked writes the child's config and starts its process. Callers
// hold s.mu.
func (s *Supervisor) spawnLocked(c *child, recover bool) error {
	cfgPath := filepath.Join(s.opts.Dir, string(c.id)+".json")
	if err := WriteNodeConfig(cfgPath, s.configFor(c.id, recover)); err != nil {
		return err
	}
	logF, err := os.OpenFile(filepath.Join(s.opts.Dir, string(c.id)+".log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(s.opts.Binary)
	cmd.Env = append(os.Environ(), ChildConfigEnv+"="+cfgPath)
	cmd.Stdout, cmd.Stderr = logF, logF
	if err := cmd.Start(); err != nil {
		_ = logF.Close()
		return fmt.Errorf("supervisor: spawning %s: %w", c.id, err)
	}
	c.cmd, c.logF = cmd, logF
	c.done = make(chan struct{})
	c.lastStart = time.Now()
	c.healthyAt = time.Time{}
	c.probeFails = 0
	c.running = true
	s.log.Printf("%s: started pid %d (recover=%v)", c.id, cmd.Process.Pid, recover)
	done := c.done
	go func() {
		err := cmd.Wait()
		_ = logF.Close()
		close(done)
		s.onExit(c, err)
	}()
	return nil
}

// onExit handles one child process ending: respawn through recovery after a
// jittered backoff, unless the supervisor is stopping or the child tripped
// the restart-storm cap.
func (s *Supervisor) onExit(c *child, err error) {
	s.mu.Lock()
	c.running = false
	if s.stopping {
		s.mu.Unlock()
		return
	}
	// The child is dead and its replacement hasn't started: the sidecar on
	// disk is exactly the state it had durably synced before dying. Capture
	// it now, race-free, so harnesses can verify recovery preserved it.
	if _, seq, hash, ok, rerr := seclog.ReadSidecar(filepath.Join(s.opts.Dir, "data"), c.id); rerr == nil && ok && seq > 0 {
		c.preStates = append(c.preStates, SyncedState{Seq: seq, Hash: append([]byte(nil), hash...)})
	}
	now := time.Now()
	keep := c.restarts[:0]
	for _, t := range c.restarts {
		if now.Sub(t) <= s.opts.RestartWindow {
			keep = append(keep, t)
		}
	}
	c.restarts = append(keep, now)
	if len(c.restarts) > s.opts.MaxRestarts {
		c.failed = fmt.Errorf("supervisor: %s restarted %d times in %v, giving up (last exit: %v)",
			c.id, len(c.restarts), s.opts.RestartWindow, err)
		s.log.Print(c.failed)
		s.mu.Unlock()
		return
	}
	c.total++
	backoff := s.opts.BackoffBase << (c.total - 1)
	if backoff > s.opts.BackoffMax || backoff <= 0 {
		backoff = s.opts.BackoffMax
	}
	wait := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
	s.log.Printf("%s: exited (%v), respawning in %v", c.id, err, wait)
	s.mu.Unlock()

	time.Sleep(wait)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping || c.failed != nil {
		return
	}
	if err := s.spawnLocked(c, true); err != nil {
		c.failed = err
		s.log.Print(err)
	}
}

// monitor is the heartbeat loop: it probes every running child over the
// health RPC, records restart-to-healthy latency, and kills children that
// stay unresponsive past the probe-failure limit (the exit path then
// respawns them).
func (s *Supervisor) monitor() {
	defer close(s.monDone)
	ticker := time.NewTicker(s.opts.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopMon:
			return
		case <-ticker.C:
		}
		for _, id := range s.app.Nodes {
			s.mu.Lock()
			c := s.children[id]
			probeIt := c != nil && c.running && c.failed == nil
			s.mu.Unlock()
			if !probeIt {
				continue
			}
			_, err := s.fetch.Health(id, 0)
			s.mu.Lock()
			if !c.running {
				s.mu.Unlock()
				continue
			}
			switch {
			case err == nil:
				c.probeFails = 0
				if c.healthyAt.IsZero() {
					c.healthyAt = time.Now()
					c.latencies = append(c.latencies, c.healthyAt.Sub(c.lastStart))
					s.log.Printf("%s: healthy %v after start", id, c.healthyAt.Sub(c.lastStart))
				}
			default:
				c.probeFails++
				if c.probeFails > s.opts.ProbeFailLimit {
					s.log.Printf("%s: %d probes failed, killing hung child", id, c.probeFails)
					c.probeFails = 0
					if c.cmd != nil && c.cmd.Process != nil {
						_ = c.cmd.Process.Kill()
					}
				}
			}
			s.mu.Unlock()
		}
	}
}

// Kill SIGKILLs a child (fault injection beyond the seeded plan); the
// normal exit path respawns it.
func (s *Supervisor) Kill(id types.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.children[id]
	if c == nil || !c.running || c.cmd == nil || c.cmd.Process == nil {
		return fmt.Errorf("supervisor: no running child %s", id)
	}
	return c.cmd.Process.Kill()
}

// Running reports whether a child's process is currently alive.
func (s *Supervisor) Running(id types.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.children[id]
	return c != nil && c.running
}

// Restarts returns a child's lifetime respawn count.
func (s *Supervisor) Restarts(id types.NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.children[id]; c != nil {
		return c.total
	}
	return 0
}

// Failed returns the nodes the supervisor has given up on, with why.
func (s *Supervisor) Failed() map[types.NodeID]error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.NodeID]error)
	for id, c := range s.children {
		if c.failed != nil {
			out[id] = c.failed
		}
	}
	return out
}

// PreCrashStates returns the sidecar states captured after each of a
// child's deaths (oldest first), the synced positions recovery had to
// preserve.
func (s *Supervisor) PreCrashStates(id types.NodeID) []SyncedState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.children[id]; c != nil {
		return append([]SyncedState(nil), c.preStates...)
	}
	return nil
}

// StartToHealthy returns a child's start→first-successful-probe latencies,
// one entry per (re)start observed healthy so far.
func (s *Supervisor) StartToHealthy(id types.NodeID) []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.children[id]; c != nil {
		return append([]time.Duration(nil), c.latencies...)
	}
	return nil
}

// Health proxies one health probe through the supervisor's fetcher.
func (s *Supervisor) Health(id types.NodeID, probeSeq uint64) (transport.Health, error) {
	return s.fetch.Health(id, probeSeq)
}

// WaitHealthy blocks until every non-failed child answers a health probe,
// or the timeout passes.
func (s *Supervisor) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var waiting []string
		for _, id := range s.app.Nodes {
			s.mu.Lock()
			failed := s.children[id] != nil && s.children[id].failed != nil
			s.mu.Unlock()
			if failed {
				continue
			}
			if _, err := s.fetch.Health(id, 0); err != nil {
				waiting = append(waiting, string(id))
			}
		}
		if len(waiting) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			sort.Strings(waiting)
			return fmt.Errorf("supervisor: %v not healthy after %v", waiting, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// WaitConverged blocks until every node reports its workload convergence
// probe true, or the timeout passes. Crashes and restarts may happen
// underneath; unreachable nodes simply aren't converged yet.
func (s *Supervisor) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var waiting []string
		for _, id := range s.app.Nodes {
			h, err := s.fetch.Health(id, 0)
			if err != nil || !h.Converged {
				waiting = append(waiting, string(id))
			}
		}
		if len(waiting) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			sort.Strings(waiting)
			return fmt.Errorf("supervisor: %v not converged after %v", waiting, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Stop shuts the deployment down: SIGTERM every child for a graceful drain,
// SIGKILL whatever remains at the timeout, then release the probe fetcher
// and cluster. The supervisor cannot be restarted.
func (s *Supervisor) Stop(timeout time.Duration) error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return nil
	}
	s.stopping = true
	var waits []chan struct{}
	for _, c := range s.children {
		if c.running && c.cmd != nil && c.cmd.Process != nil {
			_ = c.cmd.Process.Signal(syscall.SIGTERM)
			waits = append(waits, c.done)
		}
	}
	s.mu.Unlock()

	deadline := time.After(timeout)
	for _, done := range waits {
		select {
		case <-done:
		case <-deadline:
			s.mu.Lock()
			for _, c := range s.children {
				if c.running && c.cmd != nil && c.cmd.Process != nil {
					s.log.Printf("%s: did not stop in %v, killing", c.id, timeout)
					_ = c.cmd.Process.Kill()
				}
			}
			s.mu.Unlock()
			// The kills make the remaining waits finish promptly.
			for _, d := range waits {
				<-d
			}
		}
	}
	// The frontend's session fetchers live on the probe cluster: close it
	// (and then the cache it was writing) before the cluster goes away.
	if s.front != nil {
		s.front.Close()
	}
	if s.frontCache != nil {
		_ = s.frontCache.Close()
	}
	if s.fetch != nil {
		close(s.stopMon)
		<-s.monDone
		s.fetch.Close()
	}
	if s.probe != nil {
		s.probe.Close()
	}
	if s.logF != nil {
		_ = s.logF.Close()
	}
	return nil
}
