// Package supervisor is the multi-process deployment layer: it launches one
// snp-node daemon per node as a separate OS process, monitors liveness
// through the transport's health RPC, and restarts crashed children with
// jittered backoff — the piece that turns the single-process livetcp
// harness into a deployment where the failure unit is a real process. A
// seeded CrashPlan injects process deaths at deterministic log positions
// (including mid-flush, so recovery exercises the torn-tail path for real),
// which is how the §4.2 conformance suite re-proves the detection guarantee
// across OS-process crashes.
package supervisor

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/types"
)

// Crash modes: how a CrashRule ends the process.
const (
	// ModeKill SIGKILLs the process immediately after the trigger append is
	// staged — buffered log records die with the process.
	ModeKill = "kill"
	// ModeTorn forces a flush at the trigger append and SIGKILLs between
	// the two halves of the store's split write, leaving a genuinely torn
	// record on disk for recovery to truncate.
	ModeTorn = "torn"
	// ModeCompact forces the store into seal-per-sync at the trigger append
	// and SIGKILLs on the compactor goroutine once the resulting fold has
	// written its replacement table but not yet committed the manifest swap
	// — the widest window a compaction crash has, with both old and new
	// tables on disk and only the manifest deciding which are real.
	ModeCompact = "compact"
)

// CrashRule schedules one process death: when node's log head reaches the
// trigger position (AtAppend plus a seeded jitter draw), the daemon kills
// its own process in the given mode.
type CrashRule struct {
	Node     types.NodeID `json:"node"`
	Mode     string       `json:"mode"`
	AtAppend uint64       `json:"at_append"`
	// Jitter widens the trigger to AtAppend + [0, Jitter], drawn
	// deterministically from the plan seed and the node ID.
	Jitter uint64 `json:"jitter,omitempty"`
}

// CrashPlan is a seeded set of process-death rules. Like transport.FaultPlan,
// two plans with the same Seed and Rules resolve to identical triggers, so
// crash runs are reproducible per seed. A nil *CrashPlan kills nothing.
type CrashPlan struct {
	Seed  int64       `json:"seed"`
	Rules []CrashRule `json:"rules"`
}

// RuleFor resolves the plan for one node: the node's rule with its trigger
// jitter applied (returned in AtAppend), or ok=false when the plan leaves
// the node alone. The first matching rule wins.
func (p *CrashPlan) RuleFor(node types.NodeID) (CrashRule, bool) {
	if p == nil {
		return CrashRule{}, false
	}
	for _, r := range p.Rules {
		if r.Node != node {
			continue
		}
		if r.Jitter > 0 {
			h := fnv.New64a()
			h.Write([]byte(node))
			r.AtAppend += (uint64(p.Seed) ^ h.Sum64()) % (r.Jitter + 1)
			r.Jitter = 0
		}
		return r, true
	}
	return CrashRule{}, false
}

// NodeConfig is everything one daemon process needs to join a deployment.
// The supervisor writes one per child as JSON and points the child at it
// via the SNP_NODE_CONFIG environment variable.
type NodeConfig struct {
	// ID is this daemon's node identity; App names the workload driver
	// (see AppByName).
	ID  types.NodeID `json:"id"`
	App string       `json:"app"`
	// Seed drives key derivation (shared by every process in the
	// deployment) and the transport's jitter streams.
	Seed int64 `json:"seed"`
	// Nodes is the full deployment in order — the order fixes each node's
	// key index, so every process derives the same directory.
	Nodes []types.NodeID `json:"nodes"`
	// Addrs maps every node (this one included) to its fixed listen
	// address. Fixed ports are what let a restarted process rejoin: peers
	// keep dialing the same address through the transport's backoff.
	Addrs map[types.NodeID]string `json:"addrs"`
	// DataDir roots the node's on-disk segment store.
	DataDir string `json:"data_dir"`
	// Recover makes the daemon reopen an existing store through the crash
	// recovery path instead of starting fresh (set by the supervisor on
	// every respawn).
	Recover bool `json:"recover,omitempty"`
	// Behaviors are adversary profile names to arm on this node.
	Behaviors []string `json:"behaviors,omitempty"`
	// Crash, when non-nil, is this node's resolved crash rule. The
	// supervisor clears it on respawn so a recovered process does not
	// immediately re-die.
	Crash *CrashRule `json:"crash,omitempty"`
	// TpropMs is the commitment protocol's propagation bound (default
	// 400ms); TickMs the daemon tick period (default 10ms); SyncEvery how
	// many ticks between durable log syncs (default 20).
	TpropMs   int `json:"tprop_ms,omitempty"`
	TickMs    int `json:"tick_ms,omitempty"`
	SyncEvery int `json:"sync_every,omitempty"`
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.TpropMs <= 0 {
		c.TpropMs = 400
	}
	if c.TickMs <= 0 {
		c.TickMs = 10
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 20
	}
	return c
}

// Tprop returns the propagation bound as a duration.
func (c NodeConfig) Tprop() time.Duration {
	return time.Duration(c.withDefaults().TpropMs) * time.Millisecond
}

func (c NodeConfig) validate() error {
	if c.ID == "" {
		return fmt.Errorf("supervisor: config has no node ID")
	}
	if c.Addrs[c.ID] == "" {
		return fmt.Errorf("supervisor: config for %s has no listen address", c.ID)
	}
	if c.DataDir == "" {
		return fmt.Errorf("supervisor: config for %s has no data dir", c.ID)
	}
	found := false
	for _, id := range c.Nodes {
		if id == c.ID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("supervisor: node %s is not in the deployment %v", c.ID, c.Nodes)
	}
	return nil
}

// WriteNodeConfig atomically writes cfg as JSON (tmp + rename, so a child
// never reads a half-written config across a supervisor crash).
func WriteNodeConfig(path string, cfg NodeConfig) error {
	raw, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadNodeConfig reads and validates a child config.
func LoadNodeConfig(path string) (NodeConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return NodeConfig{}, err
	}
	var cfg NodeConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return NodeConfig{}, fmt.Errorf("supervisor: parsing %s: %w", filepath.Base(path), err)
	}
	cfg = cfg.withDefaults()
	return cfg, cfg.validate()
}
