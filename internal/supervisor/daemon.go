package supervisor

import (
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/transport"
	"repro/internal/types"
)

// ChildConfigEnv points a child process at its NodeConfig file. The
// supervisor sets it on every child it spawns.
const ChildConfigEnv = "SNP_NODE_CONFIG"

// MaybeChild turns the current process into a node daemon when
// ChildConfigEnv is set, and never returns in that case. Any binary that
// the supervisor may use as its child image (snp-node, snp-bench, test
// binaries via TestMain) calls this first thing in main, which is how one
// executable serves as both parent and child without a separate build.
func MaybeChild() {
	path := os.Getenv(ChildConfigEnv)
	if path == "" {
		return
	}
	cfg, err := LoadNodeConfig(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snp-node:", err)
		os.Exit(2)
	}
	if err := RunDaemon(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "snp-node:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// die ends the process the way a crash does: SIGKILL, no deferred cleanup,
// no flushes. The empty select covers the handful of instructions between
// sending the signal and the kernel reaping us.
func die() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {}
}

// installCrashRule arms a resolved crash rule on the node's log store.
// Seq positions at or past the trigger fire it (the exact position can be
// consumed by a batch append), whichever append gets there first.
func installCrashRule(n *core.Node, rule *CrashRule) error {
	if rule == nil {
		return nil
	}
	trigger := rule.AtAppend
	armed := false
	var hooks seclog.StoreHooks
	// One append before the trigger, sync: the death then always happens
	// with a synced sidecar on disk (the state recovery must preserve) and
	// an unsynced tail at risk (the state recovery must cope with losing).
	syncBefore := func(seq uint64) {
		if seq+1 == trigger {
			_ = n.Log.Sync()
		}
	}
	switch rule.Mode {
	case ModeKill:
		hooks.AfterAppend = func(seq uint64) {
			syncBefore(seq)
			if seq >= trigger {
				die()
			}
		}
	case ModeTorn:
		hooks.MidFlush = func() {
			if armed {
				die()
			}
		}
		hooks.AfterAppend = func(seq uint64) {
			syncBefore(seq)
			if seq < trigger || armed {
				return
			}
			// Arm the mid-flush kill and force a flush now, so the store
			// dies between the two halves of its split write and leaves
			// this very record torn on disk.
			armed = true
			_ = n.Log.Flush()
		}
	case ModeCompact:
		hooks.MidCompact = func() {
			if armed {
				die()
			}
		}
		hooks.AfterAppend = func(seq uint64) {
			syncBefore(seq)
			if seq < trigger {
				return
			}
			if !armed {
				// From the trigger on, every synced append seals into its
				// own table (seal limit 1 byte) and a second sealed table
				// starts a fold (fold threshold 1): the death then lands on
				// the compactor goroutine, after the folded replacement
				// table is durable but before the manifest swap commits it.
				armed = true
				n.Log.SetStoreTuning(1, 1)
			}
			_ = n.Log.Sync()
		}
	default:
		return fmt.Errorf("supervisor: unknown crash mode %q", rule.Mode)
	}
	if !n.Log.SetStoreHooks(hooks) {
		return fmt.Errorf("supervisor: crash rule on %s needs a store-backed log", n.ID)
	}
	return nil
}

// RunDaemon runs one node daemon to completion: build the node (fresh or
// through crash recovery), arm behaviors and crash rules, serve the
// transport, drive the workload on a wall-clock tick loop, and drain
// gracefully on SIGTERM/SIGINT. It returns once the daemon has shut down
// cleanly; crash rules never return (the process dies).
func RunDaemon(cfg NodeConfig) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	app, err := AppByName(cfg.App)
	if err != nil {
		return err
	}
	logger := log.New(os.Stdout, string(cfg.ID)+": ", log.Ltime|log.Lmicroseconds)

	tcfg := transport.DefaultConfig()
	tcfg.Seed = cfg.Seed
	cluster := transport.NewClusterWith(tcfg)
	defer cluster.Close()
	for id, addr := range cfg.Addrs {
		if id != cfg.ID {
			cluster.AddPeer(id, addr)
		}
	}

	ccfg := core.DefaultConfig()
	ccfg.Tprop = types.Time(cfg.Tprop())
	ccfg.DeltaClock = ccfg.Tprop / 2
	ccfg.CheckpointEvery = 0
	ccfg.LogDir = cfg.DataDir
	ccfg.LogRecover = cfg.Recover

	dir := core.NewDirectory()
	var key cryptoutil.PrivateKey
	for i, id := range cfg.Nodes {
		k, keyErr := cryptoutil.PooledKey(ccfg.Suite, cfg.Seed*1000+int64(100+i))
		if keyErr != nil {
			return keyErr
		}
		dir.Register(id, k.Public())
		if id == cfg.ID {
			key = k
		}
	}
	maint := core.NewMaintainer()
	node, err := core.NewNode(cfg.ID, ccfg, key, dir, maint,
		transport.WallClock{}, cluster, app.Factory(cfg.ID))
	if err != nil {
		return fmt.Errorf("supervisor: starting %s: %w", cfg.ID, err)
	}
	for _, name := range cfg.Behaviors {
		p, ok := adversary.ProfileByName(name)
		if !ok {
			return fmt.Errorf("supervisor: unknown behavior %q on %s", name, cfg.ID)
		}
		p.New().Install(node)
	}
	if err := installCrashRule(node, cfg.Crash); err != nil {
		return err
	}
	cluster.SetMaintainer(maint)
	if app.Probe != nil {
		cluster.SetProbe(cfg.ID, app.Probe)
	}
	if _, err := cluster.Serve(node, cfg.Addrs[cfg.ID]); err != nil {
		return err
	}

	switch {
	case cfg.Recover:
		logger.Printf("recovered: head=%d torn=%dB", node.Log.Len(), node.Log.RecoveredTornBytes())
		if app.Recovered != nil {
			if err := cluster.With(cfg.ID, func(n *core.Node) { app.Recovered(n) }); err != nil {
				return err
			}
		}
	default:
		logger.Printf("serving on %s", cfg.Addrs[cfg.ID])
		if app.Start != nil {
			var startErr error
			if err := cluster.With(cfg.ID, func(n *core.Node) { startErr = app.Start(n) }); err != nil {
				return err
			}
			if startErr != nil {
				return startErr
			}
		}
	}

	// Publish a sidecar before the first crash trigger can fire, so the
	// supervisor always has a synced state to hold recovery against.
	if err := cluster.With(cfg.ID, func(n *core.Node) { _ = n.Log.Sync() }); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	ticker := time.NewTicker(time.Duration(cfg.TickMs) * time.Millisecond)
	defer ticker.Stop()
	tick := 0
	for {
		select {
		case s := <-sig:
			logger.Printf("%v: draining", s)
			cluster.Drain(2 * time.Second)
			if err := cluster.StopNode(cfg.ID); err != nil {
				return err
			}
			if err := node.Log.Sync(); err != nil {
				return err
			}
			if err := node.Log.Close(); err != nil {
				return err
			}
			logger.Printf("stopped at head=%d", node.Log.Len())
			return nil
		case <-ticker.C:
			tick++
			if err := cluster.With(cfg.ID, func(n *core.Node) {
				if app.Step != nil {
					app.Step(n, tick)
				}
			}); err != nil {
				return err
			}
			_ = cluster.TickAll()
			if tick%cfg.SyncEvery == 0 {
				if err := cluster.With(cfg.ID, func(n *core.Node) { _ = n.Log.Sync() }); err != nil {
					return err
				}
			}
		}
	}
}
