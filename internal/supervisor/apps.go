package supervisor

import (
	"fmt"

	"repro/internal/apps/bgp"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/types"
)

// NodeApp is one workload from a single node's point of view. Unlike
// livetcp.App, which drives a whole deployment from one process, every
// callback here touches only the local node: each daemon seeds its own base
// tuples, steps its own protocol proxy, and probes its own convergence
// condition, and the pieces only meet over the network.
type NodeApp struct {
	Name        string
	Nodes       []types.NodeID
	Compromised []types.NodeID
	Factory     types.MachineFactory

	// Start seeds the node-local share of the workload once, on a fresh
	// (non-recovery) start. May be nil.
	Start func(n *core.Node) error
	// Recovered re-derives node-local driver state from the recovered
	// machine after a crash restart. May be nil.
	Recovered func(n *core.Node)
	// Step drives periodic node-local application work; tick counts from 1.
	// May be nil.
	Step func(n *core.Node, tick int)
	// Probe reports the node-local convergence condition (true for nodes
	// with nothing to wait for); served through the transport's health RPC.
	Probe func(n *core.Node) bool
	// ConfigureQuerier installs app-specific audit hooks on the auditing
	// process's querier. May be nil.
	ConfigureQuerier func(q *core.Querier)
}

// AppNames lists the workloads AppByName accepts.
func AppNames() []string { return []string{"mincost", "quagga"} }

// AppByName builds the named workload. Each call returns an independent
// driver (quagga's per-node speakers are private to the returned value), so
// a daemon and a harness in different processes each construct their own.
func AppByName(name string) (NodeApp, error) {
	switch name {
	case "mincost":
		return minCostNodeApp(), nil
	case "quagga":
		return quaggaNodeApp(), nil
	}
	return NodeApp{}, fmt.Errorf("supervisor: unknown app %q (have %v)", name, AppNames())
}

// minCostNodeApp is the §3.3 running example split across processes:
// routers b, c, d with the Figure 2 link costs, router b compromised. Each
// router inserts only its own endpoint of each link, and convergence is c
// learning bestCost(@c,d,5).
func minCostNodeApp() NodeApp {
	links := map[types.NodeID][]types.Tuple{
		"b": {mincost.Link("b", "d", 3), mincost.Link("b", "c", 2)},
		"c": {mincost.Link("c", "b", 2), mincost.Link("c", "d", 5)},
		"d": {mincost.Link("d", "b", 3), mincost.Link("d", "c", 5)},
	}
	return NodeApp{
		Name:        "mincost",
		Nodes:       []types.NodeID{"b", "c", "d"},
		Compromised: []types.NodeID{"b"},
		Factory:     mincost.Factory(),
		Start: func(n *core.Node) error {
			for _, l := range links[n.ID] {
				if err := n.InsertBase(l); err != nil {
					return err
				}
			}
			return nil
		},
		Probe: func(n *core.Node) bool {
			if n.ID != "c" {
				return true
			}
			return n.Machine.(*dlog.Machine).Lookup(mincost.BestCost("c", "d", 5))
		},
	}
}

// quaggaNodeApp is the livetcp Quagga slice, one speaker per process: two
// tier-1 peers, the regional provider as30 under both (compromised), and
// the stub as51 under as30. as51 announces p51 and as20 announces p20;
// convergence is each endpoint holding the far prefix.
func quaggaNodeApp() NodeApp {
	links := []bgp.ASLink{
		{A: "as10", B: "as20", RelAB: bgp.Peer},
		{A: "as30", B: "as10", RelAB: bgp.Provider},
		{A: "as30", B: "as20", RelAB: bgp.Provider},
		{A: "as51", B: "as30", RelAB: bgp.Provider},
	}
	rels := bgp.Relations(links)
	announces := map[types.NodeID]string{"as51": "p51", "as20": "p20"}
	wantRoute := map[types.NodeID]string{"as10": "p51", "as51": "p20"}
	speakers := make(map[types.NodeID]*bgp.Speaker)
	speakerFor := func(id types.NodeID) *bgp.Speaker {
		if speakers[id] == nil {
			speakers[id] = bgp.NewSpeaker(id, rels[id])
		}
		return speakers[id]
	}
	return NodeApp{
		Name:        "quagga",
		Nodes:       []types.NodeID{"as10", "as20", "as30", "as51"},
		Compromised: []types.NodeID{"as30"},
		Factory:     bgp.Factory(),
		Start: func(n *core.Node) error {
			if prefix, ok := announces[n.ID]; ok {
				speakerFor(n.ID).Announce(n, prefix)
			}
			return nil
		},
		Recovered: func(n *core.Node) {
			// A fresh process over a recovered log: re-seed the speaker's
			// origins from the machine so a node that crashed mid-
			// convergence keeps originating its prefix.
			speakerFor(n.ID).Recover(n)
		},
		Step: func(n *core.Node, tick int) {
			// Reconcile every few ticks, matching the livetcp cadence.
			if tick%4 == 0 {
				speakerFor(n.ID).Sync(n)
			}
		},
		Probe: func(n *core.Node) bool {
			prefix, ok := wantRoute[n.ID]
			if !ok {
				return true
			}
			for _, t := range n.Machine.(*dlog.Machine).TuplesOf("advRoute") {
				if t.Args[1].Str == prefix {
					return true
				}
			}
			return false
		},
		ConfigureQuerier: func(q *core.Querier) {
			q.Auditor.Builder.MaybeValidator = bgp.ValidateExport
		},
	}
}
