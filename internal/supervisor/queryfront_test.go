package supervisor_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/queryfront"
	"repro/internal/supervisor"
	"repro/internal/types"
)

// TestQueryFrontHosting proves the multi-process half of the frontend
// story: `supervise` hosts a query frontend next to the daemons it spawns,
// and remote clients auditing through it get the §4.2 verdict — the
// tamperer provably exposed, honest nodes never accused — without any key
// material of their own (the frontend derives the directory from the
// deployment seed exactly as the children do).
func TestQueryFrontHosting(t *testing.T) {
	dir := workDir(t)
	sup, err := supervisor.New(supervisor.Options{
		Dir:  dir,
		Seed: 3,
		App:  "mincost",
		Behaviors: map[types.NodeID][]string{
			"b": {"tamper-log"},
		},
		QueryFront:         "127.0.0.1:0",
		QueryFrontSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(5 * time.Second)

	if err := sup.WaitConverged(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Let in-flight commitment exchanges resolve before auditing, as the
	// multiproc harness does.
	tprop := supervisor.NodeConfig{}.Tprop()
	time.Sleep(5*tprop/2 + 200*time.Millisecond)

	front := sup.Front()
	if front == nil {
		t.Fatal("Options.QueryFront set but no frontend hosted")
	}

	const clients = 2
	verdicts := make([]*queryfront.AuditResult, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := queryfront.Dial(front.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			v, err := cl.Audit()
			if err != nil {
				t.Errorf("remote audit: %v", err)
				return
			}
			verdicts[c] = v
		}(c)
	}
	wg.Wait()

	for i, v := range verdicts {
		if v == nil {
			continue // the goroutine already failed the test
		}
		exposed := false
		for _, id := range v.StrongNodes() {
			switch id {
			case "b":
				exposed = true
			default:
				t.Errorf("verdict %d: provable evidence implicates honest node %s\nfailures: %v\nred: %v",
					i, id, v.Failures, v.RedHosts)
			}
		}
		if !exposed {
			t.Errorf("verdict %d: tamper-log on b yielded no provable evidence: %+v", i, v)
		}
		if len(v.Unreachable) != 0 {
			t.Errorf("verdict %d: healthy deployment produced unreachable leads: %+v", i, v.Unreachable)
		}
	}

	stats := front.Stats()
	t.Logf("front stats: %v", stats)
	if stats.Served != clients {
		t.Errorf("stats.Served = %d, want %d", stats.Served, clients)
	}
	if stats.CacheHits == 0 {
		t.Error("two audits over the shared persistent cache recorded no hits")
	}
}
