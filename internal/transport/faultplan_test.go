package transport

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/types"
)

// TestFaultPlanDeterminism pins the plan-level reproducibility contract:
// two plans with the same seed and rules make identical per-frame decision
// sequences on every link, and distinct links draw from independent
// streams.
func TestFaultPlanDeterminism(t *testing.T) {
	rules := []FaultRule{{
		From: "*", To: "*",
		Drop:     0.2,
		DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
		Reorder:    0.1,
		ResetEvery: 13,
		StallEvery: 17, StallFor: time.Millisecond,
	}}
	p1 := NewFaultPlan(42, rules...)
	p2 := NewFaultPlan(42, rules...)
	l1, l2 := p1.link("a", "b"), p2.link("a", "b")
	var diffFromOther int
	other := p1.link("b", "a")
	for i := 0; i < 500; i++ {
		d1, d2 := l1.decide(rules), l2.decide(rules)
		if d1 != d2 {
			t.Fatalf("frame %d: same seed diverged: %+v vs %+v", i, d1, d2)
		}
		if d1 != other.decide(rules) {
			diffFromOther++
		}
	}
	if diffFromOther == 0 {
		t.Error("links a->b and b->a share a decision stream")
	}
	p3 := NewFaultPlan(43, rules...)
	l3 := p3.link("a", "b")
	var diffSeed int
	for i := 0; i < 500; i++ {
		if p1.link("a", "b").decide(rules) != l3.decide(rules) {
			diffSeed++
		}
	}
	if diffSeed == 0 {
		t.Error("different seeds made identical decision streams")
	}
}

func TestFaultPlanPartition(t *testing.T) {
	p := NewFaultPlan(1, FaultRule{From: "*", To: "b", Partition: true})
	if !p.Partitioned("a", "b") || !p.Partitioned("x", "b") {
		t.Error("partition rule did not match")
	}
	if p.Partitioned("b", "a") {
		t.Error("one-way partition blocked the reverse direction")
	}
	if _, err := p.Dial("a", "b", "127.0.0.1:1", time.Second); err == nil {
		t.Error("dial across a partition succeeded")
	}
	var nilPlan *FaultPlan
	if nilPlan.Partitioned("a", "b") {
		t.Error("nil plan partitioned a link")
	}
}

// TestSendBackpressure pins the non-blocking Send contract: a peer that
// never accepts connections fills the bounded queue, and further sends are
// dropped and counted rather than blocking the caller.
func TestSendBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLen = 8
	cfg.DialTimeout = 50 * time.Millisecond
	cfg.RetryBase = 50 * time.Millisecond
	cfg.RetryMax = 200 * time.Millisecond
	c := NewClusterWith(cfg)
	defer c.Close()
	// A registered address nobody listens on: dials fail, the queue backs
	// up, and Send must keep returning immediately.
	c.AddPeer("dead", "127.0.0.1:1")

	pkt := &core.Packet{Kind: core.PktAck, Ack: &core.Ack{
		IDs: []types.MessageID{{Src: "a", Dst: "dead", Seq: 1}}, T: 1,
	}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.Send("a", "dead", pkt)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a dead peer")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		s := c.Stats()
		if s.Dropped() > 0 && s.DialErrors > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no drops or dial errors recorded: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterCloseIdempotent pins that Close can be called repeatedly and
// that Send after Close drops cleanly instead of panicking.
func TestClusterCloseIdempotent(t *testing.T) {
	c := NewCluster()
	c.AddPeer("x", "127.0.0.1:1")
	pkt := &core.Packet{Kind: core.PktAck, Ack: &core.Ack{
		IDs: []types.MessageID{{Src: "a", Dst: "x", Seq: 1}}, T: 1,
	}}
	c.Send("a", "x", pkt)
	c.Close()
	c.Close()
	c.Send("a", "x", pkt)
	if s := c.Stats(); s.ClosedDrops == 0 {
		t.Errorf("send after close not counted: %+v", s)
	}
}
