// Package transport runs SNooPy nodes over real TCP sockets (stdlib net),
// complementing the deterministic simulator: the same core.Node, the same
// commitment protocol, but wall-clock time and genuine concurrency. It is
// the deployment path for the library outside experiments.
//
// Framing is trivial: a 4-byte big-endian length, a 1-byte packet kind,
// then the wire-encoded envelope or ack. Each node listens on its own
// address; a Cluster serializes delivery into each node (core.Node is
// single-threaded by contract).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// WallClock is a core.Clock over time.Now.
type WallClock struct{}

// Now implements core.Clock.
func (WallClock) Now() types.Time { return types.Time(time.Now().UnixNano()) }

// Cluster manages a set of local nodes reachable over TCP. It implements
// core.Sender (outbound) and dispatches inbound packets into the owning
// node under a per-node lock.
type Cluster struct {
	mu        sync.Mutex
	addrs     map[types.NodeID]string
	nodes     map[types.NodeID]*member
	listeners []net.Listener
	conns     map[types.NodeID]net.Conn // outbound, lazily dialed
	wg        sync.WaitGroup
	closed    bool
}

type member struct {
	mu   sync.Mutex
	node *core.Node
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{
		addrs: make(map[types.NodeID]string),
		nodes: make(map[types.NodeID]*member),
		conns: make(map[types.NodeID]net.Conn),
	}
}

// AddPeer registers the address of a node (possibly in another process).
func (c *Cluster) AddPeer(id types.NodeID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[id] = addr
}

// Serve starts accepting packets for a local node on addr ("host:0" picks a
// free port). It returns the bound address.
func (c *Cluster) Serve(node *core.Node, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.listeners = append(c.listeners, ln)
	c.addrs[node.ID] = ln.Addr().String()
	m := &member{node: node}
	c.nodes[node.ID] = m
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				defer conn.Close()
				c.serveConn(m, conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (c *Cluster) serveConn(m *member, conn net.Conn) {
	for {
		from, pkt, err := readPacket(conn)
		if err != nil {
			return
		}
		m.mu.Lock()
		_ = m.node.HandlePacket(from, pkt)
		m.mu.Unlock()
	}
}

// Send implements core.Sender.
func (c *Cluster) Send(from, to types.NodeID, pkt *core.Packet) {
	conn, err := c.dial(to)
	if err != nil {
		return // unreachable peer: the retransmit path will retry
	}
	if err := writePacket(conn, from, pkt); err != nil {
		c.mu.Lock()
		delete(c.conns, to)
		c.mu.Unlock()
		conn.Close()
	}
}

func (c *Cluster) dial(to types.NodeID) (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("transport: cluster closed")
	}
	if conn, ok := c.conns[to]; ok {
		return conn, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %s", to)
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	c.conns[to] = conn
	return conn, nil
}

// With runs fn with exclusive access to a local node (drivers use it to
// insert tuples safely alongside inbound traffic).
func (c *Cluster) With(id types.NodeID, fn func(*core.Node)) error {
	c.mu.Lock()
	m, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no local node %s", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.node)
	return nil
}

// TickAll drives every local node's timers once. It returns the first node
// fault encountered (e.g. a signing failure on a batched flush — these used
// to panic); every node is still ticked, and sticky faults remain readable
// via Node.Err.
func (c *Cluster) TickAll() error {
	c.mu.Lock()
	ids := make([]types.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	var first error
	for _, id := range ids {
		_ = c.With(id, func(n *core.Node) {
			if err := n.Tick(); err != nil && first == nil {
				first = fmt.Errorf("transport: %s: %w", id, err)
			}
		})
	}
	return first
}

// Close shuts down listeners and connections.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	for _, ln := range c.listeners {
		ln.Close()
	}
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[types.NodeID]net.Conn)
	c.mu.Unlock()
	c.wg.Wait()
}

// ---------------------------------------------------------------------------
// core.Fetcher over local nodes (queries contact nodes through With).

// Retrieve implements core.Fetcher for local nodes.
func (c *Cluster) Retrieve(node types.NodeID, req core.RetrieveRequest) (resp *core.RetrieveResponse, err error) {
	werr := c.With(node, func(n *core.Node) { resp, err = n.HandleRetrieve(req) })
	if werr != nil {
		return nil, werr
	}
	return resp, err
}

// LatestAuth implements core.Fetcher.
func (c *Cluster) LatestAuth(node types.NodeID) (seclog.Authenticator, error) {
	var auth seclog.Authenticator
	var err error
	werr := c.With(node, func(n *core.Node) { auth, err = n.LatestAuth() })
	if werr != nil {
		return auth, werr
	}
	return auth, err
}

// AuthsAbout implements core.Fetcher.
func (c *Cluster) AuthsAbout(observer, target types.NodeID, t1, t2 types.Time) []seclog.Authenticator {
	var out []seclog.Authenticator
	_ = c.With(observer, func(n *core.Node) { out = n.AuthsAbout(target, t1, t2) })
	return out
}

// Nodes implements core.Fetcher (local nodes only).
func (c *Cluster) Nodes() []types.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Framing.

func writePacket(conn net.Conn, from types.NodeID, pkt *core.Packet) error {
	w := wire.NewWriter(256)
	w.String(string(from))
	w.Byte(byte(pkt.Kind))
	switch pkt.Kind {
	case core.PktEnvelope:
		pkt.Envelope.MarshalWire(w)
	case core.PktAck:
		pkt.Ack.MarshalWire(w)
	default:
		return fmt.Errorf("transport: cannot frame packet kind %d", pkt.Kind)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(w.Len()))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(w.Bytes())
	return err
}

func readPacket(conn net.Conn) (types.NodeID, *core.Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return "", nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return "", nil, fmt.Errorf("transport: oversized frame (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", nil, err
	}
	r := wire.NewReader(buf)
	from := types.NodeID(r.String())
	kind := core.PacketKind(r.Byte())
	pkt := &core.Packet{Kind: kind}
	switch kind {
	case core.PktEnvelope:
		pkt.Envelope = new(core.Envelope)
		r.Value(pkt.Envelope)
	case core.PktAck:
		pkt.Ack = new(core.Ack)
		r.Value(pkt.Ack)
	default:
		return "", nil, fmt.Errorf("transport: unknown packet kind %d", kind)
	}
	if err := r.Finish(); err != nil {
		return "", nil, err
	}
	return from, pkt, nil
}
