// Package transport runs SNooPy nodes over real TCP sockets (stdlib net),
// complementing the deterministic simulator: the same core.Node, the same
// commitment protocol, but wall-clock time and genuine concurrency. It is
// the deployment path for the library outside experiments, and it is built
// to survive a real network: per-link outbound queues with drop-and-count
// backpressure (a dead peer never stalls sends to healthy peers), dial/
// read/write deadlines, bounded exponential backoff with jitter on
// reconnect, and connection reuse that survives peer restarts.
//
// Framing is trivial: a 4-byte big-endian length (bounded by MaxFrame),
// then the sender's node ID, a 1-byte frame kind, and the wire-encoded
// body. Data frames carry envelopes and acks; audit frames (rpc.go) carry
// the retrieve protocol so queriers can audit live nodes remotely. Each
// node listens on its own address; a Cluster serializes delivery into each
// node (core.Node is single-threaded by contract).
//
// A seeded FaultPlan (faultplan.go) can be installed on a Cluster to
// inject drops, delays, reorders, resets, one-way partitions, and
// slow-reader stalls per link — the live-network counterpart of
// internal/adversary's composable behaviors.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// WallClock is a core.Clock over time.Now.
type WallClock struct{}

// Now implements core.Clock.
func (WallClock) Now() types.Time { return types.Time(time.Now().UnixNano()) }

// DefaultMaxFrame bounds the 4-byte frame length a peer can make the
// decoder allocate for: a malicious or corrupt length prefix must not be
// able to OOM the daemon.
const DefaultMaxFrame = 16 << 20

// Config carries the transport's failure-handling parameters. The zero
// value of any field selects the default.
type Config struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 2s); a peer
	// that stalls reading trips it, and the sender resets and reconnects.
	WriteTimeout time.Duration
	// ReadIdle, when positive, is the per-frame read deadline on inbound
	// connections: a peer that goes silent mid-frame (or holds an idle
	// connection past it) is disconnected and must reconnect. Zero keeps
	// inbound connections open indefinitely.
	ReadIdle time.Duration
	// RetryBase/RetryMax bound the exponential reconnect backoff
	// (defaults 20ms and 1s). The actual wait is jittered in
	// [backoff/2, backoff] from a per-link RNG seeded by Seed.
	RetryBase time.Duration
	// RetryMax caps the backoff growth.
	RetryMax time.Duration
	// QueueLen is the per-link outbound queue bound (default 256). A full
	// queue drops the newest frame and counts it — Send never blocks, so a
	// slow link cannot back-pressure the single-threaded node loop.
	QueueLen int
	// MaxFrame bounds inbound (and outbound) frame sizes (default 16 MiB).
	MaxFrame int
	// Seed derives the per-link backoff-jitter RNG streams (and is the
	// natural place to thread a scenario seed through to FaultPlan).
	Seed int64
	// Fault, when non-nil, injects network faults on outbound links.
	Fault *FaultPlan
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		DialTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		RetryBase:    20 * time.Millisecond,
		RetryMax:     time.Second,
		QueueLen:     256,
		MaxFrame:     DefaultMaxFrame,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.RetryBase <= 0 {
		c.RetryBase = d.RetryBase
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = d.RetryMax
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = c.RetryBase
	}
	if c.QueueLen <= 0 {
		c.QueueLen = d.QueueLen
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = d.MaxFrame
	}
	return c
}

// Stats is a snapshot of the cluster's failure counters.
type Stats struct {
	FramesSent     uint64 // frames handed to the OS (possibly fault-dropped)
	QueueFullDrops uint64 // Send backpressure: outbound queue full
	DownDrops      uint64 // link down (dialing failed or in backoff)
	ClosedDrops    uint64 // sends after Close
	WriteErrors    uint64 // write failures (deadline, reset, injected)
	Dials          uint64
	DialErrors     uint64
	Reconnects     uint64 // successful dials after a previous connection
	FramesReceived uint64
	DecodeErrors   uint64 // malformed inbound frames (connection dropped)
	RPCServed      uint64
}

// Dropped sums every frame the transport gave up on.
func (s Stats) Dropped() uint64 {
	return s.QueueFullDrops + s.DownDrops + s.ClosedDrops + s.WriteErrors
}

// Cluster manages a set of local nodes reachable over TCP. It implements
// core.Sender (outbound) and dispatches inbound packets into the owning
// node under a per-node lock. It also implements core.Fetcher for its
// *local* nodes; NewFetcher builds the remote fetcher that audits nodes
// over the wire.
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	addrs   map[types.NodeID]string
	nodes   map[types.NodeID]*member
	peers   map[linkKey]*peer
	maint   *core.Maintainer                       // served by the notes RPC
	probes  map[types.NodeID]func(*core.Node) bool // health convergence probes
	closed  bool
	quit    chan struct{}
	wg      sync.WaitGroup // peer workers
	serveWg sync.WaitGroup // accept loops + inbound handlers + fetchers

	framesSent     atomic.Uint64
	queueFullDrops atomic.Uint64
	downDrops      atomic.Uint64
	closedDrops    atomic.Uint64
	writeErrors    atomic.Uint64
	dials          atomic.Uint64
	dialErrors     atomic.Uint64
	reconnects     atomic.Uint64
	framesReceived atomic.Uint64
	decodeErrors   atomic.Uint64
	rpcServed      atomic.Uint64
}

// member is one locally served node: its listener, its inbound
// connections, and the lock serializing calls into the node.
type member struct {
	mu   sync.Mutex
	node *core.Node

	ln     net.Listener
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup // accept loop + handlers for this node
}

func (m *member) track(conn net.Conn) {
	m.connMu.Lock()
	m.conns[conn] = struct{}{}
	m.connMu.Unlock()
}

func (m *member) untrack(conn net.Conn) {
	m.connMu.Lock()
	delete(m.conns, conn)
	m.connMu.Unlock()
}

func (m *member) closeConns() {
	m.connMu.Lock()
	for conn := range m.conns {
		conn.Close()
	}
	m.connMu.Unlock()
}

// peer is one directional link's outbound state: a bounded queue drained
// by a single worker goroutine that owns the connection and the backoff
// schedule. Faults and backoff jitter are per-link, which is what lets a
// seeded FaultPlan give reproducible per-link decision sequences.
type peer struct {
	from, to types.NodeID
	q        chan *core.Packet

	// Worker-owned; no locking needed.
	conn      net.Conn
	backoff   time.Duration
	nextDial  time.Time
	connected bool // ever connected (distinguishes reconnects)
	rng       *rand.Rand
}

// NewCluster returns an empty cluster with default configuration.
func NewCluster() *Cluster { return NewClusterWith(Config{}) }

// NewClusterWith returns an empty cluster with the given configuration.
func NewClusterWith(cfg Config) *Cluster {
	return &Cluster{
		cfg:    cfg.withDefaults(),
		addrs:  make(map[types.NodeID]string),
		nodes:  make(map[types.NodeID]*member),
		peers:  make(map[linkKey]*peer),
		probes: make(map[types.NodeID]func(*core.Node) bool),
		quit:   make(chan struct{}),
	}
}

// AddPeer registers the address of a node (possibly in another process).
func (c *Cluster) AddPeer(id types.NodeID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[id] = addr
}

// Serve starts accepting packets for a local node on addr ("host:0" picks a
// free port). It returns the bound address. Serving an ID that was stopped
// with StopNode re-registers it (the restart path); peers reconnect to the
// new address transparently because links resolve the address at dial time.
func (c *Cluster) Serve(node *core.Node, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	m := &member{node: node, ln: ln, conns: make(map[net.Conn]struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return "", errors.New("transport: cluster closed")
	}
	if _, dup := c.nodes[node.ID]; dup {
		c.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("transport: node %s already served (StopNode first)", node.ID)
	}
	c.addrs[node.ID] = ln.Addr().String()
	c.nodes[node.ID] = m
	c.mu.Unlock()

	m.wg.Add(1)
	c.serveWg.Add(1)
	go func() {
		defer c.serveWg.Done()
		defer m.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			m.track(conn)
			m.wg.Add(1)
			c.serveWg.Add(1)
			go func() {
				defer c.serveWg.Done()
				defer m.wg.Done()
				defer m.untrack(conn)
				defer conn.Close()
				c.serveConn(m, conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// StopNode tears one served node down — listener closed, inbound
// connections reset, in-flight handlers drained — without touching the
// rest of the cluster. It models a node crash (or a clean shutdown before
// a restart): peers' envelopes to the node start failing and back off
// until Serve registers a replacement. The node's log is NOT closed;
// callers crash-testing the seclog store close or abandon it themselves.
func (c *Cluster) StopNode(id types.NodeID) error {
	c.mu.Lock()
	m, ok := c.nodes[id]
	if ok {
		delete(c.nodes, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no local node %s", id)
	}
	m.ln.Close()
	m.closeConns()
	m.wg.Wait()
	return nil
}

// serveConn handles one inbound connection: data frames are dispatched
// into the member node under its lock; audit frames are answered in place
// (rpc.go). A decode error or read timeout drops the connection — the
// remote side reconnects through its normal backoff path.
func (c *Cluster) serveConn(m *member, conn net.Conn) {
	for {
		if c.cfg.ReadIdle > 0 {
			conn.SetReadDeadline(time.Now().Add(c.cfg.ReadIdle))
		}
		payload, err := readFrame(conn, c.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF {
				c.decodeErrors.Add(1)
			}
			return
		}
		c.framesReceived.Add(1)
		from, kind, r, err := beginFrame(payload)
		if err != nil {
			c.decodeErrors.Add(1)
			return
		}
		if isRPCKind(kind) {
			if err := c.serveRPC(m, conn, from, kind, r); err != nil {
				return
			}
			continue
		}
		pkt, err := decodePacketBody(kind, r)
		if err != nil {
			c.decodeErrors.Add(1)
			return
		}
		m.mu.Lock()
		_ = m.node.HandlePacket(from, pkt)
		m.mu.Unlock()
	}
}

// Send implements core.Sender. It never blocks and never performs network
// I/O on the caller's goroutine: the frame is enqueued on the (from, to)
// link's bounded queue and the link worker dials, writes, and reconnects.
// When the queue is full the frame is dropped and counted — backpressure
// surfaces in Stats, and the commitment protocol's retransmit and
// missing-ack machinery owns recovery.
func (c *Cluster) Send(from, to types.NodeID, pkt *core.Packet) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.closedDrops.Add(1)
		return
	}
	key := linkKey{from, to}
	p := c.peers[key]
	if p == nil {
		h := fnv.New64a()
		h.Write([]byte(from))
		h.Write([]byte{0xff})
		h.Write([]byte(to))
		p = &peer{
			from: from, to: to,
			q:   make(chan *core.Packet, c.cfg.QueueLen),
			rng: rand.New(rand.NewSource(c.cfg.Seed ^ int64(h.Sum64()))),
		}
		c.peers[key] = p
		c.wg.Add(1)
		go c.linkWorker(p)
	}
	c.mu.Unlock()
	select {
	case p.q <- pkt:
	default:
		c.queueFullDrops.Add(1)
	}
}

func (c *Cluster) linkWorker(p *peer) {
	defer c.wg.Done()
	defer func() {
		if p.conn != nil {
			p.conn.Close()
		}
	}()
	for {
		select {
		case <-c.quit:
			return
		case pkt := <-p.q:
			c.deliver(p, pkt)
		}
	}
}

// deliver writes one frame on the link, establishing or re-establishing
// the connection as needed. Failures drop the frame (counted): blocking
// here would stall every later frame on the link behind a peer that may
// be gone for good.
func (c *Cluster) deliver(p *peer, pkt *core.Packet) {
	buf, err := encodePacketFrame(p.from, pkt, c.cfg.MaxFrame)
	if err != nil {
		c.writeErrors.Add(1)
		return
	}
	if p.conn == nil && !c.connect(p) {
		c.downDrops.Add(1)
		return
	}
	if c.writeFrame(p.conn, buf) == nil {
		c.framesSent.Add(1)
		return
	}
	// The connection died under us — the usual sign of a peer restart.
	// Reconnect immediately and retry the frame once; only then give up.
	c.writeErrors.Add(1)
	p.conn.Close()
	p.conn = nil
	if !c.connect(p) {
		c.downDrops.Add(1)
		return
	}
	if c.writeFrame(p.conn, buf) == nil {
		c.framesSent.Add(1)
		return
	}
	c.writeErrors.Add(1)
	p.conn.Close()
	p.conn = nil
	p.failDial(c.cfg)
}

func (c *Cluster) writeFrame(conn net.Conn, buf []byte) error {
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	_, err := conn.Write(buf)
	return err
}

// connect dials the link's current address, honoring the backoff schedule:
// while a previous failure's backoff window is open the call fails fast
// (the frame is dropped) instead of sleeping, so the queue keeps draining.
func (c *Cluster) connect(p *peer) bool {
	if !p.nextDial.IsZero() && time.Now().Before(p.nextDial) {
		return false
	}
	c.mu.Lock()
	addr, ok := c.addrs[p.to]
	c.mu.Unlock()
	if !ok {
		p.failDial(c.cfg)
		return false
	}
	c.dials.Add(1)
	conn, err := c.cfg.Fault.Dial(p.from, p.to, addr, c.cfg.DialTimeout)
	if err != nil {
		c.dialErrors.Add(1)
		p.failDial(c.cfg)
		return false
	}
	if p.connected {
		c.reconnects.Add(1)
	}
	p.connected = true
	p.conn = conn
	p.backoff = 0
	p.nextDial = time.Time{}
	return true
}

// failDial advances the link's exponential backoff and schedules the next
// dial attempt with jitter in [backoff/2, backoff].
func (p *peer) failDial(cfg Config) {
	if p.backoff == 0 {
		p.backoff = cfg.RetryBase
	} else {
		p.backoff *= 2
		if p.backoff > cfg.RetryMax {
			p.backoff = cfg.RetryMax
		}
	}
	wait := p.backoff/2 + time.Duration(p.rng.Int63n(int64(p.backoff/2)+1))
	p.nextDial = time.Now().Add(wait)
}

// With runs fn with exclusive access to a local node (drivers use it to
// insert tuples safely alongside inbound traffic).
func (c *Cluster) With(id types.NodeID, fn func(*core.Node)) error {
	c.mu.Lock()
	m, ok := c.nodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no local node %s", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.node)
	return nil
}

// TickAll drives every local node's timers once. It returns the first node
// fault encountered (e.g. a signing failure on a batched flush — these used
// to panic); every node is still ticked, and sticky faults remain readable
// via Node.Err.
func (c *Cluster) TickAll() error {
	c.mu.Lock()
	ids := make([]types.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var first error
	for _, id := range ids {
		_ = c.With(id, func(n *core.Node) {
			if err := n.Tick(); err != nil && first == nil {
				first = fmt.Errorf("transport: %s: %w", id, err)
			}
		})
	}
	return first
}

// Stats snapshots the cluster's failure counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		FramesSent:     c.framesSent.Load(),
		QueueFullDrops: c.queueFullDrops.Load(),
		DownDrops:      c.downDrops.Load(),
		ClosedDrops:    c.closedDrops.Load(),
		WriteErrors:    c.writeErrors.Load(),
		Dials:          c.dials.Load(),
		DialErrors:     c.dialErrors.Load(),
		Reconnects:     c.reconnects.Load(),
		FramesReceived: c.framesReceived.Load(),
		DecodeErrors:   c.decodeErrors.Load(),
		RPCServed:      c.rpcServed.Load(),
	}
}

// Close shuts down listeners, link workers, and connections, then drains
// every in-flight handler. It is idempotent and safe to call concurrently
// with Send (late sends are dropped and counted).
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	members := make([]*member, 0, len(c.nodes))
	for _, m := range c.nodes {
		members = append(members, m)
	}
	c.mu.Unlock()
	close(c.quit)
	for _, m := range members {
		m.ln.Close()
		m.closeConns()
	}
	c.wg.Wait()      // link workers (close their outbound conns on exit)
	c.serveWg.Wait() // accept loops and inbound handlers
}

// ---------------------------------------------------------------------------
// core.Fetcher over local nodes (queries contact nodes through With).

// Retrieve implements core.Fetcher for local nodes.
func (c *Cluster) Retrieve(node types.NodeID, req core.RetrieveRequest) (resp *core.RetrieveResponse, err error) {
	werr := c.With(node, func(n *core.Node) { resp, err = n.HandleRetrieve(req) })
	if werr != nil {
		return nil, werr
	}
	return resp, err
}

// LatestAuth implements core.Fetcher.
func (c *Cluster) LatestAuth(node types.NodeID) (seclog.Authenticator, error) {
	var auth seclog.Authenticator
	var err error
	werr := c.With(node, func(n *core.Node) { auth, err = n.LatestAuth() })
	if werr != nil {
		return auth, werr
	}
	return auth, err
}

// AuthsAbout implements core.Fetcher.
func (c *Cluster) AuthsAbout(observer, target types.NodeID, t1, t2 types.Time) []seclog.Authenticator {
	var out []seclog.Authenticator
	_ = c.With(observer, func(n *core.Node) { out = n.AuthsAbout(target, t1, t2) })
	return out
}

// Nodes implements core.Fetcher (local nodes only).
func (c *Cluster) Nodes() []types.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.NodeID, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Framing.

// frame kinds: data frames reuse core's packet kinds; audit frames live in
// a disjoint range (rpc.go).
const (
	frameEnvelope = byte(core.PktEnvelope)
	frameAck      = byte(core.PktAck)
)

// encodePacketFrame builds one length-prefixed data frame. The whole frame
// is assembled into a single buffer so one Write transmits it — which is
// also what lets FaultPlan treat writes as frames.
func encodePacketFrame(from types.NodeID, pkt *core.Packet, maxFrame int) ([]byte, error) {
	w := wire.NewWriter(256)
	w.Raw([]byte{0, 0, 0, 0}) // length prefix, patched below
	w.String(string(from))
	w.Byte(byte(pkt.Kind))
	switch pkt.Kind {
	case core.PktEnvelope:
		pkt.Envelope.MarshalWire(w)
	case core.PktAck:
		pkt.Ack.MarshalWire(w)
	default:
		return nil, fmt.Errorf("transport: cannot frame packet kind %d", pkt.Kind)
	}
	return finishFrame(w, maxFrame)
}

// finishFrame patches the length prefix and enforces the frame bound on
// the outbound path too (a local bug must not emit frames peers reject).
func finishFrame(w *wire.Writer, maxFrame int) ([]byte, error) {
	buf := w.Bytes()
	n := len(buf) - 4
	if maxFrame > 0 && n > maxFrame {
		return nil, fmt.Errorf("transport: frame too large (%d > %d bytes)", n, maxFrame)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	return buf, nil
}

// readFrame reads one length-prefixed frame payload. The length is
// adversary-controlled input: anything beyond maxFrame is rejected with a
// checked error before any allocation, never a panic or an OOM.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if n > uint32(maxFrame) {
		return nil, fmt.Errorf("transport: oversized frame (%d > %d bytes)", n, maxFrame)
	}
	if n == 0 {
		return nil, errors.New("transport: empty frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// beginFrame parses a frame payload's common prefix (sender, kind) and
// returns the reader positioned at the body.
func beginFrame(payload []byte) (types.NodeID, byte, *wire.Reader, error) {
	r := wire.NewReader(payload)
	from := types.NodeID(r.String())
	kind := r.Byte()
	if err := r.Err(); err != nil {
		return "", 0, nil, err
	}
	return from, kind, r, nil
}

// The framing is shared with sibling daemons that listen on their own
// sockets but speak the same wire format (the query frontend in
// internal/queryfront). The exported trio below is that seam: a frame is
// a 4-byte big-endian length prefix (bounded by MaxFrame), the sender's
// node ID string, a one-byte kind, then the kind-specific body.

// ReadFrame reads one length-prefixed frame payload from r, rejecting
// hostile lengths beyond maxFrame before any allocation.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	return readFrame(r, maxFrame)
}

// BeginFrame parses a frame payload's common prefix and returns the wire
// reader positioned at the kind-specific body.
func BeginFrame(payload []byte) (types.NodeID, byte, *wire.Reader, error) {
	return beginFrame(payload)
}

// FinishFrame patches the length prefix a caller reserved with
// w.Raw([]byte{0,0,0,0}) and enforces the frame bound outbound.
func FinishFrame(w *wire.Writer, maxFrame int) ([]byte, error) {
	return finishFrame(w, maxFrame)
}

// decodePacketBody decodes a data frame's body into a core.Packet.
func decodePacketBody(kind byte, r *wire.Reader) (*core.Packet, error) {
	pkt := &core.Packet{Kind: core.PacketKind(kind)}
	switch kind {
	case frameEnvelope:
		pkt.Envelope = new(core.Envelope)
		r.Value(pkt.Envelope)
	case frameAck:
		pkt.Ack = new(core.Ack)
		r.Value(pkt.Ack)
	default:
		return nil, fmt.Errorf("transport: unknown frame kind %d", kind)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return pkt, nil
}
