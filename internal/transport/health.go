package transport

// Liveness and recovery probes for multi-process deployments: a supervisor
// (or test harness) in one process asks a node daemon in another "are you
// up, what is your log head, did you recover, and did your workload
// converge?" over the same framed-TCP audit channel the queriers use. The
// companion notes RPC exports a process's local missing-ack reports so an
// auditor in another process can merge every node's §5.4 leads before
// scoring evidence.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/wire"
)

// Health/notes frame kinds (the upper end of the RPC range; isRPCKind spans
// frameRetrieveReq..frameNotesResp).
const (
	frameHealthReq  byte = 0x16
	frameHealthResp byte = 0x17
	frameNotesReq   byte = 0x18
	frameNotesResp  byte = 0x19
)

// Health is one node's liveness report: the live log head, the last durably
// synced (sidecar-recorded) position, crash-recovery forensics, the node's
// sticky fault state, and the app-level convergence probe. ProbeHash echoes
// the chain hash at the caller-chosen ProbeSeq, which is how a supervisor
// verifies that a restarted node's chain still passes through the state it
// had synced before the crash.
type Health struct {
	Node       types.NodeID
	HeadSeq    uint64
	HeadHash   []byte
	SyncedSeq  uint64
	SyncedHash []byte
	// ProbeSeq/ProbeHash: the request's probe position and the chain hash
	// there (empty when the position is not retained).
	ProbeSeq  uint64
	ProbeHash []byte
	// TornBytes is how many torn-tail bytes crash recovery truncated when
	// this process opened its store (0 for clean starts).
	TornBytes int64
	// Converged reports the cluster-installed app probe (false when none).
	Converged bool
	// Fault carries the node's sticky fault, if any ("" when healthy).
	Fault string
}

// MarshalWire implements wire.Marshaler.
func (h Health) MarshalWire(w *wire.Writer) {
	w.String(string(h.Node))
	w.Uint(h.HeadSeq)
	w.BytesField(h.HeadHash)
	w.Uint(h.SyncedSeq)
	w.BytesField(h.SyncedHash)
	w.Uint(h.ProbeSeq)
	w.BytesField(h.ProbeHash)
	w.Int(h.TornBytes)
	w.Bool(h.Converged)
	w.String(h.Fault)
}

// UnmarshalWire implements wire.Unmarshaler.
func (h *Health) UnmarshalWire(r *wire.Reader) error {
	h.Node = types.NodeID(r.String())
	h.HeadSeq = r.Uint()
	h.HeadHash = r.BytesField()
	h.SyncedSeq = r.Uint()
	h.SyncedHash = r.BytesField()
	h.ProbeSeq = r.Uint()
	h.ProbeHash = r.BytesField()
	h.TornBytes = r.Int()
	h.Converged = r.Bool()
	h.Fault = r.String()
	return r.Err()
}

// SetMaintainer installs the process-local maintainer whose missing-ack
// notes the notes RPC serves. Daemons call it once at startup; a cluster
// without one answers notes requests with an empty list.
func (c *Cluster) SetMaintainer(m *core.Maintainer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maint = m
}

// SetProbe installs an app-level convergence probe for a local node,
// reported in health responses. The probe runs under the node's lock.
func (c *Cluster) SetProbe(id types.NodeID, probe func(*core.Node) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probes[id] = probe
}

// buildHealth assembles the health report for a member under its lock.
func (c *Cluster) buildHealth(m *member, probeSeq uint64) Health {
	c.mu.Lock()
	probe := c.probes[m.node.ID]
	c.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.node
	h := Health{
		Node:      n.ID,
		HeadSeq:   n.Log.Len(),
		HeadHash:  n.Log.HeadHash(),
		TornBytes: n.Log.RecoveredTornBytes(),
	}
	h.SyncedSeq, h.SyncedHash = n.Log.SyncedHead()
	if probeSeq > 0 {
		h.ProbeSeq = probeSeq
		if hash, err := n.Log.Hash(probeSeq); err == nil {
			h.ProbeHash = hash
		}
	}
	if probe != nil {
		h.Converged = probe(n)
	}
	if err := n.Err(); err != nil {
		h.Fault = err.Error()
	}
	return h
}

// Health asks node for a liveness report over the wire. probeSeq, when
// non-zero, requests the chain hash at that position (see Health.ProbeHash);
// pass 0 to skip the probe.
func (f *RemoteFetcher) Health(node types.NodeID, probeSeq uint64) (Health, error) {
	var h Health
	err := f.call(node, frameHealthReq, frameHealthResp,
		func(w *wire.Writer) { w.Uint(probeSeq) },
		func(r *wire.Reader) error {
			r.Value(&h)
			return r.Finish()
		})
	return h, err
}

// Notes fetches node's process-local missing-ack reports (§5.4 leads), so a
// cross-process auditor can merge every daemon's maintainer state before
// scoring evidence.
func (f *RemoteFetcher) Notes(node types.NodeID) ([]core.MissingAckNote, error) {
	var out []core.MissingAckNote
	err := f.call(node, frameNotesReq, frameNotesResp, nil,
		func(r *wire.Reader) error {
			n := r.Count() // adversary-controlled; bounded against input size
			if err := r.Err(); err != nil {
				return err
			}
			out = make([]core.MissingAckNote, n)
			for i := range out {
				out[i].Reporter = types.NodeID(r.String())
				out[i].ID.Src = types.NodeID(r.String())
				out[i].ID.Dst = types.NodeID(r.String())
				out[i].ID.Seq = r.Uint()
			}
			return r.Finish()
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Drain waits until every outbound link queue is empty (all staged frames
// handed to the link workers' connections or dropped), or until timeout. It
// reports whether the queues drained. A daemon shutting down gracefully
// drains before Close so already-staged envelopes and acks reach peers
// instead of dying in the queues.
func (c *Cluster) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if c.queuesEmpty() {
			// Queues are empty; give the workers one write's worth of time
			// to finish the frame they may hold in flight.
			time.Sleep(5 * time.Millisecond)
			if c.queuesEmpty() {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *Cluster) queuesEmpty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.peers {
		if len(p.q) > 0 {
			return false
		}
	}
	return true
}

// serveHealthRPC answers the health/notes frame kinds (split out of
// serveRPC's switch; same framing contract).
func (c *Cluster) serveHealthRPC(m *member, kind byte, reqID uint64, r *wire.Reader, w *wire.Writer) error {
	switch kind {
	case frameHealthReq:
		probeSeq := r.Uint()
		if err := r.Finish(); err != nil {
			c.decodeErrors.Add(1)
			return err
		}
		w.Byte(frameHealthResp)
		w.Uint(reqID)
		w.Bool(true)
		c.buildHealth(m, probeSeq).MarshalWire(w)
	case frameNotesReq:
		if err := r.Finish(); err != nil {
			c.decodeErrors.Add(1)
			return err
		}
		c.mu.Lock()
		maint := c.maint
		c.mu.Unlock()
		notes := maint.Notes() // nil-safe: returns nil for a nil maintainer
		w.Byte(frameNotesResp)
		w.Uint(reqID)
		w.Bool(true)
		w.Uint(uint64(len(notes)))
		for _, n := range notes {
			w.String(string(n.Reporter))
			w.String(string(n.ID.Src))
			w.String(string(n.ID.Dst))
			w.Uint(n.ID.Seq)
		}
	default:
		c.decodeErrors.Add(1)
		return fmt.Errorf("transport: unknown audit frame kind %d", kind)
	}
	return nil
}
