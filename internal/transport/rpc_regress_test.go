package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingServer accepts connections, counts them, and handles each one
// with handle (nil means: close immediately). It stands in for a peer that
// is up at the TCP level but never gives the fetcher a useful answer, so
// every attempt fails and the retry loop's pacing becomes observable as an
// accept count.
type countingServer struct {
	ln      net.Listener
	accepts atomic.Uint64
	wg      sync.WaitGroup
}

func startCountingServer(t *testing.T, handle func(net.Conn)) *countingServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &countingServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.accepts.Add(1)
			if handle == nil {
				conn.Close()
				continue
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				handle(conn)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

// TestRetryBackoffFloorNoHotSpin is the regression test for the
// zero-RetryBase hot spin: with cfg.RetryBase and cfg.RetryMax both 0 the
// old call loop computed jitter(0) == 0 and backoff *= 2 kept it at 0, so
// one logical call against an unhelpful peer redialed in a busy loop until
// the retry deadline — thousands of attempts. With the backoff floored,
// the attempts over a 250ms deadline stay in the low tens.
func TestRetryBackoffFloorNoHotSpin(t *testing.T) {
	// The server closes every accepted conn immediately: each attempt
	// dials fine, then fails on the response read, which is the retried
	// (non-final) error class.
	srv := startCountingServer(t, nil)

	c := NewClusterWith(Config{})
	defer c.Close()
	// Simulate the zero/unset retry config the bug needs (NewClusterWith
	// floors these, so reach into the config the way a zeroed struct
	// literal would leave it).
	c.cfg.RetryBase, c.cfg.RetryMax = 0, 0
	c.AddPeer("mute", srv.ln.Addr().String())

	f := c.NewFetcher("querier")
	defer f.Close()
	f.CallTimeout = 100 * time.Millisecond
	f.RetryDeadline = 250 * time.Millisecond

	if _, err := f.LatestAuth("mute"); err == nil {
		t.Fatal("LatestAuth against a mute peer should fail")
	}
	attempts := srv.accepts.Load()
	t.Logf("attempts in 250ms deadline: %d", attempts)
	if attempts == 0 {
		t.Fatal("fetcher never reached the peer; the test exercised nothing")
	}
	if attempts > 64 {
		t.Fatalf("retry loop spun hot: %d attempts for one logical call within a 250ms deadline", attempts)
	}
}

// TestRemoteFetcherCloseConcurrent pins the Close vs in-flight call
// semantics under -race: concurrent callers blocked mid-exchange fail
// once Close lands (they do not keep redialing the peer), post-Close
// calls fail fast with ErrFetcherClosed, and no connection is closed
// twice or leaked (the race detector plus the nil-conn guard in
// closeConn cover that).
func TestRemoteFetcherCloseConcurrent(t *testing.T) {
	// The server swallows requests and never answers, so in-flight calls
	// are parked in the response read when Close hits them.
	srv := startCountingServer(t, func(conn net.Conn) {
		_, _ = io.Copy(io.Discard, conn)
		conn.Close()
	})

	c := NewClusterWith(Config{})
	defer c.Close()
	c.AddPeer("mute", srv.ln.Addr().String())

	for round := 0; round < 8; round++ {
		f := c.NewFetcher("querier")
		f.CallTimeout = 400 * time.Millisecond
		f.RetryDeadline = 2 * time.Second

		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if _, err := f.LatestAuth("mute"); err == nil {
					t.Error("call against a mute peer succeeded")
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(round) * 3 * time.Millisecond)
			f.Close()
			f.Close() // idempotent
		}()
		close(start)

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("calls did not unwind after Close; in-flight calls must fail, not retry to the full deadline")
		}

		if _, err := f.LatestAuth("mute"); !errors.Is(err, ErrFetcherClosed) {
			t.Fatalf("post-Close call error = %v, want ErrFetcherClosed", err)
		}
	}
}
