package transport

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/types"
)

// clusterGoroutines returns the stacks of goroutines running this package's
// worker methods — the accept loops, inbound handlers, and link workers that
// Close must reap. Matching only Cluster methods keeps the test immune to
// runtime/netpoll goroutines (and the test functions themselves).
func clusterGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var stacks []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "repro/internal/transport.(*Cluster)") {
			stacks = append(stacks, g)
		}
	}
	return stacks
}

// TestClusterCloseReapsGoroutines runs repeated open → serve → traffic →
// close cycles and requires every transport goroutine (accept loops, per-
// connection handlers, link workers) to be gone after each Close. A handler
// or dial goroutine that outlives Close accumulates across the cycles and
// trips the zero check.
func TestClusterCloseReapsGoroutines(t *testing.T) {
	cycles := 5
	if testing.Short() {
		cycles = 3
	}
	for cycle := 0; cycle < cycles; cycle++ {
		func() {
			cluster := NewCluster()
			defer cluster.Close()
			ids, _ := serveTestNodes(t, cluster, 3, "")

			// Real cross-link traffic: base inserts fan out envelopes, ticks
			// flush batches and acks.
			for _, id := range ids {
				for _, other := range ids {
					if other != id {
						_ = cluster.With(id, func(n *core.Node) {
							n.InsertBase(mincost.Link(id, other, 2))
						})
					}
				}
			}
			for i := 0; i < 5; i++ {
				_ = cluster.TickAll()
				time.Sleep(5 * time.Millisecond)
			}
			// Audit RPCs keep server-side handler goroutines busy too.
			f := cluster.NewFetcher("probe")
			defer f.Close()
			for _, id := range ids {
				if _, err := f.LatestAuth(id); err != nil {
					t.Fatalf("cycle %d: LatestAuth(%s): %v", cycle, id, err)
				}
				if _, err := f.Health(id, 0); err != nil {
					t.Fatalf("cycle %d: Health(%s): %v", cycle, id, err)
				}
			}
			// One node stopped mid-run: its handlers must drain on StopNode,
			// and the peers' link workers keep backing off against it.
			if err := cluster.StopNode(ids[2]); err != nil {
				t.Fatal(err)
			}
			_ = cluster.TickAll()
		}()
		// After Close every transport goroutine must be gone. Close waits on
		// its WaitGroups, so there is nothing to poll for — but give the
		// scheduler a beat on slow CI before declaring a leak.
		leaked := clusterGoroutines()
		for wait := 0; len(leaked) > 0 && wait < 100; wait++ {
			time.Sleep(10 * time.Millisecond)
			leaked = clusterGoroutines()
		}
		if len(leaked) > 0 {
			t.Fatalf("cycle %d: %d transport goroutines survived Close:\n%s",
				cycle, len(leaked), strings.Join(leaked, "\n\n"))
		}
	}
}

// TestFetcherCloseReleasesConnections pins the fetcher side: Close drops
// every pooled connection, so the server's per-connection handlers exit
// instead of idling on a dead read for the life of the process.
func TestFetcherCloseReleasesConnections(t *testing.T) {
	cluster := NewCluster()
	defer cluster.Close()
	ids, _ := serveTestNodes(t, cluster, 2, "")

	before := len(clusterGoroutines())
	fetchers := make([]*RemoteFetcher, 4)
	for i := range fetchers {
		fetchers[i] = cluster.NewFetcher(types.NodeID(fmt.Sprintf("auditor-%d", i)))
		for _, id := range ids {
			if _, err := fetchers[i].Health(id, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(clusterGoroutines()) <= before {
		t.Fatal("fetcher traffic spawned no server-side handlers (test is vacuous)")
	}
	for _, f := range fetchers {
		f.Close()
	}
	leaked := -1
	for wait := 0; wait < 100; wait++ {
		if leaked = len(clusterGoroutines()) - before; leaked <= 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked > 0 {
		t.Fatalf("%d handler goroutines outlived the fetchers that dialed them", leaked)
	}
}
