package transport

import (
	"testing"
	"time"

	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/dlog"
	"repro/internal/provgraph"
	"repro/internal/types"
)

// TestMinCostOverTCP runs the §3.3 example over real loopback sockets and
// wall-clock time, then answers the Figure 2 query — the same stack the
// simulator exercises, on a genuine network.
func TestMinCostOverTCP(t *testing.T) {
	cluster := NewCluster()
	defer cluster.Close()

	cfg := core.DefaultConfig()
	cfg.Tprop = 5 * types.Second // generous for loopback + scheduling noise
	cfg.DeltaClock = types.Second
	cfg.CheckpointEvery = 0
	dir := core.NewDirectory()
	maint := core.NewMaintainer()
	prog := mincost.Program()

	ids := []types.NodeID{"b", "c", "d"}
	for i, id := range ids {
		key, err := cryptoutil.PooledKey(cfg.Suite, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		dir.Register(id, key.Public())
		node, err := core.NewNode(id, cfg, key, dir, maint, WallClock{}, cluster,
			dlog.NewMachine(prog, id))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cluster.Serve(node, "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}

	// Figure 2's relevant links.
	insert := func(id types.NodeID, tup types.Tuple) {
		if err := cluster.With(id, func(n *core.Node) { n.InsertBase(tup) }); err != nil {
			t.Fatal(err)
		}
	}
	insert("b", mincost.Link("b", "d", 3))
	insert("d", mincost.Link("d", "b", 3))
	insert("b", mincost.Link("b", "c", 2))
	insert("c", mincost.Link("c", "b", 2))
	insert("c", mincost.Link("c", "d", 5))
	insert("d", mincost.Link("d", "c", 5))

	// Wait for convergence: c must learn bestCost(@c,d,5).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ok bool
		_ = cluster.With("c", func(n *core.Node) {
			ok = n.Machine.(*dlog.Machine).Lookup(mincost.BestCost("c", "d", 5))
		})
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("MinCost did not converge over TCP within 10s")
		}
		cluster.TickAll()
		time.Sleep(20 * time.Millisecond)
	}
	// Let in-flight acks land before auditing.
	time.Sleep(200 * time.Millisecond)

	auditor := core.NewAuditor(cfg, dir, mincost.Factory(), maint)
	q := core.NewQuerier(auditor, cluster)
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain over TCP: %v (failures %v)", err, auditor.Failures())
	}
	if len(expl.FindColor(provgraph.Red)) != 0 {
		t.Errorf("red vertices on a correct TCP run:\n%s", expl.Format())
	}
	if expl.Size() < 5 {
		t.Errorf("suspiciously small answer (%d vertices):\n%s", expl.Size(), expl.Format())
	}
}

func TestFramingRejectsOversized(t *testing.T) {
	if _, err := encodePacketFrame("a", &core.Packet{Kind: 99}, DefaultMaxFrame); err == nil {
		t.Error("unknown packet kind framed")
	}
}
