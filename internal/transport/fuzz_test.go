package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/types"
)

// fuzzMaxFrame keeps fuzz allocations bounded without weakening the check:
// the decoder must enforce whatever bound it is given.
const fuzzMaxFrame = 64 << 10

// frame wraps a payload in the 4-byte length prefix the wire carries.
func frame(payload []byte) []byte {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	return buf
}

// FuzzFrameDecode feeds arbitrary byte streams to the inbound frame path —
// length prefix, sender, kind byte, packet body — exactly as a connection
// handler consumes them. Every byte is adversary-controlled (any peer can
// connect); the decoder must return checked errors, never panic, and never
// let the length prefix drive an allocation past the frame bound.
func FuzzFrameDecode(f *testing.F) {
	corpus := adversary.WireCorpus()
	for _, group := range [][][]byte{corpus.Entries, corpus.Segments, corpus.Requests, corpus.Responses} {
		for _, b := range group {
			f.Add(frame(b))
		}
	}
	// Well-formed envelope and ack frames, so mutations explore the deep
	// decode paths and not just the length check.
	msg := types.Message{Src: "b", Dst: "a", Pol: types.PolAppear,
		Tuple: types.MakeTuple("t", types.N("a"), types.I(1)), SendTime: types.Second, Seq: 1}
	env, err := encodePacketFrame("b", &core.Packet{Kind: core.PktEnvelope, Envelope: &core.Envelope{
		Msgs: []types.Message{msg}, PrevHash: []byte{1, 2}, T: types.Second, Sig: []byte{3, 4}, Seq: 5,
	}}, fuzzMaxFrame)
	if err != nil {
		f.Fatal(err)
	}
	ack, err := encodePacketFrame("a", &core.Packet{Kind: core.PktAck, Ack: &core.Ack{
		IDs: []types.MessageID{msg.ID()}, PrevHash: []byte{6}, T: 2 * types.Second, Sig: []byte{7}, Seq: 9,
	}}, fuzzMaxFrame)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(env)
	f.Add(ack)
	f.Add(append(env, ack...)) // two frames back to back
	// Hostile length prefixes: oversized claim, truncated body, empty frame.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x01, 0x02})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		for {
			payload, err := readFrame(rd, fuzzMaxFrame)
			if err != nil {
				return // checked rejection ends the stream, as in serveConn
			}
			if len(payload) > fuzzMaxFrame {
				t.Fatalf("readFrame returned %d bytes past the %d bound", len(payload), fuzzMaxFrame)
			}
			from, kind, r, err := beginFrame(payload)
			if err != nil {
				return
			}
			if isRPCKind(kind) {
				// The RPC dispatch path decodes its own body; here it is
				// enough that header parsing was checked.
				continue
			}
			pkt, err := decodePacketBody(kind, r)
			if err != nil {
				return
			}
			// Whatever decodes must re-encode: the node's retransmit path
			// frames stored packets, and a decodable-but-unencodable packet
			// would turn a hostile input into a local failure later.
			if _, err := encodePacketFrame(from, pkt, DefaultMaxFrame); err != nil {
				t.Fatalf("decoded packet does not re-encode: %v", err)
			}
		}
	})
}
