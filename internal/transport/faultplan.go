package transport

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// FaultRule injects faults on the directional links it matches. From/To
// select the link by node ID; empty or "*" matches any endpoint. All knobs
// compose: a rule can drop, delay, reorder, reset, and stall at once, and
// several rules can match the same link (each is applied in order).
//
// Faults act on whole frames (the transport writes one frame per Write), so
// a drop loses exactly one packet and a reorder swaps two adjacent ones —
// the same granularity the deterministic simulator's adversary uses.
type FaultRule struct {
	From, To string

	// Drop is the per-frame probability the frame is silently discarded
	// (the write reports success; the bytes never reach the peer).
	Drop float64
	// DelayMin/DelayMax bound a uniform per-frame delay applied before the
	// write. Keep delays well under Tprop: the commitment protocol rejects
	// envelopes outside the Δclock+Tprop skew window.
	DelayMin, DelayMax time.Duration
	// Reorder is the per-frame probability the frame is held back and
	// transmitted after the next frame on the link.
	Reorder float64
	// ResetEvery closes the connection with an injected reset error on
	// every Nth frame (0 disables). The transport's reconnect path picks it
	// up: backoff, redial, resume.
	ResetEvery int
	// Partition black-holes the link one-way: dials fail and writes are
	// silently discarded. The reverse direction is unaffected — model a
	// two-way partition with two rules.
	Partition bool
	// StallEvery simulates a slow reader on every Nth frame (0 disables):
	// the write blocks for StallFor. If the writer set a deadline that
	// expires mid-stall, the write fails with a timeout error, exercising
	// the sender's deadline/reset path.
	StallEvery int
	// StallFor is the stall duration (default 2x the write deadline is a
	// good way to force timeouts).
	StallFor time.Duration
}

func (r FaultRule) matches(from, to types.NodeID) bool {
	return (r.From == "" || r.From == "*" || r.From == string(from)) &&
		(r.To == "" || r.To == "*" || r.To == string(to))
}

// FaultPlan is a deterministic-seeded network fault injector for the TCP
// transport: it wraps dialing and connection writes, applying the matching
// rules' faults with draws from a per-link RNG derived from Seed. Two plans
// with the same Seed and Rules make identical decision sequences for the
// same per-link frame sequence — determinism at the plan level, which is
// what makes fault runs reproducible per seed even though wall-clock
// scheduling varies.
//
// A nil *FaultPlan is a valid no-op injector.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule

	mu    sync.Mutex
	links map[linkKey]*linkState
}

type linkKey struct {
	from, to types.NodeID
}

// linkState carries one directional link's RNG stream and frame counter.
// Draws happen in frame order on the link, so the decision sequence is a
// pure function of (seed, link, frame index).
type linkState struct {
	mu     sync.Mutex
	rng    *rand.Rand
	frames int
	held   []byte // reordered frame awaiting transmission
}

// NewFaultPlan builds a plan over the given rules.
func NewFaultPlan(seed int64, rules ...FaultRule) *FaultPlan {
	return &FaultPlan{Seed: seed, Rules: rules}
}

func (p *FaultPlan) link(from, to types.NodeID) *linkState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.links == nil {
		p.links = make(map[linkKey]*linkState)
	}
	k := linkKey{from, to}
	ls, ok := p.links[k]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(from))
		h.Write([]byte{0})
		h.Write([]byte(to))
		ls = &linkState{rng: rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64())))}
		p.links[k] = ls
	}
	return ls
}

func (p *FaultPlan) rulesFor(from, to types.NodeID) []FaultRule {
	var out []FaultRule
	for _, r := range p.Rules {
		if r.matches(from, to) {
			out = append(out, r)
		}
	}
	return out
}

// Partitioned reports whether the link from→to is black-holed by the plan.
func (p *FaultPlan) Partitioned(from, to types.NodeID) bool {
	if p == nil {
		return false
	}
	for _, r := range p.rulesFor(from, to) {
		if r.Partition {
			return true
		}
	}
	return false
}

// Dial establishes a connection from→to through the plan: partitioned
// links refuse to dial, and the returned connection injects the matching
// rules' per-frame faults on every write.
func (p *FaultPlan) Dial(from, to types.NodeID, addr string, timeout time.Duration) (net.Conn, error) {
	if p == nil {
		return net.DialTimeout("tcp", addr, timeout)
	}
	if p.Partitioned(from, to) {
		return nil, &faultErr{msg: fmt.Sprintf("transport: fault plan partitions %s -> %s", from, to), timeout: true}
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	rules := p.rulesFor(from, to)
	if len(rules) == 0 {
		return conn, nil
	}
	return &faultConn{Conn: conn, rules: rules, state: p.link(from, to)}, nil
}

// faultErr is an injected network error. Timeout() makes partition and
// stall errors look like deadline expiries to callers that check net.Error.
type faultErr struct {
	msg     string
	timeout bool
}

func (e *faultErr) Error() string   { return e.msg }
func (e *faultErr) Timeout() bool   { return e.timeout }
func (e *faultErr) Temporary() bool { return true }

// faultConn wraps an outbound connection, treating each Write as one frame
// and applying the link's fault rules in frame order.
type faultConn struct {
	net.Conn
	rules []FaultRule
	state *linkState

	deadlineMu sync.Mutex
	deadline   time.Time // write deadline, mirrored for injected stalls
}

// decision is the aggregate of all rule draws for one frame.
type decision struct {
	drop    bool
	delay   time.Duration
	reorder bool
	reset   bool
	stall   time.Duration
}

// decide makes the per-frame draws. It is the only consumer of the link's
// RNG, and it draws a fixed number of variates per (rule, frame) so the
// stream stays aligned regardless of which faults fire.
func (ls *linkState) decide(rules []FaultRule) decision {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.frames++
	var d decision
	for _, r := range rules {
		if r.Partition {
			d.drop = true
		}
		if ls.rng.Float64() < r.Drop {
			d.drop = true
		}
		if span := r.DelayMax - r.DelayMin; span > 0 {
			d.delay += r.DelayMin + time.Duration(ls.rng.Int63n(int64(span)))
		} else if r.DelayMin > 0 {
			d.delay += r.DelayMin
		} else {
			ls.rng.Int63() // keep the stream aligned
		}
		if ls.rng.Float64() < r.Reorder {
			d.reorder = true
		}
		if r.ResetEvery > 0 && ls.frames%r.ResetEvery == 0 {
			d.reset = true
		}
		if r.StallEvery > 0 && ls.frames%r.StallEvery == 0 && r.StallFor > d.stall {
			d.stall = r.StallFor
		}
	}
	return d
}

// takeHeld swaps b into the hold slot, returning the previously held frame
// (nil when none).
func (ls *linkState) takeHeld(b []byte) []byte {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	prev := ls.held
	if b != nil {
		ls.held = append([]byte(nil), b...)
	} else {
		ls.held = nil
	}
	return prev
}

// releaseHeld returns and clears the held frame.
func (ls *linkState) releaseHeld() []byte { return ls.takeHeld(nil) }

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.deadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.deadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) writeDeadline() time.Time {
	c.deadlineMu.Lock()
	defer c.deadlineMu.Unlock()
	return c.deadline
}

// sleep blocks for d, honoring the mirrored write deadline: if the deadline
// expires first, it sleeps only until then and reports a timeout.
func (c *faultConn) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if dl := c.writeDeadline(); !dl.IsZero() {
		if remain := time.Until(dl); remain < d {
			if remain > 0 {
				time.Sleep(remain)
			}
			return &faultErr{msg: "transport: injected stall exceeded write deadline", timeout: true}
		}
	}
	time.Sleep(d)
	return nil
}

func (c *faultConn) Write(b []byte) (int, error) {
	d := c.state.decide(c.rules)
	if d.reset {
		c.Conn.Close()
		return 0, &faultErr{msg: "transport: injected connection reset"}
	}
	if err := c.sleep(d.stall); err != nil {
		return 0, err
	}
	if d.drop {
		return len(b), nil // silently lost on the wire
	}
	if err := c.sleep(d.delay); err != nil {
		return 0, err
	}
	if d.reorder {
		// Hold this frame; transmit whatever was held before (normally
		// nothing — two consecutive reorders swap a pair).
		if prev := c.state.takeHeld(b); prev != nil {
			if _, err := c.Conn.Write(prev); err != nil {
				return 0, err
			}
		}
		return len(b), nil
	}
	if _, err := c.Conn.Write(b); err != nil {
		return 0, err
	}
	if prev := c.state.releaseHeld(); prev != nil {
		if _, err := c.Conn.Write(prev); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}
