package transport

// The audit control plane over TCP: queriers retrieve log segments, fresh
// authenticators, and peer-held evidence from live nodes with the same
// framing the data plane uses. Each call is one request/response exchange
// on a per-target connection; the RemoteFetcher below retries transient
// network failures with backoff until a deadline, then surfaces a checked
// error — which the querier records as an unreachable (yellow) node, an
// unattributable lead, never a provable accusation.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// Audit frame kinds (disjoint from the data-plane kinds). The range
// 0x20–0x2F is reserved for the query frontend (internal/queryfront),
// which speaks the same framing on its own listener.
const (
	frameRetrieveReq  byte = 0x10
	frameRetrieveResp byte = 0x11
	frameAuthReq      byte = 0x12
	frameAuthResp     byte = 0x13
	frameAuthsReq     byte = 0x14
	frameAuthsResp    byte = 0x15
)

func isRPCKind(k byte) bool { return k >= frameRetrieveReq && k <= frameNotesResp }

// serveRPC answers one audit request on the connection it arrived on. The
// node lock is held only for the node call itself; encoding and the
// response write happen outside it. A non-nil return closes the connection.
func (c *Cluster) serveRPC(m *member, conn net.Conn, from types.NodeID, kind byte, r *wire.Reader) error {
	reqID := r.Uint()
	if err := r.Err(); err != nil {
		c.decodeErrors.Add(1)
		return err
	}
	w := wire.NewWriter(512)
	w.Raw([]byte{0, 0, 0, 0})
	w.String(string(m.node.ID))
	switch kind {
	case frameRetrieveReq:
		var req core.RetrieveRequest
		r.Value(&req)
		if err := r.Finish(); err != nil {
			c.decodeErrors.Add(1)
			return err
		}
		w.Byte(frameRetrieveResp)
		w.Uint(reqID)
		m.mu.Lock()
		resp, err := m.node.HandleRetrieve(req)
		m.mu.Unlock()
		if err != nil {
			w.Bool(false)
			w.String(err.Error())
		} else {
			w.Bool(true)
			resp.MarshalWire(w)
		}
	case frameAuthReq:
		if err := r.Finish(); err != nil {
			c.decodeErrors.Add(1)
			return err
		}
		w.Byte(frameAuthResp)
		w.Uint(reqID)
		m.mu.Lock()
		auth, err := m.node.LatestAuth()
		m.mu.Unlock()
		if err != nil {
			w.Bool(false)
			w.String(err.Error())
		} else {
			w.Bool(true)
			auth.MarshalWire(w)
		}
	case frameAuthsReq:
		target := types.NodeID(r.String())
		t1 := types.Time(r.Int())
		t2 := types.Time(r.Int())
		if err := r.Finish(); err != nil {
			c.decodeErrors.Add(1)
			return err
		}
		w.Byte(frameAuthsResp)
		w.Uint(reqID)
		m.mu.Lock()
		auths := m.node.AuthsAbout(target, t1, t2)
		m.mu.Unlock()
		w.Bool(true)
		w.Uint(uint64(len(auths)))
		for i := range auths {
			auths[i].MarshalWire(w)
		}
	case frameHealthReq, frameNotesReq:
		if err := c.serveHealthRPC(m, kind, reqID, r, w); err != nil {
			return err
		}
	default:
		c.decodeErrors.Add(1)
		return fmt.Errorf("transport: unknown audit frame kind %d", kind)
	}
	c.rpcServed.Add(1)
	buf, err := finishFrame(w, c.cfg.MaxFrame)
	if err != nil {
		// The answer outgrew the frame bound (a segment larger than
		// MaxFrame): report the error in-band so the querier sees a checked
		// failure instead of a hung read.
		w = wire.NewWriter(128)
		w.Raw([]byte{0, 0, 0, 0})
		w.String(string(m.node.ID))
		w.Byte(kind + 1)
		w.Uint(reqID)
		w.Bool(false)
		w.String(err.Error())
		if buf, err = finishFrame(w, c.cfg.MaxFrame); err != nil {
			return err
		}
	}
	return c.writeFrame(conn, buf)
}

// remoteError is an application-level failure reported by a reachable
// node (audit refused, empty log, evidence beyond head). It is final: the
// node answered, so retrying cannot change the outcome.
type remoteError struct {
	node types.NodeID
	msg  string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("transport: %s: %s", e.node, e.msg)
}

// ErrFetcherClosed is returned by calls made on (or racing with) a closed
// RemoteFetcher. It is final: the caller tore the fetcher down, so
// retrying cannot succeed.
var ErrFetcherClosed = errors.New("transport: fetcher closed")

// minRetryBackoff floors the retry backoff. Without it a zero/unset
// RetryBase (a Cluster whose config was zeroed rather than built via
// NewClusterWith) turns the retry loop into a hot spin: jitter(0) is 0
// and backoff *= 2 keeps it at 0, so the loop hammers dial until the
// deadline.
const minRetryBackoff = 2 * time.Millisecond

// RemoteFetcher implements core.Fetcher over the wire: every audit call
// dials (or reuses) a connection to the target node and performs one
// request/response exchange under a per-attempt timeout, retrying with
// jittered exponential backoff until RetryDeadline. Unreachable or
// stalling peers therefore cost bounded time and surface as checked
// errors; the query layer records them as yellow vertices and the verdict
// layer as unattributable leads (§4.2's "unavailable" tier).
//
// A RemoteFetcher is safe for concurrent use (the querier's audit worker
// pool fans calls out); calls to the same target serialize on that
// target's connection.
type RemoteFetcher struct {
	// CallTimeout bounds each dial+write+read attempt (default 3s).
	CallTimeout time.Duration
	// RetryDeadline bounds the total time spent on one logical call,
	// retries included (default 10s). Application-level refusals are
	// final and are not retried.
	RetryDeadline time.Duration

	c  *Cluster
	id types.NodeID

	mu     sync.Mutex
	conns  map[types.NodeID]*rconn
	rng    *rand.Rand
	reqID  uint64
	closed bool
}

// rconn serializes the request/response exchanges against one target. mu
// orders whole exchanges; connMu guards just the conn pointer, which
// Close mutates from outside the exchange lock.
type rconn struct {
	mu     sync.Mutex
	connMu sync.Mutex
	conn   net.Conn
}

func (rc *rconn) get() net.Conn {
	rc.connMu.Lock()
	defer rc.connMu.Unlock()
	return rc.conn
}

// closeConn closes and clears the conn if present. Both Close and a
// failing attempt funnel through here, so a conn is closed exactly once.
func (rc *rconn) closeConn() {
	rc.connMu.Lock()
	if rc.conn != nil {
		rc.conn.Close()
		rc.conn = nil
	}
	rc.connMu.Unlock()
}

// NewFetcher builds a remote fetcher that audits this cluster's peers over
// TCP. id names the querier on the wire and to the fault plan, so plans
// can partition audit traffic (rules matching From: id) independently of
// the data plane.
func (c *Cluster) NewFetcher(id types.NodeID) *RemoteFetcher {
	h := fnv.New64a()
	h.Write([]byte(id))
	return &RemoteFetcher{
		CallTimeout:   3 * time.Second,
		RetryDeadline: 10 * time.Second,
		c:             c,
		id:            id,
		conns:         make(map[types.NodeID]*rconn),
		rng:           rand.New(rand.NewSource(c.cfg.Seed ^ int64(h.Sum64()))),
	}
}

// Close fails in-flight calls and drops the fetcher's connections. The
// pinned semantics: an in-flight exchange fails with a read/write error
// and is not retried (the retry loop then sees ErrFetcherClosed), later
// calls fail fast with ErrFetcherClosed, no connection is closed twice,
// and no connection leaks (an attempt whose dial races Close tears its
// own conn down). Close is idempotent and safe against concurrent calls.
func (f *RemoteFetcher) Close() {
	f.mu.Lock()
	f.closed = true
	conns := make([]*rconn, 0, len(f.conns))
	for _, rc := range f.conns {
		conns = append(conns, rc)
	}
	f.mu.Unlock()
	for _, rc := range conns {
		rc.closeConn()
	}
}

func (f *RemoteFetcher) rconnFor(node types.NodeID) (*rconn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrFetcherClosed
	}
	rc, ok := f.conns[node]
	if !ok {
		rc = &rconn{}
		f.conns[node] = rc
	}
	return rc, nil
}

func (f *RemoteFetcher) nextReqID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reqID++
	return f.reqID
}

func (f *RemoteFetcher) jitter(backoff time.Duration) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return backoff/2 + time.Duration(f.rng.Int63n(int64(backoff/2)+1))
}

// call performs one logical audit call with retry-until-deadline.
func (f *RemoteFetcher) call(node types.NodeID, reqKind, respKind byte,
	body func(w *wire.Writer), parse func(r *wire.Reader) error) error {
	deadline := time.Now().Add(f.RetryDeadline)
	backoff := f.c.cfg.RetryBase
	if backoff < minRetryBackoff {
		backoff = minRetryBackoff
	}
	retryMax := f.c.cfg.RetryMax
	if retryMax <= 0 {
		// An unset cap must not pin the backoff at its floor; grow toward
		// the stock cap so a dead peer costs O(log) attempts, not O(n).
		retryMax = DefaultConfig().RetryMax
	}
	if retryMax < backoff {
		retryMax = backoff
	}
	var lastErr error
	for {
		err := f.attempt(node, reqKind, respKind, body, parse)
		if err == nil {
			return nil
		}
		if _, final := err.(*remoteError); final || errors.Is(err, ErrFetcherClosed) {
			return err
		}
		lastErr = err
		wait := f.jitter(backoff)
		if backoff *= 2; backoff > retryMax {
			backoff = retryMax
		}
		if time.Now().Add(wait).After(deadline) {
			return fmt.Errorf("transport: %s unreachable within retry deadline: %w", node, lastErr)
		}
		time.Sleep(wait)
	}
}

// attempt performs one request/response exchange under CallTimeout.
func (f *RemoteFetcher) attempt(node types.NodeID, reqKind, respKind byte,
	body func(w *wire.Writer), parse func(r *wire.Reader) error) error {
	rc, err := f.rconnFor(node)
	if err != nil {
		return err
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	conn := rc.get()
	if conn == nil {
		f.c.mu.Lock()
		addr, ok := f.c.addrs[node]
		f.c.mu.Unlock()
		if !ok {
			return &remoteError{node: node, msg: "unknown peer"}
		}
		conn, err = f.c.cfg.Fault.Dial(f.id, node, addr, f.c.cfg.DialTimeout)
		if err != nil {
			return err
		}
		// Publish under f.mu so the dial cannot slip past a concurrent
		// Close: Close sets closed before snapshotting the rconns, so
		// either we observe closed here and tear the fresh conn down
		// ourselves, or Close observes the conn and closes it.
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return ErrFetcherClosed
		}
		rc.connMu.Lock()
		rc.conn = conn
		rc.connMu.Unlock()
		f.mu.Unlock()
	}
	reqID := f.nextReqID()
	w := wire.NewWriter(256)
	w.Raw([]byte{0, 0, 0, 0})
	w.String(string(f.id))
	w.Byte(reqKind)
	w.Uint(reqID)
	if body != nil {
		body(w)
	}
	buf, err := finishFrame(w, f.c.cfg.MaxFrame)
	if err != nil {
		return &remoteError{node: node, msg: err.Error()}
	}
	fail := func(err error) error {
		rc.closeConn()
		return err
	}
	conn.SetDeadline(time.Now().Add(f.CallTimeout))
	if _, err := conn.Write(buf); err != nil {
		return fail(err)
	}
	for {
		payload, err := readFrame(conn, f.c.cfg.MaxFrame)
		if err != nil {
			return fail(err)
		}
		_, kind, r, err := beginFrame(payload)
		if err != nil {
			return fail(err)
		}
		if kind != respKind {
			return fail(fmt.Errorf("transport: unexpected response kind %d from %s", kind, node))
		}
		if r.Uint() != reqID {
			continue // stale answer from an abandoned attempt on this conn
		}
		if !r.Bool() {
			msg := r.String()
			if err := r.Err(); err != nil {
				return fail(err)
			}
			return &remoteError{node: node, msg: msg}
		}
		if err := parse(r); err != nil {
			return fail(err)
		}
		return nil
	}
}

// Retrieve implements core.Fetcher.
func (f *RemoteFetcher) Retrieve(node types.NodeID, req core.RetrieveRequest) (*core.RetrieveResponse, error) {
	resp := new(core.RetrieveResponse)
	err := f.call(node, frameRetrieveReq, frameRetrieveResp,
		func(w *wire.Writer) { req.MarshalWire(w) },
		func(r *wire.Reader) error {
			r.Value(resp)
			return r.Finish()
		})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// LatestAuth implements core.Fetcher.
func (f *RemoteFetcher) LatestAuth(node types.NodeID) (seclog.Authenticator, error) {
	var auth seclog.Authenticator
	err := f.call(node, frameAuthReq, frameAuthResp, nil,
		func(r *wire.Reader) error {
			r.Value(&auth)
			return r.Finish()
		})
	return auth, err
}

// AuthsAbout implements core.Fetcher. Unreachable observers contribute no
// evidence (the Fetcher interface carries no error here): the consistency
// check simply sees fewer vouching peers, which can only weaken detection,
// never accuse.
func (f *RemoteFetcher) AuthsAbout(observer, target types.NodeID, t1, t2 types.Time) []seclog.Authenticator {
	var out []seclog.Authenticator
	err := f.call(observer, frameAuthsReq, frameAuthsResp,
		func(w *wire.Writer) {
			w.String(string(target))
			w.Int(int64(t1))
			w.Int(int64(t2))
		},
		func(r *wire.Reader) error {
			n := r.Count() // adversary-controlled; bounded against input size
			if err := r.Err(); err != nil {
				return err
			}
			out = make([]seclog.Authenticator, n)
			for i := range out {
				if err := out[i].UnmarshalWire(r); err != nil {
					return err
				}
			}
			return r.Finish()
		})
	if err != nil {
		return nil
	}
	return out
}

// Nodes implements core.Fetcher: the full registered membership (local and
// remote), sorted. This is the set AuditAll sweeps.
func (f *RemoteFetcher) Nodes() []types.NodeID {
	f.c.mu.Lock()
	defer f.c.mu.Unlock()
	out := make([]types.NodeID, 0, len(f.c.addrs))
	for id := range f.c.addrs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
