package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/dlog"
	"repro/internal/types"
)

// serveTestNodes builds and serves n mincost nodes (ids a, b, c, ...) on the
// cluster, store-backed when dir is non-empty.
func serveTestNodes(t *testing.T, cluster *Cluster, n int, dir string) ([]types.NodeID, *core.Maintainer) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Tprop = 5 * types.Second
	cfg.DeltaClock = types.Second
	cfg.CheckpointEvery = 0
	cfg.LogDir = dir
	d := core.NewDirectory()
	maint := core.NewMaintainer()
	prog := mincost.Program()
	var ids []types.NodeID
	for i := 0; i < n; i++ {
		id := types.NodeID(string(rune('a' + i)))
		ids = append(ids, id)
		key, err := cryptoutil.PooledKey(cfg.Suite, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		d.Register(id, key.Public())
	}
	for i, id := range ids {
		key, _ := cryptoutil.PooledKey(cfg.Suite, int64(100+i))
		node, err := core.NewNode(id, cfg, key, d, maint, WallClock{}, cluster,
			dlog.NewMachine(prog, id))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cluster.Serve(node, "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	return ids, maint
}

// TestHealthRPC covers the supervisor's probe path end to end: log head and
// synced-head reporting, chain-hash probes at a chosen position, the
// convergence probe, and cross-process maintainer-note export.
func TestHealthRPC(t *testing.T) {
	cluster := NewCluster()
	defer cluster.Close()
	ids, maint := serveTestNodes(t, cluster, 2, t.TempDir())
	a := ids[0]
	cluster.SetMaintainer(maint)
	cluster.SetProbe(a, func(n *core.Node) bool { return n.Log.Len() >= 2 })

	if err := cluster.With(a, func(n *core.Node) {
		n.InsertBase(mincost.Link(a, ids[1], 3))
		n.InsertBase(mincost.Link(a, ids[1], 4))
		if err := n.Log.Sync(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var wantHead uint64
	var wantHash, wantAt1 []byte
	_ = cluster.With(a, func(n *core.Node) {
		wantHead = n.Log.Len()
		wantHash = n.Log.HeadHash()
		wantAt1, _ = n.Log.Hash(1)
	})

	f := cluster.NewFetcher("probe")
	defer f.Close()
	h, err := f.Health(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Node != a || h.HeadSeq != wantHead || !bytes.Equal(h.HeadHash, wantHash) {
		t.Errorf("health head = (%s, %d, %x), want (%s, %d, %x)", h.Node, h.HeadSeq, h.HeadHash, a, wantHead, wantHash)
	}
	if h.SyncedSeq != wantHead || !bytes.Equal(h.SyncedHash, wantHash) {
		t.Errorf("health synced = (%d, %x), want the synced head (%d, %x)", h.SyncedSeq, h.SyncedHash, wantHead, wantHash)
	}
	if h.ProbeSeq != 1 || !bytes.Equal(h.ProbeHash, wantAt1) {
		t.Errorf("probe hash at 1 = %x, want %x", h.ProbeHash, wantAt1)
	}
	if !h.Converged {
		t.Error("convergence probe not reported")
	}
	if h.Fault != "" {
		t.Errorf("unexpected fault: %s", h.Fault)
	}
	if h.TornBytes != 0 {
		t.Errorf("TornBytes = %d on a fresh store", h.TornBytes)
	}
	// An out-of-range probe position yields an empty hash, not an error.
	h2, err := f.Health(a, 999)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.ProbeHash) != 0 {
		t.Error("out-of-range probe returned a hash")
	}

	// Notes: the §5.4 missing-ack export.
	id := types.MessageID{Src: a, Dst: ids[1], Seq: 7}
	maint.NotifyMissingAck(a, id)
	notes, err := f.Notes(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].Reporter != a || notes[0].ID != id {
		t.Errorf("notes = %v, want one note (%s, %v)", notes, a, id)
	}

	// Health against an address nobody serves fails with a checked error.
	cluster.AddPeer("ghost", "127.0.0.1:1")
	f.RetryDeadline = 200 * time.Millisecond
	f.CallTimeout = 100 * time.Millisecond
	if _, err := f.Health("ghost", 0); err == nil {
		t.Error("health of an unreachable node succeeded")
	}
	if !cluster.Drain(time.Second) {
		t.Error("idle cluster failed to drain")
	}
}
