package queryfront

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// fuzzFrame assembles a query frame the way the client does.
func fuzzFrame(from string, kind byte, body func(*wire.Writer)) []byte {
	w := wire.NewWriter(256)
	w.Raw([]byte{0, 0, 0, 0})
	w.String(from)
	w.Byte(kind)
	w.Uint(1) // reqID
	if body != nil {
		body(w)
	}
	buf, err := transport.FinishFrame(w, transport.DefaultMaxFrame)
	if err != nil {
		panic(err)
	}
	return buf[4:] // decodeRequest takes the payload, past the length prefix
}

// FuzzQueryFrameDecode feeds arbitrary bytes to the query-frame decoder
// and the response-body decoders. Every byte is adversary-controlled (any
// client can connect to the frontend, and a hostile frontend can answer a
// client): decoding must return checked errors — never panic, and never
// let a hostile count drive an allocation unbounded by the input size.
func FuzzQueryFrameDecode(f *testing.F) {
	explain := ExplainRequest{
		Node:  "as10",
		Tuple: types.MakeTuple("route", types.N("as10"), types.N("as51"), types.I(2)),
		Mode:  1, Direction: 1, At: 5, Scope: 8, SkipConsistency: true, StartHint: 3,
	}
	f.Add(fuzzFrame("c", FrameExplainReq, explain.MarshalWire))
	audit := AuditRequest{Targets: []types.NodeID{"as10", "as20", "as30"}}
	f.Add(fuzzFrame("c", FrameAuditReq, audit.MarshalWire))
	f.Add(fuzzFrame("c", FrameStatsReq, nil))

	// Response bodies, so mutations explore the client-side decoders too.
	res := ExplainResult{
		Rendered: "tree", Vertices: 3,
		Faulty:      []types.NodeID{"as30"},
		Unreachable: []Lead{{Node: "as20", Err: "partitioned"}},
		Elapsed:     time.Millisecond,
	}
	f.Add(fuzzFrame("front", FrameExplainResp, res.MarshalWire))
	ares := AuditResult{
		Failures:    []FailureInfo{{Node: "as30", Seq: 7, Reason: "replay mismatch"}},
		RedHosts:    []types.NodeID{"as30"},
		Unreachable: []Lead{{Node: "as20", Err: "partitioned"}},
		Notes:       []NoteInfo{{Reporter: "as10", Src: "as10", Dst: "as20", Seq: 4}},
		Elapsed:     time.Second,
	}
	f.Add(fuzzFrame("front", FrameAuditResp, ares.MarshalWire))
	stats := FrontStats{Sessions: 4, QueueCap: 16, Served: 9, Shed: 2,
		Kinds: []KindStats{{Kind: "audit", Count: 9, P50: time.Millisecond, P99: time.Second}}}
	f.Add(fuzzFrame("front", FrameStatsResp, stats.MarshalWire))

	// Hostile counts: an audit request claiming 2^32 targets in 16 bytes,
	// and truncated bodies.
	hostile := wire.NewWriter(64)
	hostile.Raw([]byte{0, 0, 0, 0})
	hostile.String("c")
	hostile.Byte(FrameAuditReq)
	hostile.Uint(1)
	hostile.Uint(1 << 32)
	hb, err := transport.FinishFrame(hostile, transport.DefaultMaxFrame)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hb[4:])
	f.Add(fuzzFrame("c", FrameExplainReq, nil)) // truncated: no body at all

	f.Fuzz(func(t *testing.T, payload []byte) {
		// The server path: request decoding. Errors are checked rejections.
		if req, err := decodeRequest(payload); err == nil && req != nil {
			// Whatever decodes must re-encode (the bench and CLI round-trip
			// requests through the client encoder).
			switch {
			case req.explain != nil:
				w := wire.NewWriter(64)
				req.explain.MarshalWire(w)
			case req.audit != nil:
				if len(req.audit.Targets) > maxTargets {
					t.Fatalf("decoded %d targets past the bound", len(req.audit.Targets))
				}
			}
		}
		// The client path: response-body decoding from the same bytes.
		_, _, r, err := transport.BeginFrame(payload)
		if err != nil {
			return
		}
		r.Uint() // reqID
		if !r.Bool() {
			_ = r.String()
			return
		}
		rest := r.Raw(r.Remaining())
		if r.Err() != nil {
			return
		}
		var er ExplainResult
		_ = er.UnmarshalWire(wire.NewReader(rest))
		var ar AuditResult
		_ = ar.UnmarshalWire(wire.NewReader(rest))
		var fs FrontStats
		_ = fs.UnmarshalWire(wire.NewReader(rest))
	})
}
