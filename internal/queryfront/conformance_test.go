package queryfront_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/livetcp"
	"repro/internal/queryfront"
	"repro/internal/transport"
	"repro/internal/types"
)

// frontCase is one conformance deployment: an app with tamper-log armed
// on its compromised node and a one-way partition cutting an honest
// victim off (data plane and audit traffic alike).
type frontCase struct {
	mkApp  func() livetcp.App
	victim types.NodeID
	seed   int64
}

// TestFrontConformance re-proves the §4.2 guarantee through the query
// frontend: concurrent remote clients audit a live deployment with an
// armed tamperer and a partitioned honest node, and every verdict that
// comes back over the wire must expose the tamperer with provable
// evidence, never accuse an honest node, and park the partitioned victim
// in the unreachable-leads tier.
func TestFrontConformance(t *testing.T) {
	cases := []frontCase{
		{mkApp: livetcp.MinCostApp, victim: "d", seed: 1},
		{mkApp: livetcp.QuaggaApp, victim: "as20", seed: 1},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, fc := range cases {
		app := fc.mkApp()
		t.Run(fmt.Sprintf("%s/seed=%d", app.Name, fc.seed), func(t *testing.T) {
			runFrontCase(t, fc)
		})
	}
}

func runFrontCase(t *testing.T, fc frontCase) {
	app := fc.mkApp()
	profile, ok := adversary.ProfileByName("tamper-log")
	if !ok {
		t.Fatal("tamper-log profile missing from catalog")
	}
	plan := adversary.Plan{}
	for _, id := range app.Compromised {
		plan[id] = []adversary.Behavior{profile.New()}
	}
	h, err := livetcp.New(app, livetcp.Options{
		Seed:   fc.seed,
		Fault:  transport.NewFaultPlan(fc.seed, transport.FaultRule{From: "*", To: string(fc.victim), Partition: true}),
		OnNode: plan.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Convergence is best-effort under the partition; it must never
	// corrupt the verdict.
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Logf("note: %v (acceptable under a partition)", err)
	}
	h.Settle()

	// The frontend shares the deployment's cluster and a persistent audit
	// cache across all its sessions.
	cache, err := core.OpenAuditCache(filepath.Join(t.TempDir(), "qfcache"), h.Cfg.Suite)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	base := h.Cfg
	base.AuditCache = cache
	srv, err := queryfront.Serve(queryfront.Config{
		Cluster: h.Cluster, Base: base, Dir: h.Dir,
		Factory: app.Factory, ConfigureQuerier: app.ConfigureQuerier,
		Sessions: 3, QueueLen: 12,
		QueryTimeout: 20 * time.Second,
		CallTimeout:  400 * time.Millisecond, RetryDeadline: 900 * time.Millisecond,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	bad := map[types.NodeID]bool{}
	for _, id := range app.Compromised {
		bad[id] = true
	}

	const clients, perClient = 3, 2
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		verdicts []*queryfront.AuditResult
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := queryfront.Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				v, err := cl.Audit()
				if err != nil {
					t.Errorf("remote audit: %v", err)
					return
				}
				mu.Lock()
				verdicts = append(verdicts, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(verdicts) != clients*perClient {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), clients*perClient)
	}
	for i, v := range verdicts {
		// Accuracy, unconditionally: provable evidence only ever names the
		// compromised set — through the frontend exactly as in-process.
		exposed := false
		for _, id := range v.StrongNodes() {
			if !bad[id] {
				t.Errorf("verdict %d: provable evidence implicates honest node %s\nfailures: %v\nred: %v",
					i, id, v.Failures, v.RedHosts)
			} else {
				exposed = true
			}
		}
		// Completeness: tamper-log is Provable — the armed node must be
		// exposed by hard evidence in every verdict.
		if !exposed {
			t.Errorf("verdict %d: tamper-log on %v yielded no provable evidence: %+v", i, app.Compromised, v)
		}
		// Degradation: the partitioned honest node is a lead, not a suspect.
		leadsHaveVictim := false
		for _, l := range v.Unreachable {
			if l.Node == fc.victim {
				leadsHaveVictim = true
			}
		}
		if !leadsHaveVictim {
			t.Errorf("verdict %d: partitioned node %s missing from the unreachable leads: %+v", i, fc.victim, v)
		}
	}

	stats := srv.Stats()
	t.Logf("front stats: %v", stats)
	if stats.Served != clients*perClient {
		t.Errorf("stats.Served = %d, want %d", stats.Served, clients*perClient)
	}
	if stats.CacheHits == 0 {
		t.Error("six audits over a shared persistent cache recorded no hits")
	}

	// One Explain macroquery over the wire: the converged route on a
	// reachable honest node renders a tree without provable evidence
	// against honest nodes.
	if app.Name == "mincost" {
		cl, err := queryfront.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		res, err := cl.Explain(queryfront.ExplainRequest{
			Node:  "c",
			Tuple: mincost.BestCost("c", "d", 5),
			Scope: 8,
		})
		if err != nil {
			// The tuple may not exist if the partition kept mincost from
			// converging; that is a checked answer, not a failure.
			if !errors.Is(err, queryfront.ErrOverloaded) {
				t.Logf("note: explain: %v", err)
			}
			return
		}
		if res.Rendered == "" || res.Vertices == 0 {
			t.Errorf("explain returned an empty tree: %+v", res)
		}
		for _, id := range res.Faulty {
			if !bad[id] {
				t.Errorf("explain names honest node %s as faulty", id)
			}
		}
		t.Logf("explain: %d vertices, faulty=%v, unreachable=%v", res.Vertices, res.Faulty, res.Unreachable)
	}
}
