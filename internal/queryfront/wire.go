// Query-frontend wire protocol: the frame kinds and request/response
// bodies carried over the transport's framing (length prefix, sender ID,
// kind byte, body). Kinds 0x20–0x2F are reserved for this protocol; the
// node RPC range stops at 0x19. Every decoder treats its input as hostile:
// counts are bounded against the remaining input via wire.Reader.Count,
// and malformed frames surface as checked errors, never panics.
package queryfront

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/wire"
)

// Query frame kinds (responses are request+1, like the node RPCs).
const (
	FrameExplainReq  byte = 0x20
	FrameExplainResp byte = 0x21
	FrameAuditReq    byte = 0x22
	FrameAuditResp   byte = 0x23
	FrameStatsReq    byte = 0x24
	FrameStatsResp   byte = 0x25
)

// maxTargets bounds how many audit targets one request may name; anything
// larger than a plausible deployment is rejected before any work.
const maxTargets = 1 << 16

// ExplainRequest is one provenance macroquery: explain tuple on node
// under the given query options (§5.1's modes, direction, and scope).
type ExplainRequest struct {
	Node            types.NodeID
	Tuple           types.Tuple
	Mode            core.QueryMode
	Direction       core.Direction
	At              types.Time
	Scope           int
	SkipConsistency bool
	StartHint       types.Time
}

// MarshalWire implements wire.Marshaler.
func (q ExplainRequest) MarshalWire(w *wire.Writer) {
	w.String(string(q.Node))
	q.Tuple.MarshalWire(w)
	w.Byte(byte(q.Mode))
	w.Byte(byte(q.Direction))
	w.Int(int64(q.At))
	w.Uint(uint64(q.Scope))
	w.Bool(q.SkipConsistency)
	w.Int(int64(q.StartHint))
}

// UnmarshalWire implements wire.Unmarshaler.
func (q *ExplainRequest) UnmarshalWire(r *wire.Reader) error {
	q.Node = types.NodeID(r.String())
	if err := q.Tuple.UnmarshalWire(r); err != nil {
		return err
	}
	q.Mode = core.QueryMode(r.Byte())
	q.Direction = core.Direction(r.Byte())
	q.At = types.Time(r.Int())
	q.Scope = int(r.Uint())
	q.SkipConsistency = r.Bool()
	q.StartHint = types.Time(r.Int())
	if err := r.Err(); err != nil {
		return err
	}
	if q.Mode > core.ModeDisappear {
		return fmt.Errorf("queryfront: unknown query mode %d", q.Mode)
	}
	if q.Direction > core.Effects {
		return fmt.Errorf("queryfront: unknown direction %d", q.Direction)
	}
	if q.Scope < 0 || q.Scope > maxTargets {
		return fmt.Errorf("queryfront: implausible scope %d", q.Scope)
	}
	return nil
}

// Opts converts the wire form back into core query options.
func (q ExplainRequest) Opts() core.QueryOpts {
	return core.QueryOpts{
		Mode: q.Mode, Direction: q.Direction, At: q.At, Scope: q.Scope,
		SkipConsistency: q.SkipConsistency, StartHint: q.StartHint,
	}
}

// AuditRequest asks the frontend to audit the named targets (all
// registered nodes when empty) and return the verdict tiers.
type AuditRequest struct {
	Targets []types.NodeID
}

// MarshalWire implements wire.Marshaler.
func (q AuditRequest) MarshalWire(w *wire.Writer) {
	w.Uint(uint64(len(q.Targets)))
	for _, id := range q.Targets {
		w.String(string(id))
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (q *AuditRequest) UnmarshalWire(r *wire.Reader) error {
	n := r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	if n > maxTargets {
		return fmt.Errorf("queryfront: %d audit targets exceeds the bound", n)
	}
	q.Targets = make([]types.NodeID, n)
	for i := range q.Targets {
		q.Targets[i] = types.NodeID(r.String())
	}
	return r.Err()
}

// Lead is one unreachable node with the error that made it a yellow,
// unattributable lead (§4.2's "unavailable" tier — never an accusation).
type Lead struct {
	Node types.NodeID
	Err  string
}

// ExplainResult is the answer to an ExplainRequest: the rendered
// explanation tree, the provably faulty nodes it implicates, and the
// unreachable-leads set the query accumulated.
type ExplainResult struct {
	// Rendered is the formatted explanation tree (Explanation.Format).
	Rendered string
	// Vertices counts the answer's explanation vertices.
	Vertices int
	// Faulty are nodes hosting red vertices in the answer — provable
	// evidence, guaranteed to implicate only compromised nodes.
	Faulty []types.NodeID
	// Unreachable are the §4.2 unattributable leads, sorted by node.
	Unreachable []Lead
	// Elapsed is the server-side service time, admission queue included.
	Elapsed time.Duration
}

// MarshalWire implements wire.Marshaler.
func (q ExplainResult) MarshalWire(w *wire.Writer) {
	w.String(q.Rendered)
	w.Uint(uint64(q.Vertices))
	w.Uint(uint64(len(q.Faulty)))
	for _, id := range q.Faulty {
		w.String(string(id))
	}
	w.Uint(uint64(len(q.Unreachable)))
	for _, l := range q.Unreachable {
		w.String(string(l.Node))
		w.String(l.Err)
	}
	w.Int(int64(q.Elapsed))
}

// UnmarshalWire implements wire.Unmarshaler.
func (q *ExplainResult) UnmarshalWire(r *wire.Reader) error {
	q.Rendered = r.String()
	q.Vertices = int(r.Uint())
	n := r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	q.Faulty = make([]types.NodeID, n)
	for i := range q.Faulty {
		q.Faulty[i] = types.NodeID(r.String())
	}
	n = r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	q.Unreachable = make([]Lead, n)
	for i := range q.Unreachable {
		q.Unreachable[i].Node = types.NodeID(r.String())
		q.Unreachable[i].Err = r.String()
	}
	q.Elapsed = time.Duration(r.Int())
	return r.Err()
}

// FailureInfo is one provable audit finding (core.Failure in wire form).
type FailureInfo struct {
	Node   types.NodeID
	Seq    uint64
	Reason string
}

// NoteInfo is one §5.4 missing-ack report (core.MissingAckNote in wire
// form): Reporter observed that its send Src→Dst at Seq was never acked.
type NoteInfo struct {
	Reporter types.NodeID
	Src      types.NodeID
	Dst      types.NodeID
	Seq      uint64
}

// AuditResult is the answer to an AuditRequest, separated into the
// paper's evidence tiers.
type AuditResult struct {
	// Failures and RedHosts are the provable tier (§5.5).
	Failures []FailureInfo
	RedHosts []types.NodeID
	// Unreachable are the unattributable leads, sorted by node.
	Unreachable []Lead
	// Notes are the merged §5.4 missing-ack reports.
	Notes []NoteInfo
	// Elapsed is the server-side service time, admission queue included.
	Elapsed time.Duration
}

// StrongNodes returns the nodes implicated by provable evidence, sorted.
func (q *AuditResult) StrongNodes() []types.NodeID {
	seen := map[types.NodeID]bool{}
	for _, f := range q.Failures {
		seen[f.Node] = true
	}
	for _, h := range q.RedHosts {
		seen[h] = true
	}
	out := make([]types.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sortNodes(out)
	return out
}

// UnreachableNodes returns just the lead node IDs, sorted.
func (q *AuditResult) UnreachableNodes() []types.NodeID {
	out := make([]types.NodeID, 0, len(q.Unreachable))
	for _, l := range q.Unreachable {
		out = append(out, l.Node)
	}
	sortNodes(out)
	return out
}

// MarshalWire implements wire.Marshaler.
func (q AuditResult) MarshalWire(w *wire.Writer) {
	w.Uint(uint64(len(q.Failures)))
	for _, f := range q.Failures {
		w.String(string(f.Node))
		w.Uint(f.Seq)
		w.String(f.Reason)
	}
	w.Uint(uint64(len(q.RedHosts)))
	for _, id := range q.RedHosts {
		w.String(string(id))
	}
	w.Uint(uint64(len(q.Unreachable)))
	for _, l := range q.Unreachable {
		w.String(string(l.Node))
		w.String(l.Err)
	}
	w.Uint(uint64(len(q.Notes)))
	for _, n := range q.Notes {
		w.String(string(n.Reporter))
		w.String(string(n.Src))
		w.String(string(n.Dst))
		w.Uint(n.Seq)
	}
	w.Int(int64(q.Elapsed))
}

// UnmarshalWire implements wire.Unmarshaler.
func (q *AuditResult) UnmarshalWire(r *wire.Reader) error {
	n := r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	q.Failures = make([]FailureInfo, n)
	for i := range q.Failures {
		q.Failures[i].Node = types.NodeID(r.String())
		q.Failures[i].Seq = r.Uint()
		q.Failures[i].Reason = r.String()
	}
	n = r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	q.RedHosts = make([]types.NodeID, n)
	for i := range q.RedHosts {
		q.RedHosts[i] = types.NodeID(r.String())
	}
	n = r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	q.Unreachable = make([]Lead, n)
	for i := range q.Unreachable {
		q.Unreachable[i].Node = types.NodeID(r.String())
		q.Unreachable[i].Err = r.String()
	}
	n = r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	q.Notes = make([]NoteInfo, n)
	for i := range q.Notes {
		q.Notes[i].Reporter = types.NodeID(r.String())
		q.Notes[i].Src = types.NodeID(r.String())
		q.Notes[i].Dst = types.NodeID(r.String())
		q.Notes[i].Seq = r.Uint()
	}
	q.Elapsed = time.Duration(r.Int())
	return r.Err()
}

// KindStats is the latency digest for one query kind ("explain" or
// "audit"): how many were served and the nearest-rank p50/p99 over the
// most recent samples.
type KindStats struct {
	Kind  string
	Count uint64
	P50   time.Duration
	P99   time.Duration
}

// FrontStats is the frontend's counter snapshot: pool shape, admission
// outcomes (mirroring the transport's drop-and-count semantics), audit
// cache effectiveness, and per-kind latency digests.
type FrontStats struct {
	Sessions int
	QueueCap int
	// Served counts queries answered (including ones whose audit found
	// evidence — that is an answer, not a failure). Shed counts queries
	// rejected at admission because the queue was full; Expired counts
	// queries whose deadline passed while queued (dropped unexecuted);
	// Failed counts queries that ran but errored.
	Served  uint64
	Shed    uint64
	Expired uint64
	Failed  uint64
	// CacheHits/CacheMisses are the shared audit cache's counter deltas
	// since the frontend started (0/0 when it runs without a cache).
	CacheHits   uint64
	CacheMisses uint64
	// Kinds holds per-query-kind latency digests, sorted by kind.
	Kinds []KindStats
}

// HitRatio returns the audit-cache hit ratio in [0, 1] (0 when the cache
// was never consulted).
func (s FrontStats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (s FrontStats) String() string {
	out := fmt.Sprintf("sessions=%d queue=%d served=%d shed=%d expired=%d failed=%d cache=%.0f%% (%d/%d)",
		s.Sessions, s.QueueCap, s.Served, s.Shed, s.Expired, s.Failed,
		100*s.HitRatio(), s.CacheHits, s.CacheHits+s.CacheMisses)
	for _, k := range s.Kinds {
		out += fmt.Sprintf(" %s{n=%d p50=%v p99=%v}", k.Kind, k.Count,
			k.P50.Round(10*time.Microsecond), k.P99.Round(10*time.Microsecond))
	}
	return out
}

// MarshalWire implements wire.Marshaler.
func (s FrontStats) MarshalWire(w *wire.Writer) {
	w.Uint(uint64(s.Sessions))
	w.Uint(uint64(s.QueueCap))
	w.Uint(s.Served)
	w.Uint(s.Shed)
	w.Uint(s.Expired)
	w.Uint(s.Failed)
	w.Uint(s.CacheHits)
	w.Uint(s.CacheMisses)
	w.Uint(uint64(len(s.Kinds)))
	for _, k := range s.Kinds {
		w.String(k.Kind)
		w.Uint(k.Count)
		w.Int(int64(k.P50))
		w.Int(int64(k.P99))
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (s *FrontStats) UnmarshalWire(r *wire.Reader) error {
	s.Sessions = int(r.Uint())
	s.QueueCap = int(r.Uint())
	s.Served = r.Uint()
	s.Shed = r.Uint()
	s.Expired = r.Uint()
	s.Failed = r.Uint()
	s.CacheHits = r.Uint()
	s.CacheMisses = r.Uint()
	n := r.Count() // adversary-controlled; bounded against input size
	if err := r.Err(); err != nil {
		return err
	}
	s.Kinds = make([]KindStats, n)
	for i := range s.Kinds {
		s.Kinds[i].Kind = r.String()
		s.Kinds[i].Count = r.Uint()
		s.Kinds[i].P50 = time.Duration(r.Int())
		s.Kinds[i].P99 = time.Duration(r.Int())
	}
	return r.Err()
}

func sortNodes(ids []types.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
