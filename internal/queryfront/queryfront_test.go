package queryfront_test

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/livetcp"
	"repro/internal/queryfront"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// ghostFront starts a frontend over a cluster whose peers are TCP black
// holes (a closed loopback port): every audit call fails after its retry
// deadline, making query service time long and controllable — exactly
// what the backpressure tests need — while the verdicts must still
// degrade to leads, never accusations.
func ghostFront(t *testing.T, cfg queryfront.Config) (*queryfront.Server, *transport.Cluster) {
	t.Helper()
	cluster := transport.NewCluster()
	t.Cleanup(cluster.Close)
	cluster.AddPeer("ghost-a", "127.0.0.1:1")
	cluster.AddPeer("ghost-b", "127.0.0.1:1")
	cfg.Cluster = cluster
	cfg.Dir = core.NewDirectory()
	cfg.Factory = livetcp.MinCostApp().Factory
	cfg.Base = core.DefaultConfig()
	srv, err := queryfront.Serve(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, cluster
}

// TestShedAndCount pins the admission-queue backpressure contract: with
// one session and a one-slot queue, a burst of concurrent queries gets at
// most two executed and the rest shed immediately with an in-band
// ErrOverloaded — no blocking, no deadline violations — and FrontStats
// accounts for every submitted query.
func TestShedAndCount(t *testing.T) {
	srv, _ := ghostFront(t, queryfront.Config{
		Sessions: 1, QueueLen: 1,
		QueryTimeout: 10 * time.Second,
		CallTimeout:  50 * time.Millisecond, RetryDeadline: 200 * time.Millisecond,
	})

	const burst = 8
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		served  int
		shed    int
		results []*queryfront.AuditResult
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := queryfront.Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			res, err := cl.Audit()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
				results = append(results, res)
			case errors.Is(err, queryfront.ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected audit error: %v", err)
			}
		}()
	}
	wg.Wait()

	if served == 0 {
		t.Error("no query was served")
	}
	if shed == 0 {
		t.Error("an 8-query burst against a 1-session/1-slot frontend shed nothing")
	}
	if served+shed != burst {
		t.Errorf("served %d + shed %d != %d submitted", served, shed, burst)
	}
	// Unreachable peers are leads, never provable evidence — even through
	// the frontend.
	for _, res := range results {
		if len(res.Failures) != 0 || len(res.RedHosts) != 0 {
			t.Errorf("unreachable-only deployment produced provable evidence: %+v", res)
		}
		if got := res.UnreachableNodes(); !reflect.DeepEqual(got, []types.NodeID{"ghost-a", "ghost-b"}) {
			t.Errorf("leads = %v, want both ghosts", got)
		}
	}

	stats := srv.Stats()
	t.Logf("stats: %v", stats)
	if stats.Served != uint64(served) || stats.Shed != uint64(shed) {
		t.Errorf("stats served/shed = %d/%d, client saw %d/%d", stats.Served, stats.Shed, served, shed)
	}
	if stats.Served+stats.Shed+stats.Expired+stats.Failed != burst {
		t.Errorf("stats do not account for all %d queries: %v", burst, stats)
	}
	// The latency digest must cover the served audits with sane
	// nearest-rank percentiles.
	var audit *queryfront.KindStats
	for i := range stats.Kinds {
		if stats.Kinds[i].Kind == "audit" {
			audit = &stats.Kinds[i]
		}
	}
	if audit == nil || audit.Count != uint64(served) {
		t.Fatalf("audit kind stats missing or miscounted: %+v", stats.Kinds)
	}
	if audit.P50 <= 0 || audit.P99 < audit.P50 {
		t.Errorf("implausible percentiles: %+v", audit)
	}

	// The stats RPC must report the same snapshot over the wire.
	cl, err := queryfront.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	remote, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Served != stats.Served || remote.Shed != stats.Shed || len(remote.Kinds) != len(stats.Kinds) {
		t.Errorf("stats over the wire %v != local %v", remote, stats)
	}
}

// TestDeadlineExpiresInQueue pins the deadline side of backpressure: a
// query that outwaits its deadline in the admission queue is dropped
// unexecuted and counted as expired, with an in-band error naming the
// queue wait.
func TestDeadlineExpiresInQueue(t *testing.T) {
	srv, _ := ghostFront(t, queryfront.Config{
		Sessions: 1, QueueLen: 4,
		QueryTimeout: 500 * time.Millisecond,
		CallTimeout:  50 * time.Millisecond, RetryDeadline: 300 * time.Millisecond,
	})

	// Each executed audit costs ~2×RetryDeadline per ghost (notes sync +
	// audit), far beyond QueryTimeout, so whichever queries queue behind
	// the first expire before a session reaches them.
	const burst = 4
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		expiredErrs int
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := queryfront.Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			if _, err := cl.Audit(); err != nil && strings.Contains(err.Error(), "deadline expired") {
				mu.Lock()
				expiredErrs++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	stats := srv.Stats()
	t.Logf("stats: %v", stats)
	if stats.Expired == 0 {
		t.Errorf("no query expired in the queue: %v", stats)
	}
	if uint64(expiredErrs) != stats.Expired {
		t.Errorf("clients saw %d expiry errors, stats counted %d", expiredErrs, stats.Expired)
	}
	if stats.Served+stats.Shed+stats.Expired+stats.Failed != burst {
		t.Errorf("stats do not account for all %d queries: %v", burst, stats)
	}
}

// TestWireRoundTrip pins the query protocol's encodings: every DTO
// round-trips bit-exactly through its wire form.
func TestWireRoundTrip(t *testing.T) {
	reqIn := queryfront.ExplainRequest{
		Node:  "as10",
		Tuple: types.MakeTuple("route", types.N("as10"), types.N("as51"), types.I(2)),
		Mode:  core.ModeDisappear, Direction: core.Effects,
		At: 7, Scope: 5, SkipConsistency: true, StartHint: 3,
	}
	var reqOut queryfront.ExplainRequest
	roundTrip(t, reqIn.MarshalWire, reqOut.UnmarshalWire)
	if !reflect.DeepEqual(reqIn, reqOut) {
		t.Errorf("ExplainRequest round trip: %+v != %+v", reqOut, reqIn)
	}

	auditIn := queryfront.AuditRequest{Targets: []types.NodeID{"a", "b"}}
	var auditOut queryfront.AuditRequest
	roundTrip(t, auditIn.MarshalWire, auditOut.UnmarshalWire)
	if !reflect.DeepEqual(auditIn, auditOut) {
		t.Errorf("AuditRequest round trip: %+v != %+v", auditOut, auditIn)
	}

	resIn := queryfront.AuditResult{
		Failures:    []queryfront.FailureInfo{{Node: "c", Seq: 9, Reason: "mismatch"}},
		RedHosts:    []types.NodeID{"c"},
		Unreachable: []queryfront.Lead{{Node: "d", Err: "partitioned"}},
		Notes:       []queryfront.NoteInfo{{Reporter: "a", Src: "a", Dst: "d", Seq: 2}},
		Elapsed:     3 * time.Millisecond,
	}
	var resOut queryfront.AuditResult
	roundTrip(t, resIn.MarshalWire, resOut.UnmarshalWire)
	if !reflect.DeepEqual(resIn, resOut) {
		t.Errorf("AuditResult round trip: %+v != %+v", resOut, resIn)
	}
	if got := resOut.StrongNodes(); !reflect.DeepEqual(got, []types.NodeID{"c"}) {
		t.Errorf("StrongNodes = %v, want [c]", got)
	}

	statsIn := queryfront.FrontStats{
		Sessions: 4, QueueCap: 16, Served: 10, Shed: 2, Expired: 1, Failed: 3,
		CacheHits: 8, CacheMisses: 2,
		Kinds: []queryfront.KindStats{{Kind: "audit", Count: 10, P50: time.Millisecond, P99: time.Second}},
	}
	var statsOut queryfront.FrontStats
	roundTrip(t, statsIn.MarshalWire, statsOut.UnmarshalWire)
	if !reflect.DeepEqual(statsIn, statsOut) {
		t.Errorf("FrontStats round trip: %+v != %+v", statsOut, statsIn)
	}
	if statsOut.HitRatio() != 0.8 {
		t.Errorf("HitRatio = %v, want 0.8", statsOut.HitRatio())
	}
}

func roundTrip(t *testing.T, enc func(*wire.Writer), dec func(*wire.Reader) error) {
	t.Helper()
	w := wire.NewWriter(256)
	enc(w)
	r := wire.NewReader(w.Bytes())
	if err := dec(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}
