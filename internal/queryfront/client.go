package queryfront

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// ErrOverloaded is wrapped into errors for queries the frontend shed at
// admission (queue full). Callers can back off and retry; the shed is
// counted in FrontStats.
var ErrOverloaded = errors.New("queryfront: overloaded")

// Client is a query-frontend client: one connection, calls serialized.
// For concurrent queries, open one Client per caller goroutine — the
// frontend's session pool provides the server-side concurrency. A Client
// redials transparently after a broken connection.
type Client struct {
	// CallTimeout bounds one call's write+read on the wire (default 30s;
	// it should exceed the server's QueryTimeout so deadline verdicts
	// arrive in-band instead of as client-side timeouts).
	CallTimeout time.Duration
	// MaxFrame bounds response frames (default the transport default).
	MaxFrame int
	// ID names the client on the wire (default "snp-query").
	ID string

	addr string

	mu    sync.Mutex
	conn  net.Conn
	reqID uint64
}

// Dial connects to a frontend at addr. The initial connection is eager so
// a bad address fails here, not on the first query.
func Dial(addr string) (*Client, error) {
	c := &Client{
		CallTimeout: 30 * time.Second,
		MaxFrame:    transport.DefaultMaxFrame,
		ID:          "snp-query",
		addr:        addr,
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// Close closes the connection. The client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addr = ""
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Explain submits one provenance macroquery and returns the explanation.
func (c *Client) Explain(req ExplainRequest) (*ExplainResult, error) {
	res := new(ExplainResult)
	err := c.call(FrameExplainReq, FrameExplainResp,
		req.MarshalWire,
		func(r *wire.Reader) error {
			if err := res.UnmarshalWire(r); err != nil {
				return err
			}
			return r.Finish()
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Audit audits the named targets (the whole deployment when none) and
// returns the verdict tiers.
func (c *Client) Audit(targets ...types.NodeID) (*AuditResult, error) {
	req := AuditRequest{Targets: targets}
	res := new(AuditResult)
	err := c.call(FrameAuditReq, FrameAuditResp,
		req.MarshalWire,
		func(r *wire.Reader) error {
			if err := res.UnmarshalWire(r); err != nil {
				return err
			}
			return r.Finish()
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Stats fetches the frontend's counter snapshot.
func (c *Client) Stats() (*FrontStats, error) {
	res := new(FrontStats)
	err := c.call(FrameStatsReq, FrameStatsResp, nil,
		func(r *wire.Reader) error {
			if err := res.UnmarshalWire(r); err != nil {
				return err
			}
			return r.Finish()
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// call performs one request/response exchange. Transport failures close
// the connection (the next call redials); frontend-reported errors are
// returned as-is, with sheds wrapped in ErrOverloaded.
func (c *Client) call(reqKind, respKind byte, body func(*wire.Writer), parse func(*wire.Reader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if c.addr == "" {
			return errors.New("queryfront: client closed")
		}
		conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
		if err != nil {
			return err
		}
		c.conn = conn
	}
	c.reqID++
	reqID := c.reqID
	w := wire.NewWriter(256)
	w.Raw([]byte{0, 0, 0, 0})
	w.String(c.ID)
	w.Byte(reqKind)
	w.Uint(reqID)
	if body != nil {
		body(w)
	}
	buf, err := transport.FinishFrame(w, c.MaxFrame)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		c.conn.Close()
		c.conn = nil
		return err
	}
	c.conn.SetDeadline(time.Now().Add(c.CallTimeout))
	if _, err := c.conn.Write(buf); err != nil {
		return fail(err)
	}
	for {
		payload, err := transport.ReadFrame(c.conn, c.MaxFrame)
		if err != nil {
			return fail(err)
		}
		_, kind, r, err := transport.BeginFrame(payload)
		if err != nil {
			return fail(err)
		}
		if kind != respKind {
			return fail(fmt.Errorf("queryfront: unexpected response kind %d", kind))
		}
		if r.Uint() != reqID {
			continue // stale answer from an abandoned call on this conn
		}
		if !r.Bool() {
			msg := r.String()
			if err := r.Err(); err != nil {
				return fail(err)
			}
			if strings.HasPrefix(msg, "overloaded:") {
				return fmt.Errorf("%w: %s", ErrOverloaded, msg)
			}
			return fmt.Errorf("queryfront: %s", msg)
		}
		if err := parse(r); err != nil {
			return fail(err)
		}
		return nil
	}
}
