// Package queryfront is the live query frontend: a daemon that serves
// provenance macroqueries (§5.1) over the framed-TCP transport against a
// running deployment. Clients submit Explain and audit queries; the
// frontend answers them from a bounded pool of Querier sessions — each
// single-goroutine, as core.Querier requires — that share one
// transport.Cluster, per-session RemoteFetchers, and one persistent audit
// cache. Overload is handled the way the transport handles full peer
// queues: a bounded admission queue sheds and counts rather than blocking
// or violating deadlines, and FrontStats exposes the counters (served/
// shed/expired/failed, cache hit ratio, per-kind p50/p99) over a stats
// RPC on the same listener.
//
// The evidence semantics are unchanged by the extra hop: every query runs
// a fresh Auditor over the shared cache, merges the deployment's §5.4
// missing-ack notes first (so honest nodes with unacked sends surface as
// leads, never as provable evidence), and reports unreachable peers as
// unattributable leads (§4.2's "unavailable" tier).
package queryfront

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Config configures a frontend. Cluster, Dir, and Factory are required;
// everything else has serviceable defaults.
type Config struct {
	// Cluster is the transport the deployment runs on. The frontend uses
	// it purely as an audit client (NewFetcher); it never serves node
	// traffic itself.
	Cluster *transport.Cluster
	// Base is the audit-side core configuration: Tprop, DeltaClock,
	// Suite, and — for a persistent cache shared across sessions —
	// AuditCache. It must match the deployment's protocol parameters or
	// replay verification will misjudge commitment deadlines.
	Base core.Config
	// Dir is the key directory covering the deployment's membership.
	Dir *core.Directory
	// Factory builds replay machines for audited nodes.
	Factory types.MachineFactory
	// ConfigureQuerier installs app-specific audit hooks on each query's
	// fresh Querier (e.g. BGP's maybe-rule validator). May be nil.
	ConfigureQuerier func(*core.Querier)

	// Sessions bounds the querier pool (default 4). Each session is one
	// goroutine owning one RemoteFetcher; queries never share a Querier.
	Sessions int
	// QueueLen bounds the admission queue (default 4×Sessions). A full
	// queue sheds new queries with a counted, in-band error.
	QueueLen int
	// QueryTimeout is the per-query deadline, admission queue included
	// (default 15s). Queries that outwait it in the queue are dropped
	// unexecuted; remote-call budgets of running queries are clamped to
	// the time remaining.
	QueryTimeout time.Duration
	// CallTimeout / RetryDeadline bound each session's remote audit
	// calls: per-attempt and total per logical call (defaults 500ms/2s).
	CallTimeout   time.Duration
	RetryDeadline time.Duration
	// MaxFrame bounds frames on the query listener (default the
	// transport default).
	MaxFrame int
	// ID names the frontend on the wire and to fault plans (default
	// "queryfront"); session fetchers dial as "<ID>-<n>".
	ID types.NodeID
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 4 * c.Sessions
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 15 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.RetryDeadline <= 0 {
		c.RetryDeadline = 2 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = transport.DefaultMaxFrame
	}
	if c.ID == "" {
		c.ID = "queryfront"
	}
	return c
}

// request is one admitted query waiting for a session.
type request struct {
	kind     byte
	reqID    uint64
	explain  *ExplainRequest
	audit    *AuditRequest
	conn     *frontConn
	admitted time.Time
	deadline time.Time
}

// frontConn serializes response writes to one client connection: session
// workers finish out of order, so each response write takes the lock.
type frontConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

// latRing keeps the most recent latency samples for one query kind plus a
// lifetime count; percentiles are nearest-rank over the retained window.
type latRing struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	count uint64
}

const latWindow = 512

func (l *latRing) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < latWindow {
		l.buf = append(l.buf, d)
	} else {
		l.buf[l.next] = d
		l.next = (l.next + 1) % latWindow
	}
	l.count++
}

func (l *latRing) snapshot() (count uint64, p50, p99 time.Duration) {
	l.mu.Lock()
	samples := append([]time.Duration(nil), l.buf...)
	count = l.count
	l.mu.Unlock()
	return count, quantile.Duration(samples, 50), quantile.Duration(samples, 99)
}

// Server is a running query frontend.
type Server struct {
	cfg Config
	ln  net.Listener

	queue chan *request
	quit  chan struct{}
	wg    sync.WaitGroup

	served  atomic.Uint64
	shed    atomic.Uint64
	expired atomic.Uint64
	failed  atomic.Uint64

	// cacheHits0/cacheMisses0 are the shared cache's counters at start;
	// Stats reports deltas so a pre-warmed cache does not skew the ratio.
	cacheHits0   uint64
	cacheMisses0 uint64

	mu      sync.Mutex
	kinds   map[string]*latRing
	closing bool
}

// Serve starts a frontend listening on addr ("host:0" picks a port; see
// Addr). The frontend owns the listener and its session pool; it does not
// own cfg.Cluster or cfg.Base.AuditCache — the caller closes those after
// Close returns.
func Serve(cfg Config, addr string) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster == nil || cfg.Dir == nil || cfg.Factory == nil {
		return nil, fmt.Errorf("queryfront: Config needs Cluster, Dir, and Factory")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		queue: make(chan *request, cfg.QueueLen),
		quit:  make(chan struct{}),
		kinds: map[string]*latRing{},
	}
	if c := cfg.Base.AuditCache; c != nil {
		s.cacheHits0, s.cacheMisses0 = c.Hits(), c.Misses()
	}
	for i := 0; i < cfg.Sessions; i++ {
		s.wg.Add(1)
		go s.session(i)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, tears down client connections and the session
// pool, and waits for in-flight queries to finish. Queued-but-unstarted
// queries are dropped; their clients see their connections close.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.closing = true
	s.mu.Unlock()
	close(s.quit)
	s.ln.Close()
	s.wg.Wait()
}

// Stats snapshots the frontend's counters.
func (s *Server) Stats() FrontStats {
	st := FrontStats{
		Sessions: s.cfg.Sessions,
		QueueCap: s.cfg.QueueLen,
		Served:   s.served.Load(),
		Shed:     s.shed.Load(),
		Expired:  s.expired.Load(),
		Failed:   s.failed.Load(),
	}
	if c := s.cfg.Base.AuditCache; c != nil {
		st.CacheHits = c.Hits() - s.cacheHits0
		st.CacheMisses = c.Misses() - s.cacheMisses0
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.kinds))
	for name := range s.kinds {
		names = append(names, name)
	}
	rings := make([]*latRing, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		rings = append(rings, s.kinds[name])
	}
	s.mu.Unlock()
	for i, name := range names {
		count, p50, p99 := rings[i].snapshot()
		st.Kinds = append(st.Kinds, KindStats{Kind: name, Count: count, P50: p50, P99: p99})
	}
	return st
}

func (s *Server) ring(kind string) *latRing {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.kinds[kind]
	if !ok {
		r = &latRing{}
		s.kinds[kind] = r
	}
	return r
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads query frames off one client connection until it closes
// or turns hostile (decode error, unknown kind). Stats requests are
// answered inline; explain/audit requests go through the admission queue.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	fc := &frontConn{conn: conn}
	// Unblock the read when the server shuts down mid-connection.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-s.quit:
			conn.Close()
		case <-stop:
		}
	}()
	for {
		payload, err := transport.ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			return
		}
		req, err := decodeRequest(payload)
		if err != nil {
			return
		}
		switch req.kind {
		case FrameStatsReq:
			body := s.Stats()
			_ = s.reply(fc, FrameStatsResp, req.reqID, nil, body.MarshalWire)
		case FrameExplainReq, FrameAuditReq:
			req.conn = fc
			req.admitted = time.Now()
			req.deadline = req.admitted.Add(s.cfg.QueryTimeout)
			select {
			case s.queue <- req:
			default:
				// Shed-and-count, mirroring Cluster.Send's full-queue
				// semantics: the client gets an immediate in-band error
				// instead of unbounded queueing.
				s.shed.Add(1)
				_ = s.reply(fc, req.kind+1, req.reqID,
					fmt.Errorf("overloaded: admission queue full (%d queued, %d sessions)",
						s.cfg.QueueLen, s.cfg.Sessions), nil)
			}
		}
	}
}

// decodeRequest parses one query frame into a request. Hostile input —
// truncated bodies, implausible counts, unknown kinds — returns an error.
func decodeRequest(payload []byte) (*request, error) {
	_, kind, r, err := transport.BeginFrame(payload)
	if err != nil {
		return nil, err
	}
	req := &request{kind: kind, reqID: r.Uint()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch kind {
	case FrameExplainReq:
		req.explain = new(ExplainRequest)
		if err := req.explain.UnmarshalWire(r); err != nil {
			return nil, err
		}
	case FrameAuditReq:
		req.audit = new(AuditRequest)
		if err := req.audit.UnmarshalWire(r); err != nil {
			return nil, err
		}
	case FrameStatsReq:
		// no body
	default:
		return nil, fmt.Errorf("queryfront: unknown query frame kind %d", kind)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return req, nil
}

// reply writes one response frame: [len][ID][kind][reqID][ok][body|error].
func (s *Server) reply(fc *frontConn, kind byte, reqID uint64, qerr error, body func(*wire.Writer)) error {
	w := wire.NewWriter(512)
	w.Raw([]byte{0, 0, 0, 0})
	w.String(string(s.cfg.ID))
	w.Byte(kind)
	w.Uint(reqID)
	if qerr != nil {
		w.Bool(false)
		w.String(qerr.Error())
	} else {
		w.Bool(true)
		body(w)
	}
	buf, err := transport.FinishFrame(w, s.cfg.MaxFrame)
	if err != nil {
		// The answer outgrew the frame bound (an explanation bigger than
		// MaxFrame): report in-band so the client sees a checked failure.
		w = wire.NewWriter(128)
		w.Raw([]byte{0, 0, 0, 0})
		w.String(string(s.cfg.ID))
		w.Byte(kind)
		w.Uint(reqID)
		w.Bool(false)
		w.String(err.Error())
		if buf, err = transport.FinishFrame(w, s.cfg.MaxFrame); err != nil {
			return err
		}
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	fc.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, werr := fc.conn.Write(buf)
	return werr
}

// session is one pool worker: a goroutine that owns one RemoteFetcher and
// runs admitted queries serially. Each query gets a fresh Auditor and
// Querier (satisfying the single-goroutine contract) over the shared
// persistent cache; concurrency comes from the pool, not from sharing.
func (s *Server) session(i int) {
	defer s.wg.Done()
	fetch := s.cfg.Cluster.NewFetcher(types.NodeID(fmt.Sprintf("%s-%d", s.cfg.ID, i)))
	defer fetch.Close()
	for {
		select {
		case <-s.quit:
			return
		case req := <-s.queue:
			s.run(fetch, req)
		}
	}
}

// run executes one admitted query on a session's fetcher.
func (s *Server) run(fetch *transport.RemoteFetcher, req *request) {
	remaining := time.Until(req.deadline)
	if remaining <= 0 {
		s.expired.Add(1)
		_ = s.reply(req.conn, req.kind+1, req.reqID,
			fmt.Errorf("deadline expired after %v in the admission queue", time.Since(req.admitted).Round(time.Millisecond)), nil)
		return
	}
	// Clamp the remote-call budgets to the time this query has left, so a
	// query that waited in the queue cannot blow its deadline inside one
	// slow unreachable peer.
	fetch.CallTimeout = minDur(s.cfg.CallTimeout, remaining)
	fetch.RetryDeadline = minDur(s.cfg.RetryDeadline, remaining)

	maint := core.NewMaintainer()
	s.syncNotes(fetch, maint)
	auditor := core.NewAuditor(s.cfg.Base, s.cfg.Dir, s.cfg.Factory, maint)
	q := core.NewQuerier(auditor, fetch)
	q.Parallelism = 1 // sessions provide the concurrency; stay strictly lazy
	if s.cfg.ConfigureQuerier != nil {
		s.cfg.ConfigureQuerier(q)
	}

	switch req.kind {
	case FrameExplainReq:
		res, err := s.runExplain(q, req.explain)
		s.finish(req, "explain", err, func(w *wire.Writer) {
			res.Elapsed = time.Since(req.admitted)
			res.MarshalWire(w)
		})
	case FrameAuditReq:
		res := s.runAudit(q, maint, req.audit.Targets)
		s.finish(req, "audit", nil, func(w *wire.Writer) {
			res.Elapsed = time.Since(req.admitted)
			res.MarshalWire(w)
		})
	}
}

// finish accounts one executed query and sends its response.
func (s *Server) finish(req *request, kind string, err error, body func(*wire.Writer)) {
	if err != nil {
		s.failed.Add(1)
		_ = s.reply(req.conn, req.kind+1, req.reqID, err, nil)
		return
	}
	s.served.Add(1)
	s.ring(kind).record(time.Since(req.admitted))
	_ = s.reply(req.conn, req.kind+1, req.reqID, nil, body)
}

// syncNotes merges the deployment's §5.4 missing-ack reports into this
// query's maintainer before any evidence is scored. Without it, an honest
// node whose send was never acked (receiver partitioned, say) would
// replay as a protocol violation — a false accusation. Unreachable nodes
// are skipped best-effort: a missed note can only move evidence from
// "lead" to "nothing", never create an accusation... except the
// missing-ack shield itself, which is why every reachable node is asked.
func (s *Server) syncNotes(fetch *transport.RemoteFetcher, maint *core.Maintainer) {
	for _, id := range fetch.Nodes() {
		notes, err := fetch.Notes(id)
		if err != nil {
			continue
		}
		for _, n := range notes {
			maint.NotifyMissingAck(n.Reporter, n.ID)
		}
	}
}

// runExplain answers one Explain macroquery.
func (s *Server) runExplain(q *core.Querier, er *ExplainRequest) (*ExplainResult, error) {
	q.BeginAuditScope([]types.NodeID{er.Node}, er.StartHint)
	defer q.CloseScope()
	if err := q.EnsureAudited(er.Node, er.StartHint); err != nil {
		// The query's root node is unreachable: that is an answer for the
		// leads tier, not a retryable transport failure, but with no
		// vertex to hang it on we surface it as a query error.
		return nil, fmt.Errorf("root node %s unreachable: %w", er.Node, err)
	}
	expl, err := q.Explain(er.Node, er.Tuple, er.Opts())
	if err != nil {
		return nil, err
	}
	q.Auditor.Finalize()
	res := &ExplainResult{
		Rendered: expl.Format(),
		Vertices: expl.Size(),
		Faulty:   expl.FaultyNodes(),
	}
	res.Unreachable = leads(q.Unreachable())
	return res, nil
}

// runAudit audits the targets (whole membership when empty) and scores
// the evidence tiers, mirroring adversary.AuditAll but scoped and
// deadline-aware. Unreachable targets degrade to leads, never failures.
func (s *Server) runAudit(q *core.Querier, maint *core.Maintainer, targets []types.NodeID) *AuditResult {
	all := q.Fetch.Nodes()
	if len(targets) == 0 {
		targets = all
	}
	v := &adversary.Verdict{Unresponsive: make(map[types.NodeID]error)}
	for _, id := range targets {
		if err := q.EnsureAudited(id, 0); err != nil {
			v.Unresponsive[id] = err
		}
	}
	q.Auditor.Finalize()
	// The §5.5 consistency check: every authenticator a reachable peer
	// holds about a target must lie on the chain the target presented.
	for _, target := range targets {
		for _, peer := range all {
			if peer == target {
				continue
			}
			if _, down := v.Unresponsive[peer]; down {
				continue // costs evidence, never accuracy
			}
			for _, a := range q.Fetch.AuthsAbout(peer, target, 0, types.Time(math.MaxInt64)) {
				q.Auditor.CheckAuthenticator(a)
			}
		}
	}
	v.Refresh(q, maint)

	res := &AuditResult{}
	for _, f := range v.Failures {
		res.Failures = append(res.Failures, FailureInfo{Node: f.Node, Seq: f.Seq, Reason: f.Reason})
	}
	res.RedHosts = append(res.RedHosts, v.RedHosts...)
	sortNodes(res.RedHosts)
	res.Unreachable = leads(v.Unresponsive)
	for _, n := range v.Notes {
		res.Notes = append(res.Notes, NoteInfo{Reporter: n.Reporter, Src: n.ID.Src, Dst: n.ID.Dst, Seq: n.ID.Seq})
	}
	return res
}

// leads flattens an unreachable map into a wire-stable sorted slice.
func leads(m map[types.NodeID]error) []Lead {
	out := make([]Lead, 0, len(m))
	for id, err := range m {
		out = append(out, Lead{Node: id, Err: err.Error()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
