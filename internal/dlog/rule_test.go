package dlog

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// TestBrokenRuleDoesNotPanic: a bad protocol definition must be recorded and
// surfaced through Program.Err and Machine.Err, never panic the process.
func TestBrokenRuleDoesNotPanic(t *testing.T) {
	p := NewProgram()
	p.Relation("a", 2, false)
	p.MustAddRule(Rule{ // undeclared head relation: a compile error
		Name: "bad", Action: ActDerive,
		Head: A("nope", V("X")),
		Body: []Atom{A("a", V("X"), V("Y"))},
	})
	err := p.Err()
	if err == nil {
		t.Fatal("broken rule recorded no error")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the bad relation: %v", err)
	}
	// A later, valid rule still compiles; the first error is kept.
	p.Relation("b", 2, false)
	p.MustAddRule(Rule{
		Name: "ok", Action: ActDerive,
		Head: A("b", V("X"), V("Y")),
		Body: []Atom{A("a", V("X"), V("Y"))},
	})
	if got := p.Err(); got != err {
		t.Errorf("first error not sticky: %v", got)
	}
	if len(p.Rules()) != 1 || p.Rules()[0] != "ok" {
		t.Errorf("Rules() = %v, want just the valid rule", p.Rules())
	}
	// Machines built from the program carry the error.
	m := NewMachine(p, "n1")
	if m.Err() == nil {
		t.Error("machine does not surface the program error")
	}
	// And still evaluate the rules that did compile.
	m.Step(types.Event{Kind: types.EvIns, Node: "n1", Time: 1,
		Tuple: types.MakeTuple("a", types.N("n1"), types.I(1))})
	if !m.Lookup(types.MakeTuple("b", types.N("n1"), types.I(1))) {
		t.Error("valid rule did not fire")
	}
}

// TestProgramDeclarationErrors covers the other deferred-error paths.
func TestProgramDeclarationErrors(t *testing.T) {
	p := NewProgram()
	p.Relation("r", 2, false)
	p.Relation("r", 3, false) // redeclared with a different shape
	if p.Err() == nil {
		t.Error("relation redeclaration recorded no error")
	}
	p2 := NewProgram()
	p2.MustFunc("add", func(a []types.Value) types.Value { return a[0] }) // duplicate builtin
	if p2.Err() == nil {
		t.Error("duplicate builtin recorded no error")
	}
}
