package dlog

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

// minCostProgram builds the §3.3 MinCost protocol:
//
//	R1: cost(@X,Y,Y,K)      ← link(@X,Y,K)
//	R2: cost(@C,D,B,K1+K2)  ← link(@B,C,K1) ∧ bestCost(@B,D,K2)   (at B, shipped to C)
//	R3: bestCost(@X,Y,minK) ← cost(@X,Y,Z,K)
func minCostProgram() *Program {
	p := NewProgram()
	p.Relation("link", 3, false)
	p.Relation("cost", 4, false)
	p.Relation("bestCost", 3, false)
	p.MustAddRule(Rule{
		Name: "R1",
		Head: A("cost", V("X"), V("Y"), V("Y"), V("K")),
		Body: []Atom{A("link", V("X"), V("Y"), V("K"))},
	})
	p.MustAddRule(Rule{
		Name: "R2",
		Head: A("cost", V("C"), V("D"), V("B"), V("K")),
		Body: []Atom{
			A("link", V("B"), V("C"), V("K1")),
			A("bestCost", V("B"), V("D"), V("K2")),
		},
		Assigns: []Assign{{Var: "K", Fn: "add", Args: []Term{V("K1"), V("K2")}}},
		Conds:   []Cond{{Fn: "ne", Args: []Term{V("C"), V("D")}}},
	})
	p.MustAddRule(Rule{
		Name: "R3",
		Head: A("bestCost", V("X"), V("Y"), V("K")),
		Body: []Atom{A("cost", V("X"), V("Y"), V("Z"), V("K"))},
		Agg:  &Agg{Fn: AggMin, Over: "K", GroupBy: []string{"X", "Y"}},
	})
	return p
}

func link(x, y types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("link", types.N(x), types.N(y), types.I(k))
}

func bestCost(x, y types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("bestCost", types.N(x), types.N(y), types.I(k))
}

func ins(node types.NodeID, t types.Time, tup types.Tuple) types.Event {
	return types.Event{Kind: types.EvIns, Node: node, Time: t, Tuple: tup}
}

func del(node types.NodeID, t types.Time, tup types.Tuple) types.Event {
	return types.Event{Kind: types.EvDel, Node: node, Time: t, Tuple: tup}
}

func rcv(node types.NodeID, t types.Time, msg *types.Message) types.Event {
	return types.Event{Kind: types.EvRcv, Node: node, Time: t, Msg: msg}
}

// stepAll feeds ev to m and returns outputs; messages destined to other
// machines are delivered immediately (zero-delay network), recursively.
func deliverAll(t *testing.T, machines map[types.NodeID]*Machine, ev types.Event) {
	t.Helper()
	m := machines[ev.Node]
	outs := m.Step(ev)
	for _, o := range outs {
		if o.Kind == types.OutSend {
			dst := machines[o.Msg.Dst]
			if dst == nil {
				t.Fatalf("message to unknown node %s", o.Msg.Dst)
			}
			deliverAll(t, machines, rcv(o.Msg.Dst, ev.Time, o.Msg))
		}
	}
}

func TestMinCostLocalDerivation(t *testing.T) {
	p := minCostProgram()
	m := NewMachine(p, "c")
	outs := m.Step(ins("c", 1, link("c", "d", 5)))
	// link(@c,d,5) → cost(@c,d,d,5) → bestCost(@c,d,5); cost(@d,c,5) is
	// NOT derived (R1 head is at X=c; R2 needs bestCost first).
	if !m.Lookup(types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("d"), types.I(5))) {
		t.Error("cost(@c,d,d,5) not derived")
	}
	if !m.Lookup(bestCost("c", "d", 5)) {
		t.Error("bestCost(@c,d,5) not derived")
	}
	// No sends: the only R2 firing would advertise d's own route back to d,
	// which the C≠D condition suppresses.
	for _, o := range outs {
		if o.Kind == types.OutSend {
			t.Errorf("unexpected send %v", o)
		}
	}
}

// TestFigure2Derivations reproduces the §3.3 example: bestCost(@c,d,5) has
// two derivations, one via c's direct link and one via b.
func TestFigure2Derivations(t *testing.T) {
	p := minCostProgram()
	machines := map[types.NodeID]*Machine{
		"b": NewMachine(p, "b"),
		"c": NewMachine(p, "c"),
		"d": NewMachine(p, "d"),
	}
	// Figure 2 uses links b–d cost 3, b–c cost 2, c–d cost 5 (links are
	// symmetric: each endpoint knows its local link cost).
	deliverAll(t, machines, ins("b", 1, link("b", "d", 3)))
	deliverAll(t, machines, ins("d", 1, link("d", "b", 3)))
	deliverAll(t, machines, ins("b", 2, link("b", "c", 2)))
	deliverAll(t, machines, ins("c", 2, link("c", "b", 2)))
	deliverAll(t, machines, ins("c", 3, link("c", "d", 5)))
	deliverAll(t, machines, ins("d", 3, link("d", "c", 5)))

	c := machines["c"]
	if !c.Lookup(bestCost("c", "d", 5)) {
		t.Fatalf("bestCost(@c,d,5) missing; bestCost tuples: %v", c.TuplesOf("bestCost"))
	}
	// cost(@c,d,d,5) via direct link and cost(@c,d,b,5) believed from b.
	if !c.Lookup(types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("d"), types.I(5))) {
		t.Error("cost(@c,d,d,5) missing")
	}
	if !c.Lookup(types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("b"), types.I(5))) {
		t.Error("cost(@c,d,b,5) (believed from b) missing")
	}
	// b's best cost to d is its direct link.
	if !machines["b"].Lookup(bestCost("b", "d", 3)) {
		t.Error("bestCost(@b,d,3) missing")
	}
}

func TestMinCostRetraction(t *testing.T) {
	p := minCostProgram()
	machines := map[types.NodeID]*Machine{
		"b": NewMachine(p, "b"),
		"c": NewMachine(p, "c"),
		"d": NewMachine(p, "d"),
	}
	deliverAll(t, machines, ins("b", 1, link("b", "d", 3)))
	deliverAll(t, machines, ins("b", 2, link("b", "c", 2)))
	deliverAll(t, machines, ins("c", 2, link("c", "b", 2)))
	c := machines["c"]
	if !c.Lookup(bestCost("c", "d", 5)) {
		t.Fatalf("bestCost(@c,d,5) missing before retraction")
	}
	// Remove b's link to c: b stops advertising to c, so c's only route to
	// d must vanish. (Deleting the b–d link instead would exhibit classic
	// distance-vector count-to-infinity, which MinCost does not prevent.)
	deliverAll(t, machines, del("b", 5, link("b", "c", 2)))
	if c.Lookup(bestCost("c", "d", 5)) {
		t.Error("bestCost(@c,d,5) survived retraction of b–c link")
	}
	for _, tup := range c.TuplesOf("bestCost") {
		if tup.Args[1] == types.N("d") {
			t.Errorf("stale route to d: %v", tup)
		}
	}
}

func TestMinAggregatePicksMinimum(t *testing.T) {
	p := minCostProgram()
	m := NewMachine(p, "c")
	m.Step(ins("c", 1, link("c", "d", 5)))
	if !m.Lookup(bestCost("c", "d", 5)) {
		t.Fatal("bestCost(@c,d,5) missing")
	}
	// A cheaper believed cost arrives: bestCost must switch to 4.
	cheap := types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("e"), types.I(4))
	m.Step(rcv("c", 2, &types.Message{Src: "e", Dst: "c", Pol: types.PolAppear, Tuple: cheap, Seq: 1}))
	if m.Lookup(bestCost("c", "d", 5)) {
		t.Error("stale bestCost(@c,d,5) remains")
	}
	if !m.Lookup(bestCost("c", "d", 4)) {
		t.Error("bestCost(@c,d,4) missing")
	}
	// The belief is withdrawn: bestCost must fall back to 5.
	m.Step(rcv("c", 3, &types.Message{Src: "e", Dst: "c", Pol: types.PolDisappear, Tuple: cheap, Seq: 2}))
	if !m.Lookup(bestCost("c", "d", 5)) {
		t.Error("bestCost(@c,d,5) not restored after belief withdrawn")
	}
	if m.Lookup(bestCost("c", "d", 4)) {
		t.Error("bestCost(@c,d,4) survived belief withdrawal")
	}
}

func TestAggTieProducesTwoSupports(t *testing.T) {
	// Two paths of equal cost: one bestCost tuple with two derivations
	// (Figure 2's structure).
	p := minCostProgram()
	m := NewMachine(p, "c")
	m.Step(ins("c", 1, link("c", "d", 5)))
	tie := types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("b"), types.I(5))
	outs := m.Step(rcv("c", 2, &types.Message{Src: "b", Dst: "c", Pol: types.PolAppear, Tuple: tie, Seq: 1}))
	derives := 0
	for _, o := range outs {
		if o.Kind == types.OutDerive && o.Tuple.Equal(bestCost("c", "d", 5)) {
			derives++
			if o.First {
				t.Error("second derivation of an extant tuple must have First=false")
			}
		}
	}
	if derives != 1 {
		t.Errorf("new bestCost derivations = %d, want 1", derives)
	}
	f := m.getFact(bestCost("c", "d", 5))
	if f == nil || len(f.supports) != 2 {
		t.Fatalf("bestCost supports = %v, want 2", f)
	}
}

func TestEventRuleAndStore(t *testing.T) {
	p := NewProgram()
	p.Relation("ping", 2, true)  // event: ping(@N, From)
	p.Relation("seen", 2, false) // stored: seen(@N, From)
	p.Relation("pong", 2, true)  // event: pong(@From, N)
	p.MustAddRule(Rule{
		Name:   "remember",
		Action: ActStore,
		Head:   A("seen", V("N"), V("F")),
		Body:   []Atom{A("ping", V("N"), V("F"))},
	})
	p.MustAddRule(Rule{
		Name:   "reply",
		Action: ActEvent,
		Head:   A("pong", V("F"), V("N")),
		Body:   []Atom{A("ping", V("N"), V("F"))},
	})
	m := NewMachine(p, "n1")
	ping := types.MakeTuple("ping", types.N("n1"), types.N("n2"))
	outs := m.Step(rcv("n1", 5, &types.Message{Src: "n2", Dst: "n1", Pol: types.PolBoth, Tuple: ping, Seq: 1}))

	if !m.Lookup(types.MakeTuple("seen", types.N("n1"), types.N("n2"))) {
		t.Error("store rule did not persist seen(@n1,n2)")
	}
	var pongSent bool
	for _, o := range outs {
		if o.Kind == types.OutSend && o.Msg.Tuple.Rel == "pong" {
			if o.Msg.Pol != types.PolBoth {
				t.Error("event ship must use PolBoth")
			}
			if o.Msg.Dst != "n2" {
				t.Errorf("pong sent to %s, want n2", o.Msg.Dst)
			}
			pongSent = true
		}
	}
	if !pongSent {
		t.Error("event rule did not ship pong")
	}
	// The stored fact must survive the event's retraction.
	outs = m.Step(ins("n1", 6, types.MakeTuple("unrelated?", types.N("n1"))))
	_ = outs
	if !m.Lookup(types.MakeTuple("seen", types.N("n1"), types.N("n2"))) {
		t.Error("stored fact vanished")
	}
}

func TestStoreReplace(t *testing.T) {
	p := NewProgram()
	p.Relation("update", 3, true) // update(@N, Key, Val)
	p.Relation("slot", 3, false)  // slot(@N, Key, Val)
	p.MustAddRule(Rule{
		Name:       "set",
		Action:     ActStore,
		Head:       A("slot", V("N"), V("K"), V("V")),
		Body:       []Atom{A("update", V("N"), V("K"), V("V"))},
		ReplaceKey: 2, // (N, Key) identifies the slot
	})
	m := NewMachine(p, "n1")
	up := func(k string, v int64) types.Tuple {
		return types.MakeTuple("update", types.N("n1"), types.S(k), types.I(v))
	}
	m.Step(ins("n1", 1, up("x", 1)))
	if !m.Lookup(types.MakeTuple("slot", types.N("n1"), types.S("x"), types.I(1))) {
		t.Fatal("slot not stored")
	}
	outs := m.Step(ins("n1", 2, up("x", 2)))
	if m.Lookup(types.MakeTuple("slot", types.N("n1"), types.S("x"), types.I(1))) {
		t.Error("old slot value survived replacement")
	}
	if !m.Lookup(types.MakeTuple("slot", types.N("n1"), types.S("x"), types.I(2))) {
		t.Error("new slot value missing")
	}
	// The derive output must carry the Replaces annotation (§3.4 edge).
	found := false
	for _, o := range outs {
		if o.Kind == types.OutDerive && o.Tuple.Rel == "slot" {
			if len(o.Replaces) == 1 && o.Replaces[0].Args[2].Int == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("replacement derive lacks Replaces annotation")
	}
}

func TestDeleteRule(t *testing.T) {
	p := NewProgram()
	p.Relation("evict", 2, true)
	p.Relation("slot", 2, false)
	p.MustAddRule(Rule{
		Name:   "evict",
		Action: ActDelete,
		Head:   A("slot", V("N"), V("K")),
		Body:   []Atom{A("evict", V("N"), V("K"))},
	})
	m := NewMachine(p, "n1")
	slot := types.MakeTuple("slot", types.N("n1"), types.S("x"))
	m.Step(ins("n1", 1, slot))
	outs := m.Step(ins("n1", 2, types.MakeTuple("evict", types.N("n1"), types.S("x"))))
	if m.Lookup(slot) {
		t.Error("slot survived delete rule")
	}
	// No underive output for base supports, but the fact must be gone; the
	// GCA sees the del via the event log. Verify no send and no derive.
	for _, o := range outs {
		if o.Kind == types.OutSend {
			t.Errorf("unexpected output %v", o)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := minCostProgram()
	m1 := NewMachine(p, "c")
	m1.Step(ins("c", 1, link("c", "d", 5)))
	m1.Step(ins("c", 2, link("c", "b", 2)))
	cheap := types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("b"), types.I(4))
	m1.Step(rcv("c", 3, &types.Message{Src: "b", Dst: "c", Pol: types.PolAppear, Tuple: cheap, Seq: 1}))

	snap := m1.Snapshot()
	m2 := NewMachine(p, "c")
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, m2.Snapshot()) {
		t.Fatal("snapshot is not a fixed point")
	}
	// The restored machine must behave identically: withdraw the belief and
	// compare outputs.
	ev := rcv("c", 9, &types.Message{Src: "b", Dst: "c", Pol: types.PolDisappear, Tuple: cheap, Seq: 2})
	o1 := m1.Step(ev)
	o2 := m2.Step(ev)
	if len(o1) != len(o2) {
		t.Fatalf("output lengths differ: %d vs %d\n%v\n%v", len(o1), len(o2), o1, o2)
	}
	for i := range o1 {
		if o1[i].String() != o2[i].String() {
			t.Errorf("output %d differs: %v vs %v", i, o1[i], o2[i])
		}
	}
	if !m2.Lookup(bestCost("c", "d", 5)) {
		t.Error("restored machine did not recompute aggregate")
	}
}

func TestDeterministicOutputs(t *testing.T) {
	// The same event sequence must produce byte-identical output sequences
	// (assumption 6 of §5.2; replay depends on it).
	run := func() string {
		p := minCostProgram()
		m := NewMachine(p, "c")
		s := ""
		events := []types.Event{
			ins("c", 1, link("c", "d", 5)),
			ins("c", 2, link("c", "b", 2)),
			rcv("c", 3, &types.Message{Src: "b", Dst: "c", Pol: types.PolAppear,
				Tuple: types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("b"), types.I(4)), Seq: 1}),
			del("c", 4, link("c", "d", 5)),
		}
		for _, ev := range events {
			for _, o := range m.Step(ev) {
				s += o.String() + "\n"
			}
		}
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic outputs:\n%s\nvs\n%s", a, b)
	}
}

func TestExtants(t *testing.T) {
	p := minCostProgram()
	m := NewMachine(p, "c")
	m.Step(ins("c", 1, link("c", "d", 5)))
	cheap := types.MakeTuple("cost", types.N("c"), types.N("d"), types.N("b"), types.I(4))
	m.Step(rcv("c", 3, &types.Message{Src: "b", Dst: "c", Pol: types.PolAppear, Tuple: cheap, Seq: 1}))
	var localCount, believedCount int
	for _, e := range m.DumpExtants() {
		if e.Local {
			localCount++
		}
		for range e.Believed {
			believedCount++
		}
	}
	if believedCount != 1 {
		t.Errorf("believed extants = %d, want 1", believedCount)
	}
	if localCount < 3 { // link, cost(direct), bestCost at least
		t.Errorf("local extants = %d, want >= 3", localCount)
	}
}

func TestRuleValidation(t *testing.T) {
	p := NewProgram()
	p.Relation("a", 1, false)
	p.Relation("ev", 1, true)
	cases := []struct {
		name string
		rule Rule
	}{
		{"empty body", Rule{Name: "r", Head: A("a", V("X"))}},
		{"undeclared head", Rule{Name: "r", Head: A("zz", V("X")), Body: []Atom{A("a", V("X"))}}},
		{"undeclared body", Rule{Name: "r", Head: A("a", V("X")), Body: []Atom{A("zz", V("X"))}}},
		{"arity", Rule{Name: "r", Head: A("a", V("X"), V("Y")), Body: []Atom{A("a", V("X"))}}},
		{"unbound head var", Rule{Name: "r", Head: A("a", V("Y")), Body: []Atom{A("a", V("X"))}}},
		{"derive matching event", Rule{Name: "r", Head: A("a", V("X")), Body: []Atom{A("ev", V("X"))}}},
		{"event rule persistent head", Rule{Name: "r", Action: ActEvent, Head: A("a", V("X")), Body: []Atom{A("a", V("X"))}}},
		{"unknown builtin", Rule{Name: "r", Head: A("a", V("X")), Body: []Atom{A("a", V("X"))},
			Conds: []Cond{{Fn: "nosuch", Args: []Term{V("X")}}}}},
		{"agg on store", Rule{Name: "r", Action: ActStore, Head: A("a", V("X")),
			Body: []Atom{A("ev", V("X"))}, Agg: &Agg{Fn: AggMin, Over: "X"}}},
	}
	for _, c := range cases {
		if err := p.AddRule(c.rule); err == nil {
			t.Errorf("%s: invalid rule accepted", c.name)
		}
	}
}

func TestCountAggregate(t *testing.T) {
	p := NewProgram()
	p.Relation("item", 2, false) // item(@N, X)
	p.Relation("total", 2, false)
	p.MustAddRule(Rule{
		Name: "count",
		Head: A("total", V("N"), V("C")),
		Body: []Atom{A("item", V("N"), V("X"))},
		Agg:  &Agg{Fn: AggCount, Over: "C", GroupBy: []string{"N"}},
	})
	m := NewMachine(p, "n")
	item := func(x int64) types.Tuple { return types.MakeTuple("item", types.N("n"), types.I(x)) }
	total := func(c int64) types.Tuple { return types.MakeTuple("total", types.N("n"), types.I(c)) }
	m.Step(ins("n", 1, item(10)))
	if !m.Lookup(total(1)) {
		t.Fatalf("total(1) missing: %v", m.TuplesOf("total"))
	}
	m.Step(ins("n", 2, item(20)))
	if !m.Lookup(total(2)) || m.Lookup(total(1)) {
		t.Fatalf("total not updated to 2: %v", m.TuplesOf("total"))
	}
	m.Step(del("n", 3, item(10)))
	if !m.Lookup(total(1)) || m.Lookup(total(2)) {
		t.Fatalf("total not updated back to 1: %v", m.TuplesOf("total"))
	}
	m.Step(del("n", 4, item(20)))
	if len(m.TuplesOf("total")) != 0 {
		t.Fatalf("total should be empty: %v", m.TuplesOf("total"))
	}
}
