// Package dlog implements the declarative substrate of the paper's system
// model (§3.1): node state as tuples, behavior as derivation rules, and a
// deterministic per-node state machine that evaluates them incrementally.
// It plays the role RapidNet/ExSPAN's NDlog engine plays for SNooPy:
// provenance is *inferred* from rule evaluation (§5.3, method #1).
//
// Rules are written in localized form: every body atom binds the same
// anchor location variable (the evaluating node). The head's location may
// differ; such a tuple appears at the anchor and is shipped (+τ/−τ) to its
// home node, which believes it — exactly the structure of Figure 2, where
// router b derives cost(@c,d,b,5) locally and sends it to c.
//
// Four rule kinds cover the paper's needs:
//
//   - derive rules (the default): classic ref-counted derivations that hold
//     while their body holds, with optional min/max/count aggregation;
//   - event rules: the head is a transient event tuple that fires and
//     immediately retracts (used for protocol messages such as Chord
//     lookups);
//   - store rules: event-condition-action rules whose head is inserted as a
//     persistent fact when the body fires, optionally replacing an existing
//     fact with the same key prefix (which produces the §3.4 constraint
//     edge between the old tuple's disappearance and the new one's
//     appearance);
//   - delete rules: the dual of store rules.
package dlog

import (
	"fmt"

	"repro/internal/types"
)

// Term is a rule argument: a variable or a constant.
type Term struct {
	IsVar bool
	Var   string
	Val   types.Value
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(v types.Value) Term { return Term{Val: v} }

func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Val.String()
}

// Atom is a relation applied to terms, e.g. link(@X, Y, K).
type Atom struct {
	Rel   string
	Terms []Term
}

// A builds an atom.
func A(rel string, terms ...Term) Atom { return Atom{Rel: rel, Terms: terms} }

func (a Atom) String() string {
	s := a.Rel + "("
	for i, t := range a.Terms {
		if i > 0 {
			s += ","
		}
		s += t.String()
	}
	return s + ")"
}

// Func is a pure, deterministic builtin function over values. Boolean
// builtins return I(1) for true and I(0) for false.
type Func func(args []types.Value) types.Value

// Cond is a condition over bound variables: the builtin Fn applied to Args
// must return a non-zero integer (or, with Negate, zero).
type Cond struct {
	Fn     string
	Args   []Term
	Negate bool
}

// Assign binds Var to the result of the builtin Fn applied to Args.
type Assign struct {
	Var  string
	Fn   string
	Args []Term
}

// AggFunc enumerates supported aggregation functions.
type AggFunc uint8

// Aggregation functions.
const (
	AggMin AggFunc = iota
	AggMax
	AggCount
)

// Agg declares an aggregation on a derive rule. Over names the variable
// being aggregated; GroupBy lists the variables forming the group. The rule
// head is built from the binding of each *witness* (a body match achieving
// the aggregate), so for min/max the head may mention witness variables
// beyond the group (e.g. bestSucc(@N,S,SID) grouped by N). For count, Over
// is replaced in the head by the group's match count.
type Agg struct {
	Fn      AggFunc
	Over    string
	GroupBy []string
}

// ActionKind discriminates rule kinds.
type ActionKind uint8

// Rule kinds.
const (
	ActDerive ActionKind = iota
	ActEvent
	ActStore
	ActDelete
)

func (k ActionKind) String() string {
	switch k {
	case ActDerive:
		return "derive"
	case ActEvent:
		return "event"
	case ActStore:
		return "store"
	case ActDelete:
		return "delete"
	default:
		return fmt.Sprintf("action(%d)", k)
	}
}

// Rule is one derivation rule.
type Rule struct {
	Name    string
	Action  ActionKind
	Head    Atom
	Body    []Atom
	Conds   []Cond
	Assigns []Assign
	Agg     *Agg
	// ReplaceKey, for store rules: the number of leading head arguments
	// that form the replacement key. A firing first deletes any stored
	// fact with the same rel and key prefix, and links the old fact's
	// disappearance into the new fact's provenance (§3.4).
	ReplaceKey int
}

// Relation declares a relation: its name, arity, and whether its tuples are
// transient events.
type Relation struct {
	Name  string
	Arity int
	Event bool
}

// Program is a compiled set of relations, rules, and builtins shared by all
// nodes running the same protocol. Programs are immutable after Compile.
//
// Declaration helpers (Relation, MustFunc, MustAddRule) do not panic on a
// bad definition: the first error is recorded and reported by Err, and
// every machine built from the program carries it, so a broken protocol
// definition surfaces as an error at deployment or evaluation time instead
// of crashing the process.
type Program struct {
	relations map[string]Relation
	rules     []*compiledRule
	funcs     map[string]Func
	err       error // first declaration error, reported by Err
}

// Err returns the first error recorded while declaring relations, builtins,
// or rules (nil for a well-formed program).
func (p *Program) Err() error { return p.err }

// setErr records the first declaration error.
func (p *Program) setErr(err error) {
	if p.err == nil {
		p.err = err
	}
}

type compiledRule struct {
	*Rule
	// bodyOrder lists body atom indices in evaluation order: the event atom
	// (if any) first, then the rest in declaration order.
	bodyOrder []int
	eventAtom int // index into Body of the event atom, or -1

	// Positional binding plan: every variable in the rule is assigned an
	// integer slot at compile time, so evaluation uses flat value slices
	// instead of map[string]Value bindings (and backtracks via a trail
	// instead of copying the map at every join level).
	nvars         int
	slots         map[string]int
	cBody         []cAtom // per body atom, parallel to Body
	cHead         cAtom
	cAssigns      []cCall
	cConds        []cCall
	aggOverSlot   int   // slot of Agg.Over, or -1
	aggGroupSlots []int // slots of Agg.GroupBy
}

// cTerm is a compiled term: a variable slot (slot >= 0) or a constant.
type cTerm struct {
	slot int
	val  types.Value
}

// cAtom is a body or head atom with its terms compiled to slots.
type cAtom []cTerm

// cCall is a compiled assignment or condition: a resolved builtin applied to
// compiled terms. For assignments, slot is the destination; for conditions,
// negate flips the truth test.
type cCall struct {
	fn     Func
	args   []cTerm
	slot   int
	negate bool
}

// compileSlots builds the positional binding plan for a validated rule.
// Slot order follows first appearance (body in declaration order, then
// assigns, then the count variable), which is arbitrary but fixed.
func (p *Program) compileSlots(cr *compiledRule) {
	r := cr.Rule
	cr.slots = make(map[string]int)
	slotOf := func(v string) int {
		s, ok := cr.slots[v]
		if !ok {
			s = cr.nvars
			cr.slots[v] = s
			cr.nvars++
		}
		return s
	}
	compileTerms := func(terms []Term) []cTerm {
		out := make([]cTerm, len(terms))
		for i, t := range terms {
			if t.IsVar {
				out[i] = cTerm{slot: slotOf(t.Var)}
			} else {
				out[i] = cTerm{slot: -1, val: t.Val}
			}
		}
		return out
	}
	cr.cBody = make([]cAtom, len(r.Body))
	for i, a := range r.Body {
		cr.cBody[i] = compileTerms(a.Terms)
	}
	for _, as := range r.Assigns {
		cr.cAssigns = append(cr.cAssigns, cCall{
			fn:   p.funcs[as.Fn],
			args: compileTerms(as.Args),
			slot: slotOf(as.Var),
		})
	}
	for _, c := range r.Conds {
		cr.cConds = append(cr.cConds, cCall{
			fn:     p.funcs[c.Fn],
			args:   compileTerms(c.Args),
			slot:   -1,
			negate: c.Negate,
		})
	}
	cr.aggOverSlot = -1
	if r.Agg != nil {
		cr.aggOverSlot = slotOf(r.Agg.Over)
		cr.aggGroupSlots = make([]int, len(r.Agg.GroupBy))
		for i, g := range r.Agg.GroupBy {
			cr.aggGroupSlots[i] = slotOf(g)
		}
	}
	cr.cHead = compileTerms(r.Head.Terms)
}

// NewProgram creates an empty program with the standard builtins
// registered: add, sub, min2, eq, ne, lt, le, gt, ge.
func NewProgram() *Program {
	p := &Program{
		relations: make(map[string]Relation),
		funcs:     make(map[string]Func),
	}
	b := func(v bool) types.Value {
		if v {
			return types.I(1)
		}
		return types.I(0)
	}
	p.MustFunc("add", func(a []types.Value) types.Value { return types.I(a[0].Int + a[1].Int) })
	p.MustFunc("sub", func(a []types.Value) types.Value { return types.I(a[0].Int - a[1].Int) })
	p.MustFunc("min2", func(a []types.Value) types.Value {
		if a[0].Int < a[1].Int {
			return a[0]
		}
		return a[1]
	})
	p.MustFunc("eq", func(a []types.Value) types.Value { return b(a[0] == a[1]) })
	p.MustFunc("ne", func(a []types.Value) types.Value { return b(a[0] != a[1]) })
	p.MustFunc("lt", func(a []types.Value) types.Value { return b(a[0].Less(a[1])) })
	p.MustFunc("le", func(a []types.Value) types.Value { return b(!a[1].Less(a[0])) })
	p.MustFunc("gt", func(a []types.Value) types.Value { return b(a[1].Less(a[0])) })
	p.MustFunc("ge", func(a []types.Value) types.Value { return b(!a[0].Less(a[1])) })
	return p
}

// Relation declares a relation. Redeclaration with a different shape is
// recorded as a program error (see Err).
func (p *Program) Relation(name string, arity int, event bool) {
	if r, ok := p.relations[name]; ok && (r.Arity != arity || r.Event != event) {
		p.setErr(fmt.Errorf("dlog: relation %s redeclared with different shape", name))
		return
	}
	p.relations[name] = Relation{Name: name, Arity: arity, Event: event}
}

// MustFunc registers a builtin function. Registering the same name twice is
// recorded as a program error (see Err).
func (p *Program) MustFunc(name string, fn Func) {
	if _, ok := p.funcs[name]; ok {
		p.setErr(fmt.Errorf("dlog: builtin %s registered twice", name))
		return
	}
	p.funcs[name] = fn
}

// IsEvent reports whether rel is a declared event relation.
func (p *Program) IsEvent(rel string) bool { return p.relations[rel].Event }

// Rules returns the names of all compiled rules, in order.
func (p *Program) Rules() []string {
	out := make([]string, len(p.rules))
	for i, r := range p.rules {
		out[i] = r.Name
	}
	return out
}

// AddRule validates and compiles one rule into the program.
func (p *Program) AddRule(r Rule) error {
	cr := &compiledRule{Rule: &r, eventAtom: -1}
	if r.Name == "" {
		return fmt.Errorf("dlog: rule without a name")
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("dlog: rule %s has an empty body", r.Name)
	}
	headRel, ok := p.relations[r.Head.Rel]
	if !ok {
		return fmt.Errorf("dlog: rule %s: undeclared head relation %s", r.Name, r.Head.Rel)
	}
	if len(r.Head.Terms) != headRel.Arity {
		return fmt.Errorf("dlog: rule %s: head arity %d, declared %d", r.Name, len(r.Head.Terms), headRel.Arity)
	}
	switch r.Action {
	case ActEvent:
		if !headRel.Event {
			return fmt.Errorf("dlog: rule %s: event rule head %s is not an event relation", r.Name, r.Head.Rel)
		}
	case ActDerive, ActStore, ActDelete:
		if headRel.Event {
			return fmt.Errorf("dlog: rule %s: %s rule head %s is an event relation", r.Name, r.Action, r.Head.Rel)
		}
	}
	if r.Agg != nil && r.Action != ActDerive && r.Action != ActEvent {
		return fmt.Errorf("dlog: rule %s: aggregation requires a derive or event rule", r.Name)
	}
	if r.Agg != nil && r.Action == ActEvent && r.Agg.Fn == AggCount {
		return fmt.Errorf("dlog: rule %s: count aggregation is not supported on event rules", r.Name)
	}
	if r.ReplaceKey > 0 && r.Action != ActStore {
		return fmt.Errorf("dlog: rule %s: ReplaceKey requires a store rule", r.Name)
	}
	if r.ReplaceKey > len(r.Head.Terms) {
		return fmt.Errorf("dlog: rule %s: ReplaceKey %d exceeds head arity", r.Name, r.ReplaceKey)
	}

	bound := map[string]bool{}
	events := 0
	for i, a := range r.Body {
		rel, ok := p.relations[a.Rel]
		if !ok {
			return fmt.Errorf("dlog: rule %s: undeclared body relation %s", r.Name, a.Rel)
		}
		if len(a.Terms) != rel.Arity {
			return fmt.Errorf("dlog: rule %s: body atom %s arity %d, declared %d", r.Name, a.Rel, len(a.Terms), rel.Arity)
		}
		if rel.Event {
			events++
			cr.eventAtom = i
			if r.Action == ActDerive {
				return fmt.Errorf("dlog: rule %s: derive rules may not match event relations (use event/store/delete rules)", r.Name)
			}
		}
		for _, t := range a.Terms {
			if t.IsVar {
				bound[t.Var] = true
			}
		}
	}
	if events > 1 {
		return fmt.Errorf("dlog: rule %s: at most one event atom per body", r.Name)
	}
	for _, as := range r.Assigns {
		if _, ok := p.funcs[as.Fn]; !ok {
			return fmt.Errorf("dlog: rule %s: unknown builtin %s", r.Name, as.Fn)
		}
		for _, t := range as.Args {
			if t.IsVar && !bound[t.Var] {
				return fmt.Errorf("dlog: rule %s: assign uses unbound variable %s", r.Name, t.Var)
			}
		}
		bound[as.Var] = true
	}
	for _, c := range r.Conds {
		if _, ok := p.funcs[c.Fn]; !ok {
			return fmt.Errorf("dlog: rule %s: unknown builtin %s", r.Name, c.Fn)
		}
		for _, t := range c.Args {
			if t.IsVar && !bound[t.Var] {
				return fmt.Errorf("dlog: rule %s: condition uses unbound variable %s", r.Name, t.Var)
			}
		}
	}
	if r.Agg != nil && r.Agg.Fn == AggCount {
		// For count, Over is produced by the aggregate itself and appears
		// only in the head.
		if bound[r.Agg.Over] {
			return fmt.Errorf("dlog: rule %s: count variable %s must not be bound by the body", r.Name, r.Agg.Over)
		}
		bound[r.Agg.Over] = true
	}
	for _, t := range r.Head.Terms {
		if t.IsVar && !bound[t.Var] {
			return fmt.Errorf("dlog: rule %s: head uses unbound variable %s", r.Name, t.Var)
		}
	}
	if r.Agg != nil {
		if !bound[r.Agg.Over] {
			return fmt.Errorf("dlog: rule %s: aggregate over unbound variable %s", r.Name, r.Agg.Over)
		}
		for _, g := range r.Agg.GroupBy {
			if !bound[g] {
				return fmt.Errorf("dlog: rule %s: group-by unbound variable %s", r.Name, g)
			}
		}
	}

	// Evaluation order: event atom first (rules with an event atom are only
	// triggered by that event), then the rest in declaration order.
	if cr.eventAtom >= 0 {
		cr.bodyOrder = append(cr.bodyOrder, cr.eventAtom)
	}
	for i := range r.Body {
		if i != cr.eventAtom {
			cr.bodyOrder = append(cr.bodyOrder, i)
		}
	}
	p.compileSlots(cr)
	p.rules = append(p.rules, cr)
	return nil
}

// MustAddRule is AddRule with the error deferred: a bad rule is recorded in
// the program (see Err) and skipped instead of panicking, so a broken
// protocol definition is surfaced by the deployment or the machines built
// from the program rather than taking down the process.
func (p *Program) MustAddRule(r Rule) {
	if err := p.AddRule(r); err != nil {
		p.setErr(err)
	}
}
