package dlog

import (
	"slices"

	"repro/internal/types"
)

// fid is a dense interned tuple-key ID; sid is a dense interned support-key
// ID. Both index their intern table's key slice.
type fid = int32
type sid = int32

// intern is an append-only canonical-string → dense-ID table. The strings
// are kept so that deterministic iteration can still follow canonical key
// order while every hot-path lookup and set membership test hashes a machine
// word instead of a string.
type intern struct {
	ids  map[string]int32
	keys []string
}

func newIntern() *intern {
	return &intern{ids: make(map[string]int32)}
}

// id returns the ID for k, interning it on first use.
func (t *intern) id(k string) int32 {
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := int32(len(t.keys))
	t.ids[k] = id
	t.keys = append(t.keys, k)
	return id
}

// lookup returns the ID for k without interning.
func (t *intern) lookup(k string) (int32, bool) {
	id, ok := t.ids[k]
	return id, ok
}

// key returns the canonical string for an interned ID.
func (t *intern) key(id int32) string { return t.keys[id] }

// relStore holds one relation's facts with incrementally maintained
// key-sorted iteration order and lazily built per-attribute indexes.
//
// Iteration order is kept sorted by canonical tuple key — not insertion or
// ID order — so join results fire in exactly the order the original
// full-scan-plus-sort evaluator produced them; every downstream artifact
// (message sequence numbers, aggregate tie-breaks, graph vertex creation
// order) is therefore bit-identical, while the per-join O(n log n) sort
// remains an O(1) slice read. Facts are referenced by interned fid, so
// bucket entries cost four bytes and visiting a candidate is a slice index
// into Machine.facts rather than a string-keyed map lookup. Indexes map an
// argument position to (value → key-sorted fact IDs), so a join level with
// a bound argument scans only the matching bucket.
type relStore struct {
	tups *intern
	keys []fid                         // all fact IDs, sorted by tuple key
	idx  map[int]map[types.Value][]fid // arg position → value → sorted IDs
}

func newRelStore(tups *intern) *relStore {
	return &relStore{tups: tups}
}

// cmpByKey orders fact IDs by their canonical tuple keys.
func (r *relStore) cmpByKey(a, b fid) int {
	ka, kb := r.tups.key(a), r.tups.key(b)
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

func (r *relStore) insertSorted(s []fid, id fid) []fid {
	i, found := slices.BinarySearchFunc(s, id, r.cmpByKey)
	if found {
		return s
	}
	return slices.Insert(s, i, id)
}

func (r *relStore) removeSorted(s []fid, id fid) []fid {
	i, found := slices.BinarySearchFunc(s, id, r.cmpByKey)
	if !found {
		return s
	}
	return slices.Delete(s, i, i+1)
}

func (r *relStore) add(f *fact) {
	i, found := slices.BinarySearchFunc(r.keys, f.id, r.cmpByKey)
	if found {
		return
	}
	r.keys = slices.Insert(r.keys, i, f.id)
	for p, buckets := range r.idx {
		if p < len(f.tuple.Args) {
			v := f.tuple.Args[p]
			buckets[v] = r.insertSorted(buckets[v], f.id)
		}
	}
}

func (r *relStore) remove(f *fact) {
	i, found := slices.BinarySearchFunc(r.keys, f.id, r.cmpByKey)
	if !found {
		return
	}
	r.keys = slices.Delete(r.keys, i, i+1)
	for p, buckets := range r.idx {
		if p < len(f.tuple.Args) {
			v := f.tuple.Args[p]
			b := r.removeSorted(buckets[v], f.id)
			if len(b) == 0 {
				delete(buckets, v)
			} else {
				buckets[v] = b
			}
		}
	}
}

// ensureIdx returns the index for argument position p, building it from the
// current facts on first use; it is maintained by add/remove afterwards.
func (r *relStore) ensureIdx(m *Machine, p int) map[types.Value][]fid {
	if b, ok := r.idx[p]; ok {
		return b
	}
	if r.idx == nil {
		r.idx = make(map[int]map[types.Value][]fid)
	}
	b := make(map[types.Value][]fid)
	for _, id := range r.keys { // keys are sorted, so buckets come out sorted
		f := m.facts[id]
		if f != nil && p < len(f.tuple.Args) {
			b[f.tuple.Args[p]] = append(b[f.tuple.Args[p]], id)
		}
	}
	r.idx[p] = b
	return b
}

// candidates returns a snapshot of the IDs of facts that can possibly unify
// with atom under the current binding: the smallest index bucket among the
// atom's bound argument positions, or every fact when none is bound. The
// snapshot is a copy because rule firings triggered during the join may
// mutate the store; looking each ID up again at visit time reproduces the
// original evaluator's semantics for facts deleted mid-join.
func (r *relStore) candidates(m *Machine, atom cAtom, bf *bindFrame) []fid {
	best := r.keys
	haveBound := false
	for p, t := range atom {
		var v types.Value
		if t.slot >= 0 {
			if !bf.set[t.slot] {
				continue
			}
			v = bf.vals[t.slot]
		} else {
			v = t.val
		}
		bucket := r.ensureIdx(m, p)[v]
		if !haveBound || len(bucket) < len(best) {
			best = bucket
			haveBound = true
		}
		if len(best) == 0 {
			break
		}
	}
	return append([]fid(nil), best...)
}

// sortedSnapshot returns a copy of all fact IDs in sorted order.
func (r *relStore) sortedSnapshot() []fid {
	return append([]fid(nil), r.keys...)
}

// bindFrame is the positional binding state of one join: values indexed by
// variable slot, with a trail of newly bound slots so backtracking unbinds
// instead of copying.
type bindFrame struct {
	vals  []types.Value
	set   []bool
	trail []int
}

func newBindFrame(nvars int) *bindFrame {
	return &bindFrame{
		vals:  make([]types.Value, nvars),
		set:   make([]bool, nvars),
		trail: make([]int, 0, nvars),
	}
}

// mark returns the current trail position; undo unbinds everything bound
// since the matching mark.
func (bf *bindFrame) mark() int { return len(bf.trail) }

func (bf *bindFrame) undo(mark int) {
	for i := len(bf.trail) - 1; i >= mark; i-- {
		bf.set[bf.trail[i]] = false
	}
	bf.trail = bf.trail[:mark]
}

// unifyC matches tup against a compiled atom, extending bf. On failure the
// frame is restored to its state at entry. The caller guarantees the
// relation matches.
func unifyC(atom cAtom, tup types.Tuple, bf *bindFrame) bool {
	if len(atom) != len(tup.Args) {
		return false
	}
	mark := bf.mark()
	for i, t := range atom {
		a := tup.Args[i]
		if t.slot >= 0 {
			if bf.set[t.slot] {
				if bf.vals[t.slot] != a {
					bf.undo(mark)
					return false
				}
			} else {
				bf.vals[t.slot] = a
				bf.set[t.slot] = true
				bf.trail = append(bf.trail, t.slot)
			}
		} else if t.val != a {
			bf.undo(mark)
			return false
		}
	}
	return true
}

// substituteC builds the head tuple from a compiled atom and binding frame.
func substituteC(rel string, atom cAtom, bf *bindFrame) types.Tuple {
	args := make([]types.Value, len(atom))
	for i, t := range atom {
		if t.slot >= 0 {
			args[i] = bf.vals[t.slot]
		} else {
			args[i] = t.val
		}
	}
	return types.MakeTuple(rel, args...)
}

// evalTermsC evaluates compiled builtin arguments.
func evalTermsC(terms []cTerm, bf *bindFrame) []types.Value {
	out := make([]types.Value, len(terms))
	for i, t := range terms {
		if t.slot >= 0 {
			out[i] = bf.vals[t.slot]
		} else {
			out[i] = t.val
		}
	}
	return out
}
