package dlog

import (
	"slices"

	"repro/internal/types"
)

// relStore holds one relation's facts with incrementally maintained
// key-sorted iteration order and lazily built per-attribute indexes.
//
// Iteration order is kept sorted by tuple key — not insertion order — so
// join results fire in exactly the order the original full-scan-plus-sort
// evaluator produced them; every downstream artifact (message sequence
// numbers, aggregate tie-breaks, graph vertex creation order) is therefore
// bit-identical, while the per-join O(n log n) sort becomes an O(1) slice
// read. Indexes map an argument position to (value → sorted fact keys), so
// a join level with a bound argument scans only the matching bucket.
type relStore struct {
	byKey map[string]*fact
	keys  []string                         // all fact keys, sorted
	idx   map[int]map[types.Value][]string // arg position → value → sorted keys
}

func newRelStore() *relStore {
	return &relStore{byKey: make(map[string]*fact)}
}

func insertSorted(s []string, k string) []string {
	i, found := slices.BinarySearch(s, k)
	if found {
		return s
	}
	return slices.Insert(s, i, k)
}

func removeSorted(s []string, k string) []string {
	i, found := slices.BinarySearch(s, k)
	if !found {
		return s
	}
	return slices.Delete(s, i, i+1)
}

func (r *relStore) add(f *fact) {
	k := f.tuple.Key()
	if _, dup := r.byKey[k]; dup {
		return
	}
	r.byKey[k] = f
	r.keys = insertSorted(r.keys, k)
	for p, buckets := range r.idx {
		if p < len(f.tuple.Args) {
			v := f.tuple.Args[p]
			buckets[v] = insertSorted(buckets[v], k)
		}
	}
}

func (r *relStore) remove(f *fact) {
	k := f.tuple.Key()
	if _, ok := r.byKey[k]; !ok {
		return
	}
	delete(r.byKey, k)
	r.keys = removeSorted(r.keys, k)
	for p, buckets := range r.idx {
		if p < len(f.tuple.Args) {
			v := f.tuple.Args[p]
			b := removeSorted(buckets[v], k)
			if len(b) == 0 {
				delete(buckets, v)
			} else {
				buckets[v] = b
			}
		}
	}
}

// ensureIdx returns the index for argument position p, building it from the
// current facts on first use; it is maintained by add/remove afterwards.
func (r *relStore) ensureIdx(p int) map[types.Value][]string {
	if b, ok := r.idx[p]; ok {
		return b
	}
	if r.idx == nil {
		r.idx = make(map[int]map[types.Value][]string)
	}
	b := make(map[types.Value][]string)
	for _, k := range r.keys { // keys are sorted, so buckets come out sorted
		f := r.byKey[k]
		if p < len(f.tuple.Args) {
			b[f.tuple.Args[p]] = append(b[f.tuple.Args[p]], k)
		}
	}
	r.idx[p] = b
	return b
}

// candidateKeys returns a snapshot of the keys of facts that can possibly
// unify with atom under the current binding: the smallest index bucket among
// the atom's bound argument positions, or every fact when none is bound. The
// snapshot is a copy because rule firings triggered during the join may
// mutate the store; looking each key up again at visit time reproduces the
// original evaluator's semantics for facts deleted mid-join.
func (r *relStore) candidateKeys(atom cAtom, bf *bindFrame) []string {
	best := r.keys
	haveBound := false
	for p, t := range atom {
		var v types.Value
		if t.slot >= 0 {
			if !bf.set[t.slot] {
				continue
			}
			v = bf.vals[t.slot]
		} else {
			v = t.val
		}
		bucket := r.ensureIdx(p)[v]
		if !haveBound || len(bucket) < len(best) {
			best = bucket
			haveBound = true
		}
		if len(best) == 0 {
			break
		}
	}
	return append([]string(nil), best...)
}

// sortedSnapshot returns a copy of all fact keys in sorted order.
func (r *relStore) sortedSnapshot() []string {
	return append([]string(nil), r.keys...)
}

// bindFrame is the positional binding state of one join: values indexed by
// variable slot, with a trail of newly bound slots so backtracking unbinds
// instead of copying.
type bindFrame struct {
	vals  []types.Value
	set   []bool
	trail []int
}

func newBindFrame(nvars int) *bindFrame {
	return &bindFrame{
		vals:  make([]types.Value, nvars),
		set:   make([]bool, nvars),
		trail: make([]int, 0, nvars),
	}
}

// mark returns the current trail position; undo unbinds everything bound
// since the matching mark.
func (bf *bindFrame) mark() int { return len(bf.trail) }

func (bf *bindFrame) undo(mark int) {
	for i := len(bf.trail) - 1; i >= mark; i-- {
		bf.set[bf.trail[i]] = false
	}
	bf.trail = bf.trail[:mark]
}

// unifyC matches tup against a compiled atom, extending bf. On failure the
// frame is restored to its state at entry. The caller guarantees the
// relation matches.
func unifyC(atom cAtom, tup types.Tuple, bf *bindFrame) bool {
	if len(atom) != len(tup.Args) {
		return false
	}
	mark := bf.mark()
	for i, t := range atom {
		a := tup.Args[i]
		if t.slot >= 0 {
			if bf.set[t.slot] {
				if bf.vals[t.slot] != a {
					bf.undo(mark)
					return false
				}
			} else {
				bf.vals[t.slot] = a
				bf.set[t.slot] = true
				bf.trail = append(bf.trail, t.slot)
			}
		} else if t.val != a {
			bf.undo(mark)
			return false
		}
	}
	return true
}

// substituteC builds the head tuple from a compiled atom and binding frame.
func substituteC(rel string, atom cAtom, bf *bindFrame) types.Tuple {
	args := make([]types.Value, len(atom))
	for i, t := range atom {
		if t.slot >= 0 {
			args[i] = bf.vals[t.slot]
		} else {
			args[i] = t.val
		}
	}
	return types.MakeTuple(rel, args...)
}

// evalTermsC evaluates compiled builtin arguments.
func evalTermsC(terms []cTerm, bf *bindFrame) []types.Value {
	out := make([]types.Value, len(terms))
	for i, t := range terms {
		if t.slot >= 0 {
			out[i] = bf.vals[t.slot]
		} else {
			out[i] = t.val
		}
	}
	return out
}
