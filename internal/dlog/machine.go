package dlog

import (
	"slices"
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/wire"
)

// supportKind discriminates why a fact holds.
type supportKind uint8

const (
	supBase     supportKind = iota // inserted as a base tuple
	supBelieved                    // believed from a remote node (+τ received)
	supChoice                      // stored by a store rule or a maybe firing
	supDerive                      // derived by a derive rule
)

// support is one reason a fact holds. A fact exists while it has at least
// one support; each support corresponds to one derive vertex in the
// provenance graph.
type support struct {
	kind   supportKind
	rule   string
	origin types.NodeID
	body   []types.Tuple
	since  types.Time
	// noDeps marks supports whose lifetime is managed outside the generic
	// dependency cascade: choice supports (persist until deleted) and
	// aggregate-installed supports (managed by group recomputation).
	noDeps bool
}

func (s support) key() string {
	n := 4 + len(s.rule) + len(s.origin)
	for _, b := range s.body {
		n += 1 + len(b.Key())
	}
	var sb strings.Builder
	sb.Grow(n)
	// kind is a single digit (0..3); the format matches the historical
	// fmt.Sprintf("%d|%s|%s", ...) byte for byte, because support-key order
	// determines snapshot encoding order and thus checkpoint hashes.
	sb.WriteByte('0' + byte(s.kind))
	sb.WriteByte('|')
	sb.WriteString(s.rule)
	sb.WriteByte('|')
	sb.WriteString(string(s.origin))
	for _, b := range s.body {
		sb.WriteByte('|')
		sb.WriteString(b.Key())
	}
	return sb.String()
}

// supportEntry is one support of a fact together with its interned key ID.
type supportEntry struct {
	sid sid
	sup support
}

// fact is one stored tuple plus its supports, kept sorted by canonical
// support-key order (the order snapshot encoding and removal scans need).
type fact struct {
	id       fid
	tuple    types.Tuple
	outbound bool // location attribute names another node; shipped, not joined
	supports []supportEntry
	appeared types.Time
}

func (f *fact) active() bool { return len(f.supports) > 0 }

// findSupport returns the index of sid in f.supports (sorted by support key
// under in), or (insertion point, false).
func (f *fact) findSupport(in *intern, s sid) (int, bool) {
	return slices.BinarySearchFunc(f.supports, s, func(e supportEntry, target sid) int {
		return strings.Compare(in.key(e.sid), in.key(target))
	})
}

// dep records that a body fact is referenced by a support of a head fact.
type dep struct {
	head fid
	sup  sid
}

// aggMatch is one body match of an aggregation rule.
type aggMatch struct {
	body  []types.Tuple
	head  types.Tuple // head built from this witness's binding
	group string
	over  types.Value
}

// aggState tracks the materialized body matches of one aggregation rule.
// Matches are identified by their body fact-ID list (encoded as a compact
// byte string); identity sets are iterated in arbitrary-but-deterministic
// sorted order, which is safe because no output order depends on it.
type aggState struct {
	matches map[string]*aggMatch
	byGroup map[string]map[string]bool
	byFact  map[fid]map[string]bool
	// installed maps group -> head tuple ID -> support-key IDs currently
	// installed for that group, in canonical support-key order.
	installed map[string]map[fid][]sid
}

func newAggState() *aggState {
	return &aggState{
		matches:   make(map[string]*aggMatch),
		byGroup:   make(map[string]map[string]bool),
		byFact:    make(map[fid]map[string]bool),
		installed: make(map[string]map[fid][]sid),
	}
}

// Machine is the deterministic dlog state machine for one node: the Ai of
// Appendix A.2, with provenance-annotated outputs. It implements
// types.Machine.
//
// All fact and support bookkeeping is keyed by dense interned IDs (see
// intern in index.go) rather than canonical strings: the canonical byte
// forms are computed once per distinct tuple or support and every subsequent
// lookup hashes a machine word instead of a string. Deterministic iteration
// still follows canonical string order — the intern table keeps the strings
// for comparison — so outputs, snapshot bytes, and aggregate tie-breaks are
// bit-identical to the string-keyed evaluator.
//
// The intern tables are append-only: a tuple or support seen once keeps its
// ID (and key string) for the machine's lifetime, even after the fact is
// retracted, so memory grows with the number of historically distinct
// tuples rather than with live state. That is the usual workload shape
// here; Restore resets the tables along with the rest of the state.
type Machine struct {
	prog *Program
	self types.NodeID

	tups  *intern // canonical tuple key -> fid
	sups  *intern // canonical support key -> sid
	facts []*fact // fid -> fact, nil when absent; grown lazily
	rels  map[string]*relStore
	deps  map[fid]map[dep]bool
	aggs  map[int]*aggState // rule index -> state

	seqs map[types.NodeID]uint64
	now  types.Time
	out  []types.Output
	// collecting, when non-nil, buffers aggregated event-rule matches
	// instead of firing them.
	collecting *[]evMatch
	// quiet suppresses outputs (used while rebuilding state from a
	// checkpoint snapshot).
	quiet bool
}

// NewMachine creates a machine for node self running prog.
func NewMachine(prog *Program, self types.NodeID) *Machine {
	m := &Machine{
		prog: prog,
		self: self,
		tups: newIntern(),
		sups: newIntern(),
		rels: make(map[string]*relStore),
		deps: make(map[fid]map[dep]bool),
		aggs: make(map[int]*aggState),
		seqs: make(map[types.NodeID]uint64),
	}
	for i, r := range prog.rules {
		if r.Agg != nil {
			m.aggs[i] = newAggState()
		}
	}
	return m
}

// Factory returns a MachineFactory for prog.
func Factory(prog *Program) types.MachineFactory {
	return func(self types.NodeID) types.Machine { return NewMachine(prog, self) }
}

// Self returns the node this machine runs on.
func (m *Machine) Self() types.NodeID { return m.self }

// Err surfaces the program's declaration error, if any: a machine built
// from a broken protocol definition evaluates only the rules that compiled,
// and callers (deployments, replay harnesses) should check Err before
// trusting its outputs.
func (m *Machine) Err() error { return m.prog.Err() }

// Step implements types.Machine.
func (m *Machine) Step(ev types.Event) []types.Output {
	m.now = ev.Time
	m.out = nil
	switch ev.Kind {
	case types.EvIns:
		if m.prog.IsEvent(ev.Tuple.Rel) {
			// A transient event injected by the driver (e.g. a timer tick):
			// it fires rules but is never stored.
			m.matchEvent(ev.Tuple)
			break
		}
		if ev.MaybeRule != "" {
			m.addSupport(ev.Tuple, support{kind: supChoice, rule: ev.MaybeRule,
				body: ev.MaybeBody, since: m.now, noDeps: true}, ev.Replaces)
		} else {
			m.addSupport(ev.Tuple, support{kind: supBase, since: m.now, noDeps: true}, ev.Replaces)
		}
	case types.EvDel:
		if m.prog.IsEvent(ev.Tuple.Rel) {
			break // the matching ins already fired the rules
		}
		m.removeStoredSupports(ev.Tuple)
	case types.EvRcv:
		msg := ev.Msg
		switch msg.Pol {
		case types.PolAppear:
			m.addSupport(msg.Tuple, support{kind: supBelieved, origin: msg.Src,
				since: m.now, noDeps: true}, nil)
		case types.PolDisappear:
			if id, ok := m.tups.lookup(msg.Tuple.Key()); ok {
				if s, ok := m.sups.lookup(support{kind: supBelieved, origin: msg.Src}.key()); ok {
					m.removeSupport(id, s, "", nil)
				}
			}
		case types.PolBoth:
			// Believed transient event: fires rules, never stored.
			m.matchEvent(msg.Tuple)
		}
	}
	outs := m.out
	m.out = nil
	return outs
}

// emit appends an output unless the machine is rebuilding quietly.
func (m *Machine) emit(o types.Output) {
	if !m.quiet {
		m.out = append(m.out, o)
	}
}

// ---------------------------------------------------------------------------
// Fact and support maintenance.

// factID interns the tuple's canonical key and grows the fact slice to cover
// the ID.
func (m *Machine) factID(tup types.Tuple) fid {
	id := m.tups.id(tup.Key())
	for int(id) >= len(m.facts) {
		m.facts = append(m.facts, nil)
	}
	return id
}

func (m *Machine) getFact(tup types.Tuple) *fact {
	if id, ok := m.tups.lookup(tup.Key()); ok {
		return m.facts[id]
	}
	return nil
}

func (m *Machine) addSupport(tup types.Tuple, sup support, replaces []types.Tuple) {
	// Store-rule replacement and maybe-rule replacement: retract the old
	// facts first so their disappearance can justify this appearance.
	for _, old := range replaces {
		m.removeStoredSupportsVia(old, sup.rule, sup.body)
	}

	id := m.factID(tup)
	f := m.facts[id]
	if f == nil {
		f = &fact{
			id:       id,
			tuple:    tup,
			outbound: tup.HasLoc() && tup.Loc() != m.self,
		}
		m.facts[id] = f
		rel := m.rels[tup.Rel]
		if rel == nil {
			rel = newRelStore(m.tups)
			m.rels[tup.Rel] = rel
		}
		rel.add(f)
	}
	s := m.sups.id(sup.key())
	i, dup := f.findSupport(m.sups, s)
	if dup {
		return // identical support already present
	}
	wasActive := f.active()
	f.supports = slices.Insert(f.supports, i, supportEntry{sid: s, sup: sup})
	if !sup.noDeps {
		for _, b := range sup.body {
			bid := m.factID(b)
			if m.deps[bid] == nil {
				m.deps[bid] = make(map[dep]bool)
			}
			m.deps[bid][dep{id, s}] = true
		}
	}
	// Believed facts produce no derive output: the GCA represents them with
	// believe vertices created from the rcv event itself.
	if sup.kind == supDerive || sup.kind == supChoice {
		m.emit(types.Output{Kind: types.OutDerive, Tuple: tup, Rule: sup.rule,
			Body: sup.body, First: !wasActive && sup.kind == supDerive, Replaces: replaces})
	}
	if !wasActive {
		f.appeared = m.now
		m.activate(f, sup)
	}
}

// activate runs the consequences of a fact coming into existence: shipping
// (outbound facts) or local rule matching.
func (m *Machine) activate(f *fact, via support) {
	_ = via
	if f.outbound {
		m.send(f.tuple, types.PolAppear)
		return
	}
	m.matchPersistent(f.tuple)
}

func (m *Machine) send(tup types.Tuple, pol types.Polarity) {
	dst := tup.Loc()
	m.seqs[dst]++
	m.emit(types.Output{Kind: types.OutSend, Msg: &types.Message{
		Src: m.self, Dst: dst, Pol: pol, Tuple: tup, SendTime: m.now, Seq: m.seqs[dst],
	}})
}

// removeStoredSupports removes all base and choice supports of tup (an
// EvDel, which only applies to stored facts).
func (m *Machine) removeStoredSupports(tup types.Tuple) {
	m.removeStoredSupportsVia(tup, "", nil)
}

func (m *Machine) removeStoredSupportsVia(tup types.Tuple, rule string, body []types.Tuple) {
	f := m.getFact(tup)
	if f == nil {
		return
	}
	// Snapshot the matching support IDs first: removal mutates the slice
	// (and may cascade). f.supports is already in canonical key order.
	var stored []sid
	for _, e := range f.supports {
		if e.sup.kind == supBase || e.sup.kind == supChoice {
			stored = append(stored, e.sid)
		}
	}
	for _, s := range stored {
		m.removeSupport(f.id, s, rule, body)
	}
}

// removeSupport removes one support; if attributedRule is non-empty the
// underive output is attributed to it (e.g. a delete rule firing) instead
// of the support's own rule.
func (m *Machine) removeSupport(factID fid, supID sid, attributedRule string, attributedBody []types.Tuple) {
	if int(factID) >= len(m.facts) {
		return
	}
	f := m.facts[factID]
	if f == nil {
		return
	}
	i, ok := f.findSupport(m.sups, supID)
	if !ok {
		return
	}
	sup := f.supports[i].sup
	f.supports = slices.Delete(f.supports, i, i+1)
	if !sup.noDeps {
		for _, b := range sup.body {
			if bid, ok := m.tups.lookup(b.Key()); ok {
				delete(m.deps[bid], dep{factID, supID})
			}
		}
	}
	last := !f.active()
	rule, body := sup.rule, sup.body
	if attributedRule != "" {
		rule, body = attributedRule, attributedBody
	}
	if sup.kind == supDerive || sup.kind == supChoice {
		m.emit(types.Output{Kind: types.OutUnderive, Tuple: f.tuple, Rule: rule,
			Body: body, Last: last})
	}
	if last {
		m.deactivate(f)
	}
}

func (m *Machine) deactivate(f *fact) {
	m.facts[f.id] = nil
	if rel := m.rels[f.tuple.Rel]; rel != nil {
		rel.remove(f)
	}
	if f.outbound {
		m.send(f.tuple, types.PolDisappear)
		return
	}
	// Cascade: every support that referenced this fact dies.
	for _, d := range m.sortedDeps(m.deps[f.id]) {
		m.removeSupport(d.head, d.sup, "", nil)
	}
	delete(m.deps, f.id)
	// Aggregation rules lose the matches that used this fact.
	m.aggFactRemoved(f.id)
}

// ---------------------------------------------------------------------------
// Rule matching.

// matchPersistent fires all rules that can be triggered by the appearance
// of a persistent fact. Rules with an event atom cannot fire from a
// persistent delta (the event side can never be satisfied from the store).
func (m *Machine) matchPersistent(tup types.Tuple) {
	for ri, r := range m.prog.rules {
		if r.eventAtom >= 0 {
			continue
		}
		for pos, atom := range r.Body {
			if atom.Rel != tup.Rel {
				continue
			}
			m.joinFrom(ri, r, pos, tup)
		}
	}
}

// matchEvent fires all rules whose event atom matches the transient tuple.
func (m *Machine) matchEvent(tup types.Tuple) {
	for ri, r := range m.prog.rules {
		if r.eventAtom < 0 || r.Body[r.eventAtom].Rel != tup.Rel {
			continue
		}
		if r.Action == ActEvent && r.Agg != nil {
			// Aggregated event rule: all matches of this one event firing
			// are collected, then the aggregate winner fires (used for
			// closest-preceding-finger routing in Chord).
			saved := m.collecting
			var buf []evMatch
			m.collecting = &buf
			m.joinFrom(ri, r, r.eventAtom, tup)
			m.collecting = saved
			m.fireEventAgg(r, buf)
			continue
		}
		m.joinFrom(ri, r, r.eventAtom, tup)
	}
}

// evMatch is one buffered match of an aggregated event rule.
type evMatch struct {
	head  types.Tuple
	group string
	over  types.Value
	body  []types.Tuple
}

// fireEventAgg fires the aggregate winner of each group, breaking ties by
// head key then body identity so the choice is deterministic.
func (m *Machine) fireEventAgg(r *compiledRule, matches []evMatch) {
	groups := map[string][]evMatch{}
	var order []string
	for _, em := range matches {
		if _, ok := groups[em.group]; !ok {
			order = append(order, em.group)
		}
		groups[em.group] = append(groups[em.group], em)
	}
	sort.Strings(order)
	for _, g := range order {
		ms := groups[g]
		best := ms[0]
		for _, em := range ms[1:] {
			better := (r.Agg.Fn == AggMin && em.over.Less(best.over)) ||
				(r.Agg.Fn == AggMax && best.over.Less(em.over))
			tie := em.over == best.over && em.head.Key() < best.head.Key()
			if better || tie {
				best = em
			}
		}
		m.fireEvent(best.head, r.Name, best.body)
	}
}

// joinFrom seeds the join with tup bound at body position pos and extends
// it across the remaining atoms, firing the rule for every complete match.
func (m *Machine) joinFrom(ri int, r *compiledRule, pos int, tup types.Tuple) {
	bf := newBindFrame(r.nvars)
	if !unifyC(r.cBody[pos], tup, bf) {
		return
	}
	matched := make([]types.Tuple, len(r.Body))
	matched[pos] = tup
	rest := make([]int, 0, len(r.bodyOrder))
	for _, i := range r.bodyOrder {
		if i != pos {
			rest = append(rest, i)
		}
	}
	m.joinRest(ri, r, rest, bf, matched)
}

func (m *Machine) joinRest(ri int, r *compiledRule, rest []int, bf *bindFrame, matched []types.Tuple) {
	if len(rest) == 0 {
		m.fire(ri, r, bf, matched)
		return
	}
	pos, tail := rest[0], rest[1:]
	rel := m.rels[r.Body[pos].Rel]
	if rel == nil {
		return
	}
	for _, id := range rel.candidates(m, r.cBody[pos], bf) {
		f := m.facts[id]
		if f == nil || !f.active() || f.outbound {
			continue
		}
		mark := bf.mark()
		if !unifyC(r.cBody[pos], f.tuple, bf) {
			continue
		}
		matched[pos] = f.tuple
		m.joinRest(ri, r, tail, bf, matched)
		matched[pos] = types.Tuple{}
		bf.undo(mark)
	}
}

// fire applies assignments and conditions, then executes the rule action.
// The binding frame is restored before returning so the caller's join can
// continue with the next candidate.
func (m *Machine) fire(ri int, r *compiledRule, bf *bindFrame, matched []types.Tuple) {
	mark := bf.mark()
	// Assignment destinations that were already bound (a rebinding) must be
	// restored by value; the trail only restores freshly bound slots.
	var savedSlots []int
	var savedVals []types.Value
	for _, as := range r.cAssigns {
		v := as.fn(evalTermsC(as.args, bf))
		if bf.set[as.slot] {
			savedSlots = append(savedSlots, as.slot)
			savedVals = append(savedVals, bf.vals[as.slot])
		} else {
			bf.set[as.slot] = true
			bf.trail = append(bf.trail, as.slot)
		}
		bf.vals[as.slot] = v
	}
	restore := func() {
		bf.undo(mark)
		for i := len(savedSlots) - 1; i >= 0; i-- {
			bf.vals[savedSlots[i]] = savedVals[i]
		}
	}
	for _, c := range r.cConds {
		v := c.fn(evalTermsC(c.args, bf))
		ok := v.Kind == types.KindInt && v.Int != 0
		if c.negate {
			ok = !ok
		}
		if !ok {
			restore()
			return
		}
	}
	body := append([]types.Tuple(nil), matched...)

	if r.Agg != nil {
		if r.Action == ActEvent {
			*m.collecting = append(*m.collecting, evMatch{
				head:  substituteC(r.Head.Rel, r.cHead, bf),
				group: groupKeyC(r, bf),
				over:  bf.vals[r.aggOverSlot],
				body:  body,
			})
			restore()
			return
		}
		m.aggAddMatch(ri, r, bf, body)
		restore()
		return
	}
	head := substituteC(r.Head.Rel, r.cHead, bf)
	restore()
	switch r.Action {
	case ActDerive:
		m.addSupport(head, support{kind: supDerive, rule: r.Name, body: body, since: m.now}, nil)
	case ActEvent:
		m.fireEvent(head, r.Name, body)
	case ActStore:
		m.storeFact(r, head, body)
	case ActDelete:
		m.removeStoredSupportsVia(head, r.Name, body)
	}
}

// fireEvent derives a transient event tuple: it appears, propagates (or is
// shipped as a one-shot PolBoth message), and immediately disappears.
func (m *Machine) fireEvent(head types.Tuple, rule string, body []types.Tuple) {
	m.emit(types.Output{Kind: types.OutDerive, Tuple: head, Rule: rule, Body: body, First: true})
	if head.HasLoc() && head.Loc() != m.self {
		dst := head.Loc()
		m.seqs[dst]++
		m.emit(types.Output{Kind: types.OutSend, Msg: &types.Message{
			Src: m.self, Dst: dst, Pol: types.PolBoth, Tuple: head, SendTime: m.now, Seq: m.seqs[dst],
		}})
	} else {
		m.matchEvent(head)
	}
	m.emit(types.Output{Kind: types.OutUnderive, Tuple: head, Rule: rule, Body: body, Last: true})
}

// storeFact persists head with a choice support, honoring ReplaceKey.
func (m *Machine) storeFact(r *compiledRule, head types.Tuple, body []types.Tuple) {
	var replaces []types.Tuple
	if r.ReplaceKey > 0 {
		if rel := m.rels[head.Rel]; rel != nil {
			// The replacement key covers Args[0], so the position-0 index
			// bucket holds every candidate, already in sorted key order.
			for _, id := range rel.ensureIdx(m, 0)[head.Args[0]] {
				f := m.facts[id]
				if f == nil || !f.active() || f.tuple.Equal(head) {
					continue
				}
				if samePrefix(f.tuple, head, r.ReplaceKey) {
					replaces = append(replaces, f.tuple)
				}
			}
		}
	}
	m.addSupport(head, support{kind: supChoice, rule: r.Name, body: body,
		since: m.now, noDeps: true}, replaces)
}

func samePrefix(a, b types.Tuple, n int) bool {
	if len(a.Args) < n || len(b.Args) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Aggregation.

// groupKeyC renders the group-by values as the group identity string (the
// same "v1|v2|" format the map-based evaluator produced, since group-key
// sort order breaks aggregate ties).
func groupKeyC(r *compiledRule, bf *bindFrame) string {
	var sb strings.Builder
	for _, s := range r.aggGroupSlots {
		sb.WriteString(bf.vals[s].String())
		sb.WriteByte('|')
	}
	return sb.String()
}

// matchID renders a match identity from its body fact IDs. The encoding is
// only an identity (sets of match IDs are iterated in sorted order, but no
// output order depends on which order that is), so the compact little-endian
// byte form replaces the historical concatenated-key form.
func (m *Machine) matchID(body []types.Tuple) string {
	buf := make([]byte, 0, 4*len(body))
	for _, b := range body {
		id := m.factID(b)
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}

func (m *Machine) aggAddMatch(ri int, r *compiledRule, bf *bindFrame, body []types.Tuple) {
	st := m.aggs[ri]
	id := m.matchID(body)
	if _, ok := st.matches[id]; ok {
		return
	}
	am := &aggMatch{
		body:  body,
		group: groupKeyC(r, bf),
		over:  bf.vals[r.aggOverSlot],
	}
	if r.Agg.Fn != AggCount {
		am.head = substituteC(r.Head.Rel, r.cHead, bf)
	} else {
		am.head = substituteCountC(r, bf, 0) // placeholder; count filled at recompute
	}
	st.matches[id] = am
	if st.byGroup[am.group] == nil {
		st.byGroup[am.group] = make(map[string]bool)
	}
	st.byGroup[am.group][id] = true
	for _, b := range body {
		bid := m.factID(b)
		if st.byFact[bid] == nil {
			st.byFact[bid] = make(map[string]bool)
		}
		st.byFact[bid][id] = true
	}
	m.aggRecompute(ri, r, am.group)
}

func (m *Machine) aggFactRemoved(factID fid) {
	for ri, r := range m.prog.rules {
		if r.Agg == nil {
			continue
		}
		st := m.aggs[ri]
		ids := st.byFact[factID]
		if len(ids) == 0 {
			continue
		}
		dirty := map[string]bool{}
		for _, id := range sortedBoolKeys(ids) {
			am := st.matches[id]
			delete(st.matches, id)
			delete(st.byGroup[am.group], id)
			for _, b := range am.body {
				if bid, ok := m.tups.lookup(b.Key()); ok {
					delete(st.byFact[bid], id)
				}
			}
			dirty[am.group] = true
		}
		delete(st.byFact, factID)
		for _, g := range sortedBoolKeys(dirty) {
			m.aggRecompute(ri, r, g)
		}
	}
}

// aggRecompute rebuilds the derived head facts for one group and installs
// the support diff (removals first, then additions, so that a changed
// aggregate value retracts the stale head before asserting the new one).
func (m *Machine) aggRecompute(ri int, r *compiledRule, group string) {
	st := m.aggs[ri]
	ids := sortedBoolKeys(st.byGroup[group])

	// Desired state: head tuple ID -> support ID -> support.
	desired := map[fid]map[sid]support{}
	heads := map[fid]types.Tuple{}
	addDesired := func(head types.Tuple, sup support) {
		hid := m.factID(head)
		if desired[hid] == nil {
			desired[hid] = make(map[sid]support)
		}
		desired[hid][m.sups.id(sup.key())] = sup
		heads[hid] = head
	}
	if len(ids) > 0 {
		switch r.Agg.Fn {
		case AggMin, AggMax:
			best := st.matches[ids[0]].over
			for _, id := range ids[1:] {
				v := st.matches[id].over
				if (r.Agg.Fn == AggMin && v.Less(best)) || (r.Agg.Fn == AggMax && best.Less(v)) {
					best = v
				}
			}
			for _, id := range ids {
				am := st.matches[id]
				if am.over != best {
					continue
				}
				addDesired(am.head, support{kind: supDerive, rule: r.Name, body: am.body, since: m.now, noDeps: true})
			}
		case AggCount:
			n := int64(len(ids))
			for _, id := range ids {
				am := st.matches[id]
				head := substituteCountTuple(am.head, r, n)
				addDesired(head, support{kind: supDerive, rule: r.Name, body: am.body, since: m.now, noDeps: true})
			}
		}
	}

	current := st.installed[group]
	// Removals first, in canonical (head key, support key) order.
	for _, hid := range m.sortedFids(current) {
		for _, s := range current[hid] {
			if desired[hid] == nil || !hasKey(desired[hid], s) {
				m.removeSupport(hid, s, "", nil)
			}
		}
	}
	// Then additions.
	newInstalled := map[fid][]sid{}
	for _, hid := range m.sortedDesiredFids(desired) {
		for _, s := range m.sortedSids(desired[hid]) {
			sup := desired[hid][s]
			already := false
			for _, cur := range current[hid] {
				if cur == s {
					already = true
					break
				}
			}
			if !already {
				m.addSupport(heads[hid], sup, nil)
			}
			newInstalled[hid] = append(newInstalled[hid], s)
		}
	}
	if len(newInstalled) == 0 {
		delete(st.installed, group)
	} else {
		st.installed[group] = newInstalled
	}
}

// substituteCountC builds a count-rule head with the count value substituted
// for the Over variable's slot.
func substituteCountC(r *compiledRule, bf *bindFrame, n int64) types.Tuple {
	args := make([]types.Value, len(r.cHead))
	for i, t := range r.cHead {
		switch {
		case t.slot == r.aggOverSlot:
			args[i] = types.I(n)
		case t.slot >= 0:
			args[i] = bf.vals[t.slot]
		default:
			args[i] = t.val
		}
	}
	return types.MakeTuple(r.Head.Rel, args...)
}

// substituteCountTuple rewrites the placeholder count in a previously built
// head tuple. The Over variable's position is located from the rule head.
func substituteCountTuple(head types.Tuple, r *compiledRule, n int64) types.Tuple {
	args := append([]types.Value(nil), head.Args...)
	for i, t := range r.Head.Terms {
		if t.IsVar && t.Var == r.Agg.Over {
			args[i] = types.I(n)
		}
	}
	return types.MakeTuple(head.Rel, args...)
}

// ---------------------------------------------------------------------------
// Introspection (used by checkpoints and the graph seeder).

// activeFactsSorted returns all present facts in canonical tuple-key order.
func (m *Machine) activeFactsSorted() []*fact {
	out := make([]*fact, 0, len(m.facts))
	for _, f := range m.facts {
		if f != nil {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return m.tups.key(out[i].id) < m.tups.key(out[j].id)
	})
	return out
}

// DumpExtants implements types.StateDumper: the stored facts in
// deterministic order, for checkpointing and replay seeding.
func (m *Machine) DumpExtants() []types.ExtantTuple {
	facts := m.activeFactsSorted()
	out := make([]types.ExtantTuple, 0, len(facts))
	for _, f := range facts {
		e := types.ExtantTuple{Tuple: f.tuple, Appeared: f.appeared}
		for _, se := range f.supports {
			if se.sup.kind == supBelieved {
				e.Believed = append(e.Believed, types.Belief{Origin: se.sup.origin, Since: se.sup.since})
			} else {
				e.Local = true
			}
		}
		out = append(out, e)
	}
	return out
}

// Lookup reports whether a tuple is currently stored and active.
func (m *Machine) Lookup(tup types.Tuple) bool {
	f := m.getFact(tup)
	return f != nil && f.active()
}

// TuplesOf returns the active, non-outbound tuples of one relation.
func (m *Machine) TuplesOf(rel string) []types.Tuple {
	r := m.rels[rel]
	if r == nil {
		return nil
	}
	var out []types.Tuple
	for _, id := range r.keys {
		f := m.facts[id]
		if f != nil && f.active() && !f.outbound {
			out = append(out, f.tuple)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Snapshot / Restore (types.Machine).

// Snapshot implements types.Machine: a canonical encoding of every stored
// fact with its supports, plus the per-destination sequence counters.
func (m *Machine) Snapshot() []byte {
	w := wire.NewWriter(1024)
	dsts := make([]string, 0, len(m.seqs))
	for d := range m.seqs {
		dsts = append(dsts, string(d))
	}
	sort.Strings(dsts)
	w.Uint(uint64(len(dsts)))
	for _, d := range dsts {
		w.String(d)
		w.Uint(m.seqs[types.NodeID(d)])
	}
	facts := m.activeFactsSorted()
	w.Uint(uint64(len(facts)))
	for _, f := range facts {
		f.tuple.MarshalWire(w)
		w.Int(int64(f.appeared))
		w.Uint(uint64(len(f.supports)))
		for _, se := range f.supports {
			s := se.sup
			w.Byte(byte(s.kind))
			w.String(s.rule)
			w.String(string(s.origin))
			w.Int(int64(s.since))
			w.Bool(s.noDeps)
			w.Uint(uint64(len(s.body)))
			for _, b := range s.body {
				b.MarshalWire(w)
			}
		}
	}
	return w.Bytes()
}

// Restore implements types.Machine.
func (m *Machine) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	m.tups = newIntern()
	m.sups = newIntern()
	m.facts = nil
	m.rels = make(map[string]*relStore)
	m.deps = make(map[fid]map[dep]bool)
	m.seqs = make(map[types.NodeID]uint64)
	for i := range m.prog.rules {
		if m.prog.rules[i].Agg != nil {
			m.aggs[i] = newAggState()
		}
	}
	nd := r.Uint()
	for i := uint64(0); i < nd; i++ {
		d := r.String()
		m.seqs[types.NodeID(d)] = r.Uint()
	}
	nf := r.Uint()
	if r.Err() != nil {
		return r.Err()
	}
	for i := uint64(0); i < nf; i++ {
		var tup types.Tuple
		if err := tup.UnmarshalWire(r); err != nil {
			return err
		}
		id := m.factID(tup)
		f := &fact{
			id:       id,
			tuple:    tup,
			outbound: tup.HasLoc() && tup.Loc() != m.self,
			appeared: types.Time(r.Int()),
		}
		ns := r.Uint()
		if r.Err() != nil {
			return r.Err()
		}
		for j := uint64(0); j < ns; j++ {
			s := support{
				kind:   supportKind(r.Byte()),
				rule:   r.String(),
				origin: types.NodeID(r.String()),
				since:  types.Time(r.Int()),
				noDeps: r.Bool(),
			}
			nb := r.Uint()
			if r.Err() != nil {
				return r.Err()
			}
			for k := uint64(0); k < nb; k++ {
				var b types.Tuple
				if err := b.UnmarshalWire(r); err != nil {
					return err
				}
				s.body = append(s.body, b)
			}
			sid := m.sups.id(s.key())
			if idx, dup := f.findSupport(m.sups, sid); !dup {
				f.supports = slices.Insert(f.supports, idx, supportEntry{sid: sid, sup: s})
			}
			if !s.noDeps {
				for _, b := range s.body {
					bid := m.factID(b)
					if m.deps[bid] == nil {
						m.deps[bid] = make(map[dep]bool)
					}
					m.deps[bid][dep{id, sid}] = true
				}
			}
		}
		m.facts[id] = f
		rel := m.rels[tup.Rel]
		if rel == nil {
			rel = newRelStore(m.tups)
			m.rels[tup.Rel] = rel
		}
		rel.add(f)
	}
	if err := r.Finish(); err != nil {
		return err
	}
	m.rebuildAgg()
	return nil
}

// rebuildAgg reconstructs aggregate match state by re-joining every
// aggregation rule over the restored store, quietly (no outputs).
func (m *Machine) rebuildAgg() {
	m.quiet = true
	defer func() { m.quiet = false }()
	for ri, r := range m.prog.rules {
		if r.Agg == nil {
			continue
		}
		m.aggs[ri] = newAggState()
		// Re-seed from every active fact of the first body relation.
		first := r.bodyOrder[0]
		rel := m.rels[r.Body[first].Rel]
		if rel == nil {
			continue
		}
		for _, id := range rel.sortedSnapshot() {
			f := m.facts[id]
			if f == nil || !f.active() || f.outbound {
				continue
			}
			m.joinFrom(ri, r, first, f.tuple)
		}
	}
}

// ---------------------------------------------------------------------------
// Deterministic iteration helpers. All orderings follow the canonical string
// forms held by the intern tables, matching the historical string-keyed maps.

func (m *Machine) sortedDeps(s map[dep]bool) []dep {
	out := make([]dep, 0, len(s))
	for d := range s {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		hi, hj := m.tups.key(out[i].head), m.tups.key(out[j].head)
		if hi != hj {
			return hi < hj
		}
		return m.sups.key(out[i].sup) < m.sups.key(out[j].sup)
	})
	return out
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (m *Machine) sortedFids(s map[fid][]sid) []fid {
	out := make([]fid, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return m.tups.key(out[i]) < m.tups.key(out[j]) })
	return out
}

func (m *Machine) sortedDesiredFids(s map[fid]map[sid]support) []fid {
	out := make([]fid, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return m.tups.key(out[i]) < m.tups.key(out[j]) })
	return out
}

func (m *Machine) sortedSids(s map[sid]support) []sid {
	out := make([]sid, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return m.sups.key(out[i]) < m.sups.key(out[j]) })
	return out
}

func hasKey(m map[sid]support, k sid) bool {
	_, ok := m[k]
	return ok
}
