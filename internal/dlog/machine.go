package dlog

import (
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/wire"
)

// supportKind discriminates why a fact holds.
type supportKind uint8

const (
	supBase     supportKind = iota // inserted as a base tuple
	supBelieved                    // believed from a remote node (+τ received)
	supChoice                      // stored by a store rule or a maybe firing
	supDerive                      // derived by a derive rule
)

// support is one reason a fact holds. A fact exists while it has at least
// one support; each support corresponds to one derive vertex in the
// provenance graph.
type support struct {
	kind   supportKind
	rule   string
	origin types.NodeID
	body   []types.Tuple
	since  types.Time
	// noDeps marks supports whose lifetime is managed outside the generic
	// dependency cascade: choice supports (persist until deleted) and
	// aggregate-installed supports (managed by group recomputation).
	noDeps bool
}

func (s support) key() string {
	n := 4 + len(s.rule) + len(s.origin)
	for _, b := range s.body {
		n += 1 + len(b.Key())
	}
	var sb strings.Builder
	sb.Grow(n)
	// kind is a single digit (0..3); the format matches the historical
	// fmt.Sprintf("%d|%s|%s", ...) byte for byte, because support-key order
	// determines snapshot encoding order and thus checkpoint hashes.
	sb.WriteByte('0' + byte(s.kind))
	sb.WriteByte('|')
	sb.WriteString(s.rule)
	sb.WriteByte('|')
	sb.WriteString(string(s.origin))
	for _, b := range s.body {
		sb.WriteByte('|')
		sb.WriteString(b.Key())
	}
	return sb.String()
}

// fact is one stored tuple plus its supports.
type fact struct {
	tuple    types.Tuple
	outbound bool // location attribute names another node; shipped, not joined
	supports map[string]support
	appeared types.Time
}

func (f *fact) active() bool { return len(f.supports) > 0 }

// dep records that a body fact is referenced by a support of a head fact.
type dep struct {
	headKey string
	supKey  string
}

// aggMatch is one body match of an aggregation rule.
type aggMatch struct {
	id    string // identity: concatenated body fact keys
	body  []types.Tuple
	head  types.Tuple // head built from this witness's binding
	group string
	over  types.Value
}

// aggState tracks the materialized body matches of one aggregation rule.
type aggState struct {
	matches map[string]*aggMatch
	byGroup map[string]map[string]bool
	byFact  map[string]map[string]bool
	// installed maps group -> head tuple key -> support keys currently
	// installed for that group.
	installed map[string]map[string][]string
	headByKey map[string]types.Tuple
}

func newAggState() *aggState {
	return &aggState{
		matches:   make(map[string]*aggMatch),
		byGroup:   make(map[string]map[string]bool),
		byFact:    make(map[string]map[string]bool),
		installed: make(map[string]map[string][]string),
		headByKey: make(map[string]types.Tuple),
	}
}

// Machine is the deterministic dlog state machine for one node: the Ai of
// Appendix A.2, with provenance-annotated outputs. It implements
// types.Machine.
type Machine struct {
	prog *Program
	self types.NodeID

	facts map[string]*fact
	rels  map[string]*relStore
	deps  map[string]map[dep]bool
	aggs  map[int]*aggState // rule index -> state

	seqs map[types.NodeID]uint64
	now  types.Time
	out  []types.Output
	// collecting, when non-nil, buffers aggregated event-rule matches
	// instead of firing them.
	collecting *[]evMatch
	// quiet suppresses outputs (used while rebuilding state from a
	// checkpoint snapshot).
	quiet bool
}

// NewMachine creates a machine for node self running prog.
func NewMachine(prog *Program, self types.NodeID) *Machine {
	m := &Machine{
		prog:  prog,
		self:  self,
		facts: make(map[string]*fact),
		rels:  make(map[string]*relStore),
		deps:  make(map[string]map[dep]bool),
		aggs:  make(map[int]*aggState),
		seqs:  make(map[types.NodeID]uint64),
	}
	for i, r := range prog.rules {
		if r.Agg != nil {
			m.aggs[i] = newAggState()
		}
	}
	return m
}

// Factory returns a MachineFactory for prog.
func Factory(prog *Program) types.MachineFactory {
	return func(self types.NodeID) types.Machine { return NewMachine(prog, self) }
}

// Self returns the node this machine runs on.
func (m *Machine) Self() types.NodeID { return m.self }

// Step implements types.Machine.
func (m *Machine) Step(ev types.Event) []types.Output {
	m.now = ev.Time
	m.out = nil
	switch ev.Kind {
	case types.EvIns:
		if m.prog.IsEvent(ev.Tuple.Rel) {
			// A transient event injected by the driver (e.g. a timer tick):
			// it fires rules but is never stored.
			m.matchEvent(ev.Tuple)
			break
		}
		if ev.MaybeRule != "" {
			m.addSupport(ev.Tuple, support{kind: supChoice, rule: ev.MaybeRule,
				body: ev.MaybeBody, since: m.now, noDeps: true}, ev.Replaces)
		} else {
			m.addSupport(ev.Tuple, support{kind: supBase, since: m.now, noDeps: true}, ev.Replaces)
		}
	case types.EvDel:
		if m.prog.IsEvent(ev.Tuple.Rel) {
			break // the matching ins already fired the rules
		}
		m.removeStoredSupports(ev.Tuple)
	case types.EvRcv:
		msg := ev.Msg
		switch msg.Pol {
		case types.PolAppear:
			m.addSupport(msg.Tuple, support{kind: supBelieved, origin: msg.Src,
				since: m.now, noDeps: true}, nil)
		case types.PolDisappear:
			m.removeSupport(msg.Tuple.Key(), support{kind: supBelieved, origin: msg.Src}.key(), "", nil)
		case types.PolBoth:
			// Believed transient event: fires rules, never stored.
			m.matchEvent(msg.Tuple)
		}
	}
	outs := m.out
	m.out = nil
	return outs
}

// emit appends an output unless the machine is rebuilding quietly.
func (m *Machine) emit(o types.Output) {
	if !m.quiet {
		m.out = append(m.out, o)
	}
}

// ---------------------------------------------------------------------------
// Fact and support maintenance.

func (m *Machine) getFact(tup types.Tuple) *fact {
	return m.facts[tup.Key()]
}

func (m *Machine) addSupport(tup types.Tuple, sup support, replaces []types.Tuple) {
	// Store-rule replacement and maybe-rule replacement: retract the old
	// facts first so their disappearance can justify this appearance.
	for _, old := range replaces {
		m.removeStoredSupportsVia(old, sup.rule, sup.body)
	}

	f := m.getFact(tup)
	if f == nil {
		f = &fact{
			tuple:    tup,
			outbound: tup.HasLoc() && tup.Loc() != m.self,
			supports: make(map[string]support),
		}
		m.facts[tup.Key()] = f
		rel := m.rels[tup.Rel]
		if rel == nil {
			rel = newRelStore()
			m.rels[tup.Rel] = rel
		}
		rel.add(f)
	}
	sk := sup.key()
	if _, dup := f.supports[sk]; dup {
		return // identical support already present
	}
	wasActive := f.active()
	f.supports[sk] = sup
	if !sup.noDeps {
		for _, b := range sup.body {
			bk := b.Key()
			if m.deps[bk] == nil {
				m.deps[bk] = make(map[dep]bool)
			}
			m.deps[bk][dep{tup.Key(), sk}] = true
		}
	}
	// Believed facts produce no derive output: the GCA represents them with
	// believe vertices created from the rcv event itself.
	if sup.kind == supDerive || sup.kind == supChoice {
		m.emit(types.Output{Kind: types.OutDerive, Tuple: tup, Rule: sup.rule,
			Body: sup.body, First: !wasActive && sup.kind == supDerive, Replaces: replaces})
	}
	if !wasActive {
		f.appeared = m.now
		m.activate(f, sup)
	}
}

// activate runs the consequences of a fact coming into existence: shipping
// (outbound facts) or local rule matching.
func (m *Machine) activate(f *fact, via support) {
	_ = via
	if f.outbound {
		m.send(f.tuple, types.PolAppear)
		return
	}
	m.matchPersistent(f.tuple)
}

func (m *Machine) send(tup types.Tuple, pol types.Polarity) {
	dst := tup.Loc()
	m.seqs[dst]++
	m.emit(types.Output{Kind: types.OutSend, Msg: &types.Message{
		Src: m.self, Dst: dst, Pol: pol, Tuple: tup, SendTime: m.now, Seq: m.seqs[dst],
	}})
}

// removeStoredSupports removes all base and choice supports of tup (an
// EvDel, which only applies to stored facts).
func (m *Machine) removeStoredSupports(tup types.Tuple) {
	m.removeStoredSupportsVia(tup, "", nil)
}

func (m *Machine) removeStoredSupportsVia(tup types.Tuple, rule string, body []types.Tuple) {
	f := m.getFact(tup)
	if f == nil {
		return
	}
	for _, sk := range sortedKeys(f.supports) {
		s := f.supports[sk]
		if s.kind == supBase || s.kind == supChoice {
			m.removeSupport(tup.Key(), sk, rule, body)
		}
	}
}

// removeSupport removes one support; if attributedRule is non-empty the
// underive output is attributed to it (e.g. a delete rule firing) instead
// of the support's own rule.
func (m *Machine) removeSupport(factKey, supKey, attributedRule string, attributedBody []types.Tuple) {
	f := m.facts[factKey]
	if f == nil {
		return
	}
	sup, ok := f.supports[supKey]
	if !ok {
		return
	}
	delete(f.supports, supKey)
	if !sup.noDeps {
		for _, b := range sup.body {
			delete(m.deps[b.Key()], dep{factKey, supKey})
		}
	}
	last := !f.active()
	rule, body := sup.rule, sup.body
	if attributedRule != "" {
		rule, body = attributedRule, attributedBody
	}
	if sup.kind == supDerive || sup.kind == supChoice {
		m.emit(types.Output{Kind: types.OutUnderive, Tuple: f.tuple, Rule: rule,
			Body: body, Last: last})
	}
	if last {
		m.deactivate(f)
	}
}

func (m *Machine) deactivate(f *fact) {
	key := f.tuple.Key()
	delete(m.facts, key)
	if rel := m.rels[f.tuple.Rel]; rel != nil {
		rel.remove(f)
	}
	if f.outbound {
		m.send(f.tuple, types.PolDisappear)
		return
	}
	// Cascade: every support that referenced this fact dies.
	for _, d := range sortedDeps(m.deps[key]) {
		m.removeSupport(d.headKey, d.supKey, "", nil)
	}
	delete(m.deps, key)
	// Aggregation rules lose the matches that used this fact.
	m.aggFactRemoved(key)
}

// ---------------------------------------------------------------------------
// Rule matching.

// matchPersistent fires all rules that can be triggered by the appearance
// of a persistent fact. Rules with an event atom cannot fire from a
// persistent delta (the event side can never be satisfied from the store).
func (m *Machine) matchPersistent(tup types.Tuple) {
	for ri, r := range m.prog.rules {
		if r.eventAtom >= 0 {
			continue
		}
		for pos, atom := range r.Body {
			if atom.Rel != tup.Rel {
				continue
			}
			m.joinFrom(ri, r, pos, tup)
		}
	}
}

// matchEvent fires all rules whose event atom matches the transient tuple.
func (m *Machine) matchEvent(tup types.Tuple) {
	for ri, r := range m.prog.rules {
		if r.eventAtom < 0 || r.Body[r.eventAtom].Rel != tup.Rel {
			continue
		}
		if r.Action == ActEvent && r.Agg != nil {
			// Aggregated event rule: all matches of this one event firing
			// are collected, then the aggregate winner fires (used for
			// closest-preceding-finger routing in Chord).
			saved := m.collecting
			var buf []evMatch
			m.collecting = &buf
			m.joinFrom(ri, r, r.eventAtom, tup)
			m.collecting = saved
			m.fireEventAgg(r, buf)
			continue
		}
		m.joinFrom(ri, r, r.eventAtom, tup)
	}
}

// evMatch is one buffered match of an aggregated event rule.
type evMatch struct {
	head  types.Tuple
	group string
	over  types.Value
	body  []types.Tuple
}

// fireEventAgg fires the aggregate winner of each group, breaking ties by
// head key then body identity so the choice is deterministic.
func (m *Machine) fireEventAgg(r *compiledRule, matches []evMatch) {
	groups := map[string][]evMatch{}
	var order []string
	for _, em := range matches {
		if _, ok := groups[em.group]; !ok {
			order = append(order, em.group)
		}
		groups[em.group] = append(groups[em.group], em)
	}
	sort.Strings(order)
	for _, g := range order {
		ms := groups[g]
		best := ms[0]
		for _, em := range ms[1:] {
			better := (r.Agg.Fn == AggMin && em.over.Less(best.over)) ||
				(r.Agg.Fn == AggMax && best.over.Less(em.over))
			tie := em.over == best.over && em.head.Key() < best.head.Key()
			if better || tie {
				best = em
			}
		}
		m.fireEvent(best.head, r.Name, best.body)
	}
}

// joinFrom seeds the join with tup bound at body position pos and extends
// it across the remaining atoms, firing the rule for every complete match.
func (m *Machine) joinFrom(ri int, r *compiledRule, pos int, tup types.Tuple) {
	bf := newBindFrame(r.nvars)
	if !unifyC(r.cBody[pos], tup, bf) {
		return
	}
	matched := make([]types.Tuple, len(r.Body))
	matched[pos] = tup
	rest := make([]int, 0, len(r.bodyOrder))
	for _, i := range r.bodyOrder {
		if i != pos {
			rest = append(rest, i)
		}
	}
	m.joinRest(ri, r, rest, bf, matched)
}

func (m *Machine) joinRest(ri int, r *compiledRule, rest []int, bf *bindFrame, matched []types.Tuple) {
	if len(rest) == 0 {
		m.fire(ri, r, bf, matched)
		return
	}
	pos, tail := rest[0], rest[1:]
	rel := m.rels[r.Body[pos].Rel]
	if rel == nil {
		return
	}
	for _, fk := range rel.candidateKeys(r.cBody[pos], bf) {
		f := rel.byKey[fk]
		if f == nil || !f.active() || f.outbound {
			continue
		}
		mark := bf.mark()
		if !unifyC(r.cBody[pos], f.tuple, bf) {
			continue
		}
		matched[pos] = f.tuple
		m.joinRest(ri, r, tail, bf, matched)
		matched[pos] = types.Tuple{}
		bf.undo(mark)
	}
}

// fire applies assignments and conditions, then executes the rule action.
// The binding frame is restored before returning so the caller's join can
// continue with the next candidate.
func (m *Machine) fire(ri int, r *compiledRule, bf *bindFrame, matched []types.Tuple) {
	mark := bf.mark()
	// Assignment destinations that were already bound (a rebinding) must be
	// restored by value; the trail only restores freshly bound slots.
	var savedSlots []int
	var savedVals []types.Value
	for _, as := range r.cAssigns {
		v := as.fn(evalTermsC(as.args, bf))
		if bf.set[as.slot] {
			savedSlots = append(savedSlots, as.slot)
			savedVals = append(savedVals, bf.vals[as.slot])
		} else {
			bf.set[as.slot] = true
			bf.trail = append(bf.trail, as.slot)
		}
		bf.vals[as.slot] = v
	}
	restore := func() {
		bf.undo(mark)
		for i := len(savedSlots) - 1; i >= 0; i-- {
			bf.vals[savedSlots[i]] = savedVals[i]
		}
	}
	for _, c := range r.cConds {
		v := c.fn(evalTermsC(c.args, bf))
		ok := v.Kind == types.KindInt && v.Int != 0
		if c.negate {
			ok = !ok
		}
		if !ok {
			restore()
			return
		}
	}
	body := append([]types.Tuple(nil), matched...)

	if r.Agg != nil {
		if r.Action == ActEvent {
			*m.collecting = append(*m.collecting, evMatch{
				head:  substituteC(r.Head.Rel, r.cHead, bf),
				group: groupKeyC(r, bf),
				over:  bf.vals[r.aggOverSlot],
				body:  body,
			})
			restore()
			return
		}
		m.aggAddMatch(ri, r, bf, body)
		restore()
		return
	}
	head := substituteC(r.Head.Rel, r.cHead, bf)
	restore()
	switch r.Action {
	case ActDerive:
		m.addSupport(head, support{kind: supDerive, rule: r.Name, body: body, since: m.now}, nil)
	case ActEvent:
		m.fireEvent(head, r.Name, body)
	case ActStore:
		m.storeFact(r, head, body)
	case ActDelete:
		m.removeStoredSupportsVia(head, r.Name, body)
	}
}

// fireEvent derives a transient event tuple: it appears, propagates (or is
// shipped as a one-shot PolBoth message), and immediately disappears.
func (m *Machine) fireEvent(head types.Tuple, rule string, body []types.Tuple) {
	m.emit(types.Output{Kind: types.OutDerive, Tuple: head, Rule: rule, Body: body, First: true})
	if head.HasLoc() && head.Loc() != m.self {
		dst := head.Loc()
		m.seqs[dst]++
		m.emit(types.Output{Kind: types.OutSend, Msg: &types.Message{
			Src: m.self, Dst: dst, Pol: types.PolBoth, Tuple: head, SendTime: m.now, Seq: m.seqs[dst],
		}})
	} else {
		m.matchEvent(head)
	}
	m.emit(types.Output{Kind: types.OutUnderive, Tuple: head, Rule: rule, Body: body, Last: true})
}

// storeFact persists head with a choice support, honoring ReplaceKey.
func (m *Machine) storeFact(r *compiledRule, head types.Tuple, body []types.Tuple) {
	var replaces []types.Tuple
	if r.ReplaceKey > 0 {
		if rel := m.rels[head.Rel]; rel != nil {
			// The replacement key covers Args[0], so the position-0 index
			// bucket holds every candidate, already in sorted key order.
			for _, fk := range rel.ensureIdx(0)[head.Args[0]] {
				f := rel.byKey[fk]
				if f == nil || !f.active() || f.tuple.Equal(head) {
					continue
				}
				if samePrefix(f.tuple, head, r.ReplaceKey) {
					replaces = append(replaces, f.tuple)
				}
			}
		}
	}
	m.addSupport(head, support{kind: supChoice, rule: r.Name, body: body,
		since: m.now, noDeps: true}, replaces)
}

func samePrefix(a, b types.Tuple, n int) bool {
	if len(a.Args) < n || len(b.Args) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Aggregation.

// groupKeyC renders the group-by values as the group identity string (the
// same "v1|v2|" format the map-based evaluator produced, since group-key
// sort order breaks aggregate ties).
func groupKeyC(r *compiledRule, bf *bindFrame) string {
	var sb strings.Builder
	for _, s := range r.aggGroupSlots {
		sb.WriteString(bf.vals[s].String())
		sb.WriteByte('|')
	}
	return sb.String()
}

func matchID(body []types.Tuple) string {
	n := 0
	for _, b := range body {
		n += len(b.Key()) + 1
	}
	var sb strings.Builder
	sb.Grow(n)
	for _, b := range body {
		sb.WriteString(b.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

func (m *Machine) aggAddMatch(ri int, r *compiledRule, bf *bindFrame, body []types.Tuple) {
	st := m.aggs[ri]
	id := matchID(body)
	if _, ok := st.matches[id]; ok {
		return
	}
	am := &aggMatch{
		id:    id,
		body:  body,
		group: groupKeyC(r, bf),
		over:  bf.vals[r.aggOverSlot],
	}
	if r.Agg.Fn != AggCount {
		am.head = substituteC(r.Head.Rel, r.cHead, bf)
	} else {
		am.head = substituteCountC(r, bf, 0) // placeholder; count filled at recompute
	}
	st.matches[id] = am
	if st.byGroup[am.group] == nil {
		st.byGroup[am.group] = make(map[string]bool)
	}
	st.byGroup[am.group][id] = true
	for _, b := range body {
		bk := b.Key()
		if st.byFact[bk] == nil {
			st.byFact[bk] = make(map[string]bool)
		}
		st.byFact[bk][id] = true
	}
	m.aggRecompute(ri, r, am.group)
}

func (m *Machine) aggFactRemoved(factKey string) {
	for ri, r := range m.prog.rules {
		if r.Agg == nil {
			continue
		}
		st := m.aggs[ri]
		ids := st.byFact[factKey]
		if len(ids) == 0 {
			continue
		}
		dirty := map[string]bool{}
		for _, id := range sortedBoolKeys(ids) {
			am := st.matches[id]
			delete(st.matches, id)
			delete(st.byGroup[am.group], id)
			for _, b := range am.body {
				delete(st.byFact[b.Key()], id)
			}
			dirty[am.group] = true
		}
		delete(st.byFact, factKey)
		for _, g := range sortedBoolKeys(dirty) {
			m.aggRecompute(ri, r, g)
		}
	}
}

// aggRecompute rebuilds the derived head facts for one group and installs
// the support diff (removals first, then additions, so that a changed
// aggregate value retracts the stale head before asserting the new one).
func (m *Machine) aggRecompute(ri int, r *compiledRule, group string) {
	st := m.aggs[ri]
	ids := sortedBoolKeys(st.byGroup[group])

	// Desired state: head tuple key -> support key -> support.
	desired := map[string]map[string]support{}
	heads := map[string]types.Tuple{}
	if len(ids) > 0 {
		switch r.Agg.Fn {
		case AggMin, AggMax:
			best := st.matches[ids[0]].over
			for _, id := range ids[1:] {
				v := st.matches[id].over
				if (r.Agg.Fn == AggMin && v.Less(best)) || (r.Agg.Fn == AggMax && best.Less(v)) {
					best = v
				}
			}
			for _, id := range ids {
				am := st.matches[id]
				if am.over != best {
					continue
				}
				sup := support{kind: supDerive, rule: r.Name, body: am.body, since: m.now, noDeps: true}
				hk := am.head.Key()
				if desired[hk] == nil {
					desired[hk] = make(map[string]support)
				}
				desired[hk][sup.key()] = sup
				heads[hk] = am.head
			}
		case AggCount:
			n := int64(len(ids))
			var head types.Tuple
			for _, id := range ids {
				am := st.matches[id]
				head = substituteCountTuple(am.head, r, n)
				sup := support{kind: supDerive, rule: r.Name, body: am.body, since: m.now, noDeps: true}
				hk := head.Key()
				if desired[hk] == nil {
					desired[hk] = make(map[string]support)
				}
				desired[hk][sup.key()] = sup
				heads[hk] = head
			}
		}
	}

	current := st.installed[group]
	// Removals first.
	for _, hk := range sortedStringListKeys(current) {
		for _, sk := range current[hk] {
			if desired[hk] == nil || !hasKey(desired[hk], sk) {
				m.removeSupport(hk, sk, "", nil)
			}
		}
	}
	// Then additions.
	newInstalled := map[string][]string{}
	for _, hk := range sortedSupKeys(desired) {
		for _, sk := range sortedSupportKeys(desired[hk]) {
			sup := desired[hk][sk]
			already := false
			for _, cur := range current[hk] {
				if cur == sk {
					already = true
					break
				}
			}
			if !already {
				m.addSupport(heads[hk], sup, nil)
			} else if f := m.facts[hk]; f != nil {
				// Keep the original 'since'; nothing to do.
				_ = f
			}
			newInstalled[hk] = append(newInstalled[hk], sk)
		}
	}
	if len(newInstalled) == 0 {
		delete(st.installed, group)
	} else {
		st.installed[group] = newInstalled
	}
	for hk, tup := range heads {
		st.headByKey[hk] = tup
	}
}

// substituteCountC builds a count-rule head with the count value substituted
// for the Over variable's slot.
func substituteCountC(r *compiledRule, bf *bindFrame, n int64) types.Tuple {
	args := make([]types.Value, len(r.cHead))
	for i, t := range r.cHead {
		switch {
		case t.slot == r.aggOverSlot:
			args[i] = types.I(n)
		case t.slot >= 0:
			args[i] = bf.vals[t.slot]
		default:
			args[i] = t.val
		}
	}
	return types.MakeTuple(r.Head.Rel, args...)
}

// substituteCountTuple rewrites the placeholder count in a previously built
// head tuple. The Over variable's position is located from the rule head.
func substituteCountTuple(head types.Tuple, r *compiledRule, n int64) types.Tuple {
	args := append([]types.Value(nil), head.Args...)
	for i, t := range r.Head.Terms {
		if t.IsVar && t.Var == r.Agg.Over {
			args[i] = types.I(n)
		}
	}
	return types.MakeTuple(head.Rel, args...)
}

// ---------------------------------------------------------------------------
// Introspection (used by checkpoints and the graph seeder).

// DumpExtants implements types.StateDumper: the stored facts in
// deterministic order, for checkpointing and replay seeding.
func (m *Machine) DumpExtants() []types.ExtantTuple {
	keys := make([]string, 0, len(m.facts))
	for k := range m.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]types.ExtantTuple, 0, len(keys))
	for _, k := range keys {
		f := m.facts[k]
		e := types.ExtantTuple{Tuple: f.tuple, Appeared: f.appeared}
		for _, sk := range sortedKeys(f.supports) {
			s := f.supports[sk]
			if s.kind == supBelieved {
				e.Believed = append(e.Believed, types.Belief{Origin: s.origin, Since: s.since})
			} else {
				e.Local = true
			}
		}
		out = append(out, e)
	}
	return out
}

// Lookup reports whether a tuple is currently stored and active.
func (m *Machine) Lookup(tup types.Tuple) bool {
	f := m.getFact(tup)
	return f != nil && f.active()
}

// TuplesOf returns the active, non-outbound tuples of one relation.
func (m *Machine) TuplesOf(rel string) []types.Tuple {
	r := m.rels[rel]
	if r == nil {
		return nil
	}
	var out []types.Tuple
	for _, fk := range r.keys {
		f := r.byKey[fk]
		if f != nil && f.active() && !f.outbound {
			out = append(out, f.tuple)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Snapshot / Restore (types.Machine).

// Snapshot implements types.Machine: a canonical encoding of every stored
// fact with its supports, plus the per-destination sequence counters.
func (m *Machine) Snapshot() []byte {
	w := wire.NewWriter(1024)
	dsts := make([]string, 0, len(m.seqs))
	for d := range m.seqs {
		dsts = append(dsts, string(d))
	}
	sort.Strings(dsts)
	w.Uint(uint64(len(dsts)))
	for _, d := range dsts {
		w.String(d)
		w.Uint(m.seqs[types.NodeID(d)])
	}
	keys := make([]string, 0, len(m.facts))
	for k := range m.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uint(uint64(len(keys)))
	for _, k := range keys {
		f := m.facts[k]
		f.tuple.MarshalWire(w)
		w.Int(int64(f.appeared))
		sks := sortedKeys(f.supports)
		w.Uint(uint64(len(sks)))
		for _, sk := range sks {
			s := f.supports[sk]
			w.Byte(byte(s.kind))
			w.String(s.rule)
			w.String(string(s.origin))
			w.Int(int64(s.since))
			w.Bool(s.noDeps)
			w.Uint(uint64(len(s.body)))
			for _, b := range s.body {
				b.MarshalWire(w)
			}
		}
	}
	return w.Bytes()
}

// Restore implements types.Machine.
func (m *Machine) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	m.facts = make(map[string]*fact)
	m.rels = make(map[string]*relStore)
	m.deps = make(map[string]map[dep]bool)
	m.seqs = make(map[types.NodeID]uint64)
	for i := range m.prog.rules {
		if m.prog.rules[i].Agg != nil {
			m.aggs[i] = newAggState()
		}
	}
	nd := r.Uint()
	for i := uint64(0); i < nd; i++ {
		d := r.String()
		m.seqs[types.NodeID(d)] = r.Uint()
	}
	nf := r.Uint()
	if r.Err() != nil {
		return r.Err()
	}
	for i := uint64(0); i < nf; i++ {
		var tup types.Tuple
		if err := tup.UnmarshalWire(r); err != nil {
			return err
		}
		f := &fact{
			tuple:    tup,
			outbound: tup.HasLoc() && tup.Loc() != m.self,
			supports: make(map[string]support),
			appeared: types.Time(r.Int()),
		}
		ns := r.Uint()
		if r.Err() != nil {
			return r.Err()
		}
		for j := uint64(0); j < ns; j++ {
			s := support{
				kind:   supportKind(r.Byte()),
				rule:   r.String(),
				origin: types.NodeID(r.String()),
				since:  types.Time(r.Int()),
				noDeps: r.Bool(),
			}
			nb := r.Uint()
			if r.Err() != nil {
				return r.Err()
			}
			for k := uint64(0); k < nb; k++ {
				var b types.Tuple
				if err := b.UnmarshalWire(r); err != nil {
					return err
				}
				s.body = append(s.body, b)
			}
			sk := s.key()
			f.supports[sk] = s
			if !s.noDeps {
				for _, b := range s.body {
					bk := b.Key()
					if m.deps[bk] == nil {
						m.deps[bk] = make(map[dep]bool)
					}
					m.deps[bk][dep{tup.Key(), sk}] = true
				}
			}
		}
		m.facts[tup.Key()] = f
		rel := m.rels[tup.Rel]
		if rel == nil {
			rel = newRelStore()
			m.rels[tup.Rel] = rel
		}
		rel.add(f)
	}
	if err := r.Finish(); err != nil {
		return err
	}
	m.rebuildAgg()
	return nil
}

// rebuildAgg reconstructs aggregate match state by re-joining every
// aggregation rule over the restored store, quietly (no outputs).
func (m *Machine) rebuildAgg() {
	m.quiet = true
	defer func() { m.quiet = false }()
	for ri, r := range m.prog.rules {
		if r.Agg == nil {
			continue
		}
		m.aggs[ri] = newAggState()
		// Re-seed from every active fact of the first body relation.
		first := r.bodyOrder[0]
		rel := m.rels[r.Body[first].Rel]
		if rel == nil {
			continue
		}
		for _, fk := range rel.sortedSnapshot() {
			f := rel.byKey[fk]
			if f == nil || !f.active() || f.outbound {
				continue
			}
			m.joinFrom(ri, r, first, f.tuple)
		}
	}
}

// ---------------------------------------------------------------------------
// Deterministic iteration helpers.

func sortedKeys(m map[string]support) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedDeps(m map[dep]bool) []dep {
	out := make([]dep, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].headKey != out[j].headKey {
			return out[i].headKey < out[j].headKey
		}
		return out[i].supKey < out[j].supKey
	})
	return out
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStringListKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSupKeys(m map[string]map[string]support) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSupportKeys(m map[string]support) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func hasKey(m map[string]support, k string) bool {
	_, ok := m[k]
	return ok
}
