package livetcp

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
)

// verdictKey flattens the deterministic parts of a verdict for equality:
// provable failures (node + reason), red hosts, and the unresponsive set.
func verdictKey(v *adversary.Verdict) string {
	var fails []string
	for _, f := range v.Failures {
		fails = append(fails, fmt.Sprintf("%s:%s", f.Node, f.Reason))
	}
	sort.Strings(fails)
	var down []string
	for id := range v.Unresponsive {
		down = append(down, string(id))
	}
	sort.Strings(down)
	return fmt.Sprintf("fails=%v red=%v down=%v", fails, v.RedHosts, down)
}

// TestConcurrentQueriersSharedCache pins the frontend's core sharing
// assumption at the harness level: many concurrent Querier sessions (each
// single-goroutine, each a fresh Auditor) auditing the same live-TCP
// deployment through one persistent audit cache must produce verdicts
// identical to a serial, cache-less reference — same provable evidence
// against the tamperer, zero false accusations — and the cache must
// actually serve hits across the sessions.
func TestConcurrentQueriersSharedCache(t *testing.T) {
	app := MinCostApp()
	profile, ok := adversary.ProfileByName("tamper-log")
	if !ok {
		t.Fatal("tamper-log profile missing from catalog")
	}
	plan := adversary.Plan{}
	for _, id := range app.Compromised {
		plan[id] = []adversary.Behavior{profile.New()}
	}
	h, err := New(app, Options{Seed: 5, OnNode: plan.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Logf("note: %v", err)
	}
	h.Settle()

	// Serial in-process reference, no cache.
	ref := adversary.AuditAll(h.NewQuerier(), h.Maint)
	refKey := verdictKey(ref)
	t.Logf("reference verdict: %v", ref)
	if accused := ref.FalselyAccused(app.Compromised); len(accused) != 0 {
		t.Fatalf("reference run already accuses honest nodes %v", accused)
	}

	// Concurrent sessions over one persistent cache. The queriers are
	// created serially (harness bookkeeping is not concurrent-safe) and
	// then driven one per goroutine, as core.Querier requires.
	cache, err := core.OpenAuditCache(filepath.Join(t.TempDir(), "cache"), h.Cfg.Suite)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	h.Cfg.AuditCache = cache

	const sessions = 4
	queriers := make([]*core.Querier, sessions)
	for i := range queriers {
		queriers[i] = h.NewQuerier()
	}
	verdicts := make([]*adversary.Verdict, sessions)
	var wg sync.WaitGroup
	for i := range queriers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts[i] = adversary.AuditAll(queriers[i], h.Maint)
		}(i)
	}
	wg.Wait()

	for i, v := range verdicts {
		if accused := v.FalselyAccused(app.Compromised); len(accused) != 0 {
			t.Errorf("session %d: provable evidence implicates honest nodes %v\nfailures: %v\nred: %v",
				i, accused, v.Failures, v.RedHosts)
		}
		if got := verdictKey(v); got != refKey {
			t.Errorf("session %d verdict diverged from the serial reference:\n got: %s\nwant: %s", i, got, refKey)
		}
		if !reflect.DeepEqual(v.StrongNodes(), ref.StrongNodes()) {
			t.Errorf("session %d strong nodes %v != reference %v", i, v.StrongNodes(), ref.StrongNodes())
		}
	}
	if cache.Hits() == 0 {
		t.Error("four concurrent sessions over one cache recorded no hits")
	}
	if cache.Misses() == 0 {
		t.Error("the cache was never populated; the sessions did not go through it")
	}
}
