// Over-the-wire query throughput: the live companion to eval's in-process
// qps figure. A real frontend serves concurrent remote clients auditing a
// live TCP deployment; the cold pass populates the shared persistent
// audit cache through the frontend's session pool, the warm pass must be
// served entirely from it. Latencies are measured client-side (they
// include the wire and the admission queue — what an analyst would see).
package livetcp

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/queryfront"
	"repro/internal/types"
)

// QPSLiveRow is one pass of the over-the-wire throughput figure.
type QPSLiveRow struct {
	Label   string // "cold-cache" or "warm-cache"
	Workers int
	Queries int
	Elapsed time.Duration
	QPS     float64
	P50     time.Duration
	P99     time.Duration
	// Hits and Misses are the audit-cache counter deltas over the pass.
	Hits   uint64
	Misses uint64
}

func (r QPSLiveRow) String() string {
	return fmt.Sprintf("%-10s workers=%d queries=%d qps=%7.1f p50=%-10v p99=%-10v cache: %d hits / %d misses",
		r.Label, r.Workers, r.Queries, r.QPS,
		r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond), r.Hits, r.Misses)
}

// QPSLive runs the Quagga workload over loopback TCP, then measures
// sustained audit-query throughput through a query frontend: workers
// concurrent clients each own one connection and repeatedly submit
// single-target audit queries (round-robin over the deployment), queries
// in total per pass. The frontend's session pool matches workers, so no
// query should shed; the warm pass re-reads every segment from the
// persistent cache the cold pass populated, and any warm miss fails the
// run (segment identity must not drift under a live frontend either).
func QPSLive(seed int64, workers, queries int, dir string) ([]QPSLiveRow, *queryfront.FrontStats, error) {
	if workers <= 0 {
		workers = 4
	}
	if queries <= 0 {
		queries = 32
	}
	app := QuaggaApp()
	h, err := New(app, Options{Seed: seed, LogDir: filepath.Join(dir, "store")})
	if err != nil {
		return nil, nil, err
	}
	defer h.Close()
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 15*time.Second); err != nil {
		return nil, nil, err
	}
	h.Settle()

	cache, err := core.OpenAuditCache(filepath.Join(dir, "auditcache"), h.Cfg.Suite)
	if err != nil {
		return nil, nil, err
	}
	defer cache.Close()
	base := h.Cfg
	base.AuditCache = cache

	srv, err := queryfront.Serve(queryfront.Config{
		Cluster: h.Cluster, Base: base, Dir: h.Dir,
		Factory: app.Factory, ConfigureQuerier: app.ConfigureQuerier,
		Sessions: workers, QueueLen: 4 * workers,
		QueryTimeout: time.Minute,
	}, "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()

	targets := append([]types.NodeID(nil), app.Nodes...)

	pass := func(label string) (QPSLiveRow, error) {
		h0, m0 := cache.Hits(), cache.Misses()
		durs := make([]time.Duration, queries)
		errs := make(chan error, workers)
		next := make(chan int, queries)
		for i := 0; i < queries; i++ {
			next <- i
		}
		close(next)
		start := time.Now()
		for w := 0; w < workers; w++ {
			go func() {
				cl, dialErr := queryfront.Dial(srv.Addr())
				if dialErr != nil {
					errs <- dialErr
					return
				}
				defer cl.Close()
				for i := range next {
					target := targets[i%len(targets)]
					qs := time.Now()
					res, auditErr := cl.Audit(target)
					if auditErr != nil {
						errs <- fmt.Errorf("livetcp: qps-live %s audit of %s: %w", label, target, auditErr)
						return
					}
					if len(res.Failures) != 0 || len(res.RedHosts) != 0 {
						errs <- fmt.Errorf("livetcp: qps-live %s: honest run produced provable evidence: %+v", label, res)
						return
					}
					durs[i] = time.Since(qs)
				}
				errs <- nil
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				return QPSLiveRow{}, err
			}
		}
		elapsed := time.Since(start)
		return QPSLiveRow{
			Label: label, Workers: workers, Queries: queries, Elapsed: elapsed,
			QPS: float64(queries) / elapsed.Seconds(),
			P50: quantile.Duration(durs, 50), P99: quantile.Duration(durs, 99),
			Hits: cache.Hits() - h0, Misses: cache.Misses() - m0,
		}, nil
	}

	cold, err := pass("cold-cache")
	if err != nil {
		return nil, nil, err
	}
	if err := cache.Sync(); err != nil {
		return nil, nil, err
	}
	warm, err := pass("warm-cache")
	if err != nil {
		return nil, nil, err
	}
	if warm.Misses != 0 {
		return nil, nil, fmt.Errorf("livetcp: warm qps-live pass missed the audit cache %d times", warm.Misses)
	}
	stats := srv.Stats()
	return []QPSLiveRow{cold, warm}, &stats, nil
}
