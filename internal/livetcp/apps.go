package livetcp

import (
	"repro/internal/apps/bgp"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/types"
)

// MinCostApp is the §3.3 running example on live TCP: routers b, c, d with
// the Figure 2 link costs, router b compromised. Convergence is c learning
// bestCost(@c,d,5).
func MinCostApp() App {
	insert := func(h *Harness, id types.NodeID, tup types.Tuple) error {
		return h.With(id, func(n *core.Node) { n.InsertBase(tup) })
	}
	return App{
		Name:        "mincost",
		Nodes:       []types.NodeID{"b", "c", "d"},
		Compromised: []types.NodeID{"b"},
		Factory:     mincost.Factory(),
		Start: func(h *Harness) error {
			for _, l := range []struct {
				at   types.NodeID
				x, y types.NodeID
				k    int64
			}{
				{"b", "b", "d", 3}, {"d", "d", "b", 3},
				{"b", "b", "c", 2}, {"c", "c", "b", 2},
				{"c", "c", "d", 5}, {"d", "d", "c", 5},
			} {
				if err := insert(h, l.at, mincost.Link(l.x, l.y, l.k)); err != nil {
					return err
				}
			}
			return nil
		},
		Converged: func(h *Harness) bool {
			var ok bool
			_ = h.With("c", func(n *core.Node) {
				ok = n.Machine.(*dlog.Machine).Lookup(mincost.BestCost("c", "d", 5))
			})
			return ok
		},
	}
}

// quaggaLinks is a 4-network slice of the paper's Quagga topology: two
// tier-1 peers, the regional provider as30 under both (compromised), and
// the stub as51 under as30.
func quaggaLinks() []bgp.ASLink {
	return []bgp.ASLink{
		{A: "as10", B: "as20", RelAB: bgp.Peer},
		{A: "as30", B: "as10", RelAB: bgp.Provider},
		{A: "as30", B: "as20", RelAB: bgp.Provider},
		{A: "as51", B: "as30", RelAB: bgp.Provider},
	}
}

// QuaggaApp is a live BGP network: each node runs a Speaker reconciled on
// the harness tick loop, the stub announces one prefix and a tier-1
// another, and convergence is both reaching the far side of the valley-free
// export chain.
func QuaggaApp() App {
	rels := bgp.Relations(quaggaLinks())
	nodes := []types.NodeID{"as10", "as20", "as30", "as51"}
	speakers := make(map[types.NodeID]*bgp.Speaker, len(nodes))
	for _, id := range nodes {
		speakers[id] = bgp.NewSpeaker(id, rels[id])
	}
	hasRoute := func(h *Harness, at types.NodeID, prefix string) bool {
		var ok bool
		_ = h.With(at, func(n *core.Node) {
			for _, t := range n.Machine.(*dlog.Machine).TuplesOf("advRoute") {
				if t.Args[1].Str == prefix {
					ok = true
					return
				}
			}
		})
		return ok
	}
	var ticks int
	return App{
		Name:        "quagga",
		Nodes:       nodes,
		Compromised: []types.NodeID{"as30"},
		Factory:     bgp.Factory(),
		Start: func(h *Harness) error {
			if err := h.With("as51", func(n *core.Node) { speakers["as51"].Announce(n, "p51") }); err != nil {
				return err
			}
			return h.With("as20", func(n *core.Node) { speakers["as20"].Announce(n, "p20") })
		},
		Step: func(h *Harness) {
			// Reconcile every few ticks: Sync diffs desired exports against
			// proxy state, so extra calls are cheap but not free.
			if ticks++; ticks%4 != 0 {
				return
			}
			for _, id := range nodes {
				sp := speakers[id]
				_ = h.With(id, func(n *core.Node) { sp.Sync(n) })
			}
		},
		// p51 climbs as51 -> as30 -> as10 (customer routes export
		// everywhere); p20 descends as20 -> as30 -> as51 (provider routes
		// export to customers only). Both crossing as30 is what puts the
		// compromised node on the audit paths.
		Converged: func(h *Harness) bool {
			return hasRoute(h, "as10", "p51") && hasRoute(h, "as51", "p20")
		},
		ConfigureQuerier: func(q *core.Querier) {
			q.Auditor.Builder.MaybeValidator = bgp.ValidateExport
		},
	}
}
