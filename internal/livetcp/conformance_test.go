package livetcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/transport"
	"repro/internal/types"
)

// faultCase is one fault plan of the live conformance matrix. victim names
// the honest node the plan cuts off (empty when the plan degrades every
// link evenly); the invariant demands such a node surface as an
// unattributable lead, never as provable evidence.
type faultCase struct {
	name   string
	victim map[string]types.NodeID // per app
	rules  func(app App) []transport.FaultRule
	tcfg   func() *transport.Config
}

func liveFaultCases() []faultCase {
	return []faultCase{
		{
			name: "drop+delay",
			rules: func(App) []transport.FaultRule {
				return []transport.FaultRule{{
					From: "*", To: "*",
					Drop:     0.03,
					DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond,
					Reorder: 0.02,
				}}
			},
		},
		{
			name: "partition",
			// One-way partition of an honest node: everything sent to it —
			// data plane and audit retrievals alike — vanishes. Chosen so
			// its own announcements still propagate (outbound is open).
			victim: map[string]types.NodeID{"mincost": "d", "quagga": "as20"},
			rules: func(app App) []transport.FaultRule {
				victim := map[string]types.NodeID{"mincost": "d", "quagga": "as20"}[app.Name]
				return []transport.FaultRule{{From: "*", To: string(victim), Partition: true}}
			},
		},
		{
			name: "reset+slow-reader",
			rules: func(App) []transport.FaultRule {
				return []transport.FaultRule{{
					From: "*", To: "*",
					ResetEvery: 7,
					StallEvery: 9, StallFor: 600 * time.Millisecond,
				}}
			},
			tcfg: func() *transport.Config {
				cfg := transport.DefaultConfig()
				cfg.WriteTimeout = 250 * time.Millisecond // stalls must trip it
				cfg.RetryMax = 300 * time.Millisecond
				return &cfg
			},
		},
	}
}

// TestLiveConformance reruns the adversary conformance slice over loopback
// TCP under fault plans: tamper-log (a Provable behavior) armed on each
// app's compromised node, across 3 fault plans × 2 apps × 2 seeds. The
// §4.2 invariant, live form:
//
//   - provable evidence (audit failures, red hosts) never names an honest
//     node, no matter what the network does;
//   - the armed node is still provably exposed;
//   - honest nodes the plan makes unreachable degrade to the verdict's
//     Unresponsive tier — unattributable leads.
func TestLiveConformance(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, fc := range liveFaultCases() {
		for _, mkApp := range []func() App{MinCostApp, QuaggaApp} {
			for _, seed := range seeds {
				app := mkApp()
				t.Run(fmt.Sprintf("%s/%s/seed=%d", fc.name, app.Name, seed), func(t *testing.T) {
					runLiveCase(t, fc, mkApp(), seed)
				})
			}
		}
	}
}

func runLiveCase(t *testing.T, fc faultCase, app App, seed int64) {
	profile, ok := adversary.ProfileByName("tamper-log")
	if !ok {
		t.Fatal("tamper-log profile missing from catalog")
	}
	plan := adversary.Plan{}
	for _, id := range app.Compromised {
		plan[id] = []adversary.Behavior{profile.New()}
	}
	opts := Options{
		Seed:               seed,
		Fault:              transport.NewFaultPlan(seed, fc.rules(app)...),
		OnNode:             plan.Hook(),
		AuditRetryDeadline: time.Second,
	}
	if fc.tcfg != nil {
		opts.Transport = fc.tcfg()
	}
	h, err := New(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Convergence is best-effort under faults: a plan may legitimately
	// keep updates from some node, but must never corrupt the verdict.
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Logf("note: %v (acceptable under plan %s)", err, fc.name)
	}
	h.Settle()

	q := h.NewQuerier()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(2*time.Second), 300*time.Millisecond)
	t.Logf("verdict: %v; unreachable: %v", v, q.Unreachable())

	// Accuracy, unconditionally: provable evidence only ever names the
	// compromised set.
	if accused := v.FalselyAccused(app.Compromised); len(accused) != 0 {
		t.Errorf("provable evidence implicates honest nodes %v\nfailures: %v\nred: %v",
			accused, v.Failures, v.RedHosts)
	}
	// Completeness: tamper-log is Provable — the armed node must be
	// exposed by hard evidence even on a faulty network.
	bad := map[types.NodeID]bool{}
	for _, id := range app.Compromised {
		bad[id] = true
	}
	exposed := false
	for _, id := range v.StrongNodes() {
		if bad[id] {
			exposed = true
		}
	}
	if !exposed {
		t.Errorf("tamper-log on %v yielded no provable evidence: %v", app.Compromised, v)
	}
	// Degradation: a partitioned honest node is a lead, not a suspect.
	if victim := fc.victim[app.Name]; victim != "" {
		if _, lead := v.Unresponsive[victim]; !lead {
			t.Errorf("partitioned node %s missing from the unresponsive tier: %v", victim, v)
		}
		for _, id := range v.StrongNodes() {
			if id == victim {
				t.Errorf("partitioned honest node %s in the provable tier", victim)
			}
		}
	}
	if stats := h.Cluster.Stats(); stats.FramesSent == 0 {
		t.Error("no frames crossed the wire — the run did not exercise TCP")
	}
}

// TestLiveHonestBaseline runs the drop+delay plan with no adversary at
// all: lossy networking alone must never produce provable evidence
// against anyone (the no-false-alarm half of accuracy). Missing-ack
// notes and yellow vertices are expected — that is what graceful
// degradation looks like.
func TestLiveHonestBaseline(t *testing.T) {
	app := MinCostApp()
	h, err := New(app, Options{
		Seed: 7,
		Fault: transport.NewFaultPlan(7, transport.FaultRule{
			From: "*", To: "*",
			Drop:     0.05,
			DelayMin: time.Millisecond, DelayMax: 8 * time.Millisecond,
		}),
		AuditRetryDeadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Logf("note: %v", err)
	}
	h.Settle()
	q := h.NewQuerier()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(2*time.Second), 300*time.Millisecond)
	if len(v.Failures) != 0 || len(v.RedHosts) != 0 {
		t.Errorf("honest lossy run produced provable evidence: %v\nfailures: %v", v, v.Failures)
	}
	if len(v.Unresponsive) != 0 {
		t.Errorf("every node serves audits, none should be unresponsive: %v", v.Unresponsive)
	}
}

// TestLiveQuerierDegradation pins the query-level view of a partition: an
// Explain that needs an unreachable node's log must return yellow
// boundary vertices (with Unreachable recording why), never red, and
// ForgetUnreachable + a healed network must upgrade the same query.
func TestLiveQuerierDegradation(t *testing.T) {
	app := MinCostApp()
	fault := transport.NewFaultPlan(3, transport.FaultRule{
		From: "auditor", To: "d", Partition: true,
	})
	h, err := New(app, Options{Seed: 3, Fault: fault, AuditRetryDeadline: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Fatal(err) // only the audit link is cut; the workload must converge
	}
	h.Settle()

	q := h.NewQuerier()
	if err := q.EnsureAudited("d", 0); err == nil {
		t.Fatal("audit of a partitioned node succeeded")
	}
	unreachable := q.Unreachable()
	if _, ok := unreachable["d"]; !ok {
		t.Fatalf("d missing from Unreachable: %v", unreachable)
	}
	if err := q.EnsureAudited("c", 0); err != nil {
		t.Fatalf("audit of reachable node failed: %v", err)
	}

	// Heal the partition (a fresh fetcher dials outside the plan's rule
	// by using a different querier identity) and retry.
	q.ForgetUnreachable("d")
	if _, ok := q.Unreachable()["d"]; ok {
		t.Fatal("ForgetUnreachable left d marked")
	}
	f2 := h.Cluster.NewFetcher("auditor2")
	defer f2.Close()
	q.Fetch = f2
	if err := q.EnsureAudited("d", 0); err != nil {
		t.Fatalf("audit after heal failed: %v", err)
	}
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain after heal: %v", err)
	}
	if reds := expl.FindColor(provgraph.Red); len(reds) != 0 {
		t.Errorf("red vertices on an honest run after heal:\n%s", expl.Format())
	}
}
