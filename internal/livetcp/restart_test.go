package livetcp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/transport"
	"repro/internal/types"
)

// TestLiveRestartRecovery kills a served node mid-run, reopens its on-disk
// log through the recovery path, rejoins it to the cluster on a fresh port,
// and verifies (1) the recovered log head is bit-identical to the head at
// the crash, (2) work spanning the restart completes — the peers' reconnect
// backoff finds the new listener — and (3) a full audit spanning the
// restart yields zero provable evidence: an honest crash is not a fault.
func TestLiveRestartRecovery(t *testing.T) {
	app := MinCostApp()
	h, err := New(app, Options{Seed: 11, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Fatal(err)
	}
	// Quiesce so the crash has a clean cut: every pre-restart exchange
	// fully acked (in-flight commitment state does not survive a crash and
	// would surface as missing-ack leads, which this test wants zero of).
	h.Settle()

	head, err := h.HeadHash("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Restart("d"); err != nil {
		t.Fatal(err)
	}
	var recovered []byte
	if err := h.With("d", func(n *core.Node) {
		recovered = append([]byte(nil), n.Log.HeadHash()...)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, recovered) {
		t.Fatalf("recovered log head differs:\n pre-crash %x\n recovered %x", head, recovered)
	}

	// Post-restart work: a cheaper b—d link drops bestCost(c,d) to 4,
	// which c can only learn if d's restarted node exchanges messages
	// with both peers again.
	for _, ins := range []struct {
		at  types.NodeID
		tup types.Tuple
	}{
		{"d", mincost.Link("d", "b", 2)},
		{"b", mincost.Link("b", "d", 2)},
	} {
		if err := h.With(ins.at, func(n *core.Node) { n.InsertBase(ins.tup) }); err != nil {
			t.Fatal(err)
		}
	}
	probe := func() bool {
		var ok bool
		_ = h.With("c", func(n *core.Node) {
			ok = n.Machine.(*dlog.Machine).Lookup(mincost.BestCost("c", "d", 4))
		})
		return ok
	}
	if err := h.RunUntil(probe, 8*time.Second); err != nil {
		t.Fatalf("post-restart convergence: %v (stats %+v)", err, h.Cluster.Stats())
	}
	h.Settle()

	q := h.NewQuerier()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(2*time.Second), 300*time.Millisecond)
	if len(v.Failures) != 0 || len(v.RedHosts) != 0 {
		t.Errorf("audit spanning an honest restart produced provable evidence: %v\nfailures: %v",
			v, v.Failures)
	}
	if len(v.Unresponsive) != 0 {
		t.Errorf("rejoined node should answer audits: %v", v.Unresponsive)
	}
	if len(v.Notes) != 0 {
		t.Errorf("quiesced restart should leave no missing-ack reports: %v", v.Notes)
	}
	if stats := h.Cluster.Stats(); stats.Reconnects == 0 {
		t.Errorf("peers never reconnected to the restarted node (stats %+v)", stats)
	}
}

// TestLiveRestartMidFlight restarts a node without quiescing first, with
// lossy links on top: whatever commitment state the crash destroys, the
// recovery path must convert it into maintainer reports (leads) — the
// audit may see missing acks but never provable evidence against the
// honest crashed node.
func TestLiveRestartMidFlight(t *testing.T) {
	app := MinCostApp()
	h, err := New(app, Options{
		Seed:   13,
		LogDir: t.TempDir(),
		Fault: transport.NewFaultPlan(13, transport.FaultRule{
			From: "*", To: "*", Drop: 0.05,
			DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond,
		}),
		AuditRetryDeadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Run briefly — long enough for traffic, not long enough to drain —
	// then pull the plug on d with exchanges still in flight.
	h.RunFor(300 * time.Millisecond)
	if err := h.Restart("d"); err != nil {
		t.Fatal(err)
	}
	if err := h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second); err != nil {
		t.Logf("note: %v", err)
	}
	h.Settle()

	q := h.NewQuerier()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(2*time.Second), 300*time.Millisecond)
	t.Logf("verdict: %v", v)
	if len(v.Failures) != 0 || len(v.RedHosts) != 0 {
		t.Errorf("mid-flight restart of an honest node produced provable evidence: %v\nfailures: %v",
			v, v.Failures)
	}
}
