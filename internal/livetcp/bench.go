package livetcp

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/transport"
	"repro/internal/types"
)

// BenchRow is one live-TCP detection run: an app under one fault plan with
// tamper-log armed on its compromised node, audited over the wire.
type BenchRow struct {
	App       string
	Plan      string
	Converged bool
	// ConvergeTime is how long the workload took to reach its fixpoint
	// probe (capped at the bench timeout when the plan prevents it).
	ConvergeTime time.Duration
	// DetectLatency is the wall time of the audit phase: from the first
	// retrieve call until the verdict carries provable evidence against
	// the armed node — the metric a paper-style "time to detection over a
	// real network" table reports.
	DetectLatency time.Duration
	Detected      bool
	FalseAccused  int
	Unresponsive  int
	Stats         transport.Stats
}

// String renders the row as one table line.
func (r BenchRow) String() string {
	conv := "converged"
	if !r.Converged {
		conv = "partial"
	}
	return fmt.Sprintf("%-8s %-18s %-9s converge=%-8s detect=%-8s detected=%-5v false-acc=%d unresponsive=%d frames=%d drops=%d reconnects=%d",
		r.App, r.Plan, conv,
		r.ConvergeTime.Round(time.Millisecond),
		r.DetectLatency.Round(time.Millisecond),
		r.Detected, r.FalseAccused, r.Unresponsive,
		r.Stats.FramesSent, r.Stats.Dropped(), r.Stats.Reconnects)
}

// benchPlan is one fault plan of the bench matrix, mirroring the
// conformance suite's three shapes.
type benchPlan struct {
	name   string
	victim map[string]types.NodeID
	rules  func(app App) []transport.FaultRule
	tcfg   func() *transport.Config
}

func benchPlans() []benchPlan {
	victims := map[string]types.NodeID{"mincost": "d", "quagga": "as20"}
	return []benchPlan{
		{
			name: "none",
			rules: func(App) []transport.FaultRule { return nil },
		},
		{
			name: "drop+delay",
			rules: func(App) []transport.FaultRule {
				return []transport.FaultRule{{
					From: "*", To: "*",
					Drop:     0.03,
					DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond,
					Reorder: 0.02,
				}}
			},
		},
		{
			name:   "partition",
			victim: victims,
			rules: func(app App) []transport.FaultRule {
				return []transport.FaultRule{{From: "*", To: string(victims[app.Name]), Partition: true}}
			},
		},
		{
			name: "reset+slow-reader",
			rules: func(App) []transport.FaultRule {
				return []transport.FaultRule{{
					From: "*", To: "*",
					ResetEvery: 7,
					StallEvery: 9, StallFor: 600 * time.Millisecond,
				}}
			},
			tcfg: func() *transport.Config {
				cfg := transport.DefaultConfig()
				cfg.WriteTimeout = 250 * time.Millisecond
				cfg.RetryMax = 300 * time.Millisecond
				return &cfg
			},
		},
	}
}

// Bench runs the live-TCP detection scenario: tamper-log armed on each
// app's compromised node, across the fault-plan matrix, reporting
// convergence time and detection latency per run. It is the wall-clock
// companion to the simulator's adversary scenarios — same invariant
// (detected, zero false accusations), measured over loopback TCP.
func Bench(seed int64) ([]BenchRow, error) {
	profile, ok := adversary.ProfileByName("tamper-log")
	if !ok {
		return nil, fmt.Errorf("livetcp: tamper-log profile missing from catalog")
	}
	var rows []BenchRow
	for _, bp := range benchPlans() {
		for _, mkApp := range []func() App{MinCostApp, QuaggaApp} {
			app := mkApp()
			row, err := benchOne(app, bp, profile, seed)
			if err != nil {
				return nil, fmt.Errorf("livetcp: %s under %s: %w", app.Name, bp.name, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func benchOne(app App, bp benchPlan, profile adversary.Profile, seed int64) (BenchRow, error) {
	plan := adversary.Plan{}
	for _, id := range app.Compromised {
		plan[id] = []adversary.Behavior{profile.New()}
	}
	opts := Options{
		Seed:               seed,
		Fault:              transport.NewFaultPlan(seed, bp.rules(app)...),
		OnNode:             plan.Hook(),
		AuditRetryDeadline: time.Second,
	}
	if bp.tcfg != nil {
		opts.Transport = bp.tcfg()
	}
	h, err := New(app, opts)
	if err != nil {
		return BenchRow{}, err
	}
	defer h.Close()

	row := BenchRow{App: app.Name, Plan: bp.name}
	start := time.Now()
	err = h.RunUntil(func() bool { return app.Converged(h) }, 8*time.Second)
	row.ConvergeTime = time.Since(start)
	row.Converged = err == nil
	h.Settle()

	q := h.NewQuerier()
	auditStart := time.Now()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(2*time.Second), 300*time.Millisecond)
	row.DetectLatency = time.Since(auditStart)
	row.Detected = v.Detected(app.Compromised)
	row.FalseAccused = len(v.FalselyAccused(app.Compromised))
	row.Unresponsive = len(v.Unresponsive)
	row.Stats = h.Cluster.Stats()
	return row, nil
}
