// Package livetcp runs SNP deployments over real loopback TCP — wall-clock
// time, genuine sockets, optional injected network faults — and audits them
// with the remote (wire-level) audit path. It is the bridge between the
// deterministic simulator, where the §4.2 detection guarantee is pinned
// exhaustively, and a deployment where connections reset, peers stall, and
// processes restart: the conformance tests in this package re-assert the
// guarantee's live form, and snp-bench's livetcp figure measures detection
// latency over it.
package livetcp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/transport"
	"repro/internal/types"
)

// App is one live workload: the node set, how to start and drive it, and
// how to probe convergence. Unlike the simulator apps, everything runs on
// the wall clock — Step is invoked on every harness tick, and Converged is
// polled under a deadline (best-effort under lossy fault plans: a fault
// plan is allowed to keep a workload from converging, but never to turn
// honest nodes into provable suspects).
type App struct {
	Name        string
	Nodes       []types.NodeID
	Compromised []types.NodeID
	Factory     types.MachineFactory

	// Start seeds the workload once every node is serving.
	Start func(h *Harness) error
	// Step drives periodic application work (e.g. BGP reconciliation) on
	// each tick, before the nodes' protocol Tick. May be nil.
	Step func(h *Harness)
	// Converged probes whether the workload reached its goal state.
	Converged func(h *Harness) bool
	// ConfigureQuerier installs app-specific audit hooks (BGP's maybe-rule
	// validator). May be nil.
	ConfigureQuerier func(q *core.Querier)
}

// Options configures a live run. Zero values select defaults tuned for
// loopback: Tprop well above scheduling noise but small enough to keep
// missed-ack settling fast.
type Options struct {
	// Seed drives key generation, the transport's jitter streams, and the
	// fault plan (runs with equal Seed and Fault rules make identical
	// per-link fault decision sequences).
	Seed int64
	// Fault, when non-nil, injects network faults on every link.
	Fault *transport.FaultPlan
	// Tprop is the commitment protocol's propagation bound in wall time
	// (default 400ms); DeltaClock the skew bound (default Tprop/2 — all
	// nodes share the machine clock, the margin absorbs injected delays).
	Tprop      time.Duration
	DeltaClock time.Duration
	// TickEvery is the harness tick period (default 10ms).
	TickEvery time.Duration
	// OnNode arms adversary behaviors (adversary.Plan.Hook) on each node
	// before it starts serving. May be nil.
	OnNode func(*core.Node)
	// LogDir, when set, backs every node's log with an on-disk segment
	// store there (required for Restart).
	LogDir string
	// Transport overrides the transport config (Seed and Fault are still
	// taken from this Options).
	Transport *transport.Config
	// AuditCallTimeout / AuditRetryDeadline bound the remote audit path:
	// per-attempt and total per-call budgets (defaults 500ms / 2s — an
	// unreachable peer costs at most the deadline per logical call).
	AuditCallTimeout   time.Duration
	AuditRetryDeadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.Tprop <= 0 {
		o.Tprop = 400 * time.Millisecond
	}
	if o.DeltaClock <= 0 {
		o.DeltaClock = o.Tprop / 2
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 10 * time.Millisecond
	}
	if o.AuditCallTimeout <= 0 {
		o.AuditCallTimeout = 500 * time.Millisecond
	}
	if o.AuditRetryDeadline <= 0 {
		o.AuditRetryDeadline = 2 * time.Second
	}
	return o
}

// Harness is one running live deployment.
type Harness struct {
	App     App
	Opts    Options
	Cluster *transport.Cluster
	Cfg     core.Config
	Dir     *core.Directory
	Maint   *core.Maintainer

	keys     map[types.NodeID]cryptoutil.PrivateKey
	nodes    map[types.NodeID]*core.Node
	fetchers []*transport.RemoteFetcher
}

// New builds the deployment: a TCP cluster on loopback, one node per
// App.Nodes entry (armed via Options.OnNode before serving), and the
// workload seeded via App.Start.
func New(app App, opts Options) (*Harness, error) {
	opts = opts.withDefaults()
	tcfg := transport.DefaultConfig()
	if opts.Transport != nil {
		tcfg = *opts.Transport
	}
	tcfg.Seed = opts.Seed
	tcfg.Fault = opts.Fault

	cfg := core.DefaultConfig()
	cfg.Tprop = types.Time(opts.Tprop)
	cfg.DeltaClock = types.Time(opts.DeltaClock)
	cfg.CheckpointEvery = 0
	cfg.LogDir = opts.LogDir

	h := &Harness{
		App:     app,
		Opts:    opts,
		Cluster: transport.NewClusterWith(tcfg),
		Cfg:     cfg,
		Dir:     core.NewDirectory(),
		Maint:   core.NewMaintainer(),
		keys:    make(map[types.NodeID]cryptoutil.PrivateKey),
		nodes:   make(map[types.NodeID]*core.Node),
	}
	// All in-process nodes share one maintainer; exporting it over the
	// notes RPC lets out-of-process auditors (the query frontend) merge
	// the §5.4 missing-ack shield before scoring evidence.
	h.Cluster.SetMaintainer(h.Maint)
	for i, id := range app.Nodes {
		key, err := cryptoutil.PooledKey(cfg.Suite, opts.Seed*1000+int64(100+i))
		if err != nil {
			h.Close()
			return nil, err
		}
		h.keys[id] = key
		h.Dir.Register(id, key.Public())
	}
	for _, id := range app.Nodes {
		if err := h.startNode(id, false); err != nil {
			h.Close()
			return nil, err
		}
	}
	if app.Start != nil {
		if err := app.Start(h); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

func (h *Harness) startNode(id types.NodeID, recover bool) error {
	cfg := h.Cfg
	cfg.LogRecover = recover
	node, err := core.NewNode(id, cfg, h.keys[id], h.Dir, h.Maint,
		transport.WallClock{}, h.Cluster, h.App.Factory(id))
	if err != nil {
		return err
	}
	if h.Opts.OnNode != nil {
		h.Opts.OnNode(node)
	}
	if _, err := h.Cluster.Serve(node, "127.0.0.1:0"); err != nil {
		return err
	}
	h.nodes[id] = node
	return nil
}

// With runs fn on a node under the cluster's serialization lock.
func (h *Harness) With(id types.NodeID, fn func(*core.Node)) error {
	return h.Cluster.With(id, fn)
}

// tick runs one harness step: application work, then every node's
// protocol Tick (batching, retransmission, missed-ack notification).
func (h *Harness) tick() {
	if h.App.Step != nil {
		h.App.Step(h)
	}
	_ = h.Cluster.TickAll()
}

// RunFor drives the deployment for d of wall time.
func (h *Harness) RunFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		h.tick()
		time.Sleep(h.Opts.TickEvery)
	}
}

// RunUntil drives the deployment until probe returns true or the timeout
// passes; the timeout is an error only if fatal is wanted by the caller.
func (h *Harness) RunUntil(probe func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if probe() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livetcp: %s did not converge within %v", h.App.Name, timeout)
		}
		h.tick()
		time.Sleep(h.Opts.TickEvery)
	}
}

// Settle keeps ticking long enough for every in-flight exchange to resolve
// — delivered and acked, or retransmitted and finally reported to the
// maintainer (which takes 2·Tprop). Auditing before this window closes
// would see honest nodes with unacked sends the maintainer has not been
// told about yet, which the finalizer would have to treat as provable
// evidence; after it, such sends are at worst unattributable leads.
func (h *Harness) Settle() {
	h.RunFor(5*h.Opts.Tprop/2 + 200*time.Millisecond)
}

// NewQuerier builds an audit session over the remote (TCP) audit path. The
// querier's retrieve calls dial the nodes like any external auditor would,
// so fault plans apply to audit traffic too ("auditor" is the dialing
// identity fault rules see).
func (h *Harness) NewQuerier() *core.Querier {
	f := h.Cluster.NewFetcher("auditor")
	f.CallTimeout = h.Opts.AuditCallTimeout
	f.RetryDeadline = h.Opts.AuditRetryDeadline
	h.fetchers = append(h.fetchers, f)
	auditor := core.NewAuditor(h.Cfg, h.Dir, h.App.Factory, h.Maint)
	q := core.NewQuerier(auditor, f)
	if h.App.ConfigureQuerier != nil {
		h.App.ConfigureQuerier(q)
	}
	return q
}

// Restart crash-restarts a node: stop serving (draining in-flight
// handlers), close its log store, then reopen the store through the
// recovery path and rejoin the cluster on a fresh port. Requires
// Options.LogDir. The rest of the cluster keeps running throughout and
// reconnects via the transport's backoff path.
func (h *Harness) Restart(id types.NodeID) error {
	if h.Opts.LogDir == "" {
		return fmt.Errorf("livetcp: Restart(%s) needs Options.LogDir", id)
	}
	node, ok := h.nodes[id]
	if !ok {
		return fmt.Errorf("livetcp: no node %s", id)
	}
	if err := h.Cluster.StopNode(id); err != nil {
		return err
	}
	if err := node.Log.Close(); err != nil {
		return err
	}
	return h.startNode(id, true)
}

// HeadHash returns a node's current log head (flushing the store first),
// for restart-recovery assertions.
func (h *Harness) HeadHash(id types.NodeID) ([]byte, error) {
	var head []byte
	var syncErr error
	err := h.With(id, func(n *core.Node) {
		syncErr = n.Log.Sync()
		head = append([]byte(nil), n.Log.HeadHash()...)
	})
	if err != nil {
		return nil, err
	}
	return head, syncErr
}

// Close tears the deployment down: audit fetchers first, then the cluster
// (listeners, links, in-flight handlers).
func (h *Harness) Close() {
	for _, f := range h.fetchers {
		f.Close()
	}
	h.Cluster.Close()
}
