package seclog

import (
	"bytes"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

// BelievedRecord names one remote origin whose +τ supports an item.
type BelievedRecord struct {
	Origin types.NodeID
	Since  types.Time
}

// ExtantItem is one tuple recorded in a checkpoint: the tuple, when it
// appeared, whether it exists locally (vs. only being believed), and which
// peers it is believed from (§5.6: checkpoints must include all extant or
// believed tuples and, for each, the time it appeared).
type ExtantItem struct {
	Tuple    types.Tuple
	Appeared types.Time
	Local    bool
	Believed []BelievedRecord
}

// MarshalWire implements wire.Marshaler.
func (it ExtantItem) MarshalWire(w *wire.Writer) {
	it.Tuple.MarshalWire(w)
	w.Int(int64(it.Appeared))
	w.Bool(it.Local)
	w.Uint(uint64(len(it.Believed)))
	for _, b := range it.Believed {
		w.String(string(b.Origin))
		w.Int(int64(b.Since))
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (it *ExtantItem) UnmarshalWire(r *wire.Reader) error {
	if err := it.Tuple.UnmarshalWire(r); err != nil {
		return err
	}
	it.Appeared = types.Time(r.Int())
	it.Local = r.Bool()
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	it.Believed = make([]BelievedRecord, n)
	for i := range it.Believed {
		it.Believed[i].Origin = types.NodeID(r.String())
		it.Believed[i].Since = types.Time(r.Int())
	}
	return r.Err()
}

// Checkpoint is a snapshot of a node's state (§5.6). The hash chain commits
// only to the digests (StateHash, Root, N); the bulky payload (MachineState
// and Items) travels out of band and is verified against the digests, which
// is what makes Merkle-authenticated *partial* checkpoint downloads
// possible (§7.7).
type Checkpoint struct {
	StateHash []byte // H(MachineState)
	Root      []byte // Merkle root over encoded Items
	N         uint64 // number of items

	MachineState []byte
	Items        []ExtantItem
}

// BuildCheckpoint assembles a checkpoint and computes its digests.
func BuildCheckpoint(suite cryptoutil.Suite, stats *cryptoutil.Stats,
	machineState []byte, items []ExtantItem) *Checkpoint {
	leaves := make([][]byte, len(items))
	for i, it := range items {
		leaves[i] = wire.Encode(it)
		stats.CountHash(len(leaves[i]))
	}
	stats.CountHash(len(machineState))
	return &Checkpoint{
		StateHash:    suite.Hash(machineState),
		Root:         MerkleRoot(suite, leaves),
		N:            uint64(len(items)),
		MachineState: machineState,
		Items:        items,
	}
}

// VerifyFull recomputes the digests from the payload.
func (c *Checkpoint) VerifyFull(suite cryptoutil.Suite, stats *cryptoutil.Stats) error {
	stats.CountHash(len(c.MachineState))
	if !bytes.Equal(suite.Hash(c.MachineState), c.StateHash) {
		return fmt.Errorf("seclog: checkpoint machine state does not match digest")
	}
	if uint64(len(c.Items)) != c.N {
		return fmt.Errorf("seclog: checkpoint has %d items, committed to %d", len(c.Items), c.N)
	}
	leaves := make([][]byte, len(c.Items))
	for i, it := range c.Items {
		leaves[i] = wire.Encode(it)
		stats.CountHash(len(leaves[i]))
	}
	if !bytes.Equal(MerkleRoot(suite, leaves), c.Root) {
		return fmt.Errorf("seclog: checkpoint items do not match Merkle root")
	}
	return nil
}

// ItemProof returns item i with its Merkle proof, for partial retrieval.
func (c *Checkpoint) ItemProof(suite cryptoutil.Suite, i int) (ExtantItem, [][]byte, error) {
	if i < 0 || i >= len(c.Items) {
		return ExtantItem{}, nil, fmt.Errorf("seclog: no checkpoint item %d", i)
	}
	leaves := make([][]byte, len(c.Items))
	for j, it := range c.Items {
		leaves[j] = wire.Encode(it)
	}
	proof, err := MerkleProof(suite, leaves, i)
	if err != nil {
		return ExtantItem{}, nil, err
	}
	return c.Items[i], proof, nil
}

// VerifyItem checks a partial-checkpoint item against the committed root.
func (c *Checkpoint) VerifyItem(suite cryptoutil.Suite, it ExtantItem, i int, proof [][]byte) bool {
	return MerkleVerify(suite, c.Root, wire.Encode(it), i, proof)
}

// MarshalWire implements wire.Marshaler (full transmission form).
func (c *Checkpoint) MarshalWire(w *wire.Writer) {
	w.BytesField(c.StateHash)
	w.BytesField(c.Root)
	w.Uint(c.N)
	w.BytesField(c.MachineState)
	w.Uint(uint64(len(c.Items)))
	for _, it := range c.Items {
		it.MarshalWire(w)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (c *Checkpoint) UnmarshalWire(r *wire.Reader) error {
	c.StateHash = r.BytesField()
	c.Root = r.BytesField()
	c.N = r.Uint()
	c.MachineState = r.BytesField()
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	c.Items = make([]ExtantItem, n)
	for i := range c.Items {
		if err := c.Items[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// digestMarshal writes only the digest fields (what the hash chain commits
// to).
func (c *Checkpoint) digestMarshal(w *wire.Writer) {
	w.BytesField(c.StateHash)
	w.BytesField(c.Root)
	w.Uint(c.N)
}
