// CacheStore is a content-addressed chunk cache built on the same immutable
// table files as the segment store: records are (address, payload) pairs
// packed into mmap'd .tbl files, pinned by a small manifest. It backs the
// persistent incremental-audit cache — payloads are prepared-audit op
// streams keyed by segment hash — but knows nothing about audits itself.
//
// Unlike the log store, the cache is lossy by design: a torn manifest, a
// corrupt table, or a crash between sealing and the manifest swap loses
// entries, never correctness — a missing entry is a cache miss and the
// caller recomputes. That allowance keeps every failure path simple: skip
// what does not verify, delete what is not referenced.
package seclog

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

var cacheMetaMagic = []byte("SNPACH1\n")

const (
	// cacheSealLimit is the staged-bytes threshold at which Put seals the
	// staged entries into a table file.
	cacheSealLimit = 1 << 18
	// cacheFoldAt is the table count past which a seal also folds every
	// table into one.
	cacheFoldAt = 6
)

// cacheRef locates one committed record: the table that holds it and its
// assigned sequence in that table.
type cacheRef struct {
	table int
	seq   uint64
}

// CacheStore is a durable address→payload cache. All methods are safe for
// concurrent use.
type CacheStore struct {
	mu    sync.Mutex
	dir   string
	name  types.NodeID // namespaces the table files within dir
	suite cryptoutil.Suite

	tables []*tableFile
	index  map[string]cacheRef // addr hex -> committed location
	staged map[string][]byte   // addr hex -> payload, not yet sealed
	addrOf map[string][]byte   // addr hex -> addr bytes (staged only)
	bytes  int64               // staged payload bytes

	sealLimit int64
	foldAt    int
}

// OpenCacheStore opens (or creates) the cache rooted at dir. Table files it
// cannot verify and files the manifest does not reference are removed; both
// only ever cost cache misses.
func OpenCacheStore(dir string, name types.NodeID, suite cryptoutil.Suite) (*CacheStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seclog: cache dir: %w", err)
	}
	c := &CacheStore{
		dir: dir, name: name, suite: suite,
		index:  make(map[string]cacheRef),
		staged: make(map[string][]byte),
		addrOf: make(map[string][]byte),

		sealLimit: cacheSealLimit,
		foldAt:    cacheFoldAt,
	}
	want, err := readCacheMeta(filepath.Join(dir, c.metaName()))
	if err != nil {
		return nil, err
	}
	names, err := listTableFiles(dir, name, suite.HashSize())
	if err != nil {
		return nil, err
	}
	referenced := make(map[string]bool)
	for _, h := range want {
		path := filepath.Join(dir, tableFileName(name, h))
		referenced[filepath.Base(path)] = true
		t, err := openTable(path, name, suite, h)
		if err != nil {
			continue // lost or corrupt: those entries are misses now
		}
		c.tables = append(c.tables, t)
	}
	for _, fn := range names {
		if !referenced[fn] {
			_ = os.Remove(filepath.Join(dir, fn))
		}
	}
	c.rebuildIndex()
	return c, nil
}

// metaName returns the manifest file name for this cache.
func (c *CacheStore) metaName() string {
	return tableFileName(c.name, nil) + "meta" // <name>..tblmeta
}

// rebuildIndex re-derives the addr→location map. Later tables win, so a
// re-Put of an address supersedes older copies once sealed.
func (c *CacheStore) rebuildIndex() {
	c.index = make(map[string]cacheRef)
	for ti, t := range c.tables {
		for seq := t.base; seq <= t.end(); seq++ {
			c.index[hex.EncodeToString(t.addr(seq))] = cacheRef{table: ti, seq: seq}
		}
	}
}

// Get returns a copy of the payload stored under addr, if any.
func (c *CacheStore) Get(addr []byte) ([]byte, bool) {
	k := hex.EncodeToString(addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.staged[k]; ok {
		return append([]byte(nil), p...), true
	}
	ref, ok := c.index[k]
	if !ok {
		return nil, false
	}
	rec := c.tables[ref.table].record(ref.seq)
	return append([]byte(nil), rec...), true
}

// Put stages payload under addr, superseding any previous entry. When the
// staged set grows past the seal threshold it is packed into a table file
// synchronously.
func (c *CacheStore) Put(addr, payload []byte) error {
	k := hex.EncodeToString(addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.staged[k]; ok {
		c.bytes -= int64(len(old))
	}
	c.staged[k] = append([]byte(nil), payload...)
	c.addrOf[k] = append([]byte(nil), addr...)
	c.bytes += int64(len(payload))
	if c.bytes >= c.sealLimit {
		return c.sealLocked()
	}
	return nil
}

// Sync seals any staged entries so they survive a crash.
func (c *CacheStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.staged) == 0 {
		return nil
	}
	return c.sealLocked()
}

// Close seals staged entries and unmaps every table.
func (c *CacheStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if len(c.staged) > 0 {
		err = c.sealLocked()
	}
	for _, t := range c.tables {
		if cerr := t.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.tables = nil
	c.index = nil
	return err
}

// sealLocked packs the staged entries into a new table, folding all tables
// into one when there are too many, and swaps the manifest. Commit order
// matches the log store — tables first, manifest second, deletions last —
// so a crash anywhere loses at most the entries being sealed.
func (c *CacheStore) sealLocked() error {
	fold := len(c.tables)+1 > c.foldAt
	// Assemble the records for the new table in deterministic order. When
	// folding, older tables contribute first so staged (newest) entries win
	// the address dedup.
	merged := make(map[string][]byte)
	addrs := make(map[string][]byte)
	var retire []*tableFile
	if fold {
		for _, t := range c.tables {
			for seq := t.base; seq <= t.end(); seq++ {
				k := hex.EncodeToString(t.addr(seq))
				merged[k] = t.record(seq)
				addrs[k] = t.addr(seq)
			}
		}
		retire = c.tables
	}
	for k, p := range c.staged {
		merged[k] = p
		addrs[k] = c.addrOf[k]
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]tableRecord, 0, len(keys))
	for _, k := range keys {
		recs = append(recs, tableRecord{addr: addrs[k], rec: merged[k], metered: int64(len(merged[k]))})
	}

	nt, err := writeTable(c.dir, c.name, c.suite, 1, nil, recs)
	if err != nil {
		return err
	}
	var next []*tableFile
	if !fold {
		next = append(next, c.tables...)
	}
	next = append(next, nt)
	if err := c.writeMetaFor(next); err != nil {
		_ = nt.close()
		return err
	}
	c.tables = next
	c.staged = make(map[string][]byte)
	c.addrOf = make(map[string][]byte)
	c.bytes = 0
	c.rebuildIndex()
	for _, t := range retire {
		if t.path == nt.path {
			continue // fold reproduced identical content in place
		}
		_ = t.close()
		_ = os.Remove(t.path)
	}
	return nil
}

// writeMetaFor atomically writes the manifest naming the given tables.
func (c *CacheStore) writeMetaFor(tables []*tableFile) error {
	w := wire.NewWriter(64)
	w.Raw(cacheMetaMagic)
	w.Uint(uint64(len(tables)))
	for _, t := range tables {
		w.BytesField(t.hash)
	}
	path := filepath.Join(c.dir, c.metaName())
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, w.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// decodeCacheMeta parses a cache manifest image into the ordered table hash
// list; ok is false for anything malformed (treated as an empty cache).
func decodeCacheMeta(raw []byte) ([][]byte, bool) {
	if len(raw) < len(cacheMetaMagic) || !bytes.Equal(raw[:len(cacheMetaMagic)], cacheMetaMagic) {
		return nil, false
	}
	r := wire.NewReader(raw[len(cacheMetaMagic):])
	n := r.Count()
	var hashes [][]byte
	for i := 0; i < n; i++ {
		h := r.BytesField()
		if len(h) == 0 {
			return nil, false
		}
		hashes = append(hashes, h)
	}
	if r.Finish() != nil {
		return nil, false
	}
	return hashes, true
}

func readCacheMeta(path string) ([][]byte, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("seclog: cache meta: %w", err)
	}
	hashes, _ := decodeCacheMeta(raw) // torn manifest = empty cache
	return hashes, nil
}
