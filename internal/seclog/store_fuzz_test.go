package seclog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

// fuzzTempDir returns a per-exec scratch directory on tmpfs when available.
// Open fsyncs the store it accepts, and at fuzzing rates those fsyncs hit
// real-block-device discard latency hard enough to stall workers for tens of
// seconds; tmpfs makes them free without changing what is tested.
func fuzzTempDir(t *testing.T) string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "seclog-fuzz-*")
		if err == nil {
			t.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return t.TempDir()
}

// FuzzStoreOpen drives crash recovery with arbitrary on-disk state: the
// .seglog data file and .segmeta sidecar are exactly what a crashed (or
// hostile) process leaves behind, so Open must never panic, whatever the
// bytes. When it does accept a store, every retained entry, hash, and
// segment must be servable without a panic either — recovery that admits a
// store vouches for it.
func FuzzStoreOpen(f *testing.F) {
	// Seed with real store images: a synced multi-entry store (checkpoint
	// included), plus truncated and doctored variants — the shapes a crash
	// mid-append or mid-sidecar-rewrite actually produces.
	dir := f.TempDir()
	key, err := testSuite.GenerateKey(1)
	if err != nil {
		f.Fatal(err)
	}
	live, err := NewStored(dir, "n1", testSuite, key, nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	fillBoth(nil, live, 12, 5)
	live.Truncate(3)
	if err := live.Close(); err != nil {
		f.Fatal(err)
	}
	seglog, err := os.ReadFile(filepath.Join(dir, storeFileName("n1")))
	if err != nil {
		f.Fatal(err)
	}
	segmeta, err := os.ReadFile(filepath.Join(dir, metaFileName("n1")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seglog, segmeta)
	f.Add(seglog, []byte{})
	f.Add(seglog[:len(seglog)-3], segmeta)          // torn data tail
	f.Add(seglog, segmeta[:len(segmeta)/2])         // torn sidecar
	f.Add(seglog[:len(seglog)/2], segmeta)          // lost synced entries
	f.Add(append([]byte(nil), storeMagic...), segmeta)
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, data, meta []byte) {
		fdir := fuzzTempDir(t)
		if err := os.WriteFile(filepath.Join(fdir, storeFileName("n1")), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if len(meta) > 0 {
			if err := os.WriteFile(filepath.Join(fdir, metaFileName("n1")), meta, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		l, err := Open(fdir, types.NodeID("n1"), testSuite, nil, nil, 0)
		if err != nil {
			return
		}
		defer l.Close()
		for seq := l.FirstSeq(); seq <= l.Len(); seq++ {
			if _, err := l.Entry(seq); err != nil {
				t.Fatalf("accepted store cannot serve entry %d: %v", seq, err)
			}
			if _, err := l.Hash(seq); err != nil {
				t.Fatalf("accepted store cannot serve hash %d: %v", seq, err)
			}
		}
		if l.Len() >= l.FirstSeq() {
			if _, err := l.Segment(l.FirstSeq(), l.Len()); err != nil {
				t.Fatalf("accepted store cannot serve its own segment: %v", err)
			}
		}
		_ = l.HeadHash()
		_ = l.RecoveredTornBytes()
	})
}
