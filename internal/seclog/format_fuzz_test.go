package seclog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/types"
	"repro/internal/wire"
)

// FuzzManifestDecode throws arbitrary bytes at the store manifest parser —
// the image is rewritten on every sync and a crash can leave anything
// behind, so decodeManifest must never panic and must only accept images
// whose structural invariants (non-empty contiguous tables ending at the
// tail base) actually hold. Accepted manifests must round-trip through
// encodeManifest bit-stably: the canonical re-encoding decodes to itself.
func FuzzManifestDecode(f *testing.F) {
	h := bytes.Repeat([]byte{0xa5}, 32)
	real := encodeManifest(&manifest{
		first: 1, firstHash: h, head: 12, headHash: h, gross: 512, tailBase: 9,
		tables: []manifestTable{{hash: h, base: 1, count: 4}, {hash: h, base: 5, count: 4}},
	})
	f.Add(real)
	f.Add(real[:len(real)-3])              // torn rewrite
	f.Add(append([]byte(nil), real[:8]...)) // magic only
	doctored := append([]byte(nil), real...)
	doctored[len(doctored)/2] ^= 0xff
	f.Add(doctored)
	// Hostile table count: claims 2^50 tables in a few dozen bytes.
	w := wire.NewWriter(64)
	w.Raw(metaMagic)
	w.Uint(1)
	w.BytesField(h)
	w.Uint(9)
	w.BytesField(h)
	w.Int(100)
	w.Uint(10)
	w.Uint(1 << 50)
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, ok := decodeManifest(raw)
		if !ok {
			return
		}
		enc := encodeManifest(m)
		m2, ok2 := decodeManifest(enc)
		if !ok2 {
			t.Fatalf("accepted manifest does not re-decode: %x", enc)
		}
		if !bytes.Equal(encodeManifest(m2), enc) {
			t.Fatalf("manifest re-encoding is not stable")
		}
		prevEnd := uint64(0)
		for i, tb := range m.tables {
			if tb.count == 0 || tb.base == 0 {
				t.Fatalf("accepted manifest has degenerate table %d: %+v", i, tb)
			}
			if i > 0 && tb.base != prevEnd+1 {
				t.Fatalf("accepted manifest has a table gap at %d", i)
			}
			prevEnd = tb.end()
		}
	})
}

// tableImage builds a real sealed-table file through the store and returns
// its bytes.
func tableImage(f *testing.F) []byte {
	dir := f.TempDir()
	key, err := testSuite.GenerateKey(1)
	if err != nil {
		f.Fatal(err)
	}
	l, err := NewStored(dir, "n1", testSuite, key, nil, 1)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		l.Append(insEntry(types.Time(i+1), "k", int64(i)))
	}
	l.SetStoreTuning(1, 1<<20)
	if err := l.Sync(); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), tableSuffix) {
			raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
			if err != nil {
				f.Fatal(err)
			}
			return raw
		}
	}
	f.Fatal("no table file sealed")
	return nil
}

// FuzzTableOpen drives the sealed-table parser with arbitrary bytes. The
// content-address check is satisfied for every input (wantHash is the hash
// of the fuzzed bytes) so the fuzzer reaches the header and index decoding
// behind it — the adversary-facing path, since a table file is whatever a
// crashed or hostile process left on disk. parseTable must never panic, and
// a table it accepts must serve every indexed record and address from
// within the mapped bytes.
func FuzzTableOpen(f *testing.F) {
	real := tableImage(f)
	f.Add(real)
	f.Add(real[:len(real)-5]) // torn tail
	doctored := append([]byte(nil), real...)
	doctored[len(doctored)/3] ^= 0x80
	f.Add(doctored)
	// Hostile record count in a minimal header.
	w := wire.NewWriter(128)
	w.Raw(tableMagic)
	w.String("n1")
	w.Uint(1)
	w.BytesField(make([]byte, 32))
	w.Uint(32)
	w.Int(100)
	w.Uint(0)
	w.Uint(1 << 50)
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := parseTable(data, "n1", testSuite, testSuite.Hash(data))
		if err != nil {
			return
		}
		for seq := tbl.base; seq <= tbl.end(); seq++ {
			rec := tbl.record(seq)
			if len(rec) == 0 {
				t.Fatalf("accepted table serves empty record %d", seq)
			}
			if len(tbl.addr(seq)) != testSuite.HashSize() {
				t.Fatalf("accepted table serves short address %d", seq)
			}
			// Record bytes need not decode (the index does not vouch for
			// entry encodings), but decoding must stay panic-free.
			_, _ = decodeTableEntry(tbl, seq)
		}
	})
}

// FuzzCacheMetaDecode covers the audit-cache manifest parser the same way:
// arbitrary bytes must never panic, anything accepted must be a non-empty
// list of non-empty table addresses, and rejection must be total (a torn
// cache manifest means an empty cache, never an error).
func FuzzCacheMetaDecode(f *testing.F) {
	w := wire.NewWriter(64)
	w.Raw(cacheMetaMagic)
	w.Uint(2)
	w.BytesField(bytes.Repeat([]byte{1}, 32))
	w.BytesField(bytes.Repeat([]byte{2}, 32))
	real := w.Bytes()
	f.Add(real)
	f.Add(real[:len(real)-7])
	w2 := wire.NewWriter(16)
	w2.Raw(cacheMetaMagic)
	w2.Uint(1 << 50) // hostile count
	f.Add(w2.Bytes())

	f.Fuzz(func(t *testing.T, raw []byte) {
		hashes, ok := decodeCacheMeta(raw)
		if !ok {
			return
		}
		for i, h := range hashes {
			if len(h) == 0 {
				t.Fatalf("accepted cache meta with empty address %d", i)
			}
		}
	})
}
