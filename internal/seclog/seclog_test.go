package seclog

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

var testSuite = cryptoutil.Ed25519SHA256

func testKey(t *testing.T, seed int64) cryptoutil.PrivateKey {
	t.Helper()
	k, err := testSuite.GenerateKey(seed)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func newTestLog(t *testing.T) *Log {
	t.Helper()
	return New("n1", testSuite, testKey(t, 1), nil)
}

func insEntry(at types.Time, rel string, k int64) *Entry {
	return &Entry{T: at, Type: EIns, Tuple: types.MakeTuple(rel, types.N("n1"), types.I(k))}
}

func sndEntry(at types.Time, seq uint64) *Entry {
	return &Entry{T: at, Type: ESnd, Msgs: []types.Message{{
		Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: types.MakeTuple("x", types.N("n2"), types.I(int64(seq))), SendTime: at, Seq: seq,
	}}}
}

func TestAppendAndAuthenticate(t *testing.T) {
	l := newTestLog(t)
	for i := 1; i <= 5; i++ {
		seq := l.Append(insEntry(types.Time(i), "a", int64(i)))
		if seq != uint64(i) {
			t.Fatalf("Append returned seq %d, want %d", seq, i)
		}
	}
	auth, err := l.Authenticator()
	if err != nil {
		t.Fatal(err)
	}
	if auth.Seq != 5 || auth.Node != "n1" {
		t.Errorf("auth = %+v", auth)
	}
	if !auth.Verify(l.key.Public()) {
		t.Error("authenticator does not verify")
	}
	// A different key must not verify it.
	if auth.Verify(testKey(t, 2).Public()) {
		t.Error("authenticator verified under wrong key")
	}
}

func TestSegmentVerify(t *testing.T) {
	l := newTestLog(t)
	for i := 1; i <= 10; i++ {
		l.Append(insEntry(types.Time(i), "a", int64(i)))
	}
	auth, err := l.Authenticator()
	if err != nil {
		t.Fatal(err)
	}
	seg, err := l.Segment(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	hashes, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hashes[9], auth.Hash) {
		t.Error("verified hashes do not end at the authenticator")
	}
}

func TestTamperedSegmentRejected(t *testing.T) {
	l := newTestLog(t)
	for i := 1; i <= 10; i++ {
		l.Append(insEntry(types.Time(i), "a", int64(i)))
	}
	auth, _ := l.Authenticator()
	seg, _ := l.Segment(1, 10)

	// Replace one entry: the chain must break.
	tampered := *seg
	tampered.Entries = append([]*Entry(nil), seg.Entries...)
	tampered.Entries[4] = insEntry(5, "a", 999)
	if _, err := tampered.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err == nil {
		t.Error("tampered entry accepted")
	}

	// Drop an entry: also rejected.
	dropped := *seg
	dropped.Entries = seg.Entries[:9]
	if _, err := dropped.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err == nil {
		t.Error("dropped entry accepted")
	}
}

func TestMidSegmentAuthenticator(t *testing.T) {
	l := newTestLog(t)
	for i := 1; i <= 10; i++ {
		l.Append(insEntry(types.Time(i), "a", int64(i)))
	}
	auth, err := l.AuthenticatorAt(7)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := l.Segment(1, 10)
	if _, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err != nil {
		t.Errorf("mid-segment authenticator rejected: %v", err)
	}
}

func TestSegmentFromOffset(t *testing.T) {
	l := newTestLog(t)
	for i := 1; i <= 10; i++ {
		l.Append(insEntry(types.Time(i), "a", int64(i)))
	}
	auth, _ := l.Authenticator()
	seg, err := l.Segment(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err != nil {
		t.Errorf("offset segment rejected: %v", err)
	}
	// Lying about the base hash must be caught.
	seg.BaseHash = testSuite.Hash([]byte("lie"))
	if _, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err == nil {
		t.Error("segment with forged base hash accepted")
	}
}

func TestTruncate(t *testing.T) {
	l := newTestLog(t)
	for i := 1; i <= 10; i++ {
		l.Append(insEntry(types.Time(i), "a", int64(i)))
	}
	headBefore := append([]byte(nil), l.HeadHash()...)
	auth, _ := l.Authenticator()
	l.Truncate(5)
	if l.FirstSeq() != 5 || l.Len() != 10 {
		t.Fatalf("after truncate: first=%d len=%d", l.FirstSeq(), l.Len())
	}
	if !bytes.Equal(l.HeadHash(), headBefore) {
		t.Error("truncate changed the head hash")
	}
	// Appending still continues the same chain.
	l.Append(insEntry(11, "a", 11))
	seg, err := l.Segment(5, 11)
	if err != nil {
		t.Fatal(err)
	}
	auth2, _ := l.Authenticator()
	if _, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth2); err != nil {
		t.Errorf("post-truncate segment rejected: %v", err)
	}
	if _, err := l.Segment(1, 10); err == nil {
		t.Error("truncated range served")
	}
	_ = auth
}

func TestEntryRoundTrip(t *testing.T) {
	entries := []*Entry{
		insEntry(5, "a", 1),
		{T: 6, Type: EDel, Tuple: types.MakeTuple("a", types.N("n1"), types.I(1))},
		sndEntry(7, 1),
		{T: 8, Type: ERcv, Msgs: sndEntry(7, 2).Msgs, PeerPrevHash: []byte{1, 2},
			PeerTime: 7, PeerSig: []byte{3, 4}, PeerSeq: 9},
		{T: 9, Type: EAck, AckIDs: []types.MessageID{{Src: "n1", Dst: "n2", Seq: 1}},
			PeerPrevHash: []byte{5}, PeerTime: 8, PeerSig: []byte{6}, PeerSeq: 11},
		{T: 10, Type: EIns, Tuple: types.MakeTuple("m", types.N("n1")),
			MaybeRule: "M", MaybeBody: []types.Tuple{types.MakeTuple("b", types.N("n1"))},
			Replaces: []types.Tuple{types.MakeTuple("m", types.N("n1"), types.I(0))}},
	}
	for _, e := range entries {
		buf := wire.Encode(e)
		var got Entry
		if err := wire.Decode(buf, &got); err != nil {
			t.Fatalf("%s: %v", e.Type, err)
		}
		if !bytes.Equal(wire.Encode(&got), buf) {
			t.Errorf("%s: round trip not stable", e.Type)
		}
	}
}

func TestCheckpointRoundTripAndVerify(t *testing.T) {
	items := []ExtantItem{
		{Tuple: types.MakeTuple("a", types.N("n1"), types.I(1)), Appeared: 3, Local: true},
		{Tuple: types.MakeTuple("b", types.N("n1")), Appeared: 4,
			Believed: []BelievedRecord{{Origin: "n2", Since: 4}}},
	}
	c := BuildCheckpoint(testSuite, nil, []byte("machine-state"), items)
	if err := c.VerifyFull(testSuite, nil); err != nil {
		t.Fatalf("fresh checkpoint does not verify: %v", err)
	}
	buf := wire.Encode(c)
	var got Checkpoint
	if err := wire.Decode(buf, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyFull(testSuite, nil); err != nil {
		t.Fatalf("decoded checkpoint does not verify: %v", err)
	}
	// Tampering with the payload must be detected.
	got.MachineState = []byte("evil-state")
	if err := got.VerifyFull(testSuite, nil); err == nil {
		t.Error("tampered machine state accepted")
	}
	got.MachineState = []byte("machine-state")
	got.Items[0].Appeared = 99
	if err := got.VerifyFull(testSuite, nil); err == nil {
		t.Error("tampered item accepted")
	}
}

func TestCheckpointPartialItems(t *testing.T) {
	var items []ExtantItem
	for i := int64(0); i < 13; i++ {
		items = append(items, ExtantItem{
			Tuple: types.MakeTuple("r", types.N("n1"), types.I(i)), Appeared: types.Time(i), Local: true,
		})
	}
	c := BuildCheckpoint(testSuite, nil, []byte("s"), items)
	for i := range items {
		it, proof, err := c.ItemProof(testSuite, i)
		if err != nil {
			t.Fatal(err)
		}
		if !c.VerifyItem(testSuite, it, i, proof) {
			t.Errorf("item %d proof rejected", i)
		}
		// A different item must not verify at this position.
		other := items[(i+1)%len(items)]
		if c.VerifyItem(testSuite, other, i, proof) {
			t.Errorf("wrong item accepted at position %d", i)
		}
	}
}

func TestCheckpointInChain(t *testing.T) {
	l := newTestLog(t)
	l.Append(insEntry(1, "a", 1))
	c := BuildCheckpoint(testSuite, nil, []byte("state"), nil)
	l.Append(&Entry{T: 2, Type: ECkpt, Ckpt: c})
	l.Append(insEntry(3, "a", 2))
	auth, _ := l.Authenticator()
	seg, _ := l.Segment(1, 3)
	if _, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err != nil {
		t.Fatalf("segment with checkpoint rejected: %v", err)
	}
	if got := l.LastCheckpointBefore(3); got != 2 {
		t.Errorf("LastCheckpointBefore(3) = %d, want 2", got)
	}
	if got := l.LastCheckpointBefore(1); got != 0 {
		t.Errorf("LastCheckpointBefore(1) = %d, want 0", got)
	}
}

func TestAuthSet(t *testing.T) {
	u := NewAuthSet()
	u.Add(Authenticator{Node: "a", Seq: 1, T: 10})
	u.Add(Authenticator{Node: "a", Seq: 3, T: 30})
	u.Add(Authenticator{Node: "b", Seq: 2, T: 20})
	if got := len(u.From("a")); got != 2 {
		t.Errorf("From(a) = %d", got)
	}
	latest, ok := u.Latest("a")
	if !ok || latest.Seq != 3 {
		t.Errorf("Latest(a) = %+v, %v", latest, ok)
	}
	in := u.FromInInterval("a", 5, 15)
	if len(in) != 1 || in[0].Seq != 1 {
		t.Errorf("FromInInterval = %v", in)
	}
	if _, ok := u.Latest("zz"); ok {
		t.Error("Latest of unknown node reported ok")
	}
}

func TestMerkleQuick(t *testing.T) {
	f := func(data [][]byte, idx uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		root := MerkleRoot(testSuite, data)
		proof, err := MerkleProof(testSuite, data, i)
		if err != nil {
			return false
		}
		return MerkleVerify(testSuite, root, data[i], i, proof)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrossBytesAccounting(t *testing.T) {
	l := newTestLog(t)
	e := insEntry(1, "a", 1)
	l.Append(e)
	if l.GrossBytes() != int64(e.WireSize()) {
		t.Errorf("GrossBytes = %d, want %d", l.GrossBytes(), e.WireSize())
	}
}
