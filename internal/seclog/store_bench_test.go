package seclog

import (
	"os"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

// benchAppend measures the store append path under a given write-buffer
// threshold, with one group Sync per syncEvery appends (the shape of a
// simulated run: many appends per node, one durable sync at the barrier).
// bufLimit 0 reproduces the pre-buffering behavior of one positioned write
// per record; storeBufLimit is the shipped configuration.
func benchAppend(b *testing.B, bufLimit, syncEvery int) {
	b.Helper()
	dir := b.TempDir()
	key, err := cryptoutil.PooledKey(testSuite, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewStored(dir, "bench", testSuite, key, nil, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	l.store.bufLimit = bufLimit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(insEntry(types.Time(i+1), "k", int64(i)))
		if (i+1)%syncEvery == 0 {
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := l.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreAppend compares the grouped (buffered) append path against
// the old per-record write behavior, at two sync cadences.
func BenchmarkStoreAppend(b *testing.B) {
	b.Run("buffered/sync=4096", func(b *testing.B) { benchAppend(b, storeBufLimit, 4096) })
	b.Run("unbuffered/sync=4096", func(b *testing.B) { benchAppend(b, 0, 4096) })
	b.Run("buffered/sync=256", func(b *testing.B) { benchAppend(b, storeBufLimit, 256) })
	b.Run("unbuffered/sync=256", func(b *testing.B) { benchAppend(b, 0, 256) })
}

// benchColdStore builds a store-backed log whose entries are all sealed
// into tables, with a tiny resident window so every read is cold.
func benchColdStore(b *testing.B, n int) *Log {
	b.Helper()
	dir := b.TempDir()
	key, err := cryptoutil.PooledKey(testSuite, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewStored(dir, "bench", testSuite, key, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		l.Append(insEntry(types.Time(i+1), "k", int64(i)))
	}
	// Seal everything appended so far into one table.
	if !l.SetStoreTuning(1, 1<<20) {
		b.Fatal("not store-backed")
	}
	if err := l.Sync(); err != nil {
		b.Fatal(err)
	}
	l.SetStoreTuning(1<<30, 1<<20)
	if l.StoreTables() == 0 {
		b.Fatal("nothing sealed")
	}
	b.Cleanup(func() { l.Close() })
	return l
}

// BenchmarkStoreColdRead compares the mmap'd cold-read path (Entry decoding
// straight out of the mapped table region) against the pread-per-entry
// behavior the store had before tables: one positioned read syscall plus a
// decode for every cold entry.
func BenchmarkStoreColdRead(b *testing.B) {
	const n = 4096
	b.Run("mmap", func(b *testing.B) {
		l := benchColdStore(b, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq := uint64(i%n) + 1
			if _, err := l.Entry(seq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pread", func(b *testing.B) {
		l := benchColdStore(b, n)
		tbl := l.store.tables[0]
		f, err := os.Open(tbl.path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 1<<12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq := uint64(i%n) + 1
			off, ln := tbl.offs[seq-tbl.base], tbl.lens[seq-tbl.base]
			if int(ln) > len(buf) {
				buf = make([]byte, ln)
			}
			if _, err := f.ReadAt(buf[:ln], off); err != nil {
				b.Fatal(err)
			}
			e := new(Entry)
			if err := wire.Decode(buf[:ln], e); err != nil {
				b.Fatal(err)
			}
		}
	})
}
