package seclog

import (
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/types"
)

// benchAppend measures the store append path under a given write-buffer
// threshold, with one group Sync per syncEvery appends (the shape of a
// simulated run: many appends per node, one durable sync at the barrier).
// bufLimit 0 reproduces the pre-buffering behavior of one positioned write
// per record; storeBufLimit is the shipped configuration.
func benchAppend(b *testing.B, bufLimit, syncEvery int) {
	b.Helper()
	dir := b.TempDir()
	key, err := cryptoutil.PooledKey(testSuite, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewStored(dir, "bench", testSuite, key, nil, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	l.store.bufLimit = bufLimit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(insEntry(types.Time(i+1), "k", int64(i)))
		if (i+1)%syncEvery == 0 {
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := l.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreAppend compares the grouped (buffered) append path against
// the old per-record write behavior, at two sync cadences.
func BenchmarkStoreAppend(b *testing.B) {
	b.Run("buffered/sync=4096", func(b *testing.B) { benchAppend(b, storeBufLimit, 4096) })
	b.Run("unbuffered/sync=4096", func(b *testing.B) { benchAppend(b, 0, 4096) })
	b.Run("buffered/sync=256", func(b *testing.B) { benchAppend(b, storeBufLimit, 256) })
	b.Run("unbuffered/sync=256", func(b *testing.B) { benchAppend(b, 0, 256) })
}
