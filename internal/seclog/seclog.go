// Package seclog implements SNooPy's tamper-evident log (§5.4): an
// append-only sequence of entries linked by a hash chain, from which a node
// can issue authenticators — signed commitments to its entire history up to
// an entry. Any two messages signed by the same node either lie on one
// chain or prove equivocation.
//
// Entry granularity is the *envelope*: a batch of 1..k messages sent to one
// destination under a single signature and acknowledgment (the Tbatch
// optimization of §5.6; an unbatched system simply sends envelopes of one).
// Replay expands each envelope entry into per-message events for the
// graph-construction algorithm.
package seclog

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

// EntryType enumerates log entry types (§5.4 lists snd, rcv, ack, ins, del;
// checkpoints are the §5.6 optimization).
type EntryType uint8

// Entry types.
const (
	ESnd EntryType = iota
	ERcv
	EAck
	EIns
	EDel
	ECkpt
)

func (t EntryType) String() string {
	switch t {
	case ESnd:
		return "snd"
	case ERcv:
		return "rcv"
	case EAck:
		return "ack"
	case EIns:
		return "ins"
	case EDel:
		return "del"
	case ECkpt:
		return "ckpt"
	default:
		return fmt.Sprintf("entry(%d)", t)
	}
}

// Entry is one log record. Field usage depends on Type:
//
//	ESnd:  Msgs (all to one destination)
//	ERcv:  Msgs plus the sender's envelope authenticator material
//	       (PeerPrevHash, PeerTime, PeerSig, PeerSeq)
//	EAck:  AckIDs plus the receiver's authenticator material
//	EIns/EDel: Tuple, and for maybe firings MaybeRule/MaybeBody/Replaces
//	ECkpt: Ckpt
type Entry struct {
	T    types.Time
	Type EntryType

	Msgs []types.Message

	PeerPrevHash []byte
	PeerTime     types.Time
	PeerSig      []byte
	PeerSeq      uint64

	AckIDs []types.MessageID
	// EnvSig, on EAck entries, preserves the acknowledged envelope's own
	// signature so that replay can reconstruct the receiver's rcv entry
	// verbatim and re-verify the ack signature (§5.5's authenticator
	// conditions).
	EnvSig []byte

	Tuple     types.Tuple
	MaybeRule string
	MaybeBody []types.Tuple
	Replaces  []types.Tuple

	Ckpt *Checkpoint
}

// marshalContent encodes the type-specific content c_k that is hashed into
// the chain.
func (e *Entry) marshalContent(w *wire.Writer) {
	switch e.Type {
	case ESnd:
		w.Uint(uint64(len(e.Msgs)))
		for i := range e.Msgs {
			e.Msgs[i].MarshalWire(w)
		}
	case ERcv:
		w.Uint(uint64(len(e.Msgs)))
		for i := range e.Msgs {
			e.Msgs[i].MarshalWire(w)
		}
		w.BytesField(e.PeerPrevHash)
		w.Int(int64(e.PeerTime))
		w.BytesField(e.PeerSig)
		w.Uint(e.PeerSeq)
	case EAck:
		w.Uint(uint64(len(e.AckIDs)))
		for _, id := range e.AckIDs {
			w.String(string(id.Src))
			w.String(string(id.Dst))
			w.Uint(id.Seq)
		}
		w.BytesField(e.PeerPrevHash)
		w.Int(int64(e.PeerTime))
		w.BytesField(e.PeerSig)
		w.Uint(e.PeerSeq)
		w.BytesField(e.EnvSig)
	case EIns, EDel:
		e.Tuple.MarshalWire(w)
		w.String(e.MaybeRule)
		w.Uint(uint64(len(e.MaybeBody)))
		for i := range e.MaybeBody {
			e.MaybeBody[i].MarshalWire(w)
		}
		w.Uint(uint64(len(e.Replaces)))
		for i := range e.Replaces {
			e.Replaces[i].MarshalWire(w)
		}
	case ECkpt:
		// The chain commits only to the checkpoint digests; the bulky
		// payload is verified against them (enables partial retrieval).
		e.Ckpt.digestMarshal(w)
	}
}

// MarshalWire implements wire.Marshaler: the symmetric transmission form
// that UnmarshalWire inverts. Checkpoint entries carry their full payload
// (MachineState and Items), so a SegmentData serialized across a process
// boundary can be re-verified and replayed without a payload side channel.
// The hash chain still commits only to the checkpoint digests
// (marshalContent), and WireSize still meters the digest form — §5.6's
// partial retrieval, where a querier downloads digests and fetches payload
// items by Merkle proof on demand, is the size the figures account.
func (e *Entry) MarshalWire(w *wire.Writer) {
	w.Int(int64(e.T))
	w.Byte(byte(e.Type))
	if e.Type == ECkpt {
		e.Ckpt.MarshalWire(w)
		return
	}
	e.marshalContent(w)
}

// UnmarshalWire implements wire.Unmarshaler (the inverse of MarshalWire).
func (e *Entry) UnmarshalWire(r *wire.Reader) error {
	e.T = types.Time(r.Int())
	e.Type = EntryType(r.Byte())
	switch e.Type {
	case ESnd:
		n := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		e.Msgs = make([]types.Message, n)
		for i := range e.Msgs {
			if err := e.Msgs[i].UnmarshalWire(r); err != nil {
				return err
			}
		}
	case ERcv:
		n := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		e.Msgs = make([]types.Message, n)
		for i := range e.Msgs {
			if err := e.Msgs[i].UnmarshalWire(r); err != nil {
				return err
			}
		}
		e.PeerPrevHash = r.BytesField()
		e.PeerTime = types.Time(r.Int())
		e.PeerSig = r.BytesField()
		e.PeerSeq = r.Uint()
	case EAck:
		n := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		e.AckIDs = make([]types.MessageID, n)
		for i := range e.AckIDs {
			e.AckIDs[i].Src = types.NodeID(r.String())
			e.AckIDs[i].Dst = types.NodeID(r.String())
			e.AckIDs[i].Seq = r.Uint()
		}
		e.PeerPrevHash = r.BytesField()
		e.PeerTime = types.Time(r.Int())
		e.PeerSig = r.BytesField()
		e.PeerSeq = r.Uint()
		e.EnvSig = r.BytesField()
	case EIns, EDel:
		if err := e.Tuple.UnmarshalWire(r); err != nil {
			return err
		}
		e.MaybeRule = r.String()
		n := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		e.MaybeBody = make([]types.Tuple, n)
		for i := range e.MaybeBody {
			if err := e.MaybeBody[i].UnmarshalWire(r); err != nil {
				return err
			}
		}
		n = r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		e.Replaces = make([]types.Tuple, n)
		for i := range e.Replaces {
			if err := e.Replaces[i].UnmarshalWire(r); err != nil {
				return err
			}
		}
	case ECkpt:
		e.Ckpt = new(Checkpoint)
		if err := e.Ckpt.UnmarshalWire(r); err != nil {
			return err
		}
	default:
		if r.Err() == nil {
			return fmt.Errorf("seclog: invalid entry type %d", e.Type)
		}
	}
	return r.Err()
}

// WireSize returns the metered size of the entry in bytes: what the chain
// commits to, which for checkpoint entries is the digest-only form of §5.6's
// partial retrieval (the form Figures 5, 6 and 8 account). MarshalWire now
// carries the full checkpoint payload for cross-process symmetry, so the
// two sizes differ for ECkpt entries; every other type is identical.
func (e *Entry) WireSize() int {
	w := wire.GetWriter()
	w.Int(int64(e.T))
	w.Byte(byte(e.Type))
	e.marshalContent(w)
	n := w.Len()
	wire.PutWriter(w)
	return n
}

// ---------------------------------------------------------------------------
// Authenticators.

// Authenticator is a_k = (k, t_k, h_k, σ(t_k‖h_k)): a signed commitment
// that entry k (and, through the hash chain, every earlier entry) is in the
// node's log.
type Authenticator struct {
	Node types.NodeID
	Seq  uint64 // 1-based entry index
	T    types.Time
	Hash []byte
	Sig  []byte
}

// MarshalWire implements wire.Marshaler.
func (a Authenticator) MarshalWire(w *wire.Writer) {
	w.String(string(a.Node))
	w.Uint(a.Seq)
	w.Int(int64(a.T))
	w.BytesField(a.Hash)
	w.BytesField(a.Sig)
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *Authenticator) UnmarshalWire(r *wire.Reader) error {
	a.Node = types.NodeID(r.String())
	a.Seq = r.Uint()
	a.T = types.Time(r.Int())
	a.Hash = r.BytesField()
	a.Sig = r.BytesField()
	return r.Err()
}

// WireSize returns the encoded size in bytes.
func (a Authenticator) WireSize() int { return wire.Size(a) }

// signedMaterialW encodes the byte string covered by an authenticator
// signature into a pooled writer; the caller releases it with
// wire.PutWriter once the signature operation has consumed the bytes.
func signedMaterialW(t types.Time, hash []byte) *wire.Writer {
	w := wire.GetWriter()
	w.Int(int64(t))
	w.BytesField(hash)
	return w
}

// Verify checks the authenticator's signature under pub. Results are
// memoized in the process-wide verification cache: the same authenticator is
// presented as evidence to every audit step, so repeat checks are free.
func (a Authenticator) Verify(pub cryptoutil.PublicKey) bool {
	w := signedMaterialW(a.T, a.Hash)
	ok := cryptoutil.DefaultVerifyCache.Verify(nil, pub, w.Bytes(), a.Sig)
	wire.PutWriter(w)
	return ok
}

// VerifyCounted is Verify with cache-hit accounting attributed to stats.
func (a Authenticator) VerifyCounted(stats *cryptoutil.Stats, pub cryptoutil.PublicKey) bool {
	w := signedMaterialW(a.T, a.Hash)
	ok := cryptoutil.DefaultVerifyCache.Verify(stats, pub, w.Bytes(), a.Sig)
	wire.PutWriter(w)
	return ok
}

// ---------------------------------------------------------------------------
// The log.

// ckptRef indexes one retained checkpoint entry: its sequence number and
// wire size. The index spares LastCheckpointBefore and checkpoint-byte
// accounting from scanning cold, disk-resident history.
type ckptRef struct {
	seq  uint64
	size int64
}

// Log is one node's tamper-evident log. By default it retains all entries
// in memory (SNooPy's Thist truncation is modeled by Truncate); a log built
// with NewStored or Open additionally spills every entry to an append-only
// segment store on disk and keeps only a configurable hot tail of decoded
// entries resident. The zero value is not usable; call New, NewStored, or
// Open.
type Log struct {
	node     types.NodeID
	suite    cryptoutil.Suite
	key      cryptoutil.PrivateKey
	stats    *cryptoutil.Stats
	first    uint64   // sequence number of the earliest retained entry (1-based)
	hashes   [][]byte // hashes[i] is h_{first+i}
	baseHash []byte   // h_{first-1}
	// grossBytes accumulates the wire size of all appended entries,
	// including truncated ones (for log-growth accounting, Figure 6).
	grossBytes int64

	// entries[hotStart:] holds the resident decoded entries; the entry at
	// index hotStart+i has sequence number hotFirst+i. Without a store,
	// hotFirst == first and every retained entry is resident; with a store,
	// older entries are evicted and decoded from disk on demand.
	entries  []*Entry
	hotStart int
	hotFirst uint64

	store    *Store
	hotTail  int // max resident entries when store-backed; <=0 keeps all
	storeErr error
	// recoveredTorn is how many torn-tail bytes Open truncated away when
	// this log was recovered (0 for clean opens and fresh logs).
	recoveredTorn int64

	ckpts []ckptRef // retained checkpoint entries, ascending by seq
}

// New creates an empty log for node with the given suite and signing key.
// stats may be nil.
func New(node types.NodeID, suite cryptoutil.Suite, key cryptoutil.PrivateKey, stats *cryptoutil.Stats) *Log {
	return &Log{node: node, suite: suite, key: key, stats: stats, first: 1, hotFirst: 1, baseHash: nil}
}

// Node returns the log owner.
func (l *Log) Node() types.NodeID { return l.node }

// Len returns the sequence number of the last entry (0 if empty).
func (l *Log) Len() uint64 { return l.first - 1 + uint64(len(l.hashes)) }

// FirstSeq returns the sequence number of the earliest retained entry.
func (l *Log) FirstSeq() uint64 { return l.first }

// GrossBytes returns the total wire size ever appended.
func (l *Log) GrossBytes() int64 { return l.grossBytes }

// HeadHash returns h_k for the last entry (or the base hash when empty).
func (l *Log) HeadHash() []byte {
	if len(l.hashes) == 0 {
		return l.baseHash
	}
	return l.hashes[len(l.hashes)-1]
}

// ChainHash computes h_k = H(h_{k-1} ‖ t_k ‖ y_k ‖ c_k) for an entry that
// would follow prev; the commitment protocol uses it to reconstruct a
// peer's chain position from a received envelope or acknowledgment.
func ChainHash(suite cryptoutil.Suite, stats *cryptoutil.Stats, prev []byte, e *Entry) []byte {
	return chainHash(suite, stats, prev, e)
}

// VerifyCommitment checks a signature over (t ‖ h) — the material covered
// by envelope and acknowledgment signatures as well as authenticators.
// Verification is memoized: a commitment verified when it arrived on the
// wire verifies for free when an audit replays the log that recorded it.
// stats counts the logical verification either way (Figure 7's operation
// counts are cache-independent).
func VerifyCommitment(stats *cryptoutil.Stats, pub cryptoutil.PublicKey, t types.Time, hash, sig []byte) bool {
	stats.CountVerify()
	w := signedMaterialW(t, hash)
	ok := cryptoutil.DefaultVerifyCache.Verify(stats, pub, w.Bytes(), sig)
	wire.PutWriter(w)
	return ok
}

// chainHash computes h_k = H(h_{k-1} ‖ t_k ‖ y_k ‖ c_k). The encoding is
// consumed by the hash before the pooled buffer is released.
func chainHash(suite cryptoutil.Suite, stats *cryptoutil.Stats, prev []byte, e *Entry) []byte {
	w := wire.GetWriter()
	w.BytesField(prev)
	w.Int(int64(e.T))
	w.Byte(byte(e.Type))
	e.marshalContent(w)
	stats.CountHash(w.Len())
	h := suite.Hash(w.Bytes())
	wire.PutWriter(w)
	return h
}

// Append adds an entry and returns its sequence number. When the log is
// store-backed, the entry's wire encoding is also written to the data file;
// a write failure is sticky and reported by Err (the in-memory chain stays
// authoritative for the running node).
func (l *Log) Append(e *Entry) uint64 {
	h := chainHash(l.suite, l.stats, l.HeadHash(), e)
	var size int64
	if l.store != nil && l.storeErr == nil {
		w := wire.GetWriter()
		e.MarshalWire(w)
		size = int64(w.Len())
		if err := l.store.append(w.Bytes()); err != nil {
			// The store is dead from here on: stop writing (a gap would
			// desynchronize the seq→offset index) and stop evicting (see
			// evict), so the log keeps serving correctly from memory.
			l.storeErr = err
		}
		wire.PutWriter(w)
		if e.Type == ECkpt {
			// Accounting meters the transmissible (digest) form, which is
			// what an in-memory log meters too; the store record is larger
			// because it persists the full checkpoint payload.
			size = int64(e.WireSize())
		}
	} else {
		size = int64(e.WireSize())
	}
	l.entries = append(l.entries, e)
	l.hashes = append(l.hashes, h)
	l.grossBytes += size
	seq := l.Len()
	if e.Type == ECkpt {
		l.ckpts = append(l.ckpts, ckptRef{seq: seq, size: size})
	}
	l.evict()
	return seq
}

// evict trims the resident window to the hot tail, releasing decoded
// entries whose bytes live in the store. Compaction is amortized so steady
// appends stay O(1).
func (l *Log) evict() {
	// A sticky store error freezes eviction: entries whose bytes never
	// reached disk (or that a broken store could no longer serve) must stay
	// resident, so the log degrades to in-memory operation instead of
	// silently serving misaligned records.
	if l.store == nil || l.hotTail <= 0 || l.storeErr != nil {
		return
	}
	for len(l.entries)-l.hotStart > l.hotTail {
		l.entries[l.hotStart] = nil
		l.hotStart++
		l.hotFirst++
	}
	if l.hotStart > l.hotTail {
		l.entries = append([]*Entry(nil), l.entries[l.hotStart:]...)
		l.hotStart = 0
	}
}

// Hash returns h_k, or an error when seq is truncated or out of range.
// seq == FirstSeq()-1 yields the base hash.
func (l *Log) Hash(seq uint64) ([]byte, error) {
	if seq+1 == l.first {
		return l.baseHash, nil
	}
	if seq < l.first || seq > l.Len() {
		return nil, fmt.Errorf("seclog: no hash for entry %d (retained %d..%d)", seq, l.first, l.Len())
	}
	return l.hashes[seq-l.first], nil
}

// Entry returns entry seq (1-based), or an error when seq is truncated or
// out of range. Cold entries of a store-backed log are decoded from disk.
func (l *Log) Entry(seq uint64) (*Entry, error) {
	if seq < l.first || seq > l.Len() {
		return nil, fmt.Errorf("seclog: no entry %d (retained %d..%d)", seq, l.first, l.Len())
	}
	if seq >= l.hotFirst {
		return l.entries[l.hotStart+int(seq-l.hotFirst)], nil
	}
	e, err := l.store.entry(seq)
	if err != nil && l.storeErr == nil {
		l.storeErr = err
	}
	return e, err
}

// HashAt returns h_k. It panics for truncated or out-of-range entries; use
// Hash on any path that consumes peer-influenced sequence numbers.
func (l *Log) HashAt(seq uint64) []byte {
	h, err := l.Hash(seq)
	if err != nil {
		//snpvet:allow nopanic documented panic-on-misuse accessor for locally validated sequence numbers; peer-influenced paths use Hash, which returns an error
		panic(err)
	}
	return h
}

// EntryAt returns entry seq (1-based). It panics for truncated or
// out-of-range entries (or on a store read failure); use Entry on any path
// that consumes peer-influenced sequence numbers.
func (l *Log) EntryAt(seq uint64) *Entry {
	e, err := l.Entry(seq)
	if err != nil {
		//snpvet:allow nopanic documented panic-on-misuse accessor for locally validated sequence numbers; peer-influenced paths use Entry, which returns an error
		panic(err)
	}
	return e
}

// Authenticator signs the current head (or, with seq, an earlier retained
// position).
func (l *Log) Authenticator() (Authenticator, error) {
	return l.AuthenticatorAt(l.Len())
}

// AuthenticatorAt signs position seq.
func (l *Log) AuthenticatorAt(seq uint64) (Authenticator, error) {
	e, err := l.Entry(seq)
	if err != nil {
		return Authenticator{}, err
	}
	h, err := l.Hash(seq)
	if err != nil {
		return Authenticator{}, err
	}
	w := signedMaterialW(e.T, h)
	sig, err := l.key.Sign(w.Bytes())
	wire.PutWriter(w)
	if err != nil {
		return Authenticator{}, err
	}
	l.stats.CountSign()
	return Authenticator{Node: l.node, Seq: seq, T: e.T, Hash: h, Sig: sig}, nil
}

// Sign signs arbitrary material with the log's key (used by the commitment
// protocol for envelope signatures, which cover (t‖h) like authenticators).
func (l *Log) Sign(t types.Time, hash []byte) ([]byte, error) {
	w := signedMaterialW(t, hash)
	sig, err := l.key.Sign(w.Bytes())
	wire.PutWriter(w)
	l.stats.CountSign()
	return sig, err
}

// Segment returns entries [from..to] (1-based, inclusive) together with the
// base hash h_{from-1}. It returns an error if the range was truncated.
func (l *Log) Segment(from, to uint64) (*SegmentData, error) {
	if from < l.first {
		return nil, fmt.Errorf("seclog: segment start %d precedes retained history (first %d)", from, l.first)
	}
	if to > l.Len() || from > to+1 {
		return nil, fmt.Errorf("seclog: bad segment [%d..%d] of %d", from, to, l.Len())
	}
	base, err := l.Hash(from - 1)
	if err != nil {
		return nil, err
	}
	seg := &SegmentData{Node: l.node, From: from, BaseHash: base}
	for s := from; s <= to; s++ {
		e, err := l.Entry(s)
		if err != nil {
			return nil, err
		}
		seg.Entries = append(seg.Entries, e)
	}
	return seg, nil
}

// Truncate drops entries before seq (Thist retention, §5.6). On a
// store-backed log the new retention boundary is persisted in the sidecar;
// the data file keeps the truncated records (the chain replayed during
// recovery still needs them) but they are no longer served.
func (l *Log) Truncate(seq uint64) {
	if seq <= l.first {
		return
	}
	if seq > l.Len()+1 {
		seq = l.Len() + 1
	}
	l.baseHash = l.HashAt(seq - 1)
	l.hashes = append([][]byte(nil), l.hashes[seq-l.first:]...)
	if seq > l.hotFirst {
		drop := int(seq - l.hotFirst)
		if drop > len(l.entries)-l.hotStart {
			drop = len(l.entries) - l.hotStart
		}
		l.entries = append([]*Entry(nil), l.entries[l.hotStart+drop:]...)
		l.hotStart = 0
		l.hotFirst = seq
	}
	l.first = seq
	l.pruneCkpts()
	if l.store != nil {
		if err := l.store.truncate(seq, l.baseHash); err != nil && l.storeErr == nil {
			l.storeErr = err
		}
	}
}

// pruneCkpts drops checkpoint index records that precede retained history.
func (l *Log) pruneCkpts() {
	i := 0
	for i < len(l.ckpts) && l.ckpts[i].seq < l.first {
		i++
	}
	l.ckpts = l.ckpts[i:]
}

// LastCheckpointBefore returns the sequence of the latest ECkpt entry with
// seq <= bound, or 0 if none is retained.
func (l *Log) LastCheckpointBefore(bound uint64) uint64 {
	if bound > l.Len() {
		bound = l.Len()
	}
	for i := len(l.ckpts) - 1; i >= 0; i-- {
		if l.ckpts[i].seq <= bound {
			return l.ckpts[i].seq
		}
	}
	return 0
}

// CheckpointBytes returns the total wire size of the retained checkpoint
// entries (the Figure 6 checkpoint series), without touching cold history.
func (l *Log) CheckpointBytes() int64 {
	var sum int64
	for _, c := range l.ckpts {
		sum += c.size
	}
	return sum
}

// ---------------------------------------------------------------------------
// Store-backed operation.

// StoreBacked reports whether the log spills entries to a segment store.
func (l *Log) StoreBacked() bool { return l.store != nil }

// ColdEntries returns how many retained entries are resident only on disk.
func (l *Log) ColdEntries() uint64 {
	if l.hotFirst <= l.first {
		return 0
	}
	return l.hotFirst - l.first
}

// Err returns the first store error encountered (nil for in-memory logs and
// healthy stores). A log with a sticky store error keeps serving from
// memory, but its on-disk history can no longer be trusted for recovery.
func (l *Log) Err() error { return l.storeErr }

// StoreHooks are crash-injection points for fault testing a store-backed
// log. AfterAppend runs after each record is staged (seq is the record's
// sequence number); MidFlush runs between the two halves of a split group
// write, so a hook that SIGKILLs the process leaves a torn last record on
// disk for recovery to truncate; MidCompact runs on the compactor goroutine
// after the replacement table is durable but before the manifest swap
// commits it, the widest crash window a compaction has. AfterAppend and
// MidFlush run on the appending goroutine.
type StoreHooks struct {
	AfterAppend func(seq uint64)
	MidFlush    func()
	MidCompact  func()
}

// SetStoreHooks installs crash-injection hooks on the underlying store. It
// reports whether the log is store-backed (hooks are meaningless, and
// ignored, for in-memory logs).
func (l *Log) SetStoreHooks(h StoreHooks) bool {
	if l.store == nil {
		return false
	}
	l.store.hooks = h
	return true
}

// SyncedHead returns the last durably recorded head position (sequence and
// chain hash) — what the sidecar vouches for, and therefore the newest state
// recovery is guaranteed to reach after a crash. It returns (0, nil) for
// in-memory logs and stores that have never synced.
func (l *Log) SyncedHead() (uint64, []byte) {
	if l.store == nil {
		return 0, nil
	}
	return l.store.syncedState()
}

// RecoveredTornBytes returns how many bytes of torn tail Open truncated when
// recovering this log (0 for clean opens, fresh logs, and in-memory logs).
// A non-zero value is the on-disk signature of a crash mid-append.
func (l *Log) RecoveredTornBytes() int64 { return l.recoveredTorn }

// Flush hands the store's buffered appends to the operating system (one
// positioned write for the whole group) without forcing them to stable
// storage or moving the synced head. After Flush, a process crash loses at
// most what a machine crash could already lose; use Sync for durability. It
// is a no-op for in-memory logs.
func (l *Log) Flush() error {
	if l.store == nil {
		return nil
	}
	if l.storeErr != nil {
		return l.storeErr
	}
	if err := l.store.flushBuf(); err != nil {
		// Sticky, like every other store-write failure: the on-disk image
		// has stopped advancing, and Err must say so.
		l.storeErr = err
		return err
	}
	return nil
}

// Sync group-commits the store's buffered appends (one write plus one fsync
// for the whole group) and durably records the current head in the sidecar,
// so a subsequent Open can tell tampering from a crash up to this point. It
// is a no-op for in-memory logs.
func (l *Log) Sync() error {
	if l.store == nil {
		return nil
	}
	if l.storeErr != nil {
		return l.storeErr
	}
	return l.store.sync(l.first, l.baseHash, l.Len(), l.HeadHash(), l.grossBytes, l.sealInfo)
}

// sealInfo resolves a retained record's chain hash and metered size from the
// indexes the log already maintains; the store calls it while sealing tail
// records into a table so sealing never re-hashes retained history. seq must
// be in [FirstSeq(), Len()].
func (l *Log) sealInfo(seq uint64, recLen int64) ([]byte, int64, int64) {
	h := l.hashes[seq-l.first]
	for i := len(l.ckpts) - 1; i >= 0; i-- {
		if l.ckpts[i].seq == seq {
			return h, l.ckpts[i].size, l.ckpts[i].size
		}
		if l.ckpts[i].seq < seq {
			break
		}
	}
	return h, recLen, 0
}

// SetStoreTuning adjusts the store's seal and fold thresholds: sealBytes is
// the synced-tail size that triggers sealing records into an immutable
// table, foldAt the sealed-table count that triggers a background fold.
// Values <= 0 leave the corresponding threshold unchanged. It reports
// whether the log is store-backed (tuning is meaningless, and ignored, for
// in-memory logs); tests and crash harnesses lower the thresholds to force
// seals and compactions on tiny logs.
func (l *Log) SetStoreTuning(sealBytes, foldAt int) bool {
	if l.store == nil {
		return false
	}
	l.store.mu.Lock()
	if sealBytes > 0 {
		l.store.sealLimit = sealBytes
	}
	if foldAt > 0 {
		l.store.foldAt = foldAt
	}
	l.store.mu.Unlock()
	return true
}

// StoreTables reports how many sealed table files currently back the log (0
// for in-memory logs and stores that have never sealed).
func (l *Log) StoreTables() int {
	if l.store == nil {
		return 0
	}
	l.store.mu.Lock()
	defer l.store.mu.Unlock()
	return len(l.store.tables)
}

// TableSpan describes where one sealed table keeps its records on disk: the
// table file path plus, per record, the offset and length of its canonical
// encoding. It exists for read-path instrumentation — snp-bench's cold-read
// row compares the mmap'd decode against a plain positioned read of the
// same bytes — and the slices are copies, never aliases of the mapping.
type TableSpan struct {
	Path string
	Base uint64
	Offs []int64
	Lens []int64
}

// StoreTableSpans returns a snapshot of the sealed tables' record layout
// (nil for in-memory logs). Compaction may retire a table after the
// snapshot is taken, so callers reading by path must tolerate a vanished
// file.
func (l *Log) StoreTableSpans() []TableSpan {
	if l.store == nil {
		return nil
	}
	l.store.mu.Lock()
	defer l.store.mu.Unlock()
	spans := make([]TableSpan, 0, len(l.store.tables))
	for _, t := range l.store.tables {
		spans = append(spans, TableSpan{
			Path: t.path,
			Base: t.base,
			Offs: append([]int64(nil), t.offs...),
			Lens: append([]int64(nil), t.lens...),
		})
	}
	return spans
}

// CompactErr returns the first error the background compactor hit (nil for
// healthy stores). Compaction failures are not sticky for the log itself —
// the pre-compaction tables remain live and correct — but they mean disk
// space is no longer being reclaimed, so supervisors may want to surface it.
func (l *Log) CompactErr() error {
	if l.store == nil {
		return nil
	}
	l.store.mu.Lock()
	defer l.store.mu.Unlock()
	return l.store.compactErr
}

// Close syncs and releases the segment store. The log must not be used
// afterwards. It is a no-op for in-memory logs.
func (l *Log) Close() error {
	if l.store == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.store.close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Segments and verification.

// SegmentData is a retrieved log segment: entries From..From+len-1 with the
// hash chain's starting point.
type SegmentData struct {
	Node     types.NodeID
	From     uint64
	BaseHash []byte
	Entries  []*Entry
}

// To returns the sequence number of the last entry in the segment.
func (s *SegmentData) To() uint64 { return s.From + uint64(len(s.Entries)) - 1 }

// MarshalWire implements wire.Marshaler.
func (s *SegmentData) MarshalWire(w *wire.Writer) {
	w.String(string(s.Node))
	w.Uint(s.From)
	w.BytesField(s.BaseHash)
	w.Uint(uint64(len(s.Entries)))
	for _, e := range s.Entries {
		e.MarshalWire(w)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (s *SegmentData) UnmarshalWire(r *wire.Reader) error {
	s.Node = types.NodeID(r.String())
	s.From = r.Uint()
	s.BaseHash = r.BytesField()
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	s.Entries = make([]*Entry, n)
	for i := range s.Entries {
		s.Entries[i] = new(Entry)
		if err := s.Entries[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// WireSize returns the encoded size in bytes.
func (s *SegmentData) WireSize() int { return wire.Size(s) }

// ErrChainMismatch is returned when a segment does not reproduce the hash an
// authenticator committed to — proof of tampering.
var ErrChainMismatch = errors.New("seclog: hash chain does not match authenticator")

// VerifyAgainst recomputes the segment's hash chain and checks it against
// the authenticator (which must be signed by the segment's owner and point
// into the segment range). On success it returns the hash of every entry.
func (s *SegmentData) VerifyAgainst(suite cryptoutil.Suite, stats *cryptoutil.Stats,
	pub cryptoutil.PublicKey, auth Authenticator) ([][]byte, error) {
	// Sequence numbers are 1-based; an empty segment or a zero From would
	// make the range arithmetic below wrap, so reject them before indexing
	// anything with a peer-supplied sequence number.
	if len(s.Entries) == 0 || s.From == 0 {
		return nil, fmt.Errorf("seclog: empty or malformed segment from %s", s.Node)
	}
	if auth.Node != s.Node {
		return nil, fmt.Errorf("seclog: authenticator is from %s, segment from %s", auth.Node, s.Node)
	}
	if auth.Seq < s.From || auth.Seq > s.To() {
		return nil, fmt.Errorf("seclog: authenticator seq %d outside segment [%d..%d]", auth.Seq, s.From, s.To())
	}
	stats.CountVerify()
	if !auth.VerifyCounted(stats, pub) {
		return nil, fmt.Errorf("seclog: bad authenticator signature from %s", s.Node)
	}
	hashes := make([][]byte, len(s.Entries))
	prev := s.BaseHash
	for i, e := range s.Entries {
		prev = chainHash(suite, stats, prev, e)
		hashes[i] = prev
	}
	if !bytes.Equal(hashes[auth.Seq-s.From], auth.Hash) {
		return nil, ErrChainMismatch
	}
	return hashes, nil
}

// ---------------------------------------------------------------------------
// Authenticator sets (U_{i,j}, §5.4).

// AuthSet stores the authenticators a node has received from its peers,
// used as evidence and for the equivocation consistency check (§5.5).
type AuthSet struct {
	byNode map[types.NodeID][]Authenticator
}

// NewAuthSet returns an empty set.
func NewAuthSet() *AuthSet { return &AuthSet{byNode: make(map[types.NodeID][]Authenticator)} }

// Add records an authenticator.
func (u *AuthSet) Add(a Authenticator) {
	u.byNode[a.Node] = append(u.byNode[a.Node], a)
}

// From returns all authenticators signed by node.
func (u *AuthSet) From(node types.NodeID) []Authenticator {
	return u.byNode[node]
}

// FromInInterval returns node's authenticators with T in [t1, t2].
func (u *AuthSet) FromInInterval(node types.NodeID, t1, t2 types.Time) []Authenticator {
	var out []Authenticator
	for _, a := range u.byNode[node] {
		if a.T >= t1 && a.T <= t2 {
			out = append(out, a)
		}
	}
	return out
}

// Latest returns the most recent authenticator from node (by Seq) and
// whether one exists.
func (u *AuthSet) Latest(node types.NodeID) (Authenticator, bool) {
	as := u.byNode[node]
	if len(as) == 0 {
		return Authenticator{}, false
	}
	best := as[0]
	for _, a := range as[1:] {
		if a.Seq > best.Seq {
			best = a
		}
	}
	return best, true
}
