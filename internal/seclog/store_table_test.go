package seclog

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

// sealEvery forces the store to seal on every sync and fold aggressively,
// so tiny test logs exercise the table machinery real deployments only
// reach after megabytes of history.
func sealEvery(t *testing.T, l *Log, foldAt int) {
	t.Helper()
	if !l.SetStoreTuning(1, foldAt) {
		t.Fatal("SetStoreTuning on a store-backed log returned false")
	}
}

// waitCompact blocks until any in-flight background compaction finishes.
func waitCompact(l *Log) {
	if l.store != nil {
		l.store.wg.Wait()
	}
}

// checkIdentical asserts two logs agree on shape, hashes, gross accounting,
// every retained entry's wire encoding, and the full retained segment.
func checkIdentical(t *testing.T, got, want *Log) {
	t.Helper()
	if got.FirstSeq() != want.FirstSeq() || got.Len() != want.Len() {
		t.Fatalf("shape mismatch: got %d..%d, want %d..%d", got.FirstSeq(), got.Len(), want.FirstSeq(), want.Len())
	}
	if !bytes.Equal(got.HeadHash(), want.HeadHash()) {
		t.Fatal("head hashes differ")
	}
	if got.GrossBytes() != want.GrossBytes() {
		t.Fatalf("gross bytes: got %d, want %d", got.GrossBytes(), want.GrossBytes())
	}
	if got.CheckpointBytes() != want.CheckpointBytes() {
		t.Fatalf("checkpoint bytes: got %d, want %d", got.CheckpointBytes(), want.CheckpointBytes())
	}
	for seq := want.FirstSeq(); seq <= want.Len(); seq++ {
		ge, err := got.Entry(seq)
		if err != nil {
			t.Fatalf("entry %d: %v", seq, err)
		}
		we, err := want.Entry(seq)
		if err != nil {
			t.Fatalf("entry %d: %v", seq, err)
		}
		if !bytes.Equal(wire.Encode(ge), wire.Encode(we)) {
			t.Fatalf("entry %d differs", seq)
		}
		gh, err := got.Hash(seq)
		if err != nil {
			t.Fatalf("hash %d: %v", seq, err)
		}
		wh, err := want.Hash(seq)
		if err != nil {
			t.Fatalf("hash %d: %v", seq, err)
		}
		if !bytes.Equal(gh, wh) {
			t.Fatalf("hash %d differs", seq)
		}
	}
	gs, err := got.Segment(got.FirstSeq(), got.Len())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.Segment(want.FirstSeq(), want.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.Encode(gs), wire.Encode(ws)) {
		t.Fatal("retained segments differ")
	}
}

// TestStoreSealedMatchesMemory drives the log through repeated seals and
// checks sealed (mmap-served) history stays bit-identical to an in-memory
// twin, across syncs and across a reopen.
func TestStoreSealedMatchesMemory(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	sealEvery(t, st, 100) // seal often, never fold
	for i := 0; i < 6; i++ {
		fillBoth(mem, st, 10, 7)
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if st.StoreTables() == 0 {
		t.Fatal("no tables sealed despite sealLimit=1")
	}
	if st.ColdEntries() == 0 {
		t.Fatal("expected cold entries")
	}
	checkIdentical(t, st, mem)

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.StoreTables() == 0 {
		t.Fatal("reopened store lost its tables")
	}
	checkIdentical(t, re, mem)

	// And with everything resident (hotTail<=0 decodes sealed history once).
	all, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	if all.ColdEntries() != 0 {
		t.Fatalf("hotTail<=0 left %d cold entries", all.ColdEntries())
	}
	checkIdentical(t, all, mem)
}

// TestStoreCompactionFolds seals many small tables, lets the background
// compactor fold them, and checks nothing observable changed: entries,
// hashes, the synced head, and the sidecar are all bit-identical before and
// after the fold.
func TestStoreCompactionFolds(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	if !st.SetStoreTuning(1, 1000) { // seal every sync, hold off folding
		t.Fatal("tuning failed")
	}
	for i := 0; i < 8; i++ {
		fillBoth(mem, st, 8, 5)
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	waitCompact(st)
	if n := st.StoreTables(); n < 8 {
		t.Fatalf("expected >=8 sealed tables, have %d", n)
	}
	headSeq, headHash := st.SyncedHead()

	// Lower the fold threshold and sync once: the compactor must fold.
	if !st.SetStoreTuning(0, 1) {
		t.Fatal("tuning failed")
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	waitCompact(st)
	if err := st.CompactErr(); err != nil {
		t.Fatalf("compaction failed: %v", err)
	}
	if n := st.StoreTables(); n > 2 {
		t.Fatalf("fold left %d tables", n)
	}
	// Compaction must not move the synced head off-chain.
	if h2, hash2 := st.SyncedHead(); h2 != headSeq || !bytes.Equal(hash2, headHash) {
		t.Fatalf("compaction moved the synced head: %d -> %d", headSeq, h2)
	}
	if _, sHead, sHash, ok, err := ReadSidecar(dir, "n1"); err != nil || !ok || sHead != headSeq || !bytes.Equal(sHash, headHash) {
		t.Fatalf("sidecar moved under compaction: ok=%v err=%v head=%d", ok, err, sHead)
	}
	checkIdentical(t, st, mem)

	// Old table files must be gone from disk (only referenced ones remain).
	names, err := listTableFiles(dir, "n1", testSuite.HashSize())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != st.StoreTables() {
		t.Fatalf("%d table files on disk, %d referenced", len(names), st.StoreTables())
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkIdentical(t, re, mem)
}

// TestStoreCompactionDropsRetired truncates past sealed tables and checks
// the compactor deletes them from disk while the log keeps serving the
// retained range — retention finally reclaims space, not just heap.
func TestStoreCompactionDropsRetired(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	sealEvery(t, st, 1000)
	for i := 0; i < 6; i++ {
		fillBoth(mem, st, 10, 7)
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	waitCompact(st)
	before := st.StoreTables()
	if before < 6 {
		t.Fatalf("expected >=6 tables, have %d", before)
	}

	mem.Truncate(31)
	st.Truncate(31)
	waitCompact(st)
	if err := st.CompactErr(); err != nil {
		t.Fatalf("compaction failed: %v", err)
	}
	if after := st.StoreTables(); after >= before {
		t.Fatalf("retention dropped no tables: %d -> %d", before, after)
	}
	checkIdentical(t, st, mem)

	// Serving below the boundary must fail, not crash.
	if _, err := st.Segment(1, 30); err == nil {
		t.Fatal("expected error reading truncated history")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.FirstSeq() != 31 {
		t.Fatalf("recovered first = %d, want 31", re.FirstSeq())
	}
	checkIdentical(t, re, mem)
}

// TestStoreTamperedTableRejected flips a byte in a sealed table file: the
// content address no longer matches and Open must refuse the store (the
// manifest vouches for the sealed range).
func TestStoreTamperedTableRejected(t *testing.T) {
	st, dir := newStoredTestLog(t, 4)
	sealEvery(t, st, 1000)
	fillBoth(nil, st, 20, 7)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if st.StoreTables() == 0 {
		t.Fatal("no tables sealed")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := listTableFiles(dir, "n1", testSuite.HashSize())
	if err != nil || len(names) == 0 {
		t.Fatalf("tables on disk: %v, %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4); err == nil {
		t.Fatal("Open accepted a tampered table file")
	}
}

// TestStoreOrphanTableCollected plants an unreferenced table file (the
// footprint of a seal or compaction that crashed before its manifest swap)
// and checks Open removes it and recovers cleanly.
func TestStoreOrphanTableCollected(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	sealEvery(t, st, 1000)
	fillBoth(mem, st, 20, 7)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, tableFileName("n1", testSuite.Hash([]byte("orphan"))))
	if err := os.WriteFile(orphan, []byte("half-written table"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkIdentical(t, re, mem)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan table not collected: %v", err)
	}
}

// TestStoreInterruptedSealRecovered fabricates the on-disk state of a seal
// that crashed after the manifest swap but before the tail rotation: the
// tail still holds every record the fresh table also holds. Open must skip
// the duplicates, finish the rotation, and serve identically.
func TestStoreInterruptedSealRecovered(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	sealEvery(t, st, 1000)
	fillBoth(mem, st, 12, 5)
	if err := st.Sync(); err != nil { // seals 1..12, rotates tail to base 13
		t.Fatal(err)
	}
	if !st.SetStoreTuning(1<<30, 1000) { // keep the rest in the tail
		t.Fatal("tuning failed")
	}
	fillBoth(mem, st, 4, 0) // 13..16 live in the new tail
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebuild the pre-rotation tail: header at base 1 with no base hash,
	// then all 16 records — the sealed 12 framed from the table file, the
	// post-seal 4 from the current tail.
	names, err := listTableFiles(dir, "n1", testSuite.HashSize())
	if err != nil || len(names) != 1 {
		t.Fatalf("want exactly one table, have %v (%v)", names, err)
	}
	tbl, err := openTable(filepath.Join(dir, names[0]), "n1", testSuite, nil)
	if err != nil {
		t.Fatal(err)
	}
	var region []byte
	var hdr [binary.MaxVarintLen64]byte
	for seq := tbl.base; seq <= tbl.end(); seq++ {
		rec := tbl.record(seq)
		n := binary.PutUvarint(hdr[:], uint64(len(rec)))
		region = append(region, hdr[:n]...)
		region = append(region, rec...)
	}
	tailPath := filepath.Join(dir, storeFileName("n1"))
	tailRaw, err := os.ReadFile(tailPath)
	if err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(tailRaw)
	r.Raw(len(storeMagic))
	_ = r.String()
	r.Uint()
	r.BytesField()
	region = append(region, tailRaw[len(tailRaw)-r.Remaining():]...)
	if err := tbl.close(); err != nil {
		t.Fatal(err)
	}

	w := wire.NewWriter(64)
	w.Raw(storeMagic)
	w.String("n1")
	w.Uint(1)
	w.BytesField(nil)
	if err := os.WriteFile(tailPath, append(w.Bytes(), region...), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, re, mem)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// The healed tail must start past the sealed range again.
	again, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if base := again.store.base; base != tbl.end()+1 {
		t.Fatalf("tail not re-rotated: base=%d, want %d", base, tbl.end()+1)
	}
	checkIdentical(t, again, mem)
}

// TestStoreManifestLossWithTables deletes the manifest of a sealed store:
// recovery must reassemble the table chain from the self-describing files
// (content address + embedded chain linkage) and still serve everything.
func TestStoreManifestLossWithTables(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	sealEvery(t, st, 1000)
	for i := 0; i < 3; i++ {
		fillBoth(mem, st, 10, 7)
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if st.StoreTables() < 3 {
		t.Fatalf("expected >=3 tables, have %d", st.StoreTables())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, metaFileName("n1"))); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkIdentical(t, re, mem)
}

// TestStoreSealAcrossTruncate truncates, keeps appending, and seals: sealed
// tables then contain records below the retention boundary whose hashes the
// log no longer indexes (seal re-derives them from the bytes). Everything
// retained must match the in-memory twin, before and after reopen.
func TestStoreSealAcrossTruncate(t *testing.T) {
	mem := newTestLog(t)
	st, dir := newStoredTestLog(t, 4)
	fillBoth(mem, st, 20, 6)
	mem.Truncate(9)
	st.Truncate(9)
	sealEvery(t, st, 1000)
	fillBoth(mem, st, 10, 0)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if st.StoreTables() == 0 {
		t.Fatal("no tables sealed")
	}
	checkIdentical(t, st, mem)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "n1", testSuite, testKey(t, 1), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkIdentical(t, re, mem)
}
