package seclog

import (
	"bytes"
	"fmt"

	"repro/internal/cryptoutil"
)

// Merkle hash trees authenticate checkpoint items so that a querier can
// download and verify a *partial* checkpoint (§7.7 verifies partial Quagga
// checkpoints with a Merkle hash tree). Leaves are hashed with a 0x00
// domain prefix and interior nodes with 0x01, preventing second-preimage
// splices between levels.

func merkleLeaf(suite cryptoutil.Suite, data []byte) []byte {
	return suite.Hash([]byte{0}, data)
}

func merkleNode(suite cryptoutil.Suite, left, right []byte) []byte {
	return suite.Hash([]byte{1}, left, right)
}

// MerkleRoot computes the root over the given leaf datas. The root of zero
// leaves is the hash of an empty leaf.
func MerkleRoot(suite cryptoutil.Suite, leaves [][]byte) []byte {
	if len(leaves) == 0 {
		return merkleLeaf(suite, nil)
	}
	level := make([][]byte, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(suite, l)
	}
	for len(level) > 1 {
		var next [][]byte
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(suite, level[i], level[i+1]))
			} else {
				// Odd node is promoted unchanged.
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// MerkleProof returns the sibling hashes needed to verify leaf i against
// the root of the given leaves.
func MerkleProof(suite cryptoutil.Suite, leaves [][]byte, i int) ([][]byte, error) {
	if i < 0 || i >= len(leaves) {
		return nil, fmt.Errorf("seclog: merkle proof index %d of %d", i, len(leaves))
	}
	level := make([][]byte, len(leaves))
	for j, l := range leaves {
		level[j] = merkleLeaf(suite, l)
	}
	var proof [][]byte
	for len(level) > 1 {
		sib := i ^ 1
		if sib < len(level) {
			proof = append(proof, level[sib])
		} else {
			proof = append(proof, nil) // odd promotion: no sibling
		}
		var next [][]byte
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, merkleNode(suite, level[j], level[j+1]))
			} else {
				next = append(next, level[j])
			}
		}
		level = next
		i /= 2
	}
	return proof, nil
}

// MerkleVerify checks that data is leaf i of a tree with the given root.
func MerkleVerify(suite cryptoutil.Suite, root, data []byte, i int, proof [][]byte) bool {
	h := merkleLeaf(suite, data)
	for _, sib := range proof {
		if sib == nil {
			// Odd promotion at this level.
		} else if i%2 == 0 {
			h = merkleNode(suite, h, sib)
		} else {
			h = merkleNode(suite, sib, h)
		}
		i /= 2
	}
	return bytes.Equal(h, root)
}
