// Background compaction for the segment store: folds accumulations of small
// sealed tables into one wide table (structural sharing — record bytes and
// chain hashes are copied verbatim, never re-encoded or re-hashed) and drops
// tables that have fallen wholly below the retention boundary (§5.6).
//
// Compaction only ever touches sealed tables; the active tail, the synced
// head, and the chain itself are invariant under it. The commit order
// mirrors sealing: build and fsync the replacement table, swap the manifest,
// only then delete the replaced files — a crash at any point leaves either
// an unreferenced new table or undeleted old ones, both collected by Open.
package seclog

import (
	"fmt"
	"os"
)

// maybeCompactLocked starts a background compaction pass when there is work:
// droppable tables below the retention boundary, or more sealed tables than
// foldAt. Single-flight; callers hold mu.
func (s *Store) maybeCompactLocked() {
	if s.compacting || s.closed {
		return
	}
	drop := false
	for _, t := range s.tables {
		if t.end() < s.man.first {
			drop = true
			break
		}
	}
	if !drop && len(s.tables) <= s.foldAt {
		return
	}
	s.compacting = true
	s.wg.Add(1)
	go s.compactLoop()
}

func (s *Store) compactLoop() {
	defer s.wg.Done()
	err := s.compactOnce()
	s.mu.Lock()
	s.compacting = false
	if err != nil {
		s.compactErr = err
	}
	s.mu.Unlock()
}

// compactOnce runs one compaction pass over a snapshot of the sealed tables.
// New tables sealed while it runs only ever append to the list, and the
// single-flight flag keeps a second pass from replacing the prefix, so the
// snapshot is still a prefix of s.tables at swap time.
func (s *Store) compactOnce() error {
	s.mu.Lock()
	snap := append([]*tableFile(nil), s.tables...)
	first := s.man.first
	foldAt := s.foldAt
	s.mu.Unlock()

	// Partition the snapshot: tables wholly below the retention boundary
	// are dropped; the rest fold into one when there are too many.
	cut := 0
	for cut < len(snap) && snap[cut].end() < first {
		cut++
	}
	dropped, live := snap[:cut], snap[cut:]
	var folded *tableFile
	if len(live) > foldAt && len(live) > 1 {
		var err error
		folded, err = s.foldTables(live, first)
		if err != nil {
			return err
		}
	} else if len(dropped) == 0 {
		return nil // raced a truncate that already advanced past the work
	}

	if s.hooks.MidCompact != nil {
		s.hooks.MidCompact()
	}

	// Commit: swap the manifest to the new table set.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if folded != nil {
			_ = folded.close()
			_ = os.Remove(folded.path)
		}
		return nil
	}
	if len(s.tables) < len(snap) {
		s.mu.Unlock()
		return fmt.Errorf("seclog: compaction snapshot is no longer a prefix")
	}
	suffix := s.tables[len(snap):]
	var next []*tableFile
	if folded != nil {
		next = append(next, folded)
	} else {
		next = append(next, live...)
	}
	next = append(next, suffix...)
	s.tables = next
	s.man.tables = s.man.tables[:0]
	for _, t := range s.tables {
		s.man.tables = append(s.man.tables, manifestTable{hash: t.hash, base: t.base, count: t.count()})
	}
	err := s.writeMetaLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}

	// The old files are no longer referenced; retire them. A fold that
	// produced identical content reuses the same file — never delete the
	// path the new table lives at.
	retire := dropped
	if folded != nil {
		retire = append(retire, live...)
	}
	for _, t := range retire {
		if folded != nil && t.path == folded.path {
			continue
		}
		if cerr := t.close(); cerr != nil && err == nil {
			err = cerr
		}
		if rerr := os.Remove(t.path); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// foldTables builds one table holding every record of the given run that is
// at or past the retention boundary. Record bytes and addresses are shared
// structurally from the source mappings; nothing is re-encoded or re-hashed
// except the new file's own content address.
func (s *Store) foldTables(live []*tableFile, first uint64) (*tableFile, error) {
	base := live[0].base
	baseHash := live[0].baseHash
	if first > base {
		// Drop records below the boundary; the fold starts at the boundary
		// and its base hash is the chain value just before it.
		base = first
		for _, t := range live {
			if t.has(first - 1) {
				baseHash = t.addr(first - 1)
			} else if t.base == first && len(t.baseHash) > 0 {
				baseHash = t.baseHash
			}
		}
	}
	var recs []tableRecord
	for _, t := range live {
		for seq := t.base; seq <= t.end(); seq++ {
			if seq < base {
				continue
			}
			metered := int64(len(t.record(seq)))
			var ckptSize int64
			for _, c := range t.ckpts {
				if c.seq == seq {
					metered = c.size
					ckptSize = c.size
				}
			}
			recs = append(recs, tableRecord{addr: t.addr(seq), rec: t.record(seq), metered: metered, ckptSize: ckptSize})
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("seclog: fold of %d tables kept no records", len(live))
	}
	return writeTable(s.dir, s.node, s.suite, base, baseHash, recs)
}
