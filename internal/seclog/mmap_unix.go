//go:build unix

package seclog

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and returns the mapping plus its
// release function. Table files are immutable once renamed into place, so a
// shared read-only mapping is safe for the file's whole lifetime; the release
// function must be called exactly once, after which the returned bytes are
// invalid.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("seclog: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("seclog: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
