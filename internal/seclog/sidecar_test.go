package seclog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildSyncedStore creates a store-backed log with n entries and a durably
// synced head, closes it, and returns the dir plus the head state.
func buildSyncedStore(t *testing.T, n int) (dir string, headSeq uint64, headHash []byte) {
	t.Helper()
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, n, 0)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, live.Len(), live.HeadHash()
}

func reopenAndCheck(t *testing.T, dir string, wantLen uint64, wantHead []byte) {
	t.Helper()
	rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rec.Close()
	if rec.Len() != wantLen {
		t.Fatalf("recovered %d entries, want %d", rec.Len(), wantLen)
	}
	if !bytes.Equal(rec.HeadHash(), wantHead) {
		t.Error("recovered head hash differs")
	}
}

// TestSidecarMissing pins the fallback: with the sidecar deleted entirely,
// Open must replay the full chain and recover every record that reached the
// data file, not refuse the store.
func TestSidecarMissing(t *testing.T) {
	dir, n, head := buildSyncedStore(t, 15)
	if err := os.Remove(filepath.Join(dir, metaFileName("n1"))); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, n, head)
}

// TestSidecarTruncated simulates a crash racing the sidecar rewrite on a
// filesystem without atomic rename: every proper prefix of the sidecar bytes
// must be treated as absent (full-chain replay), never as an error.
func TestSidecarTruncated(t *testing.T) {
	dir, n, head := buildSyncedStore(t, 15)
	path := filepath.Join(dir, metaFileName("n1"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
		if err != nil {
			t.Fatalf("Open with sidecar cut to %d bytes: %v", cut, err)
		}
		if rec.Len() != n || !bytes.Equal(rec.HeadHash(), head) {
			rec.Close()
			t.Fatalf("sidecar cut to %d: recovered %d entries", cut, rec.Len())
		}
		// Open heals the sidecar; re-damage it from the original for the
		// next iteration.
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSidecarGarbage: arbitrary bytes in place of the sidecar (wrong magic,
// magic plus trailing junk, pure noise) fall back to full-chain replay.
func TestSidecarGarbage(t *testing.T) {
	dir, n, head := buildSyncedStore(t, 12)
	path := filepath.Join(dir, metaFileName("n1"))
	for _, garbage := range [][]byte{
		[]byte("not a sidecar at all"),
		bytes.Repeat([]byte{0xff}, 64),
		append(append([]byte(nil), metaMagic...), bytes.Repeat([]byte{0xee}, 40)...),
		append(append([]byte(nil), metaMagic...), 0x01),
		{0x00},
	} {
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, dir, n, head)
	}
}

// TestSidecarHealedAfterOpen: recovery rewrites a fresh sidecar, so the
// *next* Open regains the synced-head tamper check.
func TestSidecarHealedAfterOpen(t *testing.T) {
	dir, n, _ := buildSyncedStore(t, 10)
	metaPath := filepath.Join(dir, metaFileName("n1"))
	if err := os.WriteFile(metaPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	first, headSeq, _, ok, err := ReadSidecar(dir, "n1")
	if err != nil || !ok {
		t.Fatalf("sidecar not healed after Open: ok=%v err=%v", ok, err)
	}
	if first != 1 || headSeq != n {
		t.Fatalf("healed sidecar has first=%d head=%d, want 1, %d", first, headSeq, n)
	}
	// With the healed sidecar, chopping synced entries off the data file is
	// once again refused as evidence loss, not mistaken for a crash.
	dataPath := filepath.Join(dir, storeFileName("n1"))
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "n1", testSuite, nil, nil, 0); err == nil {
		t.Fatal("store that lost synced entries accepted after sidecar heal")
	}
}

// TestSidecarValidStillEnforced: the fallback must not weaken the check when
// the sidecar IS intact — a valid sidecar whose synced head exceeds the
// recovered chain still fails Open.
func TestSidecarValidStillEnforced(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 10, 0)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop the last record from the data file; the sidecar still vouches for
	// head 10.
	dataPath := filepath.Join(dir, storeFileName("n1"))
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataPath, raw[:len(raw)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "n1", testSuite, nil, nil, 0); err == nil {
		t.Fatal("store missing synced entries accepted")
	}
}

// TestStoreHooksTornWrite drives the MidFlush crash-injection hook: the
// snapshot taken between the two halves of the split group write is exactly
// the disk image a SIGKILL at that instant leaves behind, and recovery must
// truncate the torn last record and report the torn bytes.
func TestStoreHooksTornWrite(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	crashDir := t.TempDir()

	var appended []uint64
	snapped := false
	ok := live.SetStoreHooks(StoreHooks{
		AfterAppend: func(seq uint64) { appended = append(appended, seq) },
		MidFlush: func() {
			if snapped {
				return
			}
			snapped = true
			for _, name := range []string{storeFileName("n1"), metaFileName("n1")} {
				raw, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					if os.IsNotExist(err) {
						continue
					}
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(crashDir, name), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		},
	})
	if !ok {
		t.Fatal("SetStoreHooks returned false for a store-backed log")
	}
	fillBoth(nil, live, 8, 0)
	if len(appended) != 8 || appended[0] != 1 || appended[7] != 8 {
		t.Fatalf("AfterAppend saw seqs %v, want 1..8", appended)
	}
	if err := live.Flush(); err != nil { // triggers the split write + snapshot
		t.Fatal(err)
	}
	if !snapped {
		t.Fatal("MidFlush hook never fired")
	}

	rec, err := Open(crashDir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatalf("Open of mid-flush crash image: %v", err)
	}
	defer rec.Close()
	if rec.Len() != 7 {
		t.Fatalf("recovered %d entries from torn image, want 7 (8th torn)", rec.Len())
	}
	if rec.RecoveredTornBytes() == 0 {
		t.Error("RecoveredTornBytes = 0 for a torn image")
	}
	if !bytes.Equal(rec.HeadHash(), live.HashAt(7)) {
		t.Error("recovered head does not match the intact prefix")
	}
	// The in-memory hook accounting aside, the live log itself is unharmed:
	// the second half of the split write completed.
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, 8, live.HeadHash())
}

// TestSyncedHeadAccessor pins the SyncedHead/ReadSidecar agreement contract
// the multi-process harness relies on to verify post-crash log heads.
func TestSyncedHeadAccessor(t *testing.T) {
	mem := newTestLog(t)
	if seq, hash := mem.SyncedHead(); seq != 0 || hash != nil {
		t.Error("in-memory log reported a synced head")
	}
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 6, 0)
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}
	seq, hash := live.SyncedHead()
	if seq != 6 || !bytes.Equal(hash, live.HeadHash()) {
		t.Fatalf("SyncedHead = (%d, %x), want (6, head)", seq, hash)
	}
	_, scSeq, scHash, ok, err := ReadSidecar(dir, "n1")
	if err != nil || !ok {
		t.Fatalf("ReadSidecar: ok=%v err=%v", ok, err)
	}
	if scSeq != seq || !bytes.Equal(scHash, hash) {
		t.Error("ReadSidecar disagrees with SyncedHead")
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if !live.SetStoreHooks(StoreHooks{}) {
		t.Error("SetStoreHooks on closed store-backed log returned false")
	}
	if mem.SetStoreHooks(StoreHooks{}) {
		t.Error("SetStoreHooks on in-memory log returned true")
	}
}
