package seclog_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// FuzzEntryUnmarshalWire drives the log-entry decoder with arbitrary bytes —
// the shape a compromised node puts in a retrieved segment. Decoding must
// never panic, and anything that decodes must re-encode to a value-identical
// entry (the encoding is symmetric since the checkpoint-payload fix).
func FuzzEntryUnmarshalWire(f *testing.F) {
	for _, b := range adversary.WireCorpus().Entries {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var e seclog.Entry
		if err := wire.Decode(data, &e); err != nil {
			return
		}
		// Round trip: encode, decode, compare. Byte equality is too strong
		// (varints accept non-minimal forms), value equality is the
		// contract.
		enc := wire.Encode(&e)
		var e2 seclog.Entry
		if err := wire.Decode(enc, &e2); err != nil {
			t.Fatalf("re-decode of re-encoded entry failed: %v\ninput: %x", err, data)
		}
		if !reflect.DeepEqual(&e, &e2) {
			t.Fatalf("entry round trip diverged:\n%#v\nvs\n%#v", e, e2)
		}
		// The metered size must be positive and consistent.
		if e.WireSize() <= 0 {
			t.Fatalf("non-positive WireSize for decoded entry %#v", e)
		}
	})
}

// FuzzSegmentVerifyAgainst decodes arbitrary bytes as a retrieved segment
// and verifies it against an (arbitrary-position) authenticator: the
// verification path consumes purely peer-controlled data and must reject —
// never panic on — anything a compromised node could serve.
func FuzzSegmentVerifyAgainst(f *testing.F) {
	c := adversary.WireCorpus()
	for _, b := range c.Segments {
		f.Add(b, uint64(1))
		f.Add(b, uint64(0))
	}
	f.Add([]byte{0x01, 0x62}, ^uint64(0))
	key, err := cryptoutil.PooledKey(cryptoutil.Ed25519SHA256, 1)
	if err != nil {
		f.Fatal(err)
	}
	pub := key.Public()
	f.Fuzz(func(t *testing.T, data []byte, authSeq uint64) {
		var seg seclog.SegmentData
		if err := wire.Decode(data, &seg); err != nil {
			return
		}
		auth := seclog.Authenticator{Node: seg.Node, Seq: authSeq,
			T: types.Second, Hash: bytes.Repeat([]byte{0xAB}, 32), Sig: []byte("nonsense")}
		// Either outcome is fine; a panic is the only failure.
		_, _ = seg.VerifyAgainst(cryptoutil.Ed25519SHA256, nil, pub, auth)
	})
}
