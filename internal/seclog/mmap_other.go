//go:build !unix

package seclog

import (
	"fmt"
	"io"
	"os"
)

// mapFile is the portable fallback for platforms without syscall.Mmap: the
// file is read into memory once. Semantics match the unix version — the
// returned bytes are immutable and valid until the release function runs.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, fmt.Errorf("seclog: read table: %w", err)
	}
	return data, func() error { return nil }, nil
}
