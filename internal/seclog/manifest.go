// The manifest generalizes the old single-record sidecar: besides the
// logical first and last synced head it now pins the set of sealed table
// files (by content address) and the base sequence of the active tail file.
// It is still one small file, rewritten atomically (tmp + rename) on every
// sync, truncate, seal, and compaction swap — the single commit point for
// every structural change to the store.
package seclog

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/wire"
)

// manifestTable is one sealed table reference: its content address plus the
// record range it claims, so recovery can detect a missing or swapped file
// before mapping anything.
type manifestTable struct {
	hash  []byte
	base  uint64
	count uint64
}

func (mt manifestTable) end() uint64 { return mt.base - 1 + mt.count }

// manifest mirrors the sidecar file. gross is the log's cumulative metered
// byte count through the synced head — persisted because compaction may
// delete the truncated records it would otherwise be recomputed from.
type manifest struct {
	first     uint64
	firstHash []byte
	head      uint64
	headHash  []byte
	gross     int64
	tailBase  uint64
	tables    []manifestTable
}

func encodeManifest(m *manifest) []byte {
	w := wire.NewWriter(128)
	w.Raw(metaMagic)
	w.Uint(m.first)
	w.BytesField(m.firstHash)
	w.Uint(m.head)
	w.BytesField(m.headHash)
	w.Int(m.gross)
	w.Uint(m.tailBase)
	w.Uint(uint64(len(m.tables)))
	for _, t := range m.tables {
		w.BytesField(t.hash)
		w.Uint(t.base)
		w.Uint(t.count)
	}
	return w.Bytes()
}

// decodeManifest parses a sidecar image. ok is false for anything that is
// not a complete, well-formed manifest — the caller treats that as an absent
// sidecar (see readMeta), never as an error.
func decodeManifest(raw []byte) (*manifest, bool) {
	if len(raw) < len(metaMagic) || !bytes.Equal(raw[:len(metaMagic)], metaMagic) {
		return nil, false
	}
	r := wire.NewReader(raw[len(metaMagic):])
	m := &manifest{}
	m.first = r.Uint()
	m.firstHash = r.BytesField()
	m.head = r.Uint()
	m.headHash = r.BytesField()
	m.gross = r.Int()
	m.tailBase = r.Uint()
	n := r.Count()
	for i := 0; i < n; i++ {
		m.tables = append(m.tables, manifestTable{
			hash:  r.BytesField(),
			base:  r.Uint(),
			count: r.Uint(),
		})
	}
	if r.Finish() != nil {
		return nil, false
	}
	// Structural sanity: tables must be non-empty, contiguous, and end
	// before the tail base. A manifest that fails these is as useless as a
	// torn one.
	prevEnd := uint64(0)
	for i, t := range m.tables {
		if t.count == 0 || t.base == 0 || len(t.hash) == 0 {
			return nil, false
		}
		if i > 0 && t.base != prevEnd+1 {
			return nil, false
		}
		prevEnd = t.end()
	}
	if len(m.tables) > 0 && m.tailBase != prevEnd+1 {
		return nil, false
	}
	return m, true
}

// readMeta loads the sidecar; ok is false when none exists (a store that was
// never synced or truncated) — or when the bytes do not decode as a manifest.
//
// A missing, truncated, or garbled sidecar is treated as absent rather than
// fatal: the sidecar is rewritten (tmp + rename) on every sync, and a crash
// racing that rewrite on a non-atomic filesystem can leave torn bytes behind.
// Recovery then falls back to reassembling whatever verifies on disk — table
// files vouch for themselves (content address + embedded chain), the tail is
// replayed against its header hash. The cost of the fallback is
// discrimination, not safety: without a trusted synced head the store cannot
// distinguish a tamperer who truncated the file from a crash that lost a
// tail — the same epistemic state as a store that was never synced. The §4.2
// guarantee is unaffected either way, because provable evidence rests on
// peer-held authenticators, never on the node's own sidecar. Only a real I/O
// error (unreadable file) remains fatal.
func readMeta(path string) (*manifest, bool, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("seclog: store meta: %w", err)
	}
	m, ok := decodeManifest(raw)
	return m, ok, nil
}
