// Content-addressed table files: the immutable storage unit of the segment
// store (modeled on noms-style block stores). A table holds a contiguous run
// of sealed log records together with their chain hashes, is named by the
// hash of its own bytes, and is never modified after the rename that puts it
// in place — compaction builds replacement tables and deletes old ones, it
// never rewrites.
//
// Layout (wire varints throughout; the index precedes the record region so a
// reader can bound every allocation before touching record bytes):
//
//	magic "SNPTBL1\n"
//	node string
//	baseSeq uint          sequence of the first record
//	baseHash bytes        chain hash h_{baseSeq-1}
//	addrLen uint          chain-hash length (the suite's digest size)
//	gross int             metered wire bytes of all records (digest form)
//	ckpts count × (seq uint, size int)
//	count × (addr raw[addrLen], recLen uint)
//	record region         count concatenated canonical entry encodings
//
// The file name is <escaped-node>.<hex(H(file))>.tbl; openTable recomputes
// the hash over the mapped bytes and refuses a file whose content does not
// match its address, which preserves the store's tamper-evidence for sealed
// history without decoding a single record.
package seclog

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

var tableMagic = []byte("SNPTBL1\n")

const tableSuffix = ".tbl"

// tableRecord is one record handed to writeTable: the entry's chain hash
// (its address), its canonical wire encoding, and its metered size (digest
// form for checkpoints — what the log's gross accounting uses). ckptSize is
// zero for non-checkpoint records.
type tableRecord struct {
	addr     []byte
	rec      []byte
	metered  int64
	ckptSize int64
}

// tableFile is an open, memory-mapped table. All fields are immutable after
// openTable; addrs and record slices alias the mapping and are only valid
// until release runs (the store copies anything that escapes).
type tableFile struct {
	path    string
	hash    []byte
	data    []byte
	release func() error

	base     uint64
	baseHash []byte
	gross    int64
	ckpts    []ckptRef
	addrs    [][]byte
	offs     []int64 // record offsets into data, one per record
	lens     []int64
}

func (t *tableFile) count() uint64 { return uint64(len(t.addrs)) }
func (t *tableFile) end() uint64   { return t.base - 1 + t.count() }

// headHash is the chain hash of the table's last record.
func (t *tableFile) headHash() []byte {
	if len(t.addrs) == 0 {
		return t.baseHash
	}
	return t.addrs[len(t.addrs)-1]
}

// has reports whether seq falls inside the table.
func (t *tableFile) has(seq uint64) bool { return seq >= t.base && seq <= t.end() }

// record returns the raw encoding of record seq, aliasing the mapping.
func (t *tableFile) record(seq uint64) []byte {
	i := seq - t.base
	return t.data[t.offs[i] : t.offs[i]+t.lens[i]]
}

// addr returns the chain hash of record seq, aliasing the mapping.
func (t *tableFile) addr(seq uint64) []byte { return t.addrs[seq-t.base] }

func (t *tableFile) close() error {
	if t.release == nil {
		return nil
	}
	rel := t.release
	t.release = nil
	return rel()
}

// tableFileName maps (node, content hash) to the table's file name.
func tableFileName(node types.NodeID, hash []byte) string {
	return url.PathEscape(string(node)) + "." + hex.EncodeToString(hash) + tableSuffix
}

// listTableFiles returns the names of node's table files under dir, in
// directory order (sorted by os.ReadDir). Only names of the exact shape
// <escaped-node>.<hex>.tbl with a digest-length hex address match.
func listTableFiles(dir string, node types.NodeID, hashLen int) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("seclog: store dir: %w", err)
	}
	prefix := url.PathEscape(string(node)) + "."
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, tableSuffix) {
			continue
		}
		hexPart := name[len(prefix) : len(name)-len(tableSuffix)]
		if len(hexPart) != 2*hashLen {
			continue
		}
		if _, err := hex.DecodeString(hexPart); err != nil {
			continue
		}
		names = append(names, name)
	}
	return names, nil
}

// writeTable serializes recs into a table file under dir, fsyncs it, renames
// it to its content-hash name, and returns the opened (mapped) table. recs
// must be non-empty and in sequence order starting at base.
func writeTable(dir string, node types.NodeID, suite cryptoutil.Suite,
	base uint64, baseHash []byte, recs []tableRecord) (*tableFile, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("seclog: empty table")
	}
	var gross int64
	var ckpts []ckptRef
	for i, r := range recs {
		gross += r.metered
		if r.ckptSize > 0 {
			ckpts = append(ckpts, ckptRef{seq: base + uint64(i), size: r.ckptSize})
		}
	}
	w := wire.NewWriter(1 << 12)
	w.Raw(tableMagic)
	w.String(string(node))
	w.Uint(base)
	w.BytesField(baseHash)
	w.Uint(uint64(suite.HashSize()))
	w.Int(gross)
	w.Uint(uint64(len(ckpts)))
	for _, c := range ckpts {
		w.Uint(c.seq)
		w.Int(c.size)
	}
	w.Uint(uint64(len(recs)))
	for i, r := range recs {
		if len(r.addr) != suite.HashSize() {
			return nil, fmt.Errorf("seclog: table record %d has a %d-byte address", base+uint64(i), len(r.addr))
		}
		w.Raw(r.addr)
		w.Uint(uint64(len(r.rec)))
	}
	for _, r := range recs {
		w.Raw(r.rec)
	}
	hash := suite.Hash(w.Bytes())
	path := filepath.Join(dir, tableFileName(node, hash))
	if _, err := os.Stat(path); err == nil {
		// Identical content already sealed (same bytes hash to the same
		// address); reuse it rather than racing a rename onto ourselves.
		return openTable(path, node, suite, hash)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seclog: write table: %w", err)
	}
	if _, err := f.Write(w.Bytes()); err != nil {
		f.Close()
		return nil, fmt.Errorf("seclog: write table: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("seclog: sync table: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("seclog: close table: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("seclog: publish table: %w", err)
	}
	return openTable(path, node, suite, hash)
}

// openTable maps a table file and parses its header and index, verifying the
// whole-file content hash against wantHash (or against the address embedded
// in the file name when wantHash is nil). Every size in the header is
// bounded against the bytes actually present before it drives an allocation.
func openTable(path string, node types.NodeID, suite cryptoutil.Suite, wantHash []byte) (*tableFile, error) {
	if wantHash == nil {
		name := filepath.Base(path)
		dot := strings.LastIndexByte(strings.TrimSuffix(name, tableSuffix), '.')
		if dot < 0 || !strings.HasSuffix(name, tableSuffix) {
			return nil, fmt.Errorf("seclog: %s is not a table file", path)
		}
		h, err := hex.DecodeString(name[dot+1 : len(name)-len(tableSuffix)])
		if err != nil {
			return nil, fmt.Errorf("seclog: %s is not a table file", path)
		}
		wantHash = h
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seclog: open table: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("seclog: open table: %w", err)
	}
	data, release, err := mapFile(f, fi.Size())
	// The mapping outlives the descriptor; closing f here is safe on every
	// platform we map on.
	f.Close()
	if err != nil {
		return nil, err
	}
	t, perr := parseTable(data, node, suite, wantHash)
	if perr != nil {
		_ = release()
		return nil, fmt.Errorf("seclog: table %s: %w", filepath.Base(path), perr)
	}
	t.path = path
	t.release = release
	return t, nil
}

// parseTable validates and indexes a table image. It is the adversary-facing
// decode path for sealed history (fuzzed directly), so every count is checked
// against Remaining before allocation and every offset is bounds-checked.
func parseTable(data []byte, node types.NodeID, suite cryptoutil.Suite, wantHash []byte) (*tableFile, error) {
	if !bytes.Equal(suite.Hash(data), wantHash) {
		return nil, fmt.Errorf("content does not match its address")
	}
	r := wire.NewReader(data)
	if !bytes.Equal(r.Raw(len(tableMagic)), tableMagic) {
		return nil, fmt.Errorf("bad magic")
	}
	if got := types.NodeID(r.String()); got != node {
		return nil, fmt.Errorf("belongs to node %s, not %s", got, node)
	}
	t := &tableFile{hash: append([]byte(nil), wantHash...), data: data}
	t.base = r.Uint()
	t.baseHash = r.BytesField()
	addrLen := r.Uint()
	t.gross = r.Int()
	nCkpts := r.Count()
	for i := 0; i < nCkpts; i++ {
		t.ckpts = append(t.ckpts, ckptRef{seq: r.Uint(), size: r.Int()})
	}
	count := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if t.base == 0 {
		return nil, fmt.Errorf("invalid base sequence 0")
	}
	if addrLen != uint64(suite.HashSize()) {
		return nil, fmt.Errorf("address length %d does not match the suite", addrLen)
	}
	if count == 0 {
		return nil, fmt.Errorf("empty table")
	}
	var region int64
	for i := 0; i < count; i++ {
		addr := r.Raw(int(addrLen))
		recLen := r.Uint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if recLen == 0 || recLen > uint64(len(data)) {
			return nil, fmt.Errorf("record %d has length %d", t.base+uint64(i), recLen)
		}
		t.addrs = append(t.addrs, addr)
		t.offs = append(t.offs, region)
		t.lens = append(t.lens, int64(recLen))
		region += int64(recLen)
	}
	if int64(r.Remaining()) != region {
		return nil, fmt.Errorf("record region is %d bytes, index says %d", r.Remaining(), region)
	}
	start := int64(len(data) - r.Remaining())
	for i := range t.offs {
		t.offs[i] += start
	}
	for _, c := range t.ckpts {
		if !t.has(c.seq) {
			return nil, fmt.Errorf("checkpoint ref %d outside %d..%d", c.seq, t.base, t.end())
		}
	}
	return t, nil
}

// decodeTableEntry decodes record seq of t into a fresh Entry. Decoded
// entries never alias the mapping (wire's field decoders copy), so they stay
// valid after the table is retired.
func decodeTableEntry(t *tableFile, seq uint64) (*Entry, error) {
	e := new(Entry)
	if err := wire.Decode(t.record(seq), e); err != nil {
		return nil, fmt.Errorf("seclog: table record %d: %w", seq, err)
	}
	return e, nil
}
