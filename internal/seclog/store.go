// Segment store: a durable, append-only, file-backed home for a node's
// tamper-evident log (the Thist retention substrate of §5.6). The store
// holds the wire encoding of every entry ever appended; the Log keeps only a
// configurable hot tail of decoded entries resident and re-reads cold
// history on demand, so long retention windows no longer grow the heap.
//
// On-disk layout (per node): an active tail file, zero or more sealed
// content-addressed table files, and a manifest:
//
//	<dir>/<node>.seglog        header ‖ record*            (append-only tail)
//	<dir>/<node>.<hash>.tbl    immutable sealed tables     (see table.go)
//	<dir>/<node>.segmeta       manifest                    (rewritten atomically)
//
// The tail file header commits to the node ID, the sequence number of its
// first record, and the hash-chain value preceding it; each record is a
// uvarint length followed by the entry's canonical wire encoding — exactly
// the bytes the chain hash covers, so recovery can re-verify the chain
// without trusting anything but the header. When the synced tail grows past
// sealLimit, its records are sealed into a table file addressed by the hash
// of its own bytes and the tail is rotated; sealed history is then read
// through a shared read-only mapping instead of a pread per cold entry. A
// background compactor folds small tables together and drops tables that
// fall wholly below the retention boundary.
//
// Every structural change commits through the manifest swap, in an order
// that keeps some complete copy of every record reachable at all times:
// seal writes and fsyncs the table, swaps the manifest, then rotates the
// tail; compaction writes and fsyncs the folded table, swaps the manifest,
// then deletes the tables it replaced. A crash between any two steps leaves
// either an orphan table (not yet referenced — garbage-collected on Open) or
// a tail that still duplicates sealed records (skipped and re-rotated on
// Open).
//
// Crash recovery (Open) verifies sealed tables by their content address and
// inter-table chain linkage, replays only the tail — recomputing the hash
// chain from the persisted base hash — and truncates a torn or garbled tail
// left by a crash mid-append at the last intact record. If the manifest
// records a previously synced head, the recovered chain must still pass
// through it; a mismatch is evidence of tampering, not of a crash, and Open
// refuses the store.
package seclog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

// File-format magics. The trailing newline keeps accidental text files from
// matching. SNPMET2 is the manifest generation of the sidecar; SNPMET1
// sidecars (single synced-head record, no table list) read as absent, which
// recovery already treats as "never synced".
var (
	storeMagic = []byte("SNPSEG1\n")
	metaMagic  = []byte("SNPMET2\n")
)

// storeBufLimit is the append write-buffer threshold: records accumulate in
// memory and reach the file in one positioned write per storeBufLimit bytes
// (or earlier, when a cold read or a sync needs them), instead of two
// syscalls per record.
const storeBufLimit = 1 << 18

// storeSealLimit is the sealing threshold: once a sync finds at least this
// many record bytes in the tail, they are sealed into an immutable table
// file and the tail is rotated. Small stores (tests, short experiments)
// never reach it and live entirely in the tail, exactly as before tables
// existed.
const storeSealLimit = 1 << 18

// storeFoldAt is the table count past which the background compactor folds
// the sealed tables into one.
const storeFoldAt = 6

// sealInfoFn resolves, for a retained record about to be sealed, its chain
// hash (the table address), its metered size (digest form for checkpoints),
// and whether it is a checkpoint. The Log provides it from the indexes it
// already maintains, so sealing never re-hashes retained history.
type sealInfoFn func(seq uint64, recLen int64) (hash []byte, metered int64, ckptSize int64)

// Store is the file layer under a store-backed Log: an append-only tail
// file, the sealed tables, and an in-memory seq→offset index for the tail.
// The tail is owned by the Log's goroutine (nodes are single-threaded by
// contract); the sealed-table set and the manifest mirror are shared with
// the background compactor and guarded by mu.
//
// Appends are buffered: records land in buf and are written out in groups
// (flushBuf) when the buffer fills, when a read needs a still-buffered
// record, and — followed by one fsync for the whole group — on sync. A
// process crash can therefore lose up to bufLimit bytes of tail that a
// pre-buffering store would have handed to the OS; recovery already treats
// any missing tail past the last synced head as a torn append, so the
// failure model is unchanged, only the window is wider.
type Store struct {
	dir      string
	path     string
	metaPath string
	f        *os.File
	suite    cryptoutil.Suite

	// hooks are crash-injection points for fault testing (StoreHooks); all
	// are nil in production use.
	hooks StoreHooks

	node      types.NodeID
	base      uint64 // sequence number of the first record in the tail file
	baseHash  []byte // chain hash h_{base-1}
	offsets   []int64
	size      int64 // logical tail size: flushed bytes plus len(buf)
	headerLen int64

	buf      []byte
	flushed  int64 // bytes actually written to the tail file (buf starts here)
	bufLimit int   // flush threshold; 0 flushes after every append

	sealLimit int // tail record bytes that trigger sealing on sync
	foldAt    int // sealed-table count that triggers a background fold

	// mu guards everything below: the sealed tables, the manifest mirror,
	// and the compactor's single-flight state.
	mu         sync.Mutex
	tables     []*tableFile
	man        manifest // what the sidecar on disk says (or will say next write)
	synced     bool     // a manifest has been written
	compacting bool
	compactErr error
	closed     bool
	wg         sync.WaitGroup
}

// storeFileName maps a node ID to a safe file name (node IDs may contain
// path separators in principle; escape keeps one flat file per node).
func storeFileName(node types.NodeID) string { return url.PathEscape(string(node)) + ".seglog" }
func metaFileName(node types.NodeID) string  { return url.PathEscape(string(node)) + ".segmeta" }

// writeTailFile creates a fresh tail file at path (via tmp + rename when
// replacing a live one) holding the header and the given raw record region,
// and returns the open handle plus the header length.
func writeTailFile(path string, node types.NodeID, base uint64, baseHash []byte, records []byte, atomic bool) (*os.File, int64, error) {
	w := wire.NewWriter(64)
	w.Raw(storeMagic)
	w.String(string(node))
	w.Uint(base)
	w.BytesField(baseHash)
	headerLen := int64(w.Len())
	target := path
	if atomic {
		target = path + ".tmp"
	}
	f, err := os.OpenFile(target, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("seclog: create store: %w", err)
	}
	if _, err := f.Write(w.Bytes()); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("seclog: store header: %w", err)
	}
	if len(records) > 0 {
		if _, err := f.Write(records); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("seclog: store rotate: %w", err)
		}
	}
	if atomic {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("seclog: store rotate: %w", err)
		}
		if err := os.Rename(target, path); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("seclog: store rotate: %w", err)
		}
	}
	return f, headerLen, nil
}

// createStore creates (or truncates) the segment store for node under dir
// and writes the tail header. base is the sequence number the first appended
// record will get; baseHash is the chain value preceding it.
func createStore(dir string, node types.NodeID, suite cryptoutil.Suite, base uint64, baseHash []byte) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seclog: store dir: %w", err)
	}
	path := filepath.Join(dir, storeFileName(node))
	f, headerLen, err := writeTailFile(path, node, base, baseHash, nil, false)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		path:      path,
		metaPath:  filepath.Join(dir, metaFileName(node)),
		f:         f,
		suite:     suite,
		node:      node,
		base:      base,
		baseHash:  append([]byte(nil), baseHash...),
		headerLen: headerLen,
		size:      headerLen,
		flushed:   headerLen,
		bufLimit:  storeBufLimit,
		sealLimit: storeSealLimit,
		foldAt:    storeFoldAt,
	}
	// Remove any stale sidecar and tables from an earlier incarnation of
	// this node.
	if err := os.Remove(s.metaPath); err != nil && !os.IsNotExist(err) {
		f.Close()
		return nil, fmt.Errorf("seclog: store meta: %w", err)
	}
	if stale, err := listTableFiles(dir, node, suite.HashSize()); err == nil {
		for _, name := range stale {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return s, nil
}

// append stages one record (the entry's wire encoding) in the write buffer
// and indexes it; the bytes reach the file on the next group flush.
func (s *Store) append(rec []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	off := s.size
	s.buf = append(s.buf, hdr[:n]...)
	s.buf = append(s.buf, rec...)
	s.offsets = append(s.offsets, off)
	s.size = off + int64(n) + int64(len(rec))
	if len(s.buf) >= s.bufLimit {
		if err := s.flushBuf(); err != nil {
			return err
		}
	}
	if s.hooks.AfterAppend != nil {
		s.hooks.AfterAppend(s.head())
	}
	return nil
}

// flushBuf writes the buffered records to the tail in one positioned write.
// With a MidFlush hook installed, the group is written in two parts — all but
// the final byte, the hook, then the final byte — so a hook that kills the
// process leaves a genuinely torn last record on disk, exactly the state a
// machine crash mid-append produces.
func (s *Store) flushBuf() error {
	if len(s.buf) == 0 {
		return nil
	}
	if s.hooks.MidFlush != nil && len(s.buf) >= 2 {
		n := len(s.buf) - 1
		if _, err := s.f.WriteAt(s.buf[:n], s.flushed); err != nil {
			return fmt.Errorf("seclog: store append: %w", err)
		}
		s.hooks.MidFlush()
		if _, err := s.f.WriteAt(s.buf[n:], s.flushed+int64(n)); err != nil {
			return fmt.Errorf("seclog: store append: %w", err)
		}
	} else if _, err := s.f.WriteAt(s.buf, s.flushed); err != nil {
		return fmt.Errorf("seclog: store append: %w", err)
	}
	s.flushed += int64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// head returns the sequence number of the last record (base-1 when the tail
// is empty — the tail base always follows the sealed tables directly, so
// this is the store-wide head too).
func (s *Store) head() uint64 { return s.base - 1 + uint64(len(s.offsets)) }

// entry reads and decodes record seq: straight from the tail file for
// records past the tail base, from the sealed tables' shared mapping (no
// read syscall) for older ones.
func (s *Store) entry(seq uint64) (*Entry, error) {
	if seq >= s.base {
		return s.tailEntry(seq)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tables {
		if t.has(seq) {
			return decodeTableEntry(t, seq)
		}
	}
	lo := s.base
	if len(s.tables) > 0 {
		lo = s.tables[0].base
	}
	return nil, fmt.Errorf("seclog: store has no record %d (have %d..%d)", seq, lo, s.head())
}

// tailEntry serves a record from the active tail file.
func (s *Store) tailEntry(seq uint64) (*Entry, error) {
	if seq > s.head() {
		return nil, fmt.Errorf("seclog: store has no record %d (have %d..%d)", seq, s.base, s.head())
	}
	i := seq - s.base
	start := s.offsets[i]
	end := s.size
	if i+1 < uint64(len(s.offsets)) {
		end = s.offsets[i+1]
	}
	if end > s.flushed {
		// The record (or its tail) is still in the write buffer.
		if err := s.flushBuf(); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, end-start)
	if _, err := s.f.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("seclog: store read %d: %w", seq, err)
	}
	n, ln := binary.Uvarint(buf)
	if ln <= 0 || uint64(len(buf)-ln) != n {
		return nil, fmt.Errorf("seclog: store record %d has a corrupt length", seq)
	}
	e := new(Entry)
	if err := wire.Decode(buf[ln:], e); err != nil {
		return nil, fmt.Errorf("seclog: store record %d: %w", seq, err)
	}
	return e, nil
}

// writeMetaLocked atomically rewrites the sidecar from the manifest mirror.
// Callers hold mu.
func (s *Store) writeMetaLocked() error {
	raw := encodeManifest(&s.man)
	tmp := s.metaPath + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("seclog: store meta: %w", err)
	}
	if err := os.Rename(tmp, s.metaPath); err != nil {
		return fmt.Errorf("seclog: store meta: %w", err)
	}
	s.synced = true
	return nil
}

// ReadSidecar reports the on-disk sidecar state for node under dir: the
// logical first sequence and the last durably synced head (seq + chain
// hash). ok is false when no intact sidecar exists. It reads only the small
// sidecar file — safe to call on a live store from another process, since
// the sidecar is replaced atomically.
func ReadSidecar(dir string, node types.NodeID) (first, headSeq uint64, headHash []byte, ok bool, err error) {
	m, ok, err := readMeta(filepath.Join(dir, metaFileName(node)))
	if !ok || err != nil {
		return 0, 0, nil, ok, err
	}
	return m.first, m.head, m.headHash, true, nil
}

// sync group-commits the buffered appends (one write, one fsync for the
// whole group) and records the current state in the manifest, so a later
// Open can distinguish tampering from a crash up to this point. When the
// synced tail has outgrown sealLimit, its records are sealed into a table
// file and the tail is rotated; info resolves chain hashes and metered sizes
// for retained records (nil disables sealing — used only while healing
// during Open, before the Log exists).
func (s *Store) sync(first uint64, firstHash []byte, headSeq uint64, headHash []byte, gross int64, info sealInfoFn) error {
	if err := s.flushBuf(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("seclog: store sync: %w", err)
	}
	s.mu.Lock()
	s.man.first = first
	s.man.firstHash = append([]byte(nil), firstHash...)
	s.man.head = headSeq
	s.man.headHash = append([]byte(nil), headHash...)
	s.man.gross = gross
	s.man.tailBase = s.base
	err := s.writeMetaLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if info != nil && s.size-s.headerLen >= int64(s.sealLimit) && s.head() >= s.base {
		if err := s.seal(first, headHash, info); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.maybeCompactLocked()
	s.mu.Unlock()
	return nil
}

// seal moves the tail's records (all of them — the tail is fully flushed and
// fsynced by the time seal runs) into an immutable content-addressed table
// and rotates the tail to empty. Commit order: table fsynced first, manifest
// swap second, tail rotation last; a crash leaves either an unreferenced
// table or a tail whose leading records duplicate the freshly sealed table,
// both of which Open repairs.
func (s *Store) seal(first uint64, headHash []byte, info sealInfoFn) error {
	raw, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("seclog: store seal: %w", err)
	}
	if int64(len(raw)) != s.flushed {
		return fmt.Errorf("seclog: store seal: tail is %d bytes, expected %d", len(raw), s.flushed)
	}
	head := s.head()
	recs := make([]tableRecord, 0, len(s.offsets))
	prev := s.baseHash
	for i, off := range s.offsets {
		seq := s.base + uint64(i)
		end := s.flushed
		if i+1 < len(s.offsets) {
			end = s.offsets[i+1]
		}
		frame := raw[off:end]
		n, ln := binary.Uvarint(frame)
		if ln <= 0 || uint64(len(frame)-ln) != n {
			return fmt.Errorf("seclog: store seal: record %d has a corrupt length", seq)
		}
		rec := frame[ln:]
		var tr tableRecord
		if seq >= first {
			hash, metered, ckptSize := info(seq, int64(len(rec)))
			tr = tableRecord{addr: hash, rec: rec, metered: metered, ckptSize: ckptSize}
		} else {
			// Truncated-but-retained record: the Log no longer indexes it,
			// so recompute its chain hash and metered size from the bytes.
			e := new(Entry)
			if derr := wire.Decode(rec, e); derr != nil {
				return fmt.Errorf("seclog: store seal: record %d: %w", seq, derr)
			}
			hash := chainHash(s.suite, nil, prev, e)
			metered := int64(len(rec))
			var ckptSize int64
			if e.Type == ECkpt {
				metered = int64(e.WireSize())
				ckptSize = metered
			}
			tr = tableRecord{addr: hash, rec: rec, metered: metered, ckptSize: ckptSize}
		}
		prev = tr.addr
		recs = append(recs, tr)
	}
	t, err := writeTable(s.dir, s.node, s.suite, s.base, s.baseHash, recs)
	if err != nil {
		return err
	}
	// Commit point: the manifest swap makes the table part of the store and
	// moves the tail base past it.
	s.mu.Lock()
	s.tables = append(s.tables, t)
	s.man.tables = append(s.man.tables, manifestTable{hash: t.hash, base: t.base, count: t.count()})
	s.man.tailBase = head + 1
	err = s.writeMetaLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// Rotate the tail. The sealed records stay reachable through the table
	// whatever happens from here on.
	f, headerLen, err := writeTailFile(s.path, s.node, head+1, headHash, nil, true)
	if err != nil {
		return err
	}
	old := s.f
	s.f = f
	_ = old.Close()
	s.base = head + 1
	s.baseHash = append([]byte(nil), headHash...)
	s.offsets = s.offsets[:0]
	s.headerLen = headerLen
	s.size = headerLen
	s.flushed = headerLen
	s.buf = s.buf[:0]
	return nil
}

// truncate persists a new logical first without claiming a newer synced
// head than the manifest already holds, then lets the compactor drop any
// tables that fell wholly below the boundary.
func (s *Store) truncate(first uint64, firstHash []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.synced && len(s.tables) == 0 {
		// Match the pre-table behavior: the first truncate of a never-synced
		// store creates the sidecar with a zero synced head.
		s.man.tailBase = s.base
	}
	s.man.first = first
	s.man.firstHash = append([]byte(nil), firstHash...)
	if err := s.writeMetaLocked(); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// syncedState returns the manifest's synced head (sequence and chain hash).
func (s *Store) syncedState() (uint64, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.head, append([]byte(nil), s.man.headHash...)
}

// close flushes buffered appends, waits for any in-flight compaction, and
// releases the tail handle and the table mappings.
func (s *Store) close() error {
	err := s.flushBuf()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.mu.Lock()
	tables := s.tables
	s.tables = nil
	s.mu.Unlock()
	for _, t := range tables {
		if cerr := t.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NewStored creates a Log whose entries are spilled to a fresh segment store
// under dir. hotTail bounds the number of decoded entries kept resident
// (<=0 keeps everything hot; the store is then pure durability).
func NewStored(dir string, node types.NodeID, suite cryptoutil.Suite, key cryptoutil.PrivateKey,
	stats *cryptoutil.Stats, hotTail int) (*Log, error) {
	st, err := createStore(dir, node, suite, 1, nil)
	if err != nil {
		return nil, err
	}
	l := New(node, suite, key, stats)
	l.store = st
	l.hotTail = hotTail
	return l, nil
}

// Open reopens a store-backed log from dir after a restart or crash. Sealed
// tables are verified by content address and chain linkage; the tail file is
// replayed, re-verifying the hash chain against the persisted base hash
// (and, when the manifest has a synced head, against that head); a torn tail
// left by a crash mid-append is truncated away; an interrupted seal or
// compaction is rolled forward or back (orphan tables collected, a
// half-rotated tail re-rotated) — so the reopened log serves retrieve and
// audit requests byte-for-byte identically to the log that wrote the files.
//
// key may be nil when the reopened log only serves reads (Segment, Entry,
// Hash); signing operations then fail.
func Open(dir string, node types.NodeID, suite cryptoutil.Suite, key cryptoutil.PrivateKey,
	stats *cryptoutil.Stats, hotTail int) (*Log, error) {
	path := filepath.Join(dir, storeFileName(node))
	metaPath := filepath.Join(dir, metaFileName(node))
	man, manOK, err := readMeta(metaPath)
	if err != nil {
		return nil, err
	}

	tables, gcNames, err := recoverTables(dir, node, suite, man, manOK)
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, t := range tables {
			_ = t.close()
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("seclog: open store: %w", err)
	}
	r := wire.NewReader(raw)
	if !bytes.Equal(r.Raw(len(storeMagic)), storeMagic) {
		closeAll()
		return nil, fmt.Errorf("seclog: %s is not a segment store", path)
	}
	if got := types.NodeID(r.String()); got != node {
		closeAll()
		return nil, fmt.Errorf("seclog: store %s belongs to node %s, not %s", path, got, node)
	}
	tailBase := r.Uint()
	tailBaseHash := r.BytesField()
	if err := r.Err(); err != nil {
		closeAll()
		return nil, fmt.Errorf("seclog: store header: %w", err)
	}
	if tailBase == 0 {
		closeAll()
		return nil, fmt.Errorf("seclog: store %s has invalid base sequence 0", path)
	}
	headerLen := int64(len(raw) - r.Remaining())

	// Reconcile the tail with the sealed tables. A tail that starts before
	// the end of the last table is the footprint of a seal interrupted
	// before rotation: its leading records duplicate sealed ones and are
	// skipped (the table is authoritative). A gap is not survivable.
	var skip uint64
	base := tailBase // first sequence the replay below will produce
	prev := tailBaseHash
	if n := len(tables); n > 0 {
		last := tables[n-1]
		switch {
		case tailBase == last.end()+1:
			if !bytes.Equal(tailBaseHash, last.headHash()) {
				closeAll()
				return nil, fmt.Errorf("seclog: store %s: %w between table %d..%d and tail", path, ErrChainMismatch, last.base, last.end())
			}
		case tailBase <= last.end():
			skip = last.end() + 1 - tailBase
			base = last.end() + 1
			prev = last.headHash()
		default:
			closeAll()
			return nil, fmt.Errorf("seclog: store %s: records %d..%d missing between tables and tail", path, last.end()+1, tailBase-1)
		}
	}

	// Replay the tail records, recomputing the chain. A record that cannot
	// be fully read or decoded marks the torn tail: everything before it is
	// intact (the chain vouches for it), everything from it on is discarded.
	var (
		entries   []*Entry
		hashes    [][]byte
		offsets   []int64
		sizes     []int64 // metered (digest-form) size per replayed entry
		ckpts     []ckptRef
		tailGross int64
		goodSize  = headerLen
		seq       = tailBase - 1
	)
	for r.Remaining() > 0 {
		frameStart := int64(len(raw) - r.Remaining())
		recLen := r.Uint()
		if r.Err() != nil || recLen > uint64(r.Remaining()) {
			break // torn length prefix
		}
		rec := r.Raw(int(recLen))
		e := new(Entry)
		if err := wire.Decode(rec, e); err != nil {
			break // torn record
		}
		seq++
		goodSize = int64(len(raw) - r.Remaining())
		if seq < base {
			// Duplicate of a sealed record (interrupted rotation); the
			// table's content address vouches for that range, so the bytes
			// are skipped rather than re-verified.
			continue
		}
		offsets = append(offsets, frameStart)
		prev = chainHash(suite, stats, prev, e)
		hashes = append(hashes, prev)
		entries = append(entries, e)
		// Accounting uses the transmissible (digest-form) size, matching
		// what the log metered when it appended the entry.
		size := int64(len(rec))
		if e.Type == ECkpt {
			size = int64(e.WireSize())
		}
		sizes = append(sizes, size)
		tailGross += size
		if e.Type == ECkpt {
			ckpts = append(ckpts, ckptRef{seq: seq, size: size})
		}
	}
	head := base - 1 + uint64(len(entries))

	avail := base // earliest sequence present anywhere
	if len(tables) > 0 {
		avail = tables[0].base
	}
	availBaseHash := tailBaseHash
	if len(tables) > 0 {
		availBaseHash = tables[0].baseHash
	}
	// hashAt resolves h_k for avail-1 <= k <= head from the tables' indexes
	// and the replayed tail.
	hashAt := func(k uint64) []byte {
		if k == avail-1 {
			return availBaseHash
		}
		if k >= base {
			return hashes[k-base]
		}
		for _, t := range tables {
			if t.has(k) {
				return t.addr(k)
			}
		}
		return nil
	}

	first := avail
	gross := int64(0)
	for _, t := range tables {
		gross += t.gross
	}
	gross += tailGross
	if manOK {
		// The synced head must lie on the recovered chain: a shorter chain
		// means data the node had committed to is gone (not a torn-append
		// crash), and a different hash means the file was rewritten.
		if man.head > head {
			closeAll()
			return nil, fmt.Errorf("seclog: store %s lost entries %d..%d past the synced head", path, head+1, man.head)
		}
		if man.head >= avail {
			if !bytes.Equal(hashAt(man.head), man.headHash) {
				closeAll()
				return nil, fmt.Errorf("seclog: store %s: %w at synced head %d", path, ErrChainMismatch, man.head)
			}
		} else if man.head == avail-1 && !bytes.Equal(availBaseHash, man.headHash) {
			closeAll()
			return nil, fmt.Errorf("seclog: store %s: %w at base", path, ErrChainMismatch)
		}
		if man.first > first {
			first = man.first
		}
		if man.first < avail {
			closeAll()
			return nil, fmt.Errorf("seclog: store %s lost entries %d..%d inside the retention window", path, man.first, avail-1)
		}
		// Gross is metered from the manifest (compaction may have deleted
		// truncated records it would otherwise be recomputed from), plus
		// whatever the tail holds beyond the synced head.
		gross = man.gross
		for i := range entries {
			if base+uint64(i) > man.head {
				gross += sizes[i]
			}
		}
	}
	if first > head+1 {
		first = head + 1
	}
	// Verify the retention boundary hash when the manifest pins one.
	if manOK && len(man.firstHash) > 0 && first == man.first && first >= avail && first <= head+1 {
		if h := hashAt(first - 1); h != nil && !bytes.Equal(h, man.firstHash) {
			closeAll()
			return nil, fmt.Errorf("seclog: store %s: %w at retention boundary %d", path, ErrChainMismatch, first)
		}
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("seclog: open store: %w", err)
	}
	if goodSize < int64(len(raw)) {
		if err := f.Truncate(goodSize); err != nil {
			f.Close()
			closeAll()
			return nil, fmt.Errorf("seclog: truncate torn tail: %w", err)
		}
	}

	st := &Store{
		dir:       dir,
		path:      path,
		metaPath:  metaPath,
		f:         f,
		suite:     suite,
		node:      node,
		base:      tailBase,
		baseHash:  append([]byte(nil), tailBaseHash...),
		offsets:   offsets,
		headerLen: headerLen,
		size:      goodSize,
		flushed:   goodSize,
		bufLimit:  storeBufLimit,
		sealLimit: storeSealLimit,
		foldAt:    storeFoldAt,
		tables:    tables,
	}
	if skip > 0 {
		// Finish the interrupted rotation: rewrite the tail without the
		// records the sealed table already holds.
		if err := st.rotateTail(base, prevOfTail(tables), raw[:goodSize], offsets); err != nil {
			f.Close()
			closeAll()
			return nil, err
		}
	}

	// Drop tables that fell wholly below the retention boundary before the
	// log ever serves from them (the compactor would get there anyway).
	st.mu.Lock()
	st.man.tables = st.man.tables[:0]
	for _, t := range st.tables {
		st.man.tables = append(st.man.tables, manifestTable{hash: t.hash, base: t.base, count: t.count()})
	}
	st.mu.Unlock()

	// Collect orphans: table files on disk that the recovered store does not
	// reference (interrupted seals and compactions).
	for _, name := range gcNames {
		_ = os.Remove(filepath.Join(dir, name))
	}

	l := New(node, suite, key, stats)
	l.store = st
	l.hotTail = hotTail
	l.first = first
	l.grossBytes = gross
	l.recoveredTorn = int64(len(raw)) - goodSize
	for _, t := range tables {
		for _, c := range t.ckpts {
			if c.seq >= first {
				l.ckpts = append(l.ckpts, c)
			}
		}
	}
	l.ckpts = append(l.ckpts, ckpts...)
	l.pruneCkpts()
	if fh := hashAt(first - 1); fh != nil {
		l.baseHash = append([]byte(nil), fh...)
	}
	for k := first; k <= head; k++ {
		l.hashes = append(l.hashes, append([]byte(nil), hashAt(k)...))
	}
	// Keep only the hot tail resident; cold history stays in the tables and
	// the tail file. With no hot-tail bound everything must be resident, so
	// sealed entries are decoded once from the mapping.
	l.hotFirst = base
	if first > base {
		l.hotFirst = first
		entries = entries[first-base:]
	}
	resident := entries
	if hotTail > 0 && len(resident) > hotTail {
		l.hotFirst = head - uint64(hotTail) + 1
		resident = resident[len(resident)-hotTail:]
	}
	if hotTail <= 0 && l.hotFirst > first {
		var cold []*Entry
		for k := first; k < l.hotFirst; k++ {
			e, derr := st.entry(k)
			if derr != nil {
				f.Close()
				closeAll()
				return nil, derr
			}
			cold = append(cold, e)
		}
		resident = append(cold, resident...)
		l.hotFirst = first
	}
	l.entries = append([]*Entry(nil), resident...)
	// Record the recovered state as the new synced head.
	if err := st.sync(l.first, l.baseHash, head, l.HeadHash(), l.grossBytes, nil); err != nil {
		_ = st.close()
		return nil, err
	}
	return l, nil
}

// recoverTables assembles the sealed-table set for Open. With an intact
// manifest the referenced tables must all open and verify — anything else is
// missing committed data — and every unreferenced table file is returned for
// collection. Without one, recovery falls back to reassembling the longest
// chain-consistent run of tables that verify by content address (unused
// files are left in place: with no manifest there is no authority to delete
// on).
func recoverTables(dir string, node types.NodeID, suite cryptoutil.Suite, man *manifest, manOK bool) ([]*tableFile, []string, error) {
	names, err := listTableFiles(dir, node, suite.HashSize())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	if manOK {
		referenced := make(map[string]bool, len(man.tables))
		var tables []*tableFile
		for _, mt := range man.tables {
			name := tableFileName(node, mt.hash)
			referenced[name] = true
			t, terr := openTable(filepath.Join(dir, name), node, suite, mt.hash)
			if terr != nil {
				for _, o := range tables {
					_ = o.close()
				}
				return nil, nil, fmt.Errorf("seclog: store %s: sealed table %d..%d unrecoverable: %w", dir, mt.base, mt.end(), terr)
			}
			if t.base != mt.base || t.count() != mt.count {
				_ = t.close()
				for _, o := range tables {
					_ = o.close()
				}
				return nil, nil, fmt.Errorf("seclog: store %s: table %s claims %d..%d, manifest says %d..%d", dir, name, t.base, t.end(), mt.base, mt.end())
			}
			tables = append(tables, t)
		}
		if err := verifyTableChain(tables); err != nil {
			for _, o := range tables {
				_ = o.close()
			}
			return nil, nil, err
		}
		var gc []string
		for _, name := range names {
			if !referenced[name] {
				gc = append(gc, name)
			}
		}
		return tables, gc, nil
	}
	// Fallback: open whatever verifies, then greedily chain the longest
	// contiguous run ending at the highest sequence (folded tables subsume
	// the smaller ones they replaced, so prefer wider tables at each step).
	var cands []*tableFile
	for _, name := range names {
		t, terr := openTable(filepath.Join(dir, name), node, suite, nil)
		if terr != nil {
			continue // unverifiable file: ignore, do not trust, do not delete
		}
		cands = append(cands, t)
	}
	chain := assembleTableChain(cands)
	used := make(map[*tableFile]bool, len(chain))
	for _, t := range chain {
		used[t] = true
	}
	for _, t := range cands {
		if !used[t] {
			_ = t.close()
		}
	}
	return chain, nil, nil
}

// verifyTableChain checks contiguity and hash linkage across a table run.
func verifyTableChain(tables []*tableFile) error {
	for i := 1; i < len(tables); i++ {
		prev, cur := tables[i-1], tables[i]
		if cur.base != prev.end()+1 {
			return fmt.Errorf("seclog: tables %d..%d and %d..%d are not contiguous", prev.base, prev.end(), cur.base, cur.end())
		}
		if !bytes.Equal(cur.baseHash, prev.headHash()) {
			return fmt.Errorf("seclog: %w between tables at %d", ErrChainMismatch, cur.base)
		}
	}
	return nil
}

// assembleTableChain picks, from verified candidate tables, a chain that is
// contiguous and hash-linked, preferring at each step the table that extends
// furthest (a folded table beats the fragments it replaced). The chain ends
// at the highest reachable sequence.
func assembleTableChain(cands []*tableFile) []*tableFile {
	var best []*tableFile
	bestEnd := uint64(0)
	for _, start := range cands {
		chain := []*tableFile{start}
		cur := start
		for {
			var next *tableFile
			for _, c := range cands {
				if c.base == cur.end()+1 && bytes.Equal(c.baseHash, cur.headHash()) {
					if next == nil || c.end() > next.end() {
						next = c
					}
				}
			}
			if next == nil {
				break
			}
			chain = append(chain, next)
			cur = next
		}
		if cur.end() > bestEnd || best == nil {
			best = chain
			bestEnd = cur.end()
		}
	}
	return best
}

// rotateTail rewrites the tail file to start at base, keeping only the
// records at the given offsets of the old image (already verified) — used by
// Open to finish a seal that crashed between the manifest swap and the
// rotation.
func (s *Store) rotateTail(base uint64, baseHash []byte, oldImage []byte, offsets []int64) error {
	var records []byte
	if len(offsets) > 0 {
		records = oldImage[offsets[0]:]
	}
	f, headerLen, err := writeTailFile(s.path, s.node, base, baseHash, records, true)
	if err != nil {
		return err
	}
	old := s.f
	s.f = f
	_ = old.Close()
	s.base = base
	s.baseHash = append([]byte(nil), baseHash...)
	s.headerLen = headerLen
	rebased := make([]int64, 0, len(offsets))
	if len(offsets) > 0 {
		delta := offsets[0] - headerLen
		for _, off := range offsets {
			rebased = append(rebased, off-delta)
		}
	}
	s.offsets = rebased
	s.size = headerLen + int64(len(records))
	s.flushed = s.size
	return nil
}

// prevOfTail returns the chain hash preceding the (post-recovery) tail base.
func prevOfTail(tables []*tableFile) []byte {
	if len(tables) == 0 {
		return nil
	}
	return tables[len(tables)-1].headHash()
}
