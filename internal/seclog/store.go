// Segment store: a durable, append-only, file-backed home for a node's
// tamper-evident log (the Thist retention substrate of §5.6). The store
// holds the wire encoding of every entry ever appended; the Log keeps only a
// configurable hot tail of decoded entries resident and re-reads cold
// history from the file on demand, so long retention windows no longer grow
// the heap.
//
// On-disk layout (one data file plus a small sidecar per node):
//
//	<dir>/<node>.seglog   header ‖ record*      (append-only)
//	<dir>/<node>.segmeta  logical-first + last synced head (rewritten atomically)
//
// The data file header commits to the node ID, the sequence number of the
// first record, and the hash-chain value preceding it; each record is a
// uvarint length followed by the entry's canonical wire encoding — exactly
// the bytes the chain hash covers, so recovery can re-verify the chain
// without trusting anything but the header.
//
// Crash recovery (Open) replays the file: records are decoded one by one,
// the hash chain is recomputed from the persisted base hash, and a torn or
// garbled tail — the signature of a crash mid-append — is truncated away at
// the last intact record. If the sidecar records a previously synced head,
// the recovered chain must still pass through it; a mismatch is evidence of
// tampering with the file, not of a crash, and Open refuses the store.
package seclog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/url"
	"os"
	"path/filepath"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

// File-format magics. The trailing newline keeps accidental text files from
// matching.
var (
	storeMagic = []byte("SNPSEG1\n")
	metaMagic  = []byte("SNPMET1\n")
)

// storeBufLimit is the append write-buffer threshold: records accumulate in
// memory and reach the file in one positioned write per storeBufLimit bytes
// (or earlier, when a cold read or a sync needs them), instead of two
// syscalls per record.
const storeBufLimit = 1 << 18

// Store is the file layer under a store-backed Log: an append-only record
// file plus an in-memory seq→offset index. It is not safe for concurrent
// use; the owning Log serializes access (nodes are single-threaded by
// contract).
//
// Appends are buffered: records land in buf and are written out in groups
// (flushBuf) when the buffer fills, when a read needs a still-buffered
// record, and — followed by one fsync for the whole group — on sync. A
// process crash can therefore lose up to bufLimit bytes of tail that a
// pre-buffering store would have handed to the OS; recovery already treats
// any missing tail past the last synced head as a torn append, so the
// failure model is unchanged, only the window is wider.
type Store struct {
	path     string
	metaPath string
	f        *os.File

	// hooks are crash-injection points for fault testing (StoreHooks); both
	// are nil in production use.
	hooks StoreHooks

	node     types.NodeID
	base     uint64 // sequence number of the first record in the file
	baseHash []byte // chain hash h_{base-1}
	offsets  []int64
	size     int64 // logical size: flushed bytes plus len(buf)

	buf      []byte
	flushed  int64 // bytes actually written to the file (buf starts here)
	bufLimit int   // flush threshold; 0 flushes after every append

	// syncedHead/syncedHash mirror the sidecar: the last head position that
	// was durably recorded. Truncation rewrites the sidecar's logical first
	// without asserting a newer head than was actually synced.
	syncedHead uint64
	syncedHash []byte
}

// storeFileName maps a node ID to a safe file name (node IDs may contain
// path separators in principle; escape keeps one flat file per node).
func storeFileName(node types.NodeID) string { return url.PathEscape(string(node)) + ".seglog" }
func metaFileName(node types.NodeID) string  { return url.PathEscape(string(node)) + ".segmeta" }

// createStore creates (or truncates) the segment store for node under dir
// and writes the header. base is the sequence number the first appended
// record will get; baseHash is the chain value preceding it.
func createStore(dir string, node types.NodeID, base uint64, baseHash []byte) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seclog: store dir: %w", err)
	}
	path := filepath.Join(dir, storeFileName(node))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seclog: create store: %w", err)
	}
	s := &Store{
		path:     path,
		metaPath: filepath.Join(dir, metaFileName(node)),
		f:        f,
		node:     node,
		base:     base,
		baseHash: append([]byte(nil), baseHash...),
		bufLimit: storeBufLimit,
	}
	w := wire.NewWriter(64)
	w.Raw(storeMagic)
	w.String(string(node))
	w.Uint(base)
	w.BytesField(baseHash)
	if _, err := f.Write(w.Bytes()); err != nil {
		f.Close()
		return nil, fmt.Errorf("seclog: store header: %w", err)
	}
	s.size = int64(w.Len())
	s.flushed = s.size
	// Remove any stale sidecar from an earlier incarnation of this node.
	if err := os.Remove(s.metaPath); err != nil && !os.IsNotExist(err) {
		f.Close()
		return nil, fmt.Errorf("seclog: store meta: %w", err)
	}
	return s, nil
}

// append stages one record (the entry's wire encoding) in the write buffer
// and indexes it; the bytes reach the file on the next group flush.
func (s *Store) append(rec []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	off := s.size
	s.buf = append(s.buf, hdr[:n]...)
	s.buf = append(s.buf, rec...)
	s.offsets = append(s.offsets, off)
	s.size = off + int64(n) + int64(len(rec))
	if len(s.buf) >= s.bufLimit {
		if err := s.flushBuf(); err != nil {
			return err
		}
	}
	if s.hooks.AfterAppend != nil {
		s.hooks.AfterAppend(s.head())
	}
	return nil
}

// flushBuf writes the buffered records to the file in one positioned write.
// With a MidFlush hook installed, the group is written in two parts — all but
// the final byte, the hook, then the final byte — so a hook that kills the
// process leaves a genuinely torn last record on disk, exactly the state a
// machine crash mid-append produces.
func (s *Store) flushBuf() error {
	if len(s.buf) == 0 {
		return nil
	}
	if s.hooks.MidFlush != nil && len(s.buf) >= 2 {
		n := len(s.buf) - 1
		if _, err := s.f.WriteAt(s.buf[:n], s.flushed); err != nil {
			return fmt.Errorf("seclog: store append: %w", err)
		}
		s.hooks.MidFlush()
		if _, err := s.f.WriteAt(s.buf[n:], s.flushed+int64(n)); err != nil {
			return fmt.Errorf("seclog: store append: %w", err)
		}
	} else if _, err := s.f.WriteAt(s.buf, s.flushed); err != nil {
		return fmt.Errorf("seclog: store append: %w", err)
	}
	s.flushed += int64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

// head returns the sequence number of the last record (base-1 when empty).
func (s *Store) head() uint64 { return s.base - 1 + uint64(len(s.offsets)) }

// entry reads and decodes record seq from the file.
func (s *Store) entry(seq uint64) (*Entry, error) {
	if seq < s.base || seq > s.head() {
		return nil, fmt.Errorf("seclog: store has no record %d (have %d..%d)", seq, s.base, s.head())
	}
	i := seq - s.base
	start := s.offsets[i]
	end := s.size
	if i+1 < uint64(len(s.offsets)) {
		end = s.offsets[i+1]
	}
	if end > s.flushed {
		// The record (or its tail) is still in the write buffer.
		if err := s.flushBuf(); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, end-start)
	if _, err := s.f.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("seclog: store read %d: %w", seq, err)
	}
	n, ln := binary.Uvarint(buf)
	if ln <= 0 || uint64(len(buf)-ln) != n {
		return nil, fmt.Errorf("seclog: store record %d has a corrupt length", seq)
	}
	e := new(Entry)
	if err := wire.Decode(buf[ln:], e); err != nil {
		return nil, fmt.Errorf("seclog: store record %d: %w", seq, err)
	}
	return e, nil
}

// writeMeta atomically rewrites the sidecar: the logical first sequence
// (Thist truncation) and the last synced head position with its chain hash.
func (s *Store) writeMeta(first, headSeq uint64, headHash []byte) error {
	w := wire.NewWriter(64)
	w.Raw(metaMagic)
	w.Uint(first)
	w.Uint(headSeq)
	w.BytesField(headHash)
	tmp := s.metaPath + ".tmp"
	if err := os.WriteFile(tmp, w.Bytes(), 0o644); err != nil {
		return fmt.Errorf("seclog: store meta: %w", err)
	}
	if err := os.Rename(tmp, s.metaPath); err != nil {
		return fmt.Errorf("seclog: store meta: %w", err)
	}
	return nil
}

// readMeta loads the sidecar; ok is false when none exists (a store that was
// never synced or truncated) — or when the bytes do not decode as a sidecar.
//
// A missing, truncated, or garbled sidecar is treated as absent rather than
// fatal: the sidecar is rewritten (tmp + rename) on every sync, and a crash
// racing that rewrite on a non-atomic filesystem can leave torn bytes behind.
// Recovery then falls back to the full-chain replay, which re-verifies every
// record against the persisted base hash. The cost of the fallback is
// discrimination, not safety: without a trusted synced head the store cannot
// distinguish a tamperer who truncated the file from a crash that lost a
// tail — the same epistemic state as a store that was never synced. The §4.2
// guarantee is unaffected either way, because provable evidence rests on
// peer-held authenticators, never on the node's own sidecar. Only a real I/O
// error (unreadable file) remains fatal.
func readMeta(path string) (first, headSeq uint64, headHash []byte, ok bool, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil, false, nil
	}
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("seclog: store meta: %w", err)
	}
	if len(raw) < len(metaMagic) || !bytes.Equal(raw[:len(metaMagic)], metaMagic) {
		return 0, 0, nil, false, nil
	}
	r := wire.NewReader(raw[len(metaMagic):])
	first = r.Uint()
	headSeq = r.Uint()
	headHash = r.BytesField()
	if err := r.Finish(); err != nil {
		return 0, 0, nil, false, nil
	}
	return first, headSeq, headHash, true, nil
}

// ReadSidecar reports the on-disk sidecar state for node under dir: the
// logical first sequence and the last durably synced head (seq + chain
// hash). ok is false when no intact sidecar exists. It reads only the small
// sidecar file — safe to call on a live store from another process, since
// the sidecar is replaced atomically.
func ReadSidecar(dir string, node types.NodeID) (first, headSeq uint64, headHash []byte, ok bool, err error) {
	return readMeta(filepath.Join(dir, metaFileName(node)))
}

// sync group-commits the buffered appends (one write, one fsync for the
// whole group) and records the current head in the sidecar, so a later Open
// can distinguish tampering from a crash up to this point.
func (s *Store) sync(first, headSeq uint64, headHash []byte) error {
	if err := s.flushBuf(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("seclog: store sync: %w", err)
	}
	if err := s.writeMeta(first, headSeq, headHash); err != nil {
		return err
	}
	s.syncedHead = headSeq
	s.syncedHash = append([]byte(nil), headHash...)
	return nil
}

// truncate persists a new logical first without claiming a newer synced
// head than the sidecar already holds.
func (s *Store) truncate(first uint64) error {
	return s.writeMeta(first, s.syncedHead, s.syncedHash)
}

// close flushes buffered appends and releases the file handle.
func (s *Store) close() error {
	err := s.flushBuf()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewStored creates a Log whose entries are spilled to a fresh segment store
// under dir. hotTail bounds the number of decoded entries kept resident
// (<=0 keeps everything hot; the store is then pure durability).
func NewStored(dir string, node types.NodeID, suite cryptoutil.Suite, key cryptoutil.PrivateKey,
	stats *cryptoutil.Stats, hotTail int) (*Log, error) {
	st, err := createStore(dir, node, 1, nil)
	if err != nil {
		return nil, err
	}
	l := New(node, suite, key, stats)
	l.store = st
	l.hotTail = hotTail
	return l, nil
}

// Open reopens a store-backed log from dir after a restart or crash. It
// replays the data file, re-verifying the hash chain against the persisted
// base hash (and, when the sidecar has a synced head, against that head),
// truncates a torn tail left by a crash mid-append, and restores the
// logical first/head state — so the reopened log serves retrieve and audit
// requests byte-for-byte identically to the log that wrote the file.
//
// key may be nil when the reopened log only serves reads (Segment, Entry,
// Hash); signing operations then fail.
//
// Recovery currently buffers the whole data file and decodes every record
// before trimming to the hot tail — O(file) memory for the duration of
// Open. Streaming replay (keep only the running hash and the tail) is a
// noted follow-up for stores that outgrow recovery-time memory.
func Open(dir string, node types.NodeID, suite cryptoutil.Suite, key cryptoutil.PrivateKey,
	stats *cryptoutil.Stats, hotTail int) (*Log, error) {
	path := filepath.Join(dir, storeFileName(node))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("seclog: open store: %w", err)
	}
	r := wire.NewReader(raw)
	if !bytes.Equal(r.Raw(len(storeMagic)), storeMagic) {
		return nil, fmt.Errorf("seclog: %s is not a segment store", path)
	}
	if got := types.NodeID(r.String()); got != node {
		return nil, fmt.Errorf("seclog: store %s belongs to node %s, not %s", path, got, node)
	}
	base := r.Uint()
	baseHash := r.BytesField()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("seclog: store header: %w", err)
	}
	if base == 0 {
		return nil, fmt.Errorf("seclog: store %s has invalid base sequence 0", path)
	}
	headerLen := int64(len(raw) - r.Remaining())

	// Replay the records, recomputing the chain. A record that cannot be
	// fully read or decoded marks the torn tail: everything before it is
	// intact (the chain vouches for it), everything from it on is discarded.
	var (
		entries  []*Entry
		hashes   [][]byte
		offsets  []int64
		ckpts    []ckptRef
		gross    int64
		prev     = baseHash
		goodSize = headerLen
	)
	for r.Remaining() > 0 {
		recLen := r.Uint()
		if r.Err() != nil || recLen > uint64(r.Remaining()) {
			break // torn length prefix
		}
		rec := r.Raw(int(recLen))
		e := new(Entry)
		if err := wire.Decode(rec, e); err != nil {
			break // torn record
		}
		seq := base + uint64(len(entries))
		offsets = append(offsets, goodSize)
		prev = chainHash(suite, stats, prev, e)
		hashes = append(hashes, prev)
		entries = append(entries, e)
		// Accounting uses the transmissible (digest-form) size, matching
		// what the log metered when it appended the entry.
		size := int64(len(rec))
		if e.Type == ECkpt {
			size = int64(e.WireSize())
		}
		gross += size
		if e.Type == ECkpt {
			ckpts = append(ckpts, ckptRef{seq: seq, size: size})
		}
		goodSize = int64(len(raw) - r.Remaining())
	}
	head := base - 1 + uint64(len(entries))

	first := base
	if mFirst, mHead, mHash, ok, err := readMeta(filepath.Join(dir, metaFileName(node))); err != nil {
		return nil, err
	} else if ok {
		// The synced head must lie on the recovered chain: a shorter chain
		// means data the node had committed to is gone (not a torn-append
		// crash), and a different hash means the file was rewritten.
		if mHead > head {
			return nil, fmt.Errorf("seclog: store %s lost entries %d..%d past the synced head", path, head+1, mHead)
		}
		if mHead >= base {
			if !bytes.Equal(hashes[mHead-base], mHash) {
				return nil, fmt.Errorf("seclog: store %s: %w at synced head %d", path, ErrChainMismatch, mHead)
			}
		} else if mHead == base-1 && !bytes.Equal(baseHash, mHash) {
			return nil, fmt.Errorf("seclog: store %s: %w at base", path, ErrChainMismatch)
		}
		if mFirst > first {
			first = mFirst
		}
	}
	if first > head+1 {
		first = head + 1
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seclog: open store: %w", err)
	}
	if goodSize < int64(len(raw)) {
		if err := f.Truncate(goodSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("seclog: truncate torn tail: %w", err)
		}
	}
	st := &Store{
		path:     path,
		metaPath: filepath.Join(dir, metaFileName(node)),
		f:        f,
		node:     node,
		base:     base,
		baseHash: append([]byte(nil), baseHash...),
		offsets:  offsets,
		size:     goodSize,
		flushed:  goodSize,
		bufLimit: storeBufLimit,
	}

	l := New(node, suite, key, stats)
	l.store = st
	l.hotTail = hotTail
	l.first = first
	l.grossBytes = gross
	l.recoveredTorn = int64(len(raw)) - goodSize
	l.ckpts = ckpts
	l.pruneCkpts()
	if first == base {
		l.baseHash = append([]byte(nil), baseHash...)
	} else {
		l.baseHash = hashes[first-1-base]
	}
	l.hashes = hashes[first-base:]
	// Keep only the hot tail resident; cold history stays on disk.
	l.hotFirst = first
	resident := entries[first-base:]
	if hotTail > 0 && len(resident) > hotTail {
		l.hotFirst = head - uint64(hotTail) + 1
		resident = resident[len(resident)-hotTail:]
	}
	l.entries = append([]*Entry(nil), resident...)
	// Record the recovered state as the new synced head.
	if err := st.sync(l.first, head, l.HeadHash()); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}
