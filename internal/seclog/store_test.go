package seclog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
	"repro/internal/wire"
)

// newStoredTestLog creates a store-backed log in a fresh temp dir.
func newStoredTestLog(t *testing.T, hotTail int) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := NewStored(dir, "n1", testSuite, testKey(t, 1), nil, hotTail)
	if err != nil {
		t.Fatal(err)
	}
	return l, dir
}

// fillBoth appends the same n entries (with a checkpoint at every ckptAt-th
// position) to both logs.
func fillBoth(a, b *Log, n int, ckptAt int) {
	for i := 1; i <= n; i++ {
		var e *Entry
		if ckptAt > 0 && i%ckptAt == 0 {
			e = &Entry{T: types.Time(i), Type: ECkpt,
				Ckpt: BuildCheckpoint(testSuite, nil, []byte("state"), nil)}
		} else if i%3 == 0 {
			e = sndEntry(types.Time(i), uint64(i))
		} else {
			e = insEntry(types.Time(i), "a", int64(i))
		}
		if a != nil {
			a.Append(e)
		}
		if b != nil {
			b.Append(e)
		}
	}
}

func TestStoreBackedMatchesMemory(t *testing.T) {
	mem := newTestLog(t)
	st, _ := newStoredTestLog(t, 4)
	fillBoth(mem, st, 25, 7)

	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != mem.Len() || st.FirstSeq() != mem.FirstSeq() {
		t.Fatalf("shape mismatch: store %d..%d, mem %d..%d", st.FirstSeq(), st.Len(), mem.FirstSeq(), mem.Len())
	}
	if !bytes.Equal(st.HeadHash(), mem.HeadHash()) {
		t.Error("head hashes differ")
	}
	if st.GrossBytes() != mem.GrossBytes() {
		t.Errorf("GrossBytes: store %d, mem %d", st.GrossBytes(), mem.GrossBytes())
	}
	if st.CheckpointBytes() != mem.CheckpointBytes() {
		t.Errorf("CheckpointBytes: store %d, mem %d", st.CheckpointBytes(), mem.CheckpointBytes())
	}
	if st.ColdEntries() == 0 {
		t.Error("hot tail of 4 should have evicted entries to disk")
	}
	// Every entry — hot and cold — must decode to identical bytes.
	for seq := uint64(1); seq <= st.Len(); seq++ {
		se, err := st.Entry(seq)
		if err != nil {
			t.Fatalf("Entry(%d): %v", seq, err)
		}
		me, _ := mem.Entry(seq)
		if !bytes.Equal(wire.Encode(se), wire.Encode(me)) {
			t.Fatalf("entry %d differs between store and memory", seq)
		}
		sh, _ := st.Hash(seq)
		mh, _ := mem.Hash(seq)
		if !bytes.Equal(sh, mh) {
			t.Fatalf("hash %d differs", seq)
		}
	}
	// Segments (which straddle the hot/cold boundary) are byte-identical.
	sSeg, err := st.Segment(1, st.Len())
	if err != nil {
		t.Fatal(err)
	}
	mSeg, _ := mem.Segment(1, mem.Len())
	if !bytes.Equal(wire.Encode(sSeg), wire.Encode(mSeg)) {
		t.Error("full segments differ byte-for-byte")
	}
	if st.LastCheckpointBefore(25) != mem.LastCheckpointBefore(25) {
		t.Error("LastCheckpointBefore differs")
	}
}

func TestStoreCrashRecovery(t *testing.T) {
	live, dir := newStoredTestLog(t, 4)
	fillBoth(nil, live, 30, 10)
	auth, err := live.Authenticator()
	if err != nil {
		t.Fatal(err)
	}
	liveSeg, err := live.Segment(1, live.Len())
	if err != nil {
		t.Fatal(err)
	}

	// Reopen without Close/Sync: a crash after the OS received the appends
	// (Flush writes them out without fsync, like the pre-buffering store's
	// per-append writes). Recovery must replay the file, re-verify the
	// chain, and serve identical bytes.
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, "n1", testSuite, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != live.Len() || rec.FirstSeq() != live.FirstSeq() {
		t.Fatalf("recovered %d..%d, want %d..%d", rec.FirstSeq(), rec.Len(), live.FirstSeq(), live.Len())
	}
	if !bytes.Equal(rec.HeadHash(), live.HeadHash()) {
		t.Error("recovered head hash differs")
	}
	if rec.GrossBytes() != live.GrossBytes() {
		t.Errorf("recovered GrossBytes %d, want %d", rec.GrossBytes(), live.GrossBytes())
	}
	if rec.CheckpointBytes() != live.CheckpointBytes() {
		t.Errorf("recovered CheckpointBytes %d, want %d", rec.CheckpointBytes(), live.CheckpointBytes())
	}
	recSeg, err := rec.Segment(1, rec.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.Encode(recSeg), wire.Encode(liveSeg)) {
		t.Error("recovered segment differs from the live log's")
	}
	// The live node's own authenticator still verifies the recovered chain.
	if _, err := recSeg.VerifyAgainst(testSuite, nil, live.key.Public(), auth); err != nil {
		t.Errorf("recovered segment rejected by live authenticator: %v", err)
	}
}

func TestStoreRecoveryAfterTruncate(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 20, 6)
	live.Truncate(9)
	if err := live.Err(); err != nil {
		t.Fatal(err)
	}
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	liveSeg, err := live.Segment(9, 20)
	if err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.FirstSeq() != 9 || rec.Len() != 20 {
		t.Fatalf("recovered %d..%d, want 9..20", rec.FirstSeq(), rec.Len())
	}
	if _, err := rec.Segment(1, 20); err == nil {
		t.Error("recovered log served truncated history")
	}
	recSeg, err := rec.Segment(9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire.Encode(recSeg), wire.Encode(liveSeg)) {
		t.Error("post-truncate recovered segment differs")
	}
	if got := rec.LastCheckpointBefore(20); got != live.LastCheckpointBefore(20) {
		t.Errorf("recovered LastCheckpointBefore = %d, want %d", got, live.LastCheckpointBefore(20))
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 10, 0)
	hash5 := live.HashAt(5)
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the end of the data file.
	path := filepath.Join(dir, storeFileName("n1"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 9 {
		t.Fatalf("recovered %d entries, want 9 (torn 10th dropped)", rec.Len())
	}
	if !bytes.Equal(rec.HashAt(5), hash5) {
		t.Error("recovered chain prefix diverges")
	}
}

// TestStoreCrashLosesOnlyBufferedTail pins the buffered append path's crash
// model: a process crash with an unflushed write buffer loses at most the
// buffered tail; recovery serves a verified prefix of the chain, and the
// synced head (here: never synced) is not violated.
func TestStoreCrashLosesOnlyBufferedTail(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 12, 0)
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	prefixHead := live.HashAt(12)
	fillBoth(nil, live, 5, 0) // these stay in the buffer: lost in the "crash"

	rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 12 {
		t.Fatalf("recovered %d entries, want the 12 flushed ones", rec.Len())
	}
	if !bytes.Equal(rec.HeadHash(), prefixHead) {
		t.Error("recovered head does not match the flushed prefix")
	}
}

// TestStoreSyncCoversBufferedTail pins group commit: Sync must make every
// buffered append durable and recoverable, however large the batch.
func TestStoreSyncCoversBufferedTail(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 40, 9)
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}
	head := live.HeadHash()

	rec, err := Open(dir, "n1", testSuite, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 40 {
		t.Fatalf("recovered %d entries, want 40", rec.Len())
	}
	if !bytes.Equal(rec.HeadHash(), head) {
		t.Error("recovered head differs after group-committed sync")
	}
}

func TestStoreTamperDetected(t *testing.T) {
	live, dir := newStoredTestLog(t, 0)
	fillBoth(nil, live, 10, 0)
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside an early record: the synced head no longer lies
	// on the replayed chain, which is evidence of tampering, not a crash.
	path := filepath.Join(dir, storeFileName("n1"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "n1", testSuite, nil, nil, 0); err == nil {
		t.Fatal("tampered store accepted")
	}
}

func TestCheckedAccessors(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) *Log
	}{
		{"memory", func(t *testing.T) *Log { return newTestLog(t) }},
		{"store", func(t *testing.T) *Log { l, _ := newStoredTestLog(t, 2); return l }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk(t)
			fillBoth(nil, l, 10, 0)
			l.Truncate(4)
			for _, seq := range []uint64{0, 1, 2, 11, 1 << 60} {
				if _, err := l.Entry(seq); err == nil {
					t.Errorf("Entry(%d) after Truncate(4): no error", seq)
				}
				if _, err := l.Hash(seq); err == nil && seq != 3 {
					t.Errorf("Hash(%d) after Truncate(4): no error", seq)
				}
			}
			// The base position is servable as a hash (h_{first-1}).
			if _, err := l.Hash(3); err != nil {
				t.Errorf("Hash(first-1): %v", err)
			}
			if _, err := l.Entry(5); err != nil {
				t.Errorf("Entry(5) retained: %v", err)
			}
			if _, err := l.AuthenticatorAt(2); err == nil {
				t.Error("AuthenticatorAt on truncated seq: no error")
			}
			if _, err := l.AuthenticatorAt(99); err == nil {
				t.Error("AuthenticatorAt out of range: no error")
			}
		})
	}
}

// TestTruncateSegmentCheckpointInterplay covers the retention × retrieval ×
// checkpoint interplay: segment requests straddling truncated history fail
// cleanly, checkpoint lookup respects the retention boundary, and the chain
// keeps verifying across both.
func TestTruncateSegmentCheckpointInterplay(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) *Log
	}{
		{"memory", func(t *testing.T) *Log { return newTestLog(t) }},
		{"store", func(t *testing.T) *Log { l, _ := newStoredTestLog(t, 3); return l }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk(t)
			fillBoth(nil, l, 24, 8) // checkpoints at 8, 16, 24
			l.Truncate(10)

			// Straddling requests fail cleanly instead of panicking.
			for _, r := range [][2]uint64{{1, 24}, {9, 12}, {1, 5}} {
				if _, err := l.Segment(r[0], r[1]); err == nil {
					t.Errorf("Segment(%d,%d) across truncation: no error", r[0], r[1])
				}
			}
			// The checkpoint at 8 is gone; queries fall back to the one at 16.
			if got := l.LastCheckpointBefore(15); got != 0 {
				t.Errorf("LastCheckpointBefore(15) = %d, want 0 (ckpt 8 truncated)", got)
			}
			if got := l.LastCheckpointBefore(23); got != 16 {
				t.Errorf("LastCheckpointBefore(23) = %d, want 16", got)
			}
			// Retained segments still verify against a fresh authenticator.
			seg, err := l.Segment(10, 24)
			if err != nil {
				t.Fatal(err)
			}
			auth, err := l.Authenticator()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := seg.VerifyAgainst(testSuite, nil, l.key.Public(), auth); err != nil {
				t.Errorf("post-truncate segment rejected: %v", err)
			}
		})
	}
}

func TestVerifyAgainstMalformedSegments(t *testing.T) {
	l := newTestLog(t)
	fillBoth(nil, l, 3, 0)
	auth, _ := l.Authenticator()
	pub := l.key.Public()

	empty := &SegmentData{Node: "n1", From: 1}
	if _, err := empty.VerifyAgainst(testSuite, nil, pub, auth); err == nil {
		t.Error("empty segment accepted")
	}
	seg, _ := l.Segment(1, 3)
	zero := *seg
	zero.From = 0
	if _, err := zero.VerifyAgainst(testSuite, nil, pub, auth); err == nil {
		t.Error("segment with From=0 accepted")
	}
}
