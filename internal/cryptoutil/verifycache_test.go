package cryptoutil

import "testing"

func TestVerifyCache(t *testing.T) {
	key, err := PooledKey(Ed25519SHA256, 42)
	if err != nil {
		t.Fatal(err)
	}
	pub := key.Public()
	msg := []byte("material")
	sig, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}

	c := NewVerifyCache()
	stats := new(Stats)
	if !c.Verify(stats, pub, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if hits := stats.VerifyCacheHits.Load(); hits != 0 {
		t.Fatalf("first verification hit the cache (%d hits)", hits)
	}
	if !c.Verify(stats, pub, msg, sig) {
		t.Fatal("cached valid signature rejected")
	}
	if hits := stats.VerifyCacheHits.Load(); hits != 1 {
		t.Fatalf("second verification missed the cache (%d hits)", hits)
	}

	// Negative results are memoized too, and must stay negative.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xff
	for i := 0; i < 2; i++ {
		if c.Verify(stats, pub, msg, bad) {
			t.Fatal("invalid signature accepted")
		}
	}

	// A different key must not alias the same (msg, sig) entry.
	key2, err := PooledKey(Ed25519SHA256, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.Verify(stats, key2.Public(), msg, sig) {
		t.Fatal("signature accepted under the wrong key")
	}

	c.Reset()
	before := stats.VerifyCacheHits.Load()
	if !c.Verify(stats, pub, msg, sig) {
		t.Fatal("valid signature rejected after reset")
	}
	if stats.VerifyCacheHits.Load() != before {
		t.Fatal("reset cache still served a hit")
	}
}
