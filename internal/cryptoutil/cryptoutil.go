// Package cryptoutil provides the cryptographic primitives SNooPy relies on
// (paper §5.2, assumptions 2–3): per-node keypairs whose signatures cannot be
// forged, and a collision-resistant hash used for the tamper-evident log's
// hash chain.
//
// Two suites are provided. RSA1024SHA1 matches the paper's evaluation setup
// (1,024-bit RSA keys and SHA-1 hashes, §7.1) so that authenticator and
// acknowledgment sizes are comparable to the published numbers. Ed25519SHA256
// is a modern, much faster suite used as the default for large simulations;
// every protocol is identical under either suite.
//
// Key generation is deterministic given a seed so that experiments are
// reproducible; this stands in for the paper's offline CA that installs a
// certificate on each node.
package cryptoutil

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Suite bundles a hash function and a signature scheme.
type Suite interface {
	// Name identifies the suite in experiment output.
	Name() string
	// Hash returns the digest of the concatenation of the given byte slices.
	Hash(parts ...[]byte) []byte
	// HashSize returns the digest length in bytes.
	HashSize() int
	// GenerateKey deterministically derives a keypair from seed.
	GenerateKey(seed int64) (PrivateKey, error)
	// SignatureSize returns the signature length in bytes.
	SignatureSize() int
}

// PrivateKey signs messages on behalf of one node.
type PrivateKey interface {
	Sign(msg []byte) ([]byte, error)
	Public() PublicKey
}

// PublicKey verifies signatures.
type PublicKey interface {
	Verify(msg, sig []byte) bool
	// Marshal returns a stable encoding of the key, suitable for
	// certificates and for identifying the key in logs.
	Marshal() []byte
}

// ---------------------------------------------------------------------------
// Deterministic randomness for key generation.

// detReader is a deterministic io.Reader derived from a seed, implemented as
// SHA-256 in counter mode. It exists only so experiments are reproducible.
type detReader struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newDetReader(domain string, seed int64) *detReader {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	return &detReader{seed: sha256.Sum256(append([]byte(domain), b[:]...))}
}

func (d *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(d.buf) == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], d.ctr)
			d.ctr++
			block := sha256.Sum256(append(d.seed[:], ctr[:]...))
			d.buf = block[:]
		}
		c := copy(p[n:], d.buf)
		d.buf = d.buf[c:]
		n += c
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Ed25519 / SHA-256 suite.

type ed25519Suite struct{}

// Ed25519SHA256 is the fast default suite.
var Ed25519SHA256 Suite = ed25519Suite{}

func (ed25519Suite) Name() string { return "ed25519-sha256" }

func (ed25519Suite) Hash(parts ...[]byte) []byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

func (ed25519Suite) HashSize() int      { return sha256.Size }
func (ed25519Suite) SignatureSize() int { return ed25519.SignatureSize }

func (ed25519Suite) GenerateKey(seed int64) (PrivateKey, error) {
	var seedBytes [ed25519.SeedSize]byte
	r := newDetReader("snp-ed25519", seed)
	if _, err := r.Read(seedBytes[:]); err != nil {
		return nil, err
	}
	key := ed25519.NewKeyFromSeed(seedBytes[:])
	return ed25519Key{key}, nil
}

type ed25519Key struct{ key ed25519.PrivateKey }

func (k ed25519Key) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(k.key, msg), nil
}

func (k ed25519Key) Public() PublicKey {
	return ed25519Pub{k.key.Public().(ed25519.PublicKey)}
}

type ed25519Pub struct{ key ed25519.PublicKey }

func (p ed25519Pub) Verify(msg, sig []byte) bool {
	return ed25519.Verify(p.key, msg, sig)
}

func (p ed25519Pub) Marshal() []byte { return append([]byte(nil), p.key...) }

// ---------------------------------------------------------------------------
// RSA-1024 / SHA-1 suite (paper-faithful sizes).

type rsaSuite struct{}

// RSA1024SHA1 reproduces the paper's crypto configuration (§7.1): 1,024-bit
// RSA keys and SHA-1 hash chains. SHA-1 is cryptographically broken and this
// suite exists solely for byte-size fidelity with the published evaluation.
var RSA1024SHA1 Suite = rsaSuite{}

func (rsaSuite) Name() string { return "rsa1024-sha1" }

func (rsaSuite) Hash(parts ...[]byte) []byte {
	h := sha1.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

func (rsaSuite) HashSize() int      { return sha1.Size }
func (rsaSuite) SignatureSize() int { return 128 } // 1,024-bit modulus

// GenerateKey derives a keypair from seed. Note: crypto/rsa deliberately
// injects nondeterminism into key generation, so unlike the Ed25519 suite,
// RSA keys are only stable within a process (via PooledKey), not across runs.
func (rsaSuite) GenerateKey(seed int64) (PrivateKey, error) {
	key, err := rsa.GenerateKey(newDetReader("snp-rsa", seed), 1024)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: rsa keygen: %w", err)
	}
	return rsaKey{key}, nil
}

type rsaKey struct{ key *rsa.PrivateKey }

func (k rsaKey) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(nil, k.key, crypto.SHA256, digest[:])
}

func (k rsaKey) Public() PublicKey { return rsaPub{&k.key.PublicKey} }

type rsaPub struct{ key *rsa.PublicKey }

func (p rsaPub) Verify(msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(p.key, crypto.SHA256, digest[:], sig) == nil
}

func (p rsaPub) Marshal() []byte {
	return x509.MarshalPKCS1PublicKey(p.key)
}

// ---------------------------------------------------------------------------
// Shared key pools.
//
// RSA key generation is expensive; experiments with hundreds of nodes reuse
// deterministically derived keys from a process-wide pool.

var keyPool sync.Map // poolKey -> PrivateKey

type poolKey struct {
	suite string
	seed  int64
}

// PooledKey returns the deterministic key for (suite, seed), generating and
// caching it on first use.
func PooledKey(s Suite, seed int64) (PrivateKey, error) {
	k := poolKey{s.Name(), seed}
	if v, ok := keyPool.Load(k); ok {
		return v.(PrivateKey), nil
	}
	key, err := s.GenerateKey(seed)
	if err != nil {
		return nil, err
	}
	actual, _ := keyPool.LoadOrStore(k, key)
	return actual.(PrivateKey), nil
}

// ---------------------------------------------------------------------------
// Verification cache.
//
// SNP re-verifies the same commitments many times: a signature checked when
// an envelope arrives is checked again for every audit that replays the
// receiver's log, and authenticators are re-verified on every ack round and
// segment audit. Signature verification is pure, so the result can be
// memoized on (public key, signed material, signature). The cache stores
// only booleans; it cannot change any outcome, only skip repeat work.

// verifyCacheMaxEntries bounds cache memory; the cache is reset (not LRU
// evicted) when full, which keeps the fast path branch-free.
const verifyCacheMaxEntries = 1 << 20

// VerifyCache memoizes signature-verification results. The zero value is not
// usable; use NewVerifyCache. All methods are safe for concurrent use.
type VerifyCache struct {
	mu sync.RWMutex
	m  map[[sha256.Size]byte]bool
}

// NewVerifyCache returns an empty cache.
func NewVerifyCache() *VerifyCache {
	return &VerifyCache{m: make(map[[sha256.Size]byte]bool)}
}

// DefaultVerifyCache is the process-wide cache used by seclog; nodes and
// auditors in one process share it, which is exactly the paper's audit
// pattern (the querier re-checks signatures the nodes checked at runtime).
var DefaultVerifyCache = NewVerifyCache()

// verifyCacheKey digests the (key, material, signature) triple into a fixed
// 32-byte map key: length-prefixed so distinct triples cannot collide by
// concatenation, and hashed so a full cache holds 33 bytes per entry rather
// than the raw inputs.
func verifyCacheKey(pub PublicKey, msg, sig []byte) [sha256.Size]byte {
	h := sha256.New()
	var n [4]byte
	p := pub.Marshal()
	binary.BigEndian.PutUint32(n[:], uint32(len(p)))
	h.Write(n[:])
	h.Write(p)
	binary.BigEndian.PutUint32(n[:], uint32(len(msg)))
	h.Write(n[:])
	h.Write(msg)
	h.Write(sig)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Verify checks sig over msg under pub, memoizing the result. A cache hit is
// recorded in stats (which may be nil); the caller remains responsible for
// counting the *logical* verification via Stats.CountVerify, so operation
// counts (Figure 7) are identical with and without the cache.
func (c *VerifyCache) Verify(stats *Stats, pub PublicKey, msg, sig []byte) bool {
	k := verifyCacheKey(pub, msg, sig)
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		stats.CountVerifyCacheHit()
		return v
	}
	v = pub.Verify(msg, sig)
	c.mu.Lock()
	if len(c.m) >= verifyCacheMaxEntries {
		c.m = make(map[[sha256.Size]byte]bool)
	}
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// Reset empties the cache (tests and long-lived processes).
func (c *VerifyCache) Reset() {
	c.mu.Lock()
	c.m = make(map[[sha256.Size]byte]bool)
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Operation accounting (used by the evaluation harness for Figure 7).

// Stats counts cryptographic operations performed by one node. All methods
// are safe for concurrent use. Verifies counts logical verifications —
// every signature check the protocol calls for — while VerifyCacheHits
// counts the subset answered from the verification cache without touching
// the CPU; Verifies-VerifyCacheHits is the number of actual public-key
// operations performed.
type Stats struct {
	Signs           atomic.Uint64
	Verifies        atomic.Uint64
	VerifyCacheHits atomic.Uint64
	Hashes          atomic.Uint64
	HashedBytes     atomic.Uint64
}

// CountSign records one signature generation.
func (s *Stats) CountSign() {
	if s != nil {
		s.Signs.Add(1)
	}
}

// CountVerify records one logical signature verification.
func (s *Stats) CountVerify() {
	if s != nil {
		s.Verifies.Add(1)
	}
}

// CountVerifyCacheHit records one verification answered from the cache.
func (s *Stats) CountVerifyCacheHit() {
	if s != nil {
		s.VerifyCacheHits.Add(1)
	}
}

// CountHash records one hash computation over n bytes.
func (s *Stats) CountHash(n int) {
	if s != nil {
		s.Hashes.Add(1)
		s.HashedBytes.Add(uint64(n))
	}
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Signs:           s.Signs.Load(),
		Verifies:        s.Verifies.Load(),
		VerifyCacheHits: s.VerifyCacheHits.Load(),
		Hashes:          s.Hashes.Load(),
		HashedBytes:     s.HashedBytes.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	Signs           uint64
	Verifies        uint64
	VerifyCacheHits uint64
	Hashes          uint64
	HashedBytes     uint64
}

// Add returns the element-wise sum of two snapshots.
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Signs:           a.Signs + b.Signs,
		Verifies:        a.Verifies + b.Verifies,
		VerifyCacheHits: a.VerifyCacheHits + b.VerifyCacheHits,
		Hashes:          a.Hashes + b.Hashes,
		HashedBytes:     a.HashedBytes + b.HashedBytes,
	}
}
