package cryptoutil

import (
	"bytes"
	"testing"
)

var suites = []Suite{Ed25519SHA256, RSA1024SHA1}

func TestSignVerify(t *testing.T) {
	for _, s := range suites {
		t.Run(s.Name(), func(t *testing.T) {
			key, err := s.GenerateKey(1)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("why did that route change just now?")
			sig, err := key.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != s.SignatureSize() {
				t.Errorf("signature size = %d, want %d", len(sig), s.SignatureSize())
			}
			if !key.Public().Verify(msg, sig) {
				t.Error("valid signature rejected")
			}
			if key.Public().Verify([]byte("other message"), sig) {
				t.Error("signature verified against wrong message")
			}
			sig[0] ^= 0xFF
			if key.Public().Verify(msg, sig) {
				t.Error("corrupted signature verified")
			}
		})
	}
}

func TestWrongKeyRejected(t *testing.T) {
	for _, s := range suites {
		t.Run(s.Name(), func(t *testing.T) {
			k1, err := s.GenerateKey(1)
			if err != nil {
				t.Fatal(err)
			}
			k2, err := s.GenerateKey(2)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("message")
			sig, err := k1.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if k2.Public().Verify(msg, sig) {
				t.Error("signature verified under a different node's key")
			}
		})
	}
}

func TestDeterministicKeys(t *testing.T) {
	// Ed25519 keys are deterministic across calls; RSA keys are only stable
	// via the pool because crypto/rsa injects nondeterminism.
	k1, err := Ed25519SHA256.GenerateKey(42)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Ed25519SHA256.GenerateKey(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1.Public().Marshal(), k2.Public().Marshal()) {
		t.Error("same seed produced different keys")
	}
	k3, err := Ed25519SHA256.GenerateKey(43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1.Public().Marshal(), k3.Public().Marshal()) {
		t.Error("different seeds produced the same key")
	}
}

func TestHash(t *testing.T) {
	for _, s := range suites {
		t.Run(s.Name(), func(t *testing.T) {
			h1 := s.Hash([]byte("ab"), []byte("c"))
			h2 := s.Hash([]byte("abc"))
			if !bytes.Equal(h1, h2) {
				t.Error("hash over split input differs from hash over concatenation")
			}
			if len(h1) != s.HashSize() {
				t.Errorf("hash size = %d, want %d", len(h1), s.HashSize())
			}
			h3 := s.Hash([]byte("abd"))
			if bytes.Equal(h1, h3) {
				t.Error("distinct inputs hashed equal")
			}
		})
	}
}

func TestPooledKeyCaches(t *testing.T) {
	k1, err := PooledKey(Ed25519SHA256, 7)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PooledKey(Ed25519SHA256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1.Public().Marshal(), k2.Public().Marshal()) {
		t.Error("pool returned different keys for the same seed")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.CountSign()
	s.CountSign()
	s.CountVerify()
	s.CountHash(100)
	s.CountHash(50)
	snap := s.Snapshot()
	if snap.Signs != 2 || snap.Verifies != 1 || snap.Hashes != 2 || snap.HashedBytes != 150 {
		t.Errorf("snapshot = %+v", snap)
	}
	sum := snap.Add(snap)
	if sum.Signs != 4 || sum.HashedBytes != 300 {
		t.Errorf("sum = %+v", sum)
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.CountSign() // must not panic
	s.CountVerify()
	s.CountHash(10)
}

func TestDetReaderDeterministic(t *testing.T) {
	r1 := newDetReader("d", 9)
	r2 := newDetReader("d", 9)
	a := make([]byte, 100)
	b := make([]byte, 100)
	if _, err := r1.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Read(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("deterministic reader produced different streams")
	}
}
