// Package simnet is a deterministic discrete-event network simulator: the
// testbed substrate for the paper's evaluation (§7.1). Nodes run under
// virtual, per-node-skewed clocks; message delays are seeded-pseudorandom
// and bounded by Tprop; every transmitted byte is metered and attributed to
// the categories Figure 5 reports (baseline payload, provenance metadata,
// authenticators, acknowledgments).
//
// # Scheduling model
//
// Every node owns an event shard: a private queue of events ordered by
// (time, source, per-source sequence), a private random stream per outgoing
// link, and a private traffic meter. Cross-node interaction happens only
// through Send, whose delivery delay is at least Cfg.MinDelay; the scheduler
// exploits that bound conservatively. Run advances virtual time in windows
// [T, T+MinDelay): within a window every shard executes its own events
// independently (optionally on parallel workers — Config.Workers), because
// nothing a shard does before T+MinDelay can affect another shard before
// T+MinDelay. Deliveries produced during a window are staged in
// per-destination mailboxes and merged into the target shards at the window
// barrier, ordered by the same (time, source, sequence) key.
//
// Harness events scheduled with At/Periodic (no node affiliation) run
// single-threaded at window barriers, before any node event carrying the
// same timestamp; node-targeted work should use AtNode/PeriodicNode so it
// runs on — and scales with — the node's shard.
//
// # Determinism contract
//
// A run is a pure function of the configuration (including Seed) and the
// scheduled workload: random delay and skew draws come from per-link and
// per-node streams derived from Seed (never from a shared generator whose
// consumption order depends on scheduling), every queue is ordered by the
// total key (time, source, sequence), and shard meters are merged in node
// order. Consequently the number of workers does not influence any
// observable: a Workers=8 run is bit-identical — Traffic, LogStats,
// CryptoStats, log contents, query answers — to the Workers=1 reference
// execution, which the equivalence tests pin.
package simnet

import (
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// event is one scheduled simulator action. src is the scheduling shard ("" =
// harness); seq is a per-source counter, so (at, src, seq) is a total order
// that both the serial reference and the sharded scheduler sort by.
type event struct {
	at  types.Time
	src types.NodeID
	seq uint64
	fn  func()
}

func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.seq < o.seq
}

type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Traffic meters transmitted bytes by category.
type Traffic struct {
	BaselineBytes   int64 // bare messages (what a provenance-free system sends)
	ProvenanceBytes int64 // per-message provenance metadata (timestamps, seqnos)
	AuthBytes       int64 // envelope commitment overhead (hash + signature)
	AckBytes        int64 // acknowledgments
	Envelopes       int64
	Messages        int64
	Acks            int64
	PerNodeBytes    map[types.NodeID]int64 // all bytes sent by each node
	PerNodeBaseline map[types.NodeID]int64
}

// TotalBytes returns all metered bytes.
func (t *Traffic) TotalBytes() int64 {
	return t.BaselineBytes + t.ProvenanceBytes + t.AuthBytes + t.AckBytes
}

// add accumulates another meter into t. Sums are order-independent, so the
// merged view is identical no matter how shard execution interleaved.
func (t *Traffic) add(o *Traffic) {
	t.BaselineBytes += o.BaselineBytes
	t.ProvenanceBytes += o.ProvenanceBytes
	t.AuthBytes += o.AuthBytes
	t.AckBytes += o.AckBytes
	t.Envelopes += o.Envelopes
	t.Messages += o.Messages
	t.Acks += o.Acks
	for id, b := range o.PerNodeBytes {
		t.PerNodeBytes[id] += b
	}
	for id, b := range o.PerNodeBaseline {
		t.PerNodeBaseline[id] += b
	}
}

// meter attributes one packet sent by from.
func (t *Traffic) meter(from types.NodeID, pkt *core.Packet) {
	switch pkt.Kind {
	case core.PktEnvelope:
		env := pkt.Envelope
		var base int64
		for i := range env.Msgs {
			base += int64(baselineSize(&env.Msgs[i]))
		}
		full := int64(pkt.WireSize())
		payload := int64(env.PayloadSize())
		t.BaselineBytes += base
		t.ProvenanceBytes += payload - base
		t.AuthBytes += full - payload
		t.Envelopes++
		t.Messages += int64(len(env.Msgs))
		if t.PerNodeBytes == nil {
			t.PerNodeBytes = make(map[types.NodeID]int64)
			t.PerNodeBaseline = make(map[types.NodeID]int64)
		}
		t.PerNodeBytes[from] += full
		t.PerNodeBaseline[from] += base
	case core.PktAck:
		sz := int64(pkt.WireSize())
		t.AckBytes += sz
		t.Acks++
		if t.PerNodeBytes == nil {
			t.PerNodeBytes = make(map[types.NodeID]int64)
			t.PerNodeBaseline = make(map[types.NodeID]int64)
		}
		t.PerNodeBytes[from] += sz
	}
}

// baselineSize is the wire size of a message without SNP's provenance
// metadata (send timestamp and sequence number).
func baselineSize(m *types.Message) int {
	w := wire.GetWriter()
	w.String(string(m.Src))
	w.String(string(m.Dst))
	w.Byte(byte(m.Pol))
	m.Tuple.MarshalWire(w)
	n := w.Len()
	wire.PutWriter(w)
	return n
}

// Config extends the SNooPy node config with simulator knobs.
type Config struct {
	Core core.Config
	// MinDelay/MaxDelay bound message propagation (MaxDelay must stay
	// below Core.Tprop for the quiescence assumptions to hold). MinDelay is
	// also the conservative lookahead of the sharded scheduler: larger
	// values mean wider windows and more parallelism.
	MinDelay types.Time
	MaxDelay types.Time
	// TickEvery drives node timers (batching, checkpoints, retransmits).
	TickEvery types.Time
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds how many shards Run may execute concurrently within a
	// window. 0 or 1 is the serial reference scheduler; values > 1 enable
	// the parallel scheduler; negative uses GOMAXPROCS. Every observable is
	// bit-identical across worker counts (see the package comment).
	Workers int
	// Baseline disables all SNP machinery accounting except payload
	// metering (used to measure the baseline system).
	Baseline bool
	// OnNode, when set, is invoked with every node AddNode creates — after
	// registration, before any event executes. The adversary-injection
	// framework (internal/adversary) uses it to arm Byzantine behaviors on
	// compromised nodes at deploy time without forking any deploy code.
	OnNode func(*core.Node)
}

// DefaultConfig returns simulator defaults consistent with §5.2's
// assumptions.
func DefaultConfig() Config {
	return Config{
		Core:      core.DefaultConfig(),
		MinDelay:  5 * types.Millisecond,
		MaxDelay:  50 * types.Millisecond,
		TickEvery: 100 * types.Millisecond,
		Seed:      1,
	}
}

// staged is one cross-shard delivery produced during a window, exchanged at
// the next barrier.
type staged struct {
	dst *shard
	ev  *event
}

// shard is one node's slice of the simulation: its event queue, its outgoing
// random streams, its traffic meter, and its outbox of cross-shard
// deliveries. During a window a shard is touched only by the single worker
// executing it; between windows only the coordinator touches it.
type shard struct {
	id   types.NodeID
	node *core.Node

	queue eventHeap
	seq   uint64 // per-source counter for events this shard schedules

	// now is the timestamp of the event currently (or last) executed on
	// this shard; the node's clock reads max(shard.now, Net.now).
	now types.Time

	// links holds one seeded delay stream per outgoing link (this node →
	// dst), so delay draws depend only on this node's own send order.
	links map[types.NodeID]*rand.Rand

	traffic Traffic
	outbox  []staged
}

// schedule pushes an event sourced by this shard onto its own queue.
func (sh *shard) schedule(at types.Time, fn func()) {
	sh.seq++
	heap.Push(&sh.queue, &event{at: at, src: sh.id, seq: sh.seq, fn: fn})
}

// Net is the simulated network plus all nodes attached to it.
type Net struct {
	Cfg        Config
	Dir        *core.Directory
	Maintainer *core.Maintainer
	// Traffic is the merged view of all shard meters; it is refreshed at
	// the end of every Run (reading it mid-run sees the previous Run's
	// totals).
	Traffic *Traffic

	shards  map[types.NodeID]*shard
	order   []types.NodeID // sorted; maintained incrementally by AddNode
	byOrder []*shard       // shards in order

	now       types.Time // committed global time (window barrier / Run horizon)
	globalQ   eventHeap  // harness events (src ""), run at barriers
	globalSeq uint64

	skews map[types.NodeID]types.Time

	// Partition drops packets between partitioned pairs when set. It is
	// called from shard workers and must be a pure function of its
	// arguments; install or swap it only at setup time or from an At
	// (barrier) event.
	Partition func(from, to types.NodeID) bool
}

// New creates an empty simulated network.
func New(cfg Config) *Net {
	return &Net{
		Cfg:        cfg,
		Dir:        core.NewDirectory(),
		Maintainer: core.NewMaintainer(),
		Traffic: &Traffic{
			PerNodeBytes:    make(map[types.NodeID]int64),
			PerNodeBaseline: make(map[types.NodeID]int64),
		},
		shards: make(map[types.NodeID]*shard),
		skews:  make(map[types.NodeID]types.Time),
	}
}

// Now returns the global virtual time (the current window barrier; within a
// window, individual shards may be ahead by less than MinDelay).
func (n *Net) Now() types.Time { return n.now }

// derivedSeed maps (seed, domain, a, b) to an independent stream seed. The
// derivation is order-free: a stream's identity depends only on what it is
// for, never on when it was first used.
func derivedSeed(seed int64, domain string, a, b types.NodeID) int64 {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(domain))
	h.Write([]byte{0})
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	sum := h.Sum(nil)
	return int64(binary.BigEndian.Uint64(sum[:8]))
}

// linkRng returns the delay stream for the link sh.id → dst, creating it on
// first use from the link's derived seed.
func (n *Net) linkRng(sh *shard, dst types.NodeID) *rand.Rand {
	if r, ok := sh.links[dst]; ok {
		return r
	}
	r := rand.New(rand.NewSource(derivedSeed(n.Cfg.Seed, "link-delay", sh.id, dst)))
	sh.links[dst] = r
	return r
}

// timeAt is the current moment from a shard's perspective: its own event
// time while it executes, the barrier time otherwise.
func (n *Net) timeAt(sh *shard) types.Time {
	if sh.now > n.now {
		return sh.now
	}
	return n.now
}

// AddNode creates a node with a pooled deterministic key, registers its
// certificate, and gives it an event shard. keySeed should be unique per
// node (e.g. its index). Nodes must be added at setup time or from a
// barrier (At) event, never from node execution.
func (n *Net) AddNode(id types.NodeID, keySeed int64, machine types.Machine) (*core.Node, error) {
	if _, dup := n.shards[id]; dup {
		return nil, fmt.Errorf("simnet: duplicate node %s", id)
	}
	key, err := cryptoutil.PooledKey(n.Cfg.Core.Suite, keySeed)
	if err != nil {
		return nil, err
	}
	n.Dir.Register(id, key.Public())
	// Per-node clock skew in [−Δclock/2, +Δclock/2], drawn from the node's
	// own derived stream so it does not depend on registration order.
	skew := types.Time(0)
	if n.Cfg.Core.DeltaClock > 0 {
		rng := rand.New(rand.NewSource(derivedSeed(n.Cfg.Seed, "clock-skew", id, "")))
		skew = types.Time(rng.Int63n(int64(n.Cfg.Core.DeltaClock))) - n.Cfg.Core.DeltaClock/2
	}
	n.skews[id] = skew
	sh := &shard{id: id, links: make(map[types.NodeID]*rand.Rand)}
	clock := core.ClockFunc(func() types.Time {
		t := n.timeAt(sh) + skew
		if t < 0 {
			t = 0
		}
		return t
	})
	node, err := core.NewNode(id, n.Cfg.Core, key, n.Dir, n.Maintainer, clock, n, machine)
	if err != nil {
		return nil, err
	}
	sh.node = node
	n.shards[id] = sh
	if i, found := slices.BinarySearch(n.order, id); !found {
		n.order = slices.Insert(n.order, i, id)
		n.byOrder = slices.Insert(n.byOrder, i, sh)
	}
	if n.Cfg.OnNode != nil {
		n.Cfg.OnNode(node)
	}
	return node, nil
}

// MustAddNode is AddNode that panics on error (setup-time convenience).
func (n *Net) MustAddNode(id types.NodeID, keySeed int64, machine types.Machine) *core.Node {
	node, err := n.AddNode(id, keySeed, machine)
	if err != nil {
		//snpvet:allow nopanic deploy-time convenience used only while building a simulation topology, before any peer-influenced input exists
		panic(err)
	}
	return node
}

// Node returns a node by ID.
func (n *Net) Node(id types.NodeID) *core.Node {
	if sh := n.shards[id]; sh != nil {
		return sh.node
	}
	return nil
}

// Nodes implements core.Fetcher's node listing (sorted). The order slice is
// kept sorted by AddNode, so this is a plain copy.
func (n *Net) Nodes() []types.NodeID {
	return append([]types.NodeID(nil), n.order...)
}

// Send implements core.Sender: meter the packet on the sender's shard and
// stage its delivery in the destination's mailbox. It is called from the
// sending node's own execution (or from a barrier event touching that
// node), so the sender's shard state is safe to use without locks.
func (n *Net) Send(from, to types.NodeID, pkt *core.Packet) {
	src := n.shards[from]
	if src == nil {
		return
	}
	src.traffic.meter(from, pkt)
	if n.Partition != nil && n.Partition(from, to) {
		return
	}
	delay := n.Cfg.MinDelay
	if n.Cfg.MaxDelay > n.Cfg.MinDelay {
		delay += types.Time(n.linkRng(src, to).Int63n(int64(n.Cfg.MaxDelay - n.Cfg.MinDelay)))
	}
	dst := n.shards[to]
	if dst == nil {
		return
	}
	src.seq++
	node := dst.node
	ev := &event{at: n.timeAt(src) + delay, src: from, seq: src.seq, fn: func() {
		// Delivery errors model dropped packets (bad signatures etc.); the
		// commitment protocol's retransmit/notify path covers them.
		_ = node.HandlePacket(from, pkt)
	}}
	src.outbox = append(src.outbox, staged{dst: dst, ev: ev})
}

// At schedules fn at virtual time t (clamped to now) as a harness event: it
// runs single-threaded at a window barrier, before any node event with the
// same timestamp, and may safely touch any node or the network itself.
func (n *Net) At(t types.Time, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.globalSeq++
	heap.Push(&n.globalQ, &event{at: t, src: "", seq: n.globalSeq, fn: fn})
}

// AtNode schedules fn at virtual time t on id's shard: it executes inside
// id's event stream (in (time, source, sequence) order) and may touch only
// that node. Unknown IDs fall back to a barrier event. AtNode may be called
// at setup time, from a barrier event, or from id's own execution — never
// from another node's execution.
func (n *Net) AtNode(id types.NodeID, t types.Time, fn func()) {
	sh := n.shards[id]
	if sh == nil {
		n.At(t, fn)
		return
	}
	if c := n.timeAt(sh); t < c {
		t = c
	}
	sh.schedule(t, fn)
}

// Periodic schedules fn every interval in [start, end) as a harness
// (barrier) event. The next firing is scheduled when the previous one runs,
// so the queue stays proportional to live work rather than the horizon.
func (n *Net) Periodic(start, interval, end types.Time, fn func()) {
	n.periodic(start, interval, end, fn, func(t types.Time, f func()) { n.At(t, f) })
}

// PeriodicNode is Periodic on id's shard (see AtNode for the affiliation
// contract): the firings execute inside — and scale with — id's shard.
func (n *Net) PeriodicNode(id types.NodeID, start, interval, end types.Time, fn func()) {
	n.periodic(start, interval, end, fn, func(t types.Time, f func()) { n.AtNode(id, t, f) })
}

// periodic implements reschedule-on-fire: one queued event per live chain.
func (n *Net) periodic(start, interval, end types.Time, fn func(), at func(types.Time, func())) {
	if interval <= 0 || start >= end {
		return
	}
	cur := start
	var tick func()
	tick = func() {
		fn()
		cur += interval
		if cur < end {
			at(cur, tick)
		}
	}
	at(cur, tick)
}

// workers resolves the configured worker count.
func (n *Net) workers() int {
	w := n.Cfg.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scheduleTicks starts one reschedule-on-fire tick chain per node for this
// Run's horizon.
func (n *Net) scheduleTicks(until types.Time) {
	if n.Cfg.TickEvery <= 0 {
		return
	}
	for _, sh := range n.byOrder {
		node := sh.node
		// Tick errors are local faults (e.g. a signing failure); the node
		// keeps running and audits expose it (Node.Err holds it).
		n.PeriodicNode(sh.id, n.now+n.Cfg.TickEvery, n.Cfg.TickEvery, until, func() { _ = node.Tick() })
	}
}

// flushOutboxes merges every staged cross-shard delivery into its target
// queue. Shards are drained in node order; within a shard, the outbox holds
// its execution order. The merge is deterministic either way: (at, src,
// seq) keys are unique, so heap order is independent of insertion order.
func (n *Net) flushOutboxes() {
	for _, sh := range n.byOrder {
		for _, st := range sh.outbox {
			heap.Push(&st.dst.queue, st.ev)
		}
		sh.outbox = sh.outbox[:0]
	}
}

// nextEventTime returns the earliest pending event time across all shards
// and the harness queue.
func (n *Net) nextEventTime() (types.Time, bool) {
	var best types.Time
	ok := false
	if len(n.globalQ) > 0 {
		best, ok = n.globalQ[0].at, true
	}
	for _, sh := range n.byOrder {
		if len(sh.queue) > 0 && (!ok || sh.queue[0].at < best) {
			best, ok = sh.queue[0].at, true
		}
	}
	return best, ok
}

// windowPool is a persistent worker pool for one Run: the workers outlive
// the windows, so a barrier costs one channel send per runnable shard
// instead of a goroutine spawn per worker per window.
type windowPool struct {
	work chan *shard
	wg   sync.WaitGroup
	// wEnd is the current window's bound. It is written by the coordinator
	// before any shard of that window is sent and read by workers only
	// while processing those shards; the channel send/receive orders the
	// accesses.
	wEnd types.Time
}

func newWindowPool(workers int) *windowPool {
	p := &windowPool{work: make(chan *shard, workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for sh := range p.work {
				runShard(sh, p.wEnd)
				p.wg.Done()
			}
		}()
	}
	return p
}

// runWindow dispatches one window's runnable shards and waits for the
// barrier.
func (p *windowPool) runWindow(runnable []*shard, wEnd types.Time) {
	p.wEnd = wEnd
	p.wg.Add(len(runnable))
	for _, sh := range runnable {
		p.work <- sh
	}
	p.wg.Wait()
}

func (p *windowPool) stop() { close(p.work) }

// runShard executes one shard's events with at < wEnd. Within a window a
// shard touches only its own state (plus lock-protected, order-insensitive
// shared structures such as the maintainer registry and the verification
// cache), so the serial and parallel interleavings are observably
// identical.
func runShard(sh *shard, wEnd types.Time) {
	for len(sh.queue) > 0 && sh.queue[0].at < wEnd {
		ev := heap.Pop(&sh.queue).(*event)
		sh.now = ev.at
		ev.fn()
	}
}

// Run processes events until the queue is empty or virtual time passes
// until. Events stamped beyond the horizon stay queued for a later Run.
func (n *Net) Run(until types.Time) {
	if until < n.now {
		until = n.now
	}
	n.scheduleTicks(until)
	workers := n.workers()
	var pool *windowPool
	if workers > 1 {
		pool = newWindowPool(workers)
		defer pool.stop()
	}
	// The conservative lookahead: cross-shard effects cannot land sooner
	// than MinDelay after they are produced. A non-positive MinDelay
	// degenerates to single-instant windows, which stays deterministic but
	// forfeits parallelism.
	window := n.Cfg.MinDelay
	if window < 1 {
		window = 1
	}
	runnable := make([]*shard, 0, len(n.byOrder))
	for {
		n.flushOutboxes()
		t, ok := n.nextEventTime()
		if !ok || t > until {
			break
		}
		n.now = t
		// Harness events due now run first (source "" orders before every
		// node ID), single-threaded, with the whole network quiescent.
		if len(n.globalQ) > 0 && n.globalQ[0].at <= t {
			for len(n.globalQ) > 0 && n.globalQ[0].at <= t {
				ev := heap.Pop(&n.globalQ).(*event)
				ev.fn()
			}
			continue // re-merge and re-pick: barriers may schedule anywhere
		}
		wEnd := t + window
		if len(n.globalQ) > 0 && n.globalQ[0].at < wEnd {
			wEnd = n.globalQ[0].at // the next barrier bounds the window
		}
		if until+1 < wEnd {
			wEnd = until + 1 // events at exactly `until` still run
		}
		runnable = runnable[:0]
		for _, sh := range n.byOrder {
			if len(sh.queue) > 0 && sh.queue[0].at < wEnd {
				runnable = append(runnable, sh)
			}
		}
		if pool == nil || len(runnable) <= 1 {
			for _, sh := range runnable {
				runShard(sh, wEnd)
			}
		} else {
			pool.runWindow(runnable, wEnd)
		}
	}
	n.now = until
	n.refreshTraffic()
}

// refreshTraffic rebuilds the merged traffic view from the shard meters (in
// node order; the totals are order-independent sums).
func (n *Net) refreshTraffic() {
	t := n.Traffic
	*t = Traffic{
		PerNodeBytes:    make(map[types.NodeID]int64),
		PerNodeBaseline: make(map[types.NodeID]int64),
	}
	for _, sh := range n.byOrder {
		t.add(&sh.traffic)
	}
}

// ---------------------------------------------------------------------------
// core.Fetcher implementation (the querier's control plane).

// Retrieve implements core.Fetcher.
func (n *Net) Retrieve(node types.NodeID, req core.RetrieveRequest) (*core.RetrieveResponse, error) {
	nd := n.Node(node)
	if nd == nil {
		return nil, fmt.Errorf("simnet: unknown node %s", node)
	}
	return nd.HandleRetrieve(req)
}

// LatestAuth implements core.Fetcher.
func (n *Net) LatestAuth(node types.NodeID) (seclog.Authenticator, error) {
	nd := n.Node(node)
	if nd == nil {
		return seclog.Authenticator{}, fmt.Errorf("simnet: unknown node %s", node)
	}
	return nd.LatestAuth()
}

// AuthsAbout implements core.Fetcher.
func (n *Net) AuthsAbout(observer, target types.NodeID, t1, t2 types.Time) []seclog.Authenticator {
	nd := n.Node(observer)
	if nd == nil {
		return nil
	}
	return nd.AuthsAbout(target, t1, t2)
}

// NewQuerier builds a query session against this network using the given
// machine factory for replay.
func (n *Net) NewQuerier(factory types.MachineFactory) *core.Querier {
	auditor := core.NewAuditor(n.Cfg.Core, n.Dir, factory, n.Maintainer)
	return core.NewQuerier(auditor, n)
}

// LogStats aggregates per-node log growth (Figure 6).
type LogStats struct {
	Nodes      int
	GrossBytes int64 // all appended entries
	CkptBytes  int64 // checkpoint entries only
	Entries    uint64
}

// LogStats sums log sizes across nodes. Checkpoint bytes come from the
// logs' checkpoint index, so store-backed logs are not paged in from disk.
func (n *Net) LogStats() LogStats {
	var s LogStats
	for _, sh := range n.byOrder {
		s.Nodes++
		s.GrossBytes += sh.node.Log.GrossBytes()
		s.Entries += sh.node.Log.Len()
		s.CkptBytes += sh.node.Log.CheckpointBytes()
	}
	return s
}

// SyncLogs durably syncs every store-backed log (no-op for in-memory logs).
func (n *Net) SyncLogs() error {
	var err error
	for _, sh := range n.byOrder {
		if err2 := sh.node.Log.Sync(); err == nil {
			err = err2
		}
	}
	return err
}

// CloseLogs syncs and closes every store-backed log. The network must not
// be run afterwards.
func (n *Net) CloseLogs() error {
	var err error
	for _, sh := range n.byOrder {
		if err2 := sh.node.Log.Close(); err == nil {
			err = err2
		}
	}
	return err
}

// CryptoStats sums per-node crypto operation counts (Figure 7).
func (n *Net) CryptoStats() cryptoutil.StatsSnapshot {
	var sum cryptoutil.StatsSnapshot
	for _, sh := range n.byOrder {
		sum = sum.Add(sh.node.Stats.Snapshot())
	}
	return sum
}
