// Package simnet is a deterministic discrete-event network simulator: the
// testbed substrate for the paper's evaluation (§7.1). Nodes run under
// virtual, per-node-skewed clocks; message delays are seeded-pseudorandom
// and bounded by Tprop; every transmitted byte is metered and attributed to
// the categories Figure 5 reports (baseline payload, provenance metadata,
// authenticators, acknowledgments).
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// event is one scheduled simulator action.
type event struct {
	at  types.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Traffic meters transmitted bytes by category.
type Traffic struct {
	BaselineBytes   int64 // bare messages (what a provenance-free system sends)
	ProvenanceBytes int64 // per-message provenance metadata (timestamps, seqnos)
	AuthBytes       int64 // envelope commitment overhead (hash + signature)
	AckBytes        int64 // acknowledgments
	Envelopes       int64
	Messages        int64
	Acks            int64
	PerNodeBytes    map[types.NodeID]int64 // all bytes sent by each node
	PerNodeBaseline map[types.NodeID]int64
}

// TotalBytes returns all metered bytes.
func (t *Traffic) TotalBytes() int64 {
	return t.BaselineBytes + t.ProvenanceBytes + t.AuthBytes + t.AckBytes
}

// baselineSize is the wire size of a message without SNP's provenance
// metadata (send timestamp and sequence number).
func baselineSize(m *types.Message) int {
	w := wire.GetWriter()
	w.String(string(m.Src))
	w.String(string(m.Dst))
	w.Byte(byte(m.Pol))
	m.Tuple.MarshalWire(w)
	n := w.Len()
	wire.PutWriter(w)
	return n
}

// Config extends the SNooPy node config with simulator knobs.
type Config struct {
	Core core.Config
	// MinDelay/MaxDelay bound message propagation (MaxDelay must stay
	// below Core.Tprop for the quiescence assumptions to hold).
	MinDelay types.Time
	MaxDelay types.Time
	// TickEvery drives node timers (batching, checkpoints, retransmits).
	TickEvery types.Time
	// Seed makes the run reproducible.
	Seed int64
	// Baseline disables all SNP machinery accounting except payload
	// metering (used to measure the baseline system).
	Baseline bool
}

// DefaultConfig returns simulator defaults consistent with §5.2's
// assumptions.
func DefaultConfig() Config {
	return Config{
		Core:      core.DefaultConfig(),
		MinDelay:  5 * types.Millisecond,
		MaxDelay:  50 * types.Millisecond,
		TickEvery: 100 * types.Millisecond,
		Seed:      1,
	}
}

// Net is the simulated network plus all nodes attached to it.
type Net struct {
	Cfg        Config
	Dir        *core.Directory
	Maintainer *core.Maintainer
	Traffic    *Traffic

	nodes map[types.NodeID]*core.Node
	order []types.NodeID // sorted; maintained incrementally by AddNode
	now   types.Time
	queue eventHeap
	seq   uint64
	rng   *rand.Rand
	skews map[types.NodeID]types.Time
	// Partition drops packets between partitioned pairs when set.
	Partition func(from, to types.NodeID) bool
}

// New creates an empty simulated network.
func New(cfg Config) *Net {
	return &Net{
		Cfg:        cfg,
		Dir:        core.NewDirectory(),
		Maintainer: core.NewMaintainer(),
		Traffic: &Traffic{
			PerNodeBytes:    make(map[types.NodeID]int64),
			PerNodeBaseline: make(map[types.NodeID]int64),
		},
		nodes: make(map[types.NodeID]*core.Node),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		skews: make(map[types.NodeID]types.Time),
	}
}

// Now returns the global virtual time.
func (n *Net) Now() types.Time { return n.now }

// AddNode creates a node with a pooled deterministic key, registers its
// certificate, and schedules its periodic ticks. keySeed should be unique
// per node (e.g. its index).
func (n *Net) AddNode(id types.NodeID, keySeed int64, machine types.Machine) (*core.Node, error) {
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("simnet: duplicate node %s", id)
	}
	key, err := cryptoutil.PooledKey(n.Cfg.Core.Suite, keySeed)
	if err != nil {
		return nil, err
	}
	n.Dir.Register(id, key.Public())
	// Per-node clock skew in [−Δclock/2, +Δclock/2], deterministic.
	skew := types.Time(0)
	if n.Cfg.Core.DeltaClock > 0 {
		skew = types.Time(n.rng.Int63n(int64(n.Cfg.Core.DeltaClock))) - n.Cfg.Core.DeltaClock/2
	}
	n.skews[id] = skew
	clock := core.ClockFunc(func() types.Time {
		t := n.now + skew
		if t < 0 {
			t = 0
		}
		return t
	})
	node, err := core.NewNode(id, n.Cfg.Core, key, n.Dir, n.Maintainer, clock, n, machine)
	if err != nil {
		return nil, err
	}
	n.nodes[id] = node
	if i, found := slices.BinarySearch(n.order, id); !found {
		n.order = slices.Insert(n.order, i, id)
	}
	return node, nil
}

// MustAddNode is AddNode that panics on error (setup-time convenience).
func (n *Net) MustAddNode(id types.NodeID, keySeed int64, machine types.Machine) *core.Node {
	node, err := n.AddNode(id, keySeed, machine)
	if err != nil {
		panic(err)
	}
	return node
}

// Node returns a node by ID.
func (n *Net) Node(id types.NodeID) *core.Node { return n.nodes[id] }

// Nodes implements core.Fetcher's node listing (sorted). The order slice is
// kept sorted by AddNode, so this is a plain copy.
func (n *Net) Nodes() []types.NodeID {
	return append([]types.NodeID(nil), n.order...)
}

// Send implements core.Sender: meter the packet and schedule its delivery.
func (n *Net) Send(from, to types.NodeID, pkt *core.Packet) {
	n.meter(from, pkt)
	if n.Partition != nil && n.Partition(from, to) {
		return
	}
	delay := n.Cfg.MinDelay
	if n.Cfg.MaxDelay > n.Cfg.MinDelay {
		delay += types.Time(n.rng.Int63n(int64(n.Cfg.MaxDelay - n.Cfg.MinDelay)))
	}
	dst := n.nodes[to]
	if dst == nil {
		return
	}
	n.At(n.now+delay, func() {
		// Delivery errors model dropped packets (bad signatures etc.); the
		// commitment protocol's retransmit/notify path covers them.
		_ = dst.HandlePacket(from, pkt)
	})
}

func (n *Net) meter(from types.NodeID, pkt *core.Packet) {
	switch pkt.Kind {
	case core.PktEnvelope:
		env := pkt.Envelope
		var base int64
		for i := range env.Msgs {
			base += int64(baselineSize(&env.Msgs[i]))
		}
		full := int64(pkt.WireSize())
		payload := int64(env.PayloadSize())
		n.Traffic.BaselineBytes += base
		n.Traffic.ProvenanceBytes += payload - base
		n.Traffic.AuthBytes += full - payload
		n.Traffic.Envelopes++
		n.Traffic.Messages += int64(len(env.Msgs))
		n.Traffic.PerNodeBytes[from] += full
		n.Traffic.PerNodeBaseline[from] += base
	case core.PktAck:
		sz := int64(pkt.WireSize())
		n.Traffic.AckBytes += sz
		n.Traffic.Acks++
		n.Traffic.PerNodeBytes[from] += sz
	}
}

// At schedules fn at virtual time t (clamped to now).
func (n *Net) At(t types.Time, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.seq++
	heap.Push(&n.queue, &event{at: t, seq: n.seq, fn: fn})
}

// Periodic schedules fn every interval in [start, end).
func (n *Net) Periodic(start, interval, end types.Time, fn func()) {
	for t := start; t < end; t += interval {
		n.At(t, fn)
	}
}

// Run processes events until the queue is empty or virtual time passes
// until.
func (n *Net) Run(until types.Time) {
	// Schedule node ticks lazily so nodes added after New are covered.
	if n.Cfg.TickEvery > 0 {
		for _, id := range n.Nodes() {
			node := n.nodes[id]
			// Tick errors are local faults (e.g. a signing failure); the
			// node keeps running and audits expose it (Node.Err holds it).
			n.Periodic(n.now+n.Cfg.TickEvery, n.Cfg.TickEvery, until, func() { _ = node.Tick() })
		}
	}
	for n.queue.Len() > 0 {
		ev := heap.Pop(&n.queue).(*event)
		if ev.at > until {
			heap.Push(&n.queue, ev) // keep it for a later Run
			n.now = until
			return
		}
		n.now = ev.at
		ev.fn()
	}
	n.now = until
}

// ---------------------------------------------------------------------------
// core.Fetcher implementation (the querier's control plane).

// Retrieve implements core.Fetcher.
func (n *Net) Retrieve(node types.NodeID, req core.RetrieveRequest) (*core.RetrieveResponse, error) {
	nd := n.nodes[node]
	if nd == nil {
		return nil, fmt.Errorf("simnet: unknown node %s", node)
	}
	return nd.HandleRetrieve(req)
}

// LatestAuth implements core.Fetcher.
func (n *Net) LatestAuth(node types.NodeID) (seclog.Authenticator, error) {
	nd := n.nodes[node]
	if nd == nil {
		return seclog.Authenticator{}, fmt.Errorf("simnet: unknown node %s", node)
	}
	return nd.LatestAuth()
}

// AuthsAbout implements core.Fetcher.
func (n *Net) AuthsAbout(observer, target types.NodeID, t1, t2 types.Time) []seclog.Authenticator {
	nd := n.nodes[observer]
	if nd == nil {
		return nil
	}
	return nd.AuthsAbout(target, t1, t2)
}

// NewQuerier builds a query session against this network using the given
// machine factory for replay.
func (n *Net) NewQuerier(factory types.MachineFactory) *core.Querier {
	auditor := core.NewAuditor(n.Cfg.Core, n.Dir, factory, n.Maintainer)
	return core.NewQuerier(auditor, n)
}

// LogStats aggregates per-node log growth (Figure 6).
type LogStats struct {
	Nodes      int
	GrossBytes int64 // all appended entries
	CkptBytes  int64 // checkpoint entries only
	Entries    uint64
}

// LogStats sums log sizes across nodes. Checkpoint bytes come from the
// logs' checkpoint index, so store-backed logs are not paged in from disk.
func (n *Net) LogStats() LogStats {
	var s LogStats
	for _, id := range n.Nodes() {
		node := n.nodes[id]
		s.Nodes++
		s.GrossBytes += node.Log.GrossBytes()
		s.Entries += node.Log.Len()
		s.CkptBytes += node.Log.CheckpointBytes()
	}
	return s
}

// SyncLogs durably syncs every store-backed log (no-op for in-memory logs).
func (n *Net) SyncLogs() error {
	var err error
	for _, id := range n.Nodes() {
		if err2 := n.nodes[id].Log.Sync(); err == nil {
			err = err2
		}
	}
	return err
}

// CloseLogs syncs and closes every store-backed log. The network must not
// be run afterwards.
func (n *Net) CloseLogs() error {
	var err error
	for _, id := range n.Nodes() {
		if err2 := n.nodes[id].Log.Close(); err == nil {
			err = err2
		}
	}
	return err
}

// CryptoStats sums per-node crypto operation counts (Figure 7).
func (n *Net) CryptoStats() cryptoutil.StatsSnapshot {
	var sum cryptoutil.StatsSnapshot
	for _, id := range n.Nodes() {
		sum = sum.Add(n.nodes[id].Stats.Snapshot())
	}
	return sum
}
