package simnet_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
)

// compromise arms behaviors on node id through the adversary framework (the
// one injection path; the ad-hoc hook pokes these tests used to do live in
// internal/adversary now).
func compromise(t *testing.T, net *simnet.Net, id types.NodeID, bs ...adversary.Behavior) {
	t.Helper()
	if err := adversary.Arm(net, adversary.Plan{id: bs}); err != nil {
		t.Fatal(err)
	}
}

// runMinCost deploys the Figure 2 network and runs it to convergence.
func runMinCost(t *testing.T, mutate func(*simnet.Net)) *simnet.Net {
	t.Helper()
	cfg := simnet.DefaultConfig()
	net := simnet.New(cfg)
	if err := mincost.Deploy(net, mincost.Figure2Topology, 1*types.Second); err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(net)
	}
	net.Run(30 * types.Second)
	return net
}

func TestMinCostConverges(t *testing.T) {
	net := runMinCost(t, nil)
	// The cheapest path c→d is via b: 2 + 3 = 5 (tie with the direct link).
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v\nfailures: %v", err, q.Auditor.Failures())
	}
	if expl.Vertex.Type != provgraph.VExist || !expl.Vertex.Open() {
		t.Errorf("root vertex = %s, want open exist", expl.Vertex)
	}
	if len(q.Auditor.Failures()) != 0 {
		t.Errorf("failures on a correct run: %v", q.Auditor.Failures())
	}
	// All vertices in the answer must be black (accuracy, Theorem 5).
	if reds := expl.FindColor(provgraph.Red); len(reds) != 0 {
		t.Errorf("red vertices in a correct run: %v", reds[0].Vertex)
	}
	if yellows := expl.FindColor(provgraph.Yellow); len(yellows) != 0 {
		t.Errorf("yellow vertices in a correct run: %s", yellows[0].Vertex)
	}
}

// TestFigure2Structure checks that the provenance tree of bestCost(@c,d,5)
// has the Figure 2 shape: two derivations, one via c's direct link and one
// believed from b, the latter reached through receive/send vertices.
func TestFigure2Structure(t *testing.T) {
	net := runMinCost(t, nil)
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tree := expl.Format()
	for _, want := range []string{
		"EXIST(c, bestCost(@c,@d,5)",
		"DERIVE(c, bestCost(@c,@d,5), R3",
		"BELIEVE-APPEAR(c, b, cost(@c,@d,@b,5)",
		"RECEIVE(c, b, +cost(@c,@d,@b,5)",
		"SEND(b, c, +cost(@c,@d,@b,5)",
		"DERIVE(b, cost(@c,@d,@b,5), R2",
		"INSERT(b, link(@b,@c,2)",
		"INSERT(b, link(@b,@d,3)",
		"INSERT(c, link(@c,@d,5)",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree lacks %q\n%s", want, tree)
		}
	}
	// Two derivations of bestCost(@c,d,5) (Figure 2's two subtrees).
	if got := strings.Count(tree, "DERIVE(c, bestCost(@c,@d,5), R3"); got != 2 {
		t.Errorf("bestCost derivations in tree = %d, want 2\n%s", got, tree)
	}
}

func TestHistoricalAndDynamicQueries(t *testing.T) {
	net := runMinCost(t, func(net *simnet.Net) {
		// At t=60s, the b–d link fails; both endpoints retract it.
		net.At(60*types.Second, func() {
			net.Node("b").DeleteBase(mincost.Link("b", "d", 3))
		})
		net.At(60*types.Second, func() {
			net.Node("d").DeleteBase(mincost.Link("d", "b", 3))
		})
	})
	net.Run(90 * types.Second)

	q := net.NewQuerier(mincost.Factory())
	// Historical query: why did bestCost(@c,d,5) exist at t=30s?
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{
		Mode: core.ModeExist, At: 30 * types.Second,
	})
	if err != nil {
		t.Fatalf("historical query: %v", err)
	}
	if expl.Vertex.T1 > 30*types.Second {
		t.Errorf("historical root starts at %v, want <= 30s", expl.Vertex.T1)
	}

	// Dynamic query: why did cost(@c,d,b,5) disappear?
	q2 := net.NewQuerier(mincost.Factory())
	dyn, err := q2.Explain("c", mincost.Cost("c", "d", "b", 5), core.QueryOpts{
		Mode: core.ModeDisappear,
	})
	if err != nil {
		t.Fatalf("dynamic query: %v", err)
	}
	// The disappearance must trace back to b's link deletion.
	tree := dyn.Format()
	if !strings.Contains(tree, "BELIEVE-DISAPPEAR(c, b, cost(@c,@d,@b,5)") {
		t.Errorf("disappearance not traced to belief withdrawal:\n%s", tree)
	}
}

func TestCausalForwardQuery(t *testing.T) {
	net := runMinCost(t, nil)
	q := net.NewQuerier(mincost.Factory())
	// What state was derived from b's link to d?
	expl, err := q.Explain("b", mincost.Link("b", "d", 3), core.QueryOpts{
		Direction: core.Effects,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := expl.Format()
	// The link's effects must include b's bestCost and the shipped cost
	// tuple at c.
	for _, want := range []string{
		"DERIVE(b, cost(@b,@d,@d,3), R1",
		"SEND(b, c, +cost(@c,@d,@b,5)",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("effects tree lacks %q\n%s", want, tree)
		}
	}
}

func TestScopeLimit(t *testing.T) {
	net := runMinCost(t, nil)
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{Scope: 2})
	if err != nil {
		t.Fatal(err)
	}
	var truncated int
	expl.Walk(func(e *core.Explanation) {
		if e.Truncated {
			truncated++
		}
	})
	if truncated == 0 {
		t.Error("scope 2 produced no truncation")
	}
	if expl.Size() > 10 {
		t.Errorf("scoped answer has %d vertices, expected a small tree", expl.Size())
	}
}

func TestSuppressionDetected(t *testing.T) {
	// Router b silently drops its +cost advertisement to c (passive
	// evasion). Replay of b's log must produce a red send vertex.
	net := runMinCost(t, func(net *simnet.Net) {
		compromise(t, net, "b", adversary.Suppress(func(m types.Message) bool {
			return m.Dst == "c" && m.Tuple.Rel == "cost"
		}))
	})
	if net.Node("b").DropCount == 0 {
		t.Fatal("fault injection dropped nothing")
	}
	q := net.NewQuerier(mincost.Factory())
	if err := q.EnsureAudited("b", 0); err != nil {
		t.Fatal(err)
	}
	q.Auditor.Finalize()
	var redSends int
	for _, v := range q.Auditor.Graph().RedVertices() {
		if v.Type == provgraph.VSend && v.Host == "b" {
			redSends++
		}
	}
	if redSends == 0 {
		t.Error("suppressed send not flagged red")
	}
}

func TestFabricationDetected(t *testing.T) {
	// Router b fabricates a bogus cheap route to d and advertises it to c;
	// its own log is consistent, but replay with the correct machine shows
	// the send was never derived (completeness, Theorem 6).
	net := runMinCost(t, func(net *simnet.Net) {
		injected := false
		compromise(t, net, "b", adversary.TamperOutputs("forge-cheap-route",
			func(ev types.Event, outs []types.Output) []types.Output {
				if injected || ev.Kind != types.EvIns {
					return outs
				}
				injected = true
				forged := mincost.Cost("c", "d", "b", 1) // bogus: cost 1
				msg := &types.Message{Src: "b", Dst: "c", Pol: types.PolAppear,
					Tuple: forged, SendTime: ev.Time, Seq: 9999}
				return append(outs, types.Output{Kind: types.OutSend, Msg: msg})
			}))
	})
	// c believed the forged route and now reports an absurd bestCost.
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 1), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	faulty := expl.FaultyNodes()
	if len(faulty) != 1 || faulty[0] != "b" {
		t.Errorf("faulty nodes = %v, want [b]\n%s", faulty, expl.Format())
	}
	// The red vertex must be b's send (it has no legitimate provenance).
	found := false
	for _, r := range expl.FindColor(provgraph.Red) {
		if r.Vertex.Type == provgraph.VSend && r.Vertex.Host == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("no red send vertex on b:\n%s", expl.Format())
	}
}

func TestRefusedAuditYieldsYellow(t *testing.T) {
	net := runMinCost(t, func(net *simnet.Net) {
		compromise(t, net, "b", adversary.RefuseAudits())
	})
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	yellows := expl.FindColor(provgraph.Yellow)
	if len(yellows) == 0 {
		t.Fatalf("no yellow vertices although b refuses audits:\n%s", expl.Format())
	}
	for _, y := range yellows {
		if y.Vertex.Host != "b" {
			t.Errorf("yellow vertex on %s, want only b", y.Vertex.Host)
		}
	}
	// Alice can still identify the unresponsive node.
	if len(q.Auditor.Failures()) != 0 {
		t.Errorf("refusal must not create failures (it is not provable): %v", q.Auditor.Failures())
	}
}

func TestLogTamperDetected(t *testing.T) {
	// After the run, b rewrites its history: every retrieved segment has an
	// ins entry doctored. The chain no longer matches the authenticators b
	// has issued, so the audit must fail with evidence against b.
	net := runMinCost(t, nil)
	compromise(t, net, "b", adversary.TamperLog())
	q := net.NewQuerier(mincost.Factory())
	if err := q.EnsureAudited("b", 0); err != nil {
		// The node answered (with a doctored log); the failure is recorded,
		// not returned.
		t.Fatalf("EnsureAudited: %v", err)
	}
	if !q.Auditor.NodeFailed("b") {
		t.Error("tampering not recorded as failure")
	}
	if q.Auditor.Audited("b") {
		t.Error("tampered log counted as audited")
	}
}

func TestTrafficMetering(t *testing.T) {
	net := runMinCost(t, nil)
	tr := net.Traffic
	if tr.Messages == 0 || tr.Envelopes == 0 || tr.Acks == 0 {
		t.Fatalf("no traffic metered: %+v", tr)
	}
	if tr.BaselineBytes <= 0 || tr.AuthBytes <= 0 || tr.AckBytes <= 0 {
		t.Errorf("missing category: %+v", tr)
	}
	if tr.Acks != tr.Envelopes {
		t.Errorf("acks = %d, envelopes = %d (every envelope must be acked)", tr.Acks, tr.Envelopes)
	}
	// SNP traffic must exceed baseline (Figure 5 premise).
	if tr.TotalBytes() <= tr.BaselineBytes {
		t.Error("SNP adds no overhead?")
	}
}

func TestNoMaintainerNotificationsOnCorrectRun(t *testing.T) {
	net := runMinCost(t, nil)
	if n := net.Maintainer.Count(); n != 0 {
		t.Errorf("maintainer notifications on a correct run: %d", n)
	}
}

func TestCheckpointsWritten(t *testing.T) {
	cfg := simnet.DefaultConfig()
	cfg.Core.CheckpointEvery = 10 * types.Second
	net := simnet.New(cfg)
	if err := mincost.Deploy(net, mincost.Figure2Topology, types.Second); err != nil {
		t.Fatal(err)
	}
	net.Run(35 * types.Second)
	stats := net.LogStats()
	if stats.CkptBytes == 0 {
		t.Error("no checkpoint bytes recorded")
	}
	// Replay from the last checkpoint must still answer queries.
	q := net.NewQuerier(mincost.Factory())
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain after checkpointing: %v (failures %v)", err, q.Auditor.Failures())
	}
	if len(expl.FindColor(provgraph.Red)) != 0 {
		t.Errorf("red vertices with checkpoints on a correct run:\n%s", expl.Format())
	}
}
