package simnet_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps/mincost"
	"repro/internal/simnet"
	"repro/internal/types"
)

// auditDigest captures every deterministic observable of auditing all nodes
// of one run: the exact failure sequence, the full vertex set with colors,
// the edge count, and the query metrics.
type auditDigest struct {
	failures string
	vertices string
	edges    int
	metrics  string
}

// digestAudit audits every node of the network, either strictly serially or
// through the parallel prepare/commit pipeline, and digests the outcome.
func digestAudit(t *testing.T, net *simnet.Net, parallel bool) auditDigest {
	t.Helper()
	q := net.NewQuerier(mincost.Factory())
	nodes := net.Nodes()
	if parallel {
		q.Parallelism = 4
		q.BeginAuditScope(nodes, 0)
		defer q.CloseScope()
	}
	for _, n := range nodes {
		_ = q.EnsureAudited(n, 0) // fetch errors surface as yellow nodes
	}
	q.Auditor.Finalize()
	var d auditDigest
	var fails strings.Builder
	for _, f := range q.Auditor.Failures() {
		fails.WriteString(f.String())
		fails.WriteByte('\n')
	}
	d.failures = fails.String()
	var verts strings.Builder
	for _, v := range q.Auditor.Graph().Vertices() {
		verts.WriteString(v.ID())
		verts.WriteByte('=')
		verts.WriteString(v.Color.String())
		verts.WriteByte('\n')
	}
	d.vertices = verts.String()
	d.edges = q.Auditor.Graph().EdgeCount()
	d.metrics = fmt.Sprintf("log=%d auth=%d ckpt=%d contacted=%d micro=%d",
		q.Metrics.LogBytes, q.Metrics.AuthBytes, q.Metrics.CkptBytes,
		q.Metrics.NodesContacted, q.Metrics.Microqueries)
	return d
}

// TestParallelAuditMatchesSerial pins the parallel audit pipeline's
// determinism contract: preparing audits on a worker pool and committing
// them in demand order must produce byte-identical failures, vertices,
// colors, edges, and metrics to a fully sequential audit — on a clean run
// and under each class of injected fault.
func TestParallelAuditMatchesSerial(t *testing.T) {
	scenarios := []struct {
		name   string
		mutate func(*simnet.Net)
	}{
		{"clean", nil},
		{"suppression", func(net *simnet.Net) {
			b := net.Node("b")
			b.DropSend = func(m types.Message) bool {
				return m.Dst == "c" && m.Tuple.Rel == "cost"
			}
		}},
		{"fabrication", func(net *simnet.Net) {
			b := net.Node("b")
			injected := false
			b.Tamper = func(ev types.Event, outs []types.Output) []types.Output {
				if injected || ev.Kind != types.EvIns {
					return outs
				}
				injected = true
				forged := mincost.Cost("c", "d", "b", 1)
				msg := &types.Message{Src: "b", Dst: "c", Pol: types.PolAppear,
					Tuple: forged, SendTime: ev.Time, Seq: 9999}
				return append(outs, types.Output{Kind: types.OutSend, Msg: msg})
			}
		}},
		{"refusal", func(net *simnet.Net) {
			net.Node("b").RefuseAudit = true
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			serial := digestAudit(t, runMinCost(t, sc.mutate), false)
			parallel := digestAudit(t, runMinCost(t, sc.mutate), true)
			if serial.failures != parallel.failures {
				t.Errorf("failure sequences differ:\nserial:\n%s\nparallel:\n%s",
					serial.failures, parallel.failures)
			}
			if serial.vertices != parallel.vertices {
				t.Errorf("vertex sets differ:\nserial:\n%s\nparallel:\n%s",
					serial.vertices, parallel.vertices)
			}
			if serial.edges != parallel.edges {
				t.Errorf("edge counts differ: serial=%d parallel=%d", serial.edges, parallel.edges)
			}
			if serial.metrics != parallel.metrics {
				t.Errorf("metrics differ:\nserial:   %s\nparallel: %s", serial.metrics, parallel.metrics)
			}
			// The fault scenarios must actually produce the signal they
			// inject, or the comparison proves nothing.
			switch sc.name {
			case "suppression", "fabrication":
				if !strings.Contains(parallel.vertices, "=red") {
					t.Error("expected red vertices in faulty scenario")
				}
			case "refusal":
				if !strings.Contains(parallel.vertices, "=yellow") {
					t.Error("expected yellow vertices when a node refuses audits")
				}
			}
		})
	}
}

// TestParallelAuditRevisit checks that committing an already-audited node a
// second time (e.g. a scope node also reached by traversal) is a no-op under
// the pipeline, as it is serially.
func TestParallelAuditRevisit(t *testing.T) {
	net := runMinCost(t, nil)
	q := net.NewQuerier(mincost.Factory())
	q.BeginAuditScope(net.Nodes(), 0)
	defer q.CloseScope()
	for i := 0; i < 2; i++ {
		for _, n := range net.Nodes() {
			if err := q.EnsureAudited(n, 0); err != nil {
				t.Fatalf("EnsureAudited(%s): %v", n, err)
			}
		}
	}
	if got, want := q.Metrics.NodesContacted, len(net.Nodes()); got != want {
		t.Errorf("NodesContacted = %d, want %d (revisits must not refetch)", got, want)
	}
	if err := q.Auditor.Graph().Validate(); err != nil {
		t.Error(err)
	}
}

// BenchmarkProvgraphRebuild times the serial commit half in isolation:
// replaying one audited node into a fresh graph. It is the floor on query
// latency that parallel preparation cannot remove.
func BenchmarkProvgraphRebuild(b *testing.B) {
	cfg := simnet.DefaultConfig()
	net := simnet.New(cfg)
	if err := mincost.Deploy(net, mincost.Figure2Topology, 1*types.Second); err != nil {
		b.Fatal(err)
	}
	net.Run(30 * types.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := net.NewQuerier(mincost.Factory())
		if err := q.EnsureAudited("b", 0); err != nil {
			b.Fatal(err)
		}
		q.Auditor.Finalize()
	}
}
