package simnet_test

import (
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps/mincost"
	"repro/internal/simnet"
	"repro/internal/types"
)

// runDigest captures every deterministic observable of a finished run: the
// full traffic meter (Go formats maps in sorted key order), the log totals,
// the crypto operation counts (minus cache hits, which depend on what
// earlier runs in the same process left in the shared verification cache),
// the maintainer notification count, and — strongest of all — every node's
// log head hash, which commits to that node's entire execution history.
func runDigest(net *simnet.Net) string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic=%+v\n", *net.Traffic)
	fmt.Fprintf(&b, "logstats=%+v\n", net.LogStats())
	cs := net.CryptoStats()
	cs.VerifyCacheHits = 0
	fmt.Fprintf(&b, "crypto=%+v\n", cs)
	fmt.Fprintf(&b, "notified=%d\n", net.Maintainer.Count())
	for _, id := range net.Nodes() {
		fmt.Fprintf(&b, "head[%s]=%s\n", id, hex.EncodeToString(net.Node(id).Log.HeadHash()))
	}
	return b.String()
}

// runMinCostWorkers runs the Figure 2 deployment (including a mid-run
// harness event and a second Run call) under the given worker count.
func runMinCostWorkers(t *testing.T, workers int, seed int64) *simnet.Net {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Workers = workers
	cfg.Seed = seed
	net := simnet.New(cfg)
	if err := mincost.Deploy(net, mincost.Figure2Topology, 1*types.Second); err != nil {
		t.Fatal(err)
	}
	net.At(20*types.Second, func() {
		net.Node("b").DeleteBase(mincost.Link("b", "d", 3))
		net.Node("d").DeleteBase(mincost.Link("d", "b", 3))
	})
	net.Run(15 * types.Second)
	net.Run(30 * types.Second)
	return net
}

// TestShardedSchedulerMatchesSerial pins the tentpole determinism contract:
// the sharded conservative-window scheduler must reproduce the serial
// single-worker reference bit-for-bit — same traffic meters, same log
// contents (head hashes), same crypto counts — for every worker count and
// across seeds.
func TestShardedSchedulerMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runDigest(runMinCostWorkers(t, 1, seed))
			for _, workers := range []int{2, 4, 8} {
				got := runDigest(runMinCostWorkers(t, workers, seed))
				if got != ref {
					t.Errorf("workers=%d diverged from serial reference:\nserial:\n%s\nsharded:\n%s",
						workers, ref, got)
				}
			}
		})
	}
}

// TestShardedQueryAnswersMatchSerial runs the full audit digest (vertex
// sets, colors, edges, metrics) over a serial and a sharded run: the
// reconstructed provenance graph is a pure function of the logs, so it too
// must be identical.
func TestShardedQueryAnswersMatchSerial(t *testing.T) {
	serial := digestAudit(t, runMinCostWorkers(t, 1, 1), false)
	sharded := digestAudit(t, runMinCostWorkers(t, 8, 1), false)
	if serial.vertices != sharded.vertices {
		t.Errorf("vertex sets differ:\nserial:\n%s\nsharded:\n%s", serial.vertices, sharded.vertices)
	}
	if serial.edges != sharded.edges {
		t.Errorf("edge counts differ: serial=%d sharded=%d", serial.edges, sharded.edges)
	}
	if serial.metrics != sharded.metrics {
		t.Errorf("metrics differ:\nserial:   %s\nsharded: %s", serial.metrics, sharded.metrics)
	}
	if serial.failures != sharded.failures {
		t.Errorf("failures differ:\nserial:\n%s\nsharded:\n%s", serial.failures, sharded.failures)
	}
}

// TestPeriodicReschedulesOnFire pins the reschedule-on-fire contract: a
// periodic chain fires at start, start+i·interval strictly below end, keeps
// only one queued event per live chain, and a later Run resumes cleanly.
func TestPeriodicReschedulesOnFire(t *testing.T) {
	cfg := simnet.DefaultConfig()
	cfg.TickEvery = 0 // no node ticks; only the chain under test
	net := simnet.New(cfg)
	var fired []types.Time
	net.Periodic(2*types.Second, 3*types.Second, 14*types.Second, func() {
		fired = append(fired, net.Now())
	})
	net.Run(20 * types.Second)
	want := []types.Time{2 * types.Second, 5 * types.Second, 8 * types.Second, 11 * types.Second}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Errorf("periodic fired at %v, want %v", fired, want)
	}
}
