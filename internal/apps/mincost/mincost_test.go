package mincost

import "testing"

func TestNodesOf(t *testing.T) {
	nodes := NodesOf(Figure2Topology)
	want := []string{"a", "b", "c", "d", "e"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i, n := range nodes {
		if string(n) != want[i] {
			t.Errorf("nodes[%d] = %s, want %s", i, n, want[i])
		}
	}
}

func TestFigure2TopologyCosts(t *testing.T) {
	// The three links Figure 2's example depends on.
	want := map[[2]string]int64{
		{"b", "c"}: 2,
		{"b", "d"}: 3,
		{"c", "d"}: 5,
	}
	for _, e := range Figure2Topology {
		if k, ok := want[[2]string{string(e.A), string(e.B)}]; ok && e.Cost != k {
			t.Errorf("link %s-%s cost %d, want %d", e.A, e.B, e.Cost, k)
		}
	}
}

func TestProgramCompiles(t *testing.T) {
	p := Program()
	if got := len(p.Rules()); got != 3 {
		t.Errorf("rules = %d, want 3 (R1, R2, R3)", got)
	}
}

func TestTupleBuilders(t *testing.T) {
	if Link("a", "b", 1).Key() != "link(@a,@b,1)" {
		t.Error("Link key")
	}
	if Cost("a", "b", "c", 2).Key() != "cost(@a,@b,@c,2)" {
		t.Error("Cost key")
	}
	if BestCost("a", "b", 3).Key() != "bestCost(@a,@b,3)" {
		t.Error("BestCost key")
	}
}
