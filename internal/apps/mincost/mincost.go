// Package mincost implements the paper's running example (§3.3): five
// routers finding lowest-cost paths with the MinCost protocol. It is the
// quickstart application and the source of Figure 2's provenance tree.
//
// Rules (in the paper's notation):
//
//	R1: cost(@X,Y,Y,K)        ← link(@X,Y,K)
//	R2: cost(@C,D,B,K1+K2)    ← link(@B,C,K1) ∧ bestCost(@B,D,K2), C ≠ D
//	R3: bestCost(@X,Y,min K)  ← cost(@X,Y,Z,K)
//
// R2 is evaluated at the neighbor B and its head is shipped to C, exactly
// as Figure 2 shows (DERIVE(b, cost(@c,d,b,5), R2) followed by SEND/RECEIVE
// and BELIEVE vertices at c).
package mincost

import (
	"repro/internal/dlog"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Program compiles the MinCost rule set.
func Program() *dlog.Program {
	p := dlog.NewProgram()
	p.Relation("link", 3, false)
	p.Relation("cost", 4, false)
	p.Relation("bestCost", 3, false)
	p.MustAddRule(dlog.Rule{
		Name: "R1",
		Head: dlog.A("cost", dlog.V("X"), dlog.V("Y"), dlog.V("Y"), dlog.V("K")),
		Body: []dlog.Atom{dlog.A("link", dlog.V("X"), dlog.V("Y"), dlog.V("K"))},
	})
	p.MustAddRule(dlog.Rule{
		Name: "R2",
		Head: dlog.A("cost", dlog.V("C"), dlog.V("D"), dlog.V("B"), dlog.V("K")),
		Body: []dlog.Atom{
			dlog.A("link", dlog.V("B"), dlog.V("C"), dlog.V("K1")),
			dlog.A("bestCost", dlog.V("B"), dlog.V("D"), dlog.V("K2")),
		},
		Assigns: []dlog.Assign{{Var: "K", Fn: "add", Args: []dlog.Term{dlog.V("K1"), dlog.V("K2")}}},
		Conds:   []dlog.Cond{{Fn: "ne", Args: []dlog.Term{dlog.V("C"), dlog.V("D")}}},
	})
	p.MustAddRule(dlog.Rule{
		Name: "R3",
		Head: dlog.A("bestCost", dlog.V("X"), dlog.V("Y"), dlog.V("K")),
		Body: []dlog.Atom{dlog.A("cost", dlog.V("X"), dlog.V("Y"), dlog.V("Z"), dlog.V("K"))},
		Agg:  &dlog.Agg{Fn: dlog.AggMin, Over: "K", GroupBy: []string{"X", "Y"}},
	})
	return p
}

// Link builds a link(@x,y,k) base tuple.
func Link(x, y types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("link", types.N(x), types.N(y), types.I(k))
}

// Cost builds a cost(@x,y,z,k) tuple.
func Cost(x, y, z types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("cost", types.N(x), types.N(y), types.N(z), types.I(k))
}

// BestCost builds a bestCost(@x,y,k) tuple.
func BestCost(x, y types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("bestCost", types.N(x), types.N(y), types.I(k))
}

// Edge is an undirected link with a cost.
type Edge struct {
	A, B types.NodeID
	Cost int64
}

// Figure2Topology is the five-router network of §3.3. The costs on the
// b–c, b–d and c–d links are the ones the paper's example depends on; the
// remaining edges complete the drawing.
var Figure2Topology = []Edge{
	{"a", "b", 6},
	{"a", "e", 1},
	{"b", "c", 2},
	{"b", "d", 3},
	{"c", "d", 5},
	{"c", "e", 5},
	{"d", "e", 10},
	{"a", "c", 3},
}

// NodesOf returns the sorted set of nodes appearing in edges.
func NodesOf(edges []Edge) []types.NodeID {
	seen := map[types.NodeID]bool{}
	for _, e := range edges {
		seen[e.A] = true
		seen[e.B] = true
	}
	var out []types.NodeID
	for n := range seen {
		out = append(out, n)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Deploy creates one SNooPy node per router on net and schedules the
// symmetric link insertions at linkTime (both endpoints know their local
// link costs, §3.3).
func Deploy(net *simnet.Net, edges []Edge, linkTime types.Time) error {
	prog := Program()
	if err := prog.Err(); err != nil {
		return err
	}
	for i, id := range NodesOf(edges) {
		if _, err := net.AddNode(id, int64(i+1), dlog.NewMachine(prog, id)); err != nil {
			return err
		}
	}
	for _, e := range edges {
		e := e
		net.AtNode(e.A, linkTime, func() {
			net.Node(e.A).InsertBase(Link(e.A, e.B, e.Cost))
		})
		net.AtNode(e.B, linkTime, func() {
			net.Node(e.B).InsertBase(Link(e.B, e.A, e.Cost))
		})
	}
	return nil
}

// Factory returns the replay machine factory for MinCost.
func Factory() types.MachineFactory { return dlog.Factory(Program()) }
