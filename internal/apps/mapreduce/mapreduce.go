// Package mapreduce is a miniature MapReduce substrate instrumented with
// *reported* provenance at the level of individual key-value pairs — the
// paper's Hadoop application (§6.2, extraction method #2 of §5.3).
//
// Each map task and each reduce task is a SNooPy node. Input splits arrive
// as base tuples; a mapper emits combined (word, count) pairs per reducer
// partition, reporting each pair's dependency on its split; the shuffle is
// ordinary SNP messaging (so each map→reduce transfer is committed and
// acknowledged); reducers sum the believed pairs per word and report each
// output's dependency on the contributing map outputs.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/wire"
)

// Tuple shapes:
//
//	split(@map-i, splitID, text)            base input (the paper logs file
//	                                        hashes; we carry the text so
//	                                        replay is self-contained)
//	mapOut(@red-j, mapID, word, count)      combined intermediate pair
//	reduceGo(@red-j)                        driver signal: all maps done
//	out(@red-j, word, total)                final output pair

// Split builds an input split tuple.
func Split(mapper types.NodeID, id int64, text string) types.Tuple {
	return types.MakeTuple("split", types.N(mapper), types.I(id), types.S(text))
}

// MapOut builds an intermediate tuple.
func MapOut(reducer, mapper types.NodeID, word string, count int64) types.Tuple {
	return types.MakeTuple("mapOut", types.N(reducer), types.N(mapper), types.S(word), types.I(count))
}

// Out builds an output tuple.
func Out(reducer types.NodeID, word string, total int64) types.Tuple {
	return types.MakeTuple("out", types.N(reducer), types.S(word), types.I(total))
}

// Role distinguishes mapper and reducer machines.
type Role uint8

// Roles.
const (
	Mapper Role = iota
	Reducer
)

// Machine is the deterministic state machine for one MapReduce worker. It
// implements types.Machine and types.StateDumper.
type Machine struct {
	self     types.NodeID
	role     Role
	reducers []types.NodeID

	seqs map[types.NodeID]uint64
	now  types.Time

	// Mapper state: processed split IDs (map function is pure; outputs are
	// derived from splits and never retracted).
	splits map[int64]string
	// Reducer state: believed intermediate tuples with origins/times, plus
	// produced outputs.
	believed map[string]believedPair
	outputs  map[string]int64 // word -> total (after reduceGo)
	reduced  bool
}

type believedPair struct {
	tuple  types.Tuple
	origin types.NodeID
	since  types.Time
}

// NewMachine creates a worker machine. reducers lists the reducer node IDs
// (the partitioning table).
func NewMachine(self types.NodeID, role Role, reducers []types.NodeID) *Machine {
	return &Machine{
		self:     self,
		role:     role,
		reducers: append([]types.NodeID(nil), reducers...),
		seqs:     make(map[types.NodeID]uint64),
		splits:   make(map[int64]string),
		believed: make(map[string]believedPair),
		outputs:  make(map[string]int64),
	}
}

// Factory returns a replay factory; roles are inferred from node names
// ("map-*" / "red-*").
func Factory(reducers []types.NodeID) types.MachineFactory {
	return func(self types.NodeID) types.Machine {
		role := Mapper
		if strings.HasPrefix(string(self), "red-") {
			role = Reducer
		}
		return NewMachine(self, role, reducers)
	}
}

// Partition assigns a word to a reducer.
func Partition(word string, reducers []types.NodeID) types.NodeID {
	h := fnv.New32a()
	h.Write([]byte(word))
	return reducers[int(h.Sum32())%len(reducers)]
}

// WordCount tokenizes text into lowercase words.
func WordCount(text string) map[string]int64 {
	counts := make(map[string]int64)
	for _, w := range strings.Fields(text) {
		w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()[]"))
		if w != "" {
			counts[w]++
		}
	}
	return counts
}

// Step implements types.Machine.
func (m *Machine) Step(ev types.Event) []types.Output {
	m.now = ev.Time
	var outs []types.Output
	switch {
	case ev.Kind == types.EvIns && ev.Tuple.Rel == "split" && m.role == Mapper:
		outs = m.runMap(ev.Tuple)
	case ev.Kind == types.EvIns && ev.Tuple.Rel == "reduceGo" && m.role == Reducer:
		outs = m.runReduce()
	case ev.Kind == types.EvRcv && ev.Msg.Tuple.Rel == "mapOut" && m.role == Reducer:
		msg := ev.Msg
		if msg.Pol == types.PolAppear {
			m.believed[msg.Tuple.Key()] = believedPair{tuple: msg.Tuple, origin: msg.Src, since: ev.Time}
		} else if msg.Pol == types.PolDisappear {
			delete(m.believed, msg.Tuple.Key())
		}
	}
	return outs
}

// runMap executes the map task on one split: word counts are combined
// locally (the combiner), partitioned, and shipped. Every intermediate pair
// reports its provenance: rule "map" with the split as body.
func (m *Machine) runMap(split types.Tuple) []types.Output {
	id, text := split.Args[1].Int, split.Args[2].Str
	if _, dup := m.splits[id]; dup {
		return nil
	}
	m.splits[id] = text
	counts := WordCount(text)
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	var outs []types.Output
	for _, w := range words {
		reducer := Partition(w, m.reducers)
		pair := MapOut(reducer, m.self, w, counts[w])
		outs = append(outs, types.Output{Kind: types.OutDerive, Tuple: pair,
			Rule: "map", Body: []types.Tuple{split}, First: true})
		m.seqs[reducer]++
		outs = append(outs, types.Output{Kind: types.OutSend, Msg: &types.Message{
			Src: m.self, Dst: reducer, Pol: types.PolAppear, Tuple: pair,
			SendTime: m.now, Seq: m.seqs[reducer],
		}})
	}
	return outs
}

// runReduce sums believed pairs per word, reporting each output's
// provenance: rule "reduce" with the contributing pairs as body.
func (m *Machine) runReduce() []types.Output {
	if m.reduced {
		return nil
	}
	m.reduced = true
	byWord := map[string][]believedPair{}
	keys := make([]string, 0, len(m.believed))
	for k := range m.believed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := m.believed[k]
		w := p.tuple.Args[2].Str
		byWord[w] = append(byWord[w], p)
	}
	words := make([]string, 0, len(byWord))
	for w := range byWord {
		words = append(words, w)
	}
	sort.Strings(words)
	var outs []types.Output
	for _, w := range words {
		var total int64
		var body []types.Tuple
		for _, p := range byWord[w] {
			total += p.tuple.Args[3].Int
			body = append(body, p.tuple)
		}
		m.outputs[w] = total
		outs = append(outs, types.Output{Kind: types.OutDerive, Tuple: Out(m.self, w, total),
			Rule: "reduce", Body: body, First: true})
	}
	return outs
}

// Outputs returns the reducer's results (word -> total).
func (m *Machine) Outputs() map[string]int64 {
	out := make(map[string]int64, len(m.outputs))
	for w, c := range m.outputs {
		out[w] = c
	}
	return out
}

// Snapshot implements types.Machine.
func (m *Machine) Snapshot() []byte {
	w := wire.NewWriter(1024)
	ids := make([]int64, 0, len(m.splits))
	for id := range m.splits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uint(uint64(len(ids)))
	for _, id := range ids {
		w.Int(id)
		w.String(m.splits[id])
	}
	keys := make([]string, 0, len(m.believed))
	for k := range m.believed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uint(uint64(len(keys)))
	for _, k := range keys {
		p := m.believed[k]
		p.tuple.MarshalWire(w)
		w.String(string(p.origin))
		w.Int(int64(p.since))
	}
	words := make([]string, 0, len(m.outputs))
	for word := range m.outputs {
		words = append(words, word)
	}
	sort.Strings(words)
	w.Uint(uint64(len(words)))
	for _, word := range words {
		w.String(word)
		w.Int(m.outputs[word])
	}
	w.Bool(m.reduced)
	dsts := make([]string, 0, len(m.seqs))
	for d := range m.seqs {
		dsts = append(dsts, string(d))
	}
	sort.Strings(dsts)
	w.Uint(uint64(len(dsts)))
	for _, d := range dsts {
		w.String(d)
		w.Uint(m.seqs[types.NodeID(d)])
	}
	return w.Bytes()
}

// Restore implements types.Machine.
func (m *Machine) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	m.splits = make(map[int64]string)
	m.believed = make(map[string]believedPair)
	m.outputs = make(map[string]int64)
	m.seqs = make(map[types.NodeID]uint64)
	n := r.Uint()
	for i := uint64(0); i < n; i++ {
		id := r.Int()
		m.splits[id] = r.String()
	}
	n = r.Uint()
	for i := uint64(0); i < n; i++ {
		var p believedPair
		if err := p.tuple.UnmarshalWire(r); err != nil {
			return err
		}
		p.origin = types.NodeID(r.String())
		p.since = types.Time(r.Int())
		m.believed[p.tuple.Key()] = p
	}
	n = r.Uint()
	for i := uint64(0); i < n; i++ {
		word := r.String()
		m.outputs[word] = r.Int()
	}
	m.reduced = r.Bool()
	n = r.Uint()
	for i := uint64(0); i < n; i++ {
		d := r.String()
		m.seqs[types.NodeID(d)] = r.Uint()
	}
	return r.Finish()
}

// DumpExtants implements types.StateDumper.
func (m *Machine) DumpExtants() []types.ExtantTuple {
	var out []types.ExtantTuple
	ids := make([]int64, 0, len(m.splits))
	for id := range m.splits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = append(out, types.ExtantTuple{Tuple: Split(m.self, id, m.splits[id]), Local: true})
	}
	keys := make([]string, 0, len(m.believed))
	for k := range m.believed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := m.believed[k]
		out = append(out, types.ExtantTuple{Tuple: p.tuple,
			Believed: []types.Belief{{Origin: p.origin, Since: p.since}}})
	}
	words := make([]string, 0, len(m.outputs))
	for w := range m.outputs {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		out = append(out, types.ExtantTuple{Tuple: Out(m.self, w, m.outputs[w]), Local: true})
	}
	return out
}

// ---------------------------------------------------------------------------
// Job deployment.

// MapperName / ReducerName name the workers.
func MapperName(i int) types.NodeID  { return types.NodeID(fmt.Sprintf("map-%03d", i)) }
func ReducerName(i int) types.NodeID { return types.NodeID(fmt.Sprintf("red-%03d", i)) }

// Job describes a WordCount run.
type Job struct {
	Mappers  int
	Reducers int
	Splits   []string // one input split per mapper round-robin
	// ShuffleAt is when the driver starts feeding splits; ReduceAt is when
	// reducers are told all map output has arrived.
	StartAt  types.Time
	ReduceAt types.Time
}

// Deployment is a running job.
type Deployment struct {
	Net      *simnet.Net
	Mappers  []types.NodeID
	Reducers []types.NodeID
}

// Deploy creates the workers and schedules the job.
func Deploy(net *simnet.Net, job Job) (*Deployment, error) {
	d := &Deployment{Net: net}
	for j := 0; j < job.Reducers; j++ {
		d.Reducers = append(d.Reducers, ReducerName(j))
	}
	for i := 0; i < job.Mappers; i++ {
		name := MapperName(i)
		d.Mappers = append(d.Mappers, name)
		if _, err := net.AddNode(name, int64(2000+i), NewMachine(name, Mapper, d.Reducers)); err != nil {
			return nil, err
		}
	}
	for j := 0; j < job.Reducers; j++ {
		name := d.Reducers[j]
		if _, err := net.AddNode(name, int64(3000+j), NewMachine(name, Reducer, d.Reducers)); err != nil {
			return nil, err
		}
	}
	for si, text := range job.Splits {
		si, text := si, text
		mapper := d.Mappers[si%len(d.Mappers)]
		net.AtNode(mapper, job.StartAt+types.Time(si)*10*types.Millisecond, func() {
			net.Node(mapper).InsertBase(Split(mapper, int64(si), text))
		})
	}
	for _, r := range d.Reducers {
		r := r
		net.AtNode(r, job.ReduceAt, func() {
			net.Node(r).InsertBase(types.MakeTuple("reduceGo", types.N(r)))
		})
	}
	return d, nil
}

// Factory returns the replay machine factory for this deployment.
func (d *Deployment) Factory() types.MachineFactory { return Factory(d.Reducers) }

// OutputOwner returns the reducer responsible for a word.
func (d *Deployment) OutputOwner(word string) types.NodeID {
	return Partition(word, d.Reducers)
}
