package mapreduce_test

import (
	"strings"
	"testing"

	"repro/internal/apps/mapreduce"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
)

func runJob(t *testing.T, splits []string, mutate func(*simnet.Net, *mapreduce.Deployment)) (*simnet.Net, *mapreduce.Deployment) {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Core.CheckpointEvery = 0
	cfg.Core.Tbatch = 100 * types.Millisecond // one envelope per map/reduce pair
	net := simnet.New(cfg)
	d, err := mapreduce.Deploy(net, mapreduce.Job{
		Mappers:  4,
		Reducers: 2,
		Splits:   splits,
		StartAt:  types.Second,
		ReduceAt: 20 * types.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(net, d)
	}
	net.Run(30 * types.Second)
	return net, d
}

func outputsOf(net *simnet.Net, d *mapreduce.Deployment) map[string]int64 {
	total := map[string]int64{}
	for _, r := range d.Reducers {
		m := net.Node(r).Machine.(*mapreduce.Machine)
		for w, c := range m.Outputs() {
			total[w] += c
		}
	}
	return total
}

func TestWordCountCorrect(t *testing.T) {
	net, d := runJob(t, []string{
		"the quick brown fox",
		"the lazy dog and the fox",
		"squirrel in the park",
		"a squirrel and a fox",
	}, nil)
	got := outputsOf(net, d)
	want := map[string]int64{"the": 4, "fox": 3, "squirrel": 2, "a": 2, "and": 2}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count(%s) = %d, want %d", w, got[w], c)
		}
	}
}

func TestOutputProvenance(t *testing.T) {
	net, d := runJob(t, []string{
		"squirrel squirrel",
		"one squirrel here",
	}, nil)
	owner := d.OutputOwner("squirrel")
	q := net.NewQuerier(d.Factory())
	expl, err := q.Explain(owner, mapreduce.Out(owner, "squirrel", 3), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v (failures %v)", err, q.Auditor.Failures())
	}
	tree := expl.Format()
	// The output must trace to believed intermediate pairs and, through the
	// shuffle, to the mappers' splits.
	for _, want := range []string{
		"DERIVE(" + string(owner) + ", out(@" + string(owner) + ",squirrel,3), reduce",
		"mapOut(",
		"RECEIVE(",
		"SEND(map-",
		"INSERT(map-",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree lacks %q:\n%s", want, tree)
		}
	}
	if len(expl.FindColor(provgraph.Red)) != 0 {
		t.Errorf("red vertices on a correct job:\n%s", tree)
	}
}

// TestCorruptMapperDetected reproduces §7.3's Hadoop scenario (Figure 4): a
// tampered map worker inflates the count for one word; the output's
// provenance exposes the forged intermediate pair as red.
func TestCorruptMapperDetected(t *testing.T) {
	badMapper := mapreduce.MapperName(1)
	const forgedCount = 9993
	net, d := runJob(t, []string{
		"squirrel in the park",   // map-000
		"nothing to see here",    // map-001 (the corrupt one)
		"a squirrel and a fox",   // map-002
		"the dog chased the fox", // map-003
	}, func(net *simnet.Net, d *mapreduce.Deployment) {
		bad := net.Node(badMapper)
		reducer := d.OutputOwner("squirrel")
		injected := false
		bad.Tamper = func(ev types.Event, outs []types.Output) []types.Output {
			if injected || ev.Kind != types.EvIns || ev.Tuple.Rel != "split" {
				return outs
			}
			injected = true
			forged := mapreduce.MapOut(reducer, badMapper, "squirrel", forgedCount)
			return append(outs, types.Output{Kind: types.OutSend, Msg: &types.Message{
				Src: badMapper, Dst: reducer, Pol: types.PolAppear, Tuple: forged,
				SendTime: ev.Time, Seq: 7777,
			}})
		}
	})
	owner := d.OutputOwner("squirrel")
	got := outputsOf(net, d)
	if got["squirrel"] != forgedCount+2 {
		t.Fatalf("squirrel count = %d, want %d", got["squirrel"], forgedCount+2)
	}
	// The analyst queries the suspicious output (Figure 4).
	q := net.NewQuerier(d.Factory())
	expl, err := q.Explain(owner, mapreduce.Out(owner, "squirrel", forgedCount+2), core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	faulty := expl.FaultyNodes()
	found := false
	for _, f := range faulty {
		if f == badMapper {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt mapper not identified; faulty = %v\n%s", faulty, expl.Format())
	}
	// The red vertex is the forged send from the corrupt mapper.
	redSend := false
	for _, r := range expl.FindColor(provgraph.Red) {
		if r.Vertex.Type == provgraph.VSend && r.Vertex.Host == badMapper {
			redSend = true
		}
	}
	if !redSend {
		t.Errorf("no red send on %s:\n%s", badMapper, expl.Format())
	}
}

func TestMachineSnapshotRoundTrip(t *testing.T) {
	reducers := []types.NodeID{"red-000", "red-001"}
	m := mapreduce.NewMachine("map-000", mapreduce.Mapper, reducers)
	m.Step(types.Event{Kind: types.EvIns, Node: "map-000", Time: 1,
		Tuple: mapreduce.Split("map-000", 0, "hello world hello")})
	snap := m.Snapshot()
	m2 := mapreduce.NewMachine("map-000", mapreduce.Mapper, reducers)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if string(m2.Snapshot()) != string(snap) {
		t.Error("snapshot not a fixed point")
	}
	// A duplicate split must be ignored by both.
	o1 := m.Step(types.Event{Kind: types.EvIns, Node: "map-000", Time: 2,
		Tuple: mapreduce.Split("map-000", 0, "hello world hello")})
	if len(o1) != 0 {
		t.Error("duplicate split re-processed")
	}
}

func TestPartitionStable(t *testing.T) {
	reducers := []types.NodeID{"red-000", "red-001", "red-002"}
	for _, w := range []string{"squirrel", "fox", "the"} {
		if mapreduce.Partition(w, reducers) != mapreduce.Partition(w, reducers) {
			t.Errorf("partition of %q unstable", w)
		}
	}
}

func TestWordCountTokenizer(t *testing.T) {
	counts := mapreduce.WordCount("The fox, the FOX; (fox)!")
	if counts["fox"] != 3 || counts["the"] != 2 {
		t.Errorf("counts = %v", counts)
	}
}
