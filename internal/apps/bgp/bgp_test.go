package bgp_test

import (
	"strings"
	"testing"

	"repro/internal/apps/bgp"
	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
)

func newNet() *simnet.Net {
	cfg := simnet.DefaultConfig()
	cfg.Core.CheckpointEvery = 0
	return simnet.New(cfg)
}

func TestValidateExport(t *testing.T) {
	origin := bgp.Origin("as1", "p1")
	imported := bgp.AdvRoute("as1", "p1", "as2 as0", "as2")
	cases := []struct {
		name string
		head types.Tuple
		body []types.Tuple
		want bool
	}{
		{"origin ok", bgp.AdvRoute("as2", "p1", "as1", "as1"), []types.Tuple{origin}, true},
		{"extension ok", bgp.AdvRoute("as3", "p1", "as1 as2 as0", "as1"), []types.Tuple{imported}, true},
		{"forged shorter path", bgp.AdvRoute("as3", "p1", "as1 as0", "as1"), []types.Tuple{imported}, false},
		{"hijack without origin", bgp.AdvRoute("as3", "p1", "as1", "as1"), []types.Tuple{imported}, false},
		{"wrong prefix", bgp.AdvRoute("as3", "p2", "as1 as2 as0", "as1"), []types.Tuple{imported}, false},
		{"speaks for another", bgp.AdvRoute("as3", "p1", "as9 as2 as0", "as9"), []types.Tuple{imported}, false},
		{"no body", bgp.AdvRoute("as3", "p1", "as1 as2 as0", "as1"), nil, false},
	}
	for _, c := range cases {
		if got := bgp.ValidateExport(bgp.ExportRule, "as1", c.head, c.body); got != c.want {
			t.Errorf("%s: ValidateExport = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRoutesPropagate(t *testing.T) {
	net := newNet()
	d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, 2*types.Minute)
	if err != nil {
		t.Fatal(err)
	}
	net.At(5*types.Second, func() {
		d.Speakers["as51"].Announce(net.Node("as51"), "10.0.0.0/24")
	})
	net.Run(2 * types.Minute)
	// Every other network must know a route to the prefix.
	for _, n := range d.Names {
		if n == "as51" {
			continue
		}
		m := net.Node(n).Machine.(*dlog.Machine)
		found := false
		for _, tup := range m.TuplesOf("advRoute") {
			if tup.Args[1].Str == "10.0.0.0/24" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no route to the prefix", n)
		}
	}
}

func TestRouteProvenanceClean(t *testing.T) {
	net := newNet()
	d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, 2*types.Minute)
	if err != nil {
		t.Fatal(err)
	}
	net.At(5*types.Second, func() {
		d.Speakers["as51"].Announce(net.Node("as51"), "10.0.0.0/24")
	})
	net.Run(2 * types.Minute)
	// Find as52's believed route and explain it.
	m := net.Node("as52").Machine.(*dlog.Machine)
	var route types.Tuple
	for _, tup := range m.TuplesOf("advRoute") {
		if tup.Args[1].Str == "10.0.0.0/24" {
			route = tup
		}
	}
	if route.Rel == "" {
		t.Fatal("as52 has no route")
	}
	q := d.NewQuerier()
	expl, err := q.Explain("as52", route, core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v (failures %v)", err, q.Auditor.Failures())
	}
	tree := expl.Format()
	// The chain must reach the true origin.
	if !strings.Contains(tree, "INSERT(as51, origin(@as51,10.0.0.0/24)") {
		t.Errorf("provenance does not reach the origin:\n%s", tree)
	}
	if len(expl.FindColor(provgraph.Red)) != 0 {
		t.Errorf("red vertices on a correct run:\n%s", tree)
	}
}

// TestQuaggaDisappear reproduces the §7.2 Quagga-Disappear query: a route
// visible at a stub disappears because its upstream switched to an
// alternative that its export policy filters out.
func TestQuaggaDisappear(t *testing.T) {
	net := newNet()
	d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, 5*types.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// as30 (r1) policy: never export routes that traverse the tier-1 as10,
	// and (mis)prefer routes via as10 when they exist.
	r1 := d.Speakers["as30"]
	r1.ExportFilter = func(to types.NodeID, prefix, path string) bool {
		return strings.Contains(path, "as10")
	}
	// Pin the tier-1's choice to the as40 route so that it actually offers
	// as30 an alternative (its default pick would go via as30 itself and
	// be withheld by poison reverse).
	d.Speakers["as10"].PreferVia("as40")
	net.At(5*types.Second, func() {
		d.Speakers["as51"].Announce(net.Node("as51"), "10.0.0.0/24")
	})
	// At t=60s, flip r1's preference to routes via as10 (simulating a
	// traffic-engineering change); the direct customer route is replaced by
	// one the export filter suppresses, so as52 loses its route.
	net.At(60*types.Second, func() {
		r1.PreferVia("as10")
	})
	net.Run(5 * types.Minute)

	m := net.Node("as52").Machine.(*dlog.Machine)
	for _, tup := range m.TuplesOf("advRoute") {
		if tup.Args[1].Str == "10.0.0.0/24" {
			t.Fatalf("as52 still has a route: %v", tup)
		}
	}
	// Dynamic query: why did the route disappear?
	gone := bgp.AdvRoute("as52", "10.0.0.0/24", "as30 as51", "as30")
	q := d.NewQuerier()
	expl, err := q.Explain("as52", gone, core.QueryOpts{Mode: core.ModeDisappear})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	tree := expl.Format()
	// The disappearance must trace through r1's withdrawal.
	if !strings.Contains(tree, "UNDERIVE(as30") && !strings.Contains(tree, "DISAPPEAR(as30") {
		t.Errorf("disappearance not traced to as30:\n%s", tree)
	}
	// Benign misconfiguration: nothing red.
	if len(expl.FindColor(provgraph.Red)) != 0 {
		t.Errorf("red vertices in a benign scenario:\n%s", tree)
	}
}

// TestBadGadget builds the classic BadGadget instance (Griffin et al.): a
// persistently oscillating policy configuration. All nodes are correct, so
// the fluttering route's provenance must be red-free while the oscillation
// itself is visible as repeated appear/disappear pairs (§7.2's
// Quagga-BadGadget query).
func TestBadGadget(t *testing.T) {
	net := newNet()
	links := []bgp.ASLink{
		{A: "as1", B: "as0", RelAB: bgp.Sibling},
		{A: "as2", B: "as0", RelAB: bgp.Sibling},
		{A: "as3", B: "as0", RelAB: bgp.Sibling},
		{A: "as1", B: "as2", RelAB: bgp.Sibling},
		{A: "as2", B: "as3", RelAB: bgp.Sibling},
		{A: "as3", B: "as1", RelAB: bgp.Sibling},
	}
	d, err := bgp.Deploy(net, links, types.Second, 2*types.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Each gadget node prefers the route through its clockwise neighbor
	// over its direct route to as0.
	d.Speakers["as1"].PreferVia("as2")
	d.Speakers["as2"].PreferVia("as3")
	d.Speakers["as3"].PreferVia("as1")
	net.At(2*types.Second, func() {
		d.Speakers["as0"].Announce(net.Node("as0"), "10.9.9.0/24")
	})
	net.Run(2 * types.Minute)

	// The gadget must oscillate: some node's export to as0's prefix keeps
	// being replaced. Count appear vertices for as1's route at as0... any
	// fluttering advRoute tuple will do.
	q := d.NewQuerier()
	if err := q.EnsureAudited("as1", 0); err != nil {
		t.Fatal(err)
	}
	q.Auditor.Finalize()
	g := q.Auditor.Graph()
	flutters := 0
	for _, v := range g.ByHost("as1") {
		if v.Type == provgraph.VAppear && v.Tuple.Rel == "advRoute" {
			flutters++
		}
	}
	if flutters < 6 {
		t.Errorf("expected a fluttering route on as1, saw %d appearances", flutters)
	}
	if len(q.Auditor.Failures()) != 0 {
		t.Errorf("failures in an all-correct gadget: %v", q.Auditor.Failures())
	}
	for _, v := range g.RedVertices() {
		t.Errorf("red vertex in an all-correct gadget: %s", v)
	}
}

// TestRouteHijackDetected has a compromised network announce a prefix it
// neither originates nor learned — S-BGP-style origin misbehavior that the
// maybe-rule validation exposes (§6.3).
func TestRouteHijackDetected(t *testing.T) {
	net := newNet()
	d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, 2*types.Minute)
	if err != nil {
		t.Fatal(err)
	}
	net.At(5*types.Second, func() {
		d.Speakers["as51"].Announce(net.Node("as51"), "10.0.0.0/24")
	})
	// as61 hijacks the prefix at t=30s: it fires the export maybe rule with
	// a fabricated body (claiming an import that does not exist).
	net.At(30*types.Second, func() {
		bogusBody := bgp.AdvRoute("as61", "10.0.0.0/24", "as99", "as99")
		net.Node("as61").InsertMaybe(bgp.ExportRule,
			bgp.AdvRoute("as40", "10.0.0.0/24", "as61 as99", "as61"),
			[]types.Tuple{bogusBody}, nil)
	})
	net.Run(2 * types.Minute)

	// The upstream as40 believed the hijacked route; its provenance must
	// show red on as61.
	hijacked := bgp.AdvRoute("as40", "10.0.0.0/24", "as61 as99", "as61")
	q := d.NewQuerier()
	expl, err := q.Explain("as40", hijacked, core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	faulty := expl.FaultyNodes()
	found := false
	for _, f := range faulty {
		if f == "as61" {
			found = true
		}
	}
	if !found {
		t.Errorf("hijacker not identified; faulty = %v\n%s", faulty, expl.Format())
	}
}
