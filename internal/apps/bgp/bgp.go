// Package bgp reproduces the paper's Quagga application (§6.3): a BGP
// speaker treated as a *black box*, wrapped by a small SNooPy proxy that
// converts BGP announcements into tuples using an external specification
// (extraction method #3 of §5.3). The specification mirrors the paper's
// four rules:
//
//  1. announcements propagate between networks (advRoute tuples are shipped
//     to the neighbor and believed there);
//  2. + 3. a network exports at most one route per prefix to each neighbor
//     at a time (enforced with §3.4 replacement constraints);
//  4. a 'maybe' rule: every exported route either originates locally or
//     extends a route previously advertised to the network — the speaker's
//     actual decision process (its policy) stays confidential.
//
// The speaker implements a standard BGP decision process with
// Gao–Rexford-style export policies, plus per-node preference overrides
// used to build BadGadget instances (§7.2) and export filters used for the
// Quagga-Disappear scenario.
package bgp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Rel classifies a neighbor relationship (Gao–Rexford).
type Rel uint8

// Neighbor relationships, from the exporter's point of view. Sibling is a
// mutual-transit relationship (both sides export everything); it is used to
// instantiate policy gadgets such as BadGadget.
const (
	Customer Rel = iota // neighbor pays us
	Peer
	Provider // we pay the neighbor
	Sibling
)

// ExportRule is the name of the proxy's maybe rule.
const ExportRule = "export"

// Program declares the proxy's relations: no derivation rules — the
// computation is the black-box speaker; the dlog machine only stores,
// ships, and believes tuples.
func Program() *dlog.Program {
	p := dlog.NewProgram()
	p.Relation("origin", 2, false)   // origin(@N, Prefix)
	p.Relation("advRoute", 4, false) // advRoute(@To, Prefix, Path, From)
	return p
}

// AdvRoute builds an advRoute(@to, prefix, path, from) tuple. Path is a
// space-separated AS list, most recent first.
func AdvRoute(to types.NodeID, prefix, path string, from types.NodeID) types.Tuple {
	return types.MakeTuple("advRoute", types.N(to), types.S(prefix), types.S(path), types.N(from))
}

// Origin builds an origin(@n, prefix) base tuple.
func Origin(n types.NodeID, prefix string) types.Tuple {
	return types.MakeTuple("origin", types.N(n), types.S(prefix))
}

// ValidateExport is the auditor-side check for the proxy's maybe rule
// (rule 4): the head path must either be exactly the exporter (with a local
// origin tuple as body) or the exporter prepended to a path some neighbor
// previously advertised (with that import as body). It also rejects paths
// that loop through the exporter.
func ValidateExport(rule string, host types.NodeID, head types.Tuple, body []types.Tuple) bool {
	if rule != ExportRule {
		return true
	}
	if head.Rel != "advRoute" || len(head.Args) != 4 || len(body) != 1 {
		return false
	}
	prefix, path := head.Args[1].Str, head.Args[2].Str
	if head.Args[3].Node() != host {
		return false // an exporter can only speak for itself
	}
	b := body[0]
	switch b.Rel {
	case "origin":
		return b.Args[0].Node() == host && b.Args[1].Str == prefix && path == string(host)
	case "advRoute":
		if b.Args[0].Node() != host || b.Args[1].Str != prefix {
			return false
		}
		imported := b.Args[2].Str
		if path != string(host)+" "+imported {
			return false
		}
		// Loop check: the exporter must not already be on the path.
		for _, hop := range strings.Fields(imported) {
			if hop == string(host) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// route is one candidate in the speaker's RIB.
type route struct {
	path string
	from types.NodeID
	rel  Rel
}

// Speaker is the black-box BGP daemon for one network: it keeps a RIB of
// imported routes, runs a decision process, and exports per policy. It is
// driven by Sync, which diffs desired exports against the proxy state and
// issues maybe-rule firings on the SNooPy node.
type Speaker struct {
	Self      types.NodeID
	Neighbors map[types.NodeID]Rel
	// Prefer, when non-nil, ranks two candidate routes (return true when a
	// beats b); used to configure BadGadget-style policies. The default
	// prefers customer routes, then shorter paths, then lower neighbor.
	Prefer func(prefix string, a, b route) bool
	// ExportFilter, when non-nil, suppresses an export (used by the
	// Quagga-Disappear scenario).
	ExportFilter func(to types.NodeID, prefix, path string) bool

	origins map[string]bool
	rib     map[string]map[types.NodeID]route // prefix -> from -> route
	exports map[types.NodeID]map[string]exported
}

type exported struct {
	path string
	body types.Tuple
}

// NewSpeaker creates a speaker for self with the given neighbor relations.
func NewSpeaker(self types.NodeID, neighbors map[types.NodeID]Rel) *Speaker {
	return &Speaker{
		Self:      self,
		Neighbors: neighbors,
		origins:   make(map[string]bool),
		rib:       make(map[string]map[types.NodeID]route),
		exports:   make(map[types.NodeID]map[string]exported),
	}
}

// Announce originates a prefix (a RouteViews-style announce update).
func (s *Speaker) Announce(node *core.Node, prefix string) {
	if s.origins[prefix] {
		return
	}
	s.origins[prefix] = true
	node.InsertBase(Origin(s.Self, prefix))
	s.Sync(node)
}

// Withdraw retracts a locally originated prefix.
func (s *Speaker) Withdraw(node *core.Node, prefix string) {
	if !s.origins[prefix] {
		return
	}
	delete(s.origins, prefix)
	node.DeleteBase(Origin(s.Self, prefix))
	s.Sync(node)
}

// Sync reads the proxy state (believed imports) from the node's machine,
// runs the decision process, and reconciles exports through maybe-rule
// firings. The harness calls it after updates are delivered.
func (s *Speaker) Sync(node *core.Node) {
	m := node.Machine.(*dlog.Machine)
	// Rebuild the RIB from believed advRoute tuples.
	s.rib = make(map[string]map[types.NodeID]route)
	for _, t := range m.TuplesOf("advRoute") {
		prefix, path, from := t.Args[1].Str, t.Args[2].Str, t.Args[3].Node()
		rel, ok := s.Neighbors[from]
		if !ok {
			continue // ignore strangers
		}
		if s.loops(path) {
			continue // loop prevention on import
		}
		if s.rib[prefix] == nil {
			s.rib[prefix] = make(map[types.NodeID]route)
		}
		s.rib[prefix][from] = route{path: path, from: from, rel: rel}
	}
	// Decide best route per prefix and compute desired exports.
	desired := make(map[types.NodeID]map[string]exported)
	prefixes := map[string]bool{}
	for p := range s.origins {
		prefixes[p] = true
	}
	for p := range s.rib {
		prefixes[p] = true
	}
	sortedPrefixes := make([]string, 0, len(prefixes))
	for p := range prefixes {
		sortedPrefixes = append(sortedPrefixes, p)
	}
	sort.Strings(sortedPrefixes)
	for _, prefix := range sortedPrefixes {
		var bestPath string
		var bestBody types.Tuple
		var exportable bool // Gao–Rexford: only customer routes go to non-customers
		if s.origins[prefix] {
			bestPath = string(s.Self)
			bestBody = Origin(s.Self, prefix)
			exportable = true
		} else {
			best, ok := s.best(prefix)
			if !ok {
				continue
			}
			bestPath = string(s.Self) + " " + best.path
			bestBody = AdvRoute(s.Self, prefix, best.path, best.from)
			exportable = best.rel == Customer || best.rel == Sibling
		}
		for nbr, rel := range s.Neighbors {
			if !exportable && rel != Customer {
				continue // valley-free export policy
			}
			if onPath(bestPath, nbr) {
				continue // poison reverse: don't offer a route through them
			}
			if s.ExportFilter != nil && s.ExportFilter(nbr, prefix, bestPath) {
				continue
			}
			if desired[nbr] == nil {
				desired[nbr] = make(map[string]exported)
			}
			desired[nbr][prefix] = exported{path: bestPath, body: bestBody}
		}
	}
	// Reconcile: withdrawals first, then announcements/replacements.
	nbrs := make([]string, 0, len(s.Neighbors))
	for n := range s.Neighbors {
		nbrs = append(nbrs, string(n))
	}
	sort.Strings(nbrs)
	for _, ns := range nbrs {
		nbr := types.NodeID(ns)
		cur := s.exports[nbr]
		want := desired[nbr]
		curPrefixes := make([]string, 0, len(cur))
		for p := range cur {
			curPrefixes = append(curPrefixes, p)
		}
		sort.Strings(curPrefixes)
		for _, p := range curPrefixes {
			if _, keep := want[p]; !keep {
				node.DeleteMaybe(ExportRule, AdvRoute(nbr, p, cur[p].path, s.Self), nil)
				delete(cur, p)
			}
		}
		wantPrefixes := make([]string, 0, len(want))
		for p := range want {
			wantPrefixes = append(wantPrefixes, p)
		}
		sort.Strings(wantPrefixes)
		for _, p := range wantPrefixes {
			d := want[p]
			old, had := cur[p]
			if had && old.path == d.path {
				continue
			}
			head := AdvRoute(nbr, p, d.path, s.Self)
			var replaces []types.Tuple
			if had {
				// Rules 2+3: one route per prefix per neighbor; the old
				// tuple's disappearance explains the new one (§3.4).
				replaces = append(replaces, AdvRoute(nbr, p, old.path, s.Self))
			}
			node.InsertMaybe(ExportRule, head, []types.Tuple{d.body}, replaces)
			if s.exports[nbr] == nil {
				s.exports[nbr] = make(map[string]exported)
			}
			s.exports[nbr][p] = d
		}
	}
}

// Recover re-seeds the speaker's originated-prefix set from a recovered
// node's machine state, so a speaker rebuilt in a fresh process after a
// crash keeps originating (and exporting) the prefixes its pre-crash
// incarnation announced. Export bookkeeping is left empty and rebuilds
// through subsequent Syncs — re-firing an export a neighbor already
// believes is idempotent at the tuple level.
func (s *Speaker) Recover(node *core.Node) {
	m := node.Machine.(*dlog.Machine)
	for _, t := range m.TuplesOf("origin") {
		if t.Args[0].Node() == s.Self {
			s.origins[t.Args[1].Str] = true
		}
	}
}

// PreferVia installs a preference for routes whose first hop is the given
// neighbor (a local-pref override); other candidates fall back to the
// default ranking. Used to build policy scenarios such as BadGadget.
func (s *Speaker) PreferVia(via types.NodeID) {
	s.Prefer = func(prefix string, a, b route) bool {
		av, bv := a.from == via, b.from == via
		if av != bv {
			return av
		}
		saved := s.Prefer
		s.Prefer = nil
		better := s.better(prefix, a, b)
		s.Prefer = saved
		return better
	}
}

// best runs the decision process for one prefix.
func (s *Speaker) best(prefix string) (route, bool) {
	cands := s.rib[prefix]
	if len(cands) == 0 {
		return route{}, false
	}
	froms := make([]string, 0, len(cands))
	for f := range cands {
		froms = append(froms, string(f))
	}
	sort.Strings(froms)
	best := cands[types.NodeID(froms[0])]
	for _, f := range froms[1:] {
		c := cands[types.NodeID(f)]
		if s.better(prefix, c, best) {
			best = c
		}
	}
	return best, true
}

func (s *Speaker) better(prefix string, a, b route) bool {
	if s.Prefer != nil {
		return s.Prefer(prefix, a, b)
	}
	// Default decision process: relationship preference (customer ≈
	// sibling > peer > provider), then path length, then lowest neighbor.
	ar, br := relRank(a.rel), relRank(b.rel)
	if ar != br {
		return ar < br
	}
	al, bl := len(strings.Fields(a.path)), len(strings.Fields(b.path))
	if al != bl {
		return al < bl
	}
	return a.from < b.from
}

func relRank(r Rel) int {
	switch r {
	case Customer, Sibling:
		return 0
	case Peer:
		return 1
	default:
		return 2
	}
}

func (s *Speaker) loops(path string) bool { return onPath(path, s.Self) }

func onPath(path string, n types.NodeID) bool {
	for _, hop := range strings.Fields(path) {
		if hop == string(n) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Deployment.

// ASLink declares a relationship between two networks: A is B's <Rel>.
type ASLink struct {
	A, B types.NodeID
	// RelAB is A's view of B (e.g. Provider means B is A's provider).
	RelAB Rel
}

// invert flips the relationship to the other side's view.
func invert(r Rel) Rel {
	switch r {
	case Customer:
		return Provider
	case Provider:
		return Customer
	case Sibling:
		return Sibling
	default:
		return Peer
	}
}

// Deployment is a running BGP network: speakers plus their SNooPy nodes.
type Deployment struct {
	Net      *simnet.Net
	Speakers map[types.NodeID]*Speaker
	Names    []types.NodeID
}

// Relations expands a link list into each network's view of its neighbors
// (both directions, relationships inverted for the far side) — the
// neighbor maps NewSpeaker takes. Harnesses that drive speakers over other
// transports (the live-TCP cluster) build their deployments from this.
func Relations(links []ASLink) map[types.NodeID]map[types.NodeID]Rel {
	rels := map[types.NodeID]map[types.NodeID]Rel{}
	addRel := func(a, b types.NodeID, r Rel) {
		if rels[a] == nil {
			rels[a] = make(map[types.NodeID]Rel)
		}
		rels[a][b] = r
	}
	for _, l := range links {
		addRel(l.A, l.B, l.RelAB)
		addRel(l.B, l.A, invert(l.RelAB))
	}
	return rels
}

// Deploy builds the networks on net. syncEvery controls how often each
// speaker reconciles (the paper's Quagga reacts to updates; our speaker
// polls the proxy state).
func Deploy(net *simnet.Net, links []ASLink, syncEvery, duration types.Time) (*Deployment, error) {
	rels := Relations(links)
	names := make([]types.NodeID, 0, len(rels))
	for n := range rels {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	prog := Program()
	if err := prog.Err(); err != nil {
		return nil, err
	}
	d := &Deployment{Net: net, Speakers: map[types.NodeID]*Speaker{}, Names: names}
	for i, n := range names {
		if _, err := net.AddNode(n, int64(1000+i), dlog.NewMachine(prog, n)); err != nil {
			return nil, err
		}
		d.Speakers[n] = NewSpeaker(n, rels[n])
	}
	for i, n := range names {
		n := n
		offset := types.Time(int64(i)) * syncEvery / types.Time(len(names)+1)
		// The reconciliation loop touches only n's speaker and node, so it
		// runs on n's event shard and scales with the parallel scheduler.
		net.PeriodicNode(n, offset+syncEvery, syncEvery, duration, func() {
			d.Speakers[n].Sync(net.Node(n))
		})
	}
	return d, nil
}

// Factory returns the replay machine factory for the BGP proxy.
func Factory() types.MachineFactory { return dlog.Factory(Program()) }

// NewQuerier builds a querier with the BGP maybe-rule validator installed.
func (d *Deployment) NewQuerier() *core.Querier {
	q := d.Net.NewQuerier(Factory())
	q.Auditor.Builder.MaybeValidator = ValidateExport
	return q
}

// DefaultTopology is a 10-network topology with two tier-1 peers, two
// regional providers, and six stubs — the shape of the paper's Quagga
// setup (10 ASes with a mix of tier-1 and small stub ASes, §7.1).
func DefaultTopology() []ASLink {
	t1a, t1b := types.NodeID("as10"), types.NodeID("as20")
	r1, r2 := types.NodeID("as30"), types.NodeID("as40")
	return []ASLink{
		{A: t1a, B: t1b, RelAB: Peer},
		{A: r1, B: t1a, RelAB: Provider}, // t1a is r1's provider
		{A: r1, B: t1b, RelAB: Provider},
		{A: r2, B: t1a, RelAB: Provider},
		{A: r2, B: t1b, RelAB: Provider},
		{A: "as51", B: r1, RelAB: Provider},
		{A: "as52", B: r1, RelAB: Provider},
		{A: "as53", B: r1, RelAB: Provider},
		{A: "as61", B: r2, RelAB: Provider},
		{A: "as62", B: r2, RelAB: Provider},
		{A: "as63", B: r2, RelAB: Provider},
		{A: "as51", B: r2, RelAB: Provider}, // multihomed stub
	}
}

// Prefix names the i-th synthetic prefix.
func Prefix(i int) string { return fmt.Sprintf("10.%d.%d.0/24", (i/256)%256, i%256) }
