// Package chord is a declarative implementation of the Chord distributed
// hash table in the style of RapidNet/P2's NDlog Chord — the paper's first
// example application (§6.1). Provenance is inferred automatically from
// rule evaluation (extraction method #1 of §5.3).
//
// The rule set implements join via lookup, successor stabilization with
// notify, finger fixing via lookups, keep-alive pings, and application
// lookups. Routing uses the classic closest-preceding-finger step,
// expressed as a min-aggregated event rule (the P2 idiom).
package chord

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/dlog"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Bits is the identifier ring width (m): IDs live in [0, 2^Bits).
const Bits = 16

// RingSize is 2^Bits.
const RingSize = int64(1) << Bits

// Event IDs multiplex lookup responses: join, finger fixes (the finger
// index), and application lookups (offset by LookupEIDBase).
const (
	JoinEID       = int64(-1)
	LookupEIDBase = int64(10000)
)

// RingID maps a node name onto the identifier ring.
func RingID(id types.NodeID) int64 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int64(h.Sum32()) % RingSize
}

// ringDist is the clockwise distance from a to b.
func ringDist(a, b int64) int64 {
	d := (b - a) % RingSize
	if d < 0 {
		d += RingSize
	}
	return d
}

// Program compiles the Chord rule set.
func Program() *dlog.Program {
	p := dlog.NewProgram()
	// Persistent state.
	p.Relation("node", 2, false)   // node(@N, ID)
	p.Relation("succ", 3, false)   // succ(@N, S, SID)
	p.Relation("pred", 3, false)   // pred(@N, P, PID)
	p.Relation("finger", 4, false) // finger(@N, I, F, FID)
	p.Relation("result", 5, false) // result(@N, K, Owner, OID, EID)
	// Events.
	p.Relation("joinEv", 2, true)    // joinEv(@N, Landmark)
	p.Relation("lookup", 4, true)    // lookup(@M, K, Requester, EID)
	p.Relation("lookupRes", 5, true) // lookupRes(@R, K, Owner, OID, EID)
	p.Relation("stabEv", 1, true)    // stabEv(@N)
	p.Relation("getPred", 2, true)   // getPred(@S, Asker)
	p.Relation("predReply", 3, true) // predReply(@N, P, PID)
	p.Relation("notify", 3, true)    // notify(@S, N, NID)
	p.Relation("fixEv", 2, true)     // fixEv(@N, I)
	p.Relation("kaEv", 1, true)      // kaEv(@N)
	p.Relation("ping", 2, true)      // ping(@S, N)
	p.Relation("pong", 2, true)      // pong(@N, S)
	p.Relation("lookupEv", 3, true)  // lookupEv(@N, K, EID)

	// Ring-arithmetic builtins. inHalfOpen(K,A,B): K ∈ (A,B] on the ring;
	// a degenerate interval (A==B) covers the whole ring (single-node
	// case). inOpen(K,A,B): K ∈ (A,B).
	boolVal := func(v bool) types.Value {
		if v {
			return types.I(1)
		}
		return types.I(0)
	}
	p.MustFunc("inHalfOpen", func(a []types.Value) types.Value {
		k, lo, hi := a[0].Int, a[1].Int, a[2].Int
		if lo == hi {
			return boolVal(true)
		}
		return boolVal(ringDist(lo, k) <= ringDist(lo, hi) && k != lo)
	})
	p.MustFunc("inOpen", func(a []types.Value) types.Value {
		k, lo, hi := a[0].Int, a[1].Int, a[2].Int
		if lo == hi {
			return boolVal(k != lo)
		}
		return boolVal(ringDist(lo, k) < ringDist(lo, hi) && k != lo)
	})
	p.MustFunc("ringDist", func(a []types.Value) types.Value {
		return types.I(ringDist(a[0].Int, a[1].Int))
	})
	p.MustFunc("fingerTarget", func(a []types.Value) types.Value {
		return types.I((a[0].Int + (int64(1) << uint(a[1].Int))) % RingSize)
	})

	V, A, C := dlog.V, dlog.A, dlog.C

	// J1: joining node asks the landmark to find its successor.
	p.MustAddRule(dlog.Rule{
		Name: "J1", Action: dlog.ActEvent,
		Head: A("lookup", V("L"), V("NID"), V("N"), C(types.I(JoinEID))),
		Body: []dlog.Atom{
			A("joinEv", V("N"), V("L")),
			A("node", V("N"), V("NID")),
		},
	})
	// J2: the join response installs the successor.
	p.MustAddRule(dlog.Rule{
		Name: "J2", Action: dlog.ActStore, ReplaceKey: 1,
		Head: A("succ", V("N"), V("O"), V("OID")),
		Body: []dlog.Atom{
			A("lookupRes", V("N"), V("K"), V("O"), V("OID"), C(types.I(JoinEID))),
		},
	})
	// L1: answer a lookup the local successor owns: K ∈ (MID, SID].
	p.MustAddRule(dlog.Rule{
		Name: "L1", Action: dlog.ActEvent,
		Head: A("lookupRes", V("R"), V("K"), V("S"), V("SID"), V("E")),
		Body: []dlog.Atom{
			A("lookup", V("M"), V("K"), V("R"), V("E")),
			A("node", V("M"), V("MID")),
			A("succ", V("M"), V("S"), V("SID")),
		},
		Conds: []dlog.Cond{{Fn: "inHalfOpen", Args: []dlog.Term{V("K"), V("MID"), V("SID")}}},
	})
	// L2: otherwise forward to the closest preceding finger (min ring
	// distance from the finger to the key). Finger 0 always mirrors the
	// successor (rule F0), so a candidate always exists.
	p.MustAddRule(dlog.Rule{
		Name: "L2", Action: dlog.ActEvent,
		Head: A("lookup", V("F"), V("K"), V("R"), V("E")),
		Body: []dlog.Atom{
			A("lookup", V("M"), V("K"), V("R"), V("E")),
			A("node", V("M"), V("MID")),
			A("succ", V("M"), V("S"), V("SID")),
			A("finger", V("M"), V("I"), V("F"), V("FID")),
		},
		Conds: []dlog.Cond{
			{Fn: "inHalfOpen", Args: []dlog.Term{V("K"), V("MID"), V("SID")}, Negate: true},
			{Fn: "inOpen", Args: []dlog.Term{V("FID"), V("MID"), V("K")}},
		},
		Assigns: []dlog.Assign{{Var: "D", Fn: "ringDist", Args: []dlog.Term{V("FID"), V("K")}}},
		Agg:     &dlog.Agg{Fn: dlog.AggMin, Over: "D", GroupBy: []string{"M", "K", "R", "E"}},
	})
	// F0: finger 0 mirrors the successor.
	p.MustAddRule(dlog.Rule{
		Name: "F0",
		Head: A("finger", V("N"), C(types.I(0)), V("S"), V("SID")),
		Body: []dlog.Atom{A("succ", V("N"), V("S"), V("SID"))},
	})
	// S1/S2/S3: stabilization — ask the successor for its predecessor;
	// adopt it if it sits between us and the successor; then notify.
	p.MustAddRule(dlog.Rule{
		Name: "S1", Action: dlog.ActEvent,
		Head: A("getPred", V("S"), V("N")),
		Body: []dlog.Atom{
			A("stabEv", V("N")),
			A("succ", V("N"), V("S"), V("SID")),
		},
	})
	p.MustAddRule(dlog.Rule{
		Name: "S2", Action: dlog.ActEvent,
		Head: A("predReply", V("N"), V("P"), V("PID")),
		Body: []dlog.Atom{
			A("getPred", V("S"), V("N")),
			A("pred", V("S"), V("P"), V("PID")),
		},
	})
	p.MustAddRule(dlog.Rule{
		Name: "S3", Action: dlog.ActStore, ReplaceKey: 1,
		Head: A("succ", V("N"), V("P"), V("PID")),
		Body: []dlog.Atom{
			A("predReply", V("N"), V("P"), V("PID")),
			A("node", V("N"), V("NID")),
			A("succ", V("N"), V("S"), V("SID")),
		},
		Conds: []dlog.Cond{
			{Fn: "inOpen", Args: []dlog.Term{V("PID"), V("NID"), V("SID")}},
			{Fn: "ne", Args: []dlog.Term{V("P"), V("N")}},
		},
	})
	p.MustAddRule(dlog.Rule{
		Name: "S4", Action: dlog.ActEvent,
		Head: A("notify", V("S"), V("N"), V("NID")),
		Body: []dlog.Atom{
			A("stabEv", V("N")),
			A("succ", V("N"), V("S"), V("SID")),
			A("node", V("N"), V("NID")),
		},
		Conds: []dlog.Cond{{Fn: "ne", Args: []dlog.Term{V("S"), V("N")}}},
	})
	// N1: adopt a notifier as predecessor if it improves on the current
	// one; N2: adopt unconditionally when the current predecessor is
	// ourselves (the bootstrap placeholder).
	p.MustAddRule(dlog.Rule{
		Name: "N1", Action: dlog.ActStore, ReplaceKey: 1,
		Head: A("pred", V("M"), V("N"), V("NID")),
		Body: []dlog.Atom{
			A("notify", V("M"), V("N"), V("NID")),
			A("pred", V("M"), V("P"), V("PID")),
			A("node", V("M"), V("MID")),
		},
		Conds: []dlog.Cond{
			{Fn: "inOpen", Args: []dlog.Term{V("NID"), V("PID"), V("MID")}},
			{Fn: "ne", Args: []dlog.Term{V("P"), V("M")}},
		},
	})
	p.MustAddRule(dlog.Rule{
		Name: "N2", Action: dlog.ActStore, ReplaceKey: 1,
		Head: A("pred", V("M"), V("N"), V("NID")),
		Body: []dlog.Atom{
			A("notify", V("M"), V("N"), V("NID")),
			A("pred", V("M"), V("M"), V("MID")),
		},
	})
	// FX1/FX2: finger fixing — look up the finger target; install the
	// owner under the finger index carried in the event ID.
	p.MustAddRule(dlog.Rule{
		Name: "FX1", Action: dlog.ActEvent,
		Head: A("lookup", V("N"), V("T"), V("N"), V("I")),
		Body: []dlog.Atom{
			A("fixEv", V("N"), V("I")),
			A("node", V("N"), V("NID")),
		},
		Assigns: []dlog.Assign{{Var: "T", Fn: "fingerTarget", Args: []dlog.Term{V("NID"), V("I")}}},
	})
	p.MustAddRule(dlog.Rule{
		Name: "FX2", Action: dlog.ActStore, ReplaceKey: 2,
		Head: A("finger", V("N"), V("I"), V("O"), V("OID")),
		Body: []dlog.Atom{
			A("lookupRes", V("N"), V("K"), V("O"), V("OID"), V("I")),
		},
		Conds: []dlog.Cond{
			{Fn: "ge", Args: []dlog.Term{V("I"), C(types.I(1))}},
			{Fn: "lt", Args: []dlog.Term{V("I"), C(types.I(Bits))}},
		},
	})
	// KA1/KA2: keep-alive ping/pong with the successor.
	p.MustAddRule(dlog.Rule{
		Name: "KA1", Action: dlog.ActEvent,
		Head: A("ping", V("S"), V("N")),
		Body: []dlog.Atom{
			A("kaEv", V("N")),
			A("succ", V("N"), V("S"), V("SID")),
		},
		Conds: []dlog.Cond{{Fn: "ne", Args: []dlog.Term{V("S"), V("N")}}},
	})
	p.MustAddRule(dlog.Rule{
		Name: "KA2", Action: dlog.ActEvent,
		Head: A("pong", V("N"), V("S")),
		Body: []dlog.Atom{A("ping", V("S"), V("N"))},
	})
	// Q1/Q2: application lookups and their stored results (the
	// Chord-Lookup query of §7.2 asks for the provenance of a result).
	p.MustAddRule(dlog.Rule{
		Name: "Q1", Action: dlog.ActEvent,
		Head: A("lookup", V("N"), V("K"), V("N"), V("E")),
		Body: []dlog.Atom{A("lookupEv", V("N"), V("K"), V("E"))},
	})
	p.MustAddRule(dlog.Rule{
		Name: "Q2", Action: dlog.ActStore, ReplaceKey: 5,
		Head: A("result", V("N"), V("K"), V("O"), V("OID"), V("E")),
		Body: []dlog.Atom{
			A("lookupRes", V("N"), V("K"), V("O"), V("OID"), V("E")),
		},
		Conds: []dlog.Cond{{Fn: "ge", Args: []dlog.Term{V("E"), C(types.I(LookupEIDBase))}}},
	})
	return p
}

// Factory returns the replay machine factory for Chord.
func Factory() types.MachineFactory { return dlog.Factory(Program()) }

// NodeName returns the canonical name of the i-th Chord node.
func NodeName(i int) types.NodeID { return types.NodeID(fmt.Sprintf("chord%03d", i)) }

// Params configures a Chord deployment (§7.1: stabilization every 50 s,
// finger fixing every 50 s, keep-alive every 10 s).
type Params struct {
	N              int
	StabilizeEvery types.Time
	FingerEvery    types.Time
	KeepAliveEvery types.Time
	JoinSpread     types.Time // protocol joiners join over this window
	Duration       types.Time
	Lookups        int // application lookups issued over the run
	// ProtocolJoins is how many nodes join through the lookup-based join
	// protocol; the rest start with initialized successor/predecessor
	// pointers (landmark-only joins converge in O(N) stabilization rounds,
	// which would dwarf a 15-minute run at N=250).
	ProtocolJoins int
}

// DefaultParams mirrors the paper's Chord configuration.
func DefaultParams(n int) Params {
	return Params{
		N:              n,
		StabilizeEvery: 50 * types.Second,
		FingerEvery:    50 * types.Second,
		KeepAliveEvery: 10 * types.Second,
		JoinSpread:     30 * types.Second,
		Duration:       15 * types.Minute,
		Lookups:        n,
		ProtocolJoins:  1,
	}
}

// Deploy creates the Chord nodes on net and schedules joins, timers, and
// application lookups. It returns the node names.
func Deploy(net *simnet.Net, p Params) ([]types.NodeID, error) {
	prog := Program()
	if err := prog.Err(); err != nil {
		return nil, err
	}
	names := make([]types.NodeID, p.N)
	ids := make(map[types.NodeID]int64, p.N)
	used := make(map[int64]bool, p.N)
	for i := 0; i < p.N; i++ {
		names[i] = NodeName(i)
		if _, err := net.AddNode(names[i], int64(i+1), dlog.NewMachine(prog, names[i])); err != nil {
			return nil, err
		}
		id := RingID(names[i])
		for used[id] { // resolve ring collisions deterministically
			id = (id + 1) % RingSize
		}
		used[id] = true
		ids[names[i]] = id
	}
	// Ring order by identifier.
	ring := append([]types.NodeID(nil), names...)
	sort.Slice(ring, func(i, j int) bool { return ids[ring[i]] < ids[ring[j]] })
	protocolJoiner := make(map[types.NodeID]bool)
	for i := 0; i < p.ProtocolJoins && i < len(names)-1; i++ {
		protocolJoiner[names[len(names)-1-i]] = true
	}
	landmark := names[0]
	pos := make(map[types.NodeID]int, len(ring))
	for i, name := range ring {
		pos[name] = i
	}
	// ringNeighbor walks the ring skipping protocol joiners (they are not
	// part of the initial ring).
	ringNeighbor := func(name types.NodeID, dir int) types.NodeID {
		i := pos[name]
		for {
			i = (i + dir + len(ring)) % len(ring)
			if !protocolJoiner[ring[i]] {
				return ring[i]
			}
		}
	}
	joined := 0
	for _, name := range names {
		name := name
		id := ids[name]
		nodeTuple := types.MakeTuple("node", types.N(name), types.I(id))
		if protocolJoiner[name] {
			joined++
			joinAt := types.Time(int64(joined)) * p.JoinSpread / types.Time(p.ProtocolJoins+1)
			net.AtNode(name, joinAt, func() {
				net.Node(name).InsertBase(nodeTuple)
				net.Node(name).InsertBase(types.MakeTuple("pred", types.N(name), types.N(name), types.I(id)))
				net.Node(name).InsertEvent(types.MakeTuple("joinEv", types.N(name), types.N(landmark)))
			})
			continue
		}
		s := ringNeighbor(name, +1)
		pr := ringNeighbor(name, -1)
		if s == name { // single initialized node
			s, pr = name, name
		}
		sid, pid := ids[s], ids[pr]
		net.AtNode(name, 0, func() {
			net.Node(name).InsertBase(nodeTuple)
			net.Node(name).InsertBase(types.MakeTuple("succ", types.N(name), types.N(s), types.I(sid)))
			net.Node(name).InsertBase(types.MakeTuple("pred", types.N(name), types.N(pr), types.I(pid)))
		})
	}
	// Timers, staggered per node to avoid synchronized bursts.
	for i, name := range names {
		name := name
		offset := types.Time(int64(i)) * types.Second / types.Time(p.N)
		net.PeriodicNode(name, p.JoinSpread+offset, p.StabilizeEvery, p.Duration, func() {
			net.Node(name).InsertEvent(types.MakeTuple("stabEv", types.N(name)))
		})
		net.PeriodicNode(name, p.JoinSpread+offset+time25(p.FingerEvery), p.FingerEvery, p.Duration, func() {
			n := net.Node(name)
			for fi := int64(1); fi < Bits; fi += 2 {
				n.InsertEvent(types.MakeTuple("fixEv", types.N(name), types.I(fi)))
			}
		})
		net.PeriodicNode(name, p.JoinSpread+offset+time50(p.KeepAliveEvery), p.KeepAliveEvery, p.Duration, func() {
			net.Node(name).InsertEvent(types.MakeTuple("kaEv", types.N(name)))
		})
	}
	// Application lookups spread over the second half of the run.
	if p.Lookups > 0 {
		start := p.Duration / 2
		for li := 0; li < p.Lookups; li++ {
			li := li
			origin := names[li%len(names)]
			key := RingID(types.NodeID(fmt.Sprintf("key-%d", li)))
			at := start + types.Time(int64(li))*(p.Duration/2-types.Second)/types.Time(p.Lookups)
			net.AtNode(origin, at, func() {
				net.Node(origin).InsertEvent(types.MakeTuple("lookupEv",
					types.N(origin), types.I(key), types.I(LookupEIDBase+int64(li))))
			})
		}
	}
	return names, nil
}

func time25(d types.Time) types.Time { return d / 4 }
func time50(d types.Time) types.Time { return d / 2 }

// Result builds a result(@n,k,owner,oid,eid) tuple for queries.
func Result(n types.NodeID, k int64, owner types.NodeID, oid, eid int64) types.Tuple {
	return types.MakeTuple("result", types.N(n), types.I(k), types.N(owner), types.I(oid), types.I(eid))
}
