package chord_test

import (
	"strings"
	"testing"

	"repro/internal/apps/chord"
	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
)

func runChord(t *testing.T, n int, dur types.Time, mutate func(*simnet.Net)) (*simnet.Net, []types.NodeID) {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Core.CheckpointEvery = 0 // full-log replay keeps the tests simple
	net := simnet.New(cfg)
	p := chord.DefaultParams(n)
	p.Duration = dur
	p.JoinSpread = 10 * types.Second
	p.StabilizeEvery = 20 * types.Second
	p.FingerEvery = 20 * types.Second
	p.KeepAliveEvery = 10 * types.Second
	p.Lookups = n
	names, err := chord.Deploy(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(net)
	}
	net.Run(dur)
	return net, names
}

// ringConsistent checks that following succ pointers visits every node.
func ringConsistent(t *testing.T, net *simnet.Net, names []types.NodeID) bool {
	t.Helper()
	succ := map[types.NodeID]types.NodeID{}
	for _, name := range names {
		m := net.Node(name).Machine.(*dlog.Machine)
		ss := m.TuplesOf("succ")
		if len(ss) != 1 {
			t.Logf("%s has %d succ tuples: %v", name, len(ss), ss)
			return false
		}
		succ[name] = ss[0].Args[1].Node()
	}
	seen := map[types.NodeID]bool{}
	cur := names[0]
	for i := 0; i < len(names); i++ {
		if seen[cur] {
			t.Logf("ring short-circuits at %s after %d hops", cur, i)
			return false
		}
		seen[cur] = true
		cur = succ[cur]
	}
	return cur == names[0] && len(seen) == len(names)
}

func TestChordRingForms(t *testing.T) {
	net, names := runChord(t, 8, 3*types.Minute, nil)
	if !ringConsistent(t, net, names) {
		t.Error("successor ring did not converge")
	}
}

func TestChordLookupsResolve(t *testing.T) {
	net, names := runChord(t, 8, 3*types.Minute, nil)
	// At least one application lookup must have produced a stored result.
	total := 0
	for _, name := range names {
		m := net.Node(name).Machine.(*dlog.Machine)
		total += len(m.TuplesOf("result"))
	}
	if total == 0 {
		t.Fatal("no lookup results stored")
	}
}

// findResult locates one stored lookup result and its host.
func findResult(net *simnet.Net, names []types.NodeID) (types.NodeID, types.Tuple) {
	for _, name := range names {
		m := net.Node(name).Machine.(*dlog.Machine)
		if rs := m.TuplesOf("result"); len(rs) > 0 {
			return name, rs[0]
		}
	}
	return "", types.Tuple{}
}

// TestChordLookupProvenance is the §7.2 Chord-Lookup query: the provenance
// of a lookup result names the nodes and finger/successor entries involved.
func TestChordLookupProvenance(t *testing.T) {
	net, names := runChord(t, 8, 3*types.Minute, nil)
	host, result := findResult(net, names)
	if host == "" {
		t.Fatal("no result tuple found")
	}
	q := net.NewQuerier(chord.Factory())
	expl, err := q.Explain(host, result, core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v (failures %v)", err, q.Auditor.Failures())
	}
	tree := expl.Format()
	if !strings.Contains(tree, "lookupRes(") {
		t.Errorf("provenance lacks the lookup response:\n%s", tree)
	}
	if len(expl.FindColor(provgraph.Red)) != 0 {
		t.Errorf("red vertices on a correct Chord run:\n%s", tree)
	}
}

// TestChordFingerProvenance is the §7.2 Chord-Finger query.
func TestChordFingerProvenance(t *testing.T) {
	net, names := runChord(t, 8, 3*types.Minute, nil)
	var host types.NodeID
	var finger types.Tuple
	for _, name := range names {
		m := net.Node(name).Machine.(*dlog.Machine)
		for _, f := range m.TuplesOf("finger") {
			if f.Args[1].Int >= 1 { // a fixed finger, not the succ mirror
				host, finger = name, f
				break
			}
		}
		if host != "" {
			break
		}
	}
	if host == "" {
		t.Skip("no fixed finger entries yet (ring too small)")
	}
	q := net.NewQuerier(chord.Factory())
	expl, err := q.Explain(host, finger, core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if expl.Vertex.Type != provgraph.VExist {
		t.Errorf("root = %s", expl.Vertex)
	}
}

// TestEclipseAttackDetected mounts a §7.3-style Eclipse attack: the
// compromised node lies about its ring position in its stabilization
// notify messages (claiming to sit immediately before its successor), so
// the successor adopts it as predecessor no matter what — inflating the
// attacker's presence in its neighbors' state. Replaying the attacker's
// log against the correct rules exposes the forged notifications.
func TestEclipseAttackDetected(t *testing.T) {
	attacker := chord.NodeName(2)
	net, names := runChord(t, 8, 3*types.Minute, func(net *simnet.Net) {
		bad := net.Node(attacker)
		bad.Tamper = func(ev types.Event, outs []types.Output) []types.Output {
			for i, o := range outs {
				if o.Kind != types.OutSend || o.Msg.Tuple.Rel != "notify" {
					continue
				}
				tup := o.Msg.Tuple
				succ := tup.Args[0].Node()
				fakeID := (chord.RingID(succ) - 1 + chord.RingSize) % chord.RingSize
				m := *o.Msg
				m.Tuple = types.MakeTuple("notify", tup.Args[0], tup.Args[1], types.I(fakeID))
				outs[i].Msg = &m
			}
			return outs
		}
	})
	// Find a victim whose predecessor pointer names the attacker under a
	// forged ring ID.
	var victim types.NodeID
	var poisoned types.Tuple
	for _, name := range names {
		if name == attacker {
			continue
		}
		m := net.Node(name).Machine.(*dlog.Machine)
		for _, p := range m.TuplesOf("pred") {
			if p.Args[1].Node() == attacker && p.Args[2].Int != chord.RingID(attacker) {
				victim, poisoned = name, p
			}
		}
		if victim != "" {
			break
		}
	}
	if victim == "" {
		t.Fatal("attack produced no poisoned predecessor pointer")
	}
	q := net.NewQuerier(chord.Factory())
	expl, err := q.Explain(victim, poisoned, core.QueryOpts{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	faulty := expl.FaultyNodes()
	found := false
	for _, f := range faulty {
		if f == attacker {
			found = true
		}
	}
	if !found {
		t.Errorf("attacker %s not identified; faulty = %v\n%s", attacker, faulty, expl.Format())
	}
}

func TestRingIDStable(t *testing.T) {
	a := chord.RingID("chord001")
	b := chord.RingID("chord001")
	if a != b {
		t.Error("RingID not deterministic")
	}
	if a < 0 || a >= chord.RingSize {
		t.Errorf("RingID out of range: %d", a)
	}
}
