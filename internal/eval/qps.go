// Sustained query throughput: the Fig-series companion the paper does not
// plot. Many concurrent Querier sessions audit a finished store-backed run
// (each query is a fresh auditor, so nothing carries over in process
// memory), once against an empty persistent audit cache and once against
// the cache the first pass populated. The pair separates the fixed cost of
// verification from the replica-replay cost the cache elides.
package eval

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/quantile"
	"repro/internal/types"
)

// QPSRow is one row of the query-throughput figure: a pass of Queries
// audit-queries spread over Workers concurrent querier scopes.
type QPSRow struct {
	Label   string // "cold-cache" or "warm-cache"
	Workers int
	Queries int
	Elapsed time.Duration
	QPS     float64
	P50     time.Duration
	P99     time.Duration
	// Hits and Misses are the audit-cache counter deltas over the pass.
	Hits   uint64
	Misses uint64
}

func (r QPSRow) String() string {
	return fmt.Sprintf("%-10s workers=%d queries=%d qps=%7.1f p50=%-10v p99=%-10v cache: %d hits / %d misses",
		r.Label, r.Workers, r.Queries, r.QPS,
		r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond), r.Hits, r.Misses)
}

// NsPerQuery is the pass's mean wall-clock cost per query.
func (r QPSRow) NsPerQuery() int64 {
	if r.Queries == 0 {
		return 0
	}
	return r.Elapsed.Nanoseconds() / int64(r.Queries)
}

// QueryThroughput runs the Quagga workload store-backed under dir, then
// measures sustained audit-query throughput: workers concurrent goroutines
// each repeatedly open a fresh Querier scope, audit one node (round-robin
// over the deployment), and finalize — queries times in total per pass. The
// cold pass starts with an empty persistent audit cache (its misses are the
// population cost); the warm pass re-reads the same segments from the cache.
func QueryThroughput(o Options, workers, queries int, dir string) ([]QPSRow, error) {
	o = o.normalize()
	if workers <= 0 {
		workers = 4
	}
	if queries <= 0 {
		queries = 48
	}
	if o.LogDir == "" {
		o.LogDir = filepath.Join(dir, "store")
	}
	if o.LogHotTail == 0 {
		o.LogHotTail = DefaultHotTail
	}
	cache, err := core.OpenAuditCache(filepath.Join(dir, "auditcache"), o.Suite)
	if err != nil {
		return nil, err
	}
	o.AuditCache = cache
	res, err := Run(Quagga, o)
	if err != nil {
		_ = cache.Close()
		return nil, err
	}
	defer func() {
		_ = res.Net.CloseLogs()
		_ = cache.Close()
	}()

	targets := append([]types.NodeID(nil), res.Net.Nodes()...)
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	pass := func(label string) (QPSRow, error) {
		h0, m0 := cache.Hits(), cache.Misses()
		durs := make([]time.Duration, queries)
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			next     int
			firstErr error
		)
		claim := func() int {
			mu.Lock()
			defer mu.Unlock()
			if firstErr != nil || next >= queries {
				return -1
			}
			next++
			return next - 1
		}
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := claim()
					if i < 0 {
						return
					}
					target := targets[i%len(targets)]
					qs := time.Now()
					q := res.NewQuerier()
					q.BeginAuditScope([]types.NodeID{target}, 0)
					aerr := q.EnsureAudited(target, 0)
					q.Auditor.Finalize()
					q.CloseScope()
					durs[i] = time.Since(qs)
					if aerr != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("eval: qps %s audit of %s: %w", label, target, aerr)
						}
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return QPSRow{}, firstErr
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return QPSRow{
			Label: label, Workers: workers, Queries: queries, Elapsed: elapsed,
			QPS: float64(queries) / elapsed.Seconds(),
			P50: quantile.SortedDuration(durs, 50), P99: quantile.SortedDuration(durs, 99),
			Hits: cache.Hits() - h0, Misses: cache.Misses() - m0,
		}, nil
	}

	cold, err := pass("cold-cache")
	if err != nil {
		return nil, err
	}
	if err := cache.Sync(); err != nil {
		return nil, err
	}
	warm, err := pass("warm-cache")
	if err != nil {
		return nil, err
	}
	if warm.Misses != 0 {
		// Segment identity must not drift between passes over a finished run:
		// a warm miss means the cache key (node, range, head hash) changed,
		// which would also defeat the cache in a long-lived audit service.
		return nil, fmt.Errorf("eval: warm qps pass missed the audit cache %d times", warm.Misses)
	}
	return []QPSRow{cold, warm}, nil
}
