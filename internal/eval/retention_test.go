package eval

import "testing"

// TestLongRetention runs the store-backed Thist scenario at test scale: the
// run must spill history to disk, every deterministic metric series must be
// bit-identical to the in-memory baseline, and the crash-recovered store
// must serve identical segments and pass a full audit.
func TestLongRetention(t *testing.T) {
	rep, err := LongRetention(Quagga, Options{Scale: testScale, LogHotTail: 16}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdEntries == 0 {
		t.Error("no entries spilled to disk despite the hot-tail cap")
	}
	if !rep.Identical {
		t.Errorf("metric series diverged from the in-memory baseline:\n store: %v / %v\n mem:   %v / %v",
			rep.Fig5, rep.Fig6, rep.BaselineFig5, rep.BaselineFig6)
	}
	if !rep.SegmentIdentical {
		t.Error("recovered store served different segment bytes than the live log")
	}
	if rep.AuditFailures != 0 {
		t.Errorf("audit of the recovered store found %d failures", rep.AuditFailures)
	}
	if rep.RecoveredEntries == 0 {
		t.Error("recovered log is empty")
	}
}

// TestStoreBackedQueriesMatchMemory runs the full Fig8 Quagga query against
// a store-backed deployment: query answers and downloaded-byte accounting
// must match the in-memory run exactly.
func TestStoreBackedQueriesMatchMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestLongRetention")
	}
	memRes, err := Run(Quagga, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	memRow, err := QuaggaDisappearQuery(memRes)
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := Run(Quagga, Options{Scale: testScale, LogDir: t.TempDir(), LogHotTail: 16})
	if err != nil {
		t.Fatal(err)
	}
	stRow, err := QuaggaDisappearQuery(stRes)
	if err != nil {
		t.Fatal(err)
	}
	if stRow.LogBytes != memRow.LogBytes || stRow.AuthBytes != memRow.AuthBytes ||
		stRow.CkptBytes != memRow.CkptBytes || stRow.Answer != memRow.Answer || stRow.Red != memRow.Red {
		t.Errorf("store-backed query diverged:\n store: %v\n mem:   %v", stRow, memRow)
	}
}
