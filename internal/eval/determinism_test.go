package eval

import (
	"testing"

	"repro/internal/provgraph"
)

// runSummary captures every deterministic observable of one run: the
// Figure 5/6 metric rows, the crypto operation counts, the log totals, and
// a provenance-graph summary obtained by auditing one node. Wall-clock
// quantities (replay/verify time) and cache-hit counts are deliberately
// excluded: the former are timing noise, and the latter depend on what
// earlier runs left in the process-wide verification cache.
type runSummary struct {
	fig5 Fig5Row
	fig6 Fig6Row

	signs, verifies, hashes, hashedBytes uint64

	logEntries uint64
	logBytes   int64

	graphVertices int
	graphEdges    int
	yellow        int
	black         int
	red           int
}

func summarize(t *testing.T, name ConfigName) runSummary {
	t.Helper()
	res, err := Run(name, Options{Scale: 0.02})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	s := runSummary{fig5: Figure5(res), fig6: Figure6(res)}
	snap := res.Net.CryptoStats()
	s.signs, s.verifies, s.hashes, s.hashedBytes = snap.Signs, snap.Verifies, snap.Hashes, snap.HashedBytes
	ls := res.Net.LogStats()
	s.logEntries, s.logBytes = ls.Entries, ls.GrossBytes
	// Audit the first node and summarize the reconstructed graph. The
	// index/ordering refactors must not perturb vertex or edge creation.
	q := res.NewQuerier()
	nodes := res.Net.Nodes()
	if len(nodes) == 0 {
		t.Fatalf("%s: no nodes", name)
	}
	if err := q.EnsureAudited(nodes[0], 0); err != nil {
		t.Fatalf("%s: audit %s: %v", name, nodes[0], err)
	}
	q.Auditor.Finalize()
	g := q.Auditor.Graph()
	s.graphVertices = g.Len()
	s.graphEdges = g.EdgeCount()
	for _, v := range g.Vertices() {
		switch v.Color {
		case provgraph.Yellow:
			s.yellow++
		case provgraph.Black:
			s.black++
		case provgraph.Red:
			s.red++
		}
	}
	return s
}

// TestRunDeterminism executes every configuration twice and requires the
// full observable result to be identical. This pins the deterministic-order
// guarantees the hot-path refactor relies on (indexed joins iterating in
// key order, incrementally sorted bookkeeping): any iteration-order
// nondeterminism shows up here as a metric or graph diff.
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated five-config determinism run skipped in -short mode")
	}
	for _, name := range AllConfigs {
		name := name
		t.Run(string(name), func(t *testing.T) {
			a := summarize(t, name)
			b := summarize(t, name)
			if a != b {
				t.Errorf("nondeterministic run:\n first=%+v\nsecond=%+v", a, b)
			}
		})
	}
}
