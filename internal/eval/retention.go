package eval

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// LongRetentionReport summarizes a store-backed long-retention run (the
// Thist scenario of §5.6 over the disk-backed segment store): Figure 6
// log-growth accounting computed over the spilled logs, how much history
// lived only on disk, and the outcome of crash-recovering one node's store
// and re-auditing it.
type LongRetentionReport struct {
	Config ConfigName
	Fig6   Fig6Row
	Fig5   Fig5Row
	// Baseline are the same series from an identically seeded in-memory
	// run; Identical reports whether every deterministic metric matched.
	BaselineFig6 Fig6Row
	BaselineFig5 Fig5Row
	Identical    bool

	// ColdEntries counts log entries resident only on disk across all
	// nodes at the end of the run (the spill the hot-tail cap forced).
	ColdEntries uint64

	// Recovered names the node whose store was reopened without a clean
	// shutdown; RecoveredEntries is its chain length after replay.
	Recovered        types.NodeID
	RecoveredEntries uint64
	// SegmentIdentical reports that the reopened store served the full
	// retained segment byte-for-byte identically to the live log.
	SegmentIdentical bool
	// AuditFailures counts provable problems found when the recovered
	// segment was verified against the live log's authenticator and
	// replayed through the graph-construction algorithm (0 = clean audit).
	AuditFailures int
}

func (r *LongRetentionReport) String() string {
	return fmt.Sprintf("%-13s cold=%d entries on disk; metrics identical=%v; recovered %s (%d entries, segment identical=%v, audit failures=%d)",
		r.Config, r.ColdEntries, r.Identical, r.Recovered, r.RecoveredEntries, r.SegmentIdentical, r.AuditFailures)
}

// DefaultHotTail is the resident-entry cap LongRetention applies when the
// caller does not choose one: small enough that paper-scale runs spill most
// of their history, large enough to keep the online path out of the store.
const DefaultHotTail = 128

// LongRetention runs one configuration with every node's log spilled to a
// segment store under dir and a bounded hot tail, then
//
//  1. recomputes the Figure 5/6 series over the spilled logs and checks
//     them against an identically seeded in-memory baseline run (every
//     deterministic metric must be bit-identical),
//  2. reopens one node's store as a restarted node would, which replays the
//     data file and re-verifies the hash chain against the persisted base
//     hash and the last synced head, and
//  3. checks the recovered log serves the retained segment byte-for-byte
//     and passes a full audit against the live node's own authenticator.
//
// At Scale 1.0 this is the paper-sized Thist experiment; tests run it at
// the usual reduced scales.
func LongRetention(name ConfigName, o Options, dir string) (*LongRetentionReport, error) {
	o = o.normalize()
	o.LogDir = dir
	if o.LogHotTail == 0 {
		o.LogHotTail = DefaultHotTail
	}
	res, err := Run(name, o)
	if err != nil {
		return nil, err
	}
	defer res.Net.CloseLogs()
	rep := &LongRetentionReport{Config: name, Fig6: Figure6(res), Fig5: Figure5(res)}

	// The same run without a store: every deterministic series must match.
	om := o
	om.LogDir = ""
	om.LogHotTail = 0
	mem, err := Run(name, om)
	if err != nil {
		return nil, err
	}
	rep.BaselineFig6 = Figure6(mem)
	rep.BaselineFig5 = Figure5(mem)
	rep.Identical = rep.Fig6 == rep.BaselineFig6 && rep.Fig5 == rep.BaselineFig5

	// Pick the node with the most spilled history as the recovery target.
	var target types.NodeID
	var most uint64
	for _, id := range res.Net.Nodes() {
		lg := res.Net.Node(id).Log
		cold := lg.ColdEntries()
		rep.ColdEntries += cold
		if lg.Len() > 0 && (target == "" || cold > most) {
			target, most = id, cold
		}
	}
	if target == "" {
		return nil, fmt.Errorf("eval: no node with a non-empty log in %s", name)
	}
	rep.Recovered = target

	live := res.Net.Node(target).Log
	liveSeg, err := live.Segment(live.FirstSeq(), live.Len())
	if err != nil {
		return nil, err
	}
	auth, err := live.AuthenticatorAt(live.Len())
	if err != nil {
		return nil, err
	}

	// Restart recovery: reopen the store while the live log still holds it
	// (the process never closed it; Run's end-of-run sync plays the role of
	// a deployment's periodic sync). Open replays the data file and
	// re-verifies the chain against the persisted base hash and the synced
	// head; torn-tail crash repair is covered by the seclog store tests. A
	// nil key is enough: the recovered log only serves reads.
	cfg := o.simCfg().Core
	recovered, err := seclog.Open(dir, target, cfg.Suite, nil, nil, o.LogHotTail)
	if err != nil {
		return nil, fmt.Errorf("eval: recovery of %s: %w", target, err)
	}
	defer recovered.Close()
	rep.RecoveredEntries = recovered.Len()
	if recovered.FirstSeq() != live.FirstSeq() || recovered.Len() != live.Len() ||
		!bytes.Equal(recovered.HeadHash(), live.HeadHash()) {
		return rep, fmt.Errorf("eval: recovered log of %s diverges: first=%d/%d len=%d/%d",
			target, recovered.FirstSeq(), live.FirstSeq(), recovered.Len(), live.Len())
	}
	recSeg, err := recovered.Segment(recovered.FirstSeq(), recovered.Len())
	if err != nil {
		return rep, err
	}
	rep.SegmentIdentical = bytes.Equal(wire.Encode(liveSeg), wire.Encode(recSeg))

	// Full audit of the recovered segment: verify it against the live
	// node's authenticator and replay it through the GCA (the querier's
	// wiring supplies the app-specific maybe-rule validator).
	q := res.NewQuerier()
	if err := q.Auditor.Replay(target, &core.RetrieveResponse{Segment: recSeg}, auth); err != nil {
		rep.AuditFailures = len(q.Auditor.Failures())
		return rep, fmt.Errorf("eval: audit of recovered %s: %w", target, err)
	}
	rep.AuditFailures = len(q.Auditor.Failures())
	return rep, nil
}
