// Store read-path probe: the wall-clock counterpart of seclog's
// BenchmarkStoreColdRead, runnable from snp-bench so the mmap-vs-pread
// cold-read ratio lands in BENCH_results.json next to the figure series.
package eval

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// ColdReadRow reports per-entry cold-decode cost through the two read
// paths: the mmap'd table region the store ships, and one positioned read
// syscall per record — the behavior tables replaced.
type ColdReadRow struct {
	Entries      int
	MmapNsPerOp  int64
	PreadNsPerOp int64
}

func (r ColdReadRow) String() string {
	ratio := 0.0
	if r.MmapNsPerOp > 0 {
		ratio = float64(r.PreadNsPerOp) / float64(r.MmapNsPerOp)
	}
	return fmt.Sprintf("cold-read entries=%d mmap=%dns/op pread=%dns/op (pread/mmap %.2fx)",
		r.Entries, r.MmapNsPerOp, r.PreadNsPerOp, ratio)
}

// ColdReadProbe builds a store-backed log of n entries under dir, seals
// everything into tables, and times decoding each entry cold — resident
// window of one, so every read goes to the table layer — through both
// paths.
func ColdReadProbe(dir string, n int) (ColdReadRow, error) {
	suite := cryptoutil.Ed25519SHA256
	key, err := cryptoutil.PooledKey(suite, 1)
	if err != nil {
		return ColdReadRow{}, err
	}
	l, err := seclog.NewStored(dir, "coldread", suite, key, nil, 1)
	if err != nil {
		return ColdReadRow{}, err
	}
	defer l.Close()
	for i := 0; i < n; i++ {
		l.Append(&seclog.Entry{T: types.Time(i + 1), Type: seclog.EIns,
			Tuple: types.MakeTuple("t", types.N("coldread"), types.I(int64(i)))})
	}
	// Seal the whole log into tables, then restore a tuning that will not
	// seal again mid-measurement.
	l.SetStoreTuning(1, 1<<20)
	if err := l.Sync(); err != nil {
		return ColdReadRow{}, err
	}
	l.SetStoreTuning(1<<30, 1<<20)
	if l.StoreTables() == 0 {
		return ColdReadRow{}, fmt.Errorf("eval: cold-read probe sealed no tables")
	}

	const rounds = 4
	ops := int64(rounds * n)

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for seq := uint64(1); seq <= uint64(n); seq++ {
			if _, err := l.Entry(seq); err != nil {
				return ColdReadRow{}, err
			}
		}
	}
	mmapNs := time.Since(start).Nanoseconds() / ops

	spans := l.StoreTableSpans()
	files := make([]*os.File, len(spans))
	for i, sp := range spans {
		f, err := os.Open(sp.Path)
		if err != nil {
			return ColdReadRow{}, err
		}
		defer f.Close()
		files[i] = f
	}
	buf := make([]byte, 1<<12)
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for i, sp := range spans {
			for j := range sp.Offs {
				ln := sp.Lens[j]
				if int(ln) > len(buf) {
					buf = make([]byte, ln)
				}
				if _, err := files[i].ReadAt(buf[:ln], sp.Offs[j]); err != nil {
					return ColdReadRow{}, err
				}
				e := new(seclog.Entry)
				if err := wire.Decode(buf[:ln], e); err != nil {
					return ColdReadRow{}, err
				}
			}
		}
	}
	preadNs := time.Since(start).Nanoseconds() / ops

	return ColdReadRow{Entries: n, MmapNsPerOp: mmapNs, PreadNsPerOp: preadNs}, nil
}
