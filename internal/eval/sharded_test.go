package eval

import (
	"fmt"
	"testing"
)

// figDigest runs one configuration under the given simulation worker count
// and digests every deterministic figure series: the Figure 5 traffic row,
// the Figure 6 log row, the Figure 7 operation counts (cache hits excluded
// — they depend on process-wide verification-cache warmth, not on the run),
// and the deterministic Figure 8 fields of the configuration's query
// (download byte categories and answer shape; replay/verify wall-clock is
// timing noise and excluded).
func figDigest(t *testing.T, name ConfigName, workers int, seed int64) string {
	t.Helper()
	res, err := Run(name, Options{Scale: 0.02, Seed: seed, SimWorkers: workers})
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, workers, err)
	}
	f5, f6 := Figure5(res), Figure6(res)
	snap := res.Net.CryptoStats()
	var fig8 string
	switch name {
	case Quagga:
		row, err := QuaggaDisappearQuery(res)
		if err != nil {
			t.Fatalf("%s workers=%d: disappear query: %v", name, workers, err)
		}
		fig8 = fmt.Sprintf("log=%d auth=%d ckpt=%d answer=%d red=%d",
			row.LogBytes, row.AuthBytes, row.CkptBytes, row.Answer, row.Red)
	case ChordSmall:
		row, err := ChordLookupQuery(res)
		if err != nil {
			t.Fatalf("%s workers=%d: lookup query: %v", name, workers, err)
		}
		fig8 = fmt.Sprintf("log=%d auth=%d ckpt=%d answer=%d red=%d",
			row.LogBytes, row.AuthBytes, row.CkptBytes, row.Answer, row.Red)
	}
	return fmt.Sprintf("fig5=%+v\nfig6=%+v\nops=%d/%d/%d/%d\nfig8={%s}\n",
		f5, f6, snap.Signs, snap.Verifies, snap.Hashes, snap.HashedBytes, fig8)
}

// TestShardedFiguresMatchSerial is the acceptance check for the parallel
// simulation driver: sharded runs (SimWorkers > 1) must produce bit-identical
// Figure 5/6/7 metric series and Figure 8 query answers to the serial
// reference scheduler, across seeds and worker counts.
func TestShardedFiguresMatchSerial(t *testing.T) {
	type cse struct {
		name  ConfigName
		seeds []int64
	}
	cases := []cse{{Quagga, []int64{1, 42}}, {ChordSmall, []int64{1}}}
	if testing.Short() {
		cases = []cse{{Quagga, []int64{1}}}
	}
	for _, c := range cases {
		for _, seed := range c.seeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed=%d", c.name, seed), func(t *testing.T) {
				ref := figDigest(t, c.name, 1, seed)
				for _, workers := range []int{2, 8} {
					if got := figDigest(t, c.name, workers, seed); got != ref {
						t.Errorf("workers=%d diverged:\nserial:\n%s\nsharded:\n%s", workers, ref, got)
					}
				}
			})
		}
	}
}
