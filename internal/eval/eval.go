// Package eval implements the paper's evaluation (§7): the five application
// configurations (Quagga, Chord-Small/Large, Hadoop-Small/Large) and the
// harnesses that regenerate every figure — network traffic (Fig. 5), log
// growth (Fig. 6), CPU cost (Fig. 7), query performance (Fig. 8), and Chord
// scalability (Fig. 9) — plus the §5.6 batching ablation.
//
// Absolute numbers differ from the paper (different substrate, different
// hardware, scaled-down workloads); the harness exists to reproduce the
// *shape* of each result. Scale factors let callers trade fidelity for run
// time.
package eval

import (
	"fmt"
	"time"

	"repro/internal/apps/bgp"
	"repro/internal/apps/chord"
	"repro/internal/apps/mapreduce"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload"
)

// Scale shrinks the workloads uniformly: 1.0 is the paper-sized experiment
// (15 minutes, 15,000 updates, 50/250 Chord nodes); the default used by
// tests and benches is much smaller.
type Scale float64

// dur scales a duration with a floor.
func (s Scale) dur(d types.Time) types.Time {
	v := types.Time(float64(d) * float64(s))
	if v < 10*types.Second {
		v = 10 * types.Second
	}
	return v
}

func (s Scale) count(n int) int {
	v := int(float64(n) * float64(s))
	if v < 10 {
		v = 10
	}
	return v
}

// ConfigName identifies one of the five evaluation configurations (§7.1).
type ConfigName string

// The five configurations.
const (
	Quagga      ConfigName = "Quagga"
	ChordSmall  ConfigName = "Chord-Small"
	ChordLarge  ConfigName = "Chord-Large"
	HadoopSmall ConfigName = "Hadoop-Small"
	HadoopLarge ConfigName = "Hadoop-Large"
)

// AllConfigs lists the configurations in the paper's order.
var AllConfigs = []ConfigName{Quagga, ChordSmall, ChordLarge, HadoopSmall, HadoopLarge}

// RunResult captures everything a finished run exposes to the figure
// harnesses.
type RunResult struct {
	Config   ConfigName
	Net      *simnet.Net
	Factory  types.MachineFactory
	Duration types.Time
	// BGP deployment (for queriers with the maybe validator), when relevant.
	BGP    *bgp.Deployment
	MR     *mapreduce.Deployment
	Chord  []types.NodeID
	RealMR bool
}

// NewQuerier builds a query session appropriate for the run's application.
func (r *RunResult) NewQuerier() *core.Querier {
	if r.BGP != nil {
		return r.BGP.NewQuerier()
	}
	return r.Net.NewQuerier(r.Factory)
}

// Options tweaks a run.
type Options struct {
	Scale  Scale
	Tbatch types.Time // 0 = no batching
	Suite  cryptoutil.Suite
	Seed   int64
	// LogDir, when set, backs every node's tamper-evident log with an
	// on-disk segment store rooted there (core.Config.LogDir). All
	// deterministic metric series are bit-identical to an in-memory run.
	LogDir string
	// LogHotTail bounds resident decoded log entries per node when LogDir
	// is set; zero keeps everything hot.
	LogHotTail int
	// AuditCache, when non-nil, is the persistent incremental-audit cache
	// every querier built from the run consults (core.Config.AuditCache):
	// re-auditing an unchanged segment skips the replica-machine replay. The
	// deterministic metric series are unaffected by hits (pinned by test).
	AuditCache *core.AuditCache
	// SimWorkers bounds how many per-node event shards the simulation
	// driver executes concurrently (simnet.Config.Workers): 0 or 1 is the
	// serial reference scheduler, negative uses GOMAXPROCS. Every
	// deterministic metric series is bit-identical across worker counts.
	SimWorkers int
	// OnNode is invoked with every node the deployment creates
	// (simnet.Config.OnNode); the adversary scenario family uses it to
	// compromise nodes at deploy time. Nil for honest runs.
	OnNode func(*core.Node)
}

func (o Options) normalize() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) simCfg() simnet.Config {
	cfg := simnet.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Core.Tbatch = o.Tbatch
	cfg.Core.LogDir = o.LogDir
	cfg.Core.LogHotTail = o.LogHotTail
	cfg.Core.AuditCache = o.AuditCache
	cfg.Workers = o.SimWorkers
	cfg.OnNode = o.OnNode
	if o.Suite != nil {
		cfg.Core.Suite = o.Suite
	}
	return cfg
}

// finishRun durably syncs store-backed logs (so healthy nodes' history is
// recoverable even when a peer faulted) and then surfaces node faults
// (signing failures, sticky store-write errors) as run errors — they used
// to panic, and must not pass silently. On error the stores are closed,
// since the caller gets no RunResult to close them through.
func finishRun(net *simnet.Net) error {
	err := net.SyncLogs()
	for _, id := range net.Nodes() {
		if nerr := net.Node(id).Err(); nerr != nil && err == nil {
			err = fmt.Errorf("eval: node %s faulted during the run: %w", id, nerr)
		}
	}
	if err != nil {
		_ = net.CloseLogs()
	}
	return err
}

// Run executes one configuration and returns its result.
func Run(name ConfigName, o Options) (*RunResult, error) {
	o = o.normalize()
	switch name {
	case Quagga:
		return runQuagga(o)
	case ChordSmall:
		return runChord(o, 50)
	case ChordLarge:
		return runChord(o, 250)
	case HadoopSmall:
		return runHadoop(o, 20, 10, 8<<10)
	case HadoopLarge:
		return runHadoop(o, 60, 10, 16<<10)
	default:
		return nil, fmt.Errorf("eval: unknown config %q", name)
	}
}

// runQuagga deploys the 10-network topology and injects a RouteViews-style
// trace from the stub networks (§7.1: ~15,000 updates over 15 minutes).
func runQuagga(o Options) (*RunResult, error) {
	dur := o.Scale.dur(15 * types.Minute)
	updates := o.Scale.count(15000)
	net := simnet.New(o.simCfg())
	d, err := bgp.Deploy(net, bgp.DefaultTopology(), types.Second, dur)
	if err != nil {
		return nil, err
	}
	stubs := []types.NodeID{"as51", "as52", "as53", "as61", "as62", "as63"}
	trace := workload.BGPTrace(o.Seed, updates, len(stubs), 200)
	for i, u := range trace {
		u := u
		at := types.Second + types.Time(int64(i))*(dur-5*types.Second)/types.Time(len(trace))
		stub := stubs[u.Origin]
		net.AtNode(stub, at, func() {
			sp := d.Speakers[stub]
			if u.Withdraw {
				sp.Withdraw(net.Node(stub), u.Prefix)
			} else {
				sp.Announce(net.Node(stub), u.Prefix)
			}
		})
	}
	net.Run(dur)
	if err := finishRun(net); err != nil {
		return nil, err
	}
	return &RunResult{Config: Quagga, Net: net, Factory: bgp.Factory(),
		Duration: dur, BGP: d}, nil
}

func runChord(o Options, n int) (*RunResult, error) {
	name := ChordSmall
	if n > 50 {
		name = ChordLarge
	}
	p := chord.DefaultParams(n)
	p.Duration = o.Scale.dur(15 * types.Minute)
	p.Lookups = o.Scale.count(2 * n)
	cfg := o.simCfg()
	net := simnet.New(cfg)
	names, err := chord.Deploy(net, p)
	if err != nil {
		return nil, err
	}
	net.Run(p.Duration)
	if err := finishRun(net); err != nil {
		return nil, err
	}
	return &RunResult{Config: name, Net: net, Factory: chord.Factory(),
		Duration: p.Duration, Chord: names}, nil
}

func runHadoop(o Options, mappers, reducers, bytesPerSplit int) (*RunResult, error) {
	name := HadoopSmall
	if mappers > 20 {
		name = HadoopLarge
	}
	cfg := o.simCfg()
	if cfg.Core.Tbatch == 0 {
		// The paper's Hadoop instrumentation sends one message per
		// (map, reduce) pair; batching reproduces that envelope shape.
		cfg.Core.Tbatch = 100 * types.Millisecond
	}
	net := simnet.New(cfg)
	splits := workload.Corpus(o.Seed, mappers, bytesPerSplit)
	dur := 60 * types.Second
	d, err := mapreduce.Deploy(net, mapreduce.Job{
		Mappers: mappers, Reducers: reducers, Splits: splits,
		StartAt: types.Second, ReduceAt: 30 * types.Second,
	})
	if err != nil {
		return nil, err
	}
	net.Run(dur)
	if err := finishRun(net); err != nil {
		return nil, err
	}
	return &RunResult{Config: name, Net: net, Factory: d.Factory(),
		Duration: dur, MR: d}, nil
}

// ---------------------------------------------------------------------------
// Figure 5: network traffic, normalized to the baseline.

// Fig5Row is one bar of Figure 5.
type Fig5Row struct {
	Config          ConfigName
	BaselineBytes   int64
	ProvenanceBytes int64
	AuthBytes       int64
	AckBytes        int64
	Messages        int64
	Envelopes       int64
	// Factor is SNP traffic divided by baseline traffic.
	Factor float64
}

func (r Fig5Row) String() string {
	return fmt.Sprintf("%-13s baseline=%8dB prov=%8dB auth=%8dB ack=%8dB msgs=%7d factor=%.2fx",
		r.Config, r.BaselineBytes, r.ProvenanceBytes, r.AuthBytes, r.AckBytes, r.Messages, r.Factor)
}

// Figure5 measures one configuration's traffic breakdown.
func Figure5(res *RunResult) Fig5Row {
	t := res.Net.Traffic
	row := Fig5Row{
		Config:          res.Config,
		BaselineBytes:   t.BaselineBytes,
		ProvenanceBytes: t.ProvenanceBytes,
		AuthBytes:       t.AuthBytes,
		AckBytes:        t.AckBytes,
		Messages:        t.Messages,
		Envelopes:       t.Envelopes,
	}
	if t.BaselineBytes > 0 {
		row.Factor = float64(t.TotalBytes()) / float64(t.BaselineBytes)
	}
	return row
}

// ---------------------------------------------------------------------------
// Figure 6: per-node log growth.

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	Config     ConfigName
	Nodes      int
	MBPerMin   float64 // per node, excluding checkpoints (as in the paper)
	CkptBytes  int64
	TotalBytes int64
	Entries    uint64
}

func (r Fig6Row) String() string {
	return fmt.Sprintf("%-13s nodes=%3d log=%.4f MB/min/node ckpt=%dB entries=%d",
		r.Config, r.Nodes, r.MBPerMin, r.CkptBytes, r.Entries)
}

// Figure6 measures per-node log growth.
func Figure6(res *RunResult) Fig6Row {
	s := res.Net.LogStats()
	row := Fig6Row{Config: res.Config, Nodes: s.Nodes,
		CkptBytes: s.CkptBytes, TotalBytes: s.GrossBytes, Entries: s.Entries}
	minutes := res.Duration.Seconds() / 60
	if s.Nodes > 0 && minutes > 0 {
		row.MBPerMin = float64(s.GrossBytes-s.CkptBytes) / (1 << 20) / float64(s.Nodes) / minutes
	}
	return row
}

// ---------------------------------------------------------------------------
// Figure 7: additional CPU load from crypto.

// CryptoCosts holds measured per-operation costs.
type CryptoCosts struct {
	Sign    time.Duration
	Verify  time.Duration
	HashKiB time.Duration // per KiB hashed
}

// MeasureCryptoCosts times the suite's operations (the §7.6 methodology:
// multiply operation counts by measured unit costs).
func MeasureCryptoCosts(suite cryptoutil.Suite) (CryptoCosts, error) {
	key, err := cryptoutil.PooledKey(suite, 999)
	if err != nil {
		return CryptoCosts{}, err
	}
	msg := make([]byte, 64)
	const iters = 20
	start := time.Now()
	var sig []byte
	for i := 0; i < iters; i++ {
		sig, _ = key.Sign(msg)
	}
	costs := CryptoCosts{Sign: time.Since(start) / iters}
	pub := key.Public()
	start = time.Now()
	for i := 0; i < iters; i++ {
		pub.Verify(msg, sig)
	}
	costs.Verify = time.Since(start) / iters
	buf := make([]byte, 1024)
	start = time.Now()
	for i := 0; i < 200; i++ {
		suite.Hash(buf)
	}
	costs.HashKiB = time.Since(start) / 200
	return costs, nil
}

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	Config     ConfigName
	Signs      uint64
	Verifies   uint64
	Hashes     uint64
	HashedKiB  uint64
	SignPct    float64 // % of one core over the run
	VerifyPct  float64
	HashPct    float64
	TotalPct   float64
	PerNodePct float64
}

func (r Fig7Row) String() string {
	return fmt.Sprintf("%-13s sign=%.3f%% verify=%.3f%% hash=%.3f%% total=%.3f%%/node (ops: %d/%d/%d)",
		r.Config, r.SignPct, r.VerifyPct, r.HashPct, r.PerNodePct, r.Signs, r.Verifies, r.Hashes)
}

// Figure7 converts operation counts into estimated CPU load.
func Figure7(res *RunResult, costs CryptoCosts) Fig7Row {
	snap := res.Net.CryptoStats()
	row := Fig7Row{Config: res.Config, Signs: snap.Signs, Verifies: snap.Verifies,
		Hashes: snap.Hashes, HashedKiB: snap.HashedBytes / 1024}
	wall := res.Duration.Seconds()
	if wall <= 0 {
		return row
	}
	row.SignPct = float64(snap.Signs) * costs.Sign.Seconds() / wall * 100
	row.VerifyPct = float64(snap.Verifies) * costs.Verify.Seconds() / wall * 100
	row.HashPct = float64(snap.HashedBytes) / 1024 * costs.HashKiB.Seconds() / wall * 100
	row.TotalPct = row.SignPct + row.VerifyPct + row.HashPct
	nodes := len(res.Net.Nodes())
	if nodes > 0 {
		row.PerNodePct = row.TotalPct / float64(nodes)
	}
	return row
}

// ---------------------------------------------------------------------------
// Figure 8: query turnaround and downloads.

// DownloadMbps is the assumed querier downlink (the paper estimates
// turnaround at 10 Mbps).
const DownloadMbps = 10.0

// Fig8Row is one query of Figure 8.
type Fig8Row struct {
	Query        string
	LogBytes     int64
	AuthBytes    int64
	CkptBytes    int64
	ReplayTime   time.Duration
	VerifyTime   time.Duration
	DownloadTime time.Duration
	Turnaround   time.Duration
	Answer       int // explanation vertices
	Red          int
}

func (r Fig8Row) String() string {
	return fmt.Sprintf("%-18s dl=%8dB (logs %d / auth %d / ckpt %d)  replay=%v verify=%v est-turnaround=%v answer=%d red=%d",
		r.Query, r.LogBytes+r.AuthBytes+r.CkptBytes, r.LogBytes, r.AuthBytes, r.CkptBytes,
		r.ReplayTime.Round(time.Millisecond), r.VerifyTime.Round(time.Millisecond),
		r.Turnaround.Round(time.Millisecond), r.Answer, r.Red)
}

func fig8Row(name string, q *core.Querier, expl *core.Explanation) Fig8Row {
	m := q.Metrics
	row := Fig8Row{
		Query: name, LogBytes: m.LogBytes, AuthBytes: m.AuthBytes, CkptBytes: m.CkptBytes,
		ReplayTime: m.ReplayTime, VerifyTime: m.VerifyTime,
	}
	bits := float64(m.TotalBytes()) * 8
	row.DownloadTime = time.Duration(bits / (DownloadMbps * 1e6) * float64(time.Second))
	row.Turnaround = row.DownloadTime + row.ReplayTime + row.VerifyTime
	if expl != nil {
		row.Answer = expl.Size()
		row.Red = len(expl.FindColor(provgraph.Red))
	}
	return row
}

// QuaggaDisappearQuery runs the §7.2 Quagga-Disappear query on a finished
// Quagga run: why did some stub's route disappear?
func QuaggaDisappearQuery(res *RunResult) (Fig8Row, error) {
	q := res.NewQuerier()
	// The traversal may cross onto any router, so the whole deployment is
	// the audit scope: verification and replica replay for every node run
	// on the worker pool while the query walk commits them on demand.
	q.BeginAuditScope(res.Net.Nodes(), 0)
	defer q.CloseScope()
	// Find a withdrawn route at a stub: audit the stub first.
	target := types.NodeID("as52")
	if err := q.EnsureAudited(target, 0); err != nil {
		return Fig8Row{}, err
	}
	q.Auditor.Finalize()
	var gone types.Tuple
	for _, v := range q.Auditor.Graph().ByHost(target) {
		if v.Type == provgraph.VBelieveDisappear && v.Tuple.Rel == "advRoute" {
			gone = v.Tuple
			break
		}
	}
	if gone.Rel == "" {
		return Fig8Row{}, fmt.Errorf("eval: no disappeared route at %s", target)
	}
	expl, err := q.Explain(target, gone, core.QueryOpts{Mode: core.ModeDisappear, Scope: 12})
	if err != nil {
		return Fig8Row{}, err
	}
	return fig8Row("Quagga-Disappear", q, expl), nil
}

// QuaggaBadGadgetQuery asks for the provenance of a recently flapping
// route (stands in for the BadGadget investigation on the trace-driven
// run: any replaced route works the same way).
func QuaggaBadGadgetQuery(res *RunResult) (Fig8Row, error) {
	q := res.NewQuerier()
	q.BeginAuditScope(res.Net.Nodes(), 0)
	defer q.CloseScope()
	target := types.NodeID("as30")
	if err := q.EnsureAudited(target, 0); err != nil {
		return Fig8Row{}, err
	}
	q.Auditor.Finalize()
	var route types.Tuple
	for _, v := range q.Auditor.Graph().ByHost(target) {
		if v.Type == provgraph.VBelieveAppear && v.Tuple.Rel == "advRoute" {
			route = v.Tuple // keep the last: the most recent flap
		}
	}
	if route.Rel == "" {
		return Fig8Row{}, fmt.Errorf("eval: no route appearances at %s", target)
	}
	expl, err := q.Explain(target, route, core.QueryOpts{Mode: core.ModeAppear, Scope: 12})
	if err != nil {
		return Fig8Row{}, err
	}
	return fig8Row("Quagga-BadGadget", q, expl), nil
}

// ChordLookupQuery runs the §7.2 Chord-Lookup query: the provenance of one
// stored lookup result.
func ChordLookupQuery(res *RunResult) (Fig8Row, error) {
	q := res.NewQuerier()
	// The candidate scan demands nodes in res.Chord order, so the scope
	// list doubles as the pipeline order: workers stay a few nodes ahead of
	// the serial commit frontier.
	q.BeginAuditScope(res.Chord, 0)
	defer q.CloseScope()
	name := fmt.Sprintf("Chord-Lookup(%s)", res.Config)
	for _, n := range res.Chord {
		if err := q.EnsureAudited(n, 0); err != nil {
			continue
		}
		q.Auditor.Finalize()
		for _, v := range q.Auditor.Graph().ByHost(n) {
			if v.Type == provgraph.VExist && v.Tuple.Rel == "result" && v.Open() {
				expl, err := q.Explain(n, v.Tuple, core.QueryOpts{Scope: 16})
				if err != nil {
					return Fig8Row{}, err
				}
				return fig8Row(name, q, expl), nil
			}
		}
	}
	return Fig8Row{}, fmt.Errorf("eval: no lookup results found")
}

// HadoopSquirrelQuery runs the §7.2 Hadoop-Squirrel query: the provenance
// of one output pair.
func HadoopSquirrelQuery(res *RunResult) (Fig8Row, error) {
	q := res.NewQuerier()
	q.BeginAuditScope(res.Net.Nodes(), 0)
	defer q.CloseScope()
	owner := res.MR.OutputOwner("squirrel")
	if err := q.EnsureAudited(owner, 0); err != nil {
		return Fig8Row{}, err
	}
	q.Auditor.Finalize()
	var out types.Tuple
	for _, v := range q.Auditor.Graph().ByHost(owner) {
		if v.Type == provgraph.VExist && v.Tuple.Rel == "out" && v.Tuple.Args[1].Str == "squirrel" {
			out = v.Tuple
		}
	}
	if out.Rel == "" {
		return Fig8Row{}, fmt.Errorf("eval: no squirrel output on %s", owner)
	}
	expl, err := q.Explain(owner, out, core.QueryOpts{})
	if err != nil {
		return Fig8Row{}, err
	}
	return fig8Row(fmt.Sprintf("Hadoop-Squirrel(%s)", res.Config), q, expl), nil
}

// ---------------------------------------------------------------------------
// Figure 9: Chord scalability.

// Fig9Row is one point of Figure 9.
type Fig9Row struct {
	N               int
	SNPBytesPerSec  float64 // per node
	BaseBytesPerSec float64
	LogKBPerMin     float64 // per node
}

func (r Fig9Row) String() string {
	return fmt.Sprintf("N=%3d  traffic=%8.1f B/s/node (baseline %8.1f)  log=%7.2f kB/min/node",
		r.N, r.SNPBytesPerSec, r.BaseBytesPerSec, r.LogKBPerMin)
}

// Figure9 runs Chord at the given sizes and reports per-node traffic and
// log growth.
func Figure9(sizes []int, o Options) ([]Fig9Row, error) {
	o = o.normalize()
	rows := make([]Fig9Row, 0, len(sizes))
	for _, n := range sizes {
		res, err := runChord(o, n)
		if err != nil {
			return nil, err
		}
		secs := res.Duration.Seconds()
		t := res.Net.Traffic
		s := res.Net.LogStats()
		row := Fig9Row{N: n}
		row.SNPBytesPerSec = float64(t.TotalBytes()) / secs / float64(n)
		row.BaseBytesPerSec = float64(t.BaselineBytes) / secs / float64(n)
		row.LogKBPerMin = float64(s.GrossBytes-s.CkptBytes) / 1024 / (secs / 60) / float64(n)
		// Chord-Large and Chord-Small share config names; override by size.
		rows = append(rows, row)
		// Release store-backed logs before the next size reuses node names.
		_ = res.Net.CloseLogs()
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Batching ablation (§5.6 / §7.4 / §7.6).

// BatchRow compares one configuration with and without Tbatch.
type BatchRow struct {
	Tbatch        types.Time
	Envelopes     int64
	Messages      int64
	Signs         uint64
	TrafficFactor float64
}

func (r BatchRow) String() string {
	return fmt.Sprintf("Tbatch=%-8v envelopes=%7d msgs=%7d signs=%7d factor=%.2fx",
		r.Tbatch, r.Envelopes, r.Messages, r.Signs, r.TrafficFactor)
}

// BatchingAblation runs Quagga with and without message batching.
func BatchingAblation(o Options) (without, with BatchRow, err error) {
	o = o.normalize()
	res1, err := runQuagga(o)
	if err != nil {
		return without, with, err
	}
	without = batchRow(res1, 0)
	_ = res1.Net.CloseLogs()
	o2 := o
	o2.Tbatch = 100 * types.Millisecond
	res2, err := runQuagga(o2)
	if err != nil {
		return without, with, err
	}
	with = batchRow(res2, o2.Tbatch)
	_ = res2.Net.CloseLogs()
	return without, with, nil
}

func batchRow(res *RunResult, tb types.Time) BatchRow {
	t := res.Net.Traffic
	snap := res.Net.CryptoStats()
	row := BatchRow{Tbatch: tb, Envelopes: t.Envelopes, Messages: t.Messages, Signs: snap.Signs}
	if t.BaselineBytes > 0 {
		row.TrafficFactor = float64(t.TotalBytes()) / float64(t.BaselineBytes)
	}
	return row
}
