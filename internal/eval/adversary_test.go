package eval

import (
	"testing"

	"repro/internal/adversary"
)

// TestAdversaryScenariosQuagga runs the scenario family on the Quagga
// configuration: every non-benign behavior must be detected, and no
// scenario may implicate an honest node.
func TestAdversaryScenariosQuagga(t *testing.T) {
	behaviors := adversary.Catalog()
	if testing.Short() {
		behaviors = behaviors[:5] // the provable tier
	}
	sum, err := AdversaryScenarios(Quagga, Options{Scale: 0.02}, 1, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sum.Rows {
		t.Log(r)
		if len(r.FalselyAccused) != 0 {
			t.Errorf("%s: honest nodes accused: %v", r.Behavior, r.FalselyAccused)
		}
		if r.Class != adversary.Benign && !r.Detected {
			t.Errorf("%s: not detected", r.Behavior)
		}
	}
	if sum.FalseAccusations() != 0 {
		t.Errorf("false accusations: %d", sum.FalseAccusations())
	}
	if rate := sum.DetectionRate(); rate != 1.0 {
		t.Errorf("detection rate = %.2f, want 1.0", rate)
	}
}

// TestAdversaryScenariosMultiNode compromises two nodes at once (k=2).
func TestAdversaryScenariosMultiNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node scenario skipped in short mode")
	}
	p, _ := adversary.ProfileByName("forge")
	sum, err := AdversaryScenarios(Quagga, Options{Scale: 0.02}, 2, []adversary.Profile{p})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Rows[0]
	t.Log(r)
	if len(r.Compromised) != 2 {
		t.Fatalf("compromised = %v, want 2 nodes", r.Compromised)
	}
	if !r.Detected || len(r.FalselyAccused) != 0 {
		t.Errorf("k=2 scenario: detected=%v falselyAccused=%v", r.Detected, r.FalselyAccused)
	}
}

func TestCompromisedFor(t *testing.T) {
	for _, cfg := range AllConfigs {
		ids, err := CompromisedFor(cfg, "forge", 2)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if len(ids) != 2 {
			t.Errorf("%s: got %v", cfg, ids)
		}
	}
	// On Hadoop, acknowledgment attacks sit on the receiver side.
	mids, _ := CompromisedFor(HadoopSmall, "forge", 1)
	rids, _ := CompromisedFor(HadoopSmall, "withhold-acks", 1)
	if mids[0] == rids[0] {
		t.Errorf("Hadoop positions not behavior-aware: %v vs %v", mids, rids)
	}
	if _, err := CompromisedFor("nope", "forge", 1); err == nil {
		t.Error("unknown config accepted")
	}
	if _, err := SelectBehaviors("forge,dormant"); err != nil {
		t.Error(err)
	}
	if _, err := SelectBehaviors("bogus"); err == nil {
		t.Error("unknown behavior accepted")
	}
}
