package eval

import (
	"testing"
)

// TestQueryThroughput smoke-tests the qps harness at tiny scale: both
// passes complete, the cold pass populates the persistent audit cache, and
// the warm pass is served entirely from it (QueryThroughput itself fails on
// any warm miss).
func TestQueryThroughput(t *testing.T) {
	rows, err := QueryThroughput(Options{Scale: 0.02}, 3, 9, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	cold, warm := rows[0], rows[1]
	t.Log(cold)
	t.Log(warm)
	if cold.Label != "cold-cache" || warm.Label != "warm-cache" {
		t.Fatalf("row labels = %q, %q", cold.Label, warm.Label)
	}
	if cold.Misses == 0 {
		t.Error("cold pass recorded no cache misses; the cache was never consulted")
	}
	if warm.Hits == 0 {
		t.Error("warm pass recorded no cache hits")
	}
	if warm.Misses != 0 {
		t.Errorf("warm pass missed %d times", warm.Misses)
	}
	for _, r := range rows {
		if r.QPS <= 0 || r.P50 <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: implausible latency stats: %+v", r.Label, r)
		}
	}
}

// TestColdReadProbe smoke-tests the snp-bench cold-read row: both read
// paths decode every sealed entry and report positive per-op costs.
func TestColdReadProbe(t *testing.T) {
	row, err := ColdReadProbe(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(row)
	if row.MmapNsPerOp <= 0 || row.PreadNsPerOp <= 0 {
		t.Errorf("non-positive per-op costs: %+v", row)
	}
}
