package eval

// This file is the adversary scenario family: the evaluation configurations
// re-run with k compromised nodes, reporting detection-rate and evidence
// metrics in the spirit of §6.1's case studies (route hijacks, eclipse
// attacks, tampered MapReduce outputs) — but systematically, over the whole
// behavior library of internal/adversary.

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/apps/chord"
	"repro/internal/apps/mapreduce"
	"repro/internal/types"
)

// AdversaryRow is one (configuration, behavior) scenario's outcome.
type AdversaryRow struct {
	Config      ConfigName
	Behavior    string
	Class       adversary.Class
	Compromised []types.NodeID

	// Detected reports whether any evidence implicates a compromised node.
	Detected bool
	// Failures/RedHosts count the provable evidence; Unresponsive and
	// Notes count the leads.
	Failures     int
	RedHosts     int
	Unresponsive int
	Notes        int
	// FalselyAccused lists honest nodes implicated by provable evidence —
	// the accuracy guarantee demands it stays empty in every scenario.
	FalselyAccused []types.NodeID
}

func (r AdversaryRow) String() string {
	return fmt.Sprintf("%-13s %-13s k=%d class=%-9s detected=%-5v failures=%-3d red=%-2d unresp=%-2d notes=%-3d falsely-accused=%v",
		r.Config, r.Behavior, len(r.Compromised), r.Class, r.Detected,
		r.Failures, r.RedHosts, r.Unresponsive, r.Notes, r.FalselyAccused)
}

// AdversarySummary aggregates a configuration's scenario family.
type AdversarySummary struct {
	Config ConfigName
	Rows   []AdversaryRow
}

// DetectionRate is the fraction of non-benign scenarios whose evidence
// implicates a compromised node. Benign behaviors have nothing to detect,
// so a family with no non-benign scenarios is vacuously perfect (1.0) —
// callers gate on rate != 1.0.
func (s AdversarySummary) DetectionRate() float64 {
	total, detected := 0, 0
	for _, r := range s.Rows {
		if r.Class == adversary.Benign {
			continue
		}
		total++
		if r.Detected {
			detected++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(detected) / float64(total)
}

// FalseAccusations counts honest nodes implicated across all scenarios.
func (s AdversarySummary) FalseAccusations() int {
	n := 0
	for _, r := range s.Rows {
		n += len(r.FalselyAccused)
	}
	return n
}

// CompromisedFor picks k deterministic compromised nodes for a
// configuration and behavior: transit routers for Quagga, spread ring
// members for Chord, and for Hadoop a position matched to the behavior —
// §6.1's attackers choose where to sit, and on a unidirectional dataflow an
// acknowledgment attack is vacuous on a mapper (which only sends), so the
// ack-tier behaviors compromise a reducer instead.
func CompromisedFor(name ConfigName, behavior string, k int) ([]types.NodeID, error) {
	if k < 1 {
		k = 1
	}
	receiverSide := behavior == "withhold-acks" || behavior == "replay-acks"
	var pool []types.NodeID
	switch name {
	case Quagga:
		pool = []types.NodeID{"as30", "as40", "as10", "as20"}
	case ChordSmall, ChordLarge:
		pool = []types.NodeID{chord.NodeName(3), chord.NodeName(17), chord.NodeName(31), chord.NodeName(42)}
	case HadoopSmall, HadoopLarge:
		pool = []types.NodeID{mapreduce.MapperName(0), mapreduce.MapperName(7), mapreduce.MapperName(3)}
		if receiverSide {
			pool = []types.NodeID{mapreduce.ReducerName(0), mapreduce.ReducerName(3), mapreduce.ReducerName(7)}
		}
	default:
		return nil, fmt.Errorf("eval: no adversary positions for config %q", name)
	}
	if k > len(pool) {
		k = len(pool)
	}
	return pool[:k], nil
}

// SelectBehaviors resolves a comma-separated behavior filter ("all" or
// empty selects the whole catalog).
func SelectBehaviors(filter string) ([]adversary.Profile, error) {
	if filter == "" || filter == "all" {
		return adversary.Catalog(), nil
	}
	var out []adversary.Profile
	for _, name := range strings.Split(filter, ",") {
		p, ok := adversary.ProfileByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("eval: unknown adversary behavior %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// AdversaryScenarios runs one configuration once per behavior with k
// compromised nodes, audits the whole deployment after each run, and
// reports the evidence metrics. Behaviors are armed at deploy time through
// Options.OnNode, so the honest deployment code runs unmodified.
func AdversaryScenarios(name ConfigName, o Options, k int, behaviors []adversary.Profile) (AdversarySummary, error) {
	sum := AdversarySummary{Config: name}
	for _, p := range behaviors {
		compromised, err := CompromisedFor(name, p.Name, k)
		if err != nil {
			return sum, err
		}
		plan := adversary.Plan{}
		for _, id := range compromised {
			plan[id] = []adversary.Behavior{p.New()}
		}
		ao := o
		ao.OnNode = plan.Hook()
		res, err := Run(name, ao)
		if err != nil {
			return sum, fmt.Errorf("eval: %s under %s: %w", name, p.Name, err)
		}
		q := res.NewQuerier()
		v := adversary.AuditAll(q, res.Net.Maintainer)
		sum.Rows = append(sum.Rows, AdversaryRow{
			Config:         name,
			Behavior:       p.Name,
			Class:          p.Class,
			Compromised:    compromised,
			Detected:       v.Detected(compromised),
			Failures:       len(v.Failures),
			RedHosts:       len(v.RedHosts),
			Unresponsive:   len(v.Unresponsive),
			Notes:          len(v.Notes),
			FalselyAccused: v.FalselyAccused(compromised),
		})
		_ = res.Net.CloseLogs()
	}
	return sum, nil
}
