package eval

import (
	"testing"

	"repro/internal/cryptoutil"
)

const testScale = Scale(0.02)

func TestQuaggaRunAndFigures(t *testing.T) {
	res, err := Run(Quagga, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	f5 := Figure5(res)
	if f5.Factor <= 1 {
		t.Errorf("Quagga factor = %.2f, want > 1 (Figure 5's headline)", f5.Factor)
	}
	f6 := Figure6(res)
	if f6.MBPerMin <= 0 {
		t.Errorf("Figure6 = %+v", f6)
	}
	costs, err := MeasureCryptoCosts(cryptoutil.Ed25519SHA256)
	if err != nil {
		t.Fatal(err)
	}
	f7 := Figure7(res, costs)
	if f7.Signs == 0 || f7.TotalPct <= 0 {
		t.Errorf("Figure7 = %+v", f7)
	}
	r8, err := QuaggaDisappearQuery(res)
	if err != nil {
		t.Fatalf("disappear query: %v", err)
	}
	if r8.Answer == 0 || r8.Turnaround <= 0 {
		t.Errorf("Fig8 disappear = %+v", r8)
	}
	if r8.Red != 0 {
		t.Errorf("red vertices in a benign trace: %+v", r8)
	}
	r8b, err := QuaggaBadGadgetQuery(res)
	if err != nil {
		t.Fatalf("badgadget query: %v", err)
	}
	if r8b.Answer == 0 {
		t.Errorf("Fig8 badgadget = %+v", r8b)
	}
}

func TestChordSmallRunAndQueries(t *testing.T) {
	res, err := Run(ChordSmall, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	f5 := Figure5(res)
	if f5.Factor <= 1 || f5.Messages == 0 {
		t.Errorf("Fig5 = %+v", f5)
	}
	row, err := ChordLookupQuery(res)
	if err != nil {
		t.Fatalf("lookup query: %v", err)
	}
	if row.Answer == 0 || row.Red != 0 {
		t.Errorf("Fig8 chord = %+v", row)
	}
}

func TestHadoopSmallRunAndQueries(t *testing.T) {
	res, err := Run(HadoopSmall, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	f5 := Figure5(res)
	// Hadoop's overhead factor must be far below Quagga's (the Figure 5
	// shape: big payloads amortize the fixed crypto overhead).
	if f5.Factor <= 1 {
		t.Errorf("Fig5 factor = %.3f, want > 1", f5.Factor)
	}
	quagga, err := Run(Quagga, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	fq := Figure5(quagga)
	if f5.Factor >= fq.Factor {
		t.Errorf("Hadoop factor %.2f not below Quagga factor %.2f (Figure 5 shape)", f5.Factor, fq.Factor)
	}
	row, err := HadoopSquirrelQuery(res)
	if err != nil {
		t.Fatalf("squirrel query: %v", err)
	}
	if row.Answer == 0 || row.Red != 0 {
		t.Errorf("Fig8 squirrel = %+v", row)
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size Chord scaling run skipped in -short mode")
	}
	rows, err := Figure9([]int{10, 20}, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.SNPBytesPerSec <= r.BaseBytesPerSec {
			t.Errorf("SNP traffic not above baseline: %+v", r)
		}
		if r.LogKBPerMin <= 0 {
			t.Errorf("no log growth: %+v", r)
		}
	}
	// O(log N): per-node traffic grows slowly — going 10→20 nodes must not
	// double per-node traffic.
	if rows[1].SNPBytesPerSec > 2*rows[0].SNPBytesPerSec {
		t.Errorf("per-node traffic scales superlinearly: %v", rows)
	}
}

func TestBatchingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("two-run ablation skipped in -short mode")
	}
	without, with, err := BatchingAblation(Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if with.Envelopes >= without.Envelopes {
		t.Errorf("batching did not reduce envelopes: %v vs %v", with, without)
	}
	if with.Signs >= without.Signs {
		t.Errorf("batching did not reduce signatures: %v vs %v", with, without)
	}
	if with.TrafficFactor >= without.TrafficFactor {
		t.Errorf("batching did not reduce the overhead factor: %.2f vs %.2f",
			with.TrafficFactor, without.TrafficFactor)
	}
}
