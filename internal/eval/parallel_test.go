package eval

import (
	"fmt"
	"testing"

	"repro/internal/provgraph"
)

// fullAuditDigest audits every node of a finished run (serially or through
// the parallel pipeline) and digests the graph and metrics.
func fullAuditDigest(t *testing.T, res *RunResult, parallel bool) string {
	t.Helper()
	q := res.NewQuerier()
	nodes := res.Net.Nodes()
	if parallel {
		q.Parallelism = 4
		q.BeginAuditScope(nodes, 0)
		defer q.CloseScope()
	}
	for _, n := range nodes {
		if err := q.EnsureAudited(n, 0); err != nil {
			t.Fatalf("audit %s: %v", n, err)
		}
	}
	q.Auditor.Finalize()
	g := q.Auditor.Graph()
	var yellow, black, red int
	for _, v := range g.Vertices() {
		switch v.Color {
		case provgraph.Yellow:
			yellow++
		case provgraph.Black:
			black++
		case provgraph.Red:
			red++
		}
	}
	return fmt.Sprintf("v=%d e=%d y=%d b=%d r=%d fails=%d log=%d auth=%d ckpt=%d contacted=%d micro=%d",
		g.Len(), g.EdgeCount(), yellow, black, red, len(q.Auditor.Failures()),
		q.Metrics.LogBytes, q.Metrics.AuthBytes, q.Metrics.CkptBytes,
		q.Metrics.NodesContacted, q.Metrics.Microqueries)
}

// TestParallelFullAuditMatchesSerial audits a whole Chord deployment twice —
// once sequentially, once through the worker-pool pipeline — and requires
// identical graph summaries and metrics. This is the large-scale companion
// to the per-fault comparison in the simnet package.
func TestParallelFullAuditMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-deployment audit comparison skipped in -short mode")
	}
	res, err := Run(ChordSmall, Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	serial := fullAuditDigest(t, res, false)
	parallel := fullAuditDigest(t, res, true)
	if serial != parallel {
		t.Errorf("parallel audit diverged:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}
