// Package core implements the SNooPy node (§5): the graph recorder (the
// tamper-evident log plus the commitment protocol of §5.4), the microquery
// module (§5.5: retrieve, verify, deterministic replay, consistency check),
// and the query processor (§5.1: macroqueries with scope k over the
// provenance graph). It is the paper's primary contribution assembled from
// the substrate packages.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
)

// Config carries the SNooPy deployment parameters of §5.2 and §5.6.
type Config struct {
	// Tprop is the maximum benign message propagation delay (assumption 4).
	Tprop types.Time
	// DeltaClock is the maximum clock skew between nodes (assumption 5).
	DeltaClock types.Time
	// Tbatch is the message-batching window (§5.6); zero disables batching
	// and every message travels in its own envelope.
	Tbatch types.Time
	// CheckpointEvery is the interval between checkpoints; zero disables
	// checkpointing (replay then always starts from the beginning).
	CheckpointEvery types.Time
	// Suite selects the crypto suite; nil means cryptoutil.Ed25519SHA256.
	Suite cryptoutil.Suite
	// LogDir, when non-empty, backs each node's tamper-evident log with an
	// on-disk segment store rooted at this directory (one data file plus a
	// sidecar per node), lifting the in-memory retention limit of §5.6.
	LogDir string
	// LogHotTail bounds the number of decoded log entries kept resident
	// when the log is store-backed; older entries are decoded from disk on
	// demand. Zero (or negative) keeps every retained entry hot.
	LogHotTail int
	// LogRecover makes NewNode reopen an existing segment store in LogDir
	// (crash recovery: replay, chain re-verification, torn-tail repair)
	// instead of creating a fresh one. Without it, NewNode truncates any
	// previous store for the node — the right semantics for a fresh run,
	// destructive for a restart.
	LogRecover bool
	// AuditCache, when non-nil, lets auditors built from this config skip
	// the replica-machine replay of segments they have audited before (the
	// persistent incremental-audit cache; see auditcache.go for what a hit
	// is and is not allowed to trust).
	AuditCache *AuditCache
}

func (c Config) suite() cryptoutil.Suite {
	if c.Suite == nil {
		return cryptoutil.Ed25519SHA256
	}
	return c.Suite
}

// DefaultConfig mirrors the paper's evaluation setup: second-scale Tprop
// and skew, no batching, checkpoints every minute.
func DefaultConfig() Config {
	return Config{
		Tprop:           2 * types.Second,
		DeltaClock:      2 * types.Second,
		Tbatch:          0,
		CheckpointEvery: types.Minute,
		Suite:           cryptoutil.Ed25519SHA256,
	}
}

// Clock supplies a node's local time (assumption 5: per-node clocks with
// bounded skew).
type Clock interface {
	Now() types.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() types.Time

// Now implements Clock.
func (f ClockFunc) Now() types.Time { return f() }

// Directory maps node identities to their public keys; it stands in for the
// paper's offline CA (assumption 2).
type Directory struct {
	mu   sync.RWMutex
	keys map[types.NodeID]cryptoutil.PublicKey
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{keys: make(map[types.NodeID]cryptoutil.PublicKey)}
}

// Register binds a node to a public key.
func (d *Directory) Register(id types.NodeID, key cryptoutil.PublicKey) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[id] = key
}

// Key returns the public key of a node.
func (d *Directory) Key(id types.NodeID) (cryptoutil.PublicKey, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[id]
	if !ok {
		return nil, fmt.Errorf("core: no certificate for node %s", id)
	}
	return k, nil
}

// Nodes returns all registered node IDs (unsorted).
func (d *Directory) Nodes() []types.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]types.NodeID, 0, len(d.keys))
	for id := range d.keys {
		out = append(out, id)
	}
	return out
}

// Maintainer collects missing-acknowledgment notifications (§5.4): a
// correct node that does not receive an ack within 2·Tprop immediately
// reports it, which prevents the missing ack from being misattributed
// during later audits.
type Maintainer struct {
	mu    sync.Mutex
	notes map[noteKey]bool
}

type noteKey struct {
	reporter types.NodeID
	id       types.MessageID
}

// NewMaintainer returns an empty maintainer registry.
func NewMaintainer() *Maintainer { return &Maintainer{notes: make(map[noteKey]bool)} }

// NotifyMissingAck records that reporter never received an ack for id.
func (m *Maintainer) NotifyMissingAck(reporter types.NodeID, id types.MessageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.notes[noteKey{reporter, id}] = true
}

// WasNotified reports whether a missing ack was reported for (reporter, id).
func (m *Maintainer) WasNotified(reporter types.NodeID, id types.MessageID) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.notes[noteKey{reporter, id}]
}

// Count returns the number of recorded notifications.
func (m *Maintainer) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.notes)
}

// MissingAckNote is one recorded §5.4 report: Reporter never received an
// acknowledgment for ID. A note implicates the exchange, not a single node
// (the receiver may have withheld the ack, or the channel may have failed);
// it is a lead for the maintainer, not provable evidence.
type MissingAckNote struct {
	Reporter types.NodeID
	ID       types.MessageID
}

// Notes returns every recorded notification, sorted by (Reporter, ID).
func (m *Maintainer) Notes() []MissingAckNote {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MissingAckNote, 0, len(m.notes))
	for k := range m.notes {
		out = append(out, MissingAckNote{Reporter: k.reporter, ID: k.id})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Reporter != b.Reporter {
			return a.Reporter < b.Reporter
		}
		if a.ID.Src != b.ID.Src {
			return a.ID.Src < b.ID.Src
		}
		if a.ID.Dst != b.ID.Dst {
			return a.ID.Dst < b.ID.Dst
		}
		return a.ID.Seq < b.ID.Seq
	})
	return out
}

// ExtantsOf extracts checkpointable state from a machine, converting to
// seclog items. Machines that do not implement types.StateDumper yield an
// empty item list (their snapshot alone must suffice for replay).
func ExtantsOf(m types.Machine) []seclog.ExtantItem {
	d, ok := m.(types.StateDumper)
	if !ok {
		return nil
	}
	ext := d.DumpExtants()
	items := make([]seclog.ExtantItem, len(ext))
	for i, e := range ext {
		it := seclog.ExtantItem{Tuple: e.Tuple, Appeared: e.Appeared, Local: e.Local}
		for _, b := range e.Believed {
			it.Believed = append(it.Believed, seclog.BelievedRecord{Origin: b.Origin, Since: b.Since})
		}
		items[i] = it
	}
	return items
}
