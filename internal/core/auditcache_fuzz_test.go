package core

import (
	"testing"

	"repro/internal/types"
)

// FuzzAuditCacheDecode drives the cached-audit body parser with arbitrary
// bytes. The cache lives in local files an attacker (or bit rot) can
// rewrite, and the integrity prefix only guards against accidental
// corruption — decodeAuditBody itself must never panic and must bound every
// allocation, whatever the bytes. An accepted body must re-encode stably:
// its canonical encoding decodes to the same encoding.
func FuzzAuditCacheDecode(f *testing.F) {
	ops := []replayOp{
		{kind: opEvent},
		{kind: opEvent, outs: []types.Output{{
			Kind: types.OutDerive, Rule: "r",
			Tuple: types.MakeTuple("d", types.N("n1"), types.I(7)),
			Body:  []types.Tuple{types.MakeTuple("b", types.I(1))},
			First: true,
		}}},
		{kind: opSeedExist, node: "n1", tup: types.MakeTuple("s", types.I(2)), t: 5},
		{kind: opSeedBelieve, node: "n1", origin: "n2", tup: types.MakeTuple("s", types.I(3)), t: 6},
		{kind: opImplied, node: "n2", seq: 4, commit: &impliedCommit{
			hash: []byte{1, 2, 3}, t: 7, reporter: "n1",
			msgs: []types.Message{{Src: "n1", Dst: "n2", Pol: types.PolAppear,
				Tuple: types.MakeTuple("m", types.I(9)), SendTime: 7, Seq: 4}},
		}},
	}
	real := encodeAuditBody(true, []byte{9, 9, 9}, 42, ops)
	f.Add(real)
	f.Add(real[:len(real)-4]) // torn
	doctored := append([]byte(nil), real...)
	doctored[len(doctored)/2] ^= 0xff
	f.Add(doctored)
	f.Add(encodeAuditBody(false, nil, 0, nil))

	f.Fuzz(func(t *testing.T, raw []byte) {
		ca, err := decodeAuditBody(raw)
		if err != nil {
			return
		}
		enc := encodeAuditBody(ca.hadMachine, ca.snapshot, ca.endTime, ca.ops)
		ca2, err := decodeAuditBody(enc)
		if err != nil {
			t.Fatalf("accepted body does not re-decode: %v", err)
		}
		enc2 := encodeAuditBody(ca2.hadMachine, ca2.snapshot, ca2.endTime, ca2.ops)
		if string(enc2) != string(enc) {
			t.Fatal("audit body re-encoding is not stable")
		}
		for i := range ca.ops {
			if ca.ops[i].kind == opFail {
				t.Fatalf("accepted body carries a failure op at %d", i)
			}
		}
	})
}
