package core

import (
	"bytes"
	"cmp"
	"fmt"
	"slices"
	"sort"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
)

// Node is one SNooPy participant: the primary system's state machine plus
// the graph recorder (§5.4). The node logs every input before acting on it,
// runs the commitment protocol for every message exchange, and periodically
// writes checkpoints. It deliberately does *not* maintain the provenance
// graph at runtime (§5.9): the log records just enough to reconstruct the
// node's subgraph on demand.
//
// Nodes are single-threaded: the harness (simulated network or transport
// loop) must serialize calls into a node.
type Node struct {
	ID      types.NodeID
	Machine types.Machine
	Log     *seclog.Log
	Auths   *seclog.AuthSet
	Stats   *cryptoutil.Stats

	cfg        Config
	suite      cryptoutil.Suite
	key        cryptoutil.PrivateKey
	dir        *Directory
	maintainer *Maintainer
	clock      Clock
	net        Sender

	outQ       map[types.NodeID][]types.Message
	queueSince map[types.NodeID]types.Time
	// dstOrder holds the destinations with queued messages, sorted;
	// maintained incrementally because the unbatched path flushes (and
	// previously sorted) after every single event.
	dstOrder []types.NodeID

	outstanding map[types.MessageID]*pendingEnvelope
	// outOrder holds outstanding envelope IDs sorted by (Dst, Seq), the
	// order Tick's retransmit scan needs.
	outOrder   []types.MessageID
	lastEntryT types.Time
	lastCkpt   types.Time

	// rcvSeen caches, per sender, the acks for recently received envelopes.
	// Real networks deliver at-least-once (the commitment protocol
	// retransmits after Tprop, and the retransmission can race the original
	// plus its ack): a duplicate must replay the cached ack, not append a
	// second rcv entry or step the machine twice.
	rcvSeen map[types.NodeID]*rcvCache
	// ackSeen remembers recently completed exchanges so the duplicate acks
	// that at-least-once delivery produces are ignored, not reported as
	// protocol violations.
	ackSeen      map[types.MessageID]struct{}
	ackSeenOrder []types.MessageID

	// Fault-injection hooks; nil on correct nodes (the adversary framework
	// in internal/adversary arms them — honest code paths never fork on
	// them). Tamper rewrites the machine's outputs before they are logged
	// and sent (a compromised primary system); DropSend suppresses matching
	// messages entirely (passive evasion); RefuseAudit makes the node
	// ignore retrieve requests (yields yellow vertices).
	Tamper      func(ev types.Event, outs []types.Output) []types.Output
	DropSend    func(m types.Message) bool
	RefuseAudit bool

	// TamperPacket intercepts every outgoing packet — envelopes, acks,
	// retransmissions — just before transmission. The returned packets are
	// sent in order: an empty result suppresses the transmission, a
	// modified packet models wire-level forgery (equivocation, signature
	// stripping), and extra packets model replayed traffic. The log entries
	// recording the exchange are already written, exactly like a
	// compromised node whose network stack lies about what it transmitted.
	TamperPacket func(dst types.NodeID, pkt *Packet) []*Packet

	// TamperRetrieve rewrites the node's answers to retrieve requests: a
	// compromised node serving a doctored or truncated log to auditors. It
	// runs after the honest response is assembled; implementations must not
	// mutate the response's shared entries in place (copy before editing).
	TamperRetrieve func(req RetrieveRequest, resp *RetrieveResponse) (*RetrieveResponse, error)

	// DropCount counts messages suppressed via DropSend.
	DropCount int

	// failure is the node's first unrecoverable local fault (e.g. a signing
	// failure): the node stops being able to uphold the commitment protocol
	// but must not take the rest of the deployment down with it.
	failure error
}

type pendingEnvelope struct {
	dst      types.NodeID
	env      *Envelope
	prevHash []byte // h_{x−1} (also in env, kept for clarity)
	sent     types.Time
	retried  bool
	notified bool
}

// rcvSeenCap bounds the per-peer duplicate-envelope cache; ackSeenCap bounds
// the completed-exchange set. Both only need to cover the retransmission
// window (one outstanding retry per envelope), so small FIFOs suffice.
const (
	rcvSeenCap = 64
	ackSeenCap = 256
)

// rcvCache is one peer's recently-received-envelope window: for each
// envelope sequence it keeps the sender's signature (to tell a true
// duplicate from a forged reuse of the sequence number) and the ack that
// answered it.
type rcvCache struct {
	acks  map[uint64]rcvSeenAck
	order []uint64
}

type rcvSeenAck struct {
	sig []byte
	ack *Packet
}

func (c *rcvCache) lookup(env *Envelope) (*Packet, bool) {
	got, ok := c.acks[env.Seq]
	if !ok || !bytes.Equal(got.sig, env.Sig) {
		return nil, false
	}
	return got.ack, true
}

func (c *rcvCache) remember(env *Envelope, ack *Packet) {
	if c.acks == nil {
		c.acks = make(map[uint64]rcvSeenAck)
	}
	if len(c.order) >= rcvSeenCap {
		delete(c.acks, c.order[0])
		c.order = c.order[1:]
	}
	c.acks[env.Seq] = rcvSeenAck{sig: env.Sig, ack: ack}
	c.order = append(c.order, env.Seq)
}

// NewNode assembles a node. net may be nil for single-node tests (sends are
// then dropped). When cfg.LogDir is set the node's log is backed by an
// on-disk segment store, which can fail to initialize.
func NewNode(id types.NodeID, cfg Config, key cryptoutil.PrivateKey, dir *Directory,
	maint *Maintainer, clock Clock, net Sender, machine types.Machine) (*Node, error) {
	stats := new(cryptoutil.Stats)
	var lg *seclog.Log
	switch {
	case cfg.LogDir != "" && cfg.LogRecover:
		var err error
		lg, err = seclog.Open(cfg.LogDir, id, cfg.suite(), key, stats, cfg.LogHotTail)
		if err != nil {
			return nil, err
		}
	case cfg.LogDir != "":
		var err error
		lg, err = seclog.NewStored(cfg.LogDir, id, cfg.suite(), key, stats, cfg.LogHotTail)
		if err != nil {
			return nil, err
		}
	default:
		lg = seclog.New(id, cfg.suite(), key, stats)
	}
	// A recovered log already has timestamped history: new entries must not
	// go backwards, or retrieve's monotonic-timestamp searches break.
	var lastT types.Time
	if lg.Len() >= lg.FirstSeq() && lg.Len() > 0 {
		if e, err := lg.Entry(lg.Len()); err == nil {
			lastT = e.T
		}
	}
	n := &Node{
		ID:          id,
		Machine:     machine,
		Log:         lg,
		Auths:       seclog.NewAuthSet(),
		lastEntryT:  lastT,
		Stats:       stats,
		cfg:         cfg,
		suite:       cfg.suite(),
		key:         key,
		dir:         dir,
		maintainer:  maint,
		clock:       clock,
		net:         net,
		outQ:        make(map[types.NodeID][]types.Message),
		queueSince:  make(map[types.NodeID]types.Time),
		outstanding: make(map[types.MessageID]*pendingEnvelope),
	}
	if cfg.LogRecover {
		if err := n.rebuildMachineFromLog(); err != nil {
			return nil, err
		}
		// Report before flushing: the missing-ack sweep must see only the
		// pre-crash snd entries, not the ones the re-staged outputs are
		// about to append (those get acked through the normal protocol).
		n.reportUnackedAfterRecovery()
		if err := n.flushAll(); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// rebuildMachineFromLog re-derives the primary system's state after a
// crash: the recovered log holds every input the machine ever consumed, in
// order, so stepping a fresh machine through them reproduces the exact
// pre-crash state — believed tuples, derivations, and the per-destination
// message sequence counters. The counters matter as much as the tuples:
// message IDs embed them, and a restarted node that reissued old IDs would
// collide with its own pre-crash exchanges, breaking ack matching for
// every peer and auditor.
//
// Step outputs are not discarded: the replay diffs them against the log's
// snd entries, and any derived message with no matching snd entry is
// re-staged for transmission. A crash can land between logging an input
// and appending the snd entry for its derived output, and the logged input
// is a commitment — the auditor's replay derives the same output and
// treats a history that never sends it as suppression, which is provable
// evidence. Re-staging (with the replayed machine's own deterministic
// message IDs) makes the recovered node fulfill the commitment instead.
func (n *Node) rebuildMachineFromLog() error {
	var derived []types.Message
	logged := make(map[types.MessageID]bool)
	step := func(ev types.Event) {
		for _, o := range n.Machine.Step(ev) {
			if o.Kind == types.OutSend {
				derived = append(derived, *o.Msg)
			}
		}
	}
	for seq := n.Log.FirstSeq(); seq <= n.Log.Len(); seq++ {
		e, err := n.Log.Entry(seq)
		if err != nil {
			return fmt.Errorf("core: recovery replay of %s at entry %d: %w", n.ID, seq, err)
		}
		switch e.Type {
		case seclog.EIns:
			step(types.Event{Kind: types.EvIns, Node: n.ID, Time: e.T,
				Tuple: e.Tuple, MaybeRule: e.MaybeRule, MaybeBody: e.MaybeBody, Replaces: e.Replaces})
		case seclog.EDel:
			step(types.Event{Kind: types.EvDel, Node: n.ID, Time: e.T,
				Tuple: e.Tuple, MaybeRule: e.MaybeRule, MaybeBody: e.MaybeBody})
		case seclog.ERcv:
			for j := range e.Msgs {
				msg := e.Msgs[j]
				step(types.Event{Kind: types.EvRcv, Node: n.ID, Time: e.T,
					Msg: &msg, SameBatch: j > 0})
			}
		case seclog.ESnd:
			for i := range e.Msgs {
				logged[e.Msgs[i].ID()] = true
			}
		case seclog.ECkpt:
			// A checkpoint heading the retained log stands in for the
			// truncated history; later checkpoints describe state the replay
			// has already reproduced.
			if seq == n.Log.FirstSeq() && e.Ckpt != nil {
				if err := n.Machine.Restore(e.Ckpt.MachineState); err != nil {
					return fmt.Errorf("core: recovery restore of %s from checkpoint: %w", n.ID, err)
				}
			}
		}
	}
	// Re-stage the outputs the crash kept out of the log. A truncated
	// history is symmetric here: outputs derived before the retained first
	// entry have no replayed derivation, and snd entries before it are
	// gone, so both sides of the diff cover exactly the retained range.
	for _, m := range derived {
		if logged[m.ID()] {
			continue
		}
		n.outQ[m.Dst] = append(n.outQ[m.Dst], m)
		if _, ok := n.queueSince[m.Dst]; !ok {
			n.queueSince[m.Dst] = m.SendTime
			if i, found := slices.BinarySearch(n.dstOrder, m.Dst); !found {
				n.dstOrder = slices.Insert(n.dstOrder, i, m.Dst)
			}
		}
	}
	return nil
}

// reportUnackedAfterRecovery handles the commitment-protocol state a crash
// destroys: the in-memory pending-ack table. The recovered log may hold snd
// entries whose acks never arrived, and the restarted node can neither
// retransmit them (the pending envelopes are gone) nor know whether the
// acks were in flight when it died. The §5.4 remedy is conservative: report
// every such exchange to the maintainer immediately, so the auditor treats
// it as a known missing ack — an unattributable lead — instead of provable
// evidence against this (honest) node.
func (n *Node) reportUnackedAfterRecovery() {
	if n.maintainer == nil {
		return
	}
	acked := make(map[types.MessageID]bool)
	for seq := n.Log.FirstSeq(); seq <= n.Log.Len(); seq++ {
		e, err := n.Log.Entry(seq)
		if err != nil || e.Type != seclog.EAck || len(e.AckIDs) == 0 {
			continue
		}
		acked[e.AckIDs[0]] = true
	}
	for seq := n.Log.FirstSeq(); seq <= n.Log.Len(); seq++ {
		e, err := n.Log.Entry(seq)
		if err != nil || e.Type != seclog.ESnd || len(e.Msgs) == 0 {
			continue
		}
		if acked[e.Msgs[0].ID()] {
			continue
		}
		for i := range e.Msgs {
			n.maintainer.NotifyMissingAck(n.ID, e.Msgs[i].ID())
		}
	}
}

// fault records the node's first unrecoverable local fault and returns it.
func (n *Node) fault(err error) error {
	if n.failure == nil {
		n.failure = err
	}
	return err
}

// Err returns the node's first unrecoverable local fault: a signing failure
// or a sticky log-store write error. A faulty node keeps running (and will
// be exposed as faulty by audits), but callers can use Err to surface the
// condition instead of crashing the deployment.
func (n *Node) Err() error {
	if n.failure != nil {
		return n.failure
	}
	return n.Log.Err()
}

// Suite exposes the node's crypto suite (behavior injection needs it to
// forge chain hashes the way the node itself would compute them).
func (n *Node) Suite() cryptoutil.Suite { return n.suite }

// send transmits one packet, diverting through the TamperPacket hook on
// compromised nodes.
func (n *Node) send(dst types.NodeID, pkt *Packet) {
	if n.net == nil {
		return
	}
	// Write-ahead: envelopes and acks carry signatures over the current log
	// head, so the entries they commit to must reach the OS before the
	// packet does. Otherwise a process crash could lose log entries that
	// peers already hold authenticators for, and the recovered (honest)
	// node's shorter chain would read as provable tampering under the §5.5
	// consistency check. Flush is a buffer write, not an fsync: it makes the
	// entries survive the process, which is the failure unit here.
	if err := n.Log.Flush(); err != nil {
		_ = n.fault(fmt.Errorf("core: write-ahead flush on %s: %w", n.ID, err))
		return
	}
	if n.TamperPacket == nil {
		n.net.Send(n.ID, dst, pkt)
		return
	}
	for _, p := range n.TamperPacket(dst, pkt) {
		if p != nil {
			n.net.Send(n.ID, dst, p)
		}
	}
}

// now returns the node's clock, forced monotonic so log entry timestamps
// never decrease.
func (n *Node) now() types.Time {
	t := n.clock.Now()
	if t < n.lastEntryT {
		t = n.lastEntryT
	}
	n.lastEntryT = t
	return t
}

// ---------------------------------------------------------------------------
// Primary-system inputs.

// InsertBase inserts a base tuple (logged as ins, then fed to the machine).
// The returned error reports a local fault (e.g. a signing failure while
// flushing resulting sends); the tuple itself is always logged.
func (n *Node) InsertBase(tup types.Tuple) error {
	t := n.now()
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EIns, Tuple: tup})
	return n.step(types.Event{Kind: types.EvIns, Node: n.ID, Time: t, Tuple: tup})
}

// DeleteBase removes a base tuple.
func (n *Node) DeleteBase(tup types.Tuple) error {
	t := n.now()
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EDel, Tuple: tup})
	return n.step(types.Event{Kind: types.EvDel, Node: n.ID, Time: t, Tuple: tup})
}

// InsertEvent injects a transient event tuple (e.g. a timer tick): an ins
// immediately followed by a del, so the provenance graph records the
// appearance and disappearance together. The del is re-stamped with now():
// stepping the ins may flush envelopes whose snd entries carry a later
// timestamp, and log timestamps must stay monotone (retrieve relies on it).
// Under the simulator the clock is frozen within a callback, so both
// entries still share one instant.
func (n *Node) InsertEvent(tup types.Tuple) error {
	t := n.now()
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EIns, Tuple: tup})
	err := n.step(types.Event{Kind: types.EvIns, Node: n.ID, Time: t, Tuple: tup})
	t = n.now()
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EDel, Tuple: tup})
	if err2 := n.step(types.Event{Kind: types.EvDel, Node: n.ID, Time: t, Tuple: tup}); err == nil {
		err = err2
	}
	return err
}

// InsertMaybe fires a 'maybe' rule (§3.4): the node chooses to derive head
// from body. replaces optionally names tuples whose simultaneous removal
// causally precedes the insertion (§3.4 constraints); they are deleted
// first, attributed to the same rule.
func (n *Node) InsertMaybe(rule string, head types.Tuple, body []types.Tuple, replaces []types.Tuple) error {
	// Each entry is stamped with a fresh now(): stepping a deletion may
	// flush envelopes with later timestamps, and the log must stay
	// monotone. The simulator's frozen per-callback clock keeps the whole
	// firing at one instant there.
	t := n.now()
	var err error
	for _, old := range replaces {
		n.Log.Append(&seclog.Entry{T: t, Type: seclog.EDel, Tuple: old,
			MaybeRule: rule, MaybeBody: body})
		if err2 := n.step(types.Event{Kind: types.EvDel, Node: n.ID, Time: t, Tuple: old,
			MaybeRule: rule, MaybeBody: body}); err == nil {
			err = err2
		}
		t = n.now()
	}
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EIns, Tuple: head,
		MaybeRule: rule, MaybeBody: body, Replaces: replaces})
	if err2 := n.step(types.Event{Kind: types.EvIns, Node: n.ID, Time: t, Tuple: head,
		MaybeRule: rule, MaybeBody: body, Replaces: replaces}); err == nil {
		err = err2
	}
	return err
}

// DeleteMaybe withdraws a maybe-derived tuple, attributing the deletion to
// rule with the given body.
func (n *Node) DeleteMaybe(rule string, head types.Tuple, body []types.Tuple) error {
	t := n.now()
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EDel, Tuple: head,
		MaybeRule: rule, MaybeBody: body})
	return n.step(types.Event{Kind: types.EvDel, Node: n.ID, Time: t, Tuple: head,
		MaybeRule: rule, MaybeBody: body})
}

// step feeds one event to the machine and processes its outputs.
func (n *Node) step(ev types.Event) error {
	outs := n.Machine.Step(ev)
	if n.Tamper != nil {
		outs = n.Tamper(ev, outs)
	}
	for _, o := range outs {
		if o.Kind != types.OutSend {
			continue // derivations are reconstructed at query time
		}
		m := *o.Msg
		if n.DropSend != nil && n.DropSend(m) {
			n.DropCount++
			continue
		}
		n.outQ[m.Dst] = append(n.outQ[m.Dst], m)
		if _, ok := n.queueSince[m.Dst]; !ok {
			n.queueSince[m.Dst] = ev.Time
			if i, found := slices.BinarySearch(n.dstOrder, m.Dst); !found {
				n.dstOrder = slices.Insert(n.dstOrder, i, m.Dst)
			}
		}
	}
	if n.cfg.Tbatch == 0 {
		return n.flushAll()
	}
	return nil
}

// flushAll transmits every queued envelope, in destination order. The first
// flush error is returned; remaining destinations are still attempted.
func (n *Node) flushAll() error {
	if len(n.dstOrder) == 0 {
		return nil
	}
	var err error
	for _, d := range append([]types.NodeID(nil), n.dstOrder...) {
		if err2 := n.flush(d); err == nil {
			err = err2
		}
	}
	return err
}

// flush sends one envelope carrying all messages queued for dst: one snd
// log entry, one signature, one eventual ack (§5.4, §5.6). A signing
// failure is recorded as the node's fault and returned: the snd entry is
// already in the log, so the unsent (and thus unacknowledged) envelope will
// surface in audits, but the rest of the deployment keeps running.
func (n *Node) flush(dst types.NodeID) error {
	msgs := n.outQ[dst]
	if len(msgs) == 0 {
		return nil
	}
	delete(n.outQ, dst)
	delete(n.queueSince, dst)
	if i, found := slices.BinarySearch(n.dstOrder, dst); found {
		n.dstOrder = slices.Delete(n.dstOrder, i, i+1)
	}
	t := n.now()
	prev := append([]byte(nil), n.Log.HeadHash()...)
	seq := n.Log.Append(&seclog.Entry{T: t, Type: seclog.ESnd, Msgs: msgs})
	sig, err := n.Log.Sign(t, n.Log.HeadHash())
	if err != nil {
		return n.fault(fmt.Errorf("core: signing failed on %s: %w", n.ID, err))
	}
	env := &Envelope{Msgs: msgs, PrevHash: prev, T: t, Sig: sig, Seq: seq}
	id := msgs[0].ID()
	n.outstanding[id] = &pendingEnvelope{dst: dst, env: env, prevHash: prev, sent: t}
	if i, found := slices.BinarySearchFunc(n.outOrder, id, cmpOutID); !found {
		n.outOrder = slices.Insert(n.outOrder, i, id)
	}
	n.send(dst, &Packet{Kind: PktEnvelope, Envelope: env})
	return nil
}

// ---------------------------------------------------------------------------
// Commitment protocol, receive side.

// HandlePacket dispatches one transport packet.
func (n *Node) HandlePacket(from types.NodeID, pkt *Packet) error {
	switch pkt.Kind {
	case PktEnvelope:
		return n.handleEnvelope(from, pkt.Envelope)
	case PktAck:
		return n.handleAck(from, pkt.Ack)
	default:
		return fmt.Errorf("core: unknown packet kind %d", pkt.Kind)
	}
}

func (n *Node) handleEnvelope(from types.NodeID, env *Envelope) error {
	if len(env.Msgs) == 0 {
		return fmt.Errorf("core: empty envelope from %s", from)
	}
	// At-least-once delivery: a retransmitted envelope we already logged is
	// answered by replaying the original ack — the log and the machine must
	// see each exchange exactly once. The signature comparison ensures only
	// a bit-identical duplicate takes this path.
	if cache, ok := n.rcvSeen[from]; ok {
		if ack, dup := cache.lookup(env); dup {
			n.send(from, ack)
			return nil
		}
	}
	pub, err := n.dir.Key(from)
	if err != nil {
		return err
	}
	// Reconstruct the sender's snd entry and verify the commitment: the
	// signature must cover h_x = H(h_{x−1} ‖ t_x ‖ snd ‖ (msgs)).
	sndEntry := &seclog.Entry{T: env.T, Type: seclog.ESnd, Msgs: env.Msgs}
	hx := seclog.ChainHash(n.suite, n.Stats, env.PrevHash, sndEntry)
	if !seclog.VerifyCommitment(n.Stats, pub, env.T, hx, env.Sig) {
		return fmt.Errorf("core: bad envelope signature from %s", from)
	}
	t := n.now()
	if skew := env.T - t; skew > n.cfg.DeltaClock+n.cfg.Tprop || -skew > n.cfg.DeltaClock+n.cfg.Tprop {
		return fmt.Errorf("core: envelope timestamp from %s outside Δclock+Tprop", from)
	}
	for i := range env.Msgs {
		if env.Msgs[i].Src != from || env.Msgs[i].Dst != n.ID {
			return fmt.Errorf("core: envelope from %s carries foreign message %s", from, env.Msgs[i])
		}
	}
	n.Auths.Add(seclog.Authenticator{Node: from, Seq: env.Seq, T: env.T, Hash: hx, Sig: env.Sig})

	hyPrev := append([]byte(nil), n.Log.HeadHash()...)
	y := n.Log.Append(&seclog.Entry{T: t, Type: seclog.ERcv, Msgs: env.Msgs,
		PeerPrevHash: env.PrevHash, PeerTime: env.T, PeerSig: env.Sig, PeerSeq: env.Seq})
	sig, err := n.Log.Sign(t, n.Log.HeadHash())
	if err != nil {
		return n.fault(fmt.Errorf("core: signing failed on %s: %w", n.ID, err))
	}
	ids := make([]types.MessageID, len(env.Msgs))
	for i := range env.Msgs {
		ids[i] = env.Msgs[i].ID()
	}
	ackPkt := &Packet{Kind: PktAck, Ack: &Ack{
		IDs: ids, PrevHash: hyPrev, T: t, Sig: sig, Seq: y,
	}}
	if n.rcvSeen == nil {
		n.rcvSeen = make(map[types.NodeID]*rcvCache)
	}
	cache, ok := n.rcvSeen[from]
	if !ok {
		cache = new(rcvCache)
		n.rcvSeen[from] = cache
	}
	cache.remember(env, ackPkt)
	n.send(from, ackPkt)
	// Feed the messages to the machine, in envelope order.
	var stepErr error
	for i := range env.Msgs {
		msg := env.Msgs[i]
		if err := n.step(types.Event{Kind: types.EvRcv, Node: n.ID, Time: t, Msg: &msg}); stepErr == nil {
			stepErr = err
		}
	}
	return stepErr
}

func (n *Node) handleAck(from types.NodeID, ack *Ack) error {
	if len(ack.IDs) == 0 {
		return fmt.Errorf("core: empty ack from %s", from)
	}
	pend, ok := n.outstanding[ack.IDs[0]]
	if !ok {
		// A completed exchange acked twice (retransmission raced the
		// original's ack) is at-least-once delivery at work, not a
		// protocol violation.
		if _, dup := n.ackSeen[ack.IDs[0]]; dup {
			return nil
		}
		return fmt.Errorf("core: unexpected ack from %s", from)
	}
	if pend.dst != from {
		return fmt.Errorf("core: unexpected ack from %s", from)
	}
	pub, err := n.dir.Key(from)
	if err != nil {
		return err
	}
	// Reconstruct the receiver's rcv entry and verify σ_j(t_y ‖ h_y).
	rcvEntry := &seclog.Entry{T: ack.T, Type: seclog.ERcv, Msgs: pend.env.Msgs,
		PeerPrevHash: pend.env.PrevHash, PeerTime: pend.env.T,
		PeerSig: pend.env.Sig, PeerSeq: pend.env.Seq}
	hy := seclog.ChainHash(n.suite, n.Stats, ack.PrevHash, rcvEntry)
	if !seclog.VerifyCommitment(n.Stats, pub, ack.T, hy, ack.Sig) {
		return fmt.Errorf("core: bad ack signature from %s", from)
	}
	t := n.now()
	if skew := ack.T - t; skew > n.cfg.DeltaClock+n.cfg.Tprop || -skew > n.cfg.DeltaClock+n.cfg.Tprop {
		return fmt.Errorf("core: ack timestamp from %s outside Δclock+Tprop", from)
	}
	n.Auths.Add(seclog.Authenticator{Node: from, Seq: ack.Seq, T: ack.T, Hash: hy, Sig: ack.Sig})
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.EAck, AckIDs: ack.IDs,
		PeerPrevHash: ack.PrevHash, PeerTime: ack.T, PeerSig: ack.Sig, PeerSeq: ack.Seq,
		EnvSig: pend.env.Sig})
	delete(n.outstanding, ack.IDs[0])
	if i, found := slices.BinarySearchFunc(n.outOrder, ack.IDs[0], cmpOutID); found {
		n.outOrder = slices.Delete(n.outOrder, i, i+1)
	}
	if n.ackSeen == nil {
		n.ackSeen = make(map[types.MessageID]struct{})
	}
	if len(n.ackSeenOrder) >= ackSeenCap {
		delete(n.ackSeen, n.ackSeenOrder[0])
		n.ackSeenOrder = n.ackSeenOrder[1:]
	}
	n.ackSeen[ack.IDs[0]] = struct{}{}
	n.ackSeenOrder = append(n.ackSeenOrder, ack.IDs[0])
	return nil
}

// cmpOutID orders outstanding envelope IDs by (Dst, Seq) — the retransmit
// scan order (Src is always the local node).
func cmpOutID(a, b types.MessageID) int {
	if c := cmp.Compare(a.Dst, b.Dst); c != 0 {
		return c
	}
	return cmp.Compare(a.Seq, b.Seq)
}

// ---------------------------------------------------------------------------
// Periodic duties.

// Tick drives batching, retransmission, missing-ack notification, and
// checkpointing. The harness calls it periodically. The returned error
// reports a local fault (signing failure on a batched flush); the node
// keeps ticking.
func (n *Node) Tick() error {
	t := n.now()
	var err error
	// Flush batches older than Tbatch.
	if n.cfg.Tbatch > 0 && len(n.dstOrder) > 0 {
		for _, d := range append([]types.NodeID(nil), n.dstOrder...) {
			if t-n.queueSince[d] >= n.cfg.Tbatch {
				if err2 := n.flush(d); err == nil {
					err = err2
				}
			}
		}
	}
	// Retransmit unacknowledged envelopes once after Tprop; notify the
	// maintainer after 2·Tprop (§5.4). outOrder is maintained sorted by
	// (Dst, Seq), so no per-tick sort is needed.
	for _, id := range n.outOrder {
		pend := n.outstanding[id]
		age := t - pend.sent
		if age > n.cfg.Tprop && !pend.retried && n.net != nil {
			pend.retried = true
			n.send(pend.dst, &Packet{Kind: PktEnvelope, Envelope: pend.env})
		}
		if age > 2*n.cfg.Tprop && !pend.notified {
			pend.notified = true
			if n.maintainer != nil {
				// The whole envelope is unacknowledged: report every message
				// in it, not just the envelope's identifying first message —
				// the audit's missing-ack bookkeeping is per message, and a
				// partially reported batch would leave the unreported ones
				// looking like the sender hid them.
				for i := range pend.env.Msgs {
					n.maintainer.NotifyMissingAck(n.ID, pend.env.Msgs[i].ID())
				}
			}
		}
	}
	// Checkpoint.
	if n.cfg.CheckpointEvery > 0 && t-n.lastCkpt >= n.cfg.CheckpointEvery {
		n.WriteCheckpoint()
	}
	return err
}

// WriteCheckpoint records the machine's full state in the log (§5.6).
func (n *Node) WriteCheckpoint() {
	t := n.now()
	n.lastCkpt = t
	ck := seclog.BuildCheckpoint(n.suite, n.Stats, n.Machine.Snapshot(), ExtantsOf(n.Machine))
	n.Log.Append(&seclog.Entry{T: t, Type: seclog.ECkpt, Ckpt: ck})
}

// ---------------------------------------------------------------------------
// Audit interface (control plane).

// ErrAuditRefused is returned by faulty nodes that ignore retrieve
// requests; the querier leaves the vertex yellow.
var ErrAuditRefused = fmt.Errorf("core: node refuses to answer")

// HandleRetrieve serves the retrieve primitive of §5.4: the log segment
// from the last checkpoint before StartTime through at least the evidence
// position (extended to EndTime or the head, with a fresh authenticator).
//
// Every sequence number derived from the request is peer-influenced and is
// range-checked before it touches the log: a malformed or adversarial
// request yields an error (evidence for the querier), never a panic.
func (n *Node) HandleRetrieve(req RetrieveRequest) (*RetrieveResponse, error) {
	if n.RefuseAudit {
		return nil, ErrAuditRefused
	}
	if n.Log.Len() == 0 {
		return nil, fmt.Errorf("core: %s has an empty log", n.ID)
	}
	first, last := n.Log.FirstSeq(), n.Log.Len()
	if first > last {
		return nil, fmt.Errorf("core: %s retains no history (truncated past %d)", n.ID, last)
	}
	// Position of the first entry at or after StartTime. Entry timestamps
	// are monotone (now() never goes backwards), so a binary search matches
	// the historical linear scan without paging in cold history.
	var readErr error
	entryT := func(seq uint64) types.Time {
		e, err := n.Log.Entry(seq)
		if err != nil {
			if readErr == nil {
				readErr = err
			}
			return types.Time(0)
		}
		return e.T
	}
	count := int(last - first + 1)
	idx := sort.Search(count, func(i int) bool { return readErr != nil || entryT(first+uint64(i)) >= req.StartTime })
	if readErr != nil {
		return nil, readErr
	}
	start := last
	if idx < count {
		start = first + uint64(idx)
	}
	from := n.Log.LastCheckpointBefore(start)
	if from == 0 {
		from = first
	}
	// End: cover the evidence and the vertex lifetime.
	end := req.Auth.Seq
	if end < from {
		end = from
	}
	if end > last {
		return nil, fmt.Errorf("core: %s cannot cover evidence position %d (log ends at %d)", n.ID, end, last)
	}
	if req.EndTime == 0 || req.EndTime >= n.lastEntryT {
		end = last
	} else {
		// The first entry in [end..last] past EndTime (inclusive), or last.
		span := int(last - end + 1)
		m := sort.Search(span, func(i int) bool { return readErr != nil || entryT(end+uint64(i)) > req.EndTime })
		if readErr != nil {
			return nil, readErr
		}
		if m < span {
			end += uint64(m)
		} else {
			end = last
		}
	}
	seg, err := n.Log.Segment(from, end)
	if err != nil {
		return nil, err
	}
	resp := &RetrieveResponse{Segment: seg}
	if end != req.Auth.Seq || req.Auth.Node != n.ID {
		auth, err := n.Log.AuthenticatorAt(end)
		if err != nil {
			return nil, err
		}
		resp.NewAuth = &auth
	}
	if n.TamperRetrieve != nil {
		return n.TamperRetrieve(req, resp)
	}
	return resp, nil
}

// AuthsAbout serves the consistency check (§5.5): every authenticator this
// node holds that was signed by target with a timestamp in [t1, t2].
func (n *Node) AuthsAbout(target types.NodeID, t1, t2 types.Time) []seclog.Authenticator {
	if n.RefuseAudit {
		return nil
	}
	return n.Auths.FromInInterval(target, t1, t2)
}

// LatestAuth returns the freshest authenticator this node can produce about
// itself (used to bootstrap evidence for queries).
func (n *Node) LatestAuth() (seclog.Authenticator, error) {
	if n.Log.Len() == 0 {
		return seclog.Authenticator{}, fmt.Errorf("core: %s has an empty log", n.ID)
	}
	if n.RefuseAudit {
		return seclog.Authenticator{}, ErrAuditRefused
	}
	return n.Log.Authenticator()
}

// Now exposes the node's clock (monotonic log time).
func (n *Node) Now() types.Time { return n.now() }
