// Persistent incremental-audit cache. Auditing an unchanged segment twice
// repeats a fully deterministic computation: the replica-machine replay and
// the op stream it produces depend only on the segment bytes, and those are
// pinned by the chain hash the authenticator signs. The cache therefore
// keys a serialized prepared-audit op stream by segment identity (node,
// range, head chain hash) and lets Auditor.Prepare skip the replica-machine
// replay for a segment it has audited before.
//
// What a hit may — and may not — trust. The cache lives in local files; a
// tampered entry must never let the auditor construct a provable accusation
// of an honest node (Theorem 5 discipline extends to our own disk). So the
// hit path re-derives everything accusation-capable from the freshly
// verified segment: failures, implied chain commitments (peer signatures
// are re-verified), the sent-envelope map, checkpoint digests, and the
// end-of-log time. The cached stream supplies only what is expensive and
// machine-deterministic — the replica machine's outputs per event and its
// final state snapshot — and every re-derived op must match its cached
// counterpart in lockstep. Any divergence, decode failure, or integrity
// mismatch silently falls back to a fresh replay, which then overwrites the
// entry. A poisoned cache can at worst cost time or suppress detection of
// an already-faulty node; it cannot manufacture evidence.
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// auditCacheDomain separates audit-cache keys from every other use of the
// suite hash.
const auditCacheDomain = "snpaudit1"

const auditCacheVersion = 1

// AuditCache is a handle on the durable audit cache, shared by every
// Auditor built from the same Config. Safe for concurrent use.
type AuditCache struct {
	store *seclog.CacheStore
	suite cryptoutil.Suite

	hits   atomic.Uint64
	misses atomic.Uint64
}

// OpenAuditCache opens (or creates) the audit cache rooted at dir.
func OpenAuditCache(dir string, suite cryptoutil.Suite) (*AuditCache, error) {
	if suite == nil {
		suite = cryptoutil.Ed25519SHA256
	}
	st, err := seclog.OpenCacheStore(dir, types.NodeID("auditcache"), suite)
	if err != nil {
		return nil, err
	}
	return &AuditCache{store: st, suite: suite}, nil
}

// Sync makes all cached entries durable.
func (c *AuditCache) Sync() error { return c.store.Sync() }

// Close syncs and releases the cache.
func (c *AuditCache) Close() error { return c.store.Close() }

// Hits returns how many Prepare calls were served from the cache.
func (c *AuditCache) Hits() uint64 { return c.hits.Load() }

// Misses returns how many Prepare calls consulted the cache and fell back
// to a fresh replay (including entries rejected by validation).
func (c *AuditCache) Misses() uint64 { return c.misses.Load() }

// key derives the cache address of one audited segment. The head chain hash
// covers every entry byte in the range, so equal keys imply equal segments;
// any chain divergence changes the key and invalidates the entry.
func (c *AuditCache) key(node types.NodeID, from, to uint64, headHash []byte) []byte {
	var fb, tb [8]byte
	binary.BigEndian.PutUint64(fb[:], from)
	binary.BigEndian.PutUint64(tb[:], to)
	return c.suite.Hash([]byte(auditCacheDomain), []byte(node), fb[:], tb[:], headHash)
}

// get loads and integrity-checks the body stored under key.
func (c *AuditCache) get(key []byte) ([]byte, bool) {
	payload, ok := c.store.Get(key)
	hs := c.suite.HashSize()
	if !ok || len(payload) < hs {
		return nil, false
	}
	sum, body := payload[:hs], payload[hs:]
	if !bytes.Equal(sum, c.suite.Hash(body)) {
		return nil, false
	}
	return body, true
}

// put stores body under key with an integrity prefix.
func (c *AuditCache) put(key, body []byte) {
	payload := append(c.suite.Hash(body), body...)
	_ = c.store.Put(key, payload) // a failed put is just a future miss
}

// ---------------------------------------------------------------------------
// Op-stream serialization.
//
// Only cache-trustable material is stored per op: for opEvent the machine
// outputs (the event itself is re-derived from the segment), for the seed
// and implied ops their full fields — used solely to cross-check the
// re-derived ops, never adopted. opFail is deliberately unrepresentable: a
// replay that found a failure is never cached, and a stream claiming one
// would be rejected.

func encodeAuditBody(hadMachine bool, snapshot []byte, endTime types.Time, ops []replayOp) []byte {
	w := wire.NewWriter(1024)
	w.Byte(auditCacheVersion)
	w.Bool(hadMachine)
	w.BytesField(snapshot)
	w.Int(int64(endTime))
	w.Uint(uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		w.Byte(byte(op.kind))
		switch op.kind {
		case opEvent:
			w.Uint(uint64(len(op.outs)))
			for j := range op.outs {
				marshalOutput(w, &op.outs[j])
			}
		case opSeedExist:
			w.String(string(op.node))
			op.tup.MarshalWire(w)
			w.Int(int64(op.t))
		case opSeedBelieve:
			w.String(string(op.node))
			w.String(string(op.origin))
			op.tup.MarshalWire(w)
			w.Int(int64(op.t))
		case opImplied:
			w.String(string(op.node))
			w.Uint(op.seq)
			w.BytesField(op.commit.hash)
			w.Int(int64(op.commit.t))
			w.String(string(op.commit.reporter))
			w.Uint(uint64(len(op.commit.msgs)))
			for j := range op.commit.msgs {
				op.commit.msgs[j].MarshalWire(w)
			}
		}
	}
	return w.Bytes()
}

// cachedAudit is a decoded cache body.
type cachedAudit struct {
	hadMachine bool
	snapshot   []byte
	endTime    types.Time
	ops        []replayOp
}

func decodeAuditBody(raw []byte) (*cachedAudit, error) {
	r := wire.NewReader(raw)
	if v := r.Byte(); v != auditCacheVersion {
		return nil, fmt.Errorf("core: audit cache version %d", v)
	}
	ca := &cachedAudit{}
	ca.hadMachine = r.Bool()
	ca.snapshot = r.BytesField()
	ca.endTime = types.Time(r.Int())
	nops := r.Count()
	for i := 0; i < nops; i++ {
		var op replayOp
		op.kind = opKind(r.Byte())
		switch op.kind {
		case opEvent:
			nouts := r.Count()
			for j := 0; j < nouts; j++ {
				var out types.Output
				if err := unmarshalOutput(r, &out); err != nil {
					return nil, err
				}
				op.outs = append(op.outs, out)
			}
		case opSeedExist:
			op.node = types.NodeID(r.String())
			if err := op.tup.UnmarshalWire(r); err != nil {
				return nil, err
			}
			op.t = types.Time(r.Int())
		case opSeedBelieve:
			op.node = types.NodeID(r.String())
			op.origin = types.NodeID(r.String())
			if err := op.tup.UnmarshalWire(r); err != nil {
				return nil, err
			}
			op.t = types.Time(r.Int())
		case opImplied:
			op.node = types.NodeID(r.String())
			op.seq = r.Uint()
			ic := &impliedCommit{}
			ic.hash = r.BytesField()
			ic.t = types.Time(r.Int())
			ic.reporter = types.NodeID(r.String())
			nmsgs := r.Count()
			for j := 0; j < nmsgs; j++ {
				var m types.Message
				if err := m.UnmarshalWire(r); err != nil {
					return nil, err
				}
				ic.msgs = append(ic.msgs, m)
			}
			op.commit = ic
		default:
			return nil, fmt.Errorf("core: audit cache op kind %d", op.kind)
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		ca.ops = append(ca.ops, op)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return ca, nil
}

func marshalOutput(w *wire.Writer, o *types.Output) {
	w.Byte(byte(o.Kind))
	o.Tuple.MarshalWire(w)
	w.String(o.Rule)
	w.Uint(uint64(len(o.Body)))
	for i := range o.Body {
		o.Body[i].MarshalWire(w)
	}
	w.Uint(uint64(len(o.Replaces)))
	for i := range o.Replaces {
		o.Replaces[i].MarshalWire(w)
	}
	w.Bool(o.First)
	w.Bool(o.Last)
	w.Bool(o.Msg != nil)
	if o.Msg != nil {
		o.Msg.MarshalWire(w)
	}
}

func unmarshalOutput(r *wire.Reader, o *types.Output) error {
	o.Kind = types.OutputKind(r.Byte())
	if err := o.Tuple.UnmarshalWire(r); err != nil {
		return err
	}
	if o.Tuple.Rel == "" && len(o.Tuple.Args) == 0 {
		// A zero tuple (e.g. on OutSend outputs) must round-trip to the
		// zero value, or a hit would not be deeply identical to a fresh
		// replay.
		o.Tuple = types.Tuple{}
	}
	o.Rule = r.String()
	nb := r.Count()
	for i := 0; i < nb; i++ {
		var t types.Tuple
		if err := t.UnmarshalWire(r); err != nil {
			return err
		}
		o.Body = append(o.Body, t)
	}
	nr := r.Count()
	for i := 0; i < nr; i++ {
		var t types.Tuple
		if err := t.UnmarshalWire(r); err != nil {
			return err
		}
		o.Replaces = append(o.Replaces, t)
	}
	o.First = r.Bool()
	o.Last = r.Bool()
	if r.Bool() {
		var m types.Message
		if err := m.UnmarshalWire(r); err != nil {
			return err
		}
		o.Msg = &m
	}
	return r.Err()
}

// ---------------------------------------------------------------------------
// The lockstep cursor. A prep running in cached mode walks the segment
// exactly as a fresh replay would, and the cursor pairs each re-derived op
// with the next cached one. Machine outputs flow cache→replay; everything
// else flows replay→cache as a consistency check.

type cacheCursor struct {
	ca          *cachedAudit
	pos         int
	bad         bool
	needMachine bool
}

// next consumes the next cached op, requiring the given kind.
func (c *cacheCursor) next(kind opKind) *replayOp {
	if c.bad || c.pos >= len(c.ca.ops) {
		c.bad = true
		return nil
	}
	op := &c.ca.ops[c.pos]
	c.pos++
	if op.kind != kind {
		c.bad = true
		return nil
	}
	return op
}

// done reports whether the walk consumed the stream exactly.
func (c *cacheCursor) done() bool { return !c.bad && c.pos == len(c.ca.ops) }

func sameTuple(a, b types.Tuple) bool { return a.Equal(b) }

func sameMessage(a, b *types.Message) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Pol == b.Pol &&
		a.Seq == b.Seq && a.SendTime == b.SendTime && a.Tuple.Equal(b.Tuple)
}

// checkImplied compares a cached implied op against the re-derived one.
func checkImplied(cached *replayOp, node types.NodeID, seq uint64, ic *impliedCommit) bool {
	if cached == nil || cached.commit == nil {
		return false
	}
	cc := cached.commit
	if cached.node != node || cached.seq != seq ||
		!bytes.Equal(cc.hash, ic.hash) || cc.t != ic.t || cc.reporter != ic.reporter ||
		len(cc.msgs) != len(ic.msgs) {
		return false
	}
	for i := range ic.msgs {
		if !sameMessage(&cc.msgs[i], &ic.msgs[i]) {
			return false
		}
	}
	return true
}
