package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
)

// stubMachine emits one send per inserted tuple, so inserts exercise the
// envelope/sign path without a rule engine.
type stubMachine struct {
	self types.NodeID
	seq  uint64
}

func (m *stubMachine) Step(ev types.Event) []types.Output {
	if ev.Kind != types.EvIns {
		return nil
	}
	m.seq++
	return []types.Output{{Kind: types.OutSend, Msg: &types.Message{
		Src: m.self, Dst: "peer", Pol: types.PolAppear, Tuple: ev.Tuple,
		SendTime: ev.Time, Seq: m.seq,
	}}}
}
func (m *stubMachine) Snapshot() []byte             { return nil }
func (m *stubMachine) Restore(snapshot []byte) error { return nil }

// failingKey signs successfully until broken, then fails every signature.
type failingKey struct {
	inner  cryptoutil.PrivateKey
	broken bool
}

func (k *failingKey) Sign(msg []byte) ([]byte, error) {
	if k.broken {
		return nil, errors.New("hsm unavailable")
	}
	return k.inner.Sign(msg)
}
func (k *failingKey) Public() cryptoutil.PublicKey { return k.inner.Public() }

type fixedClock struct{ t types.Time }

func (c *fixedClock) Now() types.Time { c.t += types.Millisecond; return c.t }

func testNode(t *testing.T, cfg Config, key cryptoutil.PrivateKey) *Node {
	t.Helper()
	if key == nil {
		var err error
		key, err = cryptoutil.PooledKey(cfg.suite(), 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	dir := NewDirectory()
	dir.Register("n1", key.Public())
	n, err := NewNode("n1", cfg, key, dir, NewMaintainer(), &fixedClock{}, nil, &stubMachine{self: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func ins(k int64) types.Tuple { return types.MakeTuple("t", types.N("n1"), types.I(k)) }

// TestRetrieveMalformedRequest feeds HandleRetrieve adversarial sequence
// numbers and truncated history: every case must yield an error or a valid
// segment, never a panic.
func TestRetrieveMalformedRequest(t *testing.T) {
	n := testNode(t, DefaultConfig(), nil)
	for i := int64(1); i <= 10; i++ {
		if err := n.InsertBase(ins(i)); err != nil {
			t.Fatal(err)
		}
	}
	head := n.Log.Len()

	// Evidence beyond the head cannot be covered.
	if _, err := n.HandleRetrieve(RetrieveRequest{
		Auth: seclog.Authenticator{Node: "n1", Seq: head + 1000}, EndTime: types.Millisecond,
	}); err == nil {
		t.Error("evidence beyond head served")
	}
	// A sane request still works.
	resp, err := n.HandleRetrieve(RetrieveRequest{Auth: seclog.Authenticator{Node: "n1", Seq: head}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Segment.To() != head {
		t.Errorf("segment ends at %d, want %d", resp.Segment.To(), head)
	}

	// Truncate most of the log: requests into dropped history must fall
	// back to retained history or error cleanly.
	n.Log.Truncate(head - 2)
	resp, err = n.HandleRetrieve(RetrieveRequest{Auth: seclog.Authenticator{Node: "n1", Seq: head}})
	if err != nil {
		t.Fatalf("retrieve after truncation: %v", err)
	}
	if resp.Segment.From < head-2 {
		t.Errorf("segment starts at %d inside truncated history", resp.Segment.From)
	}
	// Evidence pointing into truncated history (seq 1) with a bounded end.
	if _, err := n.HandleRetrieve(RetrieveRequest{
		Auth: seclog.Authenticator{Node: "n1", Seq: 1}, EndTime: types.Microsecond,
	}); err != nil {
		// An error is acceptable; a panic is not (this request used to
		// underflow seq - first).
		t.Logf("truncated-evidence retrieve: %v", err)
	}
	// Fully truncated log.
	n.Log.Truncate(head + 1)
	if _, err := n.HandleRetrieve(RetrieveRequest{Auth: seclog.Authenticator{Node: "n1", Seq: head}}); err == nil {
		t.Error("fully truncated log served a segment")
	}
}

// TestSignFailureIsFaultNotPanic breaks a node's key mid-run: the affected
// operations return errors and Err() reports the fault, but nothing panics
// and the node keeps accepting work.
func TestSignFailureIsFaultNotPanic(t *testing.T) {
	inner, err := cryptoutil.PooledKey(DefaultConfig().suite(), 1)
	if err != nil {
		t.Fatal(err)
	}
	key := &failingKey{inner: inner}
	n := testNode(t, DefaultConfig(), key)

	if err := n.InsertBase(ins(1)); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}
	key.broken = true
	if err := n.InsertBase(ins(2)); err == nil {
		t.Fatal("insert with broken key reported no error")
	} else if !strings.Contains(err.Error(), "signing failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	if n.Err() == nil {
		t.Error("Err() not sticky after signing failure")
	}
	// The node survives: ticking and further inserts do not panic.
	_ = n.Tick()
	_ = n.InsertBase(ins(3))
	// The snd entries are in the log (audits will expose the unsent
	// envelopes); the log itself stays consistent.
	if n.Log.Len() == 0 {
		t.Error("log lost entries after fault")
	}
}

// TestAuditorRejectsMalformedResponses drives Prepare/Replay with responses
// a compromised node could return: nil segments, empty segments, foreign
// segments. All must fail cleanly and record evidence.
func TestAuditorRejectsMalformedResponses(t *testing.T) {
	cfg := DefaultConfig()
	key, err := cryptoutil.PooledKey(cfg.suite(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory()
	dir.Register("n1", key.Public())
	factory := func(self types.NodeID) types.Machine { return &stubMachine{self: self} }
	a := NewAuditor(cfg, dir, factory, nil)

	evidence := seclog.Authenticator{Node: "n1", Seq: 1}
	if err := a.Replay("n1", &RetrieveResponse{}, evidence); err == nil {
		t.Error("nil segment accepted")
	}
	a2 := NewAuditor(cfg, dir, factory, nil)
	if err := a2.Replay("n1", &RetrieveResponse{Segment: &seclog.SegmentData{Node: "n1", From: 0}}, evidence); err == nil {
		t.Error("empty segment accepted")
	}
	a3 := NewAuditor(cfg, dir, factory, nil)
	if err := a3.Replay("n1", &RetrieveResponse{Segment: &seclog.SegmentData{Node: "other", From: 1}}, evidence); err == nil {
		t.Error("foreign segment accepted")
	}
	if len(a3.Failures()) == 0 {
		t.Error("foreign segment recorded no failure evidence")
	}
}

// TestNewNodeStoreBacked exercises the cfg.LogDir path end to end: entries
// land in the store, survive a (simulated crash) reopen, and serve the same
// segment bytes.
func TestNewNodeStoreBacked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogDir = t.TempDir()
	cfg.LogHotTail = 2
	n := testNode(t, cfg, nil)
	for i := int64(1); i <= 12; i++ {
		if err := n.InsertBase(ins(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Log.StoreBacked() {
		t.Fatal("log not store-backed")
	}
	if n.Log.ColdEntries() == 0 {
		t.Error("hot tail of 2 evicted nothing")
	}
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	// Hand the buffered appends to the OS (no fsync): the simulated crash
	// below then models a process dying after its writes reached the page
	// cache, which is what the pre-buffering store gave for free.
	if err := n.Log.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := seclog.Open(cfg.LogDir, n.ID, cfg.suite(), nil, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != n.Log.Len() {
		t.Fatalf("reopened %d entries, want %d", reopened.Len(), n.Log.Len())
	}

	// Restart the node itself through the recovery path: history is intact
	// (no O_TRUNC), timestamps stay monotone, and the chain continues.
	want := n.Log.Len()
	head := append([]byte(nil), n.Log.HeadHash()...)
	if err := n.Log.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.LogRecover = true
	n2 := testNode(t, cfg, nil)
	defer n2.Log.Close()
	if n2.Log.Len() != want {
		t.Fatalf("restarted node has %d entries, want %d", n2.Log.Len(), want)
	}
	if !bytes.Equal(n2.Log.HeadHash(), head) {
		t.Error("restarted node's head hash diverges")
	}
	if err := n2.InsertBase(ins(99)); err != nil {
		t.Fatal(err)
	}
	if n2.Log.Len() <= want {
		t.Error("restarted node did not extend its chain")
	}
	lastSeq := n2.Log.Len()
	if e, err := n2.Log.Entry(lastSeq); err != nil || e.T < n2.Log.EntryAt(want).T {
		t.Errorf("restarted node's timestamps went backwards (err=%v)", err)
	}
}
