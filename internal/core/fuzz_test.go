package core_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// fuzzNode builds a small live node with some history and a checkpoint (no
// network), the target the retrieve fuzzers poke at.
func fuzzNode(tb testing.TB) *core.Node {
	tb.Helper()
	cfg := core.DefaultConfig()
	key, err := cryptoutil.PooledKey(cryptoutil.Ed25519SHA256, 1)
	if err != nil {
		tb.Fatal(err)
	}
	dir := core.NewDirectory()
	dir.Register("n1", key.Public())
	n, err := core.NewNode("n1", cfg, key, dir, core.NewMaintainer(), fuzzClock(), nil, fuzzMachine{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := int64(1); i <= 8; i++ {
		if err := n.InsertBase(types.MakeTuple("t", types.N("n1"), types.I(i))); err != nil {
			tb.Fatal(err)
		}
		if i == 4 {
			n.WriteCheckpoint()
		}
	}
	return n
}

type fuzzMachine struct{}

func (fuzzMachine) Step(types.Event) []types.Output { return nil }
func (fuzzMachine) Snapshot() []byte                { return []byte("state") }
func (fuzzMachine) Restore([]byte) error            { return nil }

func fuzzClock() core.Clock {
	t := types.Time(0)
	return core.ClockFunc(func() types.Time { t += types.Millisecond; return t })
}

// FuzzRetrieveRequest decodes arbitrary bytes as a retrieve request and
// serves it from a live node: every sequence number and timestamp in the
// request is adversary-controlled, and the node must answer or refuse —
// never panic. Whatever it serves must also survive the response codec.
func FuzzRetrieveRequest(f *testing.F) {
	for _, b := range adversary.WireCorpus().Requests {
		f.Add(b)
	}
	// Hand-crafted extremes: zero, max, and inverted window positions.
	f.Add(wire.Encode(core.RetrieveRequest{
		Auth: seclog.Authenticator{Node: "n1", Seq: ^uint64(0)}, StartTime: -1, EndTime: 1}))
	f.Add(wire.Encode(core.RetrieveRequest{
		Auth: seclog.Authenticator{Node: "n1", Seq: 0}, StartTime: 1 << 62, EndTime: -1 << 62}))
	n := fuzzNode(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var req core.RetrieveRequest
		if err := wire.Decode(data, &req); err != nil {
			return
		}
		resp, err := n.HandleRetrieve(req)
		if err != nil {
			return
		}
		if resp.Segment == nil || len(resp.Segment.Entries) == 0 {
			t.Fatalf("retrieve served an empty segment without error for %+v", req)
		}
		// The served response must round-trip through the symmetric codec
		// (this is what a remote querier would decode).
		enc := wire.Encode(*resp)
		var back core.RetrieveResponse
		if err := wire.Decode(enc, &back); err != nil {
			t.Fatalf("served response does not round-trip: %v", err)
		}
		if back.Segment.To() != resp.Segment.To() || back.Segment.From != resp.Segment.From {
			t.Fatalf("round-tripped segment range [%d..%d] != served [%d..%d]",
				back.Segment.From, back.Segment.To(), resp.Segment.From, resp.Segment.To())
		}
	})
}
