package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/provgraph"
	"repro/internal/seclog"
	"repro/internal/types"
)

// QueryMetrics accumulates the cost of one query session, matching the
// quantities Figure 8 reports: bytes downloaded by category and time spent
// checking authenticators vs. replaying.
type QueryMetrics struct {
	LogBytes       int64
	AuthBytes      int64
	CkptBytes      int64
	VerifyTime     time.Duration
	ReplayTime     time.Duration
	Microqueries   int
	NodesContacted int
}

// TotalBytes returns all bytes downloaded.
func (m QueryMetrics) TotalBytes() int64 { return m.LogBytes + m.AuthBytes + m.CkptBytes }

// Fetcher gives the querier access to the nodes' audit interfaces. The
// simulated network and the TCP transport both implement it.
type Fetcher interface {
	// Retrieve invokes the retrieve primitive on a node.
	Retrieve(node types.NodeID, req RetrieveRequest) (*RetrieveResponse, error)
	// LatestAuth obtains fresh evidence (the node's newest authenticator).
	LatestAuth(node types.NodeID) (seclog.Authenticator, error)
	// AuthsAbout asks observer for authenticators signed by target in
	// [t1, t2] (the §5.5 consistency check).
	AuthsAbout(observer, target types.NodeID, t1, t2 types.Time) []seclog.Authenticator
	// Nodes lists all reachable nodes.
	Nodes() []types.NodeID
}

// QueryMode selects what the root vertex of an explanation is.
type QueryMode uint8

// Query modes: current state ("why does τ exist?"), historical state ("why
// did τ exist at t?"), and the dynamic forms ("why did τ (dis)appear?").
const (
	ModeExist QueryMode = iota
	ModeAppear
	ModeDisappear
)

// Direction selects causes (backward) or effects (forward, the causal
// queries used to assess damage after an attack).
type Direction uint8

// Traversal directions.
const (
	Causes Direction = iota
	Effects
)

// QueryOpts parameterizes a macroquery.
type QueryOpts struct {
	Mode      QueryMode
	Direction Direction
	// At is the reference time for historical queries; zero means "now".
	At types.Time
	// Scope bounds the traversal depth (the scope k of §5.1); zero means
	// unlimited.
	Scope int
	// SkipConsistency disables the §5.5 consistency check (used by
	// benchmarks to isolate costs).
	SkipConsistency bool
	// StartHint bounds how far back the first retrieve must reach; replay
	// then starts from the last checkpoint before it (§5.6). Zero fetches
	// the whole retained log.
	StartHint types.Time
}

// Explanation is one vertex of a query answer, with its resolved color and
// its (cause or effect) children.
type Explanation struct {
	Vertex    *provgraph.Vertex
	Color     provgraph.Color
	Children  []*Explanation
	Truncated bool   // scope limit reached
	Revisit   bool   // vertex already expanded elsewhere in this answer
	Note      string // e.g. "node did not respond"
}

// Querier is the query processor (§5.1): it answers macroqueries by
// repeatedly invoking the microquery primitive, auditing nodes on demand
// and assembling explanations from the reconstructed graph.
//
// A querier may fan the expensive half of auditing out over a worker pool:
// BeginAuditScope starts background fetch+verify+replay preparation for the
// nodes a query is expected to touch, and EnsureAudited then commits the
// prepared audits serially, in demand order. Because commits — and all
// metric accounting — happen only at the demand points, every deterministic
// observable (graph, failures, downloaded bytes) is bit-identical to a
// fully sequential audit; only wall-clock time changes. The Querier itself
// must be driven from a single goroutine.
type Querier struct {
	Auditor *Auditor
	Fetch   Fetcher
	Metrics QueryMetrics

	// Parallelism bounds the audit worker pool started by BeginAuditScope;
	// zero means GOMAXPROCS. When the effective pool would be a single
	// worker, BeginAuditScope keeps the strictly lazy sequential path
	// (speculation cannot pay for itself without a spare core).
	Parallelism int

	// yellowNodes records nodes that failed to answer retrieve; their
	// vertices stay yellow (§4.2, the "unavailable" limitation).
	yellowNodes map[types.NodeID]error

	pf *prefetcher
}

// NewQuerier creates a query processor over the given auditor and fetcher.
func NewQuerier(auditor *Auditor, fetch Fetcher) *Querier {
	return &Querier{Auditor: auditor, Fetch: fetch, yellowNodes: make(map[types.NodeID]error)}
}

// Unreachable returns the nodes whose retrieve calls have failed so far,
// with the error that made them yellow. These are exactly the §4.2
// "unavailable" nodes: unattributable leads, not accusations.
func (q *Querier) Unreachable() map[types.NodeID]error {
	out := make(map[types.NodeID]error, len(q.yellowNodes))
	for id, err := range q.yellowNodes {
		out[id] = err
	}
	return out
}

// ForgetUnreachable clears a node's cached retrieve failure so the next
// audit tries it again. Yellow is otherwise sticky within a querier —
// retry-until-deadline loops (a partition healing, a node restarting)
// call this between attempts.
func (q *Querier) ForgetUnreachable(node types.NodeID) {
	delete(q.yellowNodes, node)
}

// auditTask is one node's background fetch-and-prepare. The fields after
// done are written by exactly one worker before done is closed and read only
// afterwards.
type auditTask struct {
	done     chan struct{}
	auth     seclog.Authenticator
	authErr  error
	fetchErr error
	prep     *PreparedAudit
	// prepDur is the duration of the Prepare call alone (fetch excluded),
	// so inline fills can report replay cost the way the sequential path
	// does: fetch time is modeled separately as download time.
	prepDur time.Duration
}

// prefetcher coordinates the audit worker pool of one scope.
type prefetcher struct {
	mu      sync.Mutex
	tasks   map[types.NodeID]*auditTask
	queue   []types.NodeID
	next    int
	hint    types.Time
	stopped bool
	wg      sync.WaitGroup
}

// claim marks node as owned by the caller and returns a fresh task to fill
// in, or the existing task if another worker already owns it (started=true).
func (pf *prefetcher) claim(node types.NodeID) (t *auditTask, started bool) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if t, ok := pf.tasks[node]; ok {
		return t, true
	}
	t = &auditTask{done: make(chan struct{})}
	pf.tasks[node] = t
	return t, false
}

// nextNode hands a worker the next unclaimed scope node, or false when the
// scope is exhausted or stopped.
func (pf *prefetcher) nextNode() (types.NodeID, *auditTask, bool) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	for !pf.stopped && pf.next < len(pf.queue) {
		node := pf.queue[pf.next]
		pf.next++
		if _, taken := pf.tasks[node]; taken {
			continue
		}
		t := &auditTask{done: make(chan struct{})}
		pf.tasks[node] = t
		return node, t, true
	}
	return "", nil, false
}

// fill runs the thread-safe half of one node's audit into t and publishes it.
func (pf *prefetcher) fill(auditor *Auditor, fetch Fetcher, node types.NodeID, t *auditTask) {
	defer close(t.done)
	auth, err := fetch.LatestAuth(node)
	if err != nil {
		t.authErr = err
		return
	}
	t.auth = auth
	resp, err := fetch.Retrieve(node, RetrieveRequest{Auth: auth, StartTime: pf.hint})
	if err != nil {
		t.fetchErr = err
		return
	}
	start := wallNow()
	t.prep = auditor.Prepare(node, resp, auth)
	t.prepDur = wallSince(start)
}

func (pf *prefetcher) run(auditor *Auditor, fetch Fetcher) {
	defer pf.wg.Done()
	for {
		node, t, ok := pf.nextNode()
		if !ok {
			return
		}
		pf.fill(auditor, fetch, node, t)
	}
}

// BeginAuditScope announces the set of nodes a query session is expected to
// audit and starts preparing them (fetch, signature verification, replica
// replay) on a background worker pool. Preparation changes no query metric
// or graph state until EnsureAudited demands a node and commits it; nodes in
// the scope that are never demanded cost only wasted background work. Note
// that speculative retrieves do exercise the contacted nodes themselves —
// each one signs a fresh authenticator, bumping that node's own crypto Stats
// by a schedule-dependent amount — so run-level accounting (Figure 7) must
// be snapshotted before scoped queries, which is how the harnesses order it.
// Any previous scope is closed first.
func (q *Querier) BeginAuditScope(nodes []types.NodeID, startHint types.Time) {
	q.CloseScope()
	q.pf = nil
	if len(nodes) == 0 {
		return
	}
	workers := q.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		// No parallelism to exploit: speculative preparation of nodes the
		// query may never demand would compete with the query itself for
		// the single core, so stay on the strictly lazy sequential path.
		return
	}
	pf := &prefetcher{
		tasks: make(map[types.NodeID]*auditTask),
		queue: append([]types.NodeID(nil), nodes...),
		hint:  startHint,
	}
	q.pf = pf
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.run(q.Auditor, q.Fetch)
	}
}

// CloseScope stops the background audit workers (in-flight preparations
// complete; queued ones are abandoned) and waits for them to exit. Already
// prepared audits remain usable by later EnsureAudited calls. It is safe to
// call with no scope active.
func (q *Querier) CloseScope() {
	pf := q.pf
	if pf == nil {
		return
	}
	pf.mu.Lock()
	pf.stopped = true
	pf.mu.Unlock()
	pf.wg.Wait()
}

// EnsureAudited retrieves and replays node's log if not already done.
// startHint bounds how far back the segment must reach (zero = everything).
func (q *Querier) EnsureAudited(node types.NodeID, startHint types.Time) error {
	if q.Auditor.Audited(node) {
		return nil
	}
	if err, bad := q.yellowNodes[node]; bad {
		return err
	}
	q.Metrics.Microqueries++
	if pf := q.pf; pf != nil && pf.hint == startHint {
		t, started := pf.claim(node)
		if !started {
			// Not yet picked up by a worker: run the preparation inline
			// rather than waiting for pool capacity. ReplayTime counts the
			// Prepare and the commit but not the fetch, matching the
			// sequential path (fetch cost is modeled as download time).
			pf.fill(q.Auditor, q.Fetch, node, t)
			start := wallNow()
			err := q.commitTask(node, t)
			q.Metrics.ReplayTime += t.prepDur + wallSince(start)
			return err
		}
		// Worker-prepared: ReplayTime records the demand thread's actual
		// stall (wait for the worker, then commit) — zero when preparation
		// already finished in the background.
		start := wallNow()
		<-t.done
		err := q.commitTask(node, t)
		q.Metrics.ReplayTime += wallSince(start)
		return err
	}
	auth, err := q.Fetch.LatestAuth(node)
	if err != nil {
		q.yellowNodes[node] = err
		return err
	}
	q.Metrics.AuthBytes += int64(auth.WireSize())
	resp, err := q.Fetch.Retrieve(node, RetrieveRequest{Auth: auth, StartTime: startHint})
	if err != nil {
		q.yellowNodes[node] = err
		return err
	}
	q.Metrics.NodesContacted++
	q.accountDownload(resp)
	start := wallNow()
	replayErr := q.Auditor.Replay(node, resp, auth)
	q.Metrics.ReplayTime += wallSince(start)
	if replayErr != nil {
		// The node answered but its log is provably bad; failures are
		// recorded and its vertices will be red.
		return nil
	}
	return nil
}

// commitTask performs the serial half of a prefetched audit, with metric
// accounting in exactly the order the sequential path uses.
func (q *Querier) commitTask(node types.NodeID, t *auditTask) error {
	if t.authErr != nil {
		q.yellowNodes[node] = t.authErr
		return t.authErr
	}
	q.Metrics.AuthBytes += int64(t.auth.WireSize())
	if t.fetchErr != nil {
		q.yellowNodes[node] = t.fetchErr
		return t.fetchErr
	}
	q.Metrics.NodesContacted++
	q.accountDownload(t.prep.resp)
	if err := q.Auditor.Commit(t.prep); err != nil {
		// The node answered but its log is provably bad; failures are
		// recorded and its vertices will be red. The prepared audit is kept
		// so a re-demand (the node never becomes Audited) replays the same
		// evidence, as the sequential path would.
		return nil
	}
	// Committed: the node is now Audited, so this op stream, replica
	// machine, and response can never be consumed again — release them
	// rather than pinning a whole segment's decoded form in pf.tasks.
	t.prep = nil
	return nil
}

func (q *Querier) accountDownload(resp *RetrieveResponse) {
	for _, e := range resp.Segment.Entries {
		if e.Type == seclog.ECkpt {
			q.Metrics.CkptBytes += int64(e.WireSize())
		} else {
			q.Metrics.LogBytes += int64(e.WireSize())
		}
	}
	if resp.NewAuth != nil {
		q.Metrics.AuthBytes += int64(resp.NewAuth.WireSize())
	}
}

// consistencyCheck runs §5.5's equivocation check for node over [t1, t2]:
// it collects authenticators signed by node from all peers and verifies
// each against the chain the node presented.
func (q *Querier) consistencyCheck(node types.NodeID, t1, t2 types.Time) {
	start := wallNow()
	defer func() { q.Metrics.VerifyTime += wallSince(start) }()
	for _, peer := range q.Fetch.Nodes() {
		if peer == node {
			continue
		}
		for _, a := range q.Fetch.AuthsAbout(peer, node, t1, t2) {
			q.Metrics.AuthBytes += int64(a.WireSize())
			q.Auditor.CheckAuthenticator(a)
		}
	}
}

// colorOf resolves a vertex's effective color: red if the host's audit
// failed, yellow if the host never answered, otherwise the graph color.
func (q *Querier) colorOf(v *provgraph.Vertex) (provgraph.Color, string) {
	if _, bad := q.yellowNodes[v.Host]; bad {
		return provgraph.Yellow, fmt.Sprintf("node %s did not respond to retrieve", v.Host)
	}
	if q.Auditor.NodeFailed(v.Host) {
		return provgraph.Red, fmt.Sprintf("audit of %s failed", v.Host)
	}
	return v.Color, ""
}

// Explain answers a macroquery about tuple on node.
func (q *Querier) Explain(node types.NodeID, tuple types.Tuple, opts QueryOpts) (*Explanation, error) {
	if err := q.EnsureAudited(node, opts.StartHint); err != nil {
		return nil, fmt.Errorf("core: cannot audit %s: %w", node, err)
	}
	q.Auditor.Finalize()
	root := q.findRoot(node, tuple, opts)
	if root == nil {
		return nil, fmt.Errorf("core: no %v vertex for %s on %s", opts.Mode, tuple, node)
	}
	if !opts.SkipConsistency {
		t2 := root.T2
		if t2 == provgraph.Forever {
			t2 = q.Auditor.endTimes[node]
		}
		q.consistencyCheck(node, root.T1, t2)
	}
	visited := make(map[string]bool)
	expl := q.expand(root, opts, 0, visited)
	q.Auditor.Finalize()
	return expl, nil
}

func (q *Querier) findRoot(node types.NodeID, tuple types.Tuple, opts QueryOpts) *provgraph.Vertex {
	g := q.Auditor.Graph()
	if opts.Direction == Effects && opts.Mode == ModeExist {
		// Effects flow out of the appearance (appear → {exist, derive,
		// send}); rooting at the exist vertex would miss the immediate
		// consequences.
		opts.Mode = ModeAppear
	}
	var best *provgraph.Vertex
	for _, v := range g.TupleVertices(node, tuple) {
		switch opts.Mode {
		case ModeExist:
			// Believed remote tuples are represented by believe vertices on
			// the believer, so both satisfy an "exists" query.
			if v.Type != provgraph.VExist && v.Type != provgraph.VBelieve {
				continue
			}
			if opts.At != 0 && (v.T1 > opts.At || v.T2 < opts.At) {
				continue
			}
		case ModeAppear:
			if (v.Type != provgraph.VAppear && v.Type != provgraph.VBelieveAppear) ||
				(opts.At != 0 && v.T1 > opts.At) {
				continue
			}
		case ModeDisappear:
			if (v.Type != provgraph.VDisappear && v.Type != provgraph.VBelieveDisappear) ||
				(opts.At != 0 && v.T1 > opts.At) {
				continue
			}
		}
		if best == nil || v.T1 > best.T1 ||
			(v.T1 == best.T1 && v.Type == provgraph.VExist && best.Type == provgraph.VBelieve) {
			best = v
		}
	}
	return best
}

// expand is the recursive macroquery walk: each visited vertex is resolved
// via the shared graph, auditing new hosts as the traversal crosses node
// boundaries (exactly the repeated microquery navigation of §4.4).
func (q *Querier) expand(v *provgraph.Vertex, opts QueryOpts, depth int, visited map[string]bool) *Explanation {
	q.Metrics.Microqueries++
	e := &Explanation{Vertex: v}
	// Crossing onto another node: audit it so the vertex can be verified
	// and its neighborhood reconstructed.
	if !q.Auditor.Audited(v.Host) {
		if err := q.EnsureAudited(v.Host, 0); err == nil {
			q.Auditor.Finalize()
		}
	}
	e.Color, e.Note = q.colorOf(v)
	if visited[v.ID()] {
		e.Revisit = true
		return e
	}
	visited[v.ID()] = true
	if opts.Scope > 0 && depth >= opts.Scope {
		e.Truncated = true
		return e
	}
	var next []*provgraph.Vertex
	if opts.Direction == Causes {
		next = v.In()
	} else {
		next = v.Out()
	}
	ordered := append([]*provgraph.Vertex(nil), next...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID() < ordered[j].ID() })
	for _, w := range ordered {
		e.Children = append(e.Children, q.expand(w, opts, depth+1, visited))
	}
	if v.FromCheckpoint && opts.Direction == Causes && len(e.Children) == 0 {
		e.Note = "state restored from checkpoint; causes in an earlier log segment"
	}
	return e
}

// ---------------------------------------------------------------------------
// Explanation inspection and rendering.

// FindColor returns all explanations in the tree with the given resolved
// color.
func (e *Explanation) FindColor(c provgraph.Color) []*Explanation {
	var out []*Explanation
	e.walk(func(x *Explanation) {
		if x.Color == c {
			out = append(out, x)
		}
	})
	return out
}

// FaultyNodes returns the set of hosts with red vertices in the answer,
// sorted.
func (e *Explanation) FaultyNodes() []types.NodeID {
	seen := map[types.NodeID]bool{}
	for _, r := range e.FindColor(provgraph.Red) {
		seen[r.Vertex.Host] = true
	}
	out := make([]types.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of explanation nodes in the tree.
func (e *Explanation) Size() int {
	n := 0
	e.walk(func(*Explanation) { n++ })
	return n
}

// Walk visits every explanation node in the tree, depth-first.
func (e *Explanation) Walk(f func(*Explanation)) { e.walk(f) }

func (e *Explanation) walk(f func(*Explanation)) {
	f(e)
	for _, c := range e.Children {
		c.walk(f)
	}
}

// Format renders the explanation as an indented tree in the style of the
// paper's Figure 2.
func (e *Explanation) Format() string {
	var sb strings.Builder
	e.format(&sb, 0)
	return sb.String()
}

func (e *Explanation) format(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(e.Vertex.Label())
	if e.Color != provgraph.Black {
		fmt.Fprintf(sb, "  [%s]", strings.ToUpper(e.Color.String()))
	}
	if e.Note != "" {
		fmt.Fprintf(sb, "  (%s)", e.Note)
	}
	switch {
	case e.Revisit:
		sb.WriteString("  (see above)")
	case e.Truncated:
		sb.WriteString("  (scope limit)")
	}
	sb.WriteByte('\n')
	for _, c := range e.Children {
		c.format(sb, depth+1)
	}
}

func (m QueryMode) String() string {
	switch m {
	case ModeExist:
		return "exist"
	case ModeAppear:
		return "appear"
	case ModeDisappear:
		return "disappear"
	default:
		return fmt.Sprintf("mode(%d)", m)
	}
}

// wallNow and wallSince isolate the querier's only wall-clock reads: the
// query-turnaround metrics of Figure 8 (Metrics.ReplayTime, VerifyTime,
// prepDur), which report how long an audit took on this machine. They
// never feed replayed state, message contents, or a deterministic metric
// series, so the determinism invariant is unaffected; keeping them behind
// these two excused helpers keeps every other wall-clock read in the
// package a detpure finding.

//snpvet:allow detpure wall-clock audit-latency metric only (Metrics.ReplayTime/VerifyTime); never feeds replayed state or a deterministic series
func wallNow() time.Time { return time.Now() }

//snpvet:allow detpure wall-clock audit-latency metric only (Metrics.ReplayTime/VerifyTime); never feeds replayed state or a deterministic series
func wallSince(t time.Time) time.Duration { return time.Since(t) }
