package core

import (
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// Envelope is the on-the-wire form of a batch of update messages under one
// signature (§5.4: the sender transmits (m, h_{x−1}, t_x, σ_i(t_x‖h_x));
// §5.6: batching amortizes the signature over up to k messages).
type Envelope struct {
	Msgs     []types.Message
	PrevHash []byte     // h_{x−1}
	T        types.Time // t_x
	Sig      []byte     // σ_src(t_x ‖ h_x)
	Seq      uint64     // sender's log position x of the snd entry
}

// MarshalWire implements wire.Marshaler.
func (e Envelope) MarshalWire(w *wire.Writer) {
	w.Uint(uint64(len(e.Msgs)))
	for i := range e.Msgs {
		e.Msgs[i].MarshalWire(w)
	}
	w.BytesField(e.PrevHash)
	w.Int(int64(e.T))
	w.BytesField(e.Sig)
	w.Uint(e.Seq)
}

// UnmarshalWire implements wire.Unmarshaler.
func (e *Envelope) UnmarshalWire(r *wire.Reader) error {
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	e.Msgs = make([]types.Message, n)
	for i := range e.Msgs {
		if err := e.Msgs[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	e.PrevHash = r.BytesField()
	e.T = types.Time(r.Int())
	e.Sig = r.BytesField()
	e.Seq = r.Uint()
	return r.Err()
}

// PayloadSize returns the wire size of the bare messages (the baseline
// traffic a provenance-free system would send); the remainder of the
// envelope is SNP overhead, split for Figure 5's breakdown.
func (e Envelope) PayloadSize() int {
	w := wire.GetWriter()
	for i := range e.Msgs {
		e.Msgs[i].MarshalWire(w)
	}
	n := w.Len()
	wire.PutWriter(w)
	return n
}

// Ack acknowledges an envelope (§5.4: (ack, t_x, h_{y−1}, t_y,
// σ_j(t_y‖h_y))).
type Ack struct {
	IDs      []types.MessageID
	PrevHash []byte     // h_{y−1}
	T        types.Time // t_y
	Sig      []byte     // σ_dst(t_y ‖ h_y)
	Seq      uint64     // receiver's log position y of the rcv entry
}

// MarshalWire implements wire.Marshaler.
func (a Ack) MarshalWire(w *wire.Writer) {
	w.Uint(uint64(len(a.IDs)))
	for _, id := range a.IDs {
		w.String(string(id.Src))
		w.String(string(id.Dst))
		w.Uint(id.Seq)
	}
	w.BytesField(a.PrevHash)
	w.Int(int64(a.T))
	w.BytesField(a.Sig)
	w.Uint(a.Seq)
}

// UnmarshalWire implements wire.Unmarshaler.
func (a *Ack) UnmarshalWire(r *wire.Reader) error {
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	a.IDs = make([]types.MessageID, n)
	for i := range a.IDs {
		a.IDs[i].Src = types.NodeID(r.String())
		a.IDs[i].Dst = types.NodeID(r.String())
		a.IDs[i].Seq = r.Uint()
	}
	a.PrevHash = r.BytesField()
	a.T = types.Time(r.Int())
	a.Sig = r.BytesField()
	a.Seq = r.Uint()
	return r.Err()
}

// PacketKind tags transport packets for dispatch and traffic accounting.
type PacketKind uint8

// Packet kinds.
const (
	PktEnvelope PacketKind = iota
	PktAck
)

// Packet is one transport datagram between nodes.
type Packet struct {
	Kind     PacketKind
	Envelope *Envelope
	Ack      *Ack
}

// WireSize returns the packet's encoded size.
func (p *Packet) WireSize() int {
	switch p.Kind {
	case PktEnvelope:
		return 1 + wire.Size(*p.Envelope)
	case PktAck:
		return 1 + wire.Size(*p.Ack)
	}
	return 1
}

// Sender transmits packets to peers; implemented by the simulated network
// and the TCP transport.
type Sender interface {
	Send(from, to types.NodeID, pkt *Packet)
}

// RetrieveRequest asks host(v) for the log segment that explains a vertex
// (§5.4, retrieve(v, a_ik)). StartTime/EndTime delimit the vertex's
// lifetime in the host's local clock; the host answers with the segment
// from the last checkpoint before StartTime through at least EndTime (or
// its current head), plus a fresh authenticator when the returned segment
// extends beyond the evidence.
type RetrieveRequest struct {
	Auth      seclog.Authenticator
	StartTime types.Time
	EndTime   types.Time
}

// MarshalWire implements wire.Marshaler.
func (r RetrieveRequest) MarshalWire(w *wire.Writer) {
	r.Auth.MarshalWire(w)
	w.Int(int64(r.StartTime))
	w.Int(int64(r.EndTime))
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *RetrieveRequest) UnmarshalWire(rd *wire.Reader) error {
	if err := r.Auth.UnmarshalWire(rd); err != nil {
		return err
	}
	r.StartTime = types.Time(rd.Int())
	r.EndTime = types.Time(rd.Int())
	return rd.Err()
}

// RetrieveResponse carries the answer to a RetrieveRequest.
type RetrieveResponse struct {
	Segment *seclog.SegmentData
	// NewAuth covers the segment head when it extends beyond the request's
	// evidence ("if the prefix extends beyond e_k, i must also return a new
	// authenticator", §5.4).
	NewAuth *seclog.Authenticator
}

// MarshalWire implements wire.Marshaler. Since the segment encoding became
// symmetric (checkpoint entries travel with their full payload), a response
// round-trips across a process boundary with no payload side channel.
func (r RetrieveResponse) MarshalWire(w *wire.Writer) {
	r.Segment.MarshalWire(w)
	if r.NewAuth != nil {
		w.Bool(true)
		r.NewAuth.MarshalWire(w)
	} else {
		w.Bool(false)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *RetrieveResponse) UnmarshalWire(rd *wire.Reader) error {
	r.Segment = new(seclog.SegmentData)
	if err := r.Segment.UnmarshalWire(rd); err != nil {
		return err
	}
	if rd.Bool() {
		r.NewAuth = new(seclog.Authenticator)
		if err := r.NewAuth.UnmarshalWire(rd); err != nil {
			return err
		}
	}
	return rd.Err()
}

// WireSize returns the response's encoded size (the bytes a remote querier
// actually downloads; query metrics account the §5.6 digest form instead).
func (r *RetrieveResponse) WireSize() int {
	n := r.Segment.WireSize()
	if r.NewAuth != nil {
		n += r.NewAuth.WireSize()
	}
	return n
}
