package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// TestRetrieveResponseCrossProcessRoundTrip pins the symmetric remote-
// retrieve encoding: a checkpoint-bearing segment serialized to bytes (as a
// TCP fetcher would ship it) must decode in another process and pass a full
// audit — verification against the authenticator, checkpoint payload
// digests, and replay — with no payload side channel. This used to be
// impossible: Entry.MarshalWire emitted digest-only checkpoints while
// UnmarshalWire expected the full-payload form.
func TestRetrieveResponseCrossProcessRoundTrip(t *testing.T) {
	n := fuzzNode(t) // 8 inserts with a checkpoint after the 4th
	auth, err := n.LatestAuth()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.HandleRetrieve(core.RetrieveRequest{Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	hasCkpt := false
	for _, e := range resp.Segment.Entries {
		if e.Type == seclog.ECkpt {
			hasCkpt = true
			if e.WireSize() >= len(wire.Encode(e)) {
				t.Errorf("metered (digest) size %d not smaller than full encoding %d",
					e.WireSize(), len(wire.Encode(e)))
			}
		}
	}
	if !hasCkpt {
		t.Fatal("segment carries no checkpoint; the round trip proves nothing")
	}

	// "Other process": only the bytes cross.
	enc := wire.Encode(*resp)
	var remote core.RetrieveResponse
	if err := wire.Decode(enc, &remote); err != nil {
		t.Fatalf("decode in remote process: %v", err)
	}

	// A remote auditor replays the decoded response from scratch.
	dir := core.NewDirectory()
	key, err := cryptoutil.PooledKey(cryptoutil.Ed25519SHA256, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir.Register("n1", key.Public())
	a := core.NewAuditor(core.DefaultConfig(), dir,
		func(types.NodeID) types.Machine { return fuzzMachine{} }, nil)
	if err := a.Replay("n1", &remote, auth); err != nil {
		t.Fatalf("audit of decoded response failed: %v", err)
	}
	if fs := a.Failures(); len(fs) != 0 {
		t.Fatalf("audit of decoded response recorded failures: %v", fs)
	}
	if !a.Audited("n1") {
		t.Error("decoded response did not complete the audit")
	}
}

// TestRetrieveRequestRoundTrip covers the request side of the codec.
func TestRetrieveRequestRoundTrip(t *testing.T) {
	req := core.RetrieveRequest{
		Auth: seclog.Authenticator{Node: "n1", Seq: 9, T: 5 * types.Second,
			Hash: []byte{1, 2}, Sig: []byte{3}},
		StartTime: types.Second,
		EndTime:   7 * types.Second,
	}
	var got core.RetrieveRequest
	if err := wire.Decode(wire.Encode(req), &got); err != nil {
		t.Fatal(err)
	}
	if got.Auth.Node != "n1" || got.Auth.Seq != 9 || got.StartTime != req.StartTime || got.EndTime != req.EndTime {
		t.Errorf("round trip = %+v", got)
	}
}
