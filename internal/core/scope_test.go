package core_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/apps/mincost"
	"repro/internal/core"
	"repro/internal/provgraph"
	"repro/internal/simnet"
	"repro/internal/types"
)

// figure2 runs the MinCost network to quiescence, optionally arming a plan.
func figure2(t *testing.T, plan adversary.Plan) *simnet.Net {
	t.Helper()
	cfg := simnet.DefaultConfig()
	cfg.Seed = 1
	if plan != nil {
		cfg.OnNode = plan.Hook()
	}
	net := simnet.New(cfg)
	if err := mincost.Deploy(net, mincost.Figure2Topology, types.Second); err != nil {
		t.Fatal(err)
	}
	net.Run(30 * types.Second)
	return net
}

func TestBeginAuditScopeEmpty(t *testing.T) {
	net := figure2(t, nil)
	q := net.NewQuerier(mincost.Factory())
	q.Parallelism = 4
	// An empty scope must not start workers, and auditing must still work
	// through the sequential path.
	q.BeginAuditScope(nil, 0)
	if err := q.EnsureAudited("b", 0); err != nil {
		t.Fatalf("EnsureAudited after empty scope: %v", err)
	}
	if !q.Auditor.Audited("b") {
		t.Error("node not audited")
	}
	q.CloseScope()
}

func TestCloseScopeIsIdempotent(t *testing.T) {
	net := figure2(t, nil)
	q := net.NewQuerier(mincost.Factory())
	q.Parallelism = 4
	// Close with no scope active: no-op.
	q.CloseScope()
	q.BeginAuditScope(net.Nodes(), 0)
	q.CloseScope()
	q.CloseScope() // double close: no panic, no deadlock
	// A fresh scope after closing still works, and Begin closes any
	// previous scope itself.
	q.BeginAuditScope(net.Nodes(), 0)
	q.BeginAuditScope(net.Nodes(), 0)
	if err := q.EnsureAudited("c", 0); err != nil {
		t.Fatalf("EnsureAudited in reopened scope: %v", err)
	}
	q.CloseScope()
}

func TestAuditFailureMidScope(t *testing.T) {
	// One node in the scope serves a doctored log: its prepared audit must
	// fail with recorded evidence while the rest of the scope commits
	// normally, and re-demanding the failed node must not panic or flip it
	// to audited.
	net := figure2(t, adversary.Plan{"b": {adversary.TamperLog()}})
	q := net.NewQuerier(mincost.Factory())
	q.Parallelism = 4
	q.BeginAuditScope(net.Nodes(), 0)
	defer q.CloseScope()
	for _, id := range net.Nodes() {
		if err := q.EnsureAudited(id, 0); err != nil {
			t.Fatalf("EnsureAudited(%s): %v", id, err)
		}
	}
	if !q.Auditor.NodeFailed("b") {
		t.Error("doctored log not recorded as failure")
	}
	if q.Auditor.Audited("b") {
		t.Error("doctored log counted as audited")
	}
	for _, id := range []types.NodeID{"a", "c", "d", "e"} {
		if !q.Auditor.Audited(id) {
			t.Errorf("honest node %s not audited", id)
		}
		if q.Auditor.NodeFailed(id) {
			t.Errorf("honest node %s failed", id)
		}
	}
	// Re-demand: the failure stands, nothing panics.
	if err := q.EnsureAudited("b", 0); err != nil {
		t.Fatalf("re-demanding failed node: %v", err)
	}
	if q.Auditor.Audited("b") {
		t.Error("failed node became audited on re-demand")
	}
}

func TestUnresponsiveNodeInScope(t *testing.T) {
	net := figure2(t, adversary.Plan{"b": {adversary.RefuseAudits()}})
	q := net.NewQuerier(mincost.Factory())
	q.Parallelism = 4
	q.BeginAuditScope(net.Nodes(), 0)
	defer q.CloseScope()
	err := q.EnsureAudited("b", 0)
	if err == nil {
		t.Fatal("refusing node audited without error")
	}
	// The refusal is cached: a second demand reports the same error
	// without contacting the node again.
	if err2 := q.EnsureAudited("b", 0); err2 == nil {
		t.Fatal("cached refusal lost")
	}
	if q.Auditor.NodeFailed("b") {
		t.Error("refusal recorded as provable failure (it is not provable)")
	}
}

func TestFaultyNodesEdgeCases(t *testing.T) {
	mk := func(host types.NodeID, c provgraph.Color, children ...*core.Explanation) *core.Explanation {
		return &core.Explanation{Vertex: &provgraph.Vertex{Host: host}, Color: c, Children: children}
	}
	// No red anywhere: empty, not nil-sensitive.
	if got := mk("a", provgraph.Black, mk("b", provgraph.Yellow)).FaultyNodes(); len(got) != 0 {
		t.Errorf("FaultyNodes on clean tree = %v", got)
	}
	// Duplicates collapse and the result is sorted.
	tree := mk("a", provgraph.Black,
		mk("z", provgraph.Red),
		mk("b", provgraph.Red, mk("z", provgraph.Red)),
		mk("c", provgraph.Yellow))
	got := tree.FaultyNodes()
	if len(got) != 2 || got[0] != "b" || got[1] != "z" {
		t.Errorf("FaultyNodes = %v, want [b z]", got)
	}
	// A red root counts too.
	if got := mk("r", provgraph.Red).FaultyNodes(); len(got) != 1 || got[0] != "r" {
		t.Errorf("FaultyNodes on red root = %v", got)
	}
}

// TestFaultyNodesFromLiveQuery pins the end-to-end path: a forged
// derivation on b yields an explanation whose FaultyNodes is exactly [b].
func TestFaultyNodesFromLiveQuery(t *testing.T) {
	net := figure2(t, adversary.Plan{"b": {adversary.Forge()}})
	q := net.NewQuerier(mincost.Factory())
	adversary.AuditAll(q, net.Maintainer)
	expl, err := q.Explain("c", mincost.BestCost("c", "d", 5), core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range expl.FaultyNodes() {
		if f != "b" {
			t.Errorf("faulty nodes include honest %s:\n%s", f, expl.Format())
		}
	}
}
